package dregex

import (
	"sync"
	"testing"

	"dregex/internal/match"
	"dregex/internal/wordgen"
)

func TestMatcherIsCachedPerAlgorithm(t *testing.T) {
	e := MustCompile("(ab+b(b?)a)*", Math)
	m1, err := e.Matcher(KORE)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.Matcher(KORE)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("Matcher(KORE) must return the same cached simulator")
	}
	// Auto resolves at compile time and shares the explicit-algo slot.
	ma, err := e.Matcher(Auto)
	if err != nil {
		t.Fatal(err)
	}
	me, err := e.Matcher(ma.Algorithm())
	if err != nil {
		t.Fatal(err)
	}
	if ma != me {
		t.Errorf("Matcher(Auto)=%p must share the %v slot (%p)", ma, ma.Algorithm(), me)
	}
	// Distinct algorithms get distinct engines.
	mc, err := e.Matcher(Colored)
	if err != nil {
		t.Fatal(err)
	}
	if mc == m1 {
		t.Error("Colored and KORE must not share an engine")
	}
}

func TestMatcherCacheConcurrent(t *testing.T) {
	e := MustCompile("(a|b)*, c", DTD)
	var wg sync.WaitGroup
	got := make([]*Matcher, 32)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := e.Matcher(PathDecomp)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Matcher calls built more than one engine")
		}
	}
}

func TestMatchAllReusesBatchEngine(t *testing.T) {
	// A table-eligible star-free model rides the dense-table tier word by
	// word; the batch engine must not even be built for it.
	small := MustCompile("(title, author, abstract?)", DTD)
	words := [][]string{{"title", "author"}, {"title"}}
	if small.auto != Table {
		t.Fatalf("small star-free model resolves Auto to %v, want Table", small.auto)
	}
	if _, err := small.MatchAll(words, Auto); err != nil {
		t.Fatal(err)
	}
	if small.batch.b != nil {
		t.Error("table-eligible Auto MatchAll must bypass the batch engine")
	}

	// Beyond the table budget, star-free Auto MatchAll still takes the
	// Theorem 4.12 batch engine, built once and reused.
	e := MustCompile(wordgen.OptChainDTD(1024), DTD)
	if e.auto == Table {
		t.Fatalf("big star-free model must be over the table budget (positions=%d sigma=%d)",
			e.stats.Positions, e.stats.Sigma)
	}
	bigWords := [][]string{{"a0", "a1"}, {"a1", "a0"}}
	if _, err := e.MatchAll(bigWords, Auto); err != nil {
		t.Fatal(err)
	}
	b1 := e.batch.b
	if b1 == nil {
		t.Fatal("star-free Auto MatchAll must use the batch engine")
	}
	if _, err := e.MatchAll(bigWords, Auto); err != nil {
		t.Fatal(err)
	}
	if e.batch.b != b1 {
		t.Error("batch engine must be reused across MatchAll calls")
	}
}

func TestMatchAllHonorsExplicitAlgorithm(t *testing.T) {
	e := MustCompile("(title, author, abstract?)", DTD)
	words := [][]string{{"title", "author"}, {"title"}}

	// An explicit engine request must be honored (not silently replaced
	// by the batch path): an invalid algorithm now fails even though the
	// expression is star-free.
	if _, err := e.MatchAll(words, Algorithm(99)); err == nil {
		t.Error("MatchAll ignored an invalid explicit algorithm")
	}
	// And a valid explicit engine must not touch the batch engine.
	e2 := MustCompile("(title, author, abstract?)", DTD)
	got, err := e2.MatchAll(words, Climbing)
	if err != nil {
		t.Fatal(err)
	}
	if e2.batch.b != nil {
		t.Error("explicit algorithm must bypass the batch engine")
	}
	if !got[0] || got[1] {
		t.Errorf("MatchAll(Climbing) = %v, want [true false]", got)
	}
}

func TestMatchAllNFAOnNondeterministic(t *testing.T) {
	// NFA is the one engine that accepts nondeterministic expressions;
	// an explicit NFA request must work through MatchAll too.
	e := MustCompile("(a*ba+bb)*", Math)
	if e.IsDeterministic() {
		t.Fatal("test expression must be nondeterministic")
	}
	got, err := e.MatchAll([][]string{{"b", "b"}, {"a", "b"}}, NFA)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] {
		t.Errorf("MatchAll(NFA) = %v, want [true false]", got)
	}
	// Every other explicit engine — and Auto — still rejects.
	for _, algo := range []Algorithm{Auto, KORE, Colored, PathDecomp} {
		if _, err := e.MatchAll([][]string{{"b"}}, algo); err == nil {
			t.Errorf("MatchAll(%v) accepted a nondeterministic expression", algo)
		}
	}
	iv, err := e.MatchAllWords([][]Symbol{e.Intern([]string{"b", "b"})}, NFA)
	if err != nil || !iv[0] {
		t.Errorf("MatchAllWords(NFA) = %v, %v", iv, err)
	}
}

func TestInternAndMatchWord(t *testing.T) {
	e := MustCompile("(title, author+, (section | appendix)*)", DTD)
	m, err := e.Matcher(Auto)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		names []string
		want  bool
	}{
		{[]string{"title", "author", "section"}, true},
		{[]string{"title", "author", "author", "appendix"}, true},
		{[]string{"title"}, false},
		{[]string{"title", "author", "unknown"}, false}, // None sentinel rejects
		{[]string{"#", "$"}, false},                     // reserved markers reject
	}
	for _, c := range cases {
		word := e.Intern(c.names)
		if got := m.MatchWord(word); got != c.want {
			t.Errorf("MatchWord(%v) = %v, want %v", c.names, got, c.want)
		}
		if got := m.MatchSymbols(c.names); got != c.want {
			t.Errorf("MatchSymbols(%v) = %v, want %v", c.names, got, c.want)
		}
	}
	// MatchAllWords agrees, through the table tier of a star-free model.
	sf := MustCompile("(title, author, abstract?)", DTD)
	ws := [][]Symbol{sf.Intern([]string{"title", "author"}), sf.Intern([]string{"title"})}
	got, err := sf.MatchAllWords(ws, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] {
		t.Errorf("MatchAllWords = %v, want [true false]", got)
	}
}

// TestSteadyStateZeroAllocs pins the allocation-free hot path: cached
// engine lookup, interned-word matching, and stream reuse must not
// allocate in steady state.
func TestSteadyStateZeroAllocs(t *testing.T) {
	e := MustCompile("(login, (query, page*)*, logout)", DTD)
	word := e.Intern([]string{"login", "query", "page", "page", "query", "logout"})

	for _, algo := range []Algorithm{Table, KORE, Colored, ColoredBinary, PathDecomp, Climbing} {
		m, err := e.Matcher(algo)
		if err != nil {
			t.Fatal(err)
		}
		if !m.MatchWord(word) {
			t.Fatalf("%v rejects the session word", algo)
		}
		if n := testing.AllocsPerRun(200, func() { m.MatchWord(word) }); n != 0 {
			t.Errorf("%v MatchWord allocates %v/op, want 0", algo, n)
		}
	}

	// Engine lookup after first build is allocation-free too.
	if n := testing.AllocsPerRun(200, func() {
		if _, err := e.Matcher(Auto); err != nil {
			t.Error(err)
		}
	}); n != 0 {
		t.Errorf("cached Matcher lookup allocates %v/op, want 0", n)
	}

	// Value-stream reuse: one Stream, Reset per word, zero allocations.
	m, err := e.Matcher(Auto)
	if err != nil {
		t.Fatal(err)
	}
	var s match.Stream
	if !m.InitStream(&s) {
		t.Fatal("InitStream failed for a deterministic engine")
	}
	if n := testing.AllocsPerRun(200, func() {
		s.Reset()
		for _, a := range word {
			s.Feed(a)
		}
		if !s.Accepts() {
			t.Error("stream rejects the session word")
		}
	}); n != 0 {
		t.Errorf("stream reuse allocates %v/op, want 0", n)
	}

	// Math-notation text matching interns runes without allocating.
	em := MustCompile("(ab+b(b?)a)*", Math)
	mm, err := em.Matcher(KORE)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() { mm.MatchText("abbbaab") }); n != 0 {
		t.Errorf("MatchText allocates %v/op, want 0", n)
	}

	// InternInto with a recycled buffer completes the zero-alloc loop.
	names := []string{"login", "logout"}
	buf := make([]Symbol, 0, 8)
	if n := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		buf = e.InternInto(buf, names)
		m.MatchWord(buf)
	}); n != 0 {
		t.Errorf("InternInto+MatchWord allocates %v/op, want 0", n)
	}
}

// TestMatchAllCachedAllocs pins the steady-state allocation count of the
// cached MatchAll path for table-eligible expressions: the dense-table
// tier matches word by word, so the only allocation left is the returned
// verdict slice.
func TestMatchAllCachedAllocs(t *testing.T) {
	e := MustCompile("(title, author, (section | appendix)?)", DTD)
	names := [][]string{
		{"title", "author", "section"},
		{"title", "author", "appendix"},
		{"title", "section"},
	}
	words := make([][]Symbol, len(names))
	for i, w := range names {
		words[i] = e.Intern(w)
	}
	if _, err := e.MatchAll(names, Auto); err != nil { // warm the engine
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := e.MatchAll(names, Auto); err != nil {
			t.Error(err)
		}
	}); n > 1 {
		t.Errorf("cached MatchAll allocates %v/op, want <= 1 (the verdict slice)", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := e.MatchAllWords(words, Auto); err != nil {
			t.Error(err)
		}
	}); n > 1 {
		t.Errorf("cached MatchAllWords allocates %v/op, want <= 1 (the verdict slice)", n)
	}
}
