package dregex

import (
	"fmt"
	"strings"
	"testing"
	"unicode/utf8"
)

// fuzzRules is the fixed rule set FuzzLexer runs: a backtracking-heavy
// rule (x reads past its accepts hoping to close another (bca) round),
// two classic token shapes, and single-letter fallbacks so most inputs
// over the alphabet lex cleanly.
func fuzzRules(t testing.TB) []LexRule {
	mk := func(src string) *Expr {
		e, err := Compile(src, Math)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return []LexRule{
		{Tag: "x", Expr: mk("a(bca)*")},
		{Tag: "num", Expr: mk("(0+1)(0+1)*")},
		{Tag: "b", Expr: mk("b")},
		{Tag: "c", Expr: mk("c")},
	}
}

// refLex is the quadratic reference: at each position, probe every prefix
// of the rest of the input against every rule with Matcher.MatchText and
// take the longest accepted one (first rule wins ties) — the defining
// property of maximal munch, computed without any of the streaming
// machinery under test. It returns the tokens and the byte offset of the
// first lexical error (-1 if none).
func refLex(t testing.TB, rules []LexRule, input string) ([]Token, int) {
	matchers := make([]*Matcher, len(rules))
	for i, r := range rules {
		m, err := r.Expr.Matcher(Auto)
		if err != nil {
			t.Fatal(err)
		}
		matchers[i] = m
	}
	var toks []Token
	for pos := 0; pos < len(input); {
		best, bestRule := 0, -1
		for i, m := range matchers {
			end := pos
			for end < len(input) {
				_, size := utf8.DecodeRuneInString(input[end:])
				end += size
				if m.MatchText(input[pos:end]) && end-pos > best {
					best, bestRule = end-pos, i
				}
			}
		}
		if bestRule < 0 {
			return toks, pos
		}
		toks = append(toks, Token{Tag: rules[bestRule].Tag, Lexeme: input[pos : pos+best], Pos: pos})
		pos += best
	}
	return toks, -1
}

// FuzzLexer checks the streaming lexer against the quadratic reference on
// arbitrary inputs and arbitrary chunkings: same tokens, and an error
// exactly when (and where) the reference finds one.
func FuzzLexer(f *testing.F) {
	f.Add("abca", uint8(1))
	f.Add("abc", uint8(2))
	f.Add("abcabcab", uint8(3))
	f.Add("a01bca", uint8(4))
	f.Add("bc01a", uint8(0))
	f.Add("abcabq", uint8(5))
	f.Add("ab\xffca", uint8(1))
	f.Fuzz(func(t *testing.T, input string, chunk uint8) {
		if len(input) > 256 {
			t.Skip() // the reference is cubic; keep fuzz throughput up
		}
		rules := fuzzRules(t)
		l, err := NewLexer(rules...)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErrAt := refLex(t, rules, input)

		check := func(mode string, got []Token, err error) {
			t.Helper()
			if wantErrAt >= 0 {
				if err == nil {
					t.Fatalf("%s: reference errors at byte %d, lexer succeeded: %v", mode, wantErrAt, got)
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("byte %d (", wantErrAt)) {
					t.Fatalf("%s: reference errors at byte %d, lexer: %v", mode, wantErrAt, err)
				}
			} else if err != nil {
				t.Fatalf("%s: reference lexes %v, lexer errors: %v", mode, want, err)
			}
			// Tokens before the error point must agree too.
			if len(got) != len(want) {
				t.Fatalf("%s: got %v, want %v", mode, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: token %d: got %+v, want %+v", mode, i, got[i], want[i])
				}
			}
		}

		got, err := l.Tokens(input)
		check("whole", got, err)

		// Same input fed in fixed-size chunks (1 + chunk%7 bytes, so rune
		// splits and token boundaries land mid-chunk), through one reused
		// stream that lexed — and possibly errored on — a prior input.
		size := 1 + int(chunk%7)
		var chunked []Token
		s := l.Stream(func(tok Token) error { chunked = append(chunked, tok); return nil })
		_ = s.FeedString("a0") // stale state a Reset must clear
		s.Reset()
		chunked = nil
		err = nil
		for i := 0; i < len(input) && err == nil; i += size {
			end := i + size
			if end > len(input) {
				end = len(input)
			}
			err = s.FeedBytes([]byte(input[i:end]))
		}
		if err == nil {
			err = s.Flush()
		}
		check("chunked", chunked, err)
	})
}
