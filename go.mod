module dregex

go 1.24
