package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a dregexd server. The zero value is not usable; construct
// with New. Client is safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8480"). httpClient nil selects http.DefaultClient; set
// one with a Timeout for production use.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status int
	Msg    string
	// RetryAfter is the server's retry hint on load-shed responses
	// (429/503), taken from retry_after_ms in the body or the Retry-After
	// header; 0 when the server sent neither.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dregexd: %d: %s", e.Status, e.Msg)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusNotFound
}

// IsShed reports whether err is a load-shed response (429/503) from the
// server's admission control — the class of error WithRetry retries.
func IsShed(err error) bool {
	ae, ok := err.(*APIError)
	return ok && retryable(ae.Status)
}

// do issues a request with the given body (nil for none) and decodes the
// JSON response into out (out nil discards the body). Load-shed responses
// are retried under the client's RetryPolicy; the body is a byte slice
// precisely so each attempt can replay it.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.do1(ctx, method, path, contentType, body, out)
		if err == nil {
			return nil
		}
		ae, ok := err.(*APIError)
		if !ok || !retryable(ae.Status) || attempt+1 >= c.retry.MaxAttempts {
			return err
		}
		if werr := c.retry.wait(ctx, attempt, ae.RetryAfter); werr != nil {
			return werr
		}
	}
}

// do1 is one request/response exchange.
func (c *Client) do1(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, r)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Tell the server how much budget this attempt actually has, so a
	// doomed validation sheds server-side instead of burning a worker past
	// the point anyone is waiting (the server only tightens, never
	// loosens, its own budget with this).
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set("X-Timeout-Ms", strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		ae := &APIError{Status: resp.StatusCode, Msg: msg}
		if er.RetryAfterMs > 0 {
			ae.RetryAfter = time.Duration(er.RetryAfterMs) * time.Millisecond
		} else if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			ae.RetryAfter = time.Duration(s) * time.Second
		}
		return ae
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, "application/json", data, out)
}

// Compile asks the server for a determinism verdict (with counterexample
// diagnosis and structural stats) on one expression.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	var out CompileResponse
	if err := c.postJSON(ctx, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Match matches a batch of words against one expression.
func (c *Client) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	var out MatchResponse
	if err := c.postJSON(ctx, "/v1/match", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Validate validates an XML document against the registered schema named
// schema, streaming the document as a raw body (the server's
// allocation-lean path).
func (c *Client) Validate(ctx context.Context, schema string, doc []byte) (*ValidateResponse, error) {
	var out ValidateResponse
	path := "/v1/validate?schema=" + url.QueryEscape(schema)
	if err := c.do(ctx, http.MethodPost, path, "application/xml", doc, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PutSchema registers (or atomically hot-swaps) a schema under name. kind
// is KindDTD or KindXSD; empty lets the server sniff it from the source.
func (c *Client) PutSchema(ctx context.Context, name, kind string, source []byte) (*SchemaInfo, error) {
	path := "/v1/schemas/" + url.PathEscape(name)
	if kind != "" {
		path += "?kind=" + url.QueryEscape(kind)
	}
	var out SchemaInfo
	if err := c.do(ctx, http.MethodPut, path, "application/xml", source, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetSchema returns metadata for one registered schema.
func (c *Client) GetSchema(ctx context.Context, name string) (*SchemaInfo, error) {
	var out SchemaInfo
	if err := c.do(ctx, http.MethodGet, "/v1/schemas/"+url.PathEscape(name), "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteSchema removes a registered schema; in-flight validations against
// it finish undisturbed.
func (c *Client) DeleteSchema(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/schemas/"+url.PathEscape(name), "", nil, nil)
}

// Schemas lists all registered schemas.
func (c *Client) Schemas(ctx context.Context) (*SchemaList, error) {
	var out SchemaList
	if err := c.do(ctx, http.MethodGet, "/v1/schemas", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats returns the server's cache and per-endpoint counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
