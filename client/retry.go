// Retry: opt-in client-side handling of the server's load-shed responses.
// dregexd sheds overload with 429 (rate) and 503 (capacity/deadline), both
// carrying a Retry-After hint — see the "Overload & resilience" section of
// the README. WithRetry makes the client honor those hints with capped,
// jittered exponential backoff, so a fleet of shed clients spreads its
// retries instead of stampeding the bucket the moment it refills.
package client

import (
	"context"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy configures automatic retries of load-shed (429/503)
// responses. Only shed statuses are retried: 4xx request errors and
// transport failures surface immediately, since repeating them cannot
// help.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first; values
	// <= 1 mean a single attempt (no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubled per retry, jittered
	// to [d/2, d)); 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps each wait, including server-requested Retry-After
	// waits; 0 means 5s.
	MaxDelay time.Duration
	// Sleep, when non-nil, replaces the context-aware wait between
	// attempts — a test seam for scripting retries without real time
	// passing. It must return promptly with ctx.Err() when ctx ends.
	Sleep func(ctx context.Context, d time.Duration) error
}

const (
	defaultBaseDelay = 100 * time.Millisecond
	defaultMaxDelay  = 5 * time.Second
)

// WithRetry returns a copy of the client that retries load-shed responses
// under p. The original client is unchanged, so one transport can serve
// both retrying and fail-fast call sites.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

// retryable reports whether status is a load-shed verdict worth retrying.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoff computes the wait before retry number attempt (0-based): capped
// exponential with full-range jitter in [d/2, d), raised to the server's
// Retry-After hint when that is longer — the server knows when its bucket
// refills; waiting less just buys another 429.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, cap := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	if cap <= 0 {
		cap = defaultMaxDelay
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	if d > cap {
		d = cap
	}
	return d
}

// wait sleeps the backoff for attempt (or runs the injected Sleep hook),
// returning early with the context's error if it ends first.
func (p RetryPolicy) wait(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := p.backoff(attempt, retryAfter)
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
