package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// shedScript is a fake dregexd that answers each request from a fixed
// script of status codes, shedding with the real wire shape (Retry-After
// header + retry_after_ms body) and recording what it saw.
type shedScript struct {
	codes        []int
	retryAfterMs int64
	calls        atomic.Int64
	lastTimeout  atomic.Int64 // parsed X-Timeout-Ms of the last request, -1 if absent
}

func (f *shedScript) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(f.calls.Add(1)) - 1
	f.lastTimeout.Store(-1)
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil {
			f.lastTimeout.Store(ms)
		}
	}
	code := f.codes[len(f.codes)-1]
	if n < len(f.codes) {
		code = f.codes[n]
	}
	if code == http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ValidateResponse{Schema: "s", Valid: true})
		return
	}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: http.StatusText(code), RetryAfterMs: f.retryAfterMs})
}

// retryClient builds a WithRetry client against the scripted server, with
// an injected Sleep that records waits instead of taking them.
func retryClient(t *testing.T, f *shedScript, p RetryPolicy, slept *[]time.Duration) *Client {
	t.Helper()
	hs := httptest.NewServer(f)
	t.Cleanup(hs.Close)
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return New(hs.URL, hs.Client()).WithRetry(p)
}

func TestRetryShedThenSuccess(t *testing.T) {
	f := &shedScript{codes: []int{429, 503, 200}, retryAfterMs: 250}
	var slept []time.Duration
	c := retryClient(t, f, RetryPolicy{MaxAttempts: 4}, &slept)

	resp, err := c.Validate(context.Background(), "s", []byte("<a/>"))
	if err != nil {
		t.Fatalf("Validate after sheds: %v", err)
	}
	if !resp.Valid {
		t.Errorf("response: %+v", resp)
	}
	if f.calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", f.calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2", slept)
	}
	// Retry-After (250ms) exceeds the first jittered backoff window
	// ([50ms, 100ms]) and must win; every wait respects the hint.
	for i, d := range slept {
		if d < 250*time.Millisecond {
			t.Errorf("sleep %d = %v, want >= 250ms (Retry-After)", i, d)
		}
	}
}

func TestRetryExhaustion(t *testing.T) {
	f := &shedScript{codes: []int{429}, retryAfterMs: 10}
	var slept []time.Duration
	c := retryClient(t, f, RetryPolicy{MaxAttempts: 3}, &slept)

	_, err := c.Validate(context.Background(), "s", []byte("<a/>"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if !IsShed(err) {
		t.Error("IsShed(429) = false")
	}
	if ae.RetryAfter != 10*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 10ms (from retry_after_ms)", ae.RetryAfter)
	}
	if f.calls.Load() != 3 || len(slept) != 2 {
		t.Errorf("attempts = %d, sleeps = %d; want 3 and 2", f.calls.Load(), len(slept))
	}
}

func TestRetryOnlyShedStatuses(t *testing.T) {
	// A 422 is the request's fault: retrying cannot help and must not happen.
	f := &shedScript{codes: []int{422}}
	var slept []time.Duration
	c := retryClient(t, f, RetryPolicy{MaxAttempts: 5}, &slept)

	_, err := c.Validate(context.Background(), "s", []byte("<a/>"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 422 {
		t.Fatalf("err = %v, want APIError 422", err)
	}
	if IsShed(err) {
		t.Error("IsShed(422) = true")
	}
	if f.calls.Load() != 1 || len(slept) != 0 {
		t.Errorf("attempts = %d, sleeps = %d; want 1 and 0", f.calls.Load(), len(slept))
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	f := &shedScript{codes: []int{429, 200}, retryAfterMs: 1}
	hs := httptest.NewServer(f)
	t.Cleanup(hs.Close)
	c := New(hs.URL, hs.Client())
	if _, err := c.Validate(context.Background(), "s", []byte("<a/>")); !IsShed(err) {
		t.Fatalf("err = %v, want shed APIError (no retry without WithRetry)", err)
	}
	if f.calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1", f.calls.Load())
	}
	// WithRetry is a copy: the original still fails fast afterwards.
	rc := c.WithRetry(RetryPolicy{MaxAttempts: 2, Sleep: func(ctx context.Context, _ time.Duration) error { return nil }})
	if _, err := rc.Validate(context.Background(), "s", []byte("<a/>")); err != nil {
		t.Fatalf("retrying copy: %v", err)
	}
	if c.retry.MaxAttempts != 0 {
		t.Error("WithRetry mutated the original client")
	}
}

func TestRetryContextCanceled(t *testing.T) {
	f := &shedScript{codes: []int{429}, retryAfterMs: 1}
	hs := httptest.NewServer(f)
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithCancel(context.Background())
	c := New(hs.URL, hs.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 10,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel() // the caller gives up while we wait
			return ctx.Err()
		},
	})
	_, err := c.Validate(ctx, "s", []byte("<a/>"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if f.calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no attempt after cancellation)", f.calls.Load())
	}
}

func TestRetryAfterHeaderFallback(t *testing.T) {
	// No retry_after_ms in the body: the Retry-After header (whole
	// seconds) is the fallback source.
	f := &shedScript{codes: []int{503}}
	hs := httptest.NewServer(f)
	t.Cleanup(hs.Close)
	c := New(hs.URL, hs.Client())
	_, err := c.Validate(context.Background(), "s", []byte("<a/>"))
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if ae.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s (from header)", ae.RetryAfter)
	}
}

func TestDeadlineHeaderPropagation(t *testing.T) {
	f := &shedScript{codes: []int{200}}
	hs := httptest.NewServer(f)
	t.Cleanup(hs.Close)
	c := New(hs.URL, hs.Client())

	// No deadline: no header.
	if _, err := c.Validate(context.Background(), "s", []byte("<a/>")); err != nil {
		t.Fatal(err)
	}
	if f.lastTimeout.Load() != -1 {
		t.Errorf("X-Timeout-Ms sent without a deadline: %d", f.lastTimeout.Load())
	}
	// With a deadline: the remaining budget rides the header.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Validate(ctx, "s", []byte("<a/>")); err != nil {
		t.Fatal(err)
	}
	ms := f.lastTimeout.Load()
	if ms <= 0 || ms > 30_000 {
		t.Errorf("X-Timeout-Ms = %d, want (0, 30000]", ms)
	}
}

func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt, 0)
			lo := 100 * time.Millisecond << attempt / 2
			if lo > time.Second/2 {
				lo = time.Second / 2
			}
			if d < lo || d > time.Second {
				t.Fatalf("backoff(%d) = %v, want [%v, 1s]", attempt, d, lo)
			}
		}
	}
	// A Retry-After hint longer than the backoff wins, but never past the cap.
	if d := p.backoff(0, 700*time.Millisecond); d != 700*time.Millisecond {
		t.Errorf("backoff with hint = %v, want 700ms", d)
	}
	if d := p.backoff(0, time.Minute); d != time.Second {
		t.Errorf("backoff with huge hint = %v, want capped at 1s", d)
	}
}
