// Package client is the Go client for dregexd, the deterministic-regular-
// expression validation server (cmd/dregexd). It also defines the JSON wire
// types of the /v1 API — the server marshals exactly these structs, so the
// protocol cannot drift between the two sides.
package client

import "time"

// Syntax names accepted by the API ("syntax" fields). An empty string
// selects DTD content-model notation.
const (
	SyntaxDTD  = "dtd"  // XML content-model notation: (a, (b | c)*)
	SyntaxMath = "math" // the paper's notation: (ab+b(b?)a)*
	SyntaxXSD  = "xsd"  // DTD notation with {m,n} counters, XSD cache keyspace
)

// Schema kinds accepted by the registry.
const (
	KindDTD = "dtd"
	KindXSD = "xsd"
)

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Expr   string `json:"expr"`
	Syntax string `json:"syntax,omitempty"`
	// Numeric forces the numeric (counter) pipeline; without it the server
	// compiles through the plain pipeline and falls back to the numeric one
	// when the expression carries {m,n} occurrence indicators.
	Numeric bool `json:"numeric,omitempty"`
}

// Ambiguity is a verified nondeterminism counterexample (see
// dregex.Ambiguity): Word's last letter can be consumed by two distinct
// positions of Symbol.
type Ambiguity struct {
	Rule   string   `json:"rule"`
	Symbol string   `json:"symbol,omitempty"`
	Word   []string `json:"word,omitempty"`
}

// ExprStats mirrors dregex.Stats, the structural parameters the paper's
// complexity bounds depend on.
type ExprStats struct {
	Size             int  `json:"size"`
	Positions        int  `json:"positions"`
	Sigma            int  `json:"sigma"`
	K                int  `json:"k"`
	AlternationDepth int  `json:"alternation_depth"`
	StarFree         bool `json:"star_free"`
	Depth            int  `json:"depth"`
}

// CompileResponse is the body of a successful POST /v1/compile.
type CompileResponse struct {
	Deterministic bool `json:"deterministic"`
	// Numeric reports which pipeline compiled the expression.
	Numeric bool   `json:"numeric,omitempty"`
	Rule    string `json:"rule,omitempty"`
	// Ambiguity is the Explain counterexample for nondeterministic
	// expressions.
	Ambiguity *Ambiguity `json:"ambiguity,omitempty"`
	// Stats is present for plain-pipeline expressions.
	Stats *ExprStats `json:"stats,omitempty"`
	// Cached reports whether this compile was served from the server's
	// expression cache.
	Cached bool `json:"cached"`
}

// MatchRequest is the body of POST /v1/match: one expression, a batch of
// words (each a sequence of symbol names).
type MatchRequest struct {
	Expr    string     `json:"expr"`
	Syntax  string     `json:"syntax,omitempty"`
	Numeric bool       `json:"numeric,omitempty"`
	Words   [][]string `json:"words"`
	// Witness asks for per-word parse results: the response then carries
	// Parses alongside Results. Witness recording runs the slower recorded
	// path, so it is opt-in per request.
	Witness bool `json:"witness,omitempty"`
}

// WordParse is the per-word parse outcome of a witness-mode match.
type WordParse struct {
	Accepted bool `json:"accepted"`
	// FailedAt is -1 when accepted; otherwise the index of the symbol the
	// run died on (len(word) when the word ended too early).
	FailedAt int `json:"failed_at"`
	// Expected lists the symbols that could have extended the word at the
	// failure point.
	Expected []string `json:"expected,omitempty"`
	// Tree is the parse tree of an accepted word as an s-expression
	// (leaves are symbol names, inner nodes "(op child …)"); empty for
	// rejected words and for numeric-pipeline expressions, which report
	// trace-level results only.
	Tree string `json:"tree,omitempty"`
}

// MatchResponse is the body of a successful POST /v1/match; Results[i]
// reports whether Words[i] matched.
type MatchResponse struct {
	Results []bool `json:"results"`
	// Parses is present when the request set Witness; Parses[i] describes
	// Words[i].
	Parses []WordParse `json:"parses,omitempty"`
}

// ValidateRequest is the JSON body of POST /v1/validate. The endpoint also
// accepts the XML document as a raw (non-JSON) body with the schema named
// in the ?schema= query parameter — the allocation-lean path, since the
// document then streams straight from the connection.
type ValidateRequest struct {
	Schema string `json:"schema"`
	Doc    string `json:"doc"`
}

// ValidationError is one violation found while validating a document.
type ValidationError struct {
	Path    string `json:"path"`
	Element string `json:"element"`
	Msg     string `json:"msg"`
	// Line and Col locate the violation in the document (1-based; columns
	// count runes). Zero when the server reported no position.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Expected lists the element names that would have been legal at the
	// failure point (content-model violations only).
	Expected []string `json:"expected,omitempty"`
}

// ValidateResponse is the body of a successful POST /v1/validate. A
// document-level failure (malformed XML) sets DocError; schema violations
// land in Errors. Valid means neither.
type ValidateResponse struct {
	Schema   string            `json:"schema"`
	Valid    bool              `json:"valid"`
	Errors   []ValidationError `json:"errors,omitempty"`
	DocError string            `json:"doc_error,omitempty"`
	// RequestID is the server's trace id for this request — the same id
	// carried by the X-Request-Id response header and the access-log line
	// when access logging is enabled on the server.
	RequestID uint64 `json:"request_id,omitempty"`
}

// SchemaInfo describes one registered schema (PUT/GET /v1/schemas/{name}).
type SchemaInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "dtd" or "xsd"
	// Version counts hot swaps of this name: 1 on first registration,
	// bumped atomically on each replacement.
	Version   int       `json:"version"`
	Elements  int       `json:"elements"` // declared elements (DTD) or global roots (XSD)
	UpdatedAt time.Time `json:"updated_at"`
	// Warnings lists lint findings that do not block registration —
	// nondeterministic content models (which cannot be validated against),
	// references to undeclared elements.
	Warnings []string `json:"warnings,omitempty"`
}

// SchemaList is the body of GET /v1/schemas.
type SchemaList struct {
	Schemas []SchemaInfo `json:"schemas"`
}

// CacheStats mirrors dregex.CacheStats plus the derived hit rate.
type CacheStats struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Entries  int     `json:"entries"`
	Negative int     `json:"negative"`
	// Evictions counts entries displaced by capacity pressure over the
	// cache's lifetime.
	Evictions uint64 `json:"evictions"`
}

// EndpointStats counts requests per endpoint; Errors counts 4xx/5xx
// responses. The latency quantiles come from the same histograms GET
// /metrics exposes, in milliseconds (0 before the first request).
type EndpointStats struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
	// Shed counts requests rejected by admission control (rate buckets,
	// in-flight bounds, deadlines) — a subset of Errors.
	Shed int64 `json:"shed,omitempty"`
}

// SchemaTraffic is the per-schema validation traffic summary of GET
// /v1/stats: verdict counts, volume, and the live cost estimate.
type SchemaTraffic struct {
	Kind      string `json:"kind"`
	Version   int    `json:"version"`
	Valid     uint64 `json:"valid"`
	Invalid   uint64 `json:"invalid"`
	DocErrors uint64 `json:"doc_errors"`
	// Symbols counts content-model symbols fed to the streaming engines;
	// DocBytes counts document bytes tokenized.
	Symbols  uint64 `json:"symbols"`
	DocBytes uint64 `json:"doc_bytes"`
	// NsPerSymbol is validation time over symbols fed — the live
	// per-schema cost estimate (0 before any symbols).
	NsPerSymbol float64 `json:"ns_per_symbol,omitempty"`
	// Models counts the schema's content models per engine tier (which
	// rung of the Auto ladder each compiled model landed on).
	Models map[string]int `json:"models,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Cache         CacheStats               `json:"cache"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	SchemaCount   int                      `json:"schema_count"`
	SchemaSwaps   uint64                   `json:"schema_swaps"`
	// EngineTiers counts Auto-ladder tier selections process-wide (every
	// compile through this server's cache, plus batch builds, counter
	// compiles, and table-budget refusals).
	EngineTiers map[string]uint64 `json:"engine_tiers,omitempty"`
	// Schemas maps schema name to its validation-traffic summary.
	Schemas map[string]SchemaTraffic `json:"schemas,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RequestID is the server's trace id for the failed request (0 when
	// the error was produced outside the instrumented middleware).
	RequestID uint64 `json:"request_id,omitempty"`
	// RetryAfterMs is set on load-shed responses (429/503 from admission
	// control): the retry hint from the Retry-After header, in
	// milliseconds for clients that want sub-second precision.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}
