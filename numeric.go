package dregex

import (
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/numeric"
)

// NumericExpr is a compiled expression with XML-Schema numeric occurrence
// indicators e{m,n} (paper §3.3). Its determinism test runs in O(|e|)
// regardless of the magnitudes of the bounds — maxOccurs="1000000000"
// costs the same as maxOccurs="2" — improving the O(σ|e|) bound of
// Kilpeläinen's checker.
type NumericExpr struct {
	source string
	c      *numeric.Counted
}

// CompileNumeric parses and preprocesses an expression that may use
// numeric occurrence indicators.
func CompileNumeric(source string, syntax Syntax) (*NumericExpr, error) {
	alpha := ast.NewAlphabet()
	var root *ast.Node
	var err error
	switch syntax {
	case Math:
		root, err = ast.ParseMath(source, alpha)
	case DTD:
		root, err = ast.ParseDTD(source, alpha)
	default:
		return nil, fmt.Errorf("dregex: unknown syntax %d", syntax)
	}
	if err != nil {
		return nil, err
	}
	c, err := numeric.Compile(root, alpha)
	if err != nil {
		return nil, err
	}
	return &NumericExpr{source: source, c: c}, nil
}

// Source returns the original expression text.
func (e *NumericExpr) Source() string { return e.source }

// IsDeterministic reports the linear §3.3 verdict.
func (e *NumericExpr) IsDeterministic() bool { return e.c.IsDeterministic() }

// Rule names the condition that proved nondeterminism ("" when
// deterministic).
func (e *NumericExpr) Rule() string { return e.c.Result().Rule }

// MatchSymbols matches a word of symbol names by counter simulation.
func (e *NumericExpr) MatchSymbols(names []string) bool { return e.c.MatchNames(names) }

// MatchText matches a math-notation word (one rune per symbol).
func (e *NumericExpr) MatchText(w string) bool {
	names := make([]string, 0, len(w))
	for _, r := range w {
		names = append(names, string(r))
	}
	return e.c.MatchNames(names)
}

// IterationStats summarizes the counter structure.
func (e *NumericExpr) IterationStats() numeric.Stats { return e.c.Stats() }
