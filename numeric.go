package dregex

import (
	"dregex/internal/ast"
	"dregex/internal/numeric"
)

// NumericExpr is a compiled expression with XML-Schema numeric occurrence
// indicators e{m,n} (paper §3.3). Its determinism test runs in O(|e|)
// regardless of the magnitudes of the bounds — maxOccurs="1000000000"
// costs the same as maxOccurs="2" — improving the O(σ|e|) bound of
// Kilpeläinen's checker.
type NumericExpr struct {
	source string
	c      *numeric.Counted
}

// CompileNumeric parses (through the same front end as Compile) and
// preprocesses an expression that may use numeric occurrence indicators.
func CompileNumeric(source string, syntax Syntax) (*NumericExpr, error) {
	root, alpha, err := parseSource(source, syntax)
	if err != nil {
		return nil, err
	}
	c, err := numeric.Compile(root, alpha)
	if err != nil {
		return nil, err
	}
	return &NumericExpr{source: source, c: c}, nil
}

// Source returns the original expression text.
func (e *NumericExpr) Source() string { return e.source }

// IsDeterministic reports the linear §3.3 verdict.
func (e *NumericExpr) IsDeterministic() bool { return e.c.IsDeterministic() }

// Rule names the condition that proved nondeterminism ("" when
// deterministic).
func (e *NumericExpr) Rule() string { return e.c.Result().Rule }

// MatchSymbols matches a word of symbol names by counter simulation.
func (e *NumericExpr) MatchSymbols(names []string) bool { return e.c.MatchNames(names) }

// MatchWord matches a word of interned symbols (see NumericExpr.Intern).
func (e *NumericExpr) MatchWord(word []ast.Symbol) bool { return e.c.Match(word) }

// Intern translates symbol names to interned symbols without mutating the
// alphabet; unknown names map to a sentinel the simulation rejects.
func (e *NumericExpr) Intern(names []string) []ast.Symbol {
	return e.c.Alpha.LookupWord(make([]ast.Symbol, 0, len(names)), names)
}

// MatchText matches a math-notation word (one rune per symbol), interning
// runes directly instead of materializing a per-rune string slice.
func (e *NumericExpr) MatchText(w string) bool {
	word := make([]ast.Symbol, 0, len(w))
	for _, r := range w {
		s, ok := e.c.Alpha.LookupRune(r)
		if !ok {
			return false
		}
		word = append(word, s)
	}
	return e.c.Match(word)
}

// IterationStats summarizes the counter structure.
func (e *NumericExpr) IterationStats() numeric.Stats { return e.c.Stats() }
