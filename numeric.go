package dregex

import (
	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/numeric"
	"dregex/internal/parsetree"
)

// NumericExpr is a compiled expression with XML-Schema numeric occurrence
// indicators e{m,n} (paper §3.3). Its determinism test runs in O(|e|)
// regardless of the magnitudes of the bounds — maxOccurs="1000000000"
// costs the same as maxOccurs="2" — improving the O(σ|e|) bound of
// Kilpeläinen's checker. Like Expr, a NumericExpr is immutable and safe
// for concurrent use once compiled.
type NumericExpr struct {
	source string
	c      *numeric.Counted
	m      NumericMatcher
	// explain memoizes the Explain diagnosis, like Expr.explain.
	explain ambSlot
}

// CompileNumeric parses (through the same front end as Compile) and
// preprocesses an expression that may use numeric occurrence indicators.
func CompileNumeric(source string, syntax Syntax) (*NumericExpr, error) {
	root, alpha, err := parseSource(source, syntax)
	if err != nil {
		return nil, err
	}
	c, err := numeric.Compile(root, alpha)
	if err != nil {
		return nil, err
	}
	e := &NumericExpr{source: source, c: c}
	e.m = NumericMatcher{c: c}
	numericBuilds.Add(1)
	return e, nil
}

// Source returns the original expression text.
func (e *NumericExpr) Source() string { return e.source }

// IsDeterministic reports the linear §3.3 verdict.
func (e *NumericExpr) IsDeterministic() bool { return e.c.IsDeterministic() }

// Rule names the condition that proved nondeterminism ("" when
// deterministic).
func (e *NumericExpr) Rule() string { return e.c.Result().Rule }

// Explain returns a counterexample diagnosis for a nondeterministic
// expression (nil for deterministic ones), with the same shape the plain
// pipeline produces: the rule that fired, the doubly-matchable symbol, and
// — when one can be verified — a witness word whose last letter is the
// ambiguous symbol. Counter-level ambiguities (a position competing with
// itself on diverging counter values, e.g. a nullable iteration body) have
// Q1 = Q2; the word then leads to the symbol at which the counters diverge.
// Diagnosis may take O(|Pos(e)|²); the verdict itself is always linear,
// and the diagnosis is memoized like Expr.Explain's.
func (e *NumericExpr) Explain() *Ambiguity {
	det := e.c.Result()
	if det.Deterministic {
		return nil
	}
	e.explain.once.Do(func() { e.explain.amb = e.diagnose(det) })
	return e.explain.amb.clone()
}

func (e *NumericExpr) diagnose(det *determinism.Result) *Ambiguity {
	amb := &Ambiguity{Rule: det.Rule}
	if det.Q1 != parsetree.Null {
		amb.Symbol = e.c.Tree.Label(det.Q1)
	}
	w := determinism.DiagnoseLoops(e.c.Tree, e.c.Fol, det)
	if w == nil {
		return amb
	}
	amb.Symbol = e.c.Tree.Label(w.Q1)
	word := determinism.ShortestWitnessWordLoops(e.c.Tree, e.c.Fol, w)
	if word == nil {
		return amb
	}
	// The witness word comes from the plain follow relation; a counter
	// minimum could make it infeasible (an exit before Min). Keep it only
	// if the counter simulation confirms it is a viable prefix.
	var s numeric.Stream
	s.Init(e.c)
	for _, a := range word {
		if !s.Feed(a) {
			return amb
		}
	}
	for _, a := range word {
		amb.Word = append(amb.Word, e.c.Alpha.Name(a))
	}
	return amb
}

// MatchSymbols matches a word of symbol names by counter simulation.
func (e *NumericExpr) MatchSymbols(names []string) bool { return e.c.MatchNames(names) }

// MatchWord matches a word of interned symbols (see NumericExpr.Intern).
func (e *NumericExpr) MatchWord(word []ast.Symbol) bool { return e.c.Match(word) }

// Intern translates symbol names to interned symbols without mutating the
// alphabet; unknown names map to a sentinel the simulation rejects.
func (e *NumericExpr) Intern(names []string) []ast.Symbol {
	return e.c.Alpha.LookupWord(make([]ast.Symbol, 0, len(names)), names)
}

// InternInto is Intern appending into a caller-provided buffer, for
// allocation-free reuse across calls.
func (e *NumericExpr) InternInto(dst []ast.Symbol, names []string) []ast.Symbol {
	return e.c.Alpha.LookupWord(dst, names)
}

// MatchText matches a math-notation word (one rune per symbol), interning
// runes directly instead of materializing a per-rune string slice.
func (e *NumericExpr) MatchText(w string) bool {
	word := make([]ast.Symbol, 0, len(w))
	for _, r := range w {
		s, ok := e.c.Alpha.LookupRune(r)
		if !ok {
			return false
		}
		word = append(word, s)
	}
	return e.c.Match(word)
}

// IterationStats summarizes the counter structure.
func (e *NumericExpr) IterationStats() numeric.Stats { return e.c.Stats() }

// NumericStream is the reusable per-word state of the counter engine: feed
// symbols one at a time, query acceptance at any prefix. It is the numeric
// counterpart of match.Stream — embed one by value per worker or stack
// frame and rewind it with NumericMatcher.InitStream for the
// zero-allocation steady-state path.
type NumericStream = numeric.Stream

// NumericMatcher matches words against one compiled counted expression by
// streaming counter simulation. It is the NumericExpr counterpart of
// Matcher: safe for concurrent use (per-word state lives in NumericStream
// values), obtained from NumericExpr.Matcher, and shared by all callers of
// the same NumericExpr. Unlike the deterministic plain engines it accepts
// nondeterministic expressions too — the simulation then tracks every live
// run, like the NFA engine.
type NumericMatcher struct {
	c *numeric.Counted
}

// Matcher returns the counter-simulation engine. The same engine value
// backs every call (parity with Expr.Matcher's per-algorithm cache; the
// counter engine needs no construction beyond compilation itself).
func (e *NumericExpr) Matcher() *NumericMatcher { return &e.m }

// MatchSymbols matches a word given as symbol names.
func (m *NumericMatcher) MatchSymbols(names []string) bool { return m.c.MatchNames(names) }

// MatchWord matches a word of interned symbols (see NumericExpr.Intern).
// Hot callers should prefer a reused NumericStream via InitStream: that
// path performs no allocation in steady state, while MatchWord sets up a
// fresh stream per call.
func (m *NumericMatcher) MatchWord(word []ast.Symbol) bool { return m.c.Match(word) }

// MatchText matches a math-notation word (one rune per symbol).
func (m *NumericMatcher) MatchText(w string) bool {
	word := make([]ast.Symbol, 0, len(w))
	for _, r := range w {
		s, ok := m.c.Alpha.LookupRune(r)
		if !ok {
			return false
		}
		word = append(word, s)
	}
	return m.c.Match(word)
}

// Stream starts an incremental match at the empty prefix.
func (m *NumericMatcher) Stream() *NumericStream { return numeric.NewStream(m.c) }

// InitStream rewinds a caller-owned stream onto this matcher's expression,
// for allocation-free reuse (one NumericStream value per goroutine or stack
// frame, reset per word). It always reports true — the counter engine
// streams every expression — mirroring Matcher.InitStream's signature.
func (m *NumericMatcher) InitStream(s *NumericStream) bool {
	s.Init(m.c)
	return true
}
