// Cross-engine differential test: every engine of §4 — and the Theorem
// 4.12 batch matcher where legal — must agree on every word. Expressions
// come from the internal/wordgen families; words are sampled from the
// language (positives) and perturbed or random (negatives).
package dregex_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dregex"
	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

// diffCase is one compiled expression plus a word corpus in name form.
type diffCase struct {
	source string
	corpus [][]string
}

// buildDiffCase renders a generated AST to DTD source and samples a mixed
// positive/negative corpus for it. The generator's parse tree is used only
// for sampling; the engines under test recompile from source through the
// public API, so the two alphabets are decoupled deliberately.
func buildDiffCase(t *testing.T, r *rand.Rand, root *ast.Node, alpha *ast.Alphabet) diffCase {
	t.Helper()
	tr, err := parsetree.Build(ast.Normalize(root), alpha)
	if err != nil {
		t.Fatal(err)
	}
	fol := follow.New(tr)
	toNames := func(w []ast.Symbol) []string {
		names := make([]string, len(w))
		for i, s := range w {
			names[i] = alpha.Name(s)
		}
		return names
	}
	var corpus [][]string
	corpus = append(corpus, []string{}) // empty word
	for i := 0; i < 6; i++ {
		if w, ok := words.RandomWord(r, fol, 24, 0.15); ok {
			corpus = append(corpus, toNames(w))
			corpus = append(corpus, toNames(words.Mutate(r, tr, w, 1+r.Intn(3))))
		}
	}
	for i := 0; i < 4; i++ {
		corpus = append(corpus, toNames(words.NoiseWord(r, tr, 1+r.Intn(12))))
	}
	corpus = append(corpus, []string{"never-declared-name"})
	return diffCase{source: ast.StringDTD(root, alpha), corpus: corpus}
}

func TestEnginesUnanimous(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var cases []diffCase
	for i := 0; i < 30; i++ {
		alpha := ast.NewAlphabet()
		root := wordgen.RandomDeterministicExpr(r, alpha, 8+r.Intn(8), 30+r.Intn(30), i%3 == 0)
		cases = append(cases, buildDiffCase(t, r, root, alpha))
	}
	for i := 0; i < 20; i++ {
		// Star-free family: exercises StarFreeScan and the batch engine.
		alpha := ast.NewAlphabet()
		root := wordgen.StarFree(r, alpha, 10+r.Intn(10), 30+r.Intn(30))
		cases = append(cases, buildDiffCase(t, r, root, alpha))
	}
	for i := 0; i < 10; i++ {
		// CHARE family: the shape of real-world DTD content models.
		alpha := ast.NewAlphabet()
		root := ast.DesugarPlus(wordgen.CHARE(r, alpha, 2+r.Intn(5), 4))
		cases = append(cases, buildDiffCase(t, r, root, alpha))
	}

	for ci, c := range cases {
		c := c
		t.Run(fmt.Sprintf("case%02d", ci), func(t *testing.T) {
			e, err := dregex.Compile(c.source, dregex.DTD)
			if err != nil {
				t.Fatalf("Compile(%q): %v", c.source, err)
			}
			if !e.IsDeterministic() {
				t.Fatalf("generator emitted nondeterministic %q (%s)", c.source, e.Rule())
			}
			algos := []dregex.Algorithm{
				dregex.Table, dregex.KORE, dregex.Colored, dregex.ColoredBinary,
				dregex.PathDecomp, dregex.Climbing, dregex.NFA,
			}
			if e.Stats().StarFree {
				algos = append(algos, dregex.StarFreeScan)
			}

			// Reference verdicts from the k-ORE engine.
			ref := make([]bool, len(c.corpus))
			refM, err := e.Matcher(dregex.KORE)
			if err != nil {
				t.Fatal(err)
			}
			for wi, names := range c.corpus {
				ref[wi] = refM.MatchSymbols(names)
			}

			for _, algo := range algos {
				m, err := e.Matcher(algo)
				if err != nil {
					t.Fatalf("Matcher(%v): %v", algo, err)
				}
				for wi, names := range c.corpus {
					if got := m.MatchSymbols(names); got != ref[wi] {
						t.Errorf("%v disagrees on %q / word %v: got %v, want %v",
							algo, c.source, names, got, ref[wi])
					}
					if got := m.MatchWord(e.Intern(names)); got != ref[wi] {
						t.Errorf("%v interned path disagrees on %q / word %v",
							algo, c.source, names)
					}
				}
			}

			// MatchAll under Auto (batch engine for the star-free cases)
			// and under an explicit engine must both agree.
			for _, algo := range []dregex.Algorithm{dregex.Auto, dregex.Colored} {
				all, err := e.MatchAll(c.corpus, algo)
				if err != nil {
					t.Fatalf("MatchAll(%v): %v", algo, err)
				}
				for wi := range c.corpus {
					if all[wi] != ref[wi] {
						t.Errorf("MatchAll(%v) disagrees on %q / word %v: got %v, want %v",
							algo, c.source, c.corpus[wi], all[wi], ref[wi])
					}
				}
			}
		})
	}
}

// TestEngineWitnessesUnanimous extends the differential test to parse
// witnesses: every recorded engine must produce the identical position
// trace, failure point, expected-next set, and parse tree — the trace is
// the parse, so a disagreement is an engine bug even when the verdicts
// agree. The counter engine recompiles the same source through the numeric
// pipeline (the normalized trees are node-for-node identical) and must
// report config-set-equivalent witnesses: same verdict and failure point,
// and wherever its configuration set is a singleton, the same position.
func TestEngineWitnessesUnanimous(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var cases []diffCase
	for i := 0; i < 12; i++ {
		alpha := ast.NewAlphabet()
		root := wordgen.RandomDeterministicExpr(r, alpha, 8+r.Intn(8), 30+r.Intn(30), i%3 == 0)
		cases = append(cases, buildDiffCase(t, r, root, alpha))
	}
	for i := 0; i < 6; i++ {
		alpha := ast.NewAlphabet()
		root := ast.DesugarPlus(wordgen.CHARE(r, alpha, 2+r.Intn(5), 4))
		cases = append(cases, buildDiffCase(t, r, root, alpha))
	}

	for ci, c := range cases {
		c := c
		t.Run(fmt.Sprintf("case%02d", ci), func(t *testing.T) {
			e, err := dregex.Compile(c.source, dregex.DTD)
			if err != nil {
				t.Fatalf("Compile(%q): %v", c.source, err)
			}
			refM, err := e.Matcher(dregex.KORE)
			if err != nil {
				t.Fatal(err)
			}
			ref := make([]*dregex.ParseResult, len(c.corpus))
			for wi, names := range c.corpus {
				if ref[wi], err = refM.Parse(names); err != nil {
					t.Fatal(err)
				}
			}

			for _, algo := range []dregex.Algorithm{
				dregex.Table, dregex.Colored, dregex.ColoredBinary,
				dregex.PathDecomp, dregex.Climbing,
			} {
				m, err := e.Matcher(algo)
				if err != nil {
					t.Fatalf("Matcher(%v): %v", algo, err)
				}
				for wi, names := range c.corpus {
					got, err := m.Parse(names)
					if err != nil {
						t.Fatal(err)
					}
					want := ref[wi]
					if got.Accepted != want.Accepted || got.FailedAt != want.FailedAt {
						t.Errorf("%v verdict on %q / %v: (%v,%d) want (%v,%d)",
							algo, c.source, names, got.Accepted, got.FailedAt, want.Accepted, want.FailedAt)
						continue
					}
					if !reflect.DeepEqual(got.Trace, want.Trace) {
						t.Errorf("%v trace on %q / %v:\n got %v\nwant %v",
							algo, c.source, names, got.Trace, want.Trace)
					}
					if !reflect.DeepEqual(got.Expected, want.Expected) {
						t.Errorf("%v expected-next on %q / %v: got %v, want %v",
							algo, c.source, names, got.Expected, want.Expected)
					}
					if got.TreeString() != want.TreeString() {
						t.Errorf("%v tree on %q / %v:\n got %s\nwant %s",
							algo, c.source, names, got.TreeString(), want.TreeString())
					}
				}
			}

			// Counter engine on the same source: the numeric pipeline
			// normalizes to the identical tree, so node ids line up.
			ne, err := dregex.CompileNumeric(c.source, dregex.DTD)
			if err != nil {
				t.Fatalf("CompileNumeric(%q): %v", c.source, err)
			}
			if !ne.IsDeterministic() {
				return // the plain pipeline's determinism test is stricter
			}
			nm := ne.Matcher()
			for wi, names := range c.corpus {
				got, err := nm.Parse(names)
				if err != nil {
					t.Fatal(err)
				}
				want := ref[wi]
				if got.Accepted != want.Accepted || got.FailedAt != want.FailedAt {
					t.Errorf("numeric verdict on %q / %v: (%v,%d) want (%v,%d)",
						c.source, names, got.Accepted, got.FailedAt, want.Accepted, want.FailedAt)
					continue
				}
				if len(got.Trace) != len(want.Trace) {
					t.Errorf("numeric trace length on %q / %v: %d want %d",
						c.source, names, len(got.Trace), len(want.Trace))
					continue
				}
				for i := range got.Trace {
					if got.Trace[i] != parsetree.Null && got.Trace[i] != want.Trace[i] {
						t.Errorf("numeric trace[%d] on %q / %v: %v want %v",
							i, c.source, names, got.Trace[i], want.Trace[i])
					}
				}
				if !reflect.DeepEqual(got.Expected, want.Expected) {
					t.Errorf("numeric expected-next on %q / %v: got %v, want %v",
						c.source, names, got.Expected, want.Expected)
				}
			}
		})
	}
}

// TestTableBudgetBoundary proves the Auto fallback engages exactly at the
// size cutoff: the largest n with (n+2)² ≤ TableBudget resolves Auto to
// Table, n+1 falls back to the §4 ladder — and both engines agree with the
// reference on every sampled word.
func TestTableBudgetBoundary(t *testing.T) {
	// Largest n with (n+2)*(n+2) <= TableBudget.
	n := 2
	for (n+3)*(n+3) <= dregex.TableBudget {
		n++
	}
	under := dregex.MustCompile(wordgen.OptChainDTD(n), dregex.DTD)
	over := dregex.MustCompile(wordgen.OptChainDTD(n+1), dregex.DTD)

	entries := func(e *dregex.Expr) int {
		st := e.Stats()
		return (st.Positions + 2) * (st.Sigma + 2)
	}
	if got := entries(under); got > dregex.TableBudget {
		t.Fatalf("under-budget expression computes %d entries > budget %d", got, dregex.TableBudget)
	}
	if got := entries(over); got <= dregex.TableBudget {
		t.Fatalf("over-budget expression computes %d entries <= budget %d", got, dregex.TableBudget)
	}

	mUnder, err := under.Matcher(dregex.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if mUnder.Algorithm() != dregex.Table {
		t.Errorf("at the cutoff (%d entries) Auto resolves to %v, want Table", entries(under), mUnder.Algorithm())
	}
	mOver, err := over.Matcher(dregex.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if mOver.Algorithm() == dregex.Table {
		t.Errorf("one position past the cutoff (%d entries) Auto still resolves to Table", entries(over))
	}
	// An explicit Table request past the budget must refuse, not build a
	// bigger table.
	if _, err := over.Matcher(dregex.Table); err == nil {
		t.Error("explicit Matcher(Table) past the budget must fail")
	}

	// Differential verification across the boundary: the fallback engine
	// must agree with the reference (k-ORE) on the same corpus, exactly as
	// the table engine does just under the cutoff.
	corpus := [][]string{
		{},
		{"a0"},
		{"a0", "a1", "a2"},
		{"a2", "a0"}, // out of order: reject
		{"a1", fmt.Sprintf("a%d", n-1)},
		{"a0", "a0"}, // repeat: reject
		{"nope"},
	}
	for _, e := range []*dregex.Expr{under, over} {
		ref, err := e.Matcher(dregex.KORE)
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Matcher(dregex.Auto)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range corpus {
			want := ref.MatchSymbols(w)
			if got := m.MatchSymbols(w); got != want {
				t.Errorf("%v (auto=%v) disagrees with kore on %v: got %v, want %v",
					e.Source()[:24]+"…", m.Algorithm(), w, got, want)
			}
			if got := m.MatchWord(e.Intern(w)); got != want {
				t.Errorf("%v (auto=%v) interned path disagrees on %v", e.Source()[:24]+"…", m.Algorithm(), w)
			}
		}
	}
}
