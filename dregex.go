// Package dregex is a library for deterministic regular expressions — the
// class required of content models in DTDs and XML Schema — implementing
// the algorithms of Groz, Maneth and Staworko, "Deterministic Regular
// Expressions in Linear Time" (PODS 2012):
//
//   - determinism (one-unambiguity) testing in O(|e|) time (Theorem 3.5),
//     with counterexample diagnosis;
//   - word matching by transition simulation in O(|e| + |w|·f) time with
//     f = k for k-occurrence expressions (Theorem 4.3), f = c_e for
//     bounded union/concatenation alternation depth (Theorem 4.10), and
//     f = log log |e| for arbitrary deterministic expressions
//     (Theorem 4.2);
//   - batch matching of many words against star-free expressions in
//     combined linear time (Theorem 4.12);
//   - determinism testing with XML-Schema numeric occurrence indicators
//     e{m,n} in O(|e|) (§3.3).
//
// Two concrete syntaxes are accepted: the paper's mathematical notation
// ("(ab+b(b?)a)*", one rune per symbol) and DTD content-model notation
// ("(title, author+, (section | appendix)*)"). All matchers are streaming:
// input is consumed symbol by symbol in one pass.
//
// The library is shaped for amortized use, the workload of real schema
// validators (a small set of content models matched at enormous rates):
//
//   - Compile runs every O(|e|) preprocessing step once, including Stats;
//   - Expr lazily builds and permanently caches one engine per Algorithm,
//     so repeated Matcher and MatchAll calls never rebuild a simulator;
//   - Cache is a sharded, concurrency-safe LRU over compiled expressions
//     keyed by (syntax, source), deduplicating concurrent compiles;
//   - Expr.Intern plus Matcher.MatchWord (or a value match.Stream reused
//     via Matcher.InitStream) give a steady-state match path with zero
//     allocations and no per-symbol map lookups.
package dregex

import (
	"errors"
	"fmt"
	"sync"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/match/starfree"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// Syntax selects the concrete syntax accepted by Compile.
type Syntax int

// Concrete syntaxes.
const (
	// Math is the paper's notation: single-rune symbols, juxtaposition
	// for concatenation, + for union, postfix * ? {m,n}.
	Math Syntax = iota
	// DTD is XML content-model notation: multi-rune names, ',' for
	// concatenation, '|' for union, postfix * ? + {m,n}.
	DTD
	// XSD is the notation of content models lowered from XML Schema
	// complex types (package internal/xsd). It parses exactly like DTD —
	// the lowering serializes sequence/choice particles into that grammar,
	// with minOccurs/maxOccurs as {m,n} — but forms its own cache-key
	// space: an XSD-derived model and a syntactically identical DTD model
	// are distinct Cache entries, so purging or bounding one workload never
	// evicts the other's hot models.
	XSD
)

// Expr is a compiled expression. It is immutable and safe for concurrent
// use once compiled; the per-algorithm engine cache is filled lazily under
// sync.Once, so sharing one Expr across goroutines shares its engines.
type Expr struct {
	source string
	syntax Syntax
	alpha  *ast.Alphabet
	root   *ast.Node // normalized, plus-desugared user expression
	tree   *parsetree.Tree
	fol    *follow.Index
	sks    *skeleton.Skeletons
	det    *determinism.Result
	stats  Stats     // memoized at compile time
	auto   Algorithm // Auto resolved against stats, once, at compile time

	// engines[a] caches the Algorithm(a) simulator; batch caches the
	// Theorem 4.12 star-free multi-word engine. Both build on first use
	// and are then reused for the lifetime of the Expr.
	engines [numAlgorithms]engineSlot
	batch   batchSlot

	// explain memoizes the (possibly quadratic) Explain diagnosis, so a
	// hot nondeterministic expression served from a cache diagnoses once.
	explain ambSlot
}

type ambSlot struct {
	once sync.Once
	amb  *Ambiguity
}

type engineSlot struct {
	once sync.Once
	m    *Matcher
	err  error
}

type batchSlot struct {
	once sync.Once
	b    *starfree.Batch
	err  error
}

// ErrNumericIndicator is returned by Compile for expressions with numeric
// occurrence indicators beyond e+ — use CompileNumeric (package numeric's
// pipeline) for those.
var ErrNumericIndicator = errors.New("dregex: numeric occurrence indicators require CompileNumeric")

// Compile parses, normalizes (rules R1–R3 of the paper) and preprocesses an
// expression: LCA structures, the Lemma 2.3 pointers, the §3.1 skeleta and
// the linear determinism test all run here, in O(|e|) total. The e+
// postfix of DTD syntax is desugared to e·e* (determinism-preserving);
// other numeric bounds are rejected — see CompileNumeric.
func Compile(source string, syntax Syntax) (*Expr, error) {
	root, alpha, err := parseSource(source, syntax)
	if err != nil {
		return nil, err
	}
	return compileAST(source, syntax, root, alpha)
}

// parseSource is the single parse front end shared by Compile and
// CompileNumeric (and, through them, by Cache).
func parseSource(source string, syntax Syntax) (*ast.Node, *ast.Alphabet, error) {
	alpha := ast.NewAlphabet()
	var root *ast.Node
	var err error
	switch syntax {
	case Math:
		root, err = ast.ParseMath(source, alpha)
	case DTD, XSD:
		root, err = ast.ParseDTD(source, alpha)
	default:
		return nil, nil, fmt.Errorf("dregex: unknown syntax %d", syntax)
	}
	if err != nil {
		return nil, nil, err
	}
	return root, alpha, nil
}

func compileAST(source string, syntax Syntax, root *ast.Node, alpha *ast.Alphabet) (*Expr, error) {
	root = ast.Normalize(ast.DesugarPlus(ast.Normalize(root)))
	if err := ast.ValidatePlain(root); err != nil {
		return nil, ErrNumericIndicator
	}
	tree, err := parsetree.Build(root, alpha)
	if err != nil {
		return nil, err
	}
	fol := follow.New(tree)
	sks := skeleton.Build(tree, fol, skeleton.Options{})
	det := determinism.CheckSkeletons(tree, sks, false)
	e := &Expr{
		source: source,
		syntax: syntax,
		alpha:  alpha,
		root:   root,
		tree:   tree,
		fol:    fol,
		sks:    sks,
		det:    det,
	}
	e.stats = computeStats(e)
	e.auto = autoSelect(e.stats)
	recordAutoSelection(e.auto, e.stats)
	return e, nil
}

// MustCompile is Compile that panics on error, for tests and constants.
func MustCompile(source string, syntax Syntax) *Expr {
	e, err := Compile(source, syntax)
	if err != nil {
		panic(err)
	}
	return e
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.source }

// String renders the normalized expression in its own syntax.
func (e *Expr) String() string {
	if e.syntax == DTD || e.syntax == XSD {
		return ast.StringDTD(e.root, e.alpha)
	}
	return ast.StringMath(e.root, e.alpha)
}

// IsDeterministic reports whether the expression is deterministic
// (one-unambiguous); the verdict was computed at compile time in O(|e|).
func (e *Expr) IsDeterministic() bool { return e.det.Deterministic }

// Rule names the internal condition that proved nondeterminism ("P1",
// "P2", "W-N", …); it is "" for deterministic expressions. Unlike Explain
// it costs nothing beyond the compile-time verdict.
func (e *Expr) Rule() string { return e.det.Rule }

// Ambiguity describes why an expression is nondeterministic: a word w and
// the two distinct positions of symbol Symbol that can both consume its
// last letter.
type Ambiguity struct {
	// Rule is the internal condition that fired ("P1", "P2", "W-N", …).
	Rule string
	// Symbol is the doubly-matchable symbol name.
	Symbol string
	// Word is a shortest witness word (as symbol names) whose last letter
	// is ambiguous; nil if the verdict predates diagnosis.
	Word []string
}

// clone copies an Ambiguity so every Explain call keeps returning a value
// the caller owns outright, even though the diagnosis itself is memoized.
func (a *Ambiguity) clone() *Ambiguity {
	if a == nil {
		return nil
	}
	c := *a
	c.Word = append([]string(nil), a.Word...)
	return &c
}

// Explain returns a verified counterexample for a nondeterministic
// expression (nil for deterministic ones). Diagnosis may take
// O(|Pos(e)|²); the verdict itself is always linear, and the diagnosis is
// memoized — repeated Explain calls (a hot nondeterministic expression
// behind a Cache, say) cost a pointer read after the first.
func (e *Expr) Explain() *Ambiguity {
	if e.det.Deterministic {
		return nil
	}
	e.explain.once.Do(func() {
		w := determinism.Diagnose(e.tree, e.fol, e.det)
		if w == nil {
			e.explain.amb = &Ambiguity{Rule: e.det.Rule}
			return
		}
		amb := &Ambiguity{
			Rule:   e.det.Rule,
			Symbol: e.tree.Label(w.Q1),
		}
		for _, s := range determinism.ShortestWitnessWord(e.tree, e.fol, w) {
			amb.Word = append(amb.Word, e.alpha.Name(s))
		}
		e.explain.amb = amb
	})
	return e.explain.amb.clone()
}

// Stats summarizes the structural parameters the paper's complexity bounds
// depend on.
type Stats struct {
	// Size is the parse-tree node count including the (R1) wrapper.
	Size int
	// Positions is |Pos(e)| excluding the phantom # and $.
	Positions int
	// Sigma is the number of distinct symbols.
	Sigma int
	// K is the maximal occurrence count of any symbol (k-ORE parameter).
	K int
	// AlternationDepth is c_e, the maximal +/⊙ alternation depth.
	AlternationDepth int
	// StarFree reports absence of ∗.
	StarFree bool
	// Depth is the parse-tree depth.
	Depth int
	// Deterministic mirrors IsDeterministic.
	Deterministic bool
}

// Stats returns the structural summary, computed once at compile time.
func (e *Expr) Stats() Stats { return e.stats }

func computeStats(e *Expr) Stats {
	s := Stats{
		Size:             e.tree.N(),
		Positions:        e.tree.NumPositions() - 2,
		Sigma:            e.alpha.UserSize(),
		K:                ast.MaxOccurrence(e.root),
		AlternationDepth: ast.AlternationDepth(e.root),
		StarFree:         !ast.HasStar(e.root),
		Deterministic:    e.det.Deterministic,
	}
	for n := int32(0); n < int32(e.tree.N()); n++ {
		if d := int(e.tree.Depth[n]); d > s.Depth {
			s.Depth = d
		}
	}
	return s
}

// Symbols returns the distinct symbol names of the expression.
func (e *Expr) Symbols() []string { return e.alpha.Names() }

// Symbol is an interned symbol id (dense, expression-local). It aliases
// the internal representation so interned words flow between Intern,
// MatchWord and Stream.Feed without conversion.
type Symbol = ast.Symbol

// Intern translates a word of symbol names to the expression's interned
// symbols: the input format of Matcher.MatchWord, Stream.Feed and
// Expr.MatchAllWords. Names outside the alphabet map to a sentinel every
// engine rejects, so interning never mutates the (shared, concurrently
// read) alphabet. Interning once and matching many times removes all
// per-symbol map lookups from the hot path.
func (e *Expr) Intern(names []string) []ast.Symbol {
	return e.alpha.LookupWord(make([]ast.Symbol, 0, len(names)), names)
}

// InternInto is Intern appending into a caller-provided buffer, for
// allocation-free reuse across calls.
func (e *Expr) InternInto(dst []ast.Symbol, names []string) []ast.Symbol {
	return e.alpha.LookupWord(dst, names)
}
