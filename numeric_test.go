package dregex

import "testing"

func TestCompileNumeric(t *testing.T) {
	cases := []struct {
		src    string
		syntax Syntax
		det    bool
	}{
		{"(ab){2}a(b+d)", Math, true},
		{"(ab){1,2}a", Math, false},
		{"((a{2,3}+b){2}){2}b", Math, false},
		{"(a{2,1000000000}b)*", Math, true},
		{"item{3,7}", DTD, true},
		{"(a{1,2}), a", DTD, false},
	}
	for _, c := range cases {
		e, err := CompileNumeric(c.src, c.syntax)
		if err != nil {
			t.Fatalf("CompileNumeric(%q): %v", c.src, err)
		}
		if got := e.IsDeterministic(); got != c.det {
			t.Errorf("%q: deterministic = %v (%s), want %v", c.src, got, e.Rule(), c.det)
		}
		if e.Source() != c.src {
			t.Errorf("%q: source lost", c.src)
		}
	}
}

func TestNumericMatching(t *testing.T) {
	e, err := CompileNumeric("(ab){2,3}c", Math)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range map[string]bool{
		"ababc":     true,
		"abababc":   true,
		"abc":       false,
		"ababababc": false,
		"abab":      false,
	} {
		if got := e.MatchText(w); got != want {
			t.Errorf("MatchText(%q) = %v, want %v", w, got, want)
		}
	}
	if !e.MatchSymbols([]string{"a", "b", "a", "b", "c"}) {
		t.Error("MatchSymbols failed on abab c")
	}
	st := e.IterationStats()
	if st.Iterations != 1 || st.Flexible != 1 || st.Unbounded {
		t.Errorf("IterationStats = %+v", st)
	}
}

func TestCompileNumericErrors(t *testing.T) {
	if _, err := CompileNumeric("(((", Math); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := CompileNumeric("a{3,2}", Math); err == nil {
		t.Error("inverted bounds accepted")
	}
}
