package dregex

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheReturnsSharedExpr(t *testing.T) {
	c := NewCache(64)
	e1, err := c.Get("(a|b)*, c", DTD)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Get("(a|b)*, c", DTD)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("second Get must return the cached *Expr")
	}
	// Same source under the other syntax is a distinct key.
	if e3, err := c.Get("ab", Math); err != nil || e3 == e1 {
		t.Errorf("Math/DTD keys must be distinct (%v)", err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("Stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Get("(((", Math); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := c.Get("(((", Math); err == nil {
		t.Fatal("expected cached parse error")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("error entry not cached: %+v", st)
	}
}

func TestCacheNumericSeparateKeyspace(t *testing.T) {
	c := NewCache(64)
	if _, err := c.Get("a{2,3}", Math); err != ErrNumericIndicator {
		t.Fatalf("plain pipeline: err = %v, want ErrNumericIndicator", err)
	}
	n, err := c.GetNumeric("a{2,3}", Math)
	if err != nil {
		t.Fatalf("numeric pipeline: %v", err)
	}
	if !n.IsDeterministic() || !n.MatchText("aa") || n.MatchText("a") {
		t.Error("numeric semantics wrong through cache")
	}
	n2, _ := c.GetNumeric("a{2,3}", Math)
	if n2 != n {
		t.Error("GetNumeric must return the cached *NumericExpr")
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity rounds to one entry per shard; overflowing a shard must
	// evict its least-recently-used entry, and Len must never exceed
	// the configured capacity.
	c := NewCache(16)
	for i := 0; i < 200; i++ {
		src := fmt.Sprintf("(a, b%d*)", i)
		if _, err := c.Get(src, DTD); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 16 {
		t.Errorf("Len = %d after overflow, want ≤ 16", n)
	}
	c.Purge()
	if n := c.Len(); n != 0 {
		t.Errorf("Len = %d after Purge", n)
	}
}

func TestCacheNegativeEntriesCannotEvictHot(t *testing.T) {
	// Failed compiles are cached in a segregated, separately bounded LRU:
	// however many distinct bad sources arrive, they evict only each
	// other, never a hot compiled expression.
	c := NewCache(16) // one compiled entry per shard — maximally evictable
	hot, err := c.Get("(a, b)", DTD)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 300
	for i := 0; i < bad; i++ {
		if _, err := c.Get(fmt.Sprintf("(((bad%d", i), Math); err == nil {
			t.Fatal("malformed source compiled")
		}
	}
	again, err := c.Get("(a, b)", DTD)
	if err != nil {
		t.Fatal(err)
	}
	if again != hot {
		t.Fatal("bad sources evicted the hot compiled expression")
	}
	st := c.Stats()
	if st.Misses != bad+1 {
		t.Errorf("Misses = %d, want %d (hot entry compiled once)", st.Misses, bad+1)
	}
	// Residency stays bounded: 16 compiled slots + 16 negative slots.
	if st.Entries > 32 {
		t.Errorf("Entries = %d after negative churn, want ≤ 32", st.Entries)
	}
	if st.Negative == 0 || st.Negative > 16 {
		t.Errorf("Negative = %d, want in (0, 16]", st.Negative)
	}
	// A repeated bad source is still served from the negative cache.
	before := c.Stats().Misses
	if _, err := c.Get(fmt.Sprintf("(((bad%d", bad-1), Math); err == nil {
		t.Fatal("expected cached error")
	}
	if c.Stats().Misses != before {
		t.Error("recent bad source recompiled instead of hitting the negative cache")
	}
}

func TestCacheConcurrentOverlappingKeys(t *testing.T) {
	// Many goroutines hammer a small key set concurrently; -race must be
	// quiet, verdicts must be correct, and each key must compile once
	// (entries stay resident: per-shard capacity exceeds the key count, so
	// no shard can evict however the seeded hash distributes the keys).
	c := NewCache(256)
	sources := []string{
		"(title, author+, (section | appendix)*)",
		"(a|b)*, c",
		"para*",
		"(login, (query, page*)*, logout)",
		"(((", // error entries participate too
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				src := sources[(g+i)%len(sources)]
				e, err := c.Get(src, DTD)
				if src == "(((" {
					if err == nil {
						t.Error("malformed source compiled")
					}
					continue
				}
				if err != nil {
					t.Errorf("Get(%q): %v", src, err)
					return
				}
				m, err := e.Matcher(Auto)
				if err != nil {
					t.Errorf("Matcher(%q): %v", src, err)
					return
				}
				m.MatchSymbols([]string{"a", "c"})
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != len(sources) {
		t.Errorf("Entries = %d, want %d", st.Entries, len(sources))
	}
	if want := uint64(16 * 300); st.Hits+st.Misses != want {
		t.Errorf("Hits+Misses = %d, want %d", st.Hits+st.Misses, want)
	}
	if st.Misses != uint64(len(sources)) {
		t.Errorf("Misses = %d, want one per key (%d)", st.Misses, len(sources))
	}
}

func TestCacheGetInfoCtx(t *testing.T) {
	c := NewCache(64)

	// A non-cancelable ctx takes the plain path with identical semantics.
	e1, hit, err := c.GetInfoCtx(context.Background(), "(a|b)*, c", DTD)
	if err != nil || hit {
		t.Fatalf("first GetInfoCtx: hit=%v err=%v", hit, err)
	}
	e2, hit, err := c.GetInfoCtx(context.Background(), "(a|b)*, c", DTD)
	if err != nil || !hit || e2 != e1 {
		t.Fatalf("second GetInfoCtx: hit=%v err=%v shared=%v", hit, err, e1 == e2)
	}

	// A cancelable-but-live ctx still resolves resolved entries immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e3, hit, err := c.GetInfoCtx(ctx, "(a|b)*, c", DTD)
	if err != nil || !hit || e3 != e1 {
		t.Fatalf("live-ctx GetInfoCtx: hit=%v err=%v shared=%v", hit, err, e1 == e3)
	}
}

func TestCacheCtxAbandonDoesNotPoison(t *testing.T) {
	c := NewCache(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the creator abandons its own compile

	_, _, err := c.GetInfoCtx(ctx, "x, y, z", DTD)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned wait: err = %v, want wrapped context.Canceled", err)
	}

	// The compile proceeded in the background and cached its true result:
	// within a bounded window the entry resolves, and later Gets hit it
	// without a hint of the earlier abandonment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e, hit, err := c.GetInfo("x, y, z", DTD)
		if err != nil {
			t.Fatalf("post-abandon GetInfo: %v", err)
		}
		if hit {
			if e == nil || !e.IsDeterministic() {
				t.Fatal("cached entry does not behave like a real compile")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background compile never resolved the entry")
		}
		time.Sleep(time.Millisecond)
	}

	// Same contract on the numeric pipeline, including negative results:
	// the abandoned waiter sees ctx.Err, later callers the cached compile
	// error — never a blend of the two.
	if _, _, err := c.GetNumericInfoCtx(ctx, "(((", Math); !errors.Is(err, context.Canceled) {
		t.Fatalf("numeric abandoned wait: err = %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, hit, err := c.GetNumericInfo("(((", Math)
		if hit {
			if err == nil {
				t.Fatal("cached negative entry lost its compile error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background numeric compile never resolved")
		}
		time.Sleep(time.Millisecond)
	}
}
