// XSD validation: check a schema's content models for Unique Particle
// Attribution (determinism with counters, decided by the paper's §3.3
// linear test however large the bounds), then validate instance documents
// against the minOccurs/maxOccurs constraints with streaming counter
// simulation.
package main

import (
	"fmt"

	"dregex/internal/xsd"
)

const schema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="survey">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="respondent" type="xs:string"/>
        <xs:element name="answer" type="AnswerType" minOccurs="3" maxOccurs="10"/>
        <xs:element name="comment" type="xs:string" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="AnswerType" mixed="true">
    <xs:sequence>
      <xs:element name="ref" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`

// nondetSchema violates Unique Particle Attribution in a way only the
// counter-aware test can see: after two <q>s, a third <q> could either
// continue the {1,3} iteration or be the trailing element.
const nondetSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="quiz">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="q" type="xs:string" maxOccurs="3"/>
        <xs:element name="q" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func answers(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "<answer>yes <ref>Q1</ref></answer>"
	}
	return s
}

func main() {
	s, err := xsd.Parse([]byte(schema))
	if err != nil {
		panic(err)
	}
	survey := s.Roots["survey"].Type
	fmt.Printf("survey content model: %s (numeric=%v, deterministic=%v)\n",
		survey.Model, survey.Numeric, survey.Deterministic)

	docs := []xsd.Doc{
		{Name: "ok", Data: []byte("<survey><respondent>r</respondent>" + answers(4) + "</survey>")},
		{Name: "too-few", Data: []byte("<survey><respondent>r</respondent>" + answers(2) + "</survey>")},
		{Name: "too-many", Data: []byte("<survey><respondent>r</respondent>" + answers(11) + "</survey>")},
	}
	for _, r := range xsd.NewValidator(s, 0).ValidateDocs(docs) {
		if r.Valid() {
			fmt.Printf("%-9s valid\n", r.Name)
			continue
		}
		fmt.Printf("%-9s invalid:\n", r.Name)
		for _, e := range r.Errors {
			fmt.Printf("          %s\n", e)
		}
	}

	// A UPA violation is reported with the counterexample diagnosis.
	bad, err := xsd.Parse([]byte(nondetSchema))
	if err != nil {
		panic(err)
	}
	for _, issue := range bad.Check() {
		fmt.Printf("lint: %s: %s\n", issue.Type, issue.Msg)
	}
}
