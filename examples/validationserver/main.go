// Example validationserver boots an in-process dregexd server on a free
// port, drives it with the Go client — register a DTD schema, validate a
// good and a bad document, hot-swap the schema, read the stats — and shuts
// down. It is the whole serving workflow of cmd/dregexd in one file.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"dregex/client"
	"dregex/internal/server"
)

func main() {
	s := server.New(server.Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	// A compile round trip: determinism verdict with a counterexample.
	verdict, err := c.Compile(ctx, client.CompileRequest{Expr: "(a, b) | (a, c)"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compile (a, b) | (a, c): deterministic=%v rule=%s word=%v\n",
		verdict.Deterministic, verdict.Rule, verdict.Ambiguity.Word)

	// Register a schema, validate against it.
	schema := `<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>
<!ENTITY sig "— the lab">`
	info, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(schema))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s (kind=%s version=%d elements=%d)\n",
		info.Name, info.Kind, info.Version, info.Elements)

	good := `<note><to>you</to><body>hi &sig;</body></note>`
	res, err := c.Validate(ctx, "note", []byte(good))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("good document valid=%v\n", res.Valid)

	bad := `<note><body>hi</body><to>you</to></note>`
	res, err = c.Validate(ctx, "note", []byte(bad))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bad document valid=%v errors=%d (%s)\n", res.Valid, len(res.Errors), res.Errors[0].Msg)

	// Hot-swap the schema under the same name; version bumps atomically.
	info, err = c.PutSchema(ctx, "note", client.KindDTD, []byte(`<!ELEMENT note (#PCDATA)>`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot-swapped %s to version %d\n", info.Name, info.Version)

	// The expression cache is shared across endpoints: recompiling the
	// nondeterminism example is now a hash probe, not a compile.
	if _, err := c.Compile(ctx, client.CompileRequest{Expr: "(a, b) | (a, c)"}); err != nil {
		log.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: cache hits=%d misses=%d hit-rate=%.2f, validate requests=%d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.HitRate,
		st.Endpoints["validate"].Requests)
}
