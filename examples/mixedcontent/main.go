// Mixed content at scale: the paper's motivating example E = (a1+…+am)*.
// Building the Glushkov automaton for E is Θ(m²) — "the quadratic behavior
// … is experienced even for very simple expressions such as E" (§1) —
// while the skeleton-based determinism test and the matchers stay linear.
package main

import (
	"fmt"
	"time"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/match/kore"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func main() {
	for _, m := range []int{1000, 4000, 100000} {
		alpha := ast.NewAlphabet()
		e := wordgen.MixedContent(alpha, m)
		tree, err := parsetree.Build(ast.Normalize(e), alpha)
		if err != nil {
			panic(err)
		}
		fol := follow.New(tree)

		t0 := time.Now()
		res := determinism.Check(tree, fol)
		linear := time.Since(t0)

		var quad time.Duration
		var transitions int
		if m <= 4000 { // the baseline becomes painful quickly
			t1 := time.Now()
			aut := glushkov.Build(tree)
			quad = time.Since(t1)
			transitions = aut.Size
		}

		fmt.Printf("m=%6d  linear test: %10v (det=%v)", m, linear, res.Deterministic)
		if transitions > 0 {
			fmt.Printf("   glushkov: %10v (%d transitions)", quad, transitions)
		} else {
			fmt.Printf("   glushkov: skipped (Θ(m²) ≈ %d transitions)", m*m)
		}
		fmt.Println()

		// Matching a mixed-content child sequence is O(1) per symbol.
		sim := kore.New(tree, fol)
		word := make([]string, 64)
		for i := range word {
			word[i] = wordgen.SymbolName(i % m)
		}
		fmt.Printf("          64-symbol sequence matches: %v\n", match.Names(sim, word))
	}
}
