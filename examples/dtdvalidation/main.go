// DTD validation: lint a publishing DTD for nondeterministic content
// models, then validate documents against it with streaming matchers.
package main

import (
	"fmt"
	"strings"

	"dregex/internal/dtd"
)

const bookDTD = `
<!ELEMENT book (title, author+, chapter+, appendix*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT chapter (title, (para | figure)*)>
<!ELEMENT appendix (title, para*)>
<!ELEMENT para (#PCDATA | em | code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT code EMPTY>
<!ELEMENT figure EMPTY>
`

const goodDoc = `<book>
  <title>Deterministic Regular Expressions</title>
  <author>Groz</author><author>Maneth</author><author>Staworko</author>
  <chapter>
    <title>Introduction</title>
    <para>Content models must be <em>deterministic</em>.</para>
    <figure/>
  </chapter>
  <appendix><title>Proofs</title><para>…</para></appendix>
</book>`

const badDoc = `<book>
  <author>Missing Title</author>
  <chapter><title>c</title><para><figure/></para></chapter>
</book>`

func main() {
	d, err := dtd.Parse(bookDTD)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed %d element declarations; lint issues: %d\n",
		len(d.Elements), len(d.Check()))

	for name, doc := range map[string]string{"good": goodDoc, "bad": badDoc} {
		errs, err := d.Validate(strings.NewReader(doc))
		if err != nil {
			panic(err)
		}
		if len(errs) == 0 {
			fmt.Printf("%s document: valid\n", name)
			continue
		}
		fmt.Printf("%s document: %d violation(s)\n", name, len(errs))
		for _, e := range errs {
			fmt.Printf("  %s\n", e)
		}
	}
}
