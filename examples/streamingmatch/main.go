// Streaming match: validate a long event stream against a deterministic
// protocol expression in one pass with O(1) state — the paper's
// "streamable" property (§1). The stream is never buffered.
package main

import (
	"fmt"
	"io"

	"dregex"
)

// protocol: a session is login, then any number of queries each optionally
// followed by a page of results, then logout:
//
//	login, (query, (page, page*)?)*, logout
func main() {
	e := dregex.MustCompile("(login, (query, page*)*, logout)", dregex.DTD)
	fmt.Printf("protocol %s deterministic: %v\n", e, e.IsDeterministic())
	m, err := e.Matcher(dregex.PathDecomp)
	if err != nil {
		panic(err)
	}

	// Simulate a long stream through an io.Pipe: the producer emits 3
	// million events; the consumer validates them as they arrive.
	r, w := io.Pipe()
	go func() {
		defer w.Close()
		io.WriteString(w, "login\n")
		for i := 0; i < 1_000_000; i++ {
			io.WriteString(w, "query page page ")
		}
		io.WriteString(w, "logout\n")
	}()
	ok, err := m.MatchReaderTokens(r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("3M-event stream valid: %v\n", ok)

	// Incremental API: inspect acceptance prefix by prefix.
	s := m.Stream()
	for _, ev := range []string{"login", "query", "logout"} {
		s.FeedName(ev)
		fmt.Printf("after %-7s alive=%v accepts=%v\n", ev, s.Alive(), s.Accepts())
	}

	// Steady state: one interned event vocabulary, one stream value,
	// Reset per session — no allocation per event or per session.
	events := e.Intern([]string{"login", "query", "page", "logout"})
	login, query, page, logout := events[0], events[1], events[2], events[3]
	sessions := [][]dregex.Symbol{
		{login, logout},
		{login, query, page, page, logout},
		{login, page, logout}, // invalid: page before query
	}
	for i, sess := range sessions {
		s.Reset()
		for _, ev := range sess {
			s.Feed(ev)
		}
		fmt.Printf("session %d valid: %v\n", i, s.Accepts())
	}
}
