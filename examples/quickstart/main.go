// Quickstart: compile an expression, test determinism, explain an
// ambiguity, and match words with the paper's algorithms.
package main

import (
	"fmt"
	"log"
	"strings"

	"dregex"
)

func main() {
	// Example 2.1 of the paper: e1 is deterministic, e2 is not.
	e1 := dregex.MustCompile("(ab+b(b?)a)*", dregex.Math)
	e2 := dregex.MustCompile("(a*ba+bb)*", dregex.Math)
	fmt.Printf("e1 = %s  deterministic: %v\n", e1, e1.IsDeterministic())
	fmt.Printf("e2 = %s  deterministic: %v\n", e2, e2.IsDeterministic())

	// Linear-time diagnosis: why is e2 nondeterministic?
	if amb := e2.Explain(); amb != nil {
		fmt.Printf("e2 ambiguity: after %q the next %q matches two positions (rule %s)\n",
			strings.Join(amb.Word[:len(amb.Word)-1], ""), amb.Symbol, amb.Rule)
	}

	// Match words with the automatically selected engine.
	m, err := e1.Matcher(dregex.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %v\n", m.Algorithm())
	for _, w := range []string{"abbaab", "abba", ""} {
		fmt.Printf("e1 matches %-8q -> %v\n", w, m.MatchText(w))
	}

	// DTD content models use names and | , instead of + and juxtaposition.
	cm := dregex.MustCompile("(title, author+, (section | appendix)*)", dregex.DTD)
	all, err := cm.MatchAll([][]string{
		{"title", "author", "section"},
		{"title", "section"},
	}, dregex.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("content model %s: %v\n", cm, all)

	// Numeric occurrence indicators (XML Schema): linear-time determinism
	// even with astronomic bounds.
	n, err := dregex.CompileNumeric("(ab){2}a(b+d)", dregex.Math)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(ab){2}a(b+d) deterministic: %v, ababab -> %v\n",
		n.IsDeterministic(), n.MatchText("ababab"))
	big, err := dregex.CompileNumeric("(a{2,1000000000}b)*", dregex.Math)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(a{2,10^9}b)* deterministic: %v (decided without unrolling)\n",
		big.IsDeterministic())

	// Server-shaped usage: a Cache amortizes compilation across requests
	// (same source → same *Expr → same cached engines), and pre-interned
	// words make the per-match hot path allocation- and map-lookup-free.
	cache := dregex.NewCache(1024)
	for i := 0; i < 3; i++ {
		e, err := cache.Get("(title, author+, (section | appendix)*)", dregex.DTD)
		if err != nil {
			log.Fatal(err)
		}
		m, err := e.Matcher(dregex.Auto)
		if err != nil {
			log.Fatal(err)
		}
		word := e.Intern([]string{"title", "author", "appendix"})
		fmt.Printf("request %d (cache %+v): %v\n", i, cache.Stats(), m.MatchWord(word))
	}
}
