// Lexer: longest-match tokenization over tagged deterministic expressions,
// and parse witnesses — the position trace of a deterministic run IS the
// parse, so accepted words come back with their parse tree and rejected
// ones with the set of symbols that could have continued them.
package main

import (
	"fmt"
	"log"
	"strings"

	"dregex"
)

func main() {
	// A tiny token language over math-syntax single-rune symbols: binary
	// numbers, identifiers over a/b, and the letter s as a separator.
	// Every rule must be deterministic — that is what makes the longest
	// match unique and the scan single-pass.
	lex, err := dregex.NewLexer(
		dregex.LexRule{Tag: "num", Expr: dregex.MustCompile("(0+1)(0+1)*", dregex.Math)},
		dregex.LexRule{Tag: "id", Expr: dregex.MustCompile("(a+b)(a+b)*", dregex.Math)},
		dregex.LexRule{Tag: "sep", Expr: dregex.MustCompile("s", dregex.Math)},
	)
	if err != nil {
		log.Fatal(err)
	}

	input := "ab01sba11s0"
	toks, err := lex.Tokens(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tokens of %q:\n", input)
	for _, t := range toks {
		fmt.Printf("  %2d  %-4s %q\n", t.Pos, t.Tag, t.Lexeme)
	}

	// The same lexer runs incrementally: feed chunks as they arrive
	// (any chunking, even mid-rune); tokens stream out through the
	// callback as soon as maximal munch resolves them.
	fmt.Println("streaming, 3-byte chunks:")
	s := lex.Stream(func(t dregex.Token) error {
		fmt.Printf("  %2d  %-4s %q\n", t.Pos, t.Tag, t.Lexeme)
		return nil
	})
	for i := 0; i < len(input); i += 3 {
		end := i + 3
		if end > len(input) {
			end = len(input)
		}
		if err := s.FeedBytes([]byte(input[i:end])); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}

	// Parse witnesses: recording a run's positions is opt-in (Parse
	// instead of MatchWord — plain matching stays allocation-free), and
	// one pass over the trace materializes the parse tree.
	e := dregex.MustCompile("(ab+b(b?)a)*", dregex.Math)
	m, err := e.Matcher(dregex.Auto)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []string{"abba", "abab", "abb"} {
		res, err := m.ParseText(w)
		if err != nil {
			log.Fatal(err)
		}
		if res.Accepted {
			fmt.Printf("parse %-6q -> %s\n", w, res.TreeString())
		} else {
			fmt.Printf("parse %-6q -> rejected at symbol %d, expected {%s}\n",
				w, res.FailedAt, strings.Join(res.Expected, ", "))
		}
	}
}
