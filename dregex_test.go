package dregex

import (
	"strings"
	"testing"
)

func TestCompileAndDeterminism(t *testing.T) {
	cases := []struct {
		src    string
		syntax Syntax
		det    bool
	}{
		{"(ab+b(b?)a)*", Math, true},
		{"(a*ba+bb)*", Math, false},
		{"ab*b", Math, false},
		{"(title, author+, (section | appendix)*)", DTD, true},
		{"(a|b)*, a", DTD, false},
		{"para*", DTD, true},
	}
	for _, c := range cases {
		e, err := Compile(c.src, c.syntax)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.src, err)
		}
		if e.IsDeterministic() != c.det {
			t.Errorf("%q: deterministic = %v, want %v", c.src, e.IsDeterministic(), c.det)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("a{2,3}", Math); err != ErrNumericIndicator {
		t.Errorf("a{2,3}: err = %v, want ErrNumericIndicator", err)
	}
	if _, err := Compile("(((", Math); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := Compile("a+", Math); err == nil {
		t.Error("trailing union accepted")
	}
	// e+ in DTD syntax is desugared, not rejected.
	if _, err := Compile("a+", DTD); err != nil {
		t.Errorf("DTD a+: %v", err)
	}
}

func TestExplain(t *testing.T) {
	e := MustCompile("ab*b", Math)
	amb := e.Explain()
	if amb == nil || amb.Symbol != "b" {
		t.Fatalf("Explain(ab*b) = %+v, want ambiguity on b", amb)
	}
	if len(amb.Word) == 0 || amb.Word[len(amb.Word)-1] != "b" {
		t.Fatalf("witness word %v must end in b", amb.Word)
	}
	if det := MustCompile("ab*c", Math).Explain(); det != nil {
		t.Fatalf("deterministic expression explained: %+v", det)
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	e := MustCompile("(c?((ab*)(a?c)))*(ba)", Math)
	accept := []string{"ba", "acba", "abbbacba", "aacacba", "cacaacba"}
	reject := []string{"", "b", "ab", "acb", "bab", "caba", "x"}
	for _, algo := range []Algorithm{Auto, KORE, Colored, ColoredBinary, PathDecomp, Climbing, NFA} {
		m, err := e.Matcher(algo)
		if err != nil {
			t.Fatalf("Matcher(%v): %v", algo, err)
		}
		for _, w := range accept {
			if !m.MatchText(w) {
				t.Errorf("%v must accept %q", algo, w)
			}
		}
		for _, w := range reject {
			if m.MatchText(w) {
				t.Errorf("%v must reject %q", algo, w)
			}
		}
	}
	// Star-free scan requires star-free input.
	if _, err := e.Matcher(StarFreeScan); err == nil {
		t.Error("StarFreeScan accepted a starred expression")
	}
}

func TestAutoSelection(t *testing.T) {
	m, err := MustCompile("(a|b)*, c", DTD).Matcher(Auto)
	if err != nil {
		t.Fatal(err)
	}
	if m.Algorithm() == Auto {
		t.Error("Auto not resolved")
	}
}

func TestNondeterministicPaths(t *testing.T) {
	e := MustCompile("(a*ba+bb)*", Math)
	if _, err := e.Matcher(PathDecomp); err == nil {
		t.Error("deterministic engine accepted nondeterministic expression")
	}
	m, err := e.Matcher(NFA)
	if err != nil {
		t.Fatal(err)
	}
	if !m.MatchText("bb") || !m.MatchText("aaba") || m.MatchText("ab") {
		t.Error("NFA engine wrong on (a*ba+bb)*")
	}
	if m.Stream() != nil {
		t.Error("NFA engine returned a stream")
	}
	if _, err := e.MatchAll([][]string{{"b", "b"}}, Auto); err == nil {
		t.Error("MatchAll accepted nondeterministic expression")
	}
}

func TestMatchAllStarFreeAndGeneral(t *testing.T) {
	sf := MustCompile("(title, author, abstract?)", DTD)
	got, err := sf.MatchAll([][]string{
		{"title", "author"},
		{"title", "author", "abstract"},
		{"title"},
		{"title", "author", "abstract", "abstract"},
	}, Auto)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("star-free MatchAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	starred := MustCompile("(a|b)*, c", DTD)
	got2, err := starred.MatchAll([][]string{{"a", "c"}, {"c"}, {"a"}}, Auto)
	if err != nil {
		t.Fatal(err)
	}
	want2 := []bool{true, true, false}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Errorf("general MatchAll[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

func TestStatsAndStreaming(t *testing.T) {
	e := MustCompile("(a|b)*, c?, d", DTD)
	st := e.Stats()
	if st.Sigma != 4 || st.StarFree || !st.Deterministic || st.K != 1 {
		t.Errorf("Stats = %+v", st)
	}
	m, err := e.Matcher(Auto)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := m.MatchReaderTokens(strings.NewReader("a b a c d"))
	if err != nil || !ok {
		t.Fatalf("MatchReaderTokens: %v %v", ok, err)
	}
	s := m.Stream()
	for _, sym := range []string{"b", "a", "d"} {
		s.FeedName(sym)
	}
	if !s.Accepts() {
		t.Error("stream must accept b a d")
	}
	s.FeedName("d")
	if s.Alive() {
		t.Error("stream must die after second d")
	}
}

func TestSourceAndString(t *testing.T) {
	e := MustCompile("(a?)?b", Math)
	if e.Source() != "(a?)?b" {
		t.Error("Source lost")
	}
	if got := e.String(); got != "a?b" { // normalized per (R3)
		t.Errorf("String = %q, want %q", got, "a?b")
	}
	if len(e.Symbols()) != 2 {
		t.Errorf("Symbols = %v", e.Symbols())
	}
}
