package dregex

import "sync/atomic"

// Process-wide engine-selection counters: every compile records which Auto
// tier it resolved to, every batch-engine build and numeric compile is
// counted, and deterministic expressions the dense-table tier refused on
// budget are tracked separately. The counters exist so a serving layer
// (dregexd's /metrics, the CLIs' -stats summaries) can report the live
// tier mix of its traffic — the skew the paper's per-tier complexity
// bounds make meaningful — without threading a registry through the
// compile path. They are monotone atomics: recording costs one
// uncontended add per compile, nothing on the match path.
var (
	tierSelections [numAlgorithms]atomic.Uint64
	batchBuilds    atomic.Uint64
	numericBuilds  atomic.Uint64
	budgetRefusals atomic.Uint64
)

// Synthetic tier names for the outcomes that are not Algorithm constants.
const (
	// TierBatch counts expressions whose MatchAll traffic built the
	// Theorem 4.12 star-free batch engine.
	TierBatch = "batch"
	// TierCounter counts §3.3 numeric (counter) pipeline compiles.
	TierCounter = "counter"
	// TierBudgetRefused counts deterministic expressions Auto would have
	// placed on the dense-table tier but for TableBudget.
	TierBudgetRefused = "table-budget-refused"
)

// EngineTiers lists every tier name EngineSelectionCount reports, in
// stable order: the concrete engine algorithms, then the synthetic
// outcomes (batch engine builds, counter-pipeline compiles, table-budget
// refusals).
func EngineTiers() []string {
	tiers := make([]string, 0, numAlgorithms+2)
	for a := Table; a < Algorithm(numAlgorithms); a++ {
		tiers = append(tiers, a.String())
	}
	return append(tiers, TierBatch, TierCounter, TierBudgetRefused)
}

// EngineSelectionCount returns the process-wide count for one tier name
// (as listed by EngineTiers); unknown names return 0. For Algorithm-named
// tiers the count is how many plain-pipeline compiles resolved Auto to
// that engine.
func EngineSelectionCount(tier string) uint64 {
	switch tier {
	case TierBatch:
		return batchBuilds.Load()
	case TierCounter:
		return numericBuilds.Load()
	case TierBudgetRefused:
		return budgetRefusals.Load()
	}
	for a := Table; a < Algorithm(numAlgorithms); a++ {
		if a.String() == tier {
			return tierSelections[a].Load()
		}
	}
	return 0
}

// EngineSelections returns a snapshot of every tier's count, keyed by tier
// name — the map a stats endpoint serializes directly.
func EngineSelections() map[string]uint64 {
	out := make(map[string]uint64, numAlgorithms+2)
	for _, t := range EngineTiers() {
		out[t] = EngineSelectionCount(t)
	}
	return out
}

// recordAutoSelection is called once per successful plain compile with the
// resolved Auto tier and the compile-time stats.
func recordAutoSelection(auto Algorithm, st Stats) {
	tierSelections[auto].Add(1)
	if st.Deterministic && !tableEligible(st) {
		budgetRefusals.Add(1)
	}
}

// AutoAlgorithm returns the engine tier Auto resolved to at compile time —
// the tier Matcher(Auto) and the validators' streams ride.
func (e *Expr) AutoAlgorithm() Algorithm { return e.auto }
