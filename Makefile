GO ?= go
BENCH_PATTERN ?= .
BENCH_TIME ?= 1s
DATE := $(shell date +%Y%m%d)

.PHONY: all build test bench bench-snapshot bench-check lint vet fmt drevet fuzz-smoke serve smoke-server chaos-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test -race ./...

# serve runs the validation server on the default port (override with
# ADDR=:9999 make serve).
ADDR ?= :8480
serve:
	$(GO) run ./cmd/dregexd -addr $(ADDR)

# smoke-server builds the real dregexd binary, boots it, registers a
# schema, validates one good and one bad document through the Go client,
# and asserts /v1/stats reports a cache hit (see TestDregexdSmoke); CI
# invokes this on every push.
smoke-server:
	$(GO) test -race -run TestDregexdSmoke -v ./cmd/dregexd

# chaos-smoke runs the fault-injection suite (see cmd/dregexd/chaos_test.go):
# a race-enabled dregexd built with -tags faultinject, every fault point
# armed via DREGEX_FAULTS, hammered by concurrent overload plus hot swaps,
# then SIGTERMed mid-load. Every response must be a correct verdict or a
# well-formed 429/503/500; CI invokes this on every push.
chaos-smoke:
	$(GO) test -race -tags faultinject -run TestDregexdChaos -v ./cmd/dregexd

# fuzz-smoke runs the schema front-end fuzz targets briefly (seed corpus
# plus a short random exploration); CI invokes this on every push.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzScanDecls -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzXSDContentModel -fuzztime $(FUZZTIME) ./internal/xsd
	$(GO) test -run xxx -fuzz FuzzXMLTok -fuzztime $(FUZZTIME) ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzLexer -fuzztime $(FUZZTIME) .

# bench runs the Go benchmark sweep and the benchtab experiment tables,
# snapshotting both into BENCH_<date>.json for cross-PR comparison. The
# sweep covers the root package plus the validator hot path (server
# handlers and the xmltok tokenizer).
BENCH_PKGS := . ./internal/server ./internal/xmltok
bench:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem $(BENCH_PKGS) \
		| tee /tmp/dregex_bench.txt
	$(GO) run ./cmd/benchtab -exp e1,e5,e7,e9 | tee /tmp/dregex_benchtab.txt
	@printf '{\n  "date": "%s",\n  "go": "%s",\n  "bench": %s,\n  "benchtab": %s\n}\n' \
		"$(DATE)" \
		"$$($(GO) version | cut -d' ' -f3)" \
		"$$(python3 -c 'import json,sys;print(json.dumps(open("/tmp/dregex_bench.txt").read()))' 2>/dev/null || echo '""')" \
		"$$(python3 -c 'import json,sys;print(json.dumps(open("/tmp/dregex_benchtab.txt").read()))' 2>/dev/null || echo '""')" \
		> BENCH_$(DATE).json
	@echo "wrote BENCH_$(DATE).json"

# bench-snapshot regenerates the committed BENCH_<date>.json snapshot (the
# name PRs are expected to use before committing fresh numbers).
bench-snapshot: bench

# Pinned hot-path benchmarks: the 0/1-alloc steady-state paths plus the
# dense-table tier. bench-check runs just these, wraps the output in a
# snapshot, and diffs it against the newest committed BENCH_*.json with the
# regression gate: >25% worse on a gated metric (or any movement off a
# pinned zero) fails. CI gates the allocation metrics only — B/op and
# allocs/op are machine-independent, while ns/op across runner generations
# is not; run `make bench-check GATE_UNITS=` locally on the machine that
# wrote the baseline to gate time too.
BENCH_PINNED := MatcherCached|MatchWordInterned|MatchAllCached|CacheGet|NumericStreamInterned|TableVsKore|ServerValidateE2E|ServerValidateMetrics|ServerValidateLimited|XMLTok|ParseWord|LexerStream
BENCH_BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))
GATE_UNITS ?= B/op,allocs/op
bench-check:
	@test -n "$(BENCH_BASELINE)" || { echo "no committed BENCH_*.json baseline"; exit 1; }
	$(GO) test -run xxx -bench '$(BENCH_PINNED)' -benchtime 0.5s -benchmem $(BENCH_PKGS) \
		| tee /tmp/dregex_bench_ci.txt
	@printf '{\n  "date": "%s",\n  "go": "%s",\n  "bench": %s\n}\n' \
		"$(DATE)" \
		"$$($(GO) version | cut -d' ' -f3)" \
		"$$(python3 -c 'import json;print(json.dumps(open("/tmp/dregex_bench_ci.txt").read()))')" \
		> /tmp/BENCH_ci.json
	$(GO) run ./cmd/benchtab -diff -gate '$(BENCH_PINNED)' -max-regress 25 \
		$(if $(GATE_UNITS),-gate-units '$(GATE_UNITS)') \
		$(BENCH_BASELINE) /tmp/BENCH_ci.json

lint: fmt vet drevet

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# drevet runs the repo's own analyzers (spanretain, poolpair, cowreg,
# noalloc, tracenil — see internal/analysis) over the whole tree through
# the go vet driver. Any diagnostic fails the build; there is no baseline
# file — fix the code or add a reviewed //dregex:ok waiver.
drevet:
	$(GO) build -o bin/drevet ./cmd/drevet
	$(GO) vet -vettool=$(CURDIR)/bin/drevet ./...
