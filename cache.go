package dregex

import (
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Cache is a sharded, concurrency-safe LRU over compiled expressions,
// keyed by (syntax, source, plain/numeric). It amortizes the O(|e|)
// compile-time preprocessing across calls, which — together with the
// per-Expr engine cache — is what makes validator-style traffic cheap:
// real schema corpora reuse a small set of content models at enormous
// rates, so steady state is a hash probe, not a compile.
//
// Concurrent Gets of the same key are deduplicated: exactly one goroutine
// compiles while the others wait for its result, and all receive the same
// *Expr (so they also share its lazily built engines). Compilation runs
// outside the shard lock; an entry mid-compile can be evicted without
// affecting callers already holding it.
//
// Failed compiles are cached too (a hot malformed input does not recompile
// per request), but negatively cached errors are segregated into their own
// small per-shard LRU: a stream of distinct bad sources can only evict
// other bad sources, never a hot compiled expression.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	// perShard is the compiled-entry capacity of each shard; total
	// capacity is perShard * len(shards). negPerShard bounds each shard's
	// segregated negative (compile-error) entries.
	perShard    int
	negPerShard int
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
}

const cacheShards = 16

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Hits    uint64 // Gets served from the cache
	Misses  uint64 // Gets that had to compile
	Entries int    // entries currently resident (compiled + negative)
	// Negative is how many of the resident entries are cached compile
	// errors; they live in a segregated, separately bounded LRU.
	Negative int
	// Evictions counts entries displaced by capacity pressure (on either
	// LRU list) over the cache's lifetime; Purge is not an eviction.
	Evictions uint64
}

// HitRate returns the fraction of Gets served from the cache (0 when no
// Gets have happened) — the headline number a serving layer exports.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheKey struct {
	syntax  Syntax
	numeric bool
	source  string
}

// cacheEntry is one compiled expression. The once field makes the compile
// single-flight: the entry is published in the shard map before anything
// is compiled, and every Get for its key funnels through once.Do. Entries
// join an LRU list only once their compile has resolved (finish), so the
// positive/negative verdict decides which list — and which capacity bound
// — they fall under.
type cacheEntry struct {
	key  cacheKey
	once sync.Once
	// done closes when the compile inside once.Do has resolved; it is what
	// lets the Ctx variants wait on a compile without being committed to it.
	// Invariant: linked entries always have done closed (finish runs after
	// the once.Do body), so hits on resolved entries never block.
	done chan struct{}
	expr *Expr        // plain pipeline result
	nexp *NumericExpr // numeric pipeline result
	err  error

	// Intrusive LRU list links and placement, guarded by the shard mutex.
	prev, next *cacheEntry
	linked     bool
	neg        bool
}

type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
	// Doubly linked LRU lists with sentinel heads: head for compiled
	// entries, neg for cached compile errors. head.next is most-recently
	// used, head.prev is the eviction candidate.
	head cacheEntry
	neg  cacheEntry
	// nPos/nNeg count linked entries per list (map entries mid-compile are
	// on neither list and uncounted; they are transient, bounded by the
	// number of concurrently compiling goroutines).
	nPos, nNeg int
}

// NewCache returns a cache holding up to capacity compiled expressions
// (rounded up to a multiple of the shard count; capacity ≤ 0 selects a
// default of 1024), plus a segregated allowance — a quarter of capacity,
// at least one per shard — for negatively cached compile errors. It is
// ready for concurrent use.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	negPerShard := perShard / 4
	if negPerShard < 1 {
		negPerShard = 1
	}
	c := &Cache{
		shards:      make([]cacheShard, cacheShards),
		seed:        maphash.MakeSeed(),
		perShard:    perShard,
		negPerShard: negPerShard,
	}
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

func (s *cacheShard) init() {
	s.m = make(map[cacheKey]*cacheEntry)
	s.head.prev = &s.head
	s.head.next = &s.head
	s.neg.prev = &s.neg
	s.neg.next = &s.neg
	s.nPos, s.nNeg = 0, 0
}

// Get returns the compiled form of source, compiling at most once per
// resident key. The returned *Expr is shared between all callers (Expr is
// immutable and its engine cache is concurrency-safe). Compile errors are
// cached in the segregated negative LRU.
func (c *Cache) Get(source string, syntax Syntax) (*Expr, error) {
	e, _, err := c.GetInfo(source, syntax)
	return e, err
}

// GetInfo is Get reporting whether the result was served from a resident
// entry (a cache hit), so serving layers can label responses and account
// for compile costs per request. The flag agrees with the Stats counters:
// a Get that found the key in the shard map — even one that then waits on
// another goroutine's in-flight compile — is a hit.
func (c *Cache) GetInfo(source string, syntax Syntax) (expr *Expr, hit bool, err error) {
	s, e, place, hit := c.entry(cacheKey{syntax: syntax, source: source})
	e.once.Do(func() {
		e.expr, e.err = Compile(source, syntax)
		close(e.done)
	})
	if place {
		c.finish(s, e)
	}
	return e.expr, hit, e.err
}

// GetInfoCtx is GetInfo with a cancellation escape hatch: a caller whose
// ctx expires while the compile is in flight stops waiting and receives a
// wrapped ctx.Err(). The compile itself is never canceled — it finishes in
// the background and its true result (success or error) is cached, so an
// impatient first caller does not poison the entry for everyone after it,
// and the single-flight guarantee is preserved. A ctx that cannot be
// canceled takes the exact GetInfo path.
func (c *Cache) GetInfoCtx(ctx context.Context, source string, syntax Syntax) (expr *Expr, hit bool, err error) {
	if ctx.Done() == nil {
		return c.GetInfo(source, syntax)
	}
	s, e, place, hit := c.entry(cacheKey{syntax: syntax, source: source})
	if err := c.await(ctx, s, e, place, func() {
		e.expr, e.err = Compile(source, syntax)
	}); err != nil {
		return nil, hit, err
	}
	return e.expr, hit, e.err
}

// GetNumeric is Get through the numeric pipeline (CompileNumeric). Plain
// and numeric compilations of the same source are distinct cache entries.
func (c *Cache) GetNumeric(source string, syntax Syntax) (*NumericExpr, error) {
	e, _, err := c.GetNumericInfo(source, syntax)
	return e, err
}

// GetNumericInfo is GetNumeric reporting cache-hit status, like GetInfo.
func (c *Cache) GetNumericInfo(source string, syntax Syntax) (nexp *NumericExpr, hit bool, err error) {
	s, e, place, hit := c.entry(cacheKey{syntax: syntax, source: source, numeric: true})
	e.once.Do(func() {
		e.nexp, e.err = CompileNumeric(source, syntax)
		close(e.done)
	})
	if place {
		c.finish(s, e)
	}
	return e.nexp, hit, e.err
}

// GetNumericInfoCtx is GetNumericInfo with the GetInfoCtx cancellation
// contract: waiting is abandonable, the compile itself is not.
func (c *Cache) GetNumericInfoCtx(ctx context.Context, source string, syntax Syntax) (nexp *NumericExpr, hit bool, err error) {
	if ctx.Done() == nil {
		return c.GetNumericInfo(source, syntax)
	}
	s, e, place, hit := c.entry(cacheKey{syntax: syntax, source: source, numeric: true})
	if err := c.await(ctx, s, e, place, func() {
		e.nexp, e.err = CompileNumeric(source, syntax)
	}); err != nil {
		return nil, hit, err
	}
	return e.nexp, hit, e.err
}

// await resolves entry e for a cancelable caller: if the compile already
// resolved it returns immediately; otherwise the creator's compile runs in
// a background goroutine (which also takes over the finish obligation, so
// an abandoned entry still lands on its LRU list) and the caller waits on
// whichever of e.done / ctx.Done() fires first. A non-nil return means the
// caller abandoned the wait; the entry's own fields are then off limits.
func (c *Cache) await(ctx context.Context, s *cacheShard, e *cacheEntry, place bool, compile func()) error {
	select {
	case <-e.done:
		// Already resolved (the common hit path). finish below handles the
		// rare resolved-but-unlinked entry (evicted mid-compile and re-Got).
	default:
		if !place {
			// Unreachable in practice (linked entries have done closed), but
			// fall through to waiting rather than assume.
			break
		}
		go func() {
			e.once.Do(func() {
				compile()
				close(e.done)
			})
			c.finish(s, e)
		}()
	}
	select {
	case <-e.done:
		if place {
			c.finish(s, e)
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("dregex: compile wait abandoned: %w", ctx.Err())
	}
}

// entry finds or creates the entry for key, updating LRU order and
// counters. Only map/list manipulation happens under the shard lock. A
// newly created entry is in the map (so concurrent Gets deduplicate) but
// on no list until finish places it by compile outcome; place reports
// whether the caller must run finish (false for linked hits — linked is
// never cleared while an entry is in the map, so the hot hit path takes
// the shard lock exactly once). hit reports whether the key was found in
// the map — the same condition the Stats hit counter records.
func (c *Cache) entry(key cacheKey) (s *cacheShard, e *cacheEntry, place, hit bool) {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(key.source)
	b := byte(key.syntax) << 1
	if key.numeric {
		b |= 1
	}
	h.WriteByte(b)
	s = &c.shards[h.Sum64()%cacheShards]

	s.mu.Lock()
	e, ok := s.m[key]
	if ok {
		linked := e.linked
		if linked {
			unlink(e)
			s.pushFront(e)
		}
		s.mu.Unlock()
		c.hits.Add(1)
		return s, e, !linked, true
	}
	e = &cacheEntry{key: key, done: make(chan struct{})}
	s.m[key] = e
	s.mu.Unlock()
	c.misses.Add(1)
	return s, e, true, false
}

// finish places a resolved entry on the list its compile outcome selects
// and enforces that list's capacity — so bad sources can only ever evict
// other bad sources. It is a no-op for entries already placed, or evicted
// or purged mid-compile.
func (c *Cache) finish(s *cacheShard, e *cacheEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.linked || s.m[e.key] != e {
		return
	}
	e.neg = e.err != nil
	e.linked = true
	s.pushFront(e)
	if e.neg {
		s.nNeg++
		if s.nNeg > c.negPerShard {
			s.evict(s.neg.prev)
			c.evictions.Add(1)
		}
	} else {
		s.nPos++
		if s.nPos > c.perShard {
			s.evict(s.head.prev)
			c.evictions.Add(1)
		}
	}
}

func (s *cacheShard) evict(victim *cacheEntry) {
	unlink(victim)
	if victim.neg {
		s.nNeg--
	} else {
		s.nPos--
	}
	delete(s.m, victim.key)
}

func unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// pushFront links e at the MRU end of the list matching its placement.
func (s *cacheShard) pushFront(e *cacheEntry) {
	h := &s.head
	if e.neg {
		h = &s.neg
	}
	e.prev = h
	e.next = h.next
	h.next.prev = e
	h.next = e
}

// Len returns the number of resident entries (compiled plus negative).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the hit/miss counters and residency.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		st.Negative += s.nNeg
		s.mu.Unlock()
	}
	return st
}

// Purge empties the cache (counters are kept). Expressions already handed
// out remain valid; only future Gets recompile.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.init()
		s.mu.Unlock()
	}
}
