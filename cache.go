package dregex

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Cache is a sharded, concurrency-safe LRU over compiled expressions,
// keyed by (syntax, source, plain/numeric). It amortizes the O(|e|)
// compile-time preprocessing across calls, which — together with the
// per-Expr engine cache — is what makes validator-style traffic cheap:
// real schema corpora reuse a small set of content models at enormous
// rates, so steady state is a hash probe, not a compile.
//
// Concurrent Gets of the same key are deduplicated: exactly one goroutine
// compiles while the others wait for its result, and all receive the same
// *Expr (so they also share its lazily built engines). Compilation runs
// outside the shard lock; an entry mid-compile can be evicted without
// affecting callers already holding it.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	// perShard is the entry capacity of each shard; total capacity is
	// perShard * len(shards).
	perShard int
	hits     atomic.Uint64
	misses   atomic.Uint64
}

const cacheShards = 16

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Hits    uint64 // Gets served from the cache
	Misses  uint64 // Gets that had to compile
	Entries int    // entries currently resident
}

type cacheKey struct {
	syntax  Syntax
	numeric bool
	source  string
}

// cacheEntry is one compiled expression. The once field makes the compile
// single-flight: the entry is published in the shard map before anything
// is compiled, and every Get for its key funnels through once.Do.
type cacheEntry struct {
	key  cacheKey
	once sync.Once
	expr *Expr        // plain pipeline result
	nexp *NumericExpr // numeric pipeline result
	err  error

	// Intrusive LRU list links, guarded by the shard mutex.
	prev, next *cacheEntry
}

type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
	// Doubly linked LRU list with sentinel head: head.next is
	// most-recently used, head.prev is the eviction candidate.
	head cacheEntry
}

// NewCache returns a cache holding up to capacity compiled expressions
// (rounded up to a multiple of the shard count; capacity ≤ 0 selects a
// default of 1024). It is ready for concurrent use.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &Cache{
		shards:   make([]cacheShard, cacheShards),
		seed:     maphash.MakeSeed(),
		perShard: perShard,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[cacheKey]*cacheEntry)
		s.head.prev = &s.head
		s.head.next = &s.head
	}
	return c
}

// Get returns the compiled form of source, compiling at most once per
// resident key. The returned *Expr is shared between all callers (Expr is
// immutable and its engine cache is concurrency-safe). Compile errors are
// cached too, so a hot malformed input does not recompile per request.
func (c *Cache) Get(source string, syntax Syntax) (*Expr, error) {
	e := c.entry(cacheKey{syntax: syntax, source: source})
	e.once.Do(func() {
		e.expr, e.err = Compile(source, syntax)
	})
	return e.expr, e.err
}

// GetNumeric is Get through the numeric pipeline (CompileNumeric). Plain
// and numeric compilations of the same source are distinct cache entries.
func (c *Cache) GetNumeric(source string, syntax Syntax) (*NumericExpr, error) {
	e := c.entry(cacheKey{syntax: syntax, source: source, numeric: true})
	e.once.Do(func() {
		e.nexp, e.err = CompileNumeric(source, syntax)
	})
	return e.nexp, e.err
}

// entry finds or creates the entry for key, updating LRU order and
// counters. Only map/list manipulation happens under the shard lock.
func (c *Cache) entry(key cacheKey) *cacheEntry {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(key.source)
	b := byte(key.syntax) << 1
	if key.numeric {
		b |= 1
	}
	h.WriteByte(b)
	s := &c.shards[h.Sum64()%cacheShards]

	s.mu.Lock()
	e, ok := s.m[key]
	if ok {
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e
	}
	e = &cacheEntry{key: key}
	s.m[key] = e
	s.pushFront(e)
	if len(s.m) > c.perShard {
		victim := s.head.prev
		s.unlink(victim)
		delete(s.m, victim.key)
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return e
}

func (s *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = &s.head
	e.next = s.head.next
	s.head.next.prev = e
	s.head.next = e
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the hit/miss counters and residency.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.Len(),
	}
}

// Purge empties the cache (counters are kept). Expressions already handed
// out remain valid; only future Gets recompile.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[cacheKey]*cacheEntry)
		s.head.prev = &s.head
		s.head.next = &s.head
		s.mu.Unlock()
	}
}
