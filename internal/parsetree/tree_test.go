package parsetree

import (
	"testing"

	"dregex/internal/ast"
)

// mustBuild compiles a math-notation expression for tests.
func mustBuild(t *testing.T, expr string) *Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr
}

// Figure 1 of the paper: e0 = (c?((ab*)(a?c)))*(ba).
func fig1(t *testing.T) *Tree { return mustBuild(t, "(c?((ab*)(a?c)))*(ba)") }

// fig1Nodes returns the named nodes n1..n5 of Figure 1.
func fig1Nodes(t *Tree) (n1, n2, n3, n4, n5 NodeID) {
	n1 = t.UserRoot     // ⊙ root of e0
	n2 = t.LChild[n1]   // ∗
	c23 := t.LChild[n2] // ⊙(c?, n3)
	n3 = t.RChild[c23]  // ⊙((ab*), n4)
	n4 = t.RChild[n3]   // ⊙(a?, c)
	n5 = t.RChild[n1]   // ⊙(b, a)
	return n1, n2, n3, n4, n5
}

func TestBuildShape(t *testing.T) {
	tr := fig1(t)
	if got := tr.NumPositions(); got != 9 { // p1..p7 plus # and $
		t.Fatalf("NumPositions = %d, want 9", got)
	}
	if tr.Label(tr.BeginPos()) != "#" || tr.Label(tr.EndPos()) != "$" {
		t.Fatal("phantom positions misplaced")
	}
	labels := ""
	for i := 0; i < tr.NumPositions(); i++ {
		labels += tr.Label(tr.PosNode[i])
	}
	if labels != "#cabacba$" {
		t.Fatalf("position labels = %q, want %q", labels, "#cabacba$")
	}
	n1, n2, n3, n4, n5 := fig1Nodes(tr)
	if tr.Op[n1] != OpCat || tr.Op[n2] != OpStar || tr.Op[n3] != OpCat ||
		tr.Op[n4] != OpCat || tr.Op[n5] != OpCat {
		t.Fatalf("figure nodes have wrong operators: %v %v %v %v %v",
			tr.Op[n1], tr.Op[n2], tr.Op[n3], tr.Op[n4], tr.Op[n5])
	}
}

func TestAncestorMatchesParentWalk(t *testing.T) {
	exprs := []string{
		"(c?((ab*)(a?c)))*(ba)",
		"(ab+b(b?)a)*",
		"(a*ba+bb)*",
		"a",
		"((a+b)?c)*d?",
	}
	for _, expr := range exprs {
		tr := mustBuild(t, expr)
		n := NodeID(tr.N())
		isAnc := func(a, b NodeID) bool {
			for x := b; x != Null; x = tr.Parent[x] {
				if x == a {
					return true
				}
			}
			return false
		}
		for a := NodeID(0); a < n; a++ {
			for b := NodeID(0); b < n; b++ {
				if got, want := tr.IsAncestor(a, b), isAnc(a, b); got != want {
					t.Fatalf("%s: IsAncestor(%d,%d) = %v, want %v", expr, a, b, got, want)
				}
			}
		}
	}
}

func TestSupFirstSupLastFigure1(t *testing.T) {
	tr := fig1(t)
	_, n2, n3, n4, _ := fig1Nodes(tr)
	// Paper §2: n4 is a SupFirst node (First changes at its parent n3).
	if !tr.SupFirst[n4] {
		t.Error("SupFirst(n4) = false, want true")
	}
	// First(n2) = {p1, p2}; Last(n2) = {p5} (paper, §2).
	p := func(i int) NodeID { return tr.PosNode[i] } // p(1) = p1 ... (0 is #)
	wantFirst := map[int]bool{1: true, 2: true}
	for i := 1; i <= 7; i++ {
		if got := tr.InFirst(p(i), n2); got != wantFirst[i] {
			t.Errorf("InFirst(p%d, n2) = %v, want %v", i, got, wantFirst[i])
		}
	}
	wantLast := map[int]bool{5: true}
	for i := 1; i <= 7; i++ {
		if got := tr.InLast(p(i), n2); got != wantLast[i] {
			t.Errorf("InLast(p%d, n2) = %v, want %v", i, got, wantLast[i])
		}
	}
	// The witness relationships quoted in §3.1: pSupFirst(p4) = pSupFirst(p5) = n4.
	if tr.PSupFirst[p(4)] != n4 || tr.PSupFirst[p(5)] != n4 {
		t.Errorf("pSupFirst(p4)=%d pSupFirst(p5)=%d, want both %d",
			tr.PSupFirst[p(4)], tr.PSupFirst[p(5)], n4)
	}
	_ = n3
}

// brute-force First/Last via the syntax-directed definitions, used to
// validate the Lemma 2.3 pointer characterization on whole trees.
func bruteFirst(tr *Tree, n NodeID, out map[NodeID]bool) {
	switch tr.Op[n] {
	case OpSym:
		out[n] = true
	case OpCat:
		bruteFirst(tr, tr.LChild[n], out)
		if tr.Nullable[tr.LChild[n]] {
			bruteFirst(tr, tr.RChild[n], out)
		}
	case OpUnion:
		bruteFirst(tr, tr.LChild[n], out)
		bruteFirst(tr, tr.RChild[n], out)
	default:
		bruteFirst(tr, tr.LChild[n], out)
	}
}

func bruteLast(tr *Tree, n NodeID, out map[NodeID]bool) {
	switch tr.Op[n] {
	case OpSym:
		out[n] = true
	case OpCat:
		bruteLast(tr, tr.RChild[n], out)
		if tr.Nullable[tr.RChild[n]] {
			bruteLast(tr, tr.LChild[n], out)
		}
	case OpUnion:
		bruteLast(tr, tr.LChild[n], out)
		bruteLast(tr, tr.RChild[n], out)
	default:
		bruteLast(tr, tr.LChild[n], out)
	}
}

func TestLemma23AgainstBruteForce(t *testing.T) {
	exprs := []string{
		"(c?((ab*)(a?c)))*(ba)",
		"(ab+b(b?)a)*",
		"(a*ba+bb)*",
		"((a+b)?c)*d?",
		"a?b?c?",
		"(a(b?c)*)+(d(e+f)?)*",
	}
	for _, expr := range exprs {
		tr := mustBuild(t, expr)
		for n := NodeID(0); n < NodeID(tr.N()); n++ {
			first := map[NodeID]bool{}
			last := map[NodeID]bool{}
			bruteFirst(tr, n, first)
			bruteLast(tr, n, last)
			// Lemma 2.3 applies to positions of e′; the phantom # and $
			// (whose pSupFirst/pSupLast may be Null) are excluded.
			for i := 1; i < tr.NumPositions()-1; i++ {
				p := tr.PosNode[i]
				if got := tr.InFirst(p, n); got != first[p] {
					t.Fatalf("%s: InFirst(pos %d, node %d) = %v, brute = %v",
						expr, i, n, got, first[p])
				}
				if got := tr.InLast(p, n); got != last[p] {
					t.Fatalf("%s: InLast(pos %d, node %d) = %v, brute = %v",
						expr, i, n, got, last[p])
				}
			}
			if !first[tr.FirstWitness(n)] {
				t.Fatalf("%s: FirstWitness(%d) not in brute First", expr, n)
			}
			if !last[tr.LastWitness(n)] {
				t.Fatalf("%s: LastWitness(%d) not in brute Last", expr, n)
			}
		}
	}
}

func TestPStar(t *testing.T) {
	tr := fig1(t)
	_, n2, _, _, _ := fig1Nodes(tr)
	for _, i := range []int{1, 2, 4, 5} {
		if got := tr.PStar[tr.PosNode[i]]; got != n2 {
			t.Errorf("PStar(p%d) = %d, want %d", i, got, n2)
		}
	}
	// p3 sits under its own star b*, which is the lowest ∗ ancestor.
	if got, want := tr.PStar[tr.PosNode[3]], tr.Parent[tr.PosNode[3]]; got != want {
		t.Errorf("PStar(p3) = %d, want enclosing b* node %d", got, want)
	}
	for _, i := range []int{6, 7} {
		if got := tr.PStar[tr.PosNode[i]]; got != Null {
			t.Errorf("PStar(p%d) = %d, want Null", i, got)
		}
	}
	// PLoop coincides with PStar on plain expressions.
	for n := NodeID(0); n < NodeID(tr.N()); n++ {
		if tr.PLoop[n] != tr.PStar[n] {
			t.Errorf("PLoop(%d) = %d differs from PStar = %d", n, tr.PLoop[n], tr.PStar[n])
		}
	}
}

func TestBuildRejectsIter(t *testing.T) {
	alpha := ast.NewAlphabet()
	e := ast.MustParseMath("a{2,3}", alpha)
	if _, err := Build(e, alpha); err != ErrIterUnsupported {
		t.Fatalf("Build(a{2,3}) err = %v, want ErrIterUnsupported", err)
	}
	if _, err := BuildNumeric(e, alpha); err != nil {
		t.Fatalf("BuildNumeric(a{2,3}): %v", err)
	}
	// Non-normalized bounds are rejected.
	bad := ast.Iter(ast.Sym(alpha.Intern("a")), 0, 3)
	if _, err := BuildNumeric(bad, alpha); err == nil {
		t.Fatal("BuildNumeric accepted {0,3} without normalization")
	}
}

func TestDepthAndChildren(t *testing.T) {
	tr := mustBuild(t, "(a+b)c")
	for n := NodeID(0); n < NodeID(tr.N()); n++ {
		if p := tr.Parent[n]; p != Null {
			if tr.Depth[n] != tr.Depth[p]+1 {
				t.Fatalf("depth(%d) = %d, parent depth %d", n, tr.Depth[n], tr.Depth[p])
			}
			if tr.LChild[p] != n && tr.RChild[p] != n {
				t.Fatalf("node %d not a child of its parent", n)
			}
		}
	}
	// Unary nodes have RChild Null.
	tr2 := mustBuild(t, "a?b*")
	for n := NodeID(0); n < NodeID(tr2.N()); n++ {
		switch tr2.Op[n] {
		case OpOpt, OpStar:
			if tr2.RChild[n] != Null {
				t.Fatalf("unary node %d has right child", n)
			}
		case OpSym:
			if tr2.LChild[n] != Null || tr2.RChild[n] != Null {
				t.Fatalf("leaf %d has children", n)
			}
		}
	}
}
