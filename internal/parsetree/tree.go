// Package parsetree compiles a normalized regular expression into the
// array-based parse tree on which all algorithms of the paper operate.
//
// The tree realizes §2 of Groz/Maneth/Staworko (PODS 2012):
//
//   - rule (R1): the user expression e′ is wrapped as (#e′)$, with # and $
//     materialized as real positions;
//   - preorder/postorder numbering (for O(1) ancestor tests), depth;
//   - nullability, the SupFirst/SupLast predicates, and the pSupFirst,
//     pSupLast and pStar pointers of Lemma 2.3 / Theorem 2.4.
//
// Nodes are dense int32 ids in preorder; all attributes live in parallel
// slices, so a compiled tree is a handful of allocations regardless of
// expression size.
package parsetree

import (
	"errors"
	"fmt"

	"dregex/internal/ast"
)

// NodeID indexes a node of the tree. Node ids equal preorder numbers.
type NodeID = int32

// Null is the absent-node sentinel returned by child/pointer accessors.
const Null NodeID = -1

// Op is the operator stored at a node.
type Op uint8

// Operators. OpSym marks a position (leaf).
const (
	OpSym Op = iota
	OpCat
	OpUnion
	OpOpt
	OpStar
	OpIter
)

func (o Op) String() string {
	switch o {
	case OpSym:
		return "sym"
	case OpCat:
		return "·"
	case OpUnion:
		return "+"
	case OpOpt:
		return "?"
	case OpStar:
		return "*"
	case OpIter:
		return "{i,j}"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Tree is the compiled parse tree of (#e′)$.
//
// All slices are indexed by NodeID. Child and pointer slices contain Null
// where the respective node does not exist. Because node ids are preorder
// numbers, a 4 b (a is an ancestor of b, reflexively) holds iff
// a ≤ b && Post[b] ≤ Post[a].
type Tree struct {
	Alpha *ast.Alphabet

	Op     []Op
	Sym    []ast.Symbol // symbol at leaves; -1 elsewhere
	Min    []int32      // OpIter lower bound; 0 elsewhere
	Max    []int32      // OpIter upper bound (IterUnbounded = ∞); 0 elsewhere
	Parent []NodeID
	LChild []NodeID
	RChild []NodeID
	Post   []int32 // postorder number
	Depth  []int32 // root has depth 0

	Nullable []bool
	SupFirst []bool
	SupLast  []bool

	// PSupFirst[n], PSupLast[n]: lowest (reflexive) ancestor of n that is a
	// SupFirst (resp. SupLast) node; Null above the topmost one.
	PSupFirst []NodeID
	PSupLast  []NodeID
	// PStar[n]: lowest (reflexive) ancestor labeled *; Null if none.
	PStar []NodeID
	// PLoop[n]: lowest (reflexive) ancestor that can loop, i.e. labeled *
	// or an OpIter with Max ≥ 2. Equals PStar for plain expressions; used
	// by the numeric pipeline (§3.3).
	PLoop []NodeID

	// PosNode[i] is the node of the i-th position in left-to-right order;
	// PosNode[0] is # and PosNode[len-1] is $.
	PosNode []NodeID
	// PosIndex[n] is the position index of leaf n, or -1 for inner nodes.
	PosIndex []int32

	// Root is the (#e′)$ concatenation; UserRoot is the root of e′.
	Root     NodeID
	UserRoot NodeID
}

// IterUnbounded is the Max value of an unbounded OpIter node.
const IterUnbounded = int32(1<<31 - 1)

// ErrIterUnsupported is returned by Build when the expression still
// contains numeric occurrence indicators.
var ErrIterUnsupported = errors.New("parsetree: numeric iteration requires BuildNumeric")

// Build compiles a plain (star/opt/union/cat) expression. The input should
// already be in (R2)/(R3) normal form (ast.Normalize); Build wraps it per
// (R1) and rejects numeric iterations.
func Build(e *ast.Node, alpha *ast.Alphabet) (*Tree, error) {
	if err := ast.ValidatePlain(e); err != nil {
		return nil, ErrIterUnsupported
	}
	return build(e, alpha)
}

// BuildNumeric compiles an expression that may contain numeric occurrence
// indicators e{i,j} (paper §3.3). Bounds should be in normal form
// (Min ≥ 1, Max ≥ 2; see ast.Normalize).
func BuildNumeric(e *ast.Node, alpha *ast.Alphabet) (*Tree, error) {
	return build(e, alpha)
}

func build(e *ast.Node, alpha *ast.Alphabet) (*Tree, error) {
	if e == nil {
		return nil, errors.New("parsetree: nil expression")
	}
	// (R1) wrapping: root = (#·e′)·$.
	wrapped := ast.Cat(ast.Cat(ast.Sym(ast.Begin), e), ast.Sym(ast.End))
	n := ast.Size(wrapped)
	t := &Tree{
		Alpha:     alpha,
		Op:        make([]Op, n),
		Sym:       make([]ast.Symbol, n),
		Min:       make([]int32, n),
		Max:       make([]int32, n),
		Parent:    make([]NodeID, n),
		LChild:    make([]NodeID, n),
		RChild:    make([]NodeID, n),
		Post:      make([]int32, n),
		Depth:     make([]int32, n),
		Nullable:  make([]bool, n),
		SupFirst:  make([]bool, n),
		SupLast:   make([]bool, n),
		PSupFirst: make([]NodeID, n),
		PSupLast:  make([]NodeID, n),
		PStar:     make([]NodeID, n),
		PLoop:     make([]NodeID, n),
		PosIndex:  make([]int32, n),
	}

	// Iterative preorder construction (expressions can be very deep).
	type frame struct {
		n      *ast.Node
		parent NodeID
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{wrapped, Null})
	next := NodeID(0)
	post := int32(0)
	// postStack tracks nodes whose subtrees are being emitted so we can
	// assign postorder numbers; we instead compute Post in a second pass
	// below, which is simpler with an explicit preorder stack.
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := next
		next++
		a := f.n
		t.Parent[id] = f.parent
		t.LChild[id] = Null
		t.RChild[id] = Null
		t.Sym[id] = -1
		t.PosIndex[id] = -1
		if f.parent != Null {
			t.Depth[id] = t.Depth[f.parent] + 1
			if t.LChild[f.parent] == Null {
				t.LChild[f.parent] = id
			} else {
				t.RChild[f.parent] = id
			}
		}
		switch a.Kind {
		case ast.KSym:
			t.Op[id] = OpSym
			t.Sym[id] = a.Sym
		case ast.KCat:
			t.Op[id] = OpCat
		case ast.KUnion:
			t.Op[id] = OpUnion
		case ast.KOpt:
			t.Op[id] = OpOpt
		case ast.KStar:
			t.Op[id] = OpStar
		case ast.KIter:
			t.Op[id] = OpIter
			t.Min[id] = int32(a.Min)
			if a.Max == ast.Unbounded {
				t.Max[id] = IterUnbounded
			} else {
				t.Max[id] = int32(a.Max)
			}
			if a.Min < 1 || (t.Max[id] != IterUnbounded && a.Max < 2) {
				return nil, fmt.Errorf("parsetree: iteration bounds {%d,%d} not in normal form (run ast.Normalize)", a.Min, a.Max)
			}
		default:
			return nil, fmt.Errorf("parsetree: unknown ast kind %v", a.Kind)
		}
		// Push right first so the left subtree gets smaller preorder ids.
		if a.R != nil {
			stack = append(stack, frame{a.R, id})
		}
		if a.L != nil {
			stack = append(stack, frame{a.L, id})
		}
	}
	if int(next) != n {
		return nil, fmt.Errorf("parsetree: built %d of %d nodes", next, n)
	}
	t.Root = 0
	t.UserRoot = t.RChild[t.LChild[t.Root]]

	// Postorder numbers, nullability and positions in one iterative
	// post-order pass.
	t.PosNode = t.PosNode[:0]
	type pf struct {
		id       NodeID
		expanded bool
	}
	pstack := make([]pf, 0, 64)
	pstack = append(pstack, pf{t.Root, false})
	for len(pstack) > 0 {
		f := &pstack[len(pstack)-1]
		if !f.expanded {
			f.expanded = true
			id := f.id
			if r := t.RChild[id]; r != Null {
				pstack = append(pstack, pf{r, false})
			}
			if l := t.LChild[id]; l != Null {
				pstack = append(pstack, pf{l, false})
			}
			continue
		}
		id := f.id
		pstack = pstack[:len(pstack)-1]
		t.Post[id] = post
		post++
		switch t.Op[id] {
		case OpSym:
			t.PosIndex[id] = int32(len(t.PosNode))
			t.PosNode = append(t.PosNode, id)
			t.Nullable[id] = false
		case OpCat:
			t.Nullable[id] = t.Nullable[t.LChild[id]] && t.Nullable[t.RChild[id]]
		case OpUnion:
			t.Nullable[id] = t.Nullable[t.LChild[id]] || t.Nullable[t.RChild[id]]
		case OpOpt, OpStar:
			t.Nullable[id] = true
		case OpIter:
			t.Nullable[id] = t.Nullable[t.LChild[id]]
		}
	}

	// Positions were appended in postorder of leaves, which coincides with
	// left-to-right order; nothing to fix up. Now the top-down attributes.
	for id := NodeID(0); id < NodeID(n); id++ {
		p := t.Parent[id]
		if p != Null && t.Op[p] == OpCat {
			if id == t.RChild[p] {
				t.SupFirst[id] = !t.Nullable[t.LChild[p]]
			} else {
				t.SupLast[id] = !t.Nullable[t.RChild[p]]
			}
		}
		// Preorder ids mean parents precede children, so the pointer
		// arrays can be filled in id order.
		inherit := func(dst []NodeID, self bool) {
			if self {
				dst[id] = id
			} else if p == Null {
				dst[id] = Null
			} else {
				dst[id] = dst[p]
			}
		}
		inherit(t.PSupFirst, t.SupFirst[id])
		inherit(t.PSupLast, t.SupLast[id])
		inherit(t.PStar, t.Op[id] == OpStar)
		inherit(t.PLoop, t.Op[id] == OpStar || (t.Op[id] == OpIter && t.Max[id] >= 2))
	}
	return t, nil
}

// N returns the number of nodes including the (R1) wrapper.
func (t *Tree) N() int { return len(t.Op) }

// NumPositions returns |Pos(e)| including the phantom # and $.
func (t *Tree) NumPositions() int { return len(t.PosNode) }

// BeginPos returns the node of the phantom # position.
func (t *Tree) BeginPos() NodeID { return t.PosNode[0] }

// EndPos returns the node of the phantom $ position.
func (t *Tree) EndPos() NodeID { return t.PosNode[len(t.PosNode)-1] }

// IsAncestor reports a 4 b: a is a (reflexive) ancestor of b. Either
// argument may be Null, in which case the answer is false.
func (t *Tree) IsAncestor(a, b NodeID) bool {
	if a == Null || b == Null {
		return false
	}
	return a <= b && t.Post[b] <= t.Post[a]
}

// IsPos reports whether n is a position (leaf).
func (t *Tree) IsPos(n NodeID) bool { return t.Op[n] == OpSym }

// InFirst reports p ∈ First(n) for a position p, via Lemma 2.3(1):
// p ∈ First(n) iff pSupFirst(p) 4 n 4 p.
func (t *Tree) InFirst(p, n NodeID) bool {
	return t.IsAncestor(t.PSupFirst[p], n) && t.IsAncestor(n, p)
}

// InLast reports p ∈ Last(n) for a position p, via Lemma 2.3(2).
func (t *Tree) InLast(p, n NodeID) bool {
	return t.IsAncestor(t.PSupLast[p], n) && t.IsAncestor(n, p)
}

// FirstWitness returns some position in First(n) (always non-empty).
func (t *Tree) FirstWitness(n NodeID) NodeID {
	for t.Op[n] != OpSym {
		n = t.LChild[n] // for every operator, First(L) ⊆ First(n)
	}
	return n
}

// LastWitness returns some position in Last(n).
func (t *Tree) LastWitness(n NodeID) NodeID {
	for t.Op[n] != OpSym {
		if t.Op[n] == OpCat {
			n = t.RChild[n] // Last(R) ⊆ Last(n)
		} else if t.Op[n] == OpUnion {
			n = t.RChild[n]
		} else {
			n = t.LChild[n]
		}
	}
	return n
}

// Label returns the display name of position p's symbol.
func (t *Tree) Label(p NodeID) string { return t.Alpha.Name(t.Sym[p]) }

// SubexprString renders the subexpression rooted at n in math notation;
// intended for error messages and debugging (recursive, so use on
// reasonably sized subtrees).
func (t *Tree) SubexprString(n NodeID) string {
	switch t.Op[n] {
	case OpSym:
		return t.Alpha.Name(t.Sym[n])
	case OpCat:
		return "(" + t.SubexprString(t.LChild[n]) + t.SubexprString(t.RChild[n]) + ")"
	case OpUnion:
		return "(" + t.SubexprString(t.LChild[n]) + "+" + t.SubexprString(t.RChild[n]) + ")"
	case OpOpt:
		return t.SubexprString(t.LChild[n]) + "?"
	case OpStar:
		return t.SubexprString(t.LChild[n]) + "*"
	case OpIter:
		if t.Max[n] == IterUnbounded {
			return fmt.Sprintf("%s{%d,}", t.SubexprString(t.LChild[n]), t.Min[n])
		}
		return fmt.Sprintf("%s{%d,%d}", t.SubexprString(t.LChild[n]), t.Min[n], t.Max[n])
	}
	return "?op?"
}
