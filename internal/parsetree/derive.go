// Witness materialization: from a run's position trace to the parse tree
// of the word (Bille–Gørtz, "From Regular Expression Matching to
// Parsing"). The positions of a deterministic expression are the states of
// its Glushkov automaton, so the position sequence recorded by run.Trace
// determines how every symbol was consumed; Derive replays the sequence
// structurally — closing and opening subexpressions along Lemma 2.2's two
// transition shapes — and rebuilds the derivation in one pass over the
// trace, O(depth) amortized per symbol.
//
// Expressions like ((ab)*)* are deterministic yet parse-ambiguous (the
// positions are unique, the bracketing is not); Derive resolves them
// greedily, preferring the lowest route — the concatenation at the LCA,
// else the innermost loop — which keeps inner iterations running as long
// as possible.
package parsetree

import (
	"fmt"
	"strings"

	"dregex/internal/ast"
)

// ParseNode is one node of a derivation: how the subexpression Expr (a
// node of the compiled Tree) produced its slice of the word.
//
// Children by operator: a concatenation has exactly two (left and right
// derivation), a union exactly one (the chosen branch), an option zero (ε)
// or one, a star/iteration one child per iteration (each a derivation of
// the body). A leaf has none; its WordIndex is the index of the word
// symbol it consumed (-1 on every inner node and on ε-derived leaves'
// ancestors — ε derivations contain no leaves at all).
type ParseNode struct {
	Expr      NodeID
	WordIndex int
	Children  []*ParseNode
}

// Derive materializes the parse tree of an ACCEPTED word from its witness
// trace (run.Trace.Pos: trace[i] is the position that consumed symbol i).
// The caller is responsible for having checked acceptance; an inconsistent
// trace — not a legal position sequence of t, or a Null entry from a
// nondeterministic counter run — returns an error, never a wrong tree.
// The empty trace derives ε from the user expression.
func Derive(t *Tree, trace []NodeID) (*ParseNode, error) {
	for i, p := range trace {
		if p == Null {
			return nil, fmt.Errorf("parsetree: trace[%d] is unresolved (nondeterministic run?)", i)
		}
		if int(p) >= t.N() || !t.IsPos(p) || t.Sym[p] < ast.FirstUser {
			return nil, fmt.Errorf("parsetree: trace[%d] = %d is not a user position", i, p)
		}
	}
	if len(trace) == 0 {
		return epsilonDerive(t, t.UserRoot)
	}
	d := deriver{t: t}
	if !t.InFirst(trace[0], t.UserRoot) {
		return nil, fmt.Errorf("parsetree: trace[0] = %d is not in First(e)", trace[0])
	}
	root, err := d.open(t.UserRoot, trace[0], 0, nil)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(trace); i++ {
		prev, cur := trace[i-1], trace[i]
		n := lca(t, prev, cur)
		// Lemma 2.2, concatenation shape: prev ends the left part, cur
		// starts the right part of the cat at the LCA.
		if t.Op[n] == OpCat && t.InLast(prev, t.LChild[n]) && t.InFirst(cur, t.RChild[n]) {
			if err := d.closeTo(n); err != nil {
				return nil, err
			}
			if _, err := d.open(t.RChild[n], cur, i, d.top()); err != nil {
				return nil, err
			}
			continue
		}
		// Loop shape: prev ends and cur restarts an iteration of the
		// lowest (innermost — the greedy choice) loop ancestor that both
		// sides agree on.
		s := t.PLoop[n]
		for ; s != Null; s = nextLoopAbove(t, s) {
			if t.InFirst(cur, s) && t.InLast(prev, s) {
				break
			}
		}
		if s == Null {
			return nil, fmt.Errorf("parsetree: trace[%d→%d]: no route from position %d to %d", i-1, i, prev, cur)
		}
		if err := d.closeTo(s); err != nil {
			return nil, err
		}
		if _, err := d.open(t.LChild[s], cur, i, d.top()); err != nil {
			return nil, err
		}
	}
	if !t.InLast(trace[len(trace)-1], t.UserRoot) {
		return nil, fmt.Errorf("parsetree: final position %d is not in Last(e)", trace[len(trace)-1])
	}
	if err := d.closeTo(Null); err != nil {
		return nil, err
	}
	return root, nil
}

// deriver carries the open path: the ParseNodes from the user root down to
// the leaf that consumed the latest symbol, all still accepting children.
type deriver struct {
	t     *Tree
	stack []*ParseNode
}

func (d *deriver) top() *ParseNode { return d.stack[len(d.stack)-1] }

// open descends from tree node n to the position leaf, creating a
// ParseNode per step (appended to parent's Children and pushed on the open
// path). Concatenations entered through their right child get their left
// part ε-derived first; a star/iteration entered here starts with this
// descent as its first iteration.
func (d *deriver) open(n, leaf NodeID, idx int, parent *ParseNode) (*ParseNode, error) {
	t := d.t
	first := (*ParseNode)(nil)
	for {
		pn := &ParseNode{Expr: n, WordIndex: -1}
		if parent != nil {
			parent.Children = append(parent.Children, pn)
		}
		if first == nil {
			first = pn
		}
		d.stack = append(d.stack, pn)
		if n == leaf {
			pn.WordIndex = idx
			return first, nil
		}
		next := Null
		switch t.Op[n] {
		case OpCat:
			switch {
			case t.IsAncestor(t.LChild[n], leaf):
				next = t.LChild[n]
			case t.IsAncestor(t.RChild[n], leaf):
				eps, err := epsilonDerive(t, t.LChild[n])
				if err != nil {
					return nil, err
				}
				pn.Children = append(pn.Children, eps)
				next = t.RChild[n]
			}
		case OpUnion:
			switch {
			case t.IsAncestor(t.LChild[n], leaf):
				next = t.LChild[n]
			case t.IsAncestor(t.RChild[n], leaf):
				next = t.RChild[n]
			}
		case OpOpt, OpStar, OpIter:
			if t.IsAncestor(t.LChild[n], leaf) {
				next = t.LChild[n]
			}
		}
		if next == Null {
			return nil, fmt.Errorf("parsetree: position %d is not below %d", leaf, n)
		}
		parent, n = pn, next
	}
}

// closeTo pops completed subexpressions off the open path until upto is on
// top (Null pops everything — the final close). A popped concatenation
// that consumed input only in its left part gets its right part ε-derived.
func (d *deriver) closeTo(upto NodeID) error {
	t := d.t
	for len(d.stack) > 0 {
		pn := d.top()
		if pn.Expr == upto {
			return nil
		}
		if t.Op[pn.Expr] == OpCat && len(pn.Children) == 1 {
			eps, err := epsilonDerive(t, t.RChild[pn.Expr])
			if err != nil {
				return err
			}
			pn.Children = append(pn.Children, eps)
		}
		d.stack = d.stack[:len(d.stack)-1]
	}
	if upto == Null {
		return nil
	}
	return fmt.Errorf("parsetree: route node %d is not on the open path", upto)
}

// lca returns the lowest common ancestor by depth-balanced parent walks —
// O(depth), only on the witness path, where the per-symbol engines use the
// preprocessed constant-time structures instead.
func lca(t *Tree, a, b NodeID) NodeID {
	for t.Depth[a] > t.Depth[b] {
		a = t.Parent[a]
	}
	for t.Depth[b] > t.Depth[a] {
		b = t.Parent[b]
	}
	for a != b {
		a, b = t.Parent[a], t.Parent[b]
	}
	return a
}

// nextLoopAbove returns the next loop node strictly above s.
func nextLoopAbove(t *Tree, s NodeID) NodeID {
	if p := t.Parent[s]; p != Null {
		return t.PLoop[p]
	}
	return Null
}

// epsilonDerive builds the derivation of ε from subexpression n: unions
// pick a nullable branch (left preferred), concatenations derive both
// parts, options and stars take zero occurrences, iterations take the
// minimum count.
func epsilonDerive(t *Tree, n NodeID) (*ParseNode, error) {
	if !t.Nullable[n] {
		return nil, fmt.Errorf("parsetree: %s cannot derive the empty word", t.SubexprString(n))
	}
	pn := &ParseNode{Expr: n, WordIndex: -1}
	switch t.Op[n] {
	case OpCat:
		l, err := epsilonDerive(t, t.LChild[n])
		if err != nil {
			return nil, err
		}
		r, err := epsilonDerive(t, t.RChild[n])
		if err != nil {
			return nil, err
		}
		pn.Children = append(pn.Children, l, r)
	case OpUnion:
		branch := t.LChild[n]
		if !t.Nullable[branch] {
			branch = t.RChild[n]
		}
		c, err := epsilonDerive(t, branch)
		if err != nil {
			return nil, err
		}
		pn.Children = append(pn.Children, c)
	case OpOpt, OpStar:
		// zero occurrences
	case OpIter:
		for k := int32(0); k < t.Min[n]; k++ {
			c, err := epsilonDerive(t, t.LChild[n])
			if err != nil {
				return nil, err
			}
			pn.Children = append(pn.Children, c)
		}
	}
	return pn, nil
}

// Render writes the derivation as an s-expression — leaves as their symbol
// name, inner nodes as (op child …): "abba" against (ab+b(b?)a)* renders
// (star (union (cat a b)) (union (cat (cat b (opt)) a))). Stable, compact,
// and diffable: the differential tests compare engines on this form.
func (p *ParseNode) Render(t *Tree) string {
	var b strings.Builder
	p.render(t, &b)
	return b.String()
}

func (p *ParseNode) render(t *Tree, b *strings.Builder) {
	if t.Op[p.Expr] == OpSym {
		b.WriteString(t.Label(p.Expr))
		return
	}
	b.WriteByte('(')
	b.WriteString(opKeyword(t.Op[p.Expr]))
	for _, c := range p.Children {
		b.WriteByte(' ')
		c.render(t, b)
	}
	b.WriteByte(')')
}

func opKeyword(o Op) string {
	switch o {
	case OpCat:
		return "cat"
	case OpUnion:
		return "union"
	case OpOpt:
		return "opt"
	case OpStar:
		return "star"
	case OpIter:
		return "iter"
	}
	return "?"
}

// Leaves appends the derivation's leaves in left-to-right order — the
// consumed word as positions. On a tree built by Derive the i-th leaf has
// WordIndex i; tests use this to cross-check witnesses.
func (p *ParseNode) Leaves(t *Tree, dst []*ParseNode) []*ParseNode {
	if t.Op[p.Expr] == OpSym {
		return append(dst, p)
	}
	for _, c := range p.Children {
		dst = c.Leaves(t, dst)
	}
	return dst
}
