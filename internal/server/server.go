// Package server is the serving layer of dregexd: a long-running HTTP
// service exposing the whole pipeline — determinism verdicts, batch word
// matching, and instance validation against a hot-reloadable registry of
// DTD and XSD schemas — as JSON endpoints.
//
// The design rides the library's amortized paths end to end. Every
// expression that enters through /v1/compile, /v1/match or a registered
// schema compiles through one shared dregex.Cache, so the steady state of
// real traffic (schema reuse dominates real corpora) is a hash probe, not
// a compile. Validation requests borrow a per-schema pooled DocState
// (sync.Pool), so the frame stacks and stream buffers grown by earlier
// requests are reused rather than reallocated — the same docState reuse
// discipline as the corpus validators, adapted to open-ended request
// traffic. Raw-body validation streams the document straight from the
// connection into the matcher; nothing is buffered.
//
// Schema hot-reload is atomic: the registry is an immutable map behind an
// atomic pointer, writers build a new map and swap it, and in-flight
// requests keep the entry (and pooled states) they resolved — swapping a
// schema under live traffic never disturbs requests already validating
// against the old version.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dregex"
	"dregex/client"
	"dregex/internal/obs"
)

// Config parameterizes New. The zero value is usable.
type Config struct {
	// Cache backs every compilation (expressions and schema content
	// models); nil selects a fresh dregex.NewCache(4096).
	Cache *dregex.Cache
	// MaxBodyBytes bounds request bodies (documents, schemas, JSON);
	// 0 selects 4 MiB. Oversized requests get 413.
	MaxBodyBytes int64
	// AccessLog, when non-nil, receives one structured line per request
	// (request id, method, path, status, bytes, duration, remote addr,
	// and — for /v1/validate — schema and verdict). nil disables access
	// logging entirely; the hot path then pays a single branch.
	AccessLog *slog.Logger
	// Limits configures admission control (rate buckets, in-flight
	// bounds, deadlines); the zero value disables all of it. See limit.go.
	Limits Limits
}

// DefaultMaxBodyBytes bounds request bodies when Config leaves it zero.
const DefaultMaxBodyBytes = 4 << 20

// endpointNames are the per-endpoint instrument keys of /v1/stats and
// /metrics.
var endpointNames = []string{"compile", "match", "validate", "schemas", "stats", "metrics"}

// Server is the dregexd request handler. Construct with New; it is safe
// for concurrent use.
type Server struct {
	cache   *dregex.Cache
	maxBody int64
	start   time.Time

	// schemas is the registry: an immutable name → entry map behind an
	// atomic pointer. Readers Load once per request; writers serialize on
	// mu, build a copy, and Store it.
	mu      sync.Mutex
	schemas atomic.Pointer[map[string]*schemaEntry]
	swaps   atomic.Uint64

	// metrics is the obs registry behind GET /metrics; endpoints holds the
	// pre-resolved per-endpoint instruments keyed by endpointNames.
	metrics   *obs.Registry
	endpoints map[string]*endpointMetrics
	// panics counts handler panics absorbed by the recovery middleware.
	panics *obs.Counter

	// Admission control (limit.go): the global rate bucket, the per-class
	// in-flight bounds, and the per-schema-name validate buckets (guarded
	// by mu, resolved at registration like the per-schema instruments).
	limits        Limits
	global        *rateLimiter
	classes       map[string]*classLimit
	schemaBuckets map[string]*rateLimiter
	// reqSeq issues the monotonic per-server request ids threaded through
	// access-log lines and error responses.
	reqSeq    atomic.Uint64
	accessLog *slog.Logger

	publishOnce sync.Once
	publishName string

	handler http.Handler
}

// New returns a ready Server.
func New(cfg Config) *Server {
	s := &Server{
		cache:     cfg.Cache,
		maxBody:   cfg.MaxBodyBytes,
		start:     time.Now(),
		accessLog: cfg.AccessLog,
	}
	if s.cache == nil {
		s.cache = dregex.NewCache(4096)
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	empty := map[string]*schemaEntry{}
	s.schemas.Store(&empty)
	s.schemaBuckets = make(map[string]*rateLimiter)
	s.initLimits(cfg.Limits)
	s.initMetrics()

	mux := http.NewServeMux()
	mux.Handle("POST /v1/compile", s.counted("compile", s.handleCompile))
	mux.Handle("POST /v1/match", s.counted("match", s.handleMatch))
	mux.Handle("POST /v1/validate", s.counted("validate", s.handleValidate))
	mux.Handle("PUT /v1/schemas/{name}", s.counted("schemas", s.handlePutSchema))
	mux.Handle("GET /v1/schemas/{name}", s.counted("schemas", s.handleGetSchema))
	mux.Handle("DELETE /v1/schemas/{name}", s.counted("schemas", s.handleDeleteSchema))
	mux.Handle("GET /v1/schemas", s.counted("schemas", s.handleListSchemas))
	mux.Handle("GET /v1/stats", s.counted("stats", s.handleStats))
	mux.Handle("GET /metrics", s.counted("metrics", s.handleMetrics))
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.handler = mux
	return s
}

// Handler returns the root http.Handler (mount it on an http.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// NewHTTPServer wraps the handler in an http.Server with production
// timeouts, ready for graceful shutdown via its Shutdown method.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// publishMu serializes expvar name allocation across servers in one
// process; expvar names are process-global and a second Publish of the
// same name panics.
var (
	publishMu sync.Mutex
	publishN  int
)

// Publish exports this server's stats snapshot on GET /debug/vars
// (alongside the runtime's memstats) and returns the expvar name it was
// published under. The first server in the process gets "dregexd"; later
// servers get "dregexd-2", "dregexd-3", … — expvar names are
// process-global, so each instance needs its own. Publish is idempotent
// per server: repeated calls return the name chosen the first time.
func (s *Server) Publish() string {
	s.publishOnce.Do(func() {
		publishMu.Lock()
		publishN++
		name := "dregexd"
		if publishN > 1 {
			name = fmt.Sprintf("dregexd-%d", publishN)
		}
		publishMu.Unlock()
		s.publishName = name
		expvar.Publish(name, expvar.Func(func() any { return s.statsSnapshot() }))
	})
	return s.publishName
}

// statusWriter records the response code and size so the middleware can
// count errors and observe response bytes, and carries the per-request
// trace context (id, and — set by handleValidate — schema and verdict)
// without a context.WithValue allocation. Handlers reach it by asserting
// their ResponseWriter back to *statusWriter.
type statusWriter struct {
	http.ResponseWriter
	code    int
	bytes   int64
	id      uint64
	schema  string
	verdict string
	// wrote tracks whether the response has started, so the panic-recovery
	// middleware knows whether a clean 500 is still possible.
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// requestID returns the trace id of the request being served on w, or 0
// when w is not the middleware's statusWriter (direct handler tests).
func requestID(w http.ResponseWriter) uint64 {
	if sw, ok := w.(*statusWriter); ok {
		return sw.id
	}
	return 0
}

// counted wraps a handler with the per-endpoint instruments (request and
// error counters, latency and size histograms), admission control, panic
// recovery, the request-size limit, the trace id, and the optional access
// log. The instrumentation is a time.Now and a few uncontended atomic
// adds, and admission is a CAS plus two atomic adds — the handler hot
// path stays within its allocation pin.
func (s *Server) counted(name string, h http.HandlerFunc) http.Handler {
	m := s.endpoints[name]
	cl := s.classes[endpointClass(name)]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()
		if r.ContentLength >= 0 {
			m.reqBytes.Observe(r.ContentLength)
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		sw := statusWriter{ResponseWriter: w, code: http.StatusOK, id: s.reqSeq.Add(1)}
		if s.accessLog != nil {
			// The header costs an allocation, so it rides the logging
			// opt-in: the id is only useful for joining with log lines.
			setRequestID(w, sw.id)
		}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// net/http's own abort sentinel: pass it through so the
					// connection is torn down as the handler intended.
					panic(p)
				}
				s.panics.Inc()
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					writeError(&sw, http.StatusInternalServerError,
						"internal error (recovered from panic)")
				}
			}
			d := time.Since(start)
			m.duration.Observe(int64(d))
			m.respBytes.Observe(sw.bytes)
			if sw.code >= 400 {
				m.errors.Inc()
			}
			if s.accessLog != nil {
				s.logAccess(r, &sw, d)
			}
		}()
		ok, acquired := s.admit(&sw, m, cl)
		if acquired {
			defer cl.release()
		}
		if !ok {
			return
		}
		h(&sw, r)
	})
}

// jsonBuf is a pooled response-encoding buffer with its bound encoder, so
// the steady-state cost of writing a response is one buffer reset and one
// Write — no per-request encoder or buffer allocation.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufs = sync.Pool{New: func() any {
	b := &jsonBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// maxPooledJSONBuf caps what returns to the pool: a pathological response
// (say, a document yielding tens of thousands of validation errors) must
// not pin a multi-megabyte buffer behind every future small verdict.
const maxPooledJSONBuf = 64 << 10

func putJSONBuf(jb *jsonBuf) {
	if jb.buf.Cap() <= maxPooledJSONBuf {
		jsonBufs.Put(jb)
	}
}

// jsonContentType is the shared Content-Type header value; assigning the
// same slice per response (the key is already in canonical form) skips the
// per-request []string allocation of Header.Set. Handlers never mutate it.
var jsonContentType = []string{"application/json"}

// writeJSON renders v with the given status. Responses are small (verdicts
// and error lists); encoding into a pooled buffer makes the response a
// single Write, which net/http sizes with an automatic Content-Length.
func writeJSON(w http.ResponseWriter, code int, v any) {
	jb := jsonBufs.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		putJSONBuf(jb)
		// Nothing has been written yet, so a clean 500 is still possible.
		w.Header()["Content-Type"] = jsonContentType
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encoding response: "+err.Error())
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(code)
	w.Write(jb.buf.Bytes())
	putJSONBuf(jb)
}

// writeError renders a client.ErrorResponse carrying the request's trace
// id. 413 is detected from MaxBytesReader so oversized bodies report as
// such wherever they surface (JSON decode or mid-document XML read).
//
//dregex:coldalloc
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, client.ErrorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: requestID(w),
	})
}

// errStatus maps a body-read error to a status: 413 for the size limit,
// otherwise the fallback.
func errStatus(err error, fallback int) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) statsSnapshot() client.StatsResponse {
	cs := s.cache.Stats()
	schemas := *s.schemas.Load()
	resp := client.StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache: client.CacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			HitRate:   cs.HitRate(),
			Entries:   cs.Entries,
			Negative:  cs.Negative,
			Evictions: cs.Evictions,
		},
		Endpoints:   make(map[string]client.EndpointStats, len(s.endpoints)),
		SchemaCount: len(schemas),
		SchemaSwaps: s.swaps.Load(),
		EngineTiers: dregex.EngineSelections(),
	}
	for name, m := range s.endpoints {
		h := m.duration.Snapshot()
		resp.Endpoints[name] = client.EndpointStats{
			Requests:  int64(m.requests.Value()),
			Errors:    int64(m.errors.Value()),
			P50Millis: h.Quantile(0.5) / 1e6,
			P90Millis: h.Quantile(0.9) / 1e6,
			P99Millis: h.Quantile(0.99) / 1e6,
			Shed: int64(m.shedRate.Value() + m.shedSchemaRate.Value() +
				m.shedInflight.Value() + m.shedTimeout.Value()),
		}
	}
	if len(schemas) > 0 {
		resp.Schemas = make(map[string]client.SchemaTraffic, len(schemas))
		for name, e := range schemas {
			om := e.om
			syms := om.symbols.Value()
			tr := client.SchemaTraffic{
				Kind:      e.info.Kind,
				Version:   e.info.Version,
				Valid:     om.valid.Value(),
				Invalid:   om.invalid.Value(),
				DocErrors: om.docErrors.Value(),
				Symbols:   syms,
				DocBytes:  om.docBytes.Value(),
				Models:    e.tiers,
			}
			if syms > 0 {
				tr.NsPerSymbol = float64(om.duration.Sum64()) / float64(syms)
			}
			resp.Schemas[name] = tr
		}
	}
	return resp
}

// parseSyntax maps a wire syntax name to a dregex.Syntax.
func parseSyntax(name string) (dregex.Syntax, error) {
	switch name {
	case "", client.SyntaxDTD:
		return dregex.DTD, nil
	case client.SyntaxMath:
		return dregex.Math, nil
	case client.SyntaxXSD:
		return dregex.XSD, nil
	}
	return 0, fmt.Errorf("unknown syntax %q (want dtd, math or xsd)", name)
}
