// Package server is the serving layer of dregexd: a long-running HTTP
// service exposing the whole pipeline — determinism verdicts, batch word
// matching, and instance validation against a hot-reloadable registry of
// DTD and XSD schemas — as JSON endpoints.
//
// The design rides the library's amortized paths end to end. Every
// expression that enters through /v1/compile, /v1/match or a registered
// schema compiles through one shared dregex.Cache, so the steady state of
// real traffic (schema reuse dominates real corpora) is a hash probe, not
// a compile. Validation requests borrow a per-schema pooled DocState
// (sync.Pool), so the frame stacks and stream buffers grown by earlier
// requests are reused rather than reallocated — the same docState reuse
// discipline as the corpus validators, adapted to open-ended request
// traffic. Raw-body validation streams the document straight from the
// connection into the matcher; nothing is buffered.
//
// Schema hot-reload is atomic: the registry is an immutable map behind an
// atomic pointer, writers build a new map and swap it, and in-flight
// requests keep the entry (and pooled states) they resolved — swapping a
// schema under live traffic never disturbs requests already validating
// against the old version.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dregex"
	"dregex/client"
)

// Config parameterizes New. The zero value is usable.
type Config struct {
	// Cache backs every compilation (expressions and schema content
	// models); nil selects a fresh dregex.NewCache(4096).
	Cache *dregex.Cache
	// MaxBodyBytes bounds request bodies (documents, schemas, JSON);
	// 0 selects 4 MiB. Oversized requests get 413.
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes bounds request bodies when Config leaves it zero.
const DefaultMaxBodyBytes = 4 << 20

// endpointNames are the per-endpoint counter keys of /v1/stats.
var endpointNames = []string{"compile", "match", "validate", "schemas", "stats"}

// endpointCounters counts requests and error responses for one endpoint.
// expvar.Int is an atomic counter with a JSON rendering, so the same
// values back /v1/stats and the optional expvar export.
type endpointCounters struct {
	requests expvar.Int
	errors   expvar.Int
}

// Server is the dregexd request handler. Construct with New; it is safe
// for concurrent use.
type Server struct {
	cache   *dregex.Cache
	maxBody int64
	start   time.Time

	// schemas is the registry: an immutable name → entry map behind an
	// atomic pointer. Readers Load once per request; writers serialize on
	// mu, build a copy, and Store it.
	mu      sync.Mutex
	schemas atomic.Pointer[map[string]*schemaEntry]
	swaps   atomic.Uint64

	counters map[string]*endpointCounters
	handler  http.Handler
}

// New returns a ready Server.
func New(cfg Config) *Server {
	s := &Server{
		cache:   cfg.Cache,
		maxBody: cfg.MaxBodyBytes,
		start:   time.Now(),
	}
	if s.cache == nil {
		s.cache = dregex.NewCache(4096)
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	empty := map[string]*schemaEntry{}
	s.schemas.Store(&empty)
	s.counters = make(map[string]*endpointCounters, len(endpointNames))
	for _, n := range endpointNames {
		s.counters[n] = &endpointCounters{}
	}

	mux := http.NewServeMux()
	mux.Handle("POST /v1/compile", s.counted("compile", s.handleCompile))
	mux.Handle("POST /v1/match", s.counted("match", s.handleMatch))
	mux.Handle("POST /v1/validate", s.counted("validate", s.handleValidate))
	mux.Handle("PUT /v1/schemas/{name}", s.counted("schemas", s.handlePutSchema))
	mux.Handle("GET /v1/schemas/{name}", s.counted("schemas", s.handleGetSchema))
	mux.Handle("DELETE /v1/schemas/{name}", s.counted("schemas", s.handleDeleteSchema))
	mux.Handle("GET /v1/schemas", s.counted("schemas", s.handleListSchemas))
	mux.Handle("GET /v1/stats", s.counted("stats", s.handleStats))
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.handler = mux
	return s
}

// Handler returns the root http.Handler (mount it on an http.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// NewHTTPServer wraps the handler in an http.Server with production
// timeouts, ready for graceful shutdown via its Shutdown method.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

var publishOnce sync.Once

// Publish exports this server's stats snapshot under the expvar name
// "dregexd" (shown on GET /debug/vars alongside the runtime's memstats).
// Only the first server to call it wins the name — expvar names are
// process-global — which is exactly right for the daemon.
func (s *Server) Publish() {
	publishOnce.Do(func() {
		expvar.Publish("dregexd", expvar.Func(func() any { return s.statsSnapshot() }))
	})
}

// statusWriter records the response code so the middleware can count
// error responses.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with the per-endpoint request/error counters and
// the request-size limit.
func (s *Server) counted(name string, h http.HandlerFunc) http.Handler {
	c := s.counters[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		sw := statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(&sw, r)
		if sw.code >= 400 {
			c.errors.Add(1)
		}
	})
}

// jsonBuf is a pooled response-encoding buffer with its bound encoder, so
// the steady-state cost of writing a response is one buffer reset and one
// Write — no per-request encoder or buffer allocation.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufs = sync.Pool{New: func() any {
	b := &jsonBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// maxPooledJSONBuf caps what returns to the pool: a pathological response
// (say, a document yielding tens of thousands of validation errors) must
// not pin a multi-megabyte buffer behind every future small verdict.
const maxPooledJSONBuf = 64 << 10

func putJSONBuf(jb *jsonBuf) {
	if jb.buf.Cap() <= maxPooledJSONBuf {
		jsonBufs.Put(jb)
	}
}

// jsonContentType is the shared Content-Type header value; assigning the
// same slice per response (the key is already in canonical form) skips the
// per-request []string allocation of Header.Set. Handlers never mutate it.
var jsonContentType = []string{"application/json"}

// writeJSON renders v with the given status. Responses are small (verdicts
// and error lists); encoding into a pooled buffer makes the response a
// single Write, which net/http sizes with an automatic Content-Length.
func writeJSON(w http.ResponseWriter, code int, v any) {
	jb := jsonBufs.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		putJSONBuf(jb)
		// Nothing has been written yet, so a clean 500 is still possible.
		w.Header()["Content-Type"] = jsonContentType
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encoding response: "+err.Error())
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(code)
	w.Write(jb.buf.Bytes())
	putJSONBuf(jb)
}

// writeError renders a client.ErrorResponse. 413 is detected from
// MaxBytesReader so oversized bodies report as such wherever they surface
// (JSON decode or mid-document XML read).
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, client.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps a body-read error to a status: 413 for the size limit,
// otherwise the fallback.
func errStatus(err error, fallback int) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) statsSnapshot() client.StatsResponse {
	cs := s.cache.Stats()
	resp := client.StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache: client.CacheStats{
			Hits:     cs.Hits,
			Misses:   cs.Misses,
			HitRate:  cs.HitRate(),
			Entries:  cs.Entries,
			Negative: cs.Negative,
		},
		Endpoints:   make(map[string]client.EndpointStats, len(s.counters)),
		SchemaCount: len(*s.schemas.Load()),
		SchemaSwaps: s.swaps.Load(),
	}
	for name, c := range s.counters {
		resp.Endpoints[name] = client.EndpointStats{
			Requests: c.requests.Value(),
			Errors:   c.errors.Value(),
		}
	}
	return resp
}

// parseSyntax maps a wire syntax name to a dregex.Syntax.
func parseSyntax(name string) (dregex.Syntax, error) {
	switch name {
	case "", client.SyntaxDTD:
		return dregex.DTD, nil
	case client.SyntaxMath:
		return dregex.Math, nil
	case client.SyntaxXSD:
		return dregex.XSD, nil
	}
	return 0, fmt.Errorf("unknown syntax %q (want dtd, math or xsd)", name)
}
