package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dregex/client"
)

func TestRateLimiterGCRA(t *testing.T) {
	// 10 req/s, burst 3: emission interval 100ms. Driven with synthetic
	// clock values, so the test is fully deterministic.
	rl := newRateLimiter(10, 3)
	now := int64(0)
	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow(now); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, ra := rl.allow(now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if ra <= 0 || ra > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms]", ra)
	}
	// A rejected probe must not move the recovery point: retrying exactly
	// at now+ra conforms.
	if ok2, ra2 := rl.allow(now); !ok2 && ra2 != ra {
		t.Fatalf("second rejected probe moved retryAfter: %v -> %v", ra, ra2)
	}
	now += int64(ra)
	if ok, _ := rl.allow(now); !ok {
		t.Fatal("request at the advertised retry time shed")
	}
	// After a long idle stretch the full burst is available again.
	now += int64(10 * time.Second)
	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow(now); !ok {
			t.Fatalf("post-idle burst request %d shed", i)
		}
	}

	if rl := newRateLimiter(0, 5); rl != nil {
		t.Error("rate 0 must disable the limiter")
	}
}

func TestClassLimitSemaphore(t *testing.T) {
	cl := &classLimit{class: "validate", max: 2}
	if !cl.acquire() || !cl.acquire() {
		t.Fatal("slots under the bound refused")
	}
	if cl.acquire() {
		t.Fatal("slot over the bound admitted")
	}
	cl.release()
	if !cl.acquire() {
		t.Fatal("freed slot refused")
	}
	// Unbounded class still counts (for the gauge) but never refuses.
	free := &classLimit{class: "admin"}
	for i := 0; i < 100; i++ {
		if !free.acquire() {
			t.Fatal("unbounded class refused")
		}
	}
	if free.cur.Load() != 100 {
		t.Fatalf("gauge count = %d, want 100", free.cur.Load())
	}
}

func TestRetryAfterMs(t *testing.T) {
	for _, c := range []struct {
		d    time.Duration
		want int64
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Microsecond, 1},
		{time.Millisecond, 1},
		{time.Millisecond + 1, 2},
		{1500 * time.Millisecond, 1500},
	} {
		if got := retryAfterMs(c.d); got != c.want {
			t.Errorf("retryAfterMs(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestValidateDeadlineHeader(t *testing.T) {
	if d := validateDeadline(0, ""); !d.IsZero() {
		t.Error("no budget must mean no deadline")
	}
	if d := validateDeadline(time.Minute, ""); d.IsZero() || time.Until(d) > time.Minute {
		t.Errorf("configured budget: %v", d)
	}
	// The header tightens a configured budget…
	d := validateDeadline(time.Minute, "50")
	if d.IsZero() || time.Until(d) > 100*time.Millisecond {
		t.Errorf("header must tighten the budget: %v away", time.Until(d))
	}
	// …but cannot loosen it.
	d = validateDeadline(time.Millisecond, "60000")
	if time.Until(d) > time.Second {
		t.Errorf("header loosened the budget: %v away", time.Until(d))
	}
	// Invalid or non-positive header values are ignored.
	if d := validateDeadline(0, "abc"); !d.IsZero() {
		t.Error("garbage header produced a deadline")
	}
	if d := validateDeadline(0, "0"); !d.IsZero() {
		t.Error("zero header produced a deadline")
	}
}

// shedServer builds a server + schema with the given limits.
func shedServer(t *testing.T, limits Limits) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := New(Config{Limits: limits})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c := client.New(hs.URL, hs.Client())
	if _, err := c.PutSchema(context.Background(), "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatal(err)
	}
	return s, hs, c
}

func TestGlobalRateShed(t *testing.T) {
	// 1 req/s with burst 2: the schema registration rides the admin class
	// (exempt), so exactly two validates pass before shedding starts.
	s, hs, _ := shedServer(t, Limits{Rate: 1, Burst: 2})
	doc := `<note><to>x</to><body>y</body></note>`

	codes := make([]int, 4)
	for i := range codes {
		codes[i], _ = doRaw(t, hs, "POST", "/v1/validate?schema=note", "application/xml", doc)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests: %v, want two 200s first", codes)
	}
	if codes[2] != http.StatusTooManyRequests || codes[3] != http.StatusTooManyRequests {
		t.Fatalf("over-rate requests: %v, want 429s", codes)
	}

	// The shed response is well-formed: Retry-After header and structured
	// JSON with the millisecond hint.
	req, _ := http.NewRequest("POST", hs.URL+"/v1/validate?schema=note", strings.NewReader(doc))
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var er client.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("shed body not JSON: %v", err)
	}
	if er.Error == "" || er.RetryAfterMs <= 0 {
		t.Errorf("shed body = %+v", er)
	}

	// Admin endpoints bypass the (exhausted) global bucket: observability
	// must survive overload.
	if code, _ := doRaw(t, hs, "GET", "/v1/stats", "", ""); code != http.StatusOK {
		t.Errorf("/v1/stats shed during overload: %d", code)
	}
	if code, _ := doRaw(t, hs, "GET", "/metrics", "", ""); code != http.StatusOK {
		t.Errorf("/metrics shed during overload: %d", code)
	}

	// Accounting: shed_total moved and /v1/stats reports the sheds.
	if v := s.endpoints["validate"].shedRate.Value(); v < 2 {
		t.Errorf("shedRate = %d, want >= 2", v)
	}
	var st client.StatsResponse
	_, raw := doRaw(t, hs, "GET", "/v1/stats", "", "")
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Endpoints["validate"].Shed < 2 {
		t.Errorf("stats shed = %d, want >= 2", st.Endpoints["validate"].Shed)
	}
}

func TestSchemaRateShed(t *testing.T) {
	s, hs, c := shedServer(t, Limits{SchemaRate: 1, SchemaBurst: 1})
	if _, err := c.PutSchema(context.Background(), "other", client.KindDTD,
		[]byte(`<!ELEMENT other (#PCDATA)>`)); err != nil {
		t.Fatal(err)
	}
	doc := `<note><to>x</to><body>y</body></note>`

	if code, _ := doRaw(t, hs, "POST", "/v1/validate?schema=note", "application/xml", doc); code != http.StatusOK {
		t.Fatalf("first validate shed: %d", code)
	}
	if code, _ := doRaw(t, hs, "POST", "/v1/validate?schema=note", "application/xml", doc); code != http.StatusTooManyRequests {
		t.Fatalf("over-rate validate: %d, want 429", code)
	}
	// The bucket is per schema: a different schema still has its token.
	if code, _ := doRaw(t, hs, "POST", "/v1/validate?schema=other", "application/xml",
		`<other>x</other>`); code != http.StatusOK {
		t.Errorf("sibling schema shed by note's bucket: %d", code)
	}
	if v := s.endpoints["validate"].shedSchemaRate.Value(); v != 1 {
		t.Errorf("shedSchemaRate = %d, want 1", v)
	}

	// A hot swap keeps the bucket's (empty) state: re-registering is not a
	// way around the limit.
	if _, err := c.PutSchema(context.Background(), "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatal(err)
	}
	if code, _ := doRaw(t, hs, "POST", "/v1/validate?schema=note", "application/xml", doc); code != http.StatusTooManyRequests {
		t.Errorf("validate after swap: %d, want 429 (bucket must survive the swap)", code)
	}
}

func TestInflightShed(t *testing.T) {
	s, hs, _ := shedServer(t, Limits{MaxInflight: 1})
	doc := `<note><to>x</to><body>y</body></note>`

	// Occupy the validate class's only slot, as a stuck request would.
	cl := s.classes[classValidate]
	if !cl.acquire() {
		t.Fatal("occupying the slot failed")
	}
	code, body := doRaw(t, hs, "POST", "/v1/validate?schema=note", "application/xml", doc)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("validate with full class: %d %s, want 503", code, body)
	}
	var er client.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMs <= 0 {
		t.Errorf("inflight shed body = %s (err=%v)", body, err)
	}
	// Other classes are unaffected: their slots are their own.
	if code, _ := doRaw(t, hs, "POST", "/v1/compile", "application/json", `{"expr":"(a)"}`); code != http.StatusOK {
		t.Errorf("compile shed by validate's class: %d", code)
	}
	cl.release()
	if code, _ := doRaw(t, hs, "POST", "/v1/validate?schema=note", "application/xml", doc); code != http.StatusOK {
		t.Errorf("validate after release: %d", code)
	}
	if v := s.endpoints["validate"].shedInflight.Value(); v != 1 {
		t.Errorf("shedInflight = %d, want 1", v)
	}
}

func TestValidateTimeoutShed(t *testing.T) {
	s, hs, c := shedServer(t, Limits{ValidateTimeout: time.Nanosecond})
	if _, err := c.PutSchema(context.Background(), "wide", client.KindDTD,
		[]byte(`<!ELEMENT r (c)*><!ELEMENT c EMPTY>`)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 3000; i++ {
		b.WriteString("<c/>")
	}
	b.WriteString("</r>")

	code, body := doRaw(t, hs, "POST", "/v1/validate?schema=wide", "application/xml", b.String())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expired validate budget: %d %s, want 503", code, body)
	}
	var er client.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMs <= 0 {
		t.Errorf("timeout shed body = %s (err=%v)", body, err)
	}
	if v := s.endpoints["validate"].shedTimeout.Value(); v != 1 {
		t.Errorf("shedTimeout = %d, want 1", v)
	}
	// The aborted run is a shed, not a verdict: no doc_error accounting.
	e := s.lookupSchema("wide")
	if n := e.om.docErrors.Value(); n != 0 {
		t.Errorf("aborted run counted as doc_error (%d)", n)
	}
}

func TestCompileTimeoutShed(t *testing.T) {
	s, hs, _ := shedServer(t, Limits{CompileTimeout: time.Nanosecond})
	// A large expression so the background compile cannot win the race
	// against the already-expired context.
	var b strings.Builder
	b.WriteString(`{"expr": "(a0`)
	for i := 1; i < 3000; i++ {
		fmt.Fprintf(&b, ", a%d", i)
	}
	b.WriteString(`)"}`)

	code, body := doRaw(t, hs, "POST", "/v1/compile", "application/json", b.String())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expired compile budget: %d %s, want 503", code, body)
	}
	if v := s.endpoints["compile"].shedTimeout.Value(); v != 1 {
		t.Errorf("shedTimeout = %d, want 1", v)
	}
	// The compile finished in the background and cached its result, so an
	// unlimited retry path would hit. (Poll: the background goroutine races
	// this assertion.)
	deadline := time.Now().Add(5 * time.Second)
	for s.cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned compile never cached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	h := s.counted("stats", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic status = %d, want 500", rec.Code)
	}
	var er client.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Errorf("recovered panic body = %s (err=%v)", rec.Body, err)
	}
	if v := s.panics.Value(); v != 1 {
		t.Errorf("panics counter = %d, want 1", v)
	}
	if v := s.endpoints["stats"].errors.Value(); v != 1 {
		t.Errorf("error counter = %d, want 1", v)
	}
	// The in-flight slot was released despite the panic.
	if n := s.classes[classAdmin].cur.Load(); n != 0 {
		t.Errorf("inflight after panic = %d, want 0", n)
	}

	// http.ErrAbortHandler passes through untouched — net/http owns it.
	aborter := s.counted("stats", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	func() {
		defer func() {
			if p := recover(); p != http.ErrAbortHandler {
				t.Errorf("ErrAbortHandler swallowed (got %v)", p)
			}
		}()
		aborter.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/stats", nil))
	}()
	if v := s.panics.Value(); v != 1 {
		t.Errorf("ErrAbortHandler counted as recovered panic (%d)", v)
	}
}

// TestServerValidateAllocsLimited extends the hot-path allocation pin to a
// fully armed admission-control configuration: rate buckets, in-flight
// bounds, and a validate deadline all on. The budget matches
// TestServerValidateAllocs — overload protection must be allocation-free
// on admitted requests.
func TestServerValidateAllocsLimited(t *testing.T) {
	s := New(Config{Limits: Limits{
		Rate: 1e9, Burst: 1000,
		SchemaRate: 1e9, SchemaBurst: 1000,
		MaxInflight:     64,
		ValidateTimeout: time.Hour,
	}})
	req := httptest.NewRequest("PUT", "/v1/schemas/library", strings.NewReader(benchSchemaDTD))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("schema registration: %d %s", rec.Code, rec.Body)
	}
	h := s.Handler()
	doc := []byte(benchDoc)
	vreq := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
	rb := &resetBody{bytes.NewReader(doc)}
	w := &discardWriter{h: make(http.Header)}
	run := func() {
		rb.Seek(0, io.SeekStart)
		vreq.Body = rb
		h.ServeHTTP(w, vreq)
	}
	run()
	allocs := testing.AllocsPerRun(200, run)
	const maxAllocs = 9
	if allocs > maxAllocs {
		t.Errorf("limited validate path allocates %.1f allocs/op, pinned at <= %d", allocs, maxAllocs)
	}
}

// TestShedUnderConcurrency hammers a tightly limited server from many
// goroutines: every response must be a 200, 429 or 503 — never a hang,
// never a malformed body (run under -race via make test).
func TestShedUnderConcurrency(t *testing.T) {
	_, hs, _ := shedServer(t, Limits{Rate: 50, Burst: 5, MaxInflight: 4})
	doc := `<note><to>x</to><body>y</body></note>`
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				req, _ := http.NewRequest("POST", hs.URL+"/v1/validate?schema=note", strings.NewReader(doc))
				resp, err := hs.Client().Do(req)
				if err != nil {
					t.Errorf("transport error: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				if resp.StatusCode != http.StatusOK {
					var er client.ErrorResponse
					if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
						t.Errorf("malformed shed body (status %d): %v", resp.StatusCode, err)
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}
