package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dregex/client"
)

const testDTD = `<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>
<!ENTITY who "Alice">`

const testXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="item" type="xs:string" minOccurs="1" maxOccurs="3"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func newTestServer(t *testing.T) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := New(Config{})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, client.New(hs.URL, hs.Client())
}

// doRaw issues a request against the handler and returns status and body.
func doRaw(t *testing.T, hs *httptest.Server, method, path, contentType, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, hs.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func TestCompileEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	det, err := c.Compile(ctx, client.CompileRequest{Expr: "(a, b*, c?)"})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !det.Deterministic || det.Numeric || det.Stats == nil || det.Stats.Sigma != 3 {
		t.Errorf("deterministic DTD model: %+v", det)
	}
	if det.Cached {
		t.Error("first compile reported cached")
	}
	again, err := c.Compile(ctx, client.CompileRequest{Expr: "(a, b*, c?)"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("second compile not served from cache")
	}

	nondet, err := c.Compile(ctx, client.CompileRequest{Expr: "(a, b) | (a, c)"})
	if err != nil {
		t.Fatalf("Compile nondet: %v", err)
	}
	if nondet.Deterministic {
		t.Error("nondeterministic model reported deterministic")
	}
	if nondet.Ambiguity == nil || nondet.Ambiguity.Symbol != "a" || len(nondet.Ambiguity.Word) == 0 {
		t.Errorf("missing Explain counterexample: %+v", nondet.Ambiguity)
	}

	num, err := c.Compile(ctx, client.CompileRequest{Expr: "(a{2,5}, b)", Syntax: client.SyntaxXSD})
	if err != nil {
		t.Fatalf("Compile numeric: %v", err)
	}
	if !num.Numeric || !num.Deterministic {
		t.Errorf("numeric fallback: %+v", num)
	}

	math, err := c.Compile(ctx, client.CompileRequest{Expr: "(ab+b(b?)a)*", Syntax: client.SyntaxMath})
	if err != nil {
		t.Fatalf("Compile math: %v", err)
	}
	if !math.Deterministic {
		t.Errorf("paper's example expression: %+v", math)
	}

	if _, err := c.Compile(ctx, client.CompileRequest{Expr: "(a,", Syntax: "dtd"}); err == nil {
		t.Error("malformed expression accepted")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusUnprocessableEntity {
		t.Errorf("malformed expression: %v, want 422", err)
	}
	if _, err := c.Compile(ctx, client.CompileRequest{Expr: "a", Syntax: "perl"}); err == nil {
		t.Error("unknown syntax accepted")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusBadRequest {
		t.Errorf("unknown syntax: %v, want 400", err)
	}
}

func TestCompileMalformedPayloads(t *testing.T) {
	_, hs, _ := newTestServer(t)
	if code, _ := doRaw(t, hs, "POST", "/v1/compile", "application/json", "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", code)
	}
	if code, _ := doRaw(t, hs, "GET", "/v1/compile", "", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET compile: %d, want 405", code)
	}
}

func TestOversizedPayloads(t *testing.T) {
	s := New(Config{MaxBodyBytes: 256})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	big := strings.Repeat("x", 512)
	if code, _ := doRaw(t, hs, "POST", "/v1/compile", "application/json",
		`{"expr": "`+big+`"}`); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized compile: %d, want 413", code)
	}

	if _, err := c.PutSchema(ctx, "n", client.KindDTD, []byte("<!ELEMENT a EMPTY>")); err != nil {
		t.Fatal(err)
	}
	doc := "<a>" + strings.Repeat("<b/>", 200) + "</a>"
	if code, _ := doRaw(t, hs, "POST", "/v1/validate?schema=n", "application/xml", doc); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized document: %d, want 413", code)
	}
	if code, _ := doRaw(t, hs, "PUT", "/v1/schemas/huge", "", strings.Repeat("<!ELEMENT a EMPTY>", 100)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized schema: %d, want 413", code)
	}
}

func TestMatchEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	m, err := c.Match(ctx, client.MatchRequest{
		Expr:  "(a, b*, c)",
		Words: [][]string{{"a", "c"}, {"a", "b", "b", "c"}, {"a"}, {"c"}},
	})
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want := []bool{true, true, false, false}
	if fmt.Sprint(m.Results) != fmt.Sprint(want) {
		t.Errorf("Results = %v, want %v", m.Results, want)
	}

	// Numeric expressions match through the counter pipeline.
	nm, err := c.Match(ctx, client.MatchRequest{
		Expr:   "(a{2,3})",
		Syntax: client.SyntaxXSD,
		Words:  [][]string{{"a"}, {"a", "a"}, {"a", "a", "a", "a"}},
	})
	if err != nil {
		t.Fatalf("Match numeric: %v", err)
	}
	if fmt.Sprint(nm.Results) != fmt.Sprint([]bool{false, true, false}) {
		t.Errorf("numeric Results = %v", nm.Results)
	}

	// Matching a nondeterministic expression is rejected with a reason —
	// on both pipelines (the numeric simulator would run one at
	// superlinear cost, so it must refuse like MatchAll does).
	for _, req := range []client.MatchRequest{
		{Expr: "(a, b) | (a, c)", Words: [][]string{{"a", "b"}}},
		{Expr: "(a{1,2}, b) | (a{1,2}, c)", Syntax: client.SyntaxXSD, Words: [][]string{{"a", "b"}}},
	} {
		if _, err := c.Match(ctx, req); err == nil {
			t.Errorf("nondeterministic match accepted: %q", req.Expr)
		} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusUnprocessableEntity {
			t.Errorf("nondeterministic match %q: %v, want 422", req.Expr, err)
		}
	}
}

func TestSchemaRegistry(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	info, err := c.PutSchema(ctx, "note", "", []byte(testDTD))
	if err != nil {
		t.Fatalf("PutSchema: %v", err)
	}
	if info.Kind != client.KindDTD || info.Version != 1 || info.Elements != 3 {
		t.Errorf("PutSchema info = %+v", info)
	}

	info2, err := c.PutSchema(ctx, "order", "", []byte(testXSD))
	if err != nil {
		t.Fatalf("PutSchema xsd: %v", err)
	}
	if info2.Kind != client.KindXSD || info2.Elements != 1 {
		t.Errorf("sniffed XSD info = %+v", info2)
	}

	// Hot swap bumps the version.
	swap, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(`<!ELEMENT note (#PCDATA)>`))
	if err != nil {
		t.Fatalf("PutSchema swap: %v", err)
	}
	if swap.Version != 2 {
		t.Errorf("swap version = %d, want 2", swap.Version)
	}

	// A broken replacement is rejected and the old version stays live.
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte("<!ELEMENT broken")); err == nil {
		t.Error("broken schema accepted")
	}
	got, err := c.GetSchema(ctx, "note")
	if err != nil || got.Version != 2 {
		t.Errorf("after failed swap: %+v err=%v", got, err)
	}

	// Nondeterministic models register with warnings.
	warn, err := c.PutSchema(ctx, "warny", client.KindDTD, []byte(`<!ELEMENT w ((a, b) | (a, c))>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`))
	if err != nil {
		t.Fatalf("PutSchema nondet: %v", err)
	}
	if len(warn.Warnings) == 0 {
		t.Error("nondeterministic model registered without warnings")
	}

	list, err := c.Schemas(ctx)
	if err != nil || len(list.Schemas) != 3 {
		t.Fatalf("Schemas: %+v err=%v", list, err)
	}
	if list.Schemas[0].Name != "note" && list.Schemas[0].Name != "order" && list.Schemas[0].Name != "warny" {
		t.Errorf("unexpected list: %+v", list)
	}

	if err := c.DeleteSchema(ctx, "warny"); err != nil {
		t.Fatalf("DeleteSchema: %v", err)
	}
	if err := c.DeleteSchema(ctx, "warny"); !client.IsNotFound(err) {
		t.Errorf("second delete: %v, want 404", err)
	}
	if _, err := c.GetSchema(ctx, "warny"); !client.IsNotFound(err) {
		t.Errorf("GetSchema after delete: %v, want 404", err)
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, hs, c := newTestServer(t)
	ctx := context.Background()

	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutSchema(ctx, "order", client.KindXSD, []byte(testXSD)); err != nil {
		t.Fatal(err)
	}

	good := `<note><to>Bob</to><body>hi</body></note>`
	res, err := c.Validate(ctx, "note", []byte(good))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !res.Valid || len(res.Errors) != 0 {
		t.Errorf("valid doc: %+v", res)
	}

	bad := `<note><body>hi</body><to>Bob</to></note>`
	res, err = c.Validate(ctx, "note", []byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid || len(res.Errors) == 0 {
		t.Errorf("invalid doc: %+v", res)
	}

	// Entity-using, BOM-prefixed document: the schema's entity plus a
	// document-declared one resolve; the BOM is tolerated.
	entDoc := "\uFEFF" + `<?xml version="1.0"?>
<!DOCTYPE note [ <!ENTITY greet "hello"> ]>
<note><to>&who;</to><body>&greet;</body></note>`
	res, err = c.Validate(ctx, "note", []byte(entDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("entity+BOM doc: %+v", res)
	}

	// XSD backend, counter model: 4 items exceed maxOccurs=3.
	res, err = c.Validate(ctx, "order", []byte(`<order><item>x</item><item>y</item></order>`))
	if err != nil || !res.Valid {
		t.Errorf("xsd valid doc: %+v err=%v", res, err)
	}
	res, err = c.Validate(ctx, "order", []byte(`<order><item>1</item><item>2</item><item>3</item><item>4</item></order>`))
	if err != nil || res.Valid {
		t.Errorf("xsd counter violation: %+v err=%v", res, err)
	}

	// Malformed XML is a document-level error, not a transport error.
	res, err = c.Validate(ctx, "note", []byte(`<note><to>`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid || res.DocError == "" {
		t.Errorf("malformed doc: %+v", res)
	}

	// Unknown schema.
	if _, err := c.Validate(ctx, "ghost", []byte(good)); !client.IsNotFound(err) {
		t.Errorf("unknown schema: %v, want 404", err)
	}

	// JSON envelope mode — including a mixed-case media type with
	// parameters, which RFC 9110 makes equivalent.
	body, _ := json.Marshal(client.ValidateRequest{Schema: "note", Doc: good})
	for _, ct := range []string{"application/json", "Application/JSON; charset=utf-8"} {
		code, raw := doRaw(t, hs, "POST", "/v1/validate", ct, string(body))
		if code != http.StatusOK {
			t.Fatalf("JSON envelope (%s): %d %s", ct, code, raw)
		}
		var vr client.ValidateResponse
		if err := json.Unmarshal(raw, &vr); err != nil || !vr.Valid {
			t.Errorf("JSON envelope response (%s): %+v err=%v", ct, vr, err)
		}
	}

	// Missing schema name.
	if code, _ := doRaw(t, hs, "POST", "/v1/validate", "application/xml", good); code != http.StatusBadRequest {
		t.Errorf("missing schema name: %d, want 400", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	if _, err := c.PutSchema(ctx, "note", "", []byte(testDTD)); err != nil {
		t.Fatal(err)
	}
	// Same expression twice: the second compile must hit the cache.
	for i := 0; i < 2; i++ {
		if _, err := c.Compile(ctx, client.CompileRequest{Expr: "(x, y*)"}); err != nil {
			t.Fatal(err)
		}
	}
	// One failing request to exercise the error counter.
	c.Compile(ctx, client.CompileRequest{Expr: "(("})

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("cache reports no hits: %+v", st.Cache)
	}
	if st.Cache.HitRate <= 0 || st.Cache.HitRate > 1 {
		t.Errorf("hit rate out of range: %v", st.Cache.HitRate)
	}
	if st.Endpoints["compile"].Requests < 3 {
		t.Errorf("compile requests = %d, want >= 3", st.Endpoints["compile"].Requests)
	}
	if st.Endpoints["compile"].Errors < 1 {
		t.Errorf("compile errors = %d, want >= 1", st.Endpoints["compile"].Errors)
	}
	if st.SchemaCount != 1 || st.SchemaSwaps != 1 {
		t.Errorf("schema counters: %+v", st)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", st.UptimeSeconds)
	}
}

// TestHotSwapUnderLoad swaps a schema repeatedly while concurrent clients
// validate against it; every response must be coherent with one of the two
// versions (run under -race via make test).
func TestHotSwapUnderLoad(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	// v1 requires (to, body); v2 requires (body, to).
	v1 := []byte(testDTD)
	v2 := []byte(`<!ELEMENT note (body, to)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, v1); err != nil {
		t.Fatal(err)
	}

	docA := []byte(`<note><to>x</to><body>y</body></note>`) // valid under v1 only
	docB := []byte(`<note><body>y</body><to>x</to></note>`) // valid under v2 only

	const swaps = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			doc := docA
			if w%2 == 1 {
				doc = docB
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.Validate(ctx, "note", doc)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Exactly one of docA/docB is valid under whichever version
				// served the request; a malformed-XML doc error would mean
				// the swap corrupted in-flight state.
				if res.DocError != "" {
					t.Errorf("worker %d: doc error %q", w, res.DocError)
					return
				}
			}
		}(w)
	}
	for i := 0; i < swaps; i++ {
		src := v1
		if i%2 == 0 {
			src = v2
		}
		if _, err := c.PutSchema(ctx, "note", client.KindDTD, src); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	info, err := c.GetSchema(ctx, "note")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != swaps+1 {
		t.Errorf("version = %d, want %d", info.Version, swaps+1)
	}
}

func TestSniffKind(t *testing.T) {
	if k := sniffKind([]byte(testDTD)); k != client.KindDTD {
		t.Errorf("DTD sniffed as %s", k)
	}
	if k := sniffKind([]byte(testXSD)); k != client.KindXSD {
		t.Errorf("XSD sniffed as %s", k)
	}
	// A DTD whose entity value quotes schema markup is still a DTD.
	tricky := `<!ELEMENT a EMPTY> <!ENTITY e "<xs:schema>">`
	if k := sniffKind([]byte(tricky)); k != client.KindDTD {
		t.Errorf("tricky DTD sniffed as %s", k)
	}
	// An XSD quoting DTD markup in a comment is still an XSD.
	commented := "<!-- legacy DTD: <!ELEMENT note (to)> -->\n" + testXSD
	if k := sniffKind([]byte(commented)); k != client.KindXSD {
		t.Errorf("commented XSD sniffed as %s", k)
	}
	// Multiple comments, and an unterminated one, stay on the DTD side
	// when real declarations follow outside them.
	multi := "<!-- a --><!ELEMENT x EMPTY><!-- b --><!-- unterminated <schema"
	if k := sniffKind([]byte(multi)); k != client.KindDTD {
		t.Errorf("multi-comment DTD sniffed as %s", k)
	}
	// A nonstandard namespace prefix is still a schema document.
	odd := `<s1:schema xmlns:s1="http://www.w3.org/2001/XMLSchema"><s1:element name="a" type="s1:string"/></s1:schema>`
	if k := sniffKind([]byte(odd)); k != client.KindXSD {
		t.Errorf("nonstandard-prefix XSD sniffed as %s", k)
	}
}

func TestQueryParam(t *testing.T) {
	cases := []struct {
		raw, key, want string
	}{
		{"schema=library", "schema", "library"},
		{"a=1&schema=lib2&b=2", "schema", "lib2"},
		{"schema=with%20space", "schema", "with space"},
		{"schema=a+b", "schema", "a b"},
		{"other=x", "schema", ""},
		{"", "schema", ""},
		{"schema", "schema", ""},
		{"schema=first&schema=second", "schema", "first"},
	}
	for _, c := range cases {
		if got := queryParam(c.raw, c.key); got != c.want {
			t.Errorf("queryParam(%q, %q) = %q, want %q", c.raw, c.key, got, c.want)
		}
	}
}
