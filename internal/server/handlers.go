// HTTP handlers for the /v1 endpoints. Compilation always goes through the
// shared dregex.Cache; validation borrows pooled per-schema DocStates (see
// registry.go). Handlers respond 400 for malformed requests, 404 for
// unknown schemas, 413 for oversized bodies, and 422 for inputs that parse
// as requests but fail to compile.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"dregex"
	"dregex/client"
	"dregex/internal/fault"
	"dregex/internal/run"
)

// decodeJSON reads the request body into v, distinguishing oversized
// bodies (413) from malformed JSON (400). It returns false after writing
// the error response.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, errStatus(err, http.StatusBadRequest), "malformed JSON request: %v", err)
		return false
	}
	return true
}

func toAmbiguity(a *dregex.Ambiguity) *client.Ambiguity {
	if a == nil {
		return nil
	}
	return &client.Ambiguity{Rule: a.Rule, Symbol: a.Symbol, Word: a.Word}
}

// compileAny resolves an expression through the cache: the plain pipeline
// by default, the numeric (§3.3 counter) pipeline when forced or when the
// expression carries {m,n} occurrence indicators. Exactly one of e/ne is
// non-nil on success. Bounds require a '{', so the probe routes numeric
// expressions straight to their pipeline — no doomed plain compile, no
// negative-cache slot, and cache stats count one lookup per request. This
// is the single fallback ladder both /v1/compile and /v1/match ride.
func (s *Server) compileAny(ctx context.Context, expr string, syntax dregex.Syntax, forceNumeric bool) (e *dregex.Expr, ne *dregex.NumericExpr, hit bool, err error) {
	if fault.Enabled && fault.Hit("compile.error") {
		return nil, nil, false, fault.ErrInjected
	}
	if !forceNumeric && !strings.ContainsRune(expr, '{') {
		e, hit, err = s.cache.GetInfoCtx(ctx, expr, syntax)
		if err == nil || !errors.Is(err, dregex.ErrNumericIndicator) {
			return e, nil, hit, err
		}
	}
	ne, hit, err = s.cache.GetNumericInfoCtx(ctx, expr, syntax)
	return nil, ne, hit, err
}

// compileCtx derives the context a compile request runs under: the
// request's own (canceled when the client goes away), tightened by the
// configured compile timeout when one is set.
func (s *Server) compileCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.limits.CompileTimeout <= 0 {
		return r.Context(), nil
	}
	return context.WithTimeout(r.Context(), s.limits.CompileTimeout)
}

// compileError classifies a failed compile: a blown deadline is a shed
// (503, Retry-After — the background compile finishes and caches, so a
// retry is a cache hit), a canceled wait means the client is gone, and
// anything else is the input's own compile error (422).
//
//dregex:coldalloc
func (s *Server) compileError(w http.ResponseWriter, endpoint string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.endpoints[endpoint].shedTimeout.Inc()
		writeShed(w, http.StatusServiceUnavailable, capacityRetryAfter, "compile timed out")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req client.CompileRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	syntax, err := parseSyntax(req.Syntax)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.compileCtx(r)
	if cancel != nil {
		defer cancel()
	}
	e, ne, hit, err := s.compileAny(ctx, req.Expr, syntax, req.Numeric)
	if err != nil {
		s.compileError(w, "compile", err)
		return
	}
	var resp client.CompileResponse
	if e != nil {
		st := e.Stats()
		resp = client.CompileResponse{
			Deterministic: e.IsDeterministic(),
			Rule:          e.Rule(),
			Ambiguity:     toAmbiguity(e.Explain()),
			Cached:        hit,
			Stats: &client.ExprStats{
				Size:             st.Size,
				Positions:        st.Positions,
				Sigma:            st.Sigma,
				K:                st.K,
				AlternationDepth: st.AlternationDepth,
				StarFree:         st.StarFree,
				Depth:            st.Depth,
			},
		}
	} else {
		resp = client.CompileResponse{
			Deterministic: ne.IsDeterministic(),
			Numeric:       true,
			Rule:          ne.Rule(),
			Ambiguity:     toAmbiguity(ne.Explain()),
			Cached:        hit,
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req client.MatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	syntax, err := parseSyntax(req.Syntax)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.compileCtx(r)
	if cancel != nil {
		defer cancel()
	}
	e, ne, _, err := s.compileAny(ctx, req.Expr, syntax, req.Numeric)
	if err != nil {
		s.compileError(w, "match", err)
		return
	}
	var resp client.MatchResponse
	if e != nil {
		if req.Witness {
			// Witness mode: one recorded run per word — trace, parse tree,
			// and expected-next hints at the failure point.
			m, merr := e.Matcher(dregex.Auto)
			if merr != nil {
				writeError(w, http.StatusUnprocessableEntity, "%v", merr)
				return
			}
			resp.Results = make([]bool, len(req.Words))
			resp.Parses = make([]client.WordParse, len(req.Words))
			for i, word := range req.Words {
				res, perr := m.Parse(word)
				if perr != nil {
					writeError(w, http.StatusInternalServerError, "%v", perr)
					return
				}
				resp.Results[i] = res.Accepted
				resp.Parses[i] = client.WordParse{
					Accepted: res.Accepted,
					FailedAt: res.FailedAt,
					Expected: res.Expected,
					Tree:     res.TreeString(),
				}
			}
		} else {
			// Batch path: MatchAll reuses one engine across the whole word
			// set (and the Theorem 4.12 batch engine for star-free
			// expressions under Auto).
			resp.Results, err = e.MatchAll(req.Words, dregex.Auto)
			if err != nil {
				writeError(w, http.StatusUnprocessableEntity, "%v", err)
				return
			}
		}
	} else {
		// Mirror the plain pipeline's refusal (MatchAll → errNondet): the
		// per-request linear-time guarantee holds only for deterministic
		// expressions, and the counter simulator would happily run a
		// nondeterministic one at superlinear cost.
		if !ne.IsDeterministic() {
			writeError(w, http.StatusUnprocessableEntity,
				"expression is not deterministic (%s); matching requires a deterministic expression", ne.Rule())
			return
		}
		m := ne.Matcher()
		resp.Results = make([]bool, len(req.Words))
		if req.Witness {
			resp.Parses = make([]client.WordParse, len(req.Words))
		}
		for i, word := range req.Words {
			if req.Witness {
				res, perr := m.Parse(word)
				if perr != nil {
					writeError(w, http.StatusInternalServerError, "%v", perr)
					return
				}
				resp.Results[i] = res.Accepted
				resp.Parses[i] = client.WordParse{
					Accepted: res.Accepted,
					FailedAt: res.FailedAt,
					Expected: res.Expected,
				}
			} else {
				resp.Results[i] = m.MatchSymbols(word)
			}
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

//dregex:noalloc
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var (
		name string
		doc  io.Reader
	)
	// Media types are case-insensitive and may carry parameters
	// (RFC 9110); parse rather than prefix-match.
	mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mt == "application/json" {
		var req client.ValidateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		name = req.Schema
		doc = strings.NewReader(req.Doc)
	} else {
		// Raw-body mode: the document reads straight from the connection
		// into the pooled per-state buffer the tokenizer scans in place —
		// bounded by MaxBytesReader, reused across requests, zero
		// steady-state allocation (see TestServerValidateAllocs).
		name = queryParam(r.URL.RawQuery, "schema")
		doc = r.Body
	}
	if name == "" {
		writeError(w, http.StatusBadRequest,
			"schema name required (?schema=NAME or JSON {\"schema\": ...})")
		return
	}
	entry := s.lookupSchema(name)
	if entry == nil {
		writeError(w, http.StatusNotFound, "schema %q is not registered", name)
		return
	}
	if rl := entry.limiter; rl != nil {
		if allowed, ra := rl.allow(time.Now().UnixNano()); !allowed {
			s.endpoints["validate"].shedSchemaRate.Inc()
			if sw, ok := w.(*statusWriter); ok {
				sw.schema = name
			}
			writeShed(w, http.StatusTooManyRequests, ra, "rate limit exceeded for this schema")
			return
		}
	}
	// Deadline: the configured validate budget, tightened (never loosened)
	// by the client's X-Timeout-Ms. The cancellation channel always rides
	// along, so a client that disconnects mid-document stops the run at
	// the next checkpoint instead of burning the remaining stream.
	deadline := validateDeadline(s.limits.ValidateTimeout, r.Header.Get(timeoutHeader))
	if fault.Enabled {
		// Chaos hooks: a stalled read, a body cut short mid-document, and
		// a handler panic (exercising the recovery middleware end to end).
		fault.Hit("validate.slow-read")
		if fault.Hit("validate.truncate") {
			doc = io.LimitReader(doc, fault.Arg("validate.truncate", 64))
		}
		if fault.Hit("validate.panic") {
			panic("fault: injected validate panic")
		}
	}
	resp, verr := entry.validate(doc, r.Context().Done(), deadline)
	// A document truncated by the size limit surfaces as an XML read
	// error; report it as 413, not as a validation verdict.
	if errStatus(verr, http.StatusOK) == http.StatusRequestEntityTooLarge {
		writeError(w, http.StatusRequestEntityTooLarge, "document exceeds the request size limit")
		return
	}
	// An aborted run produced no verdict: a blown deadline is a timeout
	// shed (503, Retry-After); a closed cancellation channel means the
	// client is gone and any response is best-effort.
	if verr != nil && (errors.Is(verr, run.ErrDeadlineExceeded) || errors.Is(verr, run.ErrCanceled)) {
		if sw, ok := w.(*statusWriter); ok {
			sw.schema = name
		}
		if errors.Is(verr, run.ErrDeadlineExceeded) {
			s.endpoints["validate"].shedTimeout.Inc()
			writeShed(w, http.StatusServiceUnavailable, capacityRetryAfter, "validation deadline exceeded")
		} else {
			writeError(w, http.StatusServiceUnavailable, "request canceled")
		}
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		// Trace context for the access log: which schema this request hit
		// and what the verdict was. Stored on the middleware's writer, so
		// off-path (no allocation, no context values).
		sw.schema = name
		switch {
		case verr != nil:
			sw.verdict = "doc_error"
		case !resp.Valid:
			sw.verdict = "invalid"
		default:
			sw.verdict = "valid"
		}
		resp.RequestID = sw.id
	}
	writeJSON(w, http.StatusOK, &resp)
}

// timeoutHeader is the request header carrying a client-supplied validate
// budget in milliseconds. It can only tighten the server's configured
// budget, never extend it.
const timeoutHeader = "X-Timeout-Ms"

// validateDeadline combines the configured validate timeout with the
// client's X-Timeout-Ms header value into an absolute deadline (zero when
// neither applies). Off the allocation-pinned path only when a deadline
// actually applies — time.Now costs nothing, and Header.Get returns an
// existing string.
//
//dregex:noalloc
func validateDeadline(configured time.Duration, headerMs string) time.Time {
	var deadline time.Time
	if configured > 0 {
		deadline = time.Now().Add(configured)
	}
	if headerMs != "" {
		if ms, err := strconv.ParseInt(headerMs, 10, 64); err == nil && ms > 0 {
			d := time.Now().Add(time.Duration(ms) * time.Millisecond)
			if deadline.IsZero() || d.Before(deadline) {
				deadline = d
			}
		}
	}
	return deadline
}

// queryParam returns the (unescaped) first value of key in a raw query
// string. Unlike url.Values it materializes no map, so the hot validate
// path resolves its ?schema=NAME without per-request allocation.
//
//dregex:noalloc
func queryParam(rawQuery, key string) string {
	for q := rawQuery; q != ""; {
		var kv string
		kv, q, _ = strings.Cut(q, "&")
		k, v, _ := strings.Cut(kv, "=")
		if k != key {
			continue
		}
		if u, err := url.QueryUnescape(v); err == nil {
			return u
		}
		return v
	}
	return ""
}

func (s *Server) handlePutSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	src, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadRequest), "reading schema body: %v", err)
		return
	}
	if len(src) == 0 {
		writeError(w, http.StatusBadRequest, "empty schema body")
		return
	}
	entry, err := s.compileSchema(name, r.URL.Query().Get("kind"), src)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	code := http.StatusCreated
	if s.storeSchema(entry) {
		code = http.StatusOK
	}
	writeJSON(w, code, &entry.info)
}

func (s *Server) handleGetSchema(w http.ResponseWriter, r *http.Request) {
	entry := s.lookupSchema(r.PathValue("name"))
	if entry == nil {
		writeError(w, http.StatusNotFound, "schema %q is not registered", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, &entry.info)
}

func (s *Server) handleDeleteSchema(w http.ResponseWriter, r *http.Request) {
	if !s.deleteSchema(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, "schema %q is not registered", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListSchemas(w http.ResponseWriter, r *http.Request) {
	m := *s.schemas.Load()
	list := client.SchemaList{Schemas: make([]client.SchemaInfo, 0, len(m))}
	for _, e := range m {
		list.Schemas = append(list.Schemas, e.info)
	}
	sort.Slice(list.Schemas, func(i, j int) bool {
		return list.Schemas[i].Name < list.Schemas[j].Name
	})
	writeJSON(w, http.StatusOK, &list)
}
