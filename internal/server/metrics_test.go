package server

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dregex/client"
	"dregex/internal/obs"
)

// scrapeMetrics fetches and strictly parses GET /metrics.
func scrapeMetrics(t *testing.T, hs *httptest.Server) *obs.Exposition {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	exp, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("CheckHistograms: %v", err)
	}
	return exp
}

// TestMetricsEndpoint drives validations through both schema backends and
// asserts the /metrics exposition carries the acceptance-criteria content:
// per-endpoint latency histograms with extracted quantiles, per-schema
// verdict counters, engine-tier selection counts, and cache gauges — all
// in strictly valid Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, hs, c := newTestServer(t)
	ctx := context.Background()

	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatalf("PutSchema: %v", err)
	}
	if _, err := c.PutSchema(ctx, "order", client.KindXSD, []byte(testXSD)); err != nil {
		t.Fatalf("PutSchema xsd: %v", err)
	}

	// Verdict mix: two valid, one invalid, one doc_error against the DTD;
	// one valid against the XSD (numeric pipeline).
	for _, doc := range []string{
		`<note><to>a</to><body>b</body></note>`,
		`<note><to>x</to><body>y</body></note>`,
	} {
		if r, err := c.Validate(ctx, "note", []byte(doc)); err != nil || !r.Valid {
			t.Fatalf("valid doc: %+v err=%v", r, err)
		}
	}
	if r, err := c.Validate(ctx, "note", []byte(`<note><body>b</body><to>a</to></note>`)); err != nil || r.Valid {
		t.Fatalf("invalid doc: %+v err=%v", r, err)
	}
	if r, err := c.Validate(ctx, "note", []byte(`<note><to>`)); err != nil || r.DocError == "" {
		t.Fatalf("doc error: %+v err=%v", r, err)
	}
	if r, err := c.Validate(ctx, "order", []byte(`<order><item>i</item><item>j</item></order>`)); err != nil || !r.Valid {
		t.Fatalf("xsd doc: %+v err=%v", r, err)
	}

	exp := scrapeMetrics(t, hs)

	// Per-endpoint request counter and latency histogram.
	ep := obs.L("endpoint", "validate")
	if v, ok := exp.Get("dregexd_requests_total", ep); !ok || v != 5 {
		t.Errorf("requests_total{validate} = %v ok=%v, want 5", v, ok)
	}
	if v, ok := exp.Get("dregexd_request_duration_seconds_count", ep); !ok || v != 5 {
		t.Errorf("duration count{validate} = %v ok=%v, want 5", v, ok)
	}
	for _, q := range []string{"0.5", "0.99", "0.999"} {
		v, ok := exp.Get("dregexd_request_duration_seconds_quantiles", ep, obs.L("quantile", q))
		if !ok {
			t.Errorf("missing p%s for validate duration", q)
		} else if v <= 0 || v > 60 {
			t.Errorf("p%s = %v s, implausible", q, v)
		}
	}

	// Per-schema verdict counters.
	for _, tc := range []struct {
		schema, verdict string
		want            float64
	}{
		{"note", "valid", 2}, {"note", "invalid", 1}, {"note", "doc_error", 1},
		{"order", "valid", 1},
	} {
		v, ok := exp.Get("dregexd_validate_verdicts_total",
			obs.L("schema", tc.schema), obs.L("verdict", tc.verdict))
		if !ok || v != tc.want {
			t.Errorf("verdicts{%s,%s} = %v ok=%v, want %v", tc.schema, tc.verdict, v, ok, tc.want)
		}
	}

	// Symbols fed and the derived ns/symbol gauge: each valid note feeds
	// to+body (2 symbols); the invalid one feeds both children too.
	if v, ok := exp.Get("dregexd_validate_symbols_total", obs.L("schema", "note")); !ok || v < 6 {
		t.Errorf("symbols{note} = %v ok=%v, want >= 6", v, ok)
	}
	if v, ok := exp.Get("dregexd_schema_ns_per_symbol", obs.L("schema", "note")); !ok || v <= 0 {
		t.Errorf("ns_per_symbol{note} = %v ok=%v, want > 0", v, ok)
	}
	if v, ok := exp.Get("dregexd_validate_document_bytes_total", obs.L("schema", "note")); !ok || v <= 0 {
		t.Errorf("document_bytes{note} = %v ok=%v, want > 0", v, ok)
	}

	// Engine-tier content-model placement: the note DTD's one regular
	// model (to, body) is tiny, so the Auto ladder lands it on the dense
	// table; the order XSD's counted model rides the numeric pipeline.
	if v, ok := exp.Get("dregexd_schema_models", obs.L("schema", "note"), obs.L("tier", "table")); !ok || v != 1 {
		t.Errorf("schema_models{note,table} = %v ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Get("dregexd_schema_models", obs.L("schema", "order"), obs.L("tier", "counter")); !ok || v != 1 {
		t.Errorf("schema_models{order,counter} = %v ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Get("dregexd_engine_selections_total", obs.L("tier", "table")); !ok || v < 1 {
		t.Errorf("engine_selections{table} = %v ok=%v, want >= 1", v, ok)
	}

	// Cache gauges and registry counters.
	if v, ok := exp.Get("dregexd_cache_misses_total"); !ok || v < 1 {
		t.Errorf("cache_misses = %v ok=%v, want >= 1", v, ok)
	}
	if v, ok := exp.Get("dregexd_cache_hit_rate"); !ok || math.IsNaN(v) || v < 0 || v > 1 {
		t.Errorf("cache_hit_rate = %v ok=%v, want [0,1]", v, ok)
	}
	if v, ok := exp.Get("dregexd_cache_evictions_total"); !ok || v != 0 {
		t.Errorf("cache_evictions = %v ok=%v, want 0", v, ok)
	}
	if v, ok := exp.Get("dregexd_schemas"); !ok || v != 2 {
		t.Errorf("schemas = %v ok=%v, want 2", v, ok)
	}
	if v, ok := exp.Get("dregexd_schema_swaps_total"); !ok || v != 2 {
		t.Errorf("schema_swaps = %v ok=%v, want 2", v, ok)
	}

	// Hot swap continuity: re-registering "note" must keep its verdict
	// series (get-or-create identity), and a post-swap validation lands on
	// the same counter.
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatalf("PutSchema (swap): %v", err)
	}
	if r, err := c.Validate(ctx, "note", []byte(`<note><to>a</to><body>b</body></note>`)); err != nil || !r.Valid {
		t.Fatalf("post-swap doc: %+v err=%v", r, err)
	}
	exp = scrapeMetrics(t, hs)
	if v, ok := exp.Get("dregexd_validate_verdicts_total",
		obs.L("schema", "note"), obs.L("verdict", "valid")); !ok || v != 3 {
		t.Errorf("post-swap verdicts{note,valid} = %v ok=%v, want 3 (series continuity)", v, ok)
	}

	// After deleting a schema its tier gauge reads 0 (the closure resolves
	// through the live registry), and the swap counter reflects the delete.
	if err := c.DeleteSchema(ctx, "order"); err != nil {
		t.Fatalf("DeleteSchema: %v", err)
	}
	exp = scrapeMetrics(t, hs)
	if v, ok := exp.Get("dregexd_schema_models", obs.L("schema", "order"), obs.L("tier", "counter")); !ok || v != 0 {
		t.Errorf("post-delete schema_models{order} = %v ok=%v, want 0", v, ok)
	}
	if v, ok := exp.Get("dregexd_schema_swaps_total"); !ok || v != 4 {
		t.Errorf("schema_swaps after swap+delete = %v ok=%v, want 4", v, ok)
	}
}

// TestStatsObservability covers the /v1/stats growth: latency quantiles
// per endpoint, eviction counts, engine tiers, per-schema traffic — and
// that a fresh server reports hit_rate 0 (not NaN, which would poison the
// JSON encoding) before any cache lookups.
func TestStatsObservability(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats on fresh server: %v", err)
	}
	if st.Cache.HitRate != 0 || math.IsNaN(st.Cache.HitRate) {
		t.Errorf("fresh hit rate = %v, want 0", st.Cache.HitRate)
	}

	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Validate(ctx, "note", []byte(`<note><to>a</to><body>b</body></note>`)); err != nil {
		t.Fatal(err)
	}

	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", st.Cache.Evictions)
	}
	v := st.Endpoints["validate"]
	if v.Requests != 1 || v.P99Millis <= 0 || v.P50Millis > v.P99Millis {
		t.Errorf("validate endpoint stats: %+v", v)
	}
	if st.EngineTiers["table"] < 1 {
		t.Errorf("engine tiers missing table selections: %v", st.EngineTiers)
	}
	tr, ok := st.Schemas["note"]
	if !ok {
		t.Fatalf("stats missing schema traffic: %+v", st.Schemas)
	}
	if tr.Valid != 1 || tr.Symbols < 2 || tr.DocBytes == 0 || tr.NsPerSymbol <= 0 {
		t.Errorf("schema traffic: %+v", tr)
	}
	if tr.Models["table"] != 1 {
		t.Errorf("schema models: %+v", tr.Models)
	}
}

// TestPublishUniqueNames exercises the expvar collision fix: every server
// instance gets its own name, and Publish is idempotent per instance.
func TestPublishUniqueNames(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	na, nb := a.Publish(), b.Publish()
	if na == nb {
		t.Fatalf("two servers published under one expvar name %q", na)
	}
	if again := a.Publish(); again != na {
		t.Errorf("Publish not idempotent: %q then %q", na, again)
	}
}

// TestMetricsConcurrent hammers validate, /metrics scrapes, /v1/stats and
// schema hot swaps concurrently; run under -race it is the acceptance
// criterion that the whole observability layer is race-clean, and every
// scrape must still parse strictly.
func TestMetricsConcurrent(t *testing.T) {
	_, hs, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(testDTD)); err != nil {
		t.Fatal(err)
	}

	const iters = 30
	var wg sync.WaitGroup
	errc := make(chan error, 4*iters)
	wg.Add(4)
	go func() { // validators
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := c.Validate(ctx, "note", []byte(`<note><to>a</to><body>b</body></note>`)); err != nil {
				errc <- fmt.Errorf("validate: %w", err)
			}
		}
	}()
	go func() { // scrapers: every snapshot must be well-formed
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := hs.Client().Get(hs.URL + "/metrics")
			if err != nil {
				errc <- err
				continue
			}
			exp, err := obs.ParseExposition(resp.Body)
			resp.Body.Close()
			if err != nil {
				errc <- fmt.Errorf("scrape %d: %w", i, err)
				continue
			}
			if err := exp.CheckHistograms(); err != nil {
				errc <- fmt.Errorf("scrape %d: %w", i, err)
			}
		}
	}()
	go func() { // hot swappers
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := c.PutSchema(ctx, "note", client.KindDTD, []byte(testDTD)); err != nil {
				errc <- fmt.Errorf("swap: %w", err)
			}
		}
	}()
	go func() { // stats readers
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := c.Stats(ctx); err != nil {
				errc <- fmt.Errorf("stats: %w", err)
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
