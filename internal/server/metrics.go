// Server observability: the obs.Registry behind GET /metrics, the
// per-endpoint and per-schema instruments, and the structured access log.
//
// Everything here honors the hot path's allocation pin
// (TestServerValidateAllocs): recording a request is a time.Now, a few
// lock-free atomic adds into pre-resolved instruments, and nothing else.
// Instruments are resolved once — per-endpoint ones at New, per-schema
// ones at registration time (get-or-create, so a hot-swapped schema keeps
// its series) — and the access log and trace-id header are nil-checked
// opt-ins, exactly like run.Trace on the engine side: off means one
// predictable branch, not a disabled code path.
package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"dregex"
	"dregex/internal/obs"
)

// Metric family names and help strings.
const (
	mRequests    = "dregexd_requests_total"
	mErrors      = "dregexd_request_errors_total"
	mDuration    = "dregexd_request_duration_seconds"
	mReqBytes    = "dregexd_request_bytes"
	mRespBytes   = "dregexd_response_bytes"
	mVerdicts    = "dregexd_validate_verdicts_total"
	mValDur      = "dregexd_validate_duration_seconds"
	mValSymbols  = "dregexd_validate_symbols_total"
	mValBytes    = "dregexd_validate_document_bytes_total"
	mSchemaTiers = "dregexd_schema_models"
	mNsPerSym    = "dregexd_schema_ns_per_symbol"
	mEngineSel   = "dregexd_engine_selections_total"
	mShed        = "dregexd_shed_total"
	mPanics      = "dregexd_panics_recovered_total"
	mInflight    = "dregexd_inflight"
)

// endpointMetrics are the pre-resolved instruments of one endpoint; the
// middleware records into them with no lookups.
type endpointMetrics struct {
	requests  *obs.Counter
	errors    *obs.Counter
	duration  *obs.Histogram // nanoseconds, exposed as seconds
	reqBytes  *obs.Histogram // Content-Length when declared
	respBytes *obs.Histogram // bytes written
	// Load-shed counters by reason (dregexd_shed_total{endpoint,reason}),
	// pre-resolved like everything else so shedding — which happens
	// exactly when the server is busiest — never takes a registry lock.
	shedRate       *obs.Counter // global bucket, 429
	shedSchemaRate *obs.Counter // per-schema bucket, 429 (validate only)
	shedInflight   *obs.Counter // class in-flight bound, 503
	shedTimeout    *obs.Counter // compile/validate deadline, 503
}

// schemaMetrics are the per-schema instruments, resolved at registration
// time and carried on the schemaEntry. Get-or-create resolution means a
// hot swap of the same name continues the same series.
type schemaMetrics struct {
	valid     *obs.Counter
	invalid   *obs.Counter
	docErrors *obs.Counter
	duration  *obs.Histogram // nanoseconds, exposed as seconds
	symbols   *obs.Counter
	docBytes  *obs.Counter
}

// initMetrics builds the registry: per-endpoint instruments plus the
// cache, registry, and engine-tier gauges. Called once from New.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.metrics = r
	s.endpoints = make(map[string]*endpointMetrics, len(endpointNames))
	for _, name := range endpointNames {
		l := obs.L("endpoint", name)
		const shedHelp = "Requests shed by admission control, by endpoint and reason."
		s.endpoints[name] = &endpointMetrics{
			requests:       r.Counter(mRequests, "Requests served, by endpoint.", l),
			errors:         r.Counter(mErrors, "4xx/5xx responses, by endpoint.", l),
			duration:       r.Histogram(mDuration, "Request latency, by endpoint.", obs.Seconds, l),
			reqBytes:       r.Histogram(mReqBytes, "Declared request body sizes, by endpoint.", 1, l),
			respBytes:      r.Histogram(mRespBytes, "Response body sizes, by endpoint.", 1, l),
			shedRate:       r.Counter(mShed, shedHelp, l, obs.L("reason", "rate")),
			shedSchemaRate: r.Counter(mShed, shedHelp, l, obs.L("reason", "schema_rate")),
			shedInflight:   r.Counter(mShed, shedHelp, l, obs.L("reason", "inflight")),
			shedTimeout:    r.Counter(mShed, shedHelp, l, obs.L("reason", "timeout")),
		}
	}
	s.panics = r.Counter(mPanics, "Handler panics absorbed by the recovery middleware.")
	for _, cl := range s.classes {
		cl := cl
		r.GaugeFunc(mInflight, "Requests currently executing, by endpoint class.",
			func() float64 { return float64(cl.cur.Load()) },
			obs.L("class", cl.class))
	}

	r.GaugeFunc("dregexd_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.start).Seconds() })

	// Cache gauges ride dregex.Cache's own counters — the registry is a
	// read-only window, no double accounting.
	r.CounterFunc("dregexd_cache_hits_total", "Expression cache hits.",
		func() uint64 { return s.cache.Stats().Hits })
	r.CounterFunc("dregexd_cache_misses_total", "Expression cache misses (compiles).",
		func() uint64 { return s.cache.Stats().Misses })
	r.CounterFunc("dregexd_cache_evictions_total", "Expression cache evictions (capacity pressure).",
		func() uint64 { return s.cache.Stats().Evictions })
	r.GaugeFunc("dregexd_cache_hit_rate", "Fraction of cache gets served from residency (0 before any get).",
		func() float64 { return s.cache.Stats().HitRate() })
	r.GaugeFunc("dregexd_cache_entries", "Resident cache entries (compiled plus negative).",
		func() float64 { return float64(s.cache.Stats().Entries) })
	r.GaugeFunc("dregexd_cache_negative_entries", "Resident negatively cached compile errors.",
		func() float64 { return float64(s.cache.Stats().Negative) })

	r.GaugeFunc("dregexd_schemas", "Registered schemas.",
		func() float64 { return float64(len(*s.schemas.Load())) })
	r.CounterFunc("dregexd_schema_swaps_total", "Registry mutations (registrations, hot swaps, deletes).",
		func() uint64 { return s.swaps.Load() })

	// Engine-tier selection counts: which Auto tier each compile resolved
	// to, batch-engine builds, counter-pipeline compiles, and table-budget
	// refusals — process-wide, from the dregex package counters.
	for _, tier := range dregex.EngineTiers() {
		r.CounterFunc(mEngineSel,
			"Engine-tier selections by the Auto ladder (compiles per tier, plus batch builds, counter compiles, and table-budget refusals).",
			func() uint64 { return dregex.EngineSelectionCount(tier) },
			obs.L("tier", tier))
	}
}

// schemaMetricsFor resolves (creating on first registration) the
// per-schema instruments and derived gauges for name.
func (s *Server) schemaMetricsFor(name string) *schemaMetrics {
	r := s.metrics
	l := obs.L("schema", name)
	m := &schemaMetrics{
		valid:     r.Counter(mVerdicts, "Validation verdicts, by schema.", l, obs.L("verdict", "valid")),
		invalid:   r.Counter(mVerdicts, "Validation verdicts, by schema.", l, obs.L("verdict", "invalid")),
		docErrors: r.Counter(mVerdicts, "Validation verdicts, by schema.", l, obs.L("verdict", "doc_error")),
		duration:  r.Histogram(mValDur, "Validation latency, by schema.", obs.Seconds, l),
		symbols:   r.Counter(mValSymbols, "Content-model symbols fed to streaming engines, by schema.", l),
		docBytes:  r.Counter(mValBytes, "Document bytes tokenized, by schema.", l),
	}
	// ns/symbol: the live per-schema throughput estimate — validation time
	// over symbols fed. Derived at scrape time from the histogram sum, so
	// the hot path records nothing extra.
	r.GaugeFunc(mNsPerSym, "Live validation cost estimate: duration sum / symbols fed.",
		func() float64 {
			syms := m.symbols.Value()
			if syms == 0 {
				return 0
			}
			return float64(m.duration.Sum64()) / float64(syms)
		}, l)
	return m
}

// registerTierGauges publishes the per-tier content-model counts of a
// schema (how many of its models the Auto ladder placed on each engine
// tier). The closure reads the live registry entry, so a hot swap that
// changes the model mix is reflected at the next scrape and a deleted
// schema reads 0.
func (s *Server) registerTierGauges(name string, tiers map[string]int) {
	for tier := range tiers {
		s.metrics.GaugeFunc(mSchemaTiers, "Content models per engine tier, by schema.",
			func() float64 {
				if e := s.lookupSchema(name); e != nil {
					return float64(e.tiers[tier])
				}
				return 0
			},
			obs.L("schema", name), obs.L("tier", tier))
	}
}

// handleMetrics serves the Prometheus text exposition of the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// logAccess emits one structured line per request. Only called when the
// access log is configured; the whole call is behind a nil check in the
// middleware, so -log off costs one branch.
func (s *Server) logAccess(r *http.Request, sw *statusWriter, d time.Duration) {
	attrs := make([]slog.Attr, 0, 9)
	attrs = append(attrs,
		slog.Uint64("id", sw.id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.code),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", d),
		slog.String("remote", r.RemoteAddr),
	)
	if sw.schema != "" {
		attrs = append(attrs, slog.String("schema", sw.schema))
	}
	if sw.verdict != "" {
		attrs = append(attrs, slog.String("verdict", sw.verdict))
	}
	s.accessLog.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// requestIDHeader is the response header carrying the per-request trace
// id when access logging is on, so a logged line can be joined with the
// response a client saw.
const requestIDHeader = "X-Request-Id"

// setRequestID stamps the trace id header. Called only when access
// logging is enabled (the strconv allocation stays off the default hot
// path) or on error responses, where the id also lands in the JSON body.
func setRequestID(w http.ResponseWriter, id uint64) {
	w.Header().Set(requestIDHeader, strconv.FormatUint(id, 10))
}
