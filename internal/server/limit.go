// Admission control: the overload-protection layer every request crosses
// before its handler runs. Three mechanisms compose, all lock-free on the
// admit path (one CAS and two atomic adds — the validate hot path keeps
// its allocation pin):
//
//   - token buckets (GCRA): one global bucket over the non-admin
//     endpoints, plus one bucket per registered schema name so a single
//     hot schema cannot starve the rest. Over-rate requests are shed with
//     429 and a Retry-After telling the client when a token frees up.
//   - bounded in-flight semaphores, one per endpoint class (compile-like,
//     validate, admin), so a slow-request pileup degrades into fast 503s
//     instead of unbounded goroutine/memory growth.
//   - deadlines: compile requests carry a context with the configured
//     compile timeout into the cache; validate requests arm the pooled
//     DocState's cancellation checkpoint. Both shed with 503 when the
//     budget is exhausted mid-request.
//
// Admin endpoints (schemas, stats, metrics) bypass the rate buckets —
// observability and operator control must keep working while the service
// sheds load — but still ride their own in-flight bound.
package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dregex/client"
)

// Limits parameterizes admission control. The zero value disables every
// mechanism: no buckets, no in-flight bounds, no deadlines.
type Limits struct {
	// Rate is the global admission rate in requests/second across the
	// non-admin endpoints (compile, match, validate); 0 disables the
	// global bucket. Burst is the bucket depth (max requests admitted
	// back-to-back after idle); <=1 means no burst allowance.
	Rate  float64
	Burst int
	// SchemaRate/SchemaBurst configure one bucket per registered schema
	// name on /v1/validate, applied after the global bucket. 0 disables.
	// Buckets are resolved per name at registration, so hot swaps of a
	// schema keep its bucket state.
	SchemaRate  float64
	SchemaBurst int
	// MaxInflight bounds concurrently executing requests per endpoint
	// class (compile-like, validate, admin — each class gets the full
	// bound); 0 disables. Excess requests are shed with 503 immediately,
	// never queued.
	MaxInflight int
	// CompileTimeout bounds the time a request may spend waiting on an
	// expression or schema compile; ValidateTimeout bounds a document
	// validation run. 0 disables. Clients can tighten (never loosen) the
	// validate budget per request with an X-Timeout-Ms header.
	CompileTimeout  time.Duration
	ValidateTimeout time.Duration
}

// rateLimiter is a lock-free GCRA token bucket: state is one int64, the
// theoretical arrival time (TAT) of the next conforming request, advanced
// by CAS. A request conforms when TAT has not run more than the burst
// tolerance tau ahead of now; rejected requests leave the TAT untouched,
// so probing while shed does not push the recovery point further out.
type rateLimiter struct {
	t   int64 // emission interval between tokens, ns
	tau int64 // burst tolerance: (burst-1) * t, ns
	tat atomic.Int64
}

// newRateLimiter returns a bucket admitting rate requests/second with the
// given burst depth, or nil (no limiting) when rate <= 0.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	t := int64(float64(time.Second) / rate)
	if t < 1 {
		t = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{t: t, tau: int64(burst-1) * t}
}

// allow decides one request at now (UnixNano). Shed requests get the
// duration after which a retry can conform.
func (l *rateLimiter) allow(now int64) (ok bool, retryAfter time.Duration) {
	for {
		tat := l.tat.Load()
		if tat-l.tau > now {
			return false, time.Duration(tat - l.tau - now)
		}
		next := tat
		if now > next {
			next = now
		}
		if l.tat.CompareAndSwap(tat, next+l.t) {
			return true, 0
		}
	}
}

// Endpoint classes for the in-flight bounds. Compile-like endpoints do
// CPU-bound pipeline work, validate streams documents, admin serves
// registry/observability reads — bounding them separately means a
// validate pileup cannot lock operators out of /metrics.
const (
	classCompile  = "compile"
	classValidate = "validate"
	classAdmin    = "admin"
)

// endpointClass maps an endpoint instrument name to its class.
func endpointClass(endpoint string) string {
	switch endpoint {
	case "validate":
		return classValidate
	case "compile", "match":
		return classCompile
	}
	return classAdmin
}

// classLimit is the in-flight accounting of one endpoint class: a plain
// atomic counter used as a semaphore (acquire increments and backs out
// over the bound — requests are shed, never queued) and read by the
// dregexd_inflight gauge.
type classLimit struct {
	class string
	max   int64
	cur   atomic.Int64
}

func (c *classLimit) acquire() bool {
	n := c.cur.Add(1)
	if c.max > 0 && n > c.max {
		c.cur.Add(-1)
		return false
	}
	return true
}

func (c *classLimit) release() { c.cur.Add(-1) }

// initLimits builds the admission-control state from cfg. Class limits
// always exist (the inflight gauges export even when unbounded); buckets
// only when configured.
func (s *Server) initLimits(l Limits) {
	s.limits = l
	s.global = newRateLimiter(l.Rate, l.Burst)
	s.classes = make(map[string]*classLimit, 3)
	for _, class := range []string{classCompile, classValidate, classAdmin} {
		s.classes[class] = &classLimit{class: class, max: int64(l.MaxInflight)}
	}
}

// schemaLimiter resolves (creating on first registration) the validate
// bucket for schema name. Like schemaMetricsFor, resolution is by name so
// a hot swap keeps the bucket's fill state — re-registering a schema is
// not a way around its rate limit. Returns nil when per-schema limiting
// is off. Called on the registration path (compileSchema), never per
// request, so taking the registry mutex here is fine.
func (s *Server) schemaLimiter(name string) *rateLimiter {
	if s.limits.SchemaRate <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rl, ok := s.schemaBuckets[name]; ok {
		return rl
	}
	rl := newRateLimiter(s.limits.SchemaRate, s.limits.SchemaBurst)
	s.schemaBuckets[name] = rl
	return rl
}

// writeShed renders a load-shed response: the right status (429 for rate,
// 503 for capacity/deadline), a Retry-After header, and the structured
// error body every other failure mode uses, with the hint duplicated in
// retry_after_ms for clients that prefer the body.
//
//dregex:coldalloc
func writeShed(w http.ResponseWriter, code int, retryAfter time.Duration, msg string) {
	ra := retryAfterMs(retryAfter)
	w.Header().Set("Retry-After", strconv.FormatInt((ra+999)/1000, 10))
	writeJSON(w, code, client.ErrorResponse{
		Error:        msg,
		RequestID:    requestID(w),
		RetryAfterMs: ra,
	})
}

// retryAfterMs rounds a retry hint up to whole milliseconds, with a floor
// of 1ms — a shed response never tells the client to retry immediately.
func retryAfterMs(d time.Duration) int64 {
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// admit runs the pre-handler admission checks for one request on the
// given endpoint. It reports whether the handler may run and whether the
// class's in-flight slot was taken (and must be released); when it sheds,
// the response has already been written and counted.
// capacityRetryAfter is the retry hint on capacity (in-flight) sheds: the
// semaphore frees as soon as any in-flight request finishes, so unlike a
// rate shed there is no schedule to compute — one second is a neutral
// "soon, with backoff" signal the client's jittered retry spreads out.
const capacityRetryAfter = time.Second

func (s *Server) admit(w http.ResponseWriter, m *endpointMetrics, cl *classLimit) (ok, acquired bool) {
	if !cl.acquire() {
		m.shedInflight.Inc()
		writeShed(w, http.StatusServiceUnavailable, capacityRetryAfter,
			"server is at its in-flight capacity for this endpoint class")
		return false, false
	}
	if s.global != nil && cl.class != classAdmin {
		if allowed, ra := s.global.allow(time.Now().UnixNano()); !allowed {
			m.shedRate.Inc()
			cl.release()
			writeShed(w, http.StatusTooManyRequests, ra, "request rate limit exceeded")
			return false, false
		}
	}
	return true, true
}
