// Schema registry: named, hot-reloadable DTD and XSD schemas. The map is
// copy-on-write behind an atomic pointer (see Server.schemas); entries are
// immutable once published, and each owns the sync.Pool of validation
// states for its compiled schema — so a swapped-out schema, its engines
// and its pooled states all become garbage together, and pooled frames
// can never pin a schema that outlived its registration.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"dregex"
	"dregex/client"
	"dregex/internal/dtd"
	"dregex/internal/pool"
	"dregex/internal/run"
	"dregex/internal/xsd"
)

// schemaEntry is one registered schema. Immutable after construction.
type schemaEntry struct {
	info client.SchemaInfo
	dtd  *dtd.DTD    // KindDTD
	xsd  *xsd.Schema // KindXSD

	// om holds the per-schema instruments (verdict counters, latency
	// histogram, symbol/byte counters). The underlying instruments are
	// registry-resolved by name+labels, so a hot swap of the same schema
	// name continues the same series.
	om *schemaMetrics
	// tiers counts the schema's compiled content models per engine tier —
	// which rung of the Auto ladder each model landed on.
	tiers map[string]int
	// limiter is this schema's validate-rate bucket (nil when per-schema
	// limiting is off). Resolved by name like om, so hot swaps keep the
	// bucket's fill state.
	limiter *rateLimiter

	// Validation-state pools, one per backend. Only the pool matching the
	// kind is used; requests Get a state, validate, and Put it back.
	dtdStates pool.StatePool[dtd.DocState]
	xsdStates pool.StatePool[xsd.DocState]
}

// validate checks one document against the entry's schema, riding a pooled
// DocState so steady-state traffic reuses frame stacks and stream buffers.
// The document-level error (malformed XML, truncated read) is returned as
// a value so the handler can classify it (e.g. a body-size trip → 413)
// before it is stringified into the response.
//
// Instrumentation rides the same discipline as the hot path itself: the
// per-document symbol and byte tallies accumulate non-atomically inside
// the single-goroutine DocState and land in the shared atomic counters
// once per request, after the state is read and before it returns to the
// pool.
//
//dregex:noalloc
func (e *schemaEntry) validate(r io.Reader, done <-chan struct{}, deadline time.Time) (client.ValidateResponse, error) {
	start := time.Now()
	resp := client.ValidateResponse{Schema: e.info.Name}
	var verrs []client.ValidationError
	var err error
	var symbols, docBytes int
	switch e.info.Kind {
	case client.KindDTD:
		st := e.dtdStates.Get()
		// Arm (or, with zero arguments, disarm) on every checkout: a state
		// must never carry the previous request's deadline.
		st.SetDeadline(done, deadline)
		var es []dtd.ValidationError
		es, err = e.dtd.ValidateReusing(r, st)
		symbols, docBytes = st.Symbols(), st.DocBytes()
		e.dtdStates.Put(st)
		for _, ve := range es {
			verrs = append(verrs, client.ValidationError(ve))
		}
	case client.KindXSD:
		st := e.xsdStates.Get()
		st.SetDeadline(done, deadline)
		var es []xsd.ValidationError
		es, err = e.xsd.ValidateReusing(r, st)
		symbols, docBytes = st.Symbols(), st.DocBytes()
		e.xsdStates.Put(st)
		for _, ve := range es {
			verrs = append(verrs, client.ValidationError(ve))
		}
	}
	resp.Errors = verrs
	if err != nil {
		resp.DocError = err.Error()
	}
	resp.Valid = err == nil && len(verrs) == 0

	e.om.duration.Observe(int64(time.Since(start)))
	e.om.symbols.Add(uint64(symbols))
	e.om.docBytes.Add(uint64(docBytes))
	switch {
	case err != nil && (errors.Is(err, run.ErrDeadlineExceeded) || errors.Is(err, run.ErrCanceled)):
		// Aborted, not adjudicated: the handler sheds it; no verdict series
		// moves (the shed counters carry the accounting).
	case err != nil:
		e.om.docErrors.Inc()
	case len(verrs) > 0:
		e.om.invalid.Inc()
	default:
		e.om.valid.Inc()
	}
	return resp, err
}

// lookupSchema resolves a registered schema by name (nil if absent). The
// returned entry stays valid for the whole request even if the name is
// swapped or deleted concurrently.
func (s *Server) lookupSchema(name string) *schemaEntry {
	return (*s.schemas.Load())[name]
}

// sniffKind guesses dtd vs xsd from schema source: markup declarations
// mean a DTD, an <xs:schema> (or unprefixed <schema>) root means a schema
// document. Comments are stripped first — either format may quote the
// other's markup in one. After that, DTD wins ties because a DTD can
// still quote schema markup inside entity values, while a schema document
// cannot contain a bare "<!ELEMENT". Registration happens off the hot
// path, so the copy is fine.
func sniffKind(src []byte) string {
	src = stripComments(src)
	if bytes.Contains(src, []byte("<!ELEMENT")) {
		return client.KindDTD
	}
	if bytes.Contains(src, []byte("<schema")) {
		return client.KindXSD
	}
	// Any "<prefix:schema" start tag — xs:, xsd:, or a nonstandard prefix.
	for rest := src; ; {
		i := bytes.Index(rest, []byte(":schema"))
		if i < 0 {
			break
		}
		j := i - 1
		for j >= 0 && isNameByte(rest[j]) {
			j--
		}
		if j >= 0 && rest[j] == '<' && j < i-1 {
			return client.KindXSD
		}
		rest = rest[i+1:]
	}
	return client.KindDTD
}

// isNameByte reports whether b can appear in an (ASCII) XML name prefix.
func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.'
}

// stripComments removes XML comments ("<!--" … "-->"); an unterminated
// comment truncates the rest, as an XML parser would refuse it anyway.
func stripComments(src []byte) []byte {
	i := bytes.Index(src, []byte("<!--"))
	if i < 0 {
		return src
	}
	out := append([]byte(nil), src[:i]...)
	for {
		end := bytes.Index(src[i+4:], []byte("-->"))
		if end < 0 {
			return out
		}
		src = src[i+4+end+3:]
		i = bytes.Index(src, []byte("<!--"))
		if i < 0 {
			return append(out, src...)
		}
		out = append(out, src[:i]...)
	}
}

// compileSchema builds a registry entry from source (outside any lock —
// compilation is pure and may be slow).
func (s *Server) compileSchema(name, kind string, src []byte) (*schemaEntry, error) {
	if kind == "" {
		kind = sniffKind(src)
	}
	e := &schemaEntry{info: client.SchemaInfo{
		Name:      name,
		Kind:      kind,
		UpdatedAt: time.Now().UTC(),
	}}
	switch kind {
	case client.KindDTD:
		d, err := dtd.ParseWithCache(string(src), s.cache)
		if err != nil {
			return nil, err
		}
		e.dtd = d
		e.info.Elements = len(d.Elements)
		for _, issue := range d.Check() {
			e.info.Warnings = append(e.info.Warnings,
				fmt.Sprintf("element %s: %s", issue.Element, issue.Msg))
		}
	case client.KindXSD:
		sch, err := xsd.ParseWithCache(src, s.cache)
		if err != nil {
			return nil, err
		}
		e.xsd = sch
		e.info.Elements = len(sch.Roots)
		for _, t := range sch.AllTypes {
			if t.Kind == xsd.Children && !t.Deterministic {
				e.info.Warnings = append(e.info.Warnings,
					fmt.Sprintf("type %s: content model %s violates UPA (%s)", t.Name, t.Model, t.Rule))
			}
		}
	default:
		return nil, fmt.Errorf("unknown schema kind %q (want dtd or xsd)", kind)
	}
	e.tiers = schemaTiers(e)
	e.om = s.schemaMetricsFor(name)
	e.limiter = s.schemaLimiter(name)
	s.registerTierGauges(name, e.tiers)
	return e, nil
}

// schemaTiers counts the entry's compiled content models per engine tier:
// the Auto-ladder resolution of each deterministic regular model, plus
// "counter" for numeric (§3.3) XSD models. Nondeterministic models have no
// engine and are not counted (they already surface as warnings).
func schemaTiers(e *schemaEntry) map[string]int {
	tiers := make(map[string]int)
	switch {
	case e.dtd != nil:
		for _, el := range e.dtd.Elements {
			if el.Kind == dtd.Children && el.CM != nil && el.Deterministic {
				tiers[el.CM.AutoAlgorithm().String()]++
			}
		}
	case e.xsd != nil:
		for _, t := range e.xsd.AllTypes {
			if t.Kind != xsd.Children || !t.Deterministic {
				continue
			}
			if t.Numeric {
				tiers[dregex.TierCounter]++
			} else if t.CM != nil {
				tiers[t.CM.AutoAlgorithm().String()]++
			}
		}
	}
	return tiers
}

// storeSchema publishes entry under its name, atomically replacing any
// previous version; it reports whether the name existed before. In-flight
// requests that resolved the old entry finish against it undisturbed.
func (s *Server) storeSchema(e *schemaEntry) (replaced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.schemas.Load()
	next := make(map[string]*schemaEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	prev, replaced := old[e.info.Name]
	if replaced {
		e.info.Version = prev.info.Version + 1
	} else {
		e.info.Version = 1
	}
	next[e.info.Name] = e
	s.schemas.Store(&next)
	s.swaps.Add(1)
	return replaced
}

// deleteSchema removes name from the registry; it reports whether the name
// was registered. A delete is a registry mutation like any other, so it
// bumps the swap counter /v1/stats and /metrics report.
func (s *Server) deleteSchema(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.schemas.Load()
	if _, ok := old[name]; !ok {
		return false
	}
	next := make(map[string]*schemaEntry, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	s.schemas.Store(&next)
	s.swaps.Add(1)
	return true
}
