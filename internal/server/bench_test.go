package server

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dregex/client"
)

// benchDoc exercises a nested children model through the pooled-state
// validate path.
const benchSchemaDTD = `<!ELEMENT library (book+)>
<!ELEMENT book (title, author+, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>`

const benchDoc = `<library>
<book><title>Paper</title><author>Groz</author><author>Maneth</author><author>Staworko</author><year>2012</year></book>
<book><title>Other</title><author>Someone</author></book>
</library>`

// discardWriter is a no-allocation http.ResponseWriter for steady-state
// handler measurements (httptest.ResponseRecorder allocates per use).
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardWriter) WriteHeader(int)             {}

// resetBody is a rewindable io.ReadCloser so one request value can be
// replayed without per-iteration body allocations.
type resetBody struct{ *bytes.Reader }

func (resetBody) Close() error { return nil }

func newBenchServer(tb testing.TB) *Server {
	tb.Helper()
	s := New(Config{})
	req := httptest.NewRequest("PUT", "/v1/schemas/library", strings.NewReader(benchSchemaDTD))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		tb.Fatalf("schema registration: %d %s", rec.Code, rec.Body)
	}
	return s
}

// TestServerValidateAllocs pins the steady-state allocation count of the
// whole raw-body validate handler path: routing, counters, size limit,
// schema lookup, pooled-DocState validation, JSON response. Since the
// validator moved off encoding/xml onto the zero-allocation internal
// tokenizer (internal/xmltok) the document's size no longer matters: what
// remains is fixed per-request plumbing — the MaxBytesReader wrapper, the
// http.MaxBytesError it may need, and a handful of interface boxings in
// net/http — independent of document structure. Measured: a steady 5.0
// allocs/op on go1.24 for this document (down from 81.0 on the
// encoding/xml decoder path); the bound allows small toolchain drift, and
// growth past it means an accidental per-request allocation regression on
// the hot path.
func TestServerValidateAllocs(t *testing.T) {
	s := newBenchServer(t)
	h := s.Handler()
	doc := []byte(benchDoc)
	req := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
	rb := &resetBody{bytes.NewReader(doc)}
	w := &discardWriter{h: make(http.Header)}

	run := func() {
		rb.Seek(0, io.SeekStart)
		req.Body = rb
		h.ServeHTTP(w, req)
	}
	run() // warm the pools and the expression cache

	allocs := testing.AllocsPerRun(200, run)
	const maxAllocs = 9
	if allocs > maxAllocs {
		t.Errorf("validate handler path allocates %.1f allocs/op, pinned at <= %d", allocs, maxAllocs)
	}
}

// BenchmarkServerValidate is the load-style benchmark of the handler
// validation path (no network, no recorder overhead): one schema, many
// documents, pooled validation state.
func BenchmarkServerValidate(b *testing.B) {
	s := newBenchServer(b)
	h := s.Handler()
	doc := []byte(benchDoc)

	b.Run("serial", func(b *testing.B) {
		req := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
		rb := &resetBody{bytes.NewReader(doc)}
		w := &discardWriter{h: make(http.Header)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rb.Seek(0, io.SeekStart)
			req.Body = rb
			h.ServeHTTP(w, req)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			req := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
			rb := &resetBody{bytes.NewReader(doc)}
			w := &discardWriter{h: make(http.Header)}
			for pb.Next() {
				rb.Seek(0, io.SeekStart)
				req.Body = rb
				h.ServeHTTP(w, req)
			}
		})
	})
}

// BenchmarkServerValidateLimited is BenchmarkServerValidate/serial with
// the full admission-control stack armed — global and per-schema rate
// buckets (sized so nothing sheds), in-flight bounds, and a validate
// deadline. Pinned against the unlimited serial benchmark: overload
// protection must cost no more than a few percent on admitted requests
// (one CAS per bucket, two atomic adds, one checkpoint arm).
func BenchmarkServerValidateLimited(b *testing.B) {
	s := New(Config{Limits: Limits{
		Rate: 1e9, Burst: 1 << 20,
		SchemaRate: 1e9, SchemaBurst: 1 << 20,
		MaxInflight:     64,
		ValidateTimeout: time.Hour,
	}})
	req := httptest.NewRequest("PUT", "/v1/schemas/library", strings.NewReader(benchSchemaDTD))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		b.Fatalf("schema registration: %d %s", rec.Code, rec.Body)
	}
	h := s.Handler()
	doc := []byte(benchDoc)
	vreq := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
	rb := &resetBody{bytes.NewReader(doc)}
	w := &discardWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Seek(0, io.SeekStart)
		vreq.Body = rb
		h.ServeHTTP(w, vreq)
	}
}

// BenchmarkServerCompileCached measures the /v1/compile hot path: a cache
// hit plus JSON in/out.
func BenchmarkServerCompileCached(b *testing.B) {
	s := New(Config{})
	h := s.Handler()
	body := []byte(`{"expr": "(title, author+, (section | appendix)*)"}`)
	req := httptest.NewRequest("POST", "/v1/compile", nil)
	rb := &resetBody{bytes.NewReader(body)}
	w := &discardWriter{h: make(http.Header)}
	req.Header.Set("Content-Type", "application/json")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Seek(0, io.SeekStart)
		req.Body = rb
		h.ServeHTTP(w, req)
	}
}

// BenchmarkServerValidateMetrics measures the validate handler path with
// the full observability layer exercised the expensive way: structured
// JSON access logging on (to io.Discard, so the cost measured is the
// logging machinery, not a file descriptor). The gap to
// BenchmarkServerValidate/serial is the price of -log json; the metrics
// instruments themselves (histograms, counters) are always on in both.
func BenchmarkServerValidateMetrics(b *testing.B) {
	s := New(Config{AccessLog: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	req := httptest.NewRequest("PUT", "/v1/schemas/library", strings.NewReader(benchSchemaDTD))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		b.Fatalf("schema registration: %d %s", rec.Code, rec.Body)
	}
	h := s.Handler()
	doc := []byte(benchDoc)
	vreq := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
	rb := &resetBody{bytes.NewReader(doc)}
	w := &discardWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Seek(0, io.SeekStart)
		vreq.Body = rb
		h.ServeHTTP(w, vreq)
	}
}

// BenchmarkServerMetricsScrape measures a full /metrics render+parse-free
// scrape against a server with live per-endpoint and per-schema series —
// the cost a Prometheus poll imposes on the daemon.
func BenchmarkServerMetricsScrape(b *testing.B) {
	s := newBenchServer(b)
	h := s.Handler()
	// Populate histograms so the scrape renders non-trivial bucket sets.
	doc := []byte(benchDoc)
	vreq := httptest.NewRequest("POST", "/v1/validate?schema=library", nil)
	rb := &resetBody{bytes.NewReader(doc)}
	w := &discardWriter{h: make(http.Header)}
	for i := 0; i < 100; i++ {
		rb.Seek(0, io.SeekStart)
		vreq.Body = rb
		h.ServeHTTP(w, vreq)
	}
	mreq := httptest.NewRequest("GET", "/metrics", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, mreq)
	}
}

// BenchmarkServerValidateE2E goes through a real TCP listener and the Go
// client, for an end-to-end requests-per-second figure.
func BenchmarkServerValidateE2E(b *testing.B) {
	s := newBenchServer(b)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()
	doc := []byte(benchDoc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Validate(ctx, "library", doc); err != nil {
			b.Fatal(err)
		}
	}
}
