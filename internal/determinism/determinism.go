// Package determinism implements Theorem 3.5 of the paper: deciding in
// O(|e|) time whether a regular expression is deterministic (one-
// unambiguous), without building the Glushkov automaton.
//
// The test is the composition of §3's pieces: condition (P1), skeleton
// construction with Witness/FirstPos/Next (Algorithm 1, condition (P2)) —
// all provided by package skeleton — and Algorithm 2 (CheckNode) executed
// at every colored node:
//
//	non-deterministic  iff  (P1) or (P2) fails, or some colored node n of
//	color a has Rchild(n) nullable and (Next(n,a) ≠ ∅, or
//	FirstPos(pStar(n),a) = FirstPos(n,a) ≠ ∅ with pSupLast(n) 4 pStar(n))
//
// (Lemma 3.4 + Theorem 3.5). The same case analysis with loop nodes
// generalized from ∗ to flexible numeric iterations is reused by package
// numeric (§3.3).
package determinism

import (
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// Result reports the verdict of the linear determinism test. For a
// nondeterministic expression it carries the rule that fired and a pair of
// distinct, equally-labeled candidate positions; use Diagnose for a fully
// verified counterexample.
type Result struct {
	Deterministic bool
	// Rule is "P1", "P2", "Y-overflow", "double-first", "W-N" (Witness vs
	// Next, Theorem 3.5 case (i)) or "W-F" (Witness vs FirstPos through a
	// star, case (ii)).
	Rule string
	// Q1, Q2 are the competing positions (valid when nondeterministic).
	Q1, Q2 parsetree.NodeID
	// Node is the colored node at which CheckNode fired (W-N / W-F only).
	Node parsetree.NodeID
	// Sym is the color involved (W-N / W-F only).
	Sym ast.Symbol
}

func (r *Result) String() string {
	if r.Deterministic {
		return "deterministic"
	}
	return fmt.Sprintf("nondeterministic (%s: positions %d, %d)", r.Rule, r.Q1, r.Q2)
}

// Check runs the linear-time determinism test on a compiled plain
// expression, reusing the caller's follow index.
func Check(t *parsetree.Tree, fol *follow.Index) *Result {
	sks := skeleton.Build(t, fol, skeleton.Options{})
	return fromSkeletons(t, sks, false)
}

// CheckSkeletons finishes the test on prebuilt skeleta (used by the colored
// matcher, which needs the skeleta anyway). numericLoops selects the §3.3
// loop generalization and must match the skeleton build options.
func CheckSkeletons(t *parsetree.Tree, sks *skeleton.Skeletons, numericLoops bool) *Result {
	return fromSkeletons(t, sks, numericLoops)
}

func fromSkeletons(t *parsetree.Tree, sks *skeleton.Skeletons, numericLoops bool) *Result {
	if v := sks.NonDet; v != nil {
		return &Result{Rule: v.Rule, Q1: v.Q1, Q2: v.Q2}
	}
	for _, c := range sks.ColoredNodes {
		if r := checkNode(t, sks, c, numericLoops); r != nil {
			return r
		}
	}
	return &Result{Deterministic: true}
}

// checkNode is Algorithm 2. n is a colored (hence ⊙-labeled) node with
// witness W = Witness(n,a); it returns a non-nil failure Result iff some
// position is followed by two equally-labeled candidates through n.
func checkNode(t *parsetree.Tree, sks *skeleton.Skeletons, c skeleton.Colored, numericLoops bool) *Result {
	n := c.Node
	rchild := t.RChild[n]
	if !t.Nullable[rchild] {
		return nil
	}
	w := sks.Wit[c.Sk]
	// Case (i): Witness and Next both follow any position in
	// Last(Lchild(n)).
	if nx := sks.Next[c.Sk]; nx != parsetree.Null {
		return &Result{Rule: "W-N", Q1: w, Q2: nx, Node: n, Sym: c.Sym}
	}
	// Case (ii): Witness and FirstPos both follow a position when the
	// FirstPos survives to the enclosing star S and Last(n) reaches S.
	f := sks.First[c.Sk]
	s := t.PStar[n]
	if numericLoops {
		s = t.PLoop[n]
	}
	if f != parsetree.Null && s != parsetree.Null && f != w &&
		t.IsAncestor(t.PSupFirst[f], s) && // FirstPos(S,a) = F
		t.IsAncestor(t.PSupLast[n], s) { // pSupLast(n) 4 S
		return &Result{Rule: "W-F", Q1: w, Q2: f, Node: n, Sym: c.Sym}
	}
	return nil
}

// IsDeterministic is the one-call variant of Check: it compiles nothing and
// reuses nothing, building the follow index internally.
func IsDeterministic(t *parsetree.Tree) bool {
	return Check(t, follow.New(t)).Deterministic
}

// Witness is a fully verified nondeterminism counterexample: Q1 ≠ Q2 carry
// the same label and both follow P.
type Witness struct {
	P, Q1, Q2 parsetree.NodeID
}

// Diagnose turns a failed Result into a verified Witness by locating a
// common predecessor with the O(1) checkIfFollow test: O(|Pos(e)|) for
// CheckNode failures (scan candidates for P), O(|Pos(e)|²) worst case for
// the remaining rules. Returns nil if r is deterministic or no witness
// could be verified (which would indicate a bug; tests assert it never
// happens).
func Diagnose(t *parsetree.Tree, fol *follow.Index, r *Result) *Witness {
	return diagnose(t, fol.CheckIfFollow, r)
}

// DiagnoseLoops is Diagnose with the follow relation generalized to
// numeric iteration loops (CheckIfFollowLoop) — the counterpart for §3.3
// verdicts, where the competing transitions may run through an OpIter
// rather than a ∗. Witnesses ignore counter legality; package numeric
// re-verifies candidate words with the counter simulation.
func DiagnoseLoops(t *parsetree.Tree, fol *follow.Index, r *Result) *Witness {
	return diagnose(t, fol.CheckIfFollowLoop, r)
}

func diagnose(t *parsetree.Tree, follows func(p, q parsetree.NodeID) bool, r *Result) *Witness {
	if r == nil || r.Deterministic {
		return nil
	}
	// Fast path: the reported pair, against every possible predecessor.
	if r.Q1 != parsetree.Null && r.Q2 != parsetree.Null {
		for _, p := range t.PosNode {
			if follows(p, r.Q1) && follows(p, r.Q2) {
				return &Witness{P: p, Q1: r.Q1, Q2: r.Q2}
			}
		}
	}
	// Fallback: search all equally-labeled pairs (quadratic; diagnosis
	// only).
	for i, q1 := range t.PosNode {
		for _, q2 := range t.PosNode[i+1:] {
			if t.Sym[q1] != t.Sym[q2] {
				continue
			}
			for _, p := range t.PosNode {
				if follows(p, q1) && follows(p, q2) {
					return &Witness{P: p, Q1: q1, Q2: q2}
				}
			}
		}
	}
	return nil
}

// ShortestWitnessWord builds a word uσ such that after reading u the parser
// is at position w.P and the next symbol σ = lab(w.Q1) = lab(w.Q2) can be
// matched at two positions — a concrete ambiguity proof for error messages.
// It runs a BFS over the Glushkov transition relation realized with
// checkIfFollow, O(|Pos(e)|²) worst case; intended for diagnostics.
func ShortestWitnessWord(t *parsetree.Tree, fol *follow.Index, w *Witness) []ast.Symbol {
	return shortestWitnessWord(t, fol.CheckIfFollow, w)
}

// ShortestWitnessWordLoops is ShortestWitnessWord over the loop-
// generalized follow relation (see DiagnoseLoops).
func ShortestWitnessWordLoops(t *parsetree.Tree, fol *follow.Index, w *Witness) []ast.Symbol {
	return shortestWitnessWord(t, fol.CheckIfFollowLoop, w)
}

func shortestWitnessWord(t *parsetree.Tree, follows func(p, q parsetree.NodeID) bool, w *Witness) []ast.Symbol {
	if w == nil {
		return nil
	}
	begin := t.BeginPos()
	prev := make(map[parsetree.NodeID]parsetree.NodeID)
	seen := map[parsetree.NodeID]bool{begin: true}
	queue := []parsetree.NodeID{begin}
	for len(queue) > 0 && !seen[w.P] {
		p := queue[0]
		queue = queue[1:]
		for _, q := range t.PosNode {
			if !seen[q] && follows(p, q) {
				seen[q] = true
				prev[q] = p
				queue = append(queue, q)
			}
		}
	}
	if !seen[w.P] {
		return nil
	}
	var rev []ast.Symbol
	for p := w.P; p != begin; p = prev[p] {
		rev = append(rev, t.Sym[p])
	}
	word := make([]ast.Symbol, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		word = append(word, rev[i])
	}
	return append(word, t.Sym[w.Q1])
}
