package determinism

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func compile(t *testing.T, expr string) *parsetree.Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr
}

func TestPaperExamples(t *testing.T) {
	cases := []struct {
		expr string
		det  bool
	}{
		{"(ab+b(b?)a)*", true},
		{"(a*ba+bb)*", false},
		{"ab*b", false},
		{"(a+b)*", true},
		{"(a+a)*", false},
		{"(c(b?a?))a", false},
		{"(c(a?b?))a", false},
		{"(c(b?a)*)a", false},
		{"(c(b?a))a", true},
		{"(a(b?a))*", true},
		{"(a(b?a?))*", false},
		{"(c?((ab*)(a?c)))*(ba)", true},
		{"a?b?c?", true},
		{"(a+b)(a+c)", true},
		{"a*a", false},
		{"(ab)*a(b+d)", false},
		{"a", true},
		{"a*", true},
		{"aa", true},
		{"(aa)*", true},
		{"b(a?a)", false}, // "ba": the a can match either position
		{"b(a?a?)", false},
		{"b(a?c)", true},
	}
	for _, c := range cases {
		tr := compile(t, c.expr)
		r := Check(tr, follow.New(tr))
		if r.Deterministic != c.det {
			t.Errorf("Check(%s) = %v (%s), want deterministic=%v",
				c.expr, r.Deterministic, r.Rule, c.det)
		}
	}
}

// The decisive test: the linear algorithm must agree with the
// Brüggemann-Klein baseline on large randomized corpora.
func TestAgainstBKFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	configs := []wordgen.ExprConfig{
		{Symbols: 1, MaxNodes: 10},
		{Symbols: 2, MaxNodes: 15},
		{Symbols: 2, MaxNodes: 40},
		{Symbols: 3, MaxNodes: 30},
		{Symbols: 4, MaxNodes: 60},
		{Symbols: 6, MaxNodes: 120},
	}
	total, nondet := 0, 0
	for _, cfg := range configs {
		for trial := 0; trial < 700; trial++ {
			alpha := ast.NewAlphabet()
			e := ast.Normalize(wordgen.RandomExpr(r, alpha, cfg))
			tr, err := parsetree.Build(e, alpha)
			if err != nil {
				t.Fatal(err)
			}
			want := glushkov.CheckBK(tr) == nil
			got := Check(tr, follow.New(tr))
			if got.Deterministic != want {
				t.Fatalf("disagreement on %s: linear=%v (%s), BK=%v",
					ast.StringMath(e, alpha), got.Deterministic, got.Rule, want)
			}
			total++
			if !want {
				nondet++
			}
		}
	}
	// The corpus must exercise both verdicts heavily.
	if nondet < total/10 || nondet > total*9/10 {
		t.Fatalf("unbalanced corpus: %d/%d nondeterministic", nondet, total)
	}
}

func TestDeterministicFamilies(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 150; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 10, 60, trial%2 == 0)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if res := Check(tr, follow.New(tr)); !res.Deterministic {
			t.Fatalf("deterministic-by-construction rejected: %s (%s)",
				ast.StringMath(e, alpha), res.Rule)
		}
	}
	alpha := ast.NewAlphabet()
	tr, err := parsetree.Build(ast.Normalize(wordgen.MixedContent(alpha, 500)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDeterministic(tr) {
		t.Fatal("(a1+…+a500)* rejected")
	}
	// Duplicate one symbol: a nondeterministic mixed-content model.
	alpha2 := ast.NewAlphabet()
	dup := ast.Star(ast.Union(wordgen.MixedContent(alpha2, 1).L, // a
		ast.Union(balanced(alpha2, 200), ast.Sym(alpha2.Intern(wordgen.SymbolName(7))))))
	tr2, err := parsetree.Build(ast.Normalize(dup), alpha2)
	if err != nil {
		t.Fatal(err)
	}
	if IsDeterministic(tr2) {
		t.Fatal("duplicated mixed-content symbol accepted as deterministic")
	}
}

func balanced(alpha *ast.Alphabet, m int) *ast.Node {
	e := wordgen.MixedContent(alpha, m)
	return e.L // strip the star
}

func TestDiagnoseProducesValidWitness(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	checked := 0
	for trial := 0; trial < 600 || checked < 100; trial++ {
		if trial > 5000 {
			t.Fatal("could not collect enough nondeterministic samples")
		}
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 40}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		res := Check(tr, fol)
		if res.Deterministic {
			continue
		}
		checked++
		w := Diagnose(tr, fol, res)
		if w == nil {
			t.Fatalf("Diagnose failed for %s (%s)", ast.StringMath(e, alpha), res.Rule)
		}
		if w.Q1 == w.Q2 || tr.Sym[w.Q1] != tr.Sym[w.Q2] {
			t.Fatalf("invalid witness pair for %s", ast.StringMath(e, alpha))
		}
		if !fol.CheckIfFollow(w.P, w.Q1) || !fol.CheckIfFollow(w.P, w.Q2) {
			t.Fatalf("witness pair does not follow P for %s", ast.StringMath(e, alpha))
		}
	}
}

func TestShortestWitnessWord(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	verified := 0
	for trial := 0; trial < 3000 && verified < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 30}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		res := Check(tr, fol)
		if res.Deterministic {
			continue
		}
		w := Diagnose(tr, fol, res)
		if w == nil {
			t.Fatal("no witness")
		}
		word := ShortestWitnessWord(tr, fol, w)
		if word == nil {
			t.Fatalf("no witness word for %s", ast.StringMath(e, alpha))
		}
		// Simulate the Glushkov relation: after word[:n-1] the state set
		// must contain P, and the last symbol must reach both Q1 and Q2.
		states := map[parsetree.NodeID]bool{tr.BeginPos(): true}
		for _, sym := range word[:len(word)-1] {
			next := map[parsetree.NodeID]bool{}
			for p := range states {
				for _, q := range tr.PosNode {
					if tr.Sym[q] == sym && fol.CheckIfFollow(p, q) {
						next[q] = true
					}
				}
			}
			states = next
		}
		if !states[w.P] {
			t.Fatalf("witness word does not reach P in %s", ast.StringMath(e, alpha))
		}
		last := word[len(word)-1]
		if tr.Sym[w.Q1] != last || !fol.CheckIfFollow(w.P, w.Q1) || !fol.CheckIfFollow(w.P, w.Q2) {
			t.Fatalf("witness word final step invalid in %s", ast.StringMath(e, alpha))
		}
		verified++
	}
	if verified < 30 {
		t.Fatalf("only %d witness words verified", verified)
	}
}

func TestRuleAttribution(t *testing.T) {
	// Representative failures for each rule.
	cases := []struct {
		expr string
		rule string
	}{
		{"a?a", "P1"},         // both a's share pSupFirst
		{"(c(b?a?))a", "W-N"}, // §3.2 combination (1)
		{"(a(b?a?))*", "W-F"}, // §3.2 combination (2)
	}
	for _, c := range cases {
		tr := compile(t, c.expr)
		r := Check(tr, follow.New(tr))
		if r.Deterministic {
			t.Errorf("%s: expected nondeterministic", c.expr)
			continue
		}
		if r.Rule != c.rule {
			t.Errorf("%s: rule = %s, want %s", c.expr, r.Rule, c.rule)
		}
	}
}
