// Package veb implements van Emde Boas trees: predecessor/successor queries
// over a bounded integer universe in O(log log u) time. The paper's
// Theorem 4.2 matcher uses them (via reference [23]) to answer lowest
// colored ancestor queries over preorder numbers.
//
// The implementation is the classical recursive structure with the min/max
// shortcut (min is not stored in clusters, making Insert O(log log u)) and
// hash-addressed lazy clusters (RS-vEB), so space is O(n) for n inserted
// keys rather than O(u).
package veb

// Tree is a van Emde Boas tree over the universe [0, U). The zero value is
// not usable; call New.
type Tree struct {
	bits     uint  // universe is 1 << bits
	lowBits  uint  // cluster universe is 1 << lowBits
	min      int32 // -1 when empty
	max      int32
	summary  *Tree
	clusters map[int32]*Tree
}

// New returns an empty tree whose universe is the smallest power of two
// ≥ max(2, universe).
func New(universe int) *Tree {
	bits := uint(1)
	for 1<<bits < universe {
		bits++
	}
	return newBits(bits)
}

func newBits(bits uint) *Tree {
	return &Tree{bits: bits, lowBits: (bits + 1) / 2, min: -1, max: -1}
}

func (t *Tree) high(x int32) int32 { return x >> t.lowBits }
func (t *Tree) low(x int32) int32  { return x & (1<<t.lowBits - 1) }
func (t *Tree) index(h, l int32) int32 {
	return h<<t.lowBits | l
}

// Empty reports whether the tree contains no keys.
func (t *Tree) Empty() bool { return t.min < 0 }

// Min returns the smallest key, or -1 if empty.
func (t *Tree) Min() int { return int(t.min) }

// Max returns the largest key, or -1 if empty.
func (t *Tree) Max() int { return int(t.max) }

// Insert adds x to the set; inserting an existing key is a no-op.
// x must lie in [0, U).
func (t *Tree) Insert(x int) { t.insert(int32(x)) }

func (t *Tree) insert(x int32) {
	if t.min < 0 {
		t.min, t.max = x, x
		return
	}
	if x == t.min || x == t.max {
		return
	}
	if x < t.min {
		x, t.min = t.min, x
	}
	if x > t.max {
		t.max = x
	}
	if t.bits == 1 {
		return // min/max cover the two-element universe
	}
	h, l := t.high(x), t.low(x)
	if t.clusters == nil {
		t.clusters = make(map[int32]*Tree)
	}
	c := t.clusters[h]
	if c == nil {
		c = newBits(t.lowBits)
		t.clusters[h] = c
	}
	if c.Empty() {
		if t.summary == nil {
			t.summary = newBits(t.bits - t.lowBits)
		}
		t.summary.insert(h)
	}
	c.insert(l)
}

// Member reports whether x is in the set.
func (t *Tree) Member(x int) bool { return t.member(int32(x)) }

func (t *Tree) member(x int32) bool {
	if t.min < 0 || x < t.min || x > t.max {
		return false
	}
	if x == t.min || x == t.max {
		return true
	}
	if t.bits == 1 {
		return false
	}
	c := t.clusters[t.high(x)]
	return c != nil && c.member(t.low(x))
}

// Succ returns the smallest key strictly greater than x, or -1.
func (t *Tree) Succ(x int) int { return int(t.succ(int32(x))) }

func (t *Tree) succ(x int32) int32 {
	if t.min < 0 || x >= t.max {
		return -1
	}
	if x < t.min {
		return t.min
	}
	if t.bits == 1 {
		return t.max // x ≥ min, x < max ⇒ max is the successor
	}
	h, l := t.high(x), t.low(x)
	if c := t.clusters[h]; c != nil && !c.Empty() && l < c.max {
		return t.index(h, c.succ(l))
	}
	if t.summary == nil {
		return t.max
	}
	nh := t.summary.succ(h)
	if nh < 0 {
		return t.max
	}
	return t.index(nh, t.clusters[nh].min)
}

// Pred returns the largest key strictly smaller than x, or -1.
func (t *Tree) Pred(x int) int { return int(t.pred(int32(x))) }

func (t *Tree) pred(x int32) int32 {
	if t.min < 0 || x <= t.min {
		return -1
	}
	if x > t.max {
		return t.max
	}
	if t.bits == 1 {
		return t.min // x ≤ max, x > min ⇒ min is the predecessor
	}
	h, l := t.high(x), t.low(x)
	if c := t.clusters[h]; c != nil && !c.Empty() && l > c.min {
		return t.index(h, c.pred(l))
	}
	var ph int32 = -1
	if t.summary != nil {
		ph = t.summary.pred(h)
	}
	if ph < 0 {
		return t.min // only min remains below cluster h
	}
	return t.index(ph, t.clusters[ph].max)
}

// PredLE returns the largest key ≤ x, or -1.
func (t *Tree) PredLE(x int) int {
	if t.Member(x) {
		return x
	}
	return t.Pred(x)
}

// SuccGE returns the smallest key ≥ x, or -1.
func (t *Tree) SuccGE(x int) int {
	if t.Member(x) {
		return x
	}
	return t.Succ(x)
}
