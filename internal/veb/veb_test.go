package veb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refSet is the obvious reference implementation over a sorted slice.
type refSet struct{ keys []int }

func (r *refSet) insert(x int) {
	i := sort.SearchInts(r.keys, x)
	if i < len(r.keys) && r.keys[i] == x {
		return
	}
	r.keys = append(r.keys, 0)
	copy(r.keys[i+1:], r.keys[i:])
	r.keys[i] = x
}
func (r *refSet) member(x int) bool {
	i := sort.SearchInts(r.keys, x)
	return i < len(r.keys) && r.keys[i] == x
}
func (r *refSet) pred(x int) int {
	i := sort.SearchInts(r.keys, x)
	if i == 0 {
		return -1
	}
	return r.keys[i-1]
}
func (r *refSet) succ(x int) int {
	i := sort.SearchInts(r.keys, x+1)
	if i == len(r.keys) {
		return -1
	}
	return r.keys[i]
}

func TestAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		u := 2 + r.Intn(3000)
		v := New(u)
		ref := &refSet{}
		n := r.Intn(200)
		for i := 0; i < n; i++ {
			x := r.Intn(u)
			v.Insert(x)
			ref.insert(x)
		}
		for q := 0; q < 400; q++ {
			x := r.Intn(u)
			if got, want := v.Member(x), ref.member(x); got != want {
				t.Fatalf("u=%d Member(%d) = %v, want %v", u, x, got, want)
			}
			if got, want := v.Pred(x), ref.pred(x); got != want {
				t.Fatalf("u=%d Pred(%d) = %d, want %d", u, x, got, want)
			}
			if got, want := v.Succ(x), ref.succ(x); got != want {
				t.Fatalf("u=%d Succ(%d) = %d, want %d", u, x, got, want)
			}
			le := v.PredLE(x)
			wantLE := ref.pred(x + 1)
			if le != wantLE {
				t.Fatalf("u=%d PredLE(%d) = %d, want %d", u, x, le, wantLE)
			}
			ge := v.SuccGE(x)
			wantGE := ref.succ(x - 1)
			if ge != wantGE {
				t.Fatalf("u=%d SuccGE(%d) = %d, want %d", u, x, ge, wantGE)
			}
		}
		if len(ref.keys) > 0 {
			if v.Min() != ref.keys[0] || v.Max() != ref.keys[len(ref.keys)-1] {
				t.Fatalf("Min/Max mismatch")
			}
		} else if !v.Empty() {
			t.Fatal("empty tree reports non-empty")
		}
	}
}

func TestQuickProperty(t *testing.T) {
	// Property: for any key set and any query point, Pred < x ≤ Succ-of-Pred
	// chain is consistent.
	f := func(keys []uint16, x uint16) bool {
		v := New(1 << 16)
		ref := &refSet{}
		for _, k := range keys {
			v.Insert(int(k))
			ref.insert(int(k))
		}
		return v.Pred(int(x)) == ref.pred(int(x)) &&
			v.Succ(int(x)) == ref.succ(int(x)) &&
			v.Member(int(x)) == ref.member(int(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeUniverses(t *testing.T) {
	for _, u := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		v := New(u)
		if !v.Empty() || v.Min() != -1 || v.Max() != -1 {
			t.Fatalf("u=%d: fresh tree not empty", u)
		}
		if v.Pred(u-1) != -1 || v.Succ(0) != -1 {
			t.Fatalf("u=%d: queries on empty tree", u)
		}
		v.Insert(0)
		v.Insert(0) // duplicate insert is a no-op
		if v.Min() != 0 || v.Max() != 0 || !v.Member(0) {
			t.Fatalf("u=%d: singleton broken", u)
		}
		if u > 1 {
			v.Insert(u - 1)
			if v.Max() != u-1 || v.Pred(u-1) != 0 || v.Succ(0) != u-1 {
				t.Fatalf("u=%d: two-element set broken", u)
			}
		}
	}
}

func TestDenseUniverse(t *testing.T) {
	const u = 256
	v := New(u)
	for i := 0; i < u; i++ {
		v.Insert(i)
	}
	for i := 0; i < u; i++ {
		if !v.Member(i) {
			t.Fatalf("Member(%d) = false in dense set", i)
		}
		if want := i - 1; v.Pred(i) != want {
			t.Fatalf("Pred(%d) = %d, want %d", i, v.Pred(i), want)
		}
		want := i + 1
		if want == u {
			want = -1
		}
		if v.Succ(i) != want {
			t.Fatalf("Succ(%d) = %d, want %d", i, v.Succ(i), want)
		}
	}
}
