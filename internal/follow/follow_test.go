package follow

import (
	"math/rand"
	"sort"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func buildTree(t *testing.T, expr string) *parsetree.Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr
}

// followIndices converts a follow set to user-position indices (1-based,
// as in the paper's p1, p2, …).
func followIndices(tr *parsetree.Tree, nodes []parsetree.NodeID) []int {
	var out []int
	for _, q := range nodes {
		i := int(tr.PosIndex[q])
		if i > 0 && i < tr.NumPositions()-1 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func TestPaperExamples(t *testing.T) {
	// Example 2.1: e1 = (ab+b(b?)a)*, Follow(p3) = {p4, p5}.
	tr := buildTree(t, "(ab+b(b?)a)*")
	ix := New(tr)
	got := followIndices(tr, ix.FollowSet(tr.PosNode[3]))
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("e1: Follow(p3) = %v, want [4 5]", got)
	}

	// Example 2.1: e2 = (a*ba+bb)*, Follow(q3) = {q1, q2, q4}.
	tr2 := buildTree(t, "(a*ba+bb)*")
	ix2 := New(tr2)
	got2 := followIndices(tr2, ix2.FollowSet(tr2.PosNode[3]))
	if len(got2) != 3 || got2[0] != 1 || got2[1] != 2 || got2[2] != 4 {
		t.Errorf("e2: Follow(q3) = %v, want [1 2 4]", got2)
	}

	// Figure 1 / §2: in e0, p4 ∈ Follow⊙(p3) and p1 ∈ Follow∗(p5).
	tr0 := buildTree(t, "(c?((ab*)(a?c)))*(ba)")
	ix0 := New(tr0)
	if !ix0.ViaCat(tr0.PosNode[3], tr0.PosNode[4]) {
		t.Error("e0: p4 ∈ Follow⊙(p3) expected")
	}
	if !ix0.ViaStar(tr0.PosNode[5], tr0.PosNode[1]) {
		t.Error("e0: p1 ∈ Follow∗(p5) expected")
	}
	if ix0.ViaStar(tr0.PosNode[3], tr0.PosNode[4]) {
		t.Error("e0: p4 ∈ Follow∗(p3) not expected")
	}
}

func TestPhantomMarkers(t *testing.T) {
	// Follow(#) is First(e′) (plus $ when e′ is nullable).
	tr := buildTree(t, "a?b")
	ix := New(tr)
	begin, end := tr.BeginPos(), tr.EndPos()
	if !ix.CheckIfFollow(begin, tr.PosNode[1]) || !ix.CheckIfFollow(begin, tr.PosNode[2]) {
		t.Error("a?b: both a and b must follow #")
	}
	if ix.CheckIfFollow(begin, end) {
		t.Error("a?b: $ must not follow # (ε ∉ L)")
	}
	tr2 := buildTree(t, "a*")
	ix2 := New(tr2)
	if !ix2.CheckIfFollow(tr2.BeginPos(), tr2.EndPos()) {
		t.Error("a*: $ must follow # (ε ∈ L)")
	}
	// Nothing follows $; # follows nothing.
	for i := 0; i < tr.NumPositions(); i++ {
		if ix.CheckIfFollow(end, tr.PosNode[i]) {
			t.Errorf("position %d follows $", i)
		}
		if ix.CheckIfFollow(tr.PosNode[i], begin) {
			t.Errorf("# follows position %d", i)
		}
	}
}

func TestSelfFollowThroughStar(t *testing.T) {
	tr := buildTree(t, "a*")
	ix := New(tr)
	a := tr.PosNode[1]
	if !ix.CheckIfFollow(a, a) {
		t.Error("a*: a must follow itself")
	}
	tr2 := buildTree(t, "ab")
	ix2 := New(tr2)
	if ix2.CheckIfFollow(tr2.PosNode[1], tr2.PosNode[1]) {
		t.Error("ab: a must not follow itself")
	}
}

func TestAgainstBruteForce(t *testing.T) {
	exprs := []string{
		"(c?((ab*)(a?c)))*(ba)",
		"(ab+b(b?)a)*",
		"(a*ba+bb)*",
		"((a+b)?c)*d?",
		"a?b?c?",
		"(a(b?c)*)+(d(e+f)?)*",
		"((ab)*(ba)*)*",
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 4, MaxNodes: 60}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		checkFollowAgainstBrute(t, tr, ast.StringMath(e, alpha))
	}
	for _, expr := range exprs {
		checkFollowAgainstBrute(t, buildTree(t, expr), expr)
	}
}

func checkFollowAgainstBrute(t *testing.T, tr *parsetree.Tree, name string) {
	t.Helper()
	ix := New(tr)
	b := Brute(tr)
	for _, p := range tr.PosNode {
		for _, q := range tr.PosNode {
			got := ix.CheckIfFollow(p, q)
			want := b.Follow[p][q]
			if got != want {
				t.Fatalf("%s: checkIfFollow(%s@%d, %s@%d) = %v, brute = %v",
					name, tr.Label(p), p, tr.Label(q), q, got, want)
			}
		}
	}
}

func TestFollowViaDecomposition(t *testing.T) {
	// ViaCat ∨ ViaStar must equal CheckIfFollow everywhere, and on plain
	// trees ViaLoop must equal ViaStar.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 40}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		ix := New(tr)
		for _, p := range tr.PosNode {
			for _, q := range tr.PosNode {
				if ix.CheckIfFollow(p, q) != (ix.ViaCat(p, q) || ix.ViaStar(p, q)) {
					t.Fatal("CheckIfFollow disagrees with ViaCat∨ViaStar")
				}
				if ix.ViaStar(p, q) != ix.ViaLoop(p, q) {
					t.Fatal("ViaLoop differs from ViaStar on a plain tree")
				}
				if ix.CheckIfFollow(p, q) != ix.CheckIfFollowLoop(p, q) {
					t.Fatal("CheckIfFollowLoop differs on a plain tree")
				}
			}
		}
	}
}
