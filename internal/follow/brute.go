package follow

import "dregex/internal/parsetree"

// BruteSets carries First/Last/Follow sets materialized by the classical
// syntax-directed definitions (no LCA, no pointer tricks). It serves as the
// ground-truth oracle for the O(1) machinery and as a building block of the
// Glushkov baseline.
type BruteSets struct {
	T *parsetree.Tree
	// First[n], Last[n]: position nodes of the respective sets.
	First [][]parsetree.NodeID
	Last  [][]parsetree.NodeID
	// Follow[p] for each position node p (indexed by node id, nil for
	// inner nodes): successors contributed by concatenation and star
	// nodes per the classical construction.
	Follow []map[parsetree.NodeID]bool
}

// Brute computes all sets in O(|e|·|Pos(e)|) worst case.
func Brute(t *parsetree.Tree) *BruteSets {
	n := t.N()
	b := &BruteSets{
		T:      t,
		First:  make([][]parsetree.NodeID, n),
		Last:   make([][]parsetree.NodeID, n),
		Follow: make([]map[parsetree.NodeID]bool, n),
	}
	for _, p := range t.PosNode {
		b.Follow[p] = map[parsetree.NodeID]bool{}
	}
	// Postorder: children have larger preorder ids than parents, so walk
	// ids backwards... that is not postorder; instead recurse explicitly.
	var rec func(id parsetree.NodeID)
	rec = func(id parsetree.NodeID) {
		l, r := t.LChild[id], t.RChild[id]
		if l != parsetree.Null {
			rec(l)
		}
		if r != parsetree.Null {
			rec(r)
		}
		switch t.Op[id] {
		case parsetree.OpSym:
			b.First[id] = []parsetree.NodeID{id}
			b.Last[id] = []parsetree.NodeID{id}
		case parsetree.OpCat:
			b.First[id] = append(append([]parsetree.NodeID{}, b.First[l]...), nilUnless(t.Nullable[l], b.First[r])...)
			b.Last[id] = append(append([]parsetree.NodeID{}, b.Last[r]...), nilUnless(t.Nullable[r], b.Last[l])...)
			for _, p := range b.Last[l] {
				for _, q := range b.First[r] {
					b.Follow[p][q] = true
				}
			}
		case parsetree.OpUnion:
			b.First[id] = append(append([]parsetree.NodeID{}, b.First[l]...), b.First[r]...)
			b.Last[id] = append(append([]parsetree.NodeID{}, b.Last[l]...), b.Last[r]...)
		case parsetree.OpOpt:
			b.First[id] = b.First[l]
			b.Last[id] = b.Last[l]
		case parsetree.OpStar:
			b.First[id] = b.First[l]
			b.Last[id] = b.Last[l]
			for _, p := range b.Last[l] {
				for _, q := range b.First[l] {
					b.Follow[p][q] = true
				}
			}
		case parsetree.OpIter:
			// Loop edges whenever a second iteration is possible
			// (Max ≥ 2 always holds in normal form). Used by the numeric
			// oracle; plain trees have no OpIter.
			b.First[id] = b.First[l]
			b.Last[id] = b.Last[l]
			if t.Max[id] >= 2 {
				for _, p := range b.Last[l] {
					for _, q := range b.First[l] {
						b.Follow[p][q] = true
					}
				}
			}
		}
	}
	rec(t.Root)
	return b
}

func nilUnless(cond bool, s []parsetree.NodeID) []parsetree.NodeID {
	if cond {
		return s
	}
	return nil
}
