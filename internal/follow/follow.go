// Package follow implements Theorem 2.4 of the paper: after O(|e|)
// preprocessing (LCA plus the pSupFirst/pSupLast/pStar pointers), the test
// checkIfFollow(p, q) — "may position q come directly after position p in a
// word of L(e)?" — is answered in constant time.
//
// Lemma 2.2 splits Follow into the concatenation case and the star case:
//
//	q ∈ Follow(p)  iff  n = LCA(p,q) satisfies
//	  (1) lab(n) = ⊙, q ∈ First(Rchild(n)), p ∈ Last(Lchild(n)),   or
//	  (2) q ∈ First(s), p ∈ Last(s) for s the lowest ∗ above n,
//
// and Lemma 2.3 turns the First/Last membership tests into two ancestor
// checks against the pSupFirst/pSupLast pointers.
package follow

import (
	"dregex/internal/lca"
	"dregex/internal/parsetree"
)

// Index answers follow queries for one compiled expression.
type Index struct {
	T   *parsetree.Tree
	LCA *lca.LCA
}

// New preprocesses t in O(|t|) time.
func New(t *parsetree.Tree) *Index {
	return &Index{T: t, LCA: lca.New(t)}
}

// NewWithLCA builds an Index reusing an existing LCA structure for t.
func NewWithLCA(t *parsetree.Tree, l *lca.LCA) *Index {
	return &Index{T: t, LCA: l}
}

// CheckIfFollow reports q ∈ Follow(p) in O(1). p and q must be positions.
func (ix *Index) CheckIfFollow(p, q parsetree.NodeID) bool {
	n := ix.LCA.Query(p, q)
	return ix.viaCatAt(n, p, q) || ix.viaStarAt(n, p, q)
}

// ViaCat reports q ∈ Follow⊙(p): case (1) of Lemma 2.2.
func (ix *Index) ViaCat(p, q parsetree.NodeID) bool {
	return ix.viaCatAt(ix.LCA.Query(p, q), p, q)
}

// ViaStar reports q ∈ Follow∗(p): case (2) of Lemma 2.2.
func (ix *Index) ViaStar(p, q parsetree.NodeID) bool {
	return ix.viaStarAt(ix.LCA.Query(p, q), p, q)
}

// ViaLoop is the numeric-occurrence generalization of ViaStar: the loop may
// be any ∗ node or iteration node with Max ≥ 2 (paper §3.3). On plain
// expressions it coincides with ViaStar.
func (ix *Index) ViaLoop(p, q parsetree.NodeID) bool {
	t := ix.T
	n := ix.LCA.Query(p, q)
	s := t.PLoop[n]
	if s == parsetree.Null {
		return false
	}
	return t.InFirst(q, s) && t.InLast(p, s)
}

// CheckIfFollowLoop is CheckIfFollow with loops generalized to numeric
// iterations (used by the §3.3 pipeline).
func (ix *Index) CheckIfFollowLoop(p, q parsetree.NodeID) bool {
	n := ix.LCA.Query(p, q)
	return ix.viaCatAt(n, p, q) || func() bool {
		s := ix.T.PLoop[n]
		return s != parsetree.Null && ix.T.InFirst(q, s) && ix.T.InLast(p, s)
	}()
}

func (ix *Index) viaCatAt(n, p, q parsetree.NodeID) bool {
	t := ix.T
	if t.Op[n] != parsetree.OpCat {
		return false
	}
	return t.InFirst(q, t.RChild[n]) && t.InLast(p, t.LChild[n])
}

func (ix *Index) viaStarAt(n, p, q parsetree.NodeID) bool {
	t := ix.T
	s := t.PStar[n]
	if s == parsetree.Null {
		return false
	}
	return t.InFirst(q, s) && t.InLast(p, s)
}

// FollowSet materializes Follow(p) by testing every position; O(|Pos(e)|)
// per call. Intended for diagnostics and tests, not for matching.
func (ix *Index) FollowSet(p parsetree.NodeID) []parsetree.NodeID {
	var out []parsetree.NodeID
	for _, q := range ix.T.PosNode {
		if ix.CheckIfFollow(p, q) {
			out = append(out, q)
		}
	}
	return out
}
