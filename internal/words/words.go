// Package words samples input words for tests and benchmarks: positive
// words drawn from L(e) by random walks over the follow relation, uniform
// noise words, and near-miss mutations of accepted words.
package words

import (
	"math/rand"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

// RandomWord samples a word from L(e) by a random walk over the follow
// relation: start at #, repeatedly pick a uniformly random follower, and
// stop at $ with probability stopBias once stopping is possible. maxLen
// bounds the length; if the walk cannot reach $ within the budget it is
// retried a few times and may return ok=false for pathological expressions.
func RandomWord(r *rand.Rand, fol *follow.Index, maxLen int, stopBias float64) ([]ast.Symbol, bool) {
	t := fol.T
	end := t.EndPos()
	for attempt := 0; attempt < 8; attempt++ {
		var word []ast.Symbol
		p := t.BeginPos()
		ok := false
		// Past maxLen the walk stops at the first opportunity; the hard
		// cutoff at 2·maxLen+64 guards against languages whose accepting
		// positions are sparse.
		for len(word) <= 2*maxLen+64 {
			canStop := fol.CheckIfFollow(p, end)
			if canStop && (r.Float64() < stopBias || len(word) >= maxLen) {
				ok = true
				break
			}
			// Collect followers (excluding $).
			var succ []parsetree.NodeID
			for _, q := range t.PosNode[1 : t.NumPositions()-1] {
				if fol.CheckIfFollow(p, q) {
					succ = append(succ, q)
				}
			}
			if len(succ) == 0 {
				if canStop {
					ok = true
				}
				break
			}
			q := succ[r.Intn(len(succ))]
			word = append(word, t.Sym[q])
			p = q
		}
		if ok {
			return word, true
		}
	}
	return nil, false
}

// NoiseWord returns a uniformly random word over the user symbols actually
// occurring in t, of the given length. Most noise words are rejected by the
// expression, exercising the failure paths.
func NoiseWord(r *rand.Rand, t *parsetree.Tree, length int) []ast.Symbol {
	var syms []ast.Symbol
	seen := map[ast.Symbol]bool{}
	for i := 1; i < t.NumPositions()-1; i++ {
		s := t.Sym[t.PosNode[i]]
		if !seen[s] {
			seen[s] = true
			syms = append(syms, s)
		}
	}
	if len(syms) == 0 {
		return nil
	}
	w := make([]ast.Symbol, length)
	for i := range w {
		w[i] = syms[r.Intn(len(syms))]
	}
	return w
}

// Mutate flips, inserts or deletes a few symbols of word, producing
// near-miss inputs.
func Mutate(r *rand.Rand, t *parsetree.Tree, word []ast.Symbol, edits int) []ast.Symbol {
	out := append([]ast.Symbol(nil), word...)
	for e := 0; e < edits; e++ {
		if len(out) == 0 {
			noise := NoiseWord(r, t, 1)
			out = append(out, noise...)
			continue
		}
		i := r.Intn(len(out))
		switch r.Intn(3) {
		case 0: // substitute
			n := NoiseWord(r, t, 1)
			if len(n) > 0 {
				out[i] = n[0]
			}
		case 1: // delete
			out = append(out[:i], out[i+1:]...)
		default: // duplicate
			out = append(out[:i+1], out[i:]...)
		}
	}
	return out
}

// MixedContentWord returns a word of the given length over the first m
// mixed-content symbols (all of which are accepted by (a1+…+am)*).
func MixedContentWord(r *rand.Rand, alpha *ast.Alphabet, m, length int) []ast.Symbol {
	w := make([]ast.Symbol, length)
	for i := range w {
		w[i] = alpha.Intern(wordgen.SymbolName(r.Intn(m)))
	}
	return w
}
