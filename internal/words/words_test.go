package words

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

// RandomWord must always produce members of L(e) — it drives every matcher
// fuzz test, so its own correctness is checked against the NFA oracle.
func TestRandomWordIsInLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(801))
	produced := 0
	for trial := 0; trial < 200; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 4, MaxNodes: 40}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		oracle := glushkov.Build(tr)
		for i := 0; i < 10; i++ {
			w, ok := RandomWord(r, fol, 25, 0.3)
			if !ok {
				continue
			}
			produced++
			if !oracle.Match(w) {
				t.Fatalf("RandomWord produced non-member %v of %s", w, ast.StringMath(e, alpha))
			}
		}
	}
	if produced < 800 {
		t.Fatalf("only %d positive samples produced", produced)
	}
}

func TestNoiseWordUsesExpressionAlphabet(t *testing.T) {
	r := rand.New(rand.NewSource(809))
	alpha := ast.NewAlphabet()
	tr, err := parsetree.Build(ast.Normalize(ast.MustParseMath("(ab+c)*", alpha)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	syms := map[ast.Symbol]bool{}
	for i := 1; i < tr.NumPositions()-1; i++ {
		syms[tr.Sym[tr.PosNode[i]]] = true
	}
	w := NoiseWord(r, tr, 200)
	if len(w) != 200 {
		t.Fatalf("len = %d", len(w))
	}
	for _, s := range w {
		if !syms[s] {
			t.Fatalf("noise symbol %d outside expression alphabet", s)
		}
	}
}

func TestMutateStaysOverAlphabet(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	alpha := ast.NewAlphabet()
	tr, err := parsetree.Build(ast.Normalize(ast.MustParseMath("(ab)*c?", alpha)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	fol := follow.New(tr)
	w, ok := RandomWord(r, fol, 12, 0.3)
	if !ok {
		t.Fatal("no word")
	}
	for i := 0; i < 50; i++ {
		m := Mutate(r, tr, w, 1+r.Intn(3))
		if len(m) > len(w)+3 {
			t.Fatalf("mutation grew too much: %d vs %d", len(m), len(w))
		}
	}
}
