// Package colorancestor answers lowest colored ancestor queries: given a
// node v of the parse tree and a color a, find the lowest (reflexive)
// ancestor of v that carries color a. This is the query engine of the
// paper's §4.1 matcher (Theorem 4.2), with the Muthukrishnan–Müller bound
// (reference [23]): O(|t| + C) expected preprocessing, O(log log |t|) per
// query via van Emde Boas predecessor search.
//
// The reduction is the classical bracket trick. A single DFS counter
// assigns every node an open and a close timestamp, so each node is an
// interval and ancestorship is interval containment; the intervals are
// laminar. For a query (v, a), take the nearest color-a endpoint at or
// before open(v):
//
//   - no endpoint: no a-colored interval starts before v — no answer;
//   - an open endpoint of x: x's interval contains open(v) (its close
//     cannot lie in between, that close would be a nearer endpoint), and
//     no a-colored interval starts in between, so x is the lowest
//     a-colored ancestor;
//   - a close endpoint of x: every a-colored interval containing open(v)
//     must contain x (otherwise one of its endpoints would lie strictly
//     between), so the answer is x's precomputed lowest strict a-colored
//     ancestor.
//
// A binary-search predecessor backend is provided as the ablation baseline
// for experiment E5 (O(log n) instead of O(log log n)).
package colorancestor

import (
	"sort"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
	"dregex/internal/veb"
)

// ColoredNode declares that Node carries color Sym; Payload is an opaque
// caller value (e.g. an index into matcher candidate tables) returned by
// queries. Payloads must be non-negative.
type ColoredNode struct {
	Sym     ast.Symbol
	Node    parsetree.NodeID
	Payload int32
}

// Options selects the predecessor backend.
type Options struct {
	// BinarySearch replaces the van Emde Boas predecessor structure with
	// sort.Search over the sorted endpoint list (ablation baseline).
	BinarySearch bool
}

// Index is a prebuilt lowest-colored-ancestor structure.
type Index struct {
	t   *parsetree.Tree
	opt Options

	tin, tout  []int32            // interleaved bracket timestamps, one counter
	nodeOfTime []parsetree.NodeID // owner of each timestamp

	start     []int32 // per color: segment into the entry arrays
	entryNode []parsetree.NodeID
	payload   []int32
	parent    []int32                      // entry index of lowest strict same-color ancestor, -1
	entryIdx  []map[parsetree.NodeID]int32 // per color: node → entry index
	times     []int32                      // per color segment: sorted endpoint timestamps
	tstart    []int32                      // per color: segment into times
	vebs      []*veb.Tree                  // per color, nil under BinarySearch
}

// Build preprocesses the colored node declarations in O(|t| + C) time
// (expected, due to hash-addressed vEB clusters and per-color maps).
func Build(t *parsetree.Tree, colored []ColoredNode, opt Options) *Index {
	sigma := t.Alpha.Size()
	n := t.N()
	ix := &Index{t: t, opt: opt}

	// Interleaved bracket numbering with a single counter.
	ix.tin = make([]int32, n)
	ix.tout = make([]int32, n)
	ix.nodeOfTime = make([]parsetree.NodeID, 2*n)
	{
		clock := int32(0)
		type frame struct {
			node parsetree.NodeID
			exit bool
		}
		stack := []frame{{t.Root, false}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.exit {
				ix.tout[f.node] = clock
				ix.nodeOfTime[clock] = f.node
				clock++
				continue
			}
			ix.tin[f.node] = clock
			ix.nodeOfTime[clock] = f.node
			clock++
			stack = append(stack, frame{f.node, true})
			if c := t.RChild[f.node]; c != parsetree.Null {
				stack = append(stack, frame{c, false})
			}
			if c := t.LChild[f.node]; c != parsetree.Null {
				stack = append(stack, frame{c, false})
			}
		}
	}

	// Group entries per color, nodes sorted by id (counting sort).
	perColor := make([][]ColoredNode, sigma)
	{
		counts := make([]int32, n+1)
		for _, c := range colored {
			counts[c.Node]++
		}
		var acc int32
		offs := make([]int32, n+1)
		for i := 0; i <= n; i++ {
			offs[i] = acc
			acc += counts[i]
		}
		sorted := make([]ColoredNode, len(colored))
		for _, c := range colored {
			sorted[offs[c.Node]] = c
			offs[c.Node]++
		}
		for _, c := range sorted {
			perColor[c.Sym] = append(perColor[c.Sym], c)
		}
	}

	ix.start = make([]int32, sigma+1)
	ix.tstart = make([]int32, sigma+1)
	ix.vebs = make([]*veb.Tree, sigma)
	ix.entryIdx = make([]map[parsetree.NodeID]int32, sigma)
	for sym := 0; sym < sigma; sym++ {
		ix.start[sym] = int32(len(ix.entryNode))
		ix.tstart[sym] = int32(len(ix.times))
		base := perColor[sym]
		if len(base) == 0 {
			continue
		}
		m := make(map[parsetree.NodeID]int32, len(base))
		var vb *veb.Tree
		if !opt.BinarySearch {
			vb = veb.New(2 * n)
		}
		for _, c := range base {
			gi := int32(len(ix.entryNode))
			ix.entryNode = append(ix.entryNode, c.Node)
			ix.payload = append(ix.payload, c.Payload)
			ix.parent = append(ix.parent, -1) // filled below
			m[c.Node] = gi
			if vb != nil {
				vb.Insert(int(ix.tin[c.Node]))
				vb.Insert(int(ix.tout[c.Node]))
			}
		}
		// Endpoint list sorted by time: entries are node-sorted, and for
		// laminar same-color intervals a merge of the tin order with the
		// reversed tout order is not simply concatenable — sort instead
		// (per color; the global bound stays O(C log C) worst case, and
		// O(C) with the vEB backend driving queries).
		seg := make([]int32, 0, 2*len(base))
		for _, c := range base {
			seg = append(seg, ix.tin[c.Node], ix.tout[c.Node])
		}
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		ix.times = append(ix.times, seg...)
		ix.vebs[sym] = vb
		ix.entryIdx[sym] = m
	}
	ix.start[sigma] = int32(len(ix.entryNode))
	ix.tstart[sigma] = int32(len(ix.times))

	// Group entry indices by node (counting sort) so the parent-pointer
	// DFS touches each entry O(1) times regardless of σ.
	entStart := make([]int32, n+1)
	entList := make([]int32, len(ix.entryNode))
	{
		counts := make([]int32, n+1)
		for _, nd := range ix.entryNode {
			counts[nd]++
		}
		var acc int32
		for i := 0; i <= n; i++ {
			entStart[i] = acc
			acc += counts[i]
		}
		offs := append([]int32(nil), entStart...)
		for gi, nd := range ix.entryNode {
			entList[offs[nd]] = int32(gi)
			offs[nd]++
		}
	}

	// parent pointers: one DFS with a per-color stack of innermost colored
	// entries (save/restore on a trail).
	{
		cur := make(map[ast.Symbol]int32, 8)
		type rec struct {
			sym ast.Symbol
			old int32
			ok  bool
		}
		var trail []rec
		type frame struct {
			node  parsetree.NodeID
			exit  bool
			saved int
		}
		stack := []frame{{t.Root, false, 0}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.exit {
				for len(trail) > f.saved {
					r := trail[len(trail)-1]
					trail = trail[:len(trail)-1]
					if r.ok {
						cur[r.sym] = r.old
					} else {
						delete(cur, r.sym)
					}
				}
				continue
			}
			saved := len(trail)
			node := f.node
			for k := entStart[node]; k < entStart[node+1]; k++ {
				gi := entList[k]
				sym := ix.symOfEntry(gi)
				old, had := cur[sym]
				if had {
					ix.parent[gi] = old
				}
				trail = append(trail, rec{sym, old, had})
				cur[sym] = gi
			}
			stack = append(stack, frame{node, true, saved})
			if c := t.RChild[node]; c != parsetree.Null {
				stack = append(stack, frame{c, false, 0})
			}
			if c := t.LChild[node]; c != parsetree.Null {
				stack = append(stack, frame{c, false, 0})
			}
		}
	}
	return ix
}

// symOfEntry returns the color of a global entry index via binary search on
// the per-color segment offsets.
func (ix *Index) symOfEntry(gi int32) ast.Symbol {
	lo, hi := 0, len(ix.start)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if ix.start[mid] <= gi {
			lo = mid
		} else {
			hi = mid
		}
	}
	return ast.Symbol(lo)
}

// Query returns the payload of the lowest (reflexive) ancestor of v colored
// a, and whether one exists. O(log log |t|) with the vEB backend.
func (ix *Index) Query(v parsetree.NodeID, a ast.Symbol) (int32, bool) {
	lo, hi := ix.start[a], ix.start[a+1]
	if lo == hi {
		return -1, false
	}
	q := ix.tin[v]
	var pstar int32 = -1
	if ix.opt.BinarySearch {
		seg := ix.times[ix.tstart[a]:ix.tstart[a+1]]
		i := sort.Search(len(seg), func(i int) bool { return seg[i] > q })
		if i > 0 {
			pstar = seg[i-1]
		}
	} else {
		if p := ix.vebs[a].PredLE(int(q)); p >= 0 {
			pstar = int32(p)
		}
	}
	if pstar < 0 {
		return -1, false
	}
	x := ix.nodeOfTime[pstar]
	gi := ix.entryIdx[a][x]
	if ix.tin[x] == pstar {
		// Open endpoint: x contains v and is the lowest a-colored node
		// doing so.
		return ix.payload[gi], true
	}
	// Close endpoint: hop to x's lowest strict a-colored ancestor.
	if p := ix.parent[gi]; p >= 0 {
		return ix.payload[p], true
	}
	return -1, false
}

// SetSize returns the number of colored entries (for size accounting).
func (ix *Index) SetSize() int { return len(ix.entryNode) }
