package colorancestor

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

// naiveLowest walks parent pointers looking for the nearest node with the
// requested color.
func naiveLowest(t *parsetree.Tree, colored []ColoredNode, v parsetree.NodeID, a ast.Symbol) (int32, bool) {
	byNode := map[parsetree.NodeID]int32{}
	for _, c := range colored {
		if c.Sym == a {
			byNode[c.Node] = c.Payload
		}
	}
	for x := v; x != parsetree.Null; x = t.Parent[x] {
		if p, ok := byNode[x]; ok {
			return p, true
		}
	}
	return -1, false
}

func randomTree(t *testing.T, r *rand.Rand, nodes int) *parsetree.Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 5, MaxNodes: nodes}))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for _, binary := range []bool{false, true} {
		for trial := 0; trial < 40; trial++ {
			tr := randomTree(t, r, 80)

			// Random color assignment: colors are the alphabet symbols,
			// nodes arbitrary (the matcher only colors ⊙ nodes, but the
			// structure must not care).
			var colored []ColoredNode
			numColors := tr.Alpha.Size()
			for n := parsetree.NodeID(0); n < parsetree.NodeID(tr.N()); n++ {
				for c := 0; c < numColors; c++ {
					if r.Intn(8) == 0 {
						colored = append(colored, ColoredNode{
							Sym:     ast.Symbol(c),
							Node:    n,
							Payload: int32(len(colored)),
						})
					}
				}
			}
			ix := Build(tr, colored, Options{BinarySearch: binary})
			for q := 0; q < 500; q++ {
				v := parsetree.NodeID(r.Intn(tr.N()))
				a := ast.Symbol(r.Intn(numColors))
				got, ok := ix.Query(v, a)
				want, wok := naiveLowest(tr, colored, v, a)
				if ok != wok || (ok && got != want) {
					t.Fatalf("binary=%v Query(%d,%d) = (%d,%v), want (%d,%v)",
						binary, v, a, got, ok, want, wok)
				}
			}
		}
	}
}

func TestEmptyAndSingleColor(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	tr := randomTree(t, r, 30)

	ix := Build(tr, nil, Options{})
	if _, ok := ix.Query(tr.PosNode[0], ast.FirstUser); ok {
		t.Fatal("query on empty index succeeded")
	}
	// One colored node: the root region answers for everything below.
	colored := []ColoredNode{{Sym: ast.FirstUser, Node: tr.UserRoot, Payload: 7}}
	ix2 := Build(tr, colored, Options{})
	for n := parsetree.NodeID(0); n < parsetree.NodeID(tr.N()); n++ {
		got, ok := ix2.Query(n, ast.FirstUser)
		want, wok := naiveLowest(tr, colored, n, ast.FirstUser)
		if ok != wok || (ok && got != want) {
			t.Fatalf("Query(%d) = (%d,%v), want (%d,%v)", n, got, ok, want, wok)
		}
	}
}

func TestLargeSkewed(t *testing.T) {
	// Mixed-content tree: many symbols, all colored nodes near the root.
	alpha := ast.NewAlphabet()
	e := wordgen.MixedContent(alpha, 800)
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		t.Fatal(err)
	}

	var colored []ColoredNode
	for i := 1; i < tr.NumPositions()-1; i++ {
		p := tr.PosNode[i]
		if psf := tr.PSupFirst[p]; psf != parsetree.Null {
			colored = append(colored, ColoredNode{
				Sym:     tr.Sym[p],
				Node:    tr.Parent[psf],
				Payload: int32(i),
			})
		}
	}
	ix := Build(tr, colored, Options{})
	r := rand.New(rand.NewSource(79))
	for q := 0; q < 2000; q++ {
		v := parsetree.NodeID(r.Intn(tr.N()))
		a := tr.Sym[tr.PosNode[1+r.Intn(tr.NumPositions()-2)]]
		got, ok := ix.Query(v, a)
		want, wok := naiveLowest(tr, colored, v, a)
		if ok != wok || (ok && got != want) {
			t.Fatalf("Query(%d,%d) = (%d,%v), want (%d,%v)", v, a, got, ok, want, wok)
		}
	}
}
