package dtd

import (
	"strings"
	"testing"
)

// FuzzScanDecls checks the scanner's two safety invariants on arbitrary
// input: it never panics, and every declaration it returns is real — its
// offset points at literal "<!KEYWORD" text and its name is exactly the
// token following the keyword, so no element can be fabricated out of
// thin air. (Quote- and conditional-section semantics are locked in by the
// directed regression tests.)
func FuzzScanDecls(f *testing.F) {
	seeds := []string{
		bookDTD,
		`<!ELEMENT a (b)>
<!ATTLIST a x CDATA "a>b" y CDATA "<!ELEMENT evil (b)>">
<!ELEMENT b EMPTY>`,
		`<![IGNORE[ <!ELEMENT ghost (a)> ]]><!ELEMENT a EMPTY>`,
		`<![INCLUDE[ <!ELEMENT a EMPTY> <![IGNORE[ x ]]> ]]>`,
		`<!ENTITY % pe '<!ATTLIST y z CDATA "v">'>`,
		`<!-- <!ELEMENT fake (x)> --><?pi > ?><!NOTATION n SYSTEM "u">`,
		`<!ELEMENT m (#PCDATA | x | y)*>`,
		`<![IGNORE[`,
		`<!ELEMENT a "unclosed`,
		`<!DOCTYPE d [ <!ELEMENT d EMPTY> ]>`,
		"]]> <![ %pe; [ x ]]>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		decls, err := ScanDecls(src)
		if err != nil {
			return
		}
		for _, d := range decls {
			if d.Offset < 0 || d.Offset+2 > len(src) || !strings.HasPrefix(src[d.Offset:], "<!") {
				t.Fatalf("decl %+v: offset does not point at a declaration", d)
			}
			rest := src[d.Offset+len("<!"):]
			if d.Kind != DeclOther {
				kw := d.Kind.String()
				if !strings.HasPrefix(rest, kw) {
					t.Fatalf("decl %+v: input at offset reads %.20q, not <!%s", d, rest, kw)
				}
				rest = rest[len(kw):]
			} else {
				rest = strings.TrimLeft(rest, "ABCDEFGHIJKLMNOPQRSTUVWXYZ")
			}
			// The declared name must be the literal first token of the
			// declaration body — a name plucked from inside a quoted
			// literal or an ignored section cannot satisfy this.
			if name, _ := splitName(beforeDeclEnd(rest)); name != d.Name {
				t.Fatalf("decl %+v: first body token is %q", d, name)
			}
		}
	})
}

// beforeDeclEnd cuts a declaration body at its terminating '>' the same
// quote-aware way the scanner does, so splitName sees the same text.
func beforeDeclEnd(s string) string {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\'', '"':
			j := strings.IndexByte(s[i+1:], c)
			if j < 0 {
				return s
			}
			i += 1 + j
		case '>':
			return s[:i]
		}
	}
	return s
}
