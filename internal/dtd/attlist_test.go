package dtd

import (
	"strings"
	"testing"
)

func TestAttlistParseTypes(t *testing.T) {
	d, err := Parse(`
<!ELEMENT a EMPTY>
<!ATTLIST a
  id     ID       #REQUIRED
  ref    IDREF    #IMPLIED
  refs   IDREFS   #IMPLIED
  kind   (x | y | z) "y"
  note   NOTATION (n1|n2) #IMPLIED
  tok    NMTOKEN  #IMPLIED
  toks   NMTOKENS #IMPLIED
  ent    ENTITY   #IMPLIED
  fix    CDATA    #FIXED "v"
>`)
	if err != nil {
		t.Fatal(err)
	}
	al := d.Attlists["a"]
	if al == nil {
		t.Fatal("no attlist for a")
	}
	if len(al.Defs) != 9 {
		t.Fatalf("parsed %d defs, want 9", len(al.Defs))
	}
	want := map[string]AttType{
		"id": AttID, "ref": AttIDREF, "refs": AttIDREFS, "kind": AttEnum,
		"note": AttNotation, "tok": AttNmtoken, "toks": AttNmtokens,
		"ent": AttEntity, "fix": AttCDATA,
	}
	for name, typ := range want {
		def := al.Def(name)
		if def == nil || def.Type != typ {
			t.Errorf("attribute %s: def %+v, want type %v", name, def, typ)
		}
	}
	if def := al.Def("kind"); def.Default != AttDefaultValue || def.Value != "y" ||
		strings.Join(def.Enum, ",") != "x,y,z" {
		t.Errorf("kind: %+v", def)
	}
	if def := al.Def("fix"); def.Default != AttFixed || def.Value != "v" {
		t.Errorf("fix: %+v", def)
	}
	if len(al.required) != 1 || al.required[0].Name != "id" {
		t.Errorf("required = %v", al.required)
	}
}

func TestAttlistDuplicateMergeFirstWins(t *testing.T) {
	// The XML spec: multiple ATTLIST declarations for one element merge,
	// and the first declaration of each attribute name is binding.
	d, err := Parse(`
<!ELEMENT a EMPTY>
<!ATTLIST a x CDATA "first" y CDATA #IMPLIED>
<!ATTLIST a x ID #REQUIRED z NMTOKEN #IMPLIED>
<!ATTLIST a y ID #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	al := d.Attlists["a"]
	if len(al.Defs) != 3 {
		t.Fatalf("merged to %d defs, want 3 (x, y, z)", len(al.Defs))
	}
	if x := al.Def("x"); x.Type != AttCDATA || x.Value != "first" {
		t.Errorf("x redefined: %+v (first declaration must win)", x)
	}
	if y := al.Def("y"); y.Type != AttCDATA {
		t.Errorf("y redefined: %+v", y)
	}
	if z := al.Def("z"); z == nil || z.Type != AttNmtoken {
		t.Errorf("z from second ATTLIST missing: %+v", z)
	}
	// The losing redefinition of x was ID #REQUIRED; it must have left no
	// trace in the required list or the ID slot.
	if len(al.required) != 0 || al.idAttr != nil {
		t.Errorf("ignored redefinition leaked: required=%v id=%v", al.required, al.idAttr)
	}
}

func TestAttlistXMLSpace(t *testing.T) {
	if _, err := Parse(`<!ELEMENT a EMPTY>
<!ATTLIST a xml:space (default|preserve) "preserve">`); err != nil {
		t.Errorf("valid xml:space rejected: %v", err)
	}
	if _, err := Parse(`<!ELEMENT a EMPTY>
<!ATTLIST a xml:space (preserve) #IMPLIED>`); err != nil {
		t.Errorf("single-value xml:space rejected: %v", err)
	}
	for _, bad := range []string{
		`<!ATTLIST a xml:space CDATA #IMPLIED>`,
		`<!ATTLIST a xml:space (default|verbatim) #IMPLIED>`,
	} {
		if _, err := Parse(`<!ELEMENT a EMPTY>` + "\n" + bad); err == nil ||
			!strings.Contains(err.Error(), "xml:space") {
			t.Errorf("%s: err = %v, want xml:space constraint", bad, err)
		}
	}
}

func TestAttlistValidityConstraints(t *testing.T) {
	cases := []struct{ name, dtd, frag string }{
		{"second ID", `<!ATTLIST a i ID #IMPLIED j ID #IMPLIED>`, "one ID attribute"},
		{"ID with default", `<!ATTLIST a i ID "x">`, "#IMPLIED or #REQUIRED"},
		{"bad NMTOKEN default", `<!ATTLIST a t NMTOKEN "two words">`, "not a valid name token"},
		{"default outside enum", `<!ATTLIST a k (x|y) "z">`, "not in enumeration"},
		{"duplicate enum token", `<!ATTLIST a k (x|y|x) #IMPLIED>`, "duplicate enumeration token"},
		{"missing default", `<!ATTLIST a x CDATA>`, "missing default"},
		{"unknown type", `<!ATTLIST a x BOGUS #IMPLIED>`, "unknown type"},
	}
	for _, c := range cases {
		_, err := Parse(`<!ELEMENT a EMPTY>` + "\n" + c.dtd)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.frag)
		}
	}
}

func TestAttlistParameterEntitySkipped(t *testing.T) {
	// A PE reference hides the declaration's real content; the whole
	// ATTLIST is skipped rather than misparsed (PEs are not expanded).
	d, err := Parse(`
<!ENTITY % common "x CDATA #IMPLIED">
<!ELEMENT a EMPTY>
<!ATTLIST a %common;>
<!ATTLIST %els; y CDATA #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	if al := d.Attlists["a"]; al != nil {
		t.Errorf("PE-bearing ATTLIST parsed anyway: %+v", al)
	}
}

func TestAttrValidation(t *testing.T) {
	d, err := Parse(`
<!ELEMENT r (a*)>
<!ELEMENT a (#PCDATA)>
<!ATTLIST a
  id   ID      #IMPLIED
  ref  IDREF   #IMPLIED
  refs IDREFS  #IMPLIED
  kind (x|y)   #IMPLIED
  fix  CDATA   #FIXED "f"
  req  CDATA   #REQUIRED
>
<!ATTLIST r dflt IDREF "a1">`)
	if err != nil {
		t.Fatal(err)
	}
	check := func(doc string, frags ...string) {
		t.Helper()
		errs := validateString(t, d, doc)
		if len(errs) != len(frags) {
			t.Fatalf("doc %s\n got %d errors %v, want %d", doc, len(errs), errs, len(frags))
		}
		for i, frag := range frags {
			if !strings.Contains(errs[i].Error(), frag) {
				t.Errorf("error %d = %v, want %q", i, errs[i], frag)
			}
		}
	}
	// Forward IDREF: the reference precedes the ID declaring element.
	check(`<r><a req="1" ref="later"/><a req="1" id="later"/><a req="1" id="a1"/></r>`)
	// Defaulted IDREF on <r> references a1; absent → still resolved.
	check(`<r><a req="1" id="a1" refs=" a1  a1 "/></r>`)
	check(`<r><a req="1" id="a1" ref="ghost"/></r>`, `IDREF "ghost" matches no ID`)
	check(`<r><a req="1"/></r>`, `IDREF "a1" matches no ID`) // the default on r
	check(`<r><a req="1" id="d" id2="x"/></r>`,
		"attribute id2 not declared", `IDREF "a1" matches no ID`)
	check(`<r><a req="1" kind="z" id="a1"/></r>`, `value "z" not in enumeration (x|y)`)
	check(`<r><a req="1" fix="g" id="a1"/></r>`, `does not match #FIXED value "f"`)
	check(`<r><a id="a1"/></r>`, "required attribute req missing")
	check(`<r><a req="1" id="not a name"/></r>`,
		`value "not a name" is not a valid XML name`, `IDREF "a1" matches no ID`)
	// xmlns declarations are exempt from ATTLIST validation.
	check(`<r xmlns="u" xmlns:p="v"><a req="1" id="a1"/></r>`)
}

func TestAttrErrorPositions(t *testing.T) {
	d, err := Parse(`
<!ELEMENT r (a*)>
<!ELEMENT a EMPTY>
<!ATTLIST a id ID #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	doc := "<r>\n  <a id=\"k\"/>\n  <a id=\"k\"/>\n  <a bogus=\"1\"/>\n</r>"
	errs := validateString(t, d, doc)
	if len(errs) != 2 {
		t.Fatalf("errs = %v, want duplicate-ID and undeclared-attribute", errs)
	}
	dup, und := errs[0], errs[1]
	if !strings.Contains(dup.Msg, `ID "k" already used`) || dup.Line != 3 || dup.Col != 6 {
		t.Errorf("duplicate ID at %d:%d (%q), want 3:6", dup.Line, dup.Col, dup.Msg)
	}
	if !strings.Contains(und.Msg, "bogus not declared") || und.Line != 4 || und.Col != 6 {
		t.Errorf("undeclared attribute at %d:%d (%q), want 4:6", und.Line, und.Col, und.Msg)
	}
}
