package dtd

import (
	"strings"
	"testing"

	"dregex/internal/match"
)

const bookDTD = `
<!-- a small publishing DTD -->
<!ELEMENT book (title, author+, chapter+, appendix*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT chapter (title, (para | figure)*)>
<!ELEMENT appendix (title, para*)>
<!ELEMENT para (#PCDATA | em | code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT code EMPTY>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ELEMENT figure EMPTY>
`

func TestParseAndCheck(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 9 {
		t.Fatalf("parsed %d elements, want 9", len(d.Elements))
	}
	if issues := d.Check(); len(issues) != 0 {
		t.Fatalf("clean DTD reported issues: %v", issues)
	}
	book := d.Elements["book"]
	if book.Kind != Children || !book.Deterministic {
		t.Errorf("book: kind=%v det=%v", book.Kind, book.Deterministic)
	}
	para := d.Elements["para"]
	if para.Kind != Mixed || !para.allowed["em"] || para.allowed["b"] {
		t.Errorf("para mixed model wrong: %+v", para)
	}
	if code := d.Elements["code"]; code.Kind != Empty {
		t.Errorf("code: kind=%v", code.Kind)
	}
	refs := book.References()
	if strings.Join(refs, " ") != "appendix author chapter title" {
		t.Errorf("book references = %v", refs)
	}
}

func TestNondeterministicModels(t *testing.T) {
	d, err := Parse(`
<!ELEMENT a ((b, c) | (b, d))>
<!ELEMENT m (#PCDATA | x | y | x)*>
<!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>
<!ELEMENT x EMPTY><!ELEMENT y EMPTY>
`)
	if err != nil {
		t.Fatal(err)
	}
	issues := d.Check()
	var aFound, mFound bool
	for _, is := range issues {
		if is.Element == "a" {
			aFound = true
		}
		if is.Element == "m" {
			mFound = true
		}
	}
	if !aFound {
		t.Error("(b,c)|(b,d) not reported as nondeterministic")
	}
	if !mFound {
		t.Error("duplicate mixed name not reported")
	}
}

func TestUndeclaredReference(t *testing.T) {
	d, err := Parse(`<!ELEMENT r (s, t?)><!ELEMENT s EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	issues := d.Check()
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, `"t"`) {
		t.Fatalf("issues = %v", issues)
	}
}

func validateString(t *testing.T, d *DTD, doc string) []ValidationError {
	t.Helper()
	errs, err := d.Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return errs
}

func TestValidateDocuments(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	good := `<book isbn="i1">
  <title>T</title>
  <author>A</author><author>B</author>
  <chapter><title>C1</title><para>text <em>emph</em> more</para><figure/></chapter>
  <appendix><title>Ap</title></appendix>
</book>`
	if errs := validateString(t, d, good); len(errs) != 0 {
		t.Fatalf("valid document rejected: %v", errs)
	}

	cases := []struct {
		name string
		doc  string
		frag string // expected substring of the first error
	}{
		{"missing author", `<book isbn="i1"><title>T</title><chapter><title>c</title></chapter></book>`,
			"violates content model"},
		{"premature end", `<book isbn="i1"><title>T</title><author>A</author></book>`,
			"end prematurely"},
		{"undeclared child", `<book isbn="i1"><title>T</title><author>A</author><chapter><title>c</title><mystery/></chapter></book>`,
			"not declared"},
		{"empty with child", `<book isbn="i1"><title>T</title><author>A</author><chapter><title>c</title><figure><em>x</em></figure></chapter></book>`,
			"EMPTY element has child"},
		{"text in children model", `<book isbn="i1">stray<title>T</title><author>A</author><chapter><title>c</title></chapter></book>`,
			"text content not allowed"},
		{"mixed violation", `<book isbn="i1"><title>T</title><author>A</author><chapter><title>c</title><para><figure/></para></chapter></book>`,
			"not allowed in mixed model"},
	}
	for _, c := range cases {
		errs := validateString(t, d, c.doc)
		if len(errs) == 0 {
			t.Errorf("%s: no errors reported", c.name)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: errors %v lack %q", c.name, errs, c.frag)
		}
	}
}

func TestValidateMalformedXML(t *testing.T) {
	d, err := Parse(`<!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Validate(strings.NewReader("<a><unclosed></a>")); err == nil {
		t.Error("malformed XML not reported")
	}
}

func TestParseNoPhantomDeclarations(t *testing.T) {
	// Regression: with the old quote-blind scanner this parsed as
	// [a evil b] — the '>' inside "a>b" ended the ATTLIST early and the
	// <!ELEMENT text inside the second default value became a declaration.
	d, err := Parse(`<!ELEMENT a (b)>
<!ATTLIST a x CDATA "a>b" y CDATA "<!ELEMENT evil (b)>">
<!ELEMENT b EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(d.Order, " "); got != "a b" {
		t.Fatalf("Order = [%s], want [a b]", got)
	}
	if _, ok := d.Elements["evil"]; ok {
		t.Fatal("phantom element 'evil' fabricated from quoted text")
	}
}

func TestParseIgnoreSection(t *testing.T) {
	// Regression: <!ELEMENT ghost …> inside <![IGNORE[ … ]]> must not be
	// declared; nested sections are skipped whole, and INCLUDE contents
	// are processed as if written at top level.
	d, err := Parse(`<!ELEMENT a (b?)>
<![IGNORE[
  <!ELEMENT ghost (b, c)>
  <![INCLUDE[ <!ELEMENT ghost2 EMPTY> ]]>
]]>
<![INCLUDE[ <!ELEMENT b EMPTY> ]]>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(d.Order, " "); got != "a b" {
		t.Fatalf("Order = [%s], want [a b]", got)
	}
	if _, ok := d.Elements["ghost"]; ok {
		t.Fatal("IGNORE'd element 'ghost' declared")
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("<!ELEMENT a (b)>\n<!ELEMENT bad (c | )>\n<!ELEMENT b EMPTY>")
	if err == nil || !strings.Contains(err.Error(), "2:1") {
		t.Errorf("compile error lacks declaration position: %v", err)
	}
	_, err = Parse("<!ELEMENT a EMPTY>\n\n<!ELEMENT a EMPTY>")
	if err == nil || !strings.Contains(err.Error(), "3:1") {
		t.Errorf("duplicate error lacks position: %v", err)
	}
}

func TestElementOffsets(t *testing.T) {
	src := "<!-- c -->\n<!ELEMENT a (b*)>\n<!ELEMENT b EMPTY>"
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range d.Order {
		off := d.Elements[name].Offset
		if !strings.HasPrefix(src[off:], "<!ELEMENT") {
			t.Errorf("element %q Offset %d does not point at its declaration", name, off)
		}
	}
}

func TestValidateDoctypeRootMismatch(t *testing.T) {
	d, err := Parse(`<!ELEMENT a EMPTY><!ELEMENT b EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	errs := validateString(t, d, `<!DOCTYPE a><b/>`)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "does not match DOCTYPE a") {
		t.Fatalf("errs = %v, want DOCTYPE mismatch", errs)
	}
	if errs := validateString(t, d, `<!DOCTYPE a><a/>`); len(errs) != 0 {
		t.Fatalf("matching DOCTYPE rejected: %v", errs)
	}
	if errs := validateString(t, d, `<a/>`); len(errs) != 0 {
		t.Fatalf("document without DOCTYPE rejected: %v", errs)
	}
	// A prefixed DOCTYPE name compares by its local part, like every other
	// element name in the validator.
	if errs := validateString(t, d, `<!DOCTYPE x:a><x:a xmlns:x="u"/>`); len(errs) != 0 {
		t.Fatalf("prefixed DOCTYPE root rejected: %v", errs)
	}
}

func TestInternalSubset(t *testing.T) {
	doc := []byte(`<?xml version="1.0"?>
<!DOCTYPE note [
  <!ELEMENT note (to, body?)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
  <!ATTLIST note id CDATA "x]y">
]>
<note><to>T</to></note>`)
	root, subset, err := InternalSubset(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root != "note" {
		t.Errorf("root = %q, want note", root)
	}
	if !strings.Contains(subset, "<!ELEMENT note") || !strings.Contains(subset, `"x]y"`) {
		t.Errorf("subset truncated: %q", subset)
	}

	d, err := DocumentDTD(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(d.Order, " "); got != "note to body" {
		t.Fatalf("Order = [%s]", got)
	}
	if errs := validateString(t, d, string(doc)); len(errs) != 0 {
		t.Fatalf("standalone document invalid against its own subset: %v", errs)
	}

	if _, _, err := InternalSubset([]byte(`<a/>`)); err == nil {
		t.Error("missing DOCTYPE not reported")
	}
	if _, err := DocumentDTD([]byte(`<!DOCTYPE a SYSTEM "a.dtd"><a/>`), nil); err == nil {
		t.Error("DOCTYPE without internal subset not reported")
	}
}

// TestChildrenPathZeroAlloc pins the acceptance criterion: in steady state
// the children-model matching path — stream init, one feed per child,
// acceptance check — allocates nothing, so corpus validation cost is XML
// decoding plus O(1)-state transitions.
func TestChildrenPathZeroAlloc(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	book := d.Elements["book"]
	children := []string{"title", "author", "author", "chapter", "appendix"}
	var s match.Stream
	allocs := testing.AllocsPerRun(1000, func() {
		book.matcher.InitStream(&s)
		for _, c := range children {
			s.FeedName(c)
		}
		if !s.Accepts() {
			t.Fatal("valid children rejected")
		}
	})
	if allocs != 0 {
		t.Errorf("children-model path allocates %.1f/doc, want 0", allocs)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<!ELEMENT>",
		"<!ELEMENT a (b",
		"<!ELEMENT a (#PCDATA | )*>",
		"<!ELEMENT a (x | #PCDATA)*>",
		"<!ELEMENT a (b{2,3})>",
		"<!ELEMENT a EMPTY><!ELEMENT a EMPTY>",
		"<!-- unterminated",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}
