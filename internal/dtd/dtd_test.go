package dtd

import (
	"strings"
	"testing"
)

const bookDTD = `
<!-- a small publishing DTD -->
<!ELEMENT book (title, author+, chapter+, appendix*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT chapter (title, (para | figure)*)>
<!ELEMENT appendix (title, para*)>
<!ELEMENT para (#PCDATA | em | code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT code EMPTY>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ELEMENT figure EMPTY>
`

func TestParseAndCheck(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 9 {
		t.Fatalf("parsed %d elements, want 9", len(d.Elements))
	}
	if issues := d.Check(); len(issues) != 0 {
		t.Fatalf("clean DTD reported issues: %v", issues)
	}
	book := d.Elements["book"]
	if book.Kind != Children || !book.Deterministic {
		t.Errorf("book: kind=%v det=%v", book.Kind, book.Deterministic)
	}
	para := d.Elements["para"]
	if para.Kind != Mixed || !para.allowed["em"] || para.allowed["b"] {
		t.Errorf("para mixed model wrong: %+v", para)
	}
	if code := d.Elements["code"]; code.Kind != Empty {
		t.Errorf("code: kind=%v", code.Kind)
	}
	refs := book.References()
	if strings.Join(refs, " ") != "appendix author chapter title" {
		t.Errorf("book references = %v", refs)
	}
}

func TestNondeterministicModels(t *testing.T) {
	d, err := Parse(`
<!ELEMENT a ((b, c) | (b, d))>
<!ELEMENT m (#PCDATA | x | y | x)*>
<!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>
<!ELEMENT x EMPTY><!ELEMENT y EMPTY>
`)
	if err != nil {
		t.Fatal(err)
	}
	issues := d.Check()
	var aFound, mFound bool
	for _, is := range issues {
		if is.Element == "a" {
			aFound = true
		}
		if is.Element == "m" {
			mFound = true
		}
	}
	if !aFound {
		t.Error("(b,c)|(b,d) not reported as nondeterministic")
	}
	if !mFound {
		t.Error("duplicate mixed name not reported")
	}
}

func TestUndeclaredReference(t *testing.T) {
	d, err := Parse(`<!ELEMENT r (s, t?)><!ELEMENT s EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	issues := d.Check()
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, `"t"`) {
		t.Fatalf("issues = %v", issues)
	}
}

func validateString(t *testing.T, d *DTD, doc string) []ValidationError {
	t.Helper()
	errs, err := d.Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return errs
}

func TestValidateDocuments(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	good := `<book>
  <title>T</title>
  <author>A</author><author>B</author>
  <chapter><title>C1</title><para>text <em>emph</em> more</para><figure/></chapter>
  <appendix><title>Ap</title></appendix>
</book>`
	if errs := validateString(t, d, good); len(errs) != 0 {
		t.Fatalf("valid document rejected: %v", errs)
	}

	cases := []struct {
		name string
		doc  string
		frag string // expected substring of the first error
	}{
		{"missing author", `<book><title>T</title><chapter><title>c</title></chapter></book>`,
			"violates content model"},
		{"premature end", `<book><title>T</title><author>A</author></book>`,
			"end prematurely"},
		{"undeclared child", `<book><title>T</title><author>A</author><chapter><title>c</title><mystery/></chapter></book>`,
			"not declared"},
		{"empty with child", `<book><title>T</title><author>A</author><chapter><title>c</title><figure><em>x</em></figure></chapter></book>`,
			"EMPTY element has child"},
		{"text in children model", `<book>stray<title>T</title><author>A</author><chapter><title>c</title></chapter></book>`,
			"text content not allowed"},
		{"mixed violation", `<book><title>T</title><author>A</author><chapter><title>c</title><para><figure/></para></chapter></book>`,
			"not allowed in mixed model"},
	}
	for _, c := range cases {
		errs := validateString(t, d, c.doc)
		if len(errs) == 0 {
			t.Errorf("%s: no errors reported", c.name)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: errors %v lack %q", c.name, errs, c.frag)
		}
	}
}

func TestValidateMalformedXML(t *testing.T) {
	d, err := Parse(`<!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Validate(strings.NewReader("<a><unclosed></a>")); err == nil {
		t.Error("malformed XML not reported")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<!ELEMENT>",
		"<!ELEMENT a (b",
		"<!ELEMENT a (#PCDATA | )*>",
		"<!ELEMENT a (x | #PCDATA)*>",
		"<!ELEMENT a (b{2,3})>",
		"<!ELEMENT a EMPTY><!ELEMENT a EMPTY>",
		"<!-- unterminated",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}
