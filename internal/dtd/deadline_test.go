package dtd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dregex/internal/run"
)

// wideDTD / wideDoc build a document with far more than one checkpoint
// stride of tokens, so an armed deadline is guaranteed to be probed
// mid-stream.
const wideDTD = `<!ELEMENT r (c)*><!ELEMENT c EMPTY>`

func wideDoc(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		b.WriteString("<c/>")
	}
	b.WriteString("</r>")
	return b.String()
}

func TestValidateDeadline(t *testing.T) {
	d, err := Parse(wideDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc := wideDoc(4000)
	var st DocState

	// Disarmed (zero DocState): the wide document validates clean.
	if errs, err := d.ValidateBytesReusing([]byte(doc), &st); err != nil || len(errs) != 0 {
		t.Fatalf("disarmed: errs=%v err=%v", errs, err)
	}

	// An expired deadline aborts mid-stream with the classifiable sentinel.
	st.SetDeadline(nil, time.Now().Add(-time.Second))
	if _, err := d.ValidateBytesReusing([]byte(doc), &st); !errors.Is(err, run.ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want run.ErrDeadlineExceeded", err)
	}

	// A closed cancellation channel aborts with ErrCanceled.
	done := make(chan struct{})
	close(done)
	st.SetDeadline(done, time.Time{})
	if _, err := d.ValidateBytesReusing([]byte(doc), &st); !errors.Is(err, run.ErrCanceled) {
		t.Fatalf("closed done: err = %v, want run.ErrCanceled", err)
	}

	// Re-disarming restores normal validation on the same reused state.
	st.SetDeadline(nil, time.Time{})
	if errs, err := d.ValidateBytesReusing([]byte(doc), &st); err != nil || len(errs) != 0 {
		t.Fatalf("re-disarmed: errs=%v err=%v", errs, err)
	}

	// A live channel plus a generous deadline never fires.
	st.SetDeadline(make(chan struct{}), time.Now().Add(time.Hour))
	if errs, err := d.ValidateBytesReusing([]byte(doc), &st); err != nil || len(errs) != 0 {
		t.Fatalf("armed-but-live: errs=%v err=%v", errs, err)
	}
}

// TestValidateDeadlineAllocs extends the 0-alloc acceptance criterion to
// armed checkpoints: validating with cancellation armed allocates exactly
// as much as validating disarmed (zero, in steady state, for the byte
// path), so deadline support costs the hot path nothing.
func TestValidateDeadlineAllocs(t *testing.T) {
	d, err := Parse(wideDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(wideDoc(4000))
	var st DocState
	if _, err := d.ValidateBytesReusing(doc, &st); err != nil {
		t.Fatal(err)
	}
	measure := func() float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := d.ValidateBytesReusing(doc, &st); err != nil {
				t.Fatal(err)
			}
		})
	}
	disarmed := measure()
	st.SetDeadline(make(chan struct{}), time.Now().Add(time.Hour))
	armed := measure()
	if disarmed != 0 || armed != 0 {
		t.Errorf("allocs/doc: disarmed=%.2f armed=%.2f, want 0 and 0", disarmed, armed)
	}
}
