package dtd

import (
	"errors"
	"fmt"
	"strings"
)

// AttType classifies an attribute type per the XML specification's
// AttType production: StringType (CDATA), the tokenized types, and the
// enumerated types (NOTATION and plain enumerations).
type AttType int

// Attribute types.
const (
	AttCDATA AttType = iota
	AttID
	AttIDREF
	AttIDREFS
	AttEntity
	AttEntities
	AttNmtoken
	AttNmtokens
	AttNotation
	AttEnum
)

func (t AttType) String() string {
	switch t {
	case AttCDATA:
		return "CDATA"
	case AttID:
		return "ID"
	case AttIDREF:
		return "IDREF"
	case AttIDREFS:
		return "IDREFS"
	case AttEntity:
		return "ENTITY"
	case AttEntities:
		return "ENTITIES"
	case AttNmtoken:
		return "NMTOKEN"
	case AttNmtokens:
		return "NMTOKENS"
	case AttNotation:
		return "NOTATION"
	case AttEnum:
		return "enumeration"
	}
	return fmt.Sprintf("AttType(%d)", int(t))
}

// AttDefault classifies an attribute's DefaultDecl.
type AttDefault int

// Default declarations.
const (
	// AttImplied is #IMPLIED: the attribute may be absent.
	AttImplied AttDefault = iota
	// AttRequired is #REQUIRED: the attribute must appear.
	AttRequired
	// AttFixed is #FIXED "v": if present, the value must equal v.
	AttFixed
	// AttDefaultValue is a plain default: "v" with no keyword.
	AttDefaultValue
)

// AttDef is one attribute definition from an <!ATTLIST> declaration.
type AttDef struct {
	Name    string
	Type    AttType
	Default AttDefault
	// Value is the default or #FIXED value (raw literal text; entity
	// references inside it are not expanded).
	Value string
	// Enum lists the tokens of an enumerated or NOTATION type, in
	// declaration order.
	Enum []string

	enum map[string]bool
}

// AttList is the merged attribute list of one element type. Per the XML
// spec, multiple <!ATTLIST> declarations for the same element merge, and
// the first definition of each attribute name is binding.
type AttList struct {
	Element string
	// Defs preserves first-binding declaration order.
	Defs []*AttDef

	byName   map[string]*AttDef
	required []*AttDef
	idAttr   *AttDef
	// refDefaults are IDREF/IDREFS definitions with a default value: when
	// such an attribute is absent, the default still references IDs and
	// must resolve (precomputed so the common no-defaults case costs
	// nothing per element).
	refDefaults []*AttDef
}

// Def returns the definition of the named attribute, or nil.
func (al *AttList) Def(name string) *AttDef { return al.byName[name] }

// defBytes is Def for a name straight out of the tokenizer; the map probe
// does not allocate.
func (al *AttList) defBytes(name []byte) *AttDef { return al.byName[string(name)] }

// errSkipPE marks an attlist body that uses a parameter-entity reference.
// PEs are not expanded (see the package comment), so such a declaration is
// skipped whole rather than misparsed.
var errSkipPE = errors.New("parameter entity reference")

// addAttlist merges one <!ATTLIST> declaration into d.Attlists, enforcing
// the spec's per-definition validity constraints (one ID attribute per
// element, ID defaults, xml:space enumeration, token syntax of defaults).
func (d *DTD) addAttlist(src string, decl Decl) error {
	if decl.Name == "" {
		return posErr(src, decl.Offset, "malformed attribute-list declaration <!ATTLIST>")
	}
	if strings.HasPrefix(decl.Name, "%") {
		return nil // element name hidden behind a PE reference: invisible
	}
	defs, err := parseAttDefs(decl.Body)
	if err == errSkipPE {
		return nil
	}
	if err != nil {
		return posErr(src, decl.Offset, "attlist %s: %s", decl.Name, err)
	}
	al := d.Attlists[decl.Name]
	if al == nil {
		if d.Attlists == nil {
			d.Attlists = map[string]*AttList{}
		}
		al = &AttList{Element: decl.Name, byName: map[string]*AttDef{}}
		d.Attlists[decl.Name] = al
	}
	for _, def := range defs {
		if _, dup := al.byName[def.Name]; dup {
			continue // first declaration of an attribute name is binding
		}
		if msg := al.checkDef(def); msg != "" {
			return posErr(src, decl.Offset, "attlist %s: %s", decl.Name, msg)
		}
		al.Defs = append(al.Defs, def)
		al.byName[def.Name] = def
		if def.Type == AttID {
			al.idAttr = def
		}
		if def.Default == AttRequired {
			al.required = append(al.required, def)
		}
		if (def.Default == AttFixed || def.Default == AttDefaultValue) &&
			(def.Type == AttIDREF || def.Type == AttIDREFS) {
			al.refDefaults = append(al.refDefaults, def)
		}
	}
	return nil
}

// checkDef enforces the per-definition validity constraints before def
// joins the list; it returns "" when def is admissible.
func (al *AttList) checkDef(def *AttDef) string {
	if def.Type == AttID {
		if al.idAttr != nil {
			return fmt.Sprintf("attribute %s: element already has ID attribute %s (one ID attribute per element type)",
				def.Name, al.idAttr.Name)
		}
		if def.Default == AttFixed || def.Default == AttDefaultValue {
			return fmt.Sprintf("attribute %s: an ID attribute must be #IMPLIED or #REQUIRED", def.Name)
		}
	}
	if def.Name == "xml:space" {
		ok := def.Type == AttEnum && len(def.Enum) > 0
		if ok {
			for _, v := range def.Enum {
				if v != "default" && v != "preserve" {
					ok = false
				}
			}
		}
		if !ok {
			return "attribute xml:space must be an enumeration of default and/or preserve"
		}
	}
	// A declared default must itself satisfy the attribute's type. Values
	// carrying references are left to the document ('&' cannot be seen
	// through without expansion).
	if (def.Default == AttFixed || def.Default == AttDefaultValue) &&
		!strings.ContainsRune(def.Value, '&') {
		if msg := def.checkValue([]byte(def.Value)); msg != "" {
			return fmt.Sprintf("attribute %s: default %s", def.Name, msg)
		}
	}
	return ""
}

// checkValue reports a violation of the definition's type or #FIXED
// constraint by an attribute value from a document, or "" when the value
// conforms. ID uniqueness and IDREF resolution are document-wide and
// handled by the validator, not here.
func (def *AttDef) checkValue(v []byte) string {
	switch def.Type {
	case AttCDATA:
		// any character data
	case AttID, AttIDREF, AttEntity:
		if !validName(attTrim(v)) {
			return fmt.Sprintf("value %q is not a valid XML name", v)
		}
	case AttIDREFS, AttEntities:
		if !eachField(v, validName) {
			return fmt.Sprintf("value %q is not a space-separated list of XML names", v)
		}
	case AttNmtoken:
		if !validNmtoken(attTrim(v)) {
			return fmt.Sprintf("value %q is not a valid name token", v)
		}
	case AttNmtokens:
		if !eachField(v, validNmtoken) {
			return fmt.Sprintf("value %q is not a space-separated list of name tokens", v)
		}
	case AttEnum, AttNotation:
		if !def.enum[string(attTrim(v))] {
			return fmt.Sprintf("value %q not in enumeration (%s)", v, strings.Join(def.Enum, "|"))
		}
	}
	if def.Default == AttFixed && string(v) != def.Value {
		return fmt.Sprintf("value %q does not match #FIXED value %q", v, def.Value)
	}
	return ""
}

// attScan is a cursor over an ATTLIST body (everything after the element
// name). The scanner already guarantees balanced quoting at the
// declaration level.
type attScan struct {
	s string
	i int
}

func (p *attScan) skipSpace() {
	for p.i < len(p.s) && isSpace(p.s[p.i]) {
		p.i++
	}
}

func (p *attScan) eof() bool { return p.i >= len(p.s) }

func (p *attScan) peek() byte {
	if p.eof() {
		return 0
	}
	return p.s[p.i]
}

// word reads a run of token characters (anything but whitespace, quotes
// and the enumeration punctuation). A '%' opening the token is a
// parameter-entity reference and aborts the declaration via errSkipPE.
func (p *attScan) word() (string, error) {
	if p.peek() == '%' {
		return "", errSkipPE
	}
	start := p.i
	for p.i < len(p.s) {
		c := p.s[p.i]
		if isSpace(c) || c == '\'' || c == '"' || c == '(' || c == ')' || c == '|' {
			break
		}
		p.i++
	}
	if p.i == start {
		return "", fmt.Errorf("unexpected %q in attribute definition", p.peek())
	}
	return p.s[start:p.i], nil
}

// quoted reads a 'literal' or "literal".
func (p *attScan) quoted() (string, error) {
	q := p.peek()
	if q != '\'' && q != '"' {
		return "", errors.New("expected quoted value")
	}
	p.i++
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != q {
		p.i++
	}
	if p.eof() {
		return "", fmt.Errorf("unterminated %c literal", q)
	}
	v := p.s[start:p.i]
	p.i++
	return v, nil
}

// enumList reads "(tok | tok | …)". Tokens must be distinct (the spec's
// No Duplicate Tokens validity constraint) and each must satisfy check.
func (p *attScan) enumList(attr string, check func([]byte) bool, kind string) ([]string, map[string]bool, error) {
	if p.peek() != '(' {
		return nil, nil, fmt.Errorf("attribute %s: expected ( to open an enumeration", attr)
	}
	p.i++
	var toks []string
	set := map[string]bool{}
	for {
		p.skipSpace()
		tok, err := p.word()
		if err != nil {
			return nil, nil, err
		}
		if !check([]byte(tok)) {
			return nil, nil, fmt.Errorf("attribute %s: enumeration token %q is not a valid %s", attr, tok, kind)
		}
		if set[tok] {
			return nil, nil, fmt.Errorf("attribute %s: duplicate enumeration token %q", attr, tok)
		}
		set[tok] = true
		toks = append(toks, tok)
		p.skipSpace()
		switch p.peek() {
		case '|':
			p.i++
		case ')':
			p.i++
			return toks, set, nil
		default:
			return nil, nil, fmt.Errorf("attribute %s: malformed enumeration", attr)
		}
	}
}

// parseAttDefs parses the AttDef* tail of an <!ATTLIST element …>
// declaration: name type default, repeated.
func parseAttDefs(body string) ([]*AttDef, error) {
	p := &attScan{s: body}
	var defs []*AttDef
	for {
		p.skipSpace()
		if p.eof() {
			return defs, nil
		}
		name, err := p.word()
		if err != nil {
			return nil, err
		}
		if !validName([]byte(name)) {
			return nil, fmt.Errorf("invalid attribute name %q", name)
		}
		def := &AttDef{Name: name}
		p.skipSpace()
		if p.peek() == '(' {
			def.Type = AttEnum
			def.Enum, def.enum, err = p.enumList(name, validNmtoken, "name token")
			if err != nil {
				return nil, err
			}
		} else {
			kw, err := p.word()
			if err != nil {
				return nil, err
			}
			switch kw {
			case "CDATA":
				def.Type = AttCDATA
			case "ID":
				def.Type = AttID
			case "IDREF":
				def.Type = AttIDREF
			case "IDREFS":
				def.Type = AttIDREFS
			case "ENTITY":
				def.Type = AttEntity
			case "ENTITIES":
				def.Type = AttEntities
			case "NMTOKEN":
				def.Type = AttNmtoken
			case "NMTOKENS":
				def.Type = AttNmtokens
			case "NOTATION":
				def.Type = AttNotation
				p.skipSpace()
				def.Enum, def.enum, err = p.enumList(name, validName, "XML name")
				if err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("attribute %s: unknown type %q", name, kw)
			}
		}
		p.skipSpace()
		switch c := p.peek(); {
		case c == '#':
			kw, err := p.word()
			if err != nil {
				return nil, err
			}
			switch kw {
			case "#REQUIRED":
				def.Default = AttRequired
			case "#IMPLIED":
				def.Default = AttImplied
			case "#FIXED":
				p.skipSpace()
				v, err := p.quoted()
				if err != nil {
					return nil, fmt.Errorf("attribute %s: %s", name, err)
				}
				def.Default = AttFixed
				def.Value = v
			default:
				return nil, fmt.Errorf("attribute %s: unknown default keyword %q", name, kw)
			}
		case c == '\'' || c == '"':
			v, err := p.quoted()
			if err != nil {
				return nil, fmt.Errorf("attribute %s: %s", name, err)
			}
			def.Default = AttDefaultValue
			def.Value = v
		default:
			return nil, fmt.Errorf("attribute %s: missing default declaration", name)
		}
		defs = append(defs, def)
	}
}

// nameChar marks the bytes admissible inside an XML Name or Nmtoken. Like
// the tokenizer, every byte ≥ 0x80 is accepted — multi-byte characters are
// not re-validated against the Unicode name tables (the tokenizer has
// already checked they are legal XML characters).
var nameChar = func() (t [256]bool) {
	for c := 'a'; c <= 'z'; c++ {
		t[c] = true
	}
	for c := 'A'; c <= 'Z'; c++ {
		t[c] = true
	}
	for c := '0'; c <= '9'; c++ {
		t[c] = true
	}
	t['.'], t['-'], t['_'], t[':'] = true, true, true, true
	for c := 0x80; c < 256; c++ {
		t[c] = true
	}
	return
}()

// validName reports whether s is an XML Name: a name-start character
// (letter, '_' or ':') followed by name characters.
func validName(s []byte) bool {
	if len(s) == 0 {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || c >= 0x80) {
		return false
	}
	for _, c := range s[1:] {
		if !nameChar[c] {
			return false
		}
	}
	return true
}

// validNmtoken reports whether s is an XML Nmtoken: one or more name
// characters.
func validNmtoken(s []byte) bool {
	if len(s) == 0 {
		return false
	}
	for _, c := range s {
		if !nameChar[c] {
			return false
		}
	}
	return true
}

// attTrim strips surrounding XML whitespace from an attribute value; the
// result aliases v.
func attTrim(v []byte) []byte {
	lo, hi := 0, len(v)
	for lo < hi && isSpace(v[lo]) {
		lo++
	}
	for hi > lo && isSpace(v[hi-1]) {
		hi--
	}
	return v[lo:hi]
}

// eachField applies check to every whitespace-separated field of v and
// reports whether all passed and at least one field was present.
func eachField(v []byte, check func([]byte) bool) bool {
	n, i := 0, 0
	for i < len(v) {
		for i < len(v) && isSpace(v[i]) {
			i++
		}
		j := i
		for j < len(v) && !isSpace(v[j]) {
			j++
		}
		if j > i {
			if !check(v[i:j]) {
				return false
			}
			n++
		}
		i = j
	}
	return n > 0
}
