// Declaration scanner: the tokenizer under Parse. It walks DTD text
// declaration by declaration the way an XML processor does — tracking
// quoted literals, comments, processing instructions and conditional
// sections structurally — so a '>' or '<!' inside an attribute default or
// entity value can never terminate or fabricate a declaration, and an
// IGNORE'd section is skipped by bracket matching, not by luck of the
// first '>'.
package dtd

import (
	"bytes"
	"fmt"
	"strings"
)

// DeclKind classifies a markup declaration recognized by the scanner.
type DeclKind int

// Markup declaration kinds.
const (
	// DeclElement is <!ELEMENT name model>.
	DeclElement DeclKind = iota
	// DeclAttlist is <!ATTLIST name attdefs>.
	DeclAttlist
	// DeclEntity is <!ENTITY name value> (or a parameter entity).
	DeclEntity
	// DeclNotation is <!NOTATION name id>.
	DeclNotation
	// DeclOther is any other <!KEYWORD …> declaration; Parse skips these.
	DeclOther
)

func (k DeclKind) String() string {
	switch k {
	case DeclElement:
		return "ELEMENT"
	case DeclAttlist:
		return "ATTLIST"
	case DeclEntity:
		return "ENTITY"
	case DeclNotation:
		return "NOTATION"
	case DeclOther:
		return "OTHER"
	}
	return fmt.Sprintf("DeclKind(%d)", int(k))
}

// Decl is one markup declaration as tokenized from DTD text.
type Decl struct {
	Kind DeclKind
	// Name is the declared name: the first token after the keyword ("%x"
	// for a parameter entity); empty when the declaration has no body.
	Name string
	// Body is the declaration text after the name, trimmed.
	Body string
	// Offset is the byte offset of the declaration's "<!" in the scanned
	// text (see LineCol for human-readable positions).
	Offset int
}

// ScanDecls tokenizes DTD text (an external or internal subset) into
// markup declarations. Quoted literals ('…' or "…"), comments, processing
// instructions and <![INCLUDE[…]]> / <![IGNORE[…]]> conditional sections
// (including nested ones) are handled structurally. INCLUDE contents are
// scanned as if written at top level; IGNORE contents are skipped whole.
// Parameter entities are not expanded: a PE keyword in a conditional
// section ("<![%draft;[") is an error, and PE references elsewhere pass
// through as ordinary text.
func ScanDecls(src string) ([]Decl, error) {
	src = StripBOM(src)
	var decls []Decl
	err := scanDecls(src, func(d Decl) error {
		decls = append(decls, d)
		return nil
	})
	return decls, err
}

// bom is the UTF-8 byte-order mark. Real-world DTD and XML files commonly
// start with one; the scanner must not count its bytes as column positions
// (a declaration at the start of a BOM-prefixed file is at 1:1, not 1:4),
// and byte-level prolog scans must not let it hide "<?xml" or "<!DOCTYPE".
const bom = "\uFEFF"

// StripBOM removes a leading UTF-8 byte-order mark, so declaration offsets
// (and the LineCol positions derived from them) are relative to the text an
// author sees. Parse and ScanDecls apply it internally; callers that keep
// their own copy of the source for position reporting (dtdlint's line
// cursor) must strip it too, or every offset after the BOM lands three
// bytes early in their copy.
func StripBOM(src string) string {
	return strings.TrimPrefix(src, bom)
}

// StripBOMBytes is StripBOM for byte slices (documents and schema files
// read from disk or a request body); it is the one place the BOM policy
// lives for every byte-level prolog consumer (InternalSubset, the XSD
// schema decoder).
func StripBOMBytes(b []byte) []byte {
	return bytes.TrimPrefix(b, []byte(bom))
}

// scanDecls is the streaming core of ScanDecls: emit is called once per
// declaration, in document order, and may stop the scan by returning an
// error.
func scanDecls(src string, emit func(Decl) error) error {
	pos := 0
	// includeStack holds the offsets of open <![INCLUDE[ sections so an
	// unterminated one is reported where it started.
	var includeStack []int
	for pos < len(src) {
		rest := src[pos:]
		switch {
		case len(includeStack) > 0 && strings.HasPrefix(rest, "]]>"):
			includeStack = includeStack[:len(includeStack)-1]
			pos += 3
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest[4:], "-->")
			if end < 0 {
				return posErr(src, pos, "unterminated comment")
			}
			pos += 4 + end + 3
		case strings.HasPrefix(rest, "<?"):
			end := strings.Index(rest[2:], "?>")
			if end < 0 {
				return posErr(src, pos, "unterminated processing instruction")
			}
			pos += 2 + end + 2
		case strings.HasPrefix(rest, "<!["):
			next, include, err := scanConditional(src, pos)
			if err != nil {
				return err
			}
			if include {
				includeStack = append(includeStack, pos)
			}
			pos = next
		case strings.HasPrefix(rest, "<!"):
			d, next, err := scanMarkupDecl(src, pos)
			if err != nil {
				return err
			}
			pos = next
			if err := emit(d); err != nil {
				return err
			}
		default:
			// Stray text between declarations (whitespace, PE references,
			// junk) is skipped byte by byte, as the old front end did.
			pos++
		}
	}
	if len(includeStack) > 0 {
		return posErr(src, includeStack[len(includeStack)-1], "unterminated INCLUDE section")
	}
	return nil
}

// scanConditional handles "<![KEYWORD[": for INCLUDE it returns the offset
// just past the opening '[' (contents are scanned by the caller until the
// matching "]]>"); for IGNORE it skips the whole section — tracking nested
// "<![" / "]]>" pairs as the XML spec requires — and returns the offset
// past its "]]>".
func scanConditional(src string, start int) (next int, include bool, err error) {
	i := start + len("<![")
	for i < len(src) && isSpace(src[i]) {
		i++
	}
	kw := i
	for i < len(src) && src[i] != '[' && !isSpace(src[i]) {
		i++
	}
	keyword := src[kw:i]
	for i < len(src) && isSpace(src[i]) {
		i++
	}
	if i >= len(src) || src[i] != '[' {
		return 0, false, posErr(src, start, "malformed conditional section <![%s", keyword)
	}
	i++ // past '['
	switch {
	case keyword == "INCLUDE":
		return i, true, nil
	case keyword == "IGNORE":
		depth := 1
		for i < len(src) {
			switch {
			case strings.HasPrefix(src[i:], "<!["):
				depth++
				i += 3
			case strings.HasPrefix(src[i:], "]]>"):
				depth--
				i += 3
				if depth == 0 {
					return i, false, nil
				}
			default:
				i++
			}
		}
		return 0, false, posErr(src, start, "unterminated IGNORE section")
	case strings.HasPrefix(keyword, "%"):
		return 0, false, posErr(src, start,
			"conditional section keyword %s: parameter entities are not expanded", keyword)
	default:
		return 0, false, posErr(src, start, "unknown conditional section keyword %q", keyword)
	}
}

// scanMarkupDecl tokenizes one "<!KEYWORD …>" declaration starting at
// start, honoring quoted literals: a '>' inside '…' or "…" (an attribute
// default, an entity value) does not terminate the declaration, and a '<'
// outside a literal is malformed rather than silently swallowed.
func scanMarkupDecl(src string, start int) (Decl, int, error) {
	i := start + len("<!")
	kw := i
	for i < len(src) && src[i] >= 'A' && src[i] <= 'Z' {
		i++
	}
	keyword := src[kw:i]
	var kind DeclKind
	switch keyword {
	case "ELEMENT":
		kind = DeclElement
	case "ATTLIST":
		kind = DeclAttlist
	case "ENTITY":
		kind = DeclEntity
	case "NOTATION":
		kind = DeclNotation
	default:
		kind = DeclOther
	}
	bodyStart := i
	for i < len(src) {
		switch c := src[i]; c {
		case '\'', '"':
			q := i
			i++
			for i < len(src) && src[i] != c {
				i++
			}
			if i >= len(src) {
				return Decl{}, 0, posErr(src, q, "unterminated %c literal in <!%s", c, keyword)
			}
			i++ // closing quote
		case '>':
			d := Decl{Kind: kind, Offset: start}
			d.Name, d.Body = splitName(src[bodyStart:i])
			return d, i + 1, nil
		case '<':
			return Decl{}, 0, posErr(src, i, "'<' inside <!%s declaration (missing '>'?)", keyword)
		default:
			i++
		}
	}
	return Decl{}, 0, posErr(src, start, "unterminated <!%s declaration", keyword)
}

// splitName splits a declaration body into its declared name and the rest.
// The name ends at whitespace or at '(' (so "<!ELEMENT a(b)>" still names
// a); a leading '%' joins the following token, naming a parameter entity.
func splitName(body string) (name, rest string) {
	body = strings.TrimSpace(body)
	if strings.HasPrefix(body, "%") {
		pe, r := splitName(body[1:])
		return "%" + pe, r
	}
	i := 0
	for i < len(body) && !isSpace(body[i]) && body[i] != '(' {
		i++
	}
	return body[:i], strings.TrimSpace(body[i:])
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// LineCol converts a byte offset in src (e.g. Decl.Offset) to a 1-based
// line and column.
func LineCol(src string, off int) (line, col int) {
	if off > len(src) {
		off = len(src)
	}
	line = 1 + strings.Count(src[:off], "\n")
	col = off - strings.LastIndexByte(src[:off], '\n')
	return line, col
}

// posErr formats a scan/parse error with a precise line:column position.
func posErr(src string, off int, format string, args ...any) error {
	line, col := LineCol(src, off)
	return fmt.Errorf("dtd: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}
