// Validator: corpus-scale concurrent validation. One DTD's compiled
// content models (and their lazily built engines) are shared by every
// worker — engines are immutable after construction and engine builds are
// guarded by sync.Once — while all per-document state lives in a
// per-worker docState whose frame stack (with its value match.Streams) is
// reused from document to document. Steady state is therefore race-clean
// and allocation-free on the matching path: validating the next document
// costs XML decoding plus O(1)-state stream feeding, nothing else.
package dtd

import (
	"os"
	"runtime"

	"dregex"
	"dregex/internal/pool"
)

// Validator validates many documents concurrently against one DTD (or,
// in standalone mode, against each document's own internal DTD subset).
// A Validator is safe for concurrent use and may be reused.
type Validator struct {
	d       *DTD
	cache   *dregex.Cache
	workers int
}

// NewValidator returns a pool validating against d with the given number
// of workers (≤ 0 selects GOMAXPROCS).
func NewValidator(d *DTD, workers int) *Validator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Validator{d: d, workers: workers}
}

// NewStandaloneValidator returns a pool that validates each document
// against the internal DTD subset of its own DOCTYPE. Content models
// compile through cache (nil selects the shared package cache), so models
// repeated across the corpus — the common case in the wild — compile once
// however many documents carry them.
func NewStandaloneValidator(cache *dregex.Cache, workers int) *Validator {
	if cache == nil {
		cache = defaultCache
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Validator{cache: cache, workers: workers}
}

// Doc is one in-memory document to validate.
type Doc struct {
	Name string
	Data []byte
}

// Result is the validation outcome for one document.
type Result struct {
	Name string
	// Errors are the DTD violations found; empty for a valid document.
	Errors []ValidationError
	// Err is a document-level failure: unreadable file, malformed XML, or
	// (standalone mode) a missing or unparsable internal subset.
	Err error
}

// Valid reports whether the document was read, parsed and validated with
// no violations.
func (r Result) Valid() bool { return r.Err == nil && len(r.Errors) == 0 }

// ValidateDocs validates in-memory documents concurrently; results[i]
// corresponds to docs[i].
func (v *Validator) ValidateDocs(docs []Doc) []Result {
	results := make([]Result, len(docs))
	v.run(len(docs), func(i int, st *docState) {
		results[i] = v.validateOne(docs[i].Name, docs[i].Data, st)
	})
	return results
}

// ValidateFiles reads and validates the named files concurrently (file
// I/O happens on the workers too); results[i] corresponds to paths[i].
// With a fixed DTD each document streams straight from its open file —
// O(decoder-buffer) memory however large the file; only standalone mode
// buffers documents (the prolog is read for DocumentDTD, then the same
// bytes are validated).
func (v *Validator) ValidateFiles(paths []string) []Result {
	results := make([]Result, len(paths))
	v.run(len(paths), func(i int, st *docState) {
		results[i] = v.validateFile(paths[i], st)
	})
	return results
}

func (v *Validator) validateFile(path string, st *docState) Result {
	if v.d == nil {
		data, err := os.ReadFile(path)
		if err != nil {
			return Result{Name: path, Err: err}
		}
		return v.validateOne(path, data, st)
	}
	f, err := os.Open(path)
	if err != nil {
		return Result{Name: path, Err: err}
	}
	defer f.Close()
	errs, err := v.d.validate(f, st)
	return Result{Name: path, Errors: errs, Err: err}
}

// run distributes n jobs over the worker pool, handing each worker its own
// reusable docState.
func (v *Validator) run(n int, job func(i int, st *docState)) {
	pool.RunWithStates(n, v.workers, func(st *docState, i int) {
		job(i, st)
	})
}

func (v *Validator) validateOne(name string, data []byte, st *docState) Result {
	d := v.d
	if d == nil {
		var err error
		d, err = DocumentDTD(data, v.cache)
		if err != nil {
			return Result{Name: name, Err: err}
		}
	}
	errs, err := d.validateBytes(data, st)
	return Result{Name: name, Errors: errs, Err: err}
}
