// Package dtd applies the paper's algorithms to their motivating domain:
// XML DTD content models. It parses <!ELEMENT …> declarations, checks every
// content model for determinism (the well-formedness requirement that XML
// inherits from SGML, §1 of the paper), and validates documents by matching
// each element's child sequence against its content model with a streaming
// transition simulator. Validator runs that pipeline over whole corpora
// concurrently.
//
// The front end is a real declaration tokenizer (ScanDecls): quoted
// literals, comments, processing instructions and INCLUDE/IGNORE
// conditional sections (nested ones too) are handled structurally, so a
// '>' or '<!' inside an attribute default or entity value can never
// terminate or fabricate a declaration. Supported DTD subset: ELEMENT
// declarations are compiled; ATTLIST declarations are compiled into
// attribute lists (types, defaults, enumerations — see attlist.go) and
// enforced during validation, including document-wide ID uniqueness and
// IDREF/IDREFS resolution; internal general ENTITY declarations with
// text-only values are collected into DTD.Entities for reference
// resolution during validation; NOTATION and all other ENTITY forms
// (parameter, external, unparsed, markup-bearing values) are tokenized
// and skipped; INCLUDE sections are processed, IGNORE sections skipped
// whole. Parameter entities are not expanded — declarations hidden behind
// PE references are invisible (an ATTLIST body using one is skipped
// whole), and a PE conditional-section keyword is an error.
//
// Mixed content (#PCDATA | a | b)* is handled by the specialized
// linear-time procedure the paper attributes to Xerces: determinism of a
// mixed model is just distinctness of the listed names, and validation is
// set membership.
//
// Content models compile through a dregex.Cache (a shared package default,
// or one supplied to ParseWithCache), so the heavy O(|e|) preprocessing
// and engine construction are amortized across declarations, documents and
// DTDs: validating a corpus against schemas that reuse content models —
// the common case in the wild — compiles each distinct model exactly once.
package dtd

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dregex"
	"dregex/internal/match"
	"dregex/internal/run"
	"dregex/internal/xmltok"
)

// ContentKind classifies an element declaration.
type ContentKind int

// Content model kinds per the XML specification.
const (
	// Empty is <!ELEMENT x EMPTY>: no children, no text.
	Empty ContentKind = iota
	// Any is <!ELEMENT x ANY>.
	Any
	// Mixed is <!ELEMENT x (#PCDATA | a | …)*>: text plus listed elements
	// in any order.
	Mixed
	// Children is a regular content model over element names.
	Children
)

func (k ContentKind) String() string {
	switch k {
	case Empty:
		return "EMPTY"
	case Any:
		return "ANY"
	case Mixed:
		return "mixed"
	case Children:
		return "children"
	}
	return fmt.Sprintf("ContentKind(%d)", int(k))
}

// Element is one compiled element declaration.
type Element struct {
	Name  string
	Kind  ContentKind
	Model string // the raw content model text
	// Offset is the byte offset of the declaration's "<!" in the parsed
	// source (see LineCol).
	Offset int

	// Children models: CM is the compiled content model, shared through
	// the DTD's expression cache (identical models across declarations —
	// or across DTDs parsed with the same cache — compile once and share
	// their lazily built engines).
	CM *dregex.Expr
	// Deterministic reports the §3 linear test verdict; Rule names the
	// violated condition for nondeterministic models.
	Deterministic bool
	Rule          string
	matcher       *dregex.Matcher

	// Mixed models:
	allowed map[string]bool
	// DupName is the repeated name making a mixed model nondeterministic.
	DupName string
}

// DTD is a set of compiled element declarations.
type DTD struct {
	Elements map[string]*Element
	// Order preserves declaration order for deterministic reporting.
	Order []string
	// Attlists maps element names to their merged attribute lists (nil
	// when the DTD declares none); see attlist.go.
	Attlists map[string]*AttList
	// Entities maps internal general entities (<!ENTITY foo "bar">) to
	// their replacement text; Validate wires it into the XML decoder so
	// documents referencing their own entities are not rejected as
	// malformed. Parameter entities and external (SYSTEM/PUBLIC) or
	// unparsed (NDATA) entities are out of scope and skipped.
	Entities map[string]string

	cache *dregex.Cache
	// subset is the internal-subset text this DTD was parsed from
	// (DocumentDTD sets it; empty for external DTDs), letting validate
	// skip re-scanning a document's DOCTYPE whose subset is the very text
	// Entities already came from — the standalone-mode common case.
	subset string
}

// defaultCache backs Parse: content models repeat heavily across schema
// corpora, so even unrelated Parse calls amortize compilation.
var defaultCache = dregex.NewCache(4096)

// Parse reads <!ELEMENT …> and <!ATTLIST …> declarations from DTD text,
// compiling content models through a shared package-level expression
// cache. ENTITY and NOTATION declarations, comments, processing
// instructions and IGNORE'd conditional sections are skipped
// (structurally — see ScanDecls); INCLUDE sections are processed. Errors
// carry line:column positions.
func Parse(src string) (*DTD, error) {
	return ParseWithCache(src, defaultCache)
}

// ParseWithCache is Parse compiling content models through an explicit
// cache (one per validator pool, say, to bound memory independently).
func ParseWithCache(src string, cache *dregex.Cache) (*DTD, error) {
	src = StripBOM(src)
	d := &DTD{Elements: map[string]*Element{}, Entities: map[string]string{}}
	d.cache = cache
	err := scanDecls(src, func(decl Decl) error {
		switch decl.Kind {
		case DeclElement:
			return d.addElement(src, decl)
		case DeclAttlist:
			return d.addAttlist(src, decl)
		case DeclEntity:
			addEntity(d.Entities, decl)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(d.Elements) == 0 {
		return nil, errors.New("dtd: no <!ELEMENT> declarations found")
	}
	return d, nil
}

func (d *DTD) addElement(src string, decl Decl) error {
	if decl.Name == "" || decl.Body == "" {
		return posErr(src, decl.Offset, "malformed element declaration <!ELEMENT %s", decl.Name)
	}
	if _, dup := d.Elements[decl.Name]; dup {
		return posErr(src, decl.Offset, "element %q declared twice", decl.Name)
	}
	el, err := compileElement(decl.Name, decl.Body, d.cache)
	if err != nil {
		return posErr(src, decl.Offset, "%s", strings.TrimPrefix(err.Error(), "dtd: "))
	}
	el.Offset = decl.Offset
	d.Elements[decl.Name] = el
	d.Order = append(d.Order, decl.Name)
	return nil
}

// addEntity records an internal general-entity declaration in ents.
// Parameter entities ("%name"), external entities (SYSTEM/PUBLIC ids) and
// unparsed entities are skipped: only declarations whose body is a quoted
// literal define replacement text a validator can substitute. Per the XML
// spec, the first declaration of a name is binding.
//
// Values containing markup ('<') are also skipped: encoding/xml inserts
// Entity replacement text verbatim as character data without re-parsing
// it, so substituting "<b>x</b>" would mutate the element structure into
// a wrong validation verdict. Skipped entities fall back to the previous
// behavior — a reference to one is a diagnosable malformed-XML error —
// which is strictly safer than validating the wrong tree.
func addEntity(ents map[string]string, decl Decl) {
	if decl.Name == "" || strings.HasPrefix(decl.Name, "%") {
		return
	}
	body := strings.TrimSpace(decl.Body)
	if len(body) < 2 || (body[0] != '\'' && body[0] != '"') {
		return // SYSTEM/PUBLIC external entity (or malformed): skipped
	}
	q := body[0]
	end := strings.IndexByte(body[1:], q)
	if end < 0 {
		return // unterminated literal: the scanner would have errored first
	}
	value := body[1 : 1+end]
	if strings.IndexByte(value, '<') >= 0 {
		return // markup-bearing value: substitution would corrupt structure
	}
	if _, dup := ents[decl.Name]; dup {
		return
	}
	ents[decl.Name] = value
}

// entitiesSubsumed reports whether every entity in ents is already present
// in base with the same value — in which case a validator can keep using
// base as the decoder's entity map instead of allocating a merged copy.
func entitiesSubsumed(ents, base map[string]string) bool {
	for k, v := range ents {
		if bv, ok := base[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// EntitiesFromDoctype extracts internal general-entity declarations from a
// DOCTYPE directive (the text between "<!" and ">", as encoding/xml
// delivers it). It is best-effort — a malformed subset yields whatever was
// declared before the damage — and returns nil when the directive carries
// no internal subset or declares no usable entities. Both validators (DTD
// and XSD) use it so documents may reference entities declared in their
// own prolog.
func EntitiesFromDoctype(directive string) map[string]string {
	_, subset, err := splitDoctype(strings.TrimSpace(directive))
	if err != nil || strings.TrimSpace(subset) == "" {
		return nil
	}
	return entitiesFromSubset(subset)
}

// entitiesFromSubset scans an internal subset for general-entity
// declarations (nil when there are none).
func entitiesFromSubset(subset string) map[string]string {
	var ents map[string]string
	scanDecls(subset, func(decl Decl) error {
		if decl.Kind == DeclEntity {
			if ents == nil {
				ents = map[string]string{}
			}
			addEntity(ents, decl)
		}
		return nil
	})
	if len(ents) == 0 {
		return nil
	}
	return ents
}

// docEntities resolves the decoder entity map for a document whose prolog
// carries the given DOCTYPE directive: nil means "keep d.Entities". The
// subset is tokenized only when it is not the very text d was parsed from
// (standalone mode re-reads its own document; that path does no scanning
// and no allocation) and only merged when it actually adds or overrides
// something.
func (d *DTD) docEntities(directive string) map[string]string {
	_, subset, err := splitDoctype(strings.TrimSpace(directive))
	if err != nil || strings.TrimSpace(subset) == "" || subset == d.subset {
		return nil
	}
	ents := entitiesFromSubset(subset)
	if entitiesSubsumed(ents, d.Entities) {
		return nil
	}
	// Per the XML spec the internal subset is processed first, so its
	// declarations take precedence; merge into a fresh map — d.Entities
	// is shared across concurrent validations.
	merged := make(map[string]string, len(d.Entities)+len(ents))
	for k, v := range d.Entities {
		merged[k] = v
	}
	for k, v := range ents {
		merged[k] = v
	}
	return merged
}

func compileElement(name, model string, cache *dregex.Cache) (*Element, error) {
	el := &Element{Name: name, Model: model}
	switch {
	case model == "EMPTY":
		el.Kind = Empty
		el.Deterministic = true
		return el, nil
	case model == "ANY":
		el.Kind = Any
		el.Deterministic = true
		return el, nil
	case strings.Contains(model, "#PCDATA"):
		return compileMixed(el, model)
	default:
		return compileChildren(el, model, cache)
	}
}

// compileMixed handles (#PCDATA) and (#PCDATA | a | b)* — the case the
// paper's §1 notes Xerces special-cases with a linear procedure: the model
// is deterministic iff the listed names are distinct.
func compileMixed(el *Element, model string) (*Element, error) {
	el.Kind = Mixed
	inner := strings.TrimSpace(model)
	inner = strings.TrimSuffix(inner, "*")
	inner = strings.TrimSpace(inner)
	if !strings.HasPrefix(inner, "(") || !strings.HasSuffix(inner, ")") {
		return nil, fmt.Errorf("dtd: element %s: malformed mixed model %q", el.Name, model)
	}
	parts := strings.Split(inner[1:len(inner)-1], "|")
	if strings.TrimSpace(parts[0]) != "#PCDATA" {
		return nil, fmt.Errorf("dtd: element %s: mixed model must start with #PCDATA", el.Name)
	}
	if len(parts) > 1 && !strings.HasSuffix(strings.TrimSpace(model), "*") {
		return nil, fmt.Errorf("dtd: element %s: mixed model with names needs a trailing *", el.Name)
	}
	el.allowed = map[string]bool{}
	el.Deterministic = true
	for _, p := range parts[1:] {
		n := strings.TrimSpace(p)
		if n == "" {
			return nil, fmt.Errorf("dtd: element %s: empty name in mixed model", el.Name)
		}
		if el.allowed[n] {
			// Duplicate name: (a1+…+am)* with a repeat — nondeterministic.
			el.Deterministic = false
			el.Rule = "mixed-duplicate"
			el.DupName = n
		}
		el.allowed[n] = true
	}
	return el, nil
}

func compileChildren(el *Element, model string, cache *dregex.Cache) (*Element, error) {
	el.Kind = Children
	cm, err := cache.Get(model, dregex.DTD)
	if err != nil {
		if errors.Is(err, dregex.ErrNumericIndicator) {
			return nil, fmt.Errorf("dtd: element %s: numeric bounds are XML-Schema only; use package numeric", el.Name)
		}
		return nil, fmt.Errorf("dtd: element %s: %w", el.Name, err)
	}
	el.CM = cm
	el.Deterministic = cm.IsDeterministic()
	el.Rule = cm.Rule()
	if el.Deterministic {
		// Content models are shallow, so Auto resolves to the cheap
		// engines the paper recommends for them (k ≤ 2 → k-ORE, small
		// c_e → path decomposition). The matcher is shared: every
		// element — in any DTD compiled through the same cache — with
		// this model reuses one simulator.
		m, err := cm.Matcher(dregex.Auto)
		if err != nil {
			// k-ORE construction cannot fail on a deterministic model;
			// keep validating even if the preferred engine cannot build.
			m, err = cm.Matcher(dregex.KORE)
			if err != nil {
				return nil, fmt.Errorf("dtd: element %s: %w", el.Name, err)
			}
		}
		el.matcher = m
	}
	return el, nil
}

// Issue is a lint finding about a declaration.
type Issue struct {
	Element string
	Msg     string
}

// Check lints all declarations: nondeterministic content models (fatal for
// XML processors) and references to undeclared elements (warnings).
func (d *DTD) Check() []Issue {
	var issues []Issue
	for _, name := range d.Order {
		el := d.Elements[name]
		if !el.Deterministic {
			switch el.Kind {
			case Mixed:
				issues = append(issues, Issue{name,
					fmt.Sprintf("mixed model repeats %q", el.DupName)})
			default:
				issues = append(issues, Issue{name,
					fmt.Sprintf("content model %s is nondeterministic (%s)", el.Model, el.Rule)})
			}
		}
		for _, ref := range el.References() {
			if _, ok := d.Elements[ref]; !ok {
				issues = append(issues, Issue{name,
					fmt.Sprintf("references undeclared element %q", ref)})
			}
		}
	}
	return issues
}

// References returns the element names used by this declaration.
func (el *Element) References() []string {
	var out []string
	switch el.Kind {
	case Mixed:
		out = make([]string, 0, len(el.allowed))
		for n := range el.allowed {
			out = append(out, n)
		}
	case Children:
		out = el.CM.Symbols()
	}
	sort.Strings(out)
	return out
}

// Stats exposes the content model's structural parameters (k, c_e, …);
// the zero Stats for non-Children kinds.
func (el *Element) Stats() dregex.Stats {
	if el.Kind != Children {
		return dregex.Stats{}
	}
	return el.CM.Stats()
}

// ValidationError describes one violation found while validating a
// document.
type ValidationError struct {
	Path    string `json:"path"` // slash-separated element path
	Element string `json:"element"`
	Msg     string `json:"msg"`
	// Line and Col locate the violation in the document (1-based; columns
	// count runes). Zero when no position is available.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Expected lists the element names that would have been legal at the
	// failure point (content-model violations only): the run.Runner
	// ExpectedNext set of the element's streaming matcher.
	Expected []string `json:"expected,omitempty"`
}

func (e ValidationError) Error() string {
	msg := e.Msg
	if len(e.Expected) > 0 {
		msg = fmt.Sprintf("%s (expected one of: %s)", msg, strings.Join(e.Expected, ", "))
	}
	if e.Line > 0 {
		return fmt.Sprintf("%d:%d: %s: <%s>: %s", e.Line, e.Col, e.Path, e.Element, msg)
	}
	return fmt.Sprintf("%s: <%s>: %s", e.Path, e.Element, msg)
}

// frame is the per-open-element state of a validation pass. The name
// aliases the document buffer — no per-element string is materialized.
type frame struct {
	el     *Element
	name   []byte
	stream match.Stream // value: per-frame, no allocation
	failed bool
}

// pendingRef is one IDREF occurrence awaiting document-end resolution
// (IDs may be declared after the references pointing at them). The value
// lives in docState.refArena — attribute values can sit in tokenizer
// scratch that the next token invalidates — and elem aliases the document
// buffer.
type pendingRef struct {
	lo, hi int // value span in refArena
	off    int // byte offset of the referencing attribute
	elem   []byte
}

// maxKeepBuf caps the document buffer a reused docState retains between
// documents, so one huge outlier does not pin its memory forever.
const maxKeepBuf = 1 << 20

// docState is the reusable scratch of one validation pass. A zero value is
// ready; reusing one across documents (one per Validator worker) keeps the
// element stack, the tokenizer's internal buffers and the read buffer, so
// steady-state validation performs no per-document allocation.
type docState struct {
	stack []frame
	tok   xmltok.Tokenizer
	// buf holds the whole document when validating from an io.Reader.
	buf []byte
	// ids collects the document's ID attribute values; refs/refArena the
	// IDREF occurrences to resolve once the document has been read.
	ids      map[string]struct{}
	refs     []pendingRef
	refArena []byte
	// symbols and docBytes meter the last validation for observability:
	// content-model symbols fed to streaming engines, and tokenized
	// document bytes. Plain ints — bumping them costs nothing on the
	// 0-alloc hot path; callers aggregate them into shared counters.
	symbols  int
	docBytes int
	// cp is the cooperative cancellation point probed once per token; it
	// stays disarmed (one branch per token) unless SetDeadline armed it.
	cp run.Checkpoint
}

func (st *docState) addRef(val []byte, off int, elem []byte) {
	lo := len(st.refArena)
	st.refArena = append(st.refArena, val...)
	st.refs = append(st.refs, pendingRef{lo, len(st.refArena), off, elem})
}

func (st *docState) addRefString(val string, off int, elem []byte) {
	lo := len(st.refArena)
	st.refArena = append(st.refArena, val...)
	st.refs = append(st.refs, pendingRef{lo, len(st.refArena), off, elem})
}

// Validate checks an XML document against the DTD: every element must be
// declared, its children sequence must match its content model (evaluated
// with a streaming simulator — one pass, no buffering of child lists),
// text content must be allowed, and attributes must conform to the
// element's <!ATTLIST> declarations (types, required/fixed constraints,
// document-wide ID uniqueness and IDREF resolution). When the document
// carries a <!DOCTYPE> declaration, the root element must match its name.
// It returns all violations found, or nil.
func (d *DTD) Validate(r io.Reader) ([]ValidationError, error) {
	var st docState
	return d.validate(r, &st)
}

// ValidateBytes is Validate on an in-memory document, skipping the read.
func (d *DTD) ValidateBytes(doc []byte) ([]ValidationError, error) {
	var st docState
	return d.validateBytes(doc, &st)
}

// DocState is the reusable per-worker scratch of a validation pass, for
// long-running callers outside the package (the dregexd server pools these
// per schema). A zero value is ready; see docState for the reuse contract.
type DocState struct{ st docState }

// ValidateReusing is Validate with caller-managed scratch: reusing one
// DocState across documents keeps every internal buffer — element stack,
// tokenizer scratch, read buffer — so steady-state validation performs no
// per-document allocation. A DocState must not be used concurrently.
func (d *DTD) ValidateReusing(r io.Reader, st *DocState) ([]ValidationError, error) {
	return d.validate(r, &st.st)
}

// ValidateBytesReusing is ValidateBytes with caller-managed scratch.
func (d *DTD) ValidateBytesReusing(doc []byte, st *DocState) ([]ValidationError, error) {
	return d.validateBytes(doc, &st.st)
}

// Symbols reports how many content-model symbols (child elements fed to
// the streaming engines) the last validation through this DocState
// consumed — the |w| of the paper's O(|e| + |w|·f) bound, for live
// ns-per-symbol estimates.
func (st *DocState) Symbols() int { return st.st.symbols }

// DocBytes reports the size of the last document validated through this
// DocState (the bytes the tokenizer scanned).
func (st *DocState) DocBytes() int { return st.st.docBytes }

// SetDeadline arms cooperative cancellation for subsequent validations
// through this DocState: the token loop aborts with an error satisfying
// errors.Is(err, run.ErrCanceled) once done closes, or
// run.ErrDeadlineExceeded once the absolute deadline passes. Both zero
// arguments disarm, which is also the zero DocState's behavior — the
// disarmed per-token cost is a single branch, so the 0-alloc validation
// path is undisturbed. The arming persists across documents until the
// next SetDeadline, so per-request callers must re-arm (or disarm) each
// time they check a state out of a pool.
func (st *DocState) SetDeadline(done <-chan struct{}, deadline time.Time) {
	st.st.cp.Arm(done, deadline)
}

func (d *DTD) validate(r io.Reader, st *docState) ([]ValidationError, error) {
	data, err := xmltok.ReadAll(r, st.buf)
	st.buf = data
	if err != nil {
		return nil, fmt.Errorf("dtd: read: %w", err)
	}
	errs, verr := d.validateBytes(data, st)
	if cap(st.buf) > maxKeepBuf {
		st.buf = nil
	}
	return errs, verr
}

func (d *DTD) validateBytes(data []byte, st *docState) ([]ValidationError, error) {
	tok := &st.tok
	tok.Reset(data)
	// Internal general entities declared by the DTD resolve during
	// tokenization; predefined entities (&lt; &amp; …) work regardless. A
	// nil or empty map simply adds nothing.
	tok.SetEntities(d.Entities)
	var errs []ValidationError
	stack := st.stack[:0]
	defer func() {
		// Zero the whole backing array, not just the live prefix: popped
		// frames past len would otherwise pin the previous document's DTD
		// (and its engines) for the worker's lifetime in standalone mode.
		stack = stack[:cap(stack)]
		clear(stack)
		//dregex:ok spanretain frames hold Name() spans, which index the stable document buffer (never scratch) and are cleared here before the next document
		st.stack = stack[:0]
	}()
	clear(st.ids)
	st.refs = st.refs[:0]
	st.refArena = st.refArena[:0]
	st.symbols = 0
	st.docBytes = len(data)
	doctype := ""
	sawRoot := false
	// path renders the open-element stack; callers composing the current
	// element's own path append "/"+name themselves, so the empty stack
	// (root not yet pushed, or just popped) renders as "" — not "/", which
	// would double the slash in "//root".
	path := func() string {
		if len(stack) == 0 {
			return ""
		}
		parts := make([]string, 0, len(stack))
		for _, f := range stack {
			parts = append(parts, string(f.name))
		}
		return "/" + strings.Join(parts, "/")
	}
	// verr stamps a violation with the document position of offset off.
	verr := func(path, elem string, off int, msg string) ValidationError {
		line, col := tok.Position(off)
		return ValidationError{Path: path, Element: elem, Msg: msg, Line: line, Col: col}
	}
	for {
		if err := st.cp.Check(); err != nil {
			return errs, fmt.Errorf("dtd: validation aborted: %w", err)
		}
		kind, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return errs, fmt.Errorf("dtd: malformed XML: %w", err)
		}
		switch kind {
		case xmltok.Directive:
			if !sawRoot {
				directive := string(tok.Text())
				if name, ok := doctypeName(directive); ok {
					doctype = name
					// A document may declare its own entities in the
					// internal subset (common when validating against an
					// external DTD); see docEntities for the precedence
					// and skip rules.
					if merged := d.docEntities(directive); merged != nil {
						tok.SetEntities(merged)
					}
				}
			}
		case xmltok.StartElement:
			name := tok.Local()
			off := tok.Offset()
			if !sawRoot {
				sawRoot = true
				if doctype != "" && string(name) != doctype {
					errs = append(errs, verr("/"+string(name), string(name), off,
						fmt.Sprintf("root element <%s> does not match DOCTYPE %s", name, doctype)))
				}
			}
			// Record the child in the parent's model.
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				switch {
				case p.el == nil || p.failed:
					// parent already failed; keep descending silently
				case p.el.Kind == Any:
				case p.el.Kind == Mixed:
					if !p.el.allowed[string(name)] {
						errs = append(errs, verr(path(), string(p.name), off,
							fmt.Sprintf("child <%s> not allowed in mixed model %s", name, p.el.Model)))
						p.failed = true
					}
				case p.el.Kind == Empty:
					errs = append(errs, verr(path(), string(p.name), off,
						fmt.Sprintf("EMPTY element has child <%s>", name)))
					p.failed = true
				default:
					st.symbols++
					if !p.stream.FeedBytes(name) {
						ve := verr(path(), string(p.name), off,
							fmt.Sprintf("child <%s> violates content model %s", name, p.el.Model))
						ve.Expected = run.ExpectedNames(&p.stream, nil)
						errs = append(errs, ve)
						p.failed = true
					}
				}
			}
			el := d.Elements[string(name)]
			f := frame{el: el, name: name}
			if el == nil {
				errs = append(errs, verr(path()+"/"+string(name), string(name), off,
					"element not declared"))
			} else if el.Kind == Children {
				if !el.Deterministic {
					errs = append(errs, verr(path()+"/"+string(name), string(name), off,
						"content model is nondeterministic; cannot validate"))
					f.failed = true
				} else {
					el.matcher.InitStream(&f.stream)
				}
			}
			errs = d.checkAttrs(st, el, name, off, errs, verr, path)
			stack = append(stack, f)
		case xmltok.EndElement:
			// Pointer into the backing array, not a copy: ExpectedNames
			// takes the stream's address, and a copied frame would escape
			// to the heap on every single EndElement. The popped slot stays
			// intact until the next push.
			f := &stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.el != nil && f.el.Kind == Children && !f.failed {
				if !f.stream.Accepts() {
					ve := verr(path()+"/"+string(f.name), string(f.name), tok.Offset(),
						fmt.Sprintf("children end prematurely for content model %s", f.el.Model))
					ve.Expected = run.ExpectedNames(&f.stream, nil)
					errs = append(errs, ve)
				}
			}
		case xmltok.Text:
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if p.el == nil || p.failed {
				continue
			}
			if len(attTrim(tok.Text())) == 0 {
				continue
			}
			if p.el.Kind == Children || p.el.Kind == Empty {
				errs = append(errs, verr(path(), string(p.name), tok.Offset(),
					"text content not allowed"))
				p.failed = true
			}
		}
	}
	// IDs can be declared after the IDREFs pointing at them, so resolution
	// waits until the whole document has been read.
	for _, ref := range st.refs {
		if _, ok := st.ids[string(st.refArena[ref.lo:ref.hi])]; !ok {
			errs = append(errs, verr("/"+string(ref.elem), string(ref.elem), ref.off,
				fmt.Sprintf("IDREF %q matches no ID in the document", st.refArena[ref.lo:ref.hi])))
		}
	}
	return errs, nil
}

// isXmlnsAttr reports whether name declares a namespace (xmlns or
// xmlns:prefix) — namespace declarations are not subject to ATTLIST
// validation.
func isXmlnsAttr(name []byte) bool {
	return len(name) >= 5 && string(name[:5]) == "xmlns" &&
		(len(name) == 5 || name[5] == ':')
}

// checkAttrs validates the current start tag's attributes against the
// element's attribute list: every attribute must be declared and satisfy
// its type and #FIXED constraints, required attributes must be present,
// ID values must be unique document-wide, and IDREF/IDREFS values
// (including defaulted ones) are queued for document-end resolution.
func (d *DTD) checkAttrs(st *docState, el *Element, name []byte, off int,
	errs []ValidationError, verr func(string, string, int, string) ValidationError,
	path func() string) []ValidationError {
	al := d.Attlists[string(name)]
	if el == nil && al == nil {
		return errs // element undeclared: already reported, nothing to check against
	}
	tok := &st.tok
	// The element path is only materialized if a violation is reported —
	// the error-free hot path must not build strings per element.
	cached := ""
	epath := func() string {
		if cached == "" {
			cached = path() + "/" + string(name)
		}
		return cached
	}
	nattr := tok.AttrCount()
	for i := 0; i < nattr; i++ {
		aname := tok.AttrName(i)
		if isXmlnsAttr(aname) {
			continue
		}
		var def *AttDef
		if al != nil {
			def = al.defBytes(aname)
		}
		if def == nil {
			errs = append(errs, verr(epath(), string(name), tok.AttrNameOffset(i),
				fmt.Sprintf("attribute %s not declared", aname)))
			continue
		}
		val := tok.AttrValue(i)
		if msg := def.checkValue(val); msg != "" {
			errs = append(errs, verr(epath(), string(name), tok.AttrNameOffset(i),
				fmt.Sprintf("attribute %s: %s", aname, msg)))
			continue
		}
		switch def.Type {
		case AttID:
			id := attTrim(val)
			if _, dup := st.ids[string(id)]; dup {
				errs = append(errs, verr(epath(), string(name), tok.AttrNameOffset(i),
					fmt.Sprintf("ID %q already used in this document", id)))
			} else {
				if st.ids == nil {
					st.ids = map[string]struct{}{}
				}
				st.ids[string(id)] = struct{}{}
			}
		case AttIDREF:
			st.addRef(attTrim(val), tok.AttrNameOffset(i), name)
		case AttIDREFS:
			aoff := tok.AttrNameOffset(i)
			eachField(val, func(f []byte) bool {
				st.addRef(f, aoff, name)
				return true
			})
		}
	}
	if al == nil {
		return errs
	}
	for _, req := range al.required {
		found := false
		for i := 0; i < nattr; i++ {
			if string(tok.AttrName(i)) == req.Name {
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, verr(epath(), string(name), off,
				fmt.Sprintf("required attribute %s missing", req.Name)))
		}
	}
	// Defaulted IDREF/IDREFS values join the document's reference graph
	// even when the attribute is absent.
	for _, def := range al.refDefaults {
		present := false
		for i := 0; i < nattr; i++ {
			if string(tok.AttrName(i)) == def.Name {
				present = true
				break
			}
		}
		if present {
			continue
		}
		if def.Type == AttIDREF {
			st.addRefString(strings.TrimSpace(def.Value), off, name)
		} else {
			for _, f := range strings.Fields(def.Value) {
				st.addRefString(f, off, name)
			}
		}
	}
	return errs
}

// doctypeName extracts the root element name from a "DOCTYPE …" directive
// (the text between "<!" and ">", as encoding/xml delivers it).
func doctypeName(directive string) (string, bool) {
	name, _, ok := doctypeSplit(directive)
	return name, ok
}

// doctypeSplit is the single DOCTYPE-directive scan shared by the
// validator's root check and InternalSubset: it returns the root name —
// reduced to its local part, since the validator keys elements on
// xml.Name.Local — and the remainder of the directive after it.
func doctypeSplit(directive string) (name, rest string, ok bool) {
	s := strings.TrimSpace(directive)
	const kw = "DOCTYPE"
	if !strings.HasPrefix(s, kw) {
		return "", "", false
	}
	s = s[len(kw):]
	if s == "" || !isSpace(s[0]) {
		return "", "", false
	}
	s = strings.TrimLeft(s, " \t\n\r")
	i := 0
	for i < len(s) && !isSpace(s[i]) && s[i] != '[' {
		i++
	}
	name = s[:i]
	if j := strings.LastIndexByte(name, ':'); j >= 0 {
		name = name[j+1:]
	}
	return name, s[i:], name != ""
}

// InternalSubset extracts the DOCTYPE name and the internal DTD subset
// (the text between '[' and ']') from an XML document's prolog. A missing
// DOCTYPE is an error; a DOCTYPE without an internal subset returns the
// root name and an empty subset.
func InternalSubset(doc []byte) (root, subset string, err error) {
	var tok xmltok.Tokenizer
	tok.Reset(doc) // strips any BOM
	for {
		kind, err := tok.Next()
		if err == io.EOF {
			return "", "", errors.New("dtd: document has no DOCTYPE")
		}
		if err != nil {
			return "", "", fmt.Errorf("dtd: malformed XML: %w", err)
		}
		switch kind {
		case xmltok.Directive:
			s := strings.TrimSpace(string(tok.Text()))
			if !strings.HasPrefix(s, "DOCTYPE") {
				continue
			}
			return splitDoctype(s)
		case xmltok.StartElement:
			return "", "", errors.New("dtd: document has no DOCTYPE")
		}
	}
}

// splitDoctype splits a DOCTYPE directive into root name and internal
// subset. The bracket scan is quote-aware, so a ']' inside an entity value
// or system literal cannot end the subset early. (encoding/xml already
// strips comments and handles quoted '>' when it delimits the directive.)
func splitDoctype(directive string) (root, subset string, err error) {
	root, rest, ok := doctypeSplit(directive)
	if !ok {
		return "", "", errors.New("dtd: DOCTYPE without a name")
	}
	open, close_ := -1, -1
	quote := byte(0)
	for j := 0; j < len(rest); j++ {
		c := rest[j]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[':
			if open < 0 {
				open = j
			}
		case c == ']':
			close_ = j
		}
	}
	if open < 0 {
		return root, "", nil
	}
	if close_ <= open {
		return "", "", errors.New("dtd: unterminated internal subset in DOCTYPE")
	}
	return root, rest[open+1 : close_], nil
}

// DocumentDTD parses the internal DTD subset carried by an XML document
// itself, so standalone files (DOCTYPE with inline declarations) validate
// without an external DTD. Content models compile through cache (nil
// selects the shared package cache), so models repeated across a corpus of
// documents compile once.
func DocumentDTD(doc []byte, cache *dregex.Cache) (*DTD, error) {
	_, subset, err := InternalSubset(doc)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(subset) == "" {
		return nil, errors.New("dtd: DOCTYPE has no internal subset")
	}
	if cache == nil {
		cache = defaultCache
	}
	d, err := ParseWithCache(subset, cache)
	if err != nil {
		return nil, err
	}
	// Remember the subset so validating the very document it came from
	// (the standalone pattern) does not tokenize it a second time.
	d.subset = subset
	return d, nil
}
