package dtd

import (
	"bytes"
	"strings"
	"testing"
)

// Regression: documents referencing general entities declared in their own
// DTD used to be rejected as "malformed XML" because Parse discarded
// DeclEntity tokens and the validator never set xml.Decoder.Entity.
func TestValidateInternalEntity(t *testing.T) {
	doc := []byte(`<?xml version="1.0"?>
<!DOCTYPE note [
  <!ELEMENT note (to, body)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
  <!ENTITY who "Alice">
  <!ENTITY greet "hello &#38; welcome">
]>
<note><to>&who;</to><body>&greet;</body></note>`)
	d, err := DocumentDTD(doc, nil)
	if err != nil {
		t.Fatalf("DocumentDTD: %v", err)
	}
	if got := d.Entities["who"]; got != "Alice" {
		t.Errorf("Entities[who] = %q, want %q", got, "Alice")
	}
	errs, err := d.Validate(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(errs) != 0 {
		t.Fatalf("Validate errors: %v", errs)
	}
}

// An external DTD declares entities too; documents validated against it in
// fixed-DTD mode must resolve them, and a document's own internal subset
// takes precedence over the external DTD for the same name.
func TestValidateExternalEntityAndOverride(t *testing.T) {
	d, err := Parse(`<!ELEMENT a (#PCDATA)> <!ENTITY x "ext">`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	doc := `<?xml version="1.0"?><a>&x;</a>`
	if errs, err := d.Validate(strings.NewReader(doc)); err != nil || len(errs) != 0 {
		t.Fatalf("external entity: errs=%v err=%v", errs, err)
	}
	over := `<!DOCTYPE a [ <!ENTITY x "doc"> <!ENTITY y "extra"> ]><a>&x;&y;</a>`
	if errs, err := d.Validate(strings.NewReader(over)); err != nil || len(errs) != 0 {
		t.Fatalf("internal-subset entity: errs=%v err=%v", errs, err)
	}
	// The shared map must not have been mutated by the per-document merge.
	if _, leaked := d.Entities["y"]; leaked {
		t.Fatal("per-document entity leaked into the shared DTD")
	}
}

// Out-of-scope entity forms are skipped, not mistaken for internal ones:
// parameter entities, external SYSTEM/PUBLIC entities, and duplicate
// declarations (first wins, per the XML spec).
func TestEntityScope(t *testing.T) {
	d, err := Parse(`<!ELEMENT a EMPTY>
<!ENTITY % pe "param">
<!ENTITY ext SYSTEM "http://example.com/x.ent">
<!ENTITY pub PUBLIC "-//X//EN" "x.ent">
<!ENTITY markup "<b>x</b>">
<!ENTITY dup "first">
<!ENTITY dup "second">`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(d.Entities) != 1 {
		t.Fatalf("Entities = %v, want only dup", d.Entities)
	}
	if got := d.Entities["dup"]; got != "first" {
		t.Errorf("Entities[dup] = %q, want first declaration to win", got)
	}
}

// An entity whose value carries markup must NOT be substituted as flat
// text (that would validate the wrong tree); referencing it stays a
// document-level malformed-XML error, never a bogus verdict.
func TestMarkupEntityNotSubstituted(t *testing.T) {
	doc := []byte(`<!DOCTYPE a [
  <!ELEMENT a (b)>
  <!ELEMENT b (#PCDATA)>
  <!ENTITY bb "<b>x</b>">
]>
<a>&bb;</a>`)
	d, err := DocumentDTD(doc, nil)
	if err != nil {
		t.Fatalf("DocumentDTD: %v", err)
	}
	if _, ok := d.Entities["bb"]; ok {
		t.Fatal("markup-bearing entity was collected for substitution")
	}
	errs, err := d.Validate(bytes.NewReader(doc))
	if err == nil {
		t.Fatalf("want document-level error for markup entity, got errs=%v", errs)
	}
}

// An undeclared entity reference is still malformed XML.
func TestValidateUndeclaredEntityStillFails(t *testing.T) {
	doc := []byte(`<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>&nope;</a>`)
	d, err := DocumentDTD(doc, nil)
	if err != nil {
		t.Fatalf("DocumentDTD: %v", err)
	}
	if _, err := d.Validate(bytes.NewReader(doc)); err == nil {
		t.Fatal("undeclared entity accepted")
	}
	// Predefined entities keep working without any declaration.
	ok := []byte(`<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>&amp;&lt;</a>`)
	d2, err := DocumentDTD(ok, nil)
	if err != nil {
		t.Fatalf("DocumentDTD: %v", err)
	}
	if errs, err := d2.Validate(bytes.NewReader(ok)); err != nil || len(errs) != 0 {
		t.Fatalf("predefined entities: errs=%v err=%v", errs, err)
	}
}

func TestEntitiesFromDoctype(t *testing.T) {
	ents := EntitiesFromDoctype(`DOCTYPE a [ <!ENTITY foo "bar"> ]`)
	if ents["foo"] != "bar" {
		t.Fatalf("EntitiesFromDoctype = %v", ents)
	}
	if got := EntitiesFromDoctype(`DOCTYPE a SYSTEM "a.dtd"`); got != nil {
		t.Fatalf("no-subset DOCTYPE: got %v, want nil", got)
	}
	if got := EntitiesFromDoctype(`ELEMENT a EMPTY`); got != nil {
		t.Fatalf("non-DOCTYPE directive: got %v, want nil", got)
	}
}

// Regression: a UTF-8 BOM used to shift every scanner offset by its three
// bytes, so the first declaration of a BOM-prefixed DTD reported column 4
// and error positions were off; BOM-prefixed documents must also parse and
// validate end to end.
func TestScanDeclsBOM(t *testing.T) {
	src := "\uFEFF<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>"
	decls, err := ScanDecls(src)
	if err != nil {
		t.Fatalf("ScanDecls: %v", err)
	}
	if len(decls) != 2 {
		t.Fatalf("got %d decls, want 2", len(decls))
	}
	if decls[0].Offset != 0 {
		t.Errorf("first decl offset = %d, want 0 (BOM stripped)", decls[0].Offset)
	}
	if line, col := LineCol(StripBOM(src), decls[0].Offset); line != 1 || col != 1 {
		t.Errorf("first decl at %d:%d, want 1:1", line, col)
	}
}

func TestParseBOMErrorPosition(t *testing.T) {
	_, err := Parse("\uFEFF<!ELEMENT a EMPTY")
	if err == nil {
		t.Fatal("unterminated declaration accepted")
	}
	if !strings.Contains(err.Error(), "1:1:") {
		t.Errorf("error position = %v, want 1:1 (BOM not counted)", err)
	}
}

func TestBOMDocumentValidates(t *testing.T) {
	doc := []byte("\uFEFF<?xml version=\"1.0\"?>\n" +
		`<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> <!ENTITY e "ok"> ]>` + "\n<a>&e;</a>")
	root, subset, err := InternalSubset(doc)
	if err != nil {
		t.Fatalf("InternalSubset: %v", err)
	}
	if root != "a" || !strings.Contains(subset, "ELEMENT") {
		t.Fatalf("InternalSubset = %q, %q", root, subset)
	}
	d, err := DocumentDTD(doc, nil)
	if err != nil {
		t.Fatalf("DocumentDTD: %v", err)
	}
	errs, err := d.Validate(bytes.NewReader(doc))
	if err != nil || len(errs) != 0 {
		t.Fatalf("BOM+entity document: errs=%v err=%v", errs, err)
	}
}

// A BOM-prefixed external DTD file parses with correct declarations.
func TestParseBOMExternalDTD(t *testing.T) {
	d, err := Parse("\uFEFF<!ELEMENT a (b*)> <!ELEMENT b EMPTY>")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Elements["a"].Offset != 0 {
		t.Errorf("first element offset = %d, want 0", d.Elements["a"].Offset)
	}
}
