package dtd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dregex"
)

func corpusDocs(n int) []Doc {
	docs := make([]Doc, n)
	for i := range docs {
		var b strings.Builder
		b.WriteString("<book isbn=\"b-7\">\n  <title>T</title>\n")
		for a := 0; a <= i%3; a++ {
			fmt.Fprintf(&b, "  <author>A%d</author>\n", a)
		}
		b.WriteString("  <chapter><title>C</title><para>x <em>y</em></para></chapter>\n")
		if i%7 == 0 {
			// invalid: figure is EMPTY but gets a child
			b.WriteString("  <chapter><title>C2</title><figure><em>z</em></figure></chapter>\n")
		}
		if i%5 == 0 {
			b.WriteString("  <appendix><title>Ap</title><para>p</para></appendix>\n")
		}
		b.WriteString("</book>")
		docs[i] = Doc{Name: fmt.Sprintf("doc-%03d.xml", i), Data: []byte(b.String())}
	}
	return docs
}

// TestValidatorConcurrentCorpus hammers one DTD's shared engines from many
// workers (run under -race by make test / CI) and checks every verdict
// against the sequential Validate path.
func TestValidatorConcurrentCorpus(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	docs := corpusDocs(120)
	results := NewValidator(d, 8).ValidateDocs(docs)
	if len(results) != len(docs) {
		t.Fatalf("got %d results for %d docs", len(results), len(docs))
	}
	for i, r := range results {
		if r.Name != docs[i].Name {
			t.Fatalf("result %d is %q, want %q (order lost)", i, r.Name, docs[i].Name)
		}
		wantErrs, err := d.Validate(strings.NewReader(string(docs[i].Data)))
		if err != nil {
			t.Fatal(err)
		}
		if r.Err != nil {
			t.Fatalf("%s: unexpected document error %v", r.Name, r.Err)
		}
		if len(r.Errors) != len(wantErrs) {
			t.Errorf("%s: %d errors concurrent vs %d sequential", r.Name, len(r.Errors), len(wantErrs))
		}
		if wantValid := len(wantErrs) == 0; r.Valid() != wantValid {
			t.Errorf("%s: Valid() = %v, want %v", r.Name, r.Valid(), wantValid)
		}
	}
	// The corpus plants an invalid chapter in every 7th document.
	for i, r := range results {
		if (i%7 == 0) == r.Valid() {
			t.Errorf("%s: Valid() = %v, want %v", r.Name, r.Valid(), i%7 != 0)
		}
	}
}

// TestStandaloneValidator validates documents that carry their own
// internal subsets; the shared cache compiles each distinct model once
// across the whole corpus.
func TestStandaloneValidator(t *testing.T) {
	cache := dregex.NewCache(256)
	mkdoc := func(name, body string) Doc {
		doc := `<!DOCTYPE note [
  <!ELEMENT note (to+, body?)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
]>
` + body
		return Doc{Name: name, Data: []byte(doc)}
	}
	docs := []Doc{
		mkdoc("ok.xml", `<note><to>a</to><to>b</to><body>t</body></note>`),
		mkdoc("bad.xml", `<note><body>t</body></note>`),
		{Name: "nodoctype.xml", Data: []byte(`<x/>`)},
		mkdoc("rootmismatch.xml", `<memo><to>a</to></memo>`),
	}
	results := NewStandaloneValidator(cache, 4).ValidateDocs(docs)
	if !results[0].Valid() {
		t.Errorf("ok.xml invalid: %v %v", results[0].Errors, results[0].Err)
	}
	if results[1].Valid() || len(results[1].Errors) == 0 {
		t.Errorf("bad.xml not flagged: %+v", results[1])
	}
	if results[2].Err == nil {
		t.Error("nodoctype.xml: missing DOCTYPE not reported")
	}
	found := false
	for _, e := range results[3].Errors {
		if strings.Contains(e.Msg, "does not match DOCTYPE") {
			found = true
		}
	}
	if !found {
		t.Errorf("rootmismatch.xml: no DOCTYPE mismatch in %v", results[3].Errors)
	}
	// Three documents share one subset: its models must have compiled once
	// each (misses = number of distinct children models, not 3× that).
	if st := cache.Stats(); st.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (one distinct children model)", st.Misses)
	}
}

func TestValidatorFiles(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	docs := corpusDocs(10)
	paths := make([]string, 0, len(docs)+1)
	for _, doc := range docs {
		p := filepath.Join(dir, doc.Name)
		if err := os.WriteFile(p, doc.Data, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	paths = append(paths, filepath.Join(dir, "missing.xml"))
	results := NewValidator(d, 4).ValidateFiles(paths)
	for i := range docs {
		if results[i].Err != nil {
			t.Errorf("%s: %v", paths[i], results[i].Err)
		}
	}
	if last := results[len(results)-1]; last.Err == nil {
		t.Error("missing file not reported")
	}
}
