package dtd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Regression tests for byte-accurate error positions: columns count runes
// (not bytes), so multi-byte UTF-8 text before a violation must not skew
// the reported column, and a UTF-8 BOM must not shift line 1.

func TestPositionMultibyteSameLine(t *testing.T) {
	d, err := Parse(`<!ELEMENT r (#PCDATA | a)*><!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	// "héllo wörld " is 12 runes but 14 bytes; the undeclared <b/> starts
	// at rune column 16 (byte column 18 — the wrong answer).
	errs := validateString(t, d, `<r>héllo wörld <b/></r>`)
	if len(errs) != 2 || !strings.Contains(errs[0].Msg, "not allowed") {
		t.Fatalf("errs = %v, want not-allowed + undeclared", errs)
	}
	if errs[0].Line != 1 || errs[0].Col != 16 {
		t.Errorf("position = %d:%d, want 1:16 (columns count runes, not bytes)",
			errs[0].Line, errs[0].Col)
	}
}

func TestPositionMultibytePriorLines(t *testing.T) {
	d, err := Parse(`<!ELEMENT r (#PCDATA | a)*><!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-byte runes on earlier lines must not disturb later positions.
	errs := validateString(t, d, "<r>\n日本語 éèê\n  <b/>\n</r>")
	if len(errs) != 2 {
		t.Fatalf("errs = %v, want not-allowed + undeclared", errs)
	}
	if errs[0].Line != 3 || errs[0].Col != 3 {
		t.Errorf("position = %d:%d, want 3:3", errs[0].Line, errs[0].Col)
	}
}

func TestPositionBOMDocument(t *testing.T) {
	d, err := Parse(`<!ELEMENT r (a)><!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	// The three BOM bytes precede '<r>' but must not count toward columns.
	errs := validateString(t, d, "\uFEFF<r><b/></r>")
	if len(errs) == 0 {
		t.Fatal("no errors for undeclared <b/>")
	}
	if errs[0].Line != 1 || errs[0].Col != 4 {
		t.Errorf("position = %d:%d, want 1:4 (BOM not counted)", errs[0].Line, errs[0].Col)
	}
}

func TestPositionBOMMultibyteFile(t *testing.T) {
	d, err := Parse(`<!ELEMENT r (#PCDATA | a)*><!ELEMENT a EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	// File round-trip: BOM plus multi-byte text, read through the
	// buffered io.Reader path rather than an in-memory string.
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte("\uFEFF<r>café <b/></r>"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	errs, err := d.Validate(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 {
		t.Fatalf("errs = %v, want not-allowed + undeclared", errs)
	}
	// "<r>café " is 8 runes; <b/> starts at column 9.
	if errs[0].Line != 1 || errs[0].Col != 9 {
		t.Errorf("position = %d:%d, want 1:9", errs[0].Line, errs[0].Col)
	}
}
