package dtd

import (
	"strings"
	"testing"
)

func scanNames(t *testing.T, src string) (elements []string, all []Decl) {
	t.Helper()
	decls, err := ScanDecls(src)
	if err != nil {
		t.Fatalf("ScanDecls: %v", err)
	}
	for _, d := range decls {
		if d.Kind == DeclElement {
			elements = append(elements, d.Name)
		}
	}
	return elements, decls
}

func TestScanQuotedGtInAttlistDefault(t *testing.T) {
	// The confirmed phantom-declaration repro: the old string scanner cut
	// the ATTLIST at the '>' inside "a>b" and then fabricated an element
	// from the <!ELEMENT text inside the second default value.
	src := `<!ELEMENT a (b)>
<!ATTLIST a x CDATA "a>b" y CDATA "<!ELEMENT evil (b)>">
<!ELEMENT b EMPTY>`
	elements, decls := scanNames(t, src)
	if got := strings.Join(elements, " "); got != "a b" {
		t.Fatalf("elements = [%s], want [a b] (phantom declaration injected)", got)
	}
	var attlist *Decl
	for i := range decls {
		if decls[i].Kind == DeclAttlist {
			attlist = &decls[i]
		}
	}
	if attlist == nil || attlist.Name != "a" {
		t.Fatalf("ATTLIST not tokenized as one declaration: %+v", decls)
	}
	if !strings.Contains(attlist.Body, "evil") {
		t.Errorf("ATTLIST body lost its quoted text: %q", attlist.Body)
	}
}

func TestScanQuotedMarkupInEntityValue(t *testing.T) {
	src := `<!ENTITY chunk "<!ELEMENT fake (x)> and a > sign">
<!ELEMENT real EMPTY>`
	elements, decls := scanNames(t, src)
	if got := strings.Join(elements, " "); got != "real" {
		t.Fatalf("elements = [%s], want [real]", got)
	}
	if decls[0].Kind != DeclEntity || decls[0].Name != "chunk" {
		t.Errorf("entity decl = %+v", decls[0])
	}
	// Single-quoted literals and parameter entities too.
	src2 := `<!ENTITY % pe '<!ATTLIST y z CDATA "v">'>
<!ELEMENT y EMPTY>`
	elements2, decls2 := scanNames(t, src2)
	if got := strings.Join(elements2, " "); got != "y" {
		t.Fatalf("elements = [%s], want [y]", got)
	}
	if decls2[0].Name != "%pe" {
		t.Errorf("parameter entity name = %q, want %%pe", decls2[0].Name)
	}
}

func TestScanIgnoreSection(t *testing.T) {
	// The confirmed IGNORE repro: <!ELEMENT ghost …> inside an IGNORE'd
	// section must be skipped structurally, not by luck of the first '>'.
	src := `<!ELEMENT a (b?)>
<![IGNORE[
  <!ELEMENT ghost (b, c, d)>
  <!ATTLIST ghost x CDATA "]]" y CDATA #IMPLIED>
]]>
<!ELEMENT b EMPTY>`
	elements, _ := scanNames(t, src)
	if got := strings.Join(elements, " "); got != "a b" {
		t.Fatalf("elements = [%s], want [a b] (IGNORE leaked)", got)
	}
}

func TestScanNestedConditionalSections(t *testing.T) {
	// Per the XML spec, an ignored section skips over nested <![ … ]]>
	// pairs whole, whatever their keywords.
	src := `<![IGNORE[
  <![INCLUDE[ <!ELEMENT ghost1 (a)> ]]>
  <![IGNORE[ <!ELEMENT ghost2 (a)> ]]>
  <!ELEMENT ghost3 (a)>
]]>
<!ELEMENT real (sub?)>
<![INCLUDE[
  <!ELEMENT sub EMPTY>
  <![IGNORE[ <!ELEMENT ghost4 (a)> ]]>
  <![INCLUDE[ <!ELEMENT deep EMPTY> ]]>
]]>`
	elements, _ := scanNames(t, src)
	if got := strings.Join(elements, " "); got != "real sub deep" {
		t.Fatalf("elements = [%s], want [real sub deep]", got)
	}
}

func TestScanCommentsAndPIs(t *testing.T) {
	src := `<!-- a comment with <!ELEMENT fake1 (x)> and > and "quotes -->
<?pi with <!ELEMENT fake2 (x)> inside ?>
<!ELEMENT real EMPTY>`
	elements, _ := scanNames(t, src)
	if got := strings.Join(elements, " "); got != "real" {
		t.Fatalf("elements = [%s], want [real]", got)
	}
}

func TestScanOffsets(t *testing.T) {
	src := "<!-- c -->\n<!ELEMENT a (b)>\n  <!ELEMENT b EMPTY>"
	_, decls := scanNames(t, src)
	for _, d := range decls {
		if !strings.HasPrefix(src[d.Offset:], "<!ELEMENT") {
			t.Errorf("decl %q offset %d does not point at <!ELEMENT", d.Name, d.Offset)
		}
	}
	line, col := LineCol(src, decls[1].Offset)
	if line != 3 || col != 3 {
		t.Errorf("LineCol = %d:%d, want 3:3", line, col)
	}
}

func TestScanErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected substring, including the position
	}{
		{"<!-- unterminated", "1:1: unterminated comment"},
		{"<?pi unterminated", "1:1: unterminated processing instruction"},
		{"<!ELEMENT a (b", "1:1: unterminated <!ELEMENT declaration"},
		{"\n<!ATTLIST a x CDATA \"unclosed>", "2:21: unterminated \" literal"},
		{"<![IGNORE[ <!ELEMENT x (a)>", "1:1: unterminated IGNORE section"},
		{"<![INCLUDE[ <!ELEMENT x (a)>", "1:1: unterminated INCLUDE section"},
		{"<![ %draft; [ <!ELEMENT x (a)> ]]>", "parameter entities are not expanded"},
		{"<![WEIRD[ ]]>", `unknown conditional section keyword "WEIRD"`},
		{"<![IGNORE <!ELEMENT x (a)> ]]>", "malformed conditional section"},
		{"<!ELEMENT a (b)> <!ELEMENT", "1:18: unterminated <!ELEMENT"},
		{"<!ELEMENT a (b) <!ELEMENT b EMPTY>", "'<' inside <!ELEMENT"},
	}
	for _, c := range cases {
		_, err := ScanDecls(c.src)
		if err == nil {
			t.Errorf("ScanDecls(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ScanDecls(%q) = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestScanStrayTextSkipped(t *testing.T) {
	// Lenient like the old front end: junk between declarations (here a
	// stray PE reference and a lone ']]>') is skipped, not fatal.
	src := `%entities;
<!ELEMENT a EMPTY> ]]> stray < text
<!ELEMENT b EMPTY>`
	elements, _ := scanNames(t, src)
	if got := strings.Join(elements, " "); got != "a b" {
		t.Fatalf("elements = [%s], want [a b]", got)
	}
}
