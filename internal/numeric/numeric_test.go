package numeric

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/parsetree"
	"dregex/internal/run"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

// unrollVerdict computes the spec verdict: determinism of the canonical
// unrolling, decided by the (independently validated) plain linear test.
func unrollVerdict(t *testing.T, e *ast.Node, alpha *ast.Alphabet, budget int) (bool, bool) {
	t.Helper()
	u, err := ast.Unroll(e, budget)
	if err != nil {
		return false, false // too large to unroll; skip
	}
	tr, err := parsetree.Build(ast.Normalize(u), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return determinism.Check(tr, follow.New(tr)).Deterministic, true
}

func TestPaperExamples(t *testing.T) {
	cases := []struct {
		src string
		det bool
	}{
		{"(ab){2}a(b+d)", true},        // §3.3: deterministic
		{"(ab){1,2}a", false},          // §3.3: w = aba is ambiguous
		{"((a{2,3}+b){2}){2}b", false}, // e5 from [19]: a⁸b reaches two b's
		{"((a{2}+b){2}){2}b", true},    // rigid variant is fine
		{"a{2,3}", true},
		{"(a{2,3})*", false}, // exit after 2 or 3 then restart vs continue
		{"(a{2}b){3,5}", true},
		{"(a?){1,3}b", false}, // nullable body: counter padding on a
	}
	for _, c := range cases {
		ct, err := CompileString(c.src)
		if err != nil {
			t.Fatalf("Compile(%s): %v", c.src, err)
		}
		if got := ct.IsDeterministic(); got != c.det {
			t.Errorf("%s: deterministic = %v (%s), want %v",
				c.src, got, ct.Result().Rule, c.det)
		}
		// Cross-check against the unrolling spec.
		alpha := ast.NewAlphabet()
		e := ast.MustParseMath(c.src, alpha)
		want, ok := unrollVerdict(t, e, alpha, 10000)
		if !ok {
			t.Fatalf("%s: spec unroll failed", c.src)
		}
		if want != c.det {
			t.Fatalf("%s: test expectation %v disagrees with unrolling spec %v",
				c.src, c.det, want)
		}
	}
}

// TestAgainstUnrollingSpec is the decisive fuzz: the linear counted test
// must agree with determinism of the canonical unrolling.
func TestAgainstUnrollingSpec(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	agree, nondet := 0, 0
	for trial := 0; trial < 9000; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{
			Symbols:   1 + r.Intn(4),
			MaxNodes:  4 + r.Intn(30),
			AllowIter: true,
			IterMax:   4,
		})
		if !ast.HasIter(ast.Normalize(e)) {
			continue
		}
		want, ok := unrollVerdict(t, e, alpha, 3000)
		if !ok {
			continue
		}
		ct, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got := ct.IsDeterministic(); got != want {
			t.Fatalf("disagreement on %s (normalized %s): linear=%v (%s), unroll-spec=%v",
				ast.StringMath(e, alpha), ast.StringMath(ct.Root, alpha),
				got, ct.Result().Rule, want)
		}
		agree++
		if !want {
			nondet++
		}
	}
	if agree < 1200 {
		t.Fatalf("only %d comparable samples", agree)
	}
	if nondet < agree/10 || nondet > agree*9/10 {
		t.Fatalf("unbalanced corpus: %d/%d nondeterministic", nondet, agree)
	}
}

// TestMatchAgainstUnrolledOracle checks counter matching against NFA
// simulation of the unrolled expression.
func TestMatchAgainstUnrolledOracle(t *testing.T) {
	r := rand.New(rand.NewSource(409))
	samples := 0
	for trial := 0; trial < 400; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{
			Symbols:   1 + r.Intn(3),
			MaxNodes:  4 + r.Intn(20),
			AllowIter: true,
			IterMax:   3,
		})
		u, err := ast.Unroll(e, 800)
		if err != nil {
			continue
		}
		utr, err := parsetree.Build(ast.Normalize(u), alpha)
		if err != nil {
			t.Fatal(err)
		}
		oracle := glushkov.Build(utr)
		ufol := follow.New(utr)
		ct, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		samples++
		for i := 0; i < 20; i++ {
			var w []ast.Symbol
			if i%2 == 0 {
				if pw, ok := words.RandomWord(r, ufol, 18, 0.3); ok {
					w = pw
				}
			}
			if w == nil {
				w = words.NoiseWord(r, utr, r.Intn(10))
			}
			if got, want := ct.Match(w), oracle.Match(w); got != want {
				t.Fatalf("counter match on %s word %v: got %v, want %v",
					ast.StringMath(e, alpha), w, got, want)
			}
		}
	}
	if samples < 150 {
		t.Fatalf("only %d samples", samples)
	}
}

// TestBoundMagnitudeInvariance: the verdict must depend on the bounds only
// through the flags the theory uses (Min<Max, Min≥2, nullable body) — so
// scaling bounds up (preserving flags) must not change it. This is what
// lets the linear test handle maxOccurs=10⁹ without unrolling.
func TestBoundMagnitudeInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	checked := 0
	for trial := 0; trial < 1500; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{
			Symbols:   1 + r.Intn(3),
			MaxNodes:  4 + r.Intn(20),
			AllowIter: true,
			IterMax:   3,
		})
		if !ast.HasIter(e) {
			continue
		}
		scaled := ast.Clone(e)
		ast.Walk(scaled, func(n *ast.Node) {
			if n.Kind != ast.KIter {
				return
			}
			wasFlexible := n.Max == ast.Unbounded || n.Max > n.Min
			if n.Min >= 2 {
				n.Min += 1000
			}
			if n.Max != ast.Unbounded {
				if wasFlexible {
					n.Max = n.Min + 1000 + r.Intn(1000)
				} else {
					n.Max = n.Min
				}
			}
		})
		c1, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Compile(scaled, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if c1.IsDeterministic() != c2.IsDeterministic() {
			t.Fatalf("bound scaling changed verdict: %s vs %s",
				ast.StringMath(e, alpha), ast.StringMath(scaled, alpha))
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("only %d samples", checked)
	}
}

func TestCounterMatchingHandPicked(t *testing.T) {
	// Deterministic rigid bound: (ab){2}a(b+d), the paper's example.
	rigid, err := CompileString("(ab){2}a(b+d)")
	if err != nil {
		t.Fatal(err)
	}
	if !rigid.IsDeterministic() {
		t.Fatalf("(ab){2}a(b+d) must be deterministic, rule=%s", rigid.Result().Rule)
	}
	// Flexible bound: nondeterministic (aba is ambiguous at the third a),
	// but the configuration matcher still decides membership exactly.
	flex, err := CompileString("(ab){2,3}a(b+d)")
	if err != nil {
		t.Fatal(err)
	}
	if flex.IsDeterministic() {
		t.Fatal("(ab){2,3}a(b+d) must be nondeterministic")
	}
	accept := [][]string{
		{"a", "b", "a", "b", "a", "b"},           // (ab)² a b
		{"a", "b", "a", "b", "a", "d"},           // (ab)² a d
		{"a", "b", "a", "b", "a", "b", "a", "b"}, // (ab)³ a b
		{"a", "b", "a", "b", "a", "b", "a", "d"}, // (ab)³ a d
	}
	reject := [][]string{
		{"a", "b", "a", "b"},
		{"a", "b", "a"},
		{"a", "b", "a", "b", "a", "b", "a", "b", "a", "b"},
		{"a", "b", "a", "b", "a", "b", "a", "b", "a", "d"},
	}
	for _, w := range accept {
		if !flex.MatchNames(w) {
			t.Errorf("flex must accept %v", w)
		}
	}
	for _, w := range reject {
		if flex.MatchNames(w) {
			t.Errorf("flex must reject %v", w)
		}
	}
	if !rigid.MatchNames([]string{"a", "b", "a", "b", "a", "d"}) {
		t.Error("rigid must accept abab·ad")
	}
	if rigid.MatchNames([]string{"a", "b", "a", "b", "a", "b", "a", "b"}) {
		t.Error("rigid must reject (ab)³ab")
	}
}

func TestStatsAndUnbounded(t *testing.T) {
	ct, err := CompileString("(a{2,5}b){3,}c{2}")
	if err != nil {
		t.Fatal(err)
	}
	st := ct.Stats()
	if st.Iterations != 3 || st.Flexible != 2 || !st.Unbounded || st.MaxBound != 5 {
		t.Errorf("Stats = %+v", st)
	}
	// Unbounded iteration matches arbitrarily many repetitions.
	w := []string{}
	for i := 0; i < 7; i++ {
		w = append(w, "a", "a", "b")
	}
	w = append(w, "c", "c")
	if !ct.MatchNames(w) {
		t.Error("unbounded repetition rejected")
	}
}

// TestStreamWitnessReuse pins that Init after a rejected word fully
// resets the witness-trace state: the attached trace is truncated, a
// fresh run records from scratch, and the dead stream kept its last
// viable configuration set (Len counts consumed symbols only).
func TestStreamWitnessReuse(t *testing.T) {
	c, err := CompileString("(ab){2,3}")
	if err != nil {
		t.Fatal(err)
	}
	var s Stream
	s.Init(c)
	var tr run.Trace
	s.SetTrace(&tr)

	if s.FeedName("a") != true || s.FeedName("a") != false {
		t.Fatal("aa must die on the second a")
	}
	if s.Alive() || s.Len() != 1 {
		t.Fatalf("after death: alive=%v len=%d, want dead len 1", s.Alive(), s.Len())
	}
	if len(tr.Pos) != 1 {
		t.Fatalf("trace after rejected word: %v", tr.Pos)
	}

	s.Init(c)
	if len(tr.Pos) != 0 {
		t.Fatalf("Init must truncate the attached trace, got %v", tr.Pos)
	}
	for _, n := range []string{"a", "b", "a", "b"} {
		if !s.FeedName(n) {
			t.Fatalf("abab rejected at %q", n)
		}
	}
	if !s.Accepts() || len(tr.Pos) != 4 {
		t.Fatalf("fresh run: accepts=%v trace=%v", s.Accepts(), tr.Pos)
	}
	for _, p := range tr.Pos {
		if p == parsetree.Null {
			t.Fatalf("deterministic singleton run recorded Null: %v", tr.Pos)
		}
	}
}
