// Streaming counter simulation. A Stream holds the set of live run
// configurations — (position, counter vector) pairs — in flat reusable
// buffers, so feeding a symbol performs no allocation once the buffers have
// grown to the expression's configuration width. For deterministic counted
// expressions the set stays a singleton and a feed is one transition plus a
// counter update; the same machinery decides membership exactly for
// nondeterministic expressions too (the set then tracks every live run).
package numeric

import (
	"sort"
	"strconv"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
	"dregex/internal/run"
)

// cfgSet is a deduplicated set of configurations stored in flat slices: one
// entry is pos[i] plus the counter vector ctr[off[i]:off[i]+len(chainOf[pos[i]])]
// (counters of the position's open iterations, outermost first).
type cfgSet struct {
	pos []parsetree.NodeID
	off []int32
	ctr []int32
}

//dregex:noalloc
func (s *cfgSet) reset() {
	s.pos = s.pos[:0]
	s.off = s.off[:0]
	s.ctr = s.ctr[:0]
}

func (s *cfgSet) n() int { return len(s.pos) }

// at returns the i-th configuration; the counter slice aliases the arena.
//
//dregex:noalloc
func (s *cfgSet) at(c *Counted, i int) (parsetree.NodeID, []int32) {
	p := s.pos[i]
	o := int(s.off[i])
	return p, s.ctr[o : o+len(c.chainOf[p])]
}

// add appends configuration (q, v) unless an identical one is present.
// v is copied, so callers may reuse its backing buffer.
//
//dregex:noalloc
func (s *cfgSet) add(q parsetree.NodeID, v []int32) {
outer:
	for i, p := range s.pos {
		if p != q {
			continue
		}
		o := int(s.off[i])
		for j, x := range v {
			if s.ctr[o+j] != x {
				continue outer
			}
		}
		return // duplicate
	}
	s.pos = append(s.pos, q)
	s.off = append(s.off, int32(len(s.ctr)))
	s.ctr = append(s.ctr, v...)
}

// Stream is an incremental counter matcher: feed symbols one at a time,
// query acceptance at any prefix. It is the counter engine's run.Runner —
// the engine-independent bookkeeping (liveness, length, the opt-in witness
// trace) is the embedded run.Core; this type adds the configuration-set
// state of the §3.3 simulation. The zero value is unusable, call NewStream
// or Init; built for reuse: one Stream per worker or stack frame, re-Init
// (or Reset) per word, with all internal buffers retained across words.
type Stream struct {
	run.Core
	c *Counted
	// cur is the live configuration set while alive, and the LAST VIABLE
	// set once dead — kept so ExpectedNext can report what could have
	// extended the run at the point of failure.
	cur, nxt cfgSet
	acc      cfgSet  // scratch for the non-destructive Accepts probe
	tmp      []int32 // successor counter vector under construction
}

// Stream implements run.Runner.
var _ run.Runner = (*Stream)(nil)

// NewStream starts a stream on c at the empty prefix.
func NewStream(c *Counted) *Stream {
	s := &Stream{}
	s.Init(c)
	return s
}

// Init (re)binds a stream to a compiled expression and rewinds it to the
// empty prefix, retaining internal buffers — the zero-allocation reuse
// path, matching match.Stream.Init.
func (s *Stream) Init(c *Counted) {
	s.c = c
	if cap(s.tmp) < c.maxChain {
		s.tmp = make([]int32, c.maxChain)
	}
	s.Reset()
}

// Reset rewinds the stream to the empty prefix.
func (s *Stream) Reset() {
	s.cur.reset()
	s.cur.add(s.c.Tree.BeginPos(), nil)
	s.Rewind()
}

// Feed consumes one symbol; it reports whether the prefix read so far is
// still a viable prefix of some word in L(e).
//
//dregex:noalloc
func (s *Stream) Feed(a ast.Symbol) bool {
	if !s.Alive() || a < ast.FirstUser {
		s.Kill()
		return false
	}
	c := s.c
	s.nxt.reset()
	for i := 0; i < s.cur.n(); i++ {
		p, pc := s.cur.at(c, i)
		c.stepAll(p, pc, a, &s.nxt, s.tmp)
	}
	if s.nxt.n() == 0 {
		s.Kill() // cur keeps the last viable configuration set
		return false
	}
	s.cur, s.nxt = s.nxt, s.cur
	// The witness position: for a deterministic expression the live set is
	// a singleton, so the trace is the unique position sequence — exactly
	// the plain engines' witness. A nondeterministic set records Null
	// (no single position consumed the symbol).
	if s.cur.n() == 1 {
		s.Advance(s.cur.pos[0])
	} else {
		s.Advance(parsetree.Null)
	}
	return true
}

// FeedName consumes one symbol by name.
//
//dregex:noalloc
func (s *Stream) FeedName(name string) bool {
	a, ok := run.LookupName(s.c.Alpha, name)
	if !ok {
		s.Kill()
		return false
	}
	return s.Feed(a)
}

// FeedBytes consumes one symbol named by raw bytes (an element name
// straight out of a document tokenizer), interned via
// Alphabet.LookupBytes — no string materialization per symbol.
//
//dregex:noalloc
func (s *Stream) FeedBytes(name []byte) bool {
	a, ok := run.LookupBytes(s.c.Alpha, name)
	if !ok {
		s.Kill()
		return false
	}
	return s.Feed(a)
}

// FeedRune consumes one single-rune symbol (math notation), interned via
// Alphabet.LookupRune — no per-rune string allocation.
//
//dregex:noalloc
func (s *Stream) FeedRune(r rune) bool {
	a, ok := run.LookupRune(s.c.Alpha, r)
	if !ok {
		s.Kill()
		return false
	}
	return s.Feed(a)
}

// Accepts reports whether the prefix consumed so far is in L(e). It does
// not consume anything: the probe steps every live configuration to the
// phantom end position in a scratch set.
//
//dregex:noalloc
func (s *Stream) Accepts() bool {
	if !s.Alive() {
		return false
	}
	c := s.c
	s.acc.reset()
	for i := 0; i < s.cur.n(); i++ {
		p, pc := s.cur.at(c, i)
		c.stepAll(p, pc, ast.End, &s.acc, s.tmp)
		if s.acc.n() > 0 {
			return true
		}
	}
	return false
}

// Alphabet implements run.Runner.
func (s *Stream) Alphabet() *ast.Alphabet { return s.c.Alpha }

// ExpectedNext implements run.Runner: the symbols with at least one legal
// successor configuration from the last viable set, i.e. exactly the legal
// continuations at (or, once dead, just before) the failure point. O(σ)
// trial steps — an error-path diagnostic, not a hot path.
func (s *Stream) ExpectedNext(dst []ast.Symbol) []ast.Symbol {
	c := s.c
	for a := ast.FirstUser; int(a) < c.Alpha.Size(); a++ {
		s.acc.reset()
		for i := 0; i < s.cur.n() && s.acc.n() == 0; i++ {
			p, pc := s.cur.at(c, i)
			c.stepAll(p, pc, a, &s.acc, s.tmp)
		}
		if s.acc.n() > 0 {
			dst = append(dst, a)
		}
	}
	return dst
}

// Configs returns the number of live configurations (diagnostics; 1 for
// deterministic expressions on viable prefixes).
func (s *Stream) Configs() int {
	if !s.Alive() {
		return 0
	}
	return s.cur.n()
}

// appendSteps adds every legal successor configuration of (p, pc) at
// position q into out, deduplicating. A transition is legal when the
// iterations being exited have reached Min, the looped iteration (if any)
// is below Max, and entered iterations start at 1 (Lemma 2.2 generalized
// with counters). Counter values of unbounded iterations are capped at Min
// — the behaviour is constant beyond it — so the configuration space is
// finite. tmp is a caller-provided scratch of at least maxChain entries.
//
// The structural half of the work — the LCA query and the
// InFirst/InLast checks along the loop chain — depends only on (p, q),
// never on the counters, which is exactly what the counter-augmented
// transition table precomputes (see table.go). This function is the
// fallback enumeration for expressions beyond the table budget; both
// paths funnel into stepVia for the counter checks.
//
//dregex:noalloc
func (c *Counted) appendSteps(p parsetree.NodeID, pc []int32, q parsetree.NodeID, out *cfgSet, tmp []int32) {
	t := c.Tree
	n := c.Fol.LCA.Query(p, q)

	// Concatenation case of Lemma 2.2.
	if t.Op[n] == parsetree.OpCat &&
		t.InFirst(q, t.RChild[n]) && t.InLast(p, t.LChild[n]) {
		c.stepVia(p, pc, q, n, parsetree.Null, out, tmp)
	}
	// Loop case, at every loop ancestor of n (not only the lowest: with
	// counters, different levels have different legality and effects).
	for s := t.PLoop[n]; s != parsetree.Null; s = nextLoopUp(t, s) {
		if t.InFirst(q, s) && t.InLast(p, s) {
			c.stepVia(p, pc, q, n, s, out, tmp)
		}
	}
}

// stepVia applies one structurally-legal candidate transition p→q (pivot
// Null for the concatenation case at n, else the loop node), checking the
// counter legality and emitting the successor configuration into out.
//
//dregex:noalloc
func (c *Counted) stepVia(p parsetree.NodeID, pc []int32, q, n, pivot parsetree.NodeID, out *cfgSet, tmp []int32) {
	t := c.Tree
	pChain := c.chainOf[p]
	qChain := c.chainOf[q]

	//dregex:ok noalloc called directly and never escapes, so it stays on the stack (pinned by TestNumericStreamAllocs)
	counterOf := func(it parsetree.NodeID) int32 {
		for i, x := range pChain {
			if x == it {
				return pc[i]
			}
		}
		return 0
	}
	// exitsLegal: every iteration of p strictly below `limit` must have
	// reached Min (a nullable body can always pad the count).
	//dregex:ok noalloc called directly and never escapes, so it stays on the stack (pinned by TestNumericStreamAllocs)
	exitsLegal := func(limit parsetree.NodeID) bool {
		for i, it := range pChain {
			if t.IsAncestor(limit, it) && it != limit {
				if pc[i] < t.Min[it] && !t.Nullable[t.LChild[it]] {
					return false
				}
			}
		}
		return true
	}

	if pivot == parsetree.Null {
		if !exitsLegal(n) {
			return
		}
	} else {
		if !exitsLegal(pivot) {
			return
		}
		if t.Op[pivot] == parsetree.OpIter {
			if cnt := counterOf(pivot); t.Max[pivot] != parsetree.IterUnbounded && cnt >= t.Max[pivot] {
				return // cannot loop past Max
			}
		}
	}

	// Construct the successor counters for q: counters of iterations above
	// the pivot carry over, the pivot increments, and everything newly
	// entered starts at 1. (For a ∗ pivot no counter changes at the pivot
	// itself — it has no qChain entry.)
	dst := tmp[:len(qChain)]
	for i, it := range qChain {
		switch {
		case it == pivot:
			v := counterOf(it) + 1
			if t.Max[it] != parsetree.IterUnbounded && v > t.Max[it] {
				return // loop beyond Max — illegal, checked here
			}
			if t.Max[it] == parsetree.IterUnbounded && v > t.Min[it] {
				v = t.Min[it] // cap: behaviour is constant beyond Min
			}
			dst[i] = v
		case pivot != parsetree.Null && t.IsAncestor(pivot, it):
			dst[i] = 1 // entered below the loop pivot
		case pivot == parsetree.Null && t.IsAncestor(n, it) && it != n:
			dst[i] = 1 // entered below the concatenation point
		default:
			// Carried over from p (iteration enclosing the pivot)…
			if v := counterOf(it); v > 0 {
				dst[i] = v
			} else {
				dst[i] = 1 // …or entered on a path not shared with p
			}
		}
	}
	out.add(q, dst)
}

// nextLoopUp returns the next loop node strictly above s.
func nextLoopUp(t *parsetree.Tree, s parsetree.NodeID) parsetree.NodeID {
	if p := t.Parent[s]; p != parsetree.Null {
		return t.PLoop[p]
	}
	return parsetree.Null
}

// Match runs the counter simulation over a whole word. The heavy lifting is
// Stream; hot callers should hold a reusable Stream (via Init) instead, for
// the zero-allocation path.
func (c *Counted) Match(word []ast.Symbol) bool {
	var s Stream
	s.Init(c)
	for _, a := range word {
		if !s.Feed(a) {
			return false
		}
	}
	return s.Accepts()
}

// MatchNames is Match over symbol names.
func (c *Counted) MatchNames(names []string) bool {
	var s Stream
	s.Init(c)
	for _, n := range names {
		if !s.FeedName(n) {
			return false
		}
	}
	return s.Accepts()
}

// SortedConfigs is a test helper: it renders the reachable configurations
// after reading word ("pos,c1,c2,…"), for golden assertions.
func (c *Counted) SortedConfigs(word []ast.Symbol) []string {
	var s Stream
	s.Init(c)
	for _, a := range word {
		if !s.Feed(a) {
			return nil
		}
	}
	keys := make([]string, 0, s.cur.n())
	for i := 0; i < s.cur.n(); i++ {
		p, ctr := s.cur.at(c, i)
		k := strconv.Itoa(int(p))
		for _, v := range ctr {
			k += "," + strconv.Itoa(int(v))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
