// Package numeric implements §3.3 of the paper: deciding determinism of
// regular expressions with XML-Schema numeric occurrence indicators e{m,n}
// in O(|e|) time — improving the O(σ|e|) of Kilpeläinen [18] — plus
// counter-based matching.
//
// Semantics and spec. Following DESIGN.md §4.4, the determinism *spec* for
// counted expressions is determinism of the canonical unrolling
// (e{m,n} = e·…·e·(e(e(…)?)?)?, e{m,∞} = e·…·e·e*), which the test suite
// evaluates with the already-validated plain linear checker. The linear
// counted checker reproduces that verdict directly on the counted parse
// tree:
//
//   - loop candidates propagate through every iteration with Max ≥ 2
//     exactly as through ∗ (a first iteration can always loop);
//   - the Witness/Next and Witness/FirstPos-through-ancestor-loop cases of
//     Algorithm 2 apply with pStar generalized to the lowest loop node;
//   - one genuinely new case appears (the paper's "flexible iterations"):
//     Witness against FirstPos through a loop at a *descendant* iteration
//     s of the colored node. Because such an s is non-nullable, it blocks
//     the pSupFirst chains that make the ∗ analysis work, and the
//     competition is live only when s can loop and exit on the same
//     counter value — i.e. when s is flexible: Min < Max, or a nullable
//     body lets empty iterations pad the count.
//
// The descendant-loop case walks one ancestor chain bounded by the parse
// tree depth, so the implementation is O(|e| + D·|colored|) with D the
// tree depth — linear for the bounded-depth content models the paper
// targets (see DESIGN.md §4.4 for the honesty note).
package numeric

import (
	"fmt"
	"sort"
	"strings"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// Counted is a compiled expression with numeric occurrence indicators.
type Counted struct {
	Alpha *ast.Alphabet
	Root  *ast.Node
	Tree  *parsetree.Tree
	Fol   *follow.Index

	// iterChain[p] lists the OpIter ancestors of each position, outermost
	// first (used by the counter matcher).
	iterChain map[parsetree.NodeID][]parsetree.NodeID
	// loopsOf[n] caches, per LCA node, the loop ancestors usable by
	// Lemma 2.2(2); computed lazily in Match.
	det *determinism.Result
}

// Compile normalizes (ast.Normalize: Min ≥ 1, Max ≥ 2 for every surviving
// iteration) and preprocesses e, then runs the linear §3.3 determinism
// test.
func Compile(e *ast.Node, alpha *ast.Alphabet) (*Counted, error) {
	root := ast.Normalize(ast.DesugarPlus(ast.Normalize(e)))
	tree, err := parsetree.BuildNumeric(root, alpha)
	if err != nil {
		return nil, err
	}
	fol := follow.New(tree)
	c := &Counted{
		Alpha:     alpha,
		Root:      root,
		Tree:      tree,
		Fol:       fol,
		iterChain: map[parsetree.NodeID][]parsetree.NodeID{},
	}
	for _, p := range tree.PosNode {
		var chain []parsetree.NodeID
		for x := tree.Parent[p]; x != parsetree.Null; x = tree.Parent[x] {
			if tree.Op[x] == parsetree.OpIter {
				chain = append(chain, x)
			}
		}
		// outermost first
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		c.iterChain[p] = chain
	}
	c.det = c.check()
	return c, nil
}

// CompileString parses math-notation source and compiles it.
func CompileString(src string) (*Counted, error) {
	alpha := ast.NewAlphabet()
	e, err := ast.ParseMath(src, alpha)
	if err != nil {
		return nil, err
	}
	return Compile(e, alpha)
}

// IsDeterministic reports the linear-test verdict.
func (c *Counted) IsDeterministic() bool { return c.det.Deterministic }

// Result exposes the detailed verdict (rule and candidate positions).
func (c *Counted) Result() *determinism.Result { return c.det }

// flexible reports whether iteration s can loop and exit on a common
// counter value, i.e. Min < Max. (Iterations with nullable bodies are
// flexible too, but they are unconditionally nondeterministic — rule N1 —
// so they never reach the flexibility checks.)
func (c *Counted) flexible(s parsetree.NodeID) bool {
	t := c.Tree
	return t.Op[s] == parsetree.OpIter && t.Max[s] > t.Min[s]
}

// check runs the §3.3 determinism test.
func (c *Counted) check() *determinism.Result {
	t := c.Tree
	sks := skeleton.Build(t, c.Fol, skeleton.Options{NumericLoops: true})
	if v := sks.NonDet; v != nil {
		return &determinism.Result{Rule: v.Rule, Q1: v.Q1, Q2: v.Q2}
	}

	// Rule N1: an iteration with a nullable body is ambiguous in itself —
	// empty iterations pad the counter, so the same input reaches the same
	// position with different counter values (distinct unrolled copies).
	// After normalization every iteration has Max ≥ 2, so no further
	// condition is needed.
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if t.Op[n] == parsetree.OpIter && t.Nullable[t.LChild[n]] {
			w := t.FirstWitness(n)
			return &determinism.Result{Rule: "nullable-iter-body", Q1: w, Q2: w, Node: n}
		}
	}

	// Rule N2: nested loop levels conflict when a position in Last(s2) can
	// loop at s1 and at s2 simultaneously with diverging counters. With s2
	// the lowest loop strictly above s1, the pair conflicts iff First and
	// Last of s1 survive to s2 (pointer checks) and either s1 is a
	// flexible iteration (it can loop and be exited on one counter value)
	// or s1 is a ∗ under an iteration (whose counter diverges between the
	// two routes). Rigid iterations make the two routes counter-disjoint;
	// star-under-star is the classical deterministic nesting.
	for s1 := parsetree.NodeID(0); s1 < parsetree.NodeID(t.N()); s1++ {
		if t.PLoop[s1] != s1 {
			continue // not a loop node
		}
		p := t.Parent[s1]
		if p == parsetree.Null {
			continue
		}
		s2 := t.PLoop[p]
		if s2 == parsetree.Null {
			continue
		}
		if !t.IsAncestor(t.PSupFirst[s1], s2) || !t.IsAncestor(t.PSupLast[s1], s2) {
			continue
		}
		conflict := c.flexible(s1) ||
			(t.Op[s1] == parsetree.OpStar && t.Op[s2] == parsetree.OpIter)
		if conflict {
			w := t.FirstWitness(s1)
			return &determinism.Result{Rule: "nested-loops", Q1: w, Q2: w, Node: s1}
		}
	}
	// Rule N3 — the universal flexible-iteration conflict. At a flexible
	// iteration s, FirstPos(s,a) follows every p ∈ Last(s) by looping
	// (counter < Max) while Next(s,a) follows the same p by exiting
	// (counter ≥ Min); Min < Max makes both live at once. Algorithm 1 has
	// already aggregated exactly these two candidates at s's skeleton
	// nodes, so the rule is a linear scan. It subsumes the paper's
	// descendant-loop cases ((ii-b) and friends); the explicit variants
	// below remain for diagnosis precision.
	for i := range sks.ENode {
		s1 := sks.ENode[i]
		if c.flexible(s1) &&
			sks.First[i] != parsetree.Null && sks.Next[i] != parsetree.Null {
			return &determinism.Result{Rule: "flex-loop-exit",
				Q1: sks.First[i], Q2: sks.Next[i], Node: s1}
		}
	}

	for _, cn := range sks.ColoredNodes {
		n := cn.Node
		w := sks.Wit[cn.Sk]
		f := sks.First[cn.Sk]
		rchild := t.RChild[n]
		// Case (i-b): the witness's SupFirst node is itself a flexible
		// iteration S′ = Rchild(n). Any p ∈ Last(S′) is followed by W via
		// an S′ loop (counter < Max) and by Next(n,a) via an S′ exit
		// (counter ≥ Min); with Min < Max both are live at once. The ∗
		// version of this conflict is absorbed by case (i) because ∗ is
		// nullable; a non-nullable iteration needs the explicit rule.
		if c.flexible(rchild) {
			if nx := sks.Next[cn.Sk]; nx != parsetree.Null {
				return &determinism.Result{Rule: "W-N-flex", Q1: w, Q2: nx, Node: n, Sym: cn.Sym}
			}
			// (ii-a) with the loop at Rchild(n) itself: W via an Rchild
			// loop vs FirstPos via an enclosing loop S — live together
			// exactly when Rchild is flexible.
			f := sks.First[cn.Sk]
			s := t.PLoop[n]
			if f != parsetree.Null && s != parsetree.Null && f != w &&
				t.IsAncestor(t.PSupFirst[f], s) &&
				t.IsAncestor(t.PSupLast[n], s) {
				return &determinism.Result{Rule: "W-F-rflex", Q1: w, Q2: f, Node: n, Sym: cn.Sym}
			}
		}
		if t.Nullable[rchild] {
			// Case (i): Witness vs Next.
			if nx := sks.Next[cn.Sk]; nx != parsetree.Null {
				return &determinism.Result{Rule: "W-N", Q1: w, Q2: nx, Node: n, Sym: cn.Sym}
			}
			// Case (ii-a): Witness vs FirstPos through an ancestor loop.
			s := t.PLoop[n]
			if f != parsetree.Null && s != parsetree.Null && f != w &&
				t.IsAncestor(t.PSupFirst[f], s) &&
				t.IsAncestor(t.PSupLast[n], s) {
				return &determinism.Result{Rule: "W-F", Q1: w, Q2: f, Node: n, Sym: cn.Sym}
			}
		}
		// Case (ii-b): Witness vs FirstPos through a flexible descendant
		// loop s on the chain from F up to Lchild(n). A SupLast node
		// strictly between kills lower candidates (their Last positions
		// cannot reach Lchild(n)); the top node m survives its own
		// SupLast flag.
		if f != parsetree.Null && f != w {
			m := t.LChild[n]
			if t.IsAncestor(m, f) {
				alive := false
				for x := f; x != parsetree.Null; x = t.Parent[x] {
					if x == m {
						if c.flexible(x) {
							alive = true
						}
						break
					}
					if c.flexible(x) {
						alive = true
					}
					if t.SupLast[x] {
						alive = false
					}
				}
				if alive {
					return &determinism.Result{Rule: "W-F-flex", Q1: w, Q2: f, Node: n, Sym: cn.Sym}
				}
			}
		}
	}
	return &determinism.Result{Deterministic: true}
}

// ---------------------------------------------------------------------------
// Counter matching.

// cfg is a run configuration: a position plus the counter values of its
// open iterations (outermost first, aligned with iterChain[pos]).
type cfg struct {
	pos parsetree.NodeID
	ctr []int32
}

func (c cfg) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", c.pos)
	for _, v := range c.ctr {
		fmt.Fprintf(&b, ",%d", v)
	}
	return b.String()
}

// Match runs the counter simulation: configurations are (position,
// counters), and a transition from p to q is legal when the iterations
// being exited have reached Min, the looped iteration (if any) is below
// Max, and entered iterations start at 1. Counter values of unbounded
// iterations are capped at Min (the behaviour is constant beyond it), so
// the configuration space is finite. For deterministic expressions the
// configuration set describes a single run shape; the simulation works for
// nondeterministic ones too.
func (c *Counted) Match(word []ast.Symbol) bool {
	t := c.Tree
	cur := map[string]cfg{}
	start := cfg{pos: t.BeginPos()}
	cur[start.key()] = start
	for _, a := range word {
		if a < ast.FirstUser {
			return false
		}
		next := map[string]cfg{}
		for _, conf := range cur {
			for _, q := range t.PosNode {
				if t.Sym[q] != a {
					continue
				}
				c.step(conf, q, next)
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	end := t.EndPos()
	fin := map[string]cfg{}
	for _, conf := range cur {
		c.step(conf, end, fin)
	}
	return len(fin) > 0
}

// MatchNames is Match over symbol names.
func (c *Counted) MatchNames(names []string) bool {
	word := make([]ast.Symbol, len(names))
	for i, n := range names {
		s, ok := c.Alpha.Lookup(n)
		if !ok || s == ast.Begin || s == ast.End {
			return false
		}
		word[i] = s
	}
	return c.Match(word)
}

// step adds every legal successor configuration of conf at position q.
func (c *Counted) step(conf cfg, q parsetree.NodeID, out map[string]cfg) {
	t := c.Tree
	p := conf.pos
	pChain := c.iterChain[p]
	qChain := c.iterChain[q]
	n := c.Fol.LCA.Query(p, q)

	counterOf := func(it parsetree.NodeID) int32 {
		for i, x := range pChain {
			if x == it {
				return conf.ctr[i]
			}
		}
		return 0
	}
	// exitsLegal: every iteration of p strictly below `limit` must have
	// reached Min.
	exitsLegal := func(limit parsetree.NodeID) bool {
		for i, it := range pChain {
			if t.IsAncestor(limit, it) && it != limit {
				if i < len(conf.ctr) && conf.ctr[i] < t.Min[it] && !t.Nullable[t.LChild[it]] {
					return false
				}
			}
		}
		return true
	}
	// build constructs the successor counters for q given the transition
	// pivot (loop node or Null for concatenation at n) — counters of
	// iterations above the pivot carry over, the pivot increments, and
	// everything newly entered starts at 1.
	emit := func(pivot parsetree.NodeID) {
		ctr := make([]int32, len(qChain))
		for i, it := range qChain {
			switch {
			case it == pivot:
				v := counterOf(it) + 1
				if t.Max[it] != parsetree.IterUnbounded && v > t.Max[it] {
					return // loop beyond Max — illegal, checked here
				}
				if t.Max[it] == parsetree.IterUnbounded && v > t.Min[it] {
					v = t.Min[it] // cap: behaviour is constant beyond Min
				}
				ctr[i] = v
			case pivot != parsetree.Null && t.IsAncestor(pivot, it):
				ctr[i] = 1 // entered below the loop pivot
			case pivot == parsetree.Null && t.IsAncestor(n, it) && it != n:
				ctr[i] = 1 // entered below the concatenation point
			default:
				// Carried over from p (iteration enclosing the pivot)…
				if v := counterOf(it); v > 0 {
					ctr[i] = v
				} else {
					ctr[i] = 1 // …or entered on a path not shared with p
				}
			}
		}
		nc := cfg{pos: q, ctr: ctr}
		out[nc.key()] = nc
	}

	// Concatenation case of Lemma 2.2.
	if t.Op[n] == parsetree.OpCat &&
		t.InFirst(q, t.RChild[n]) && t.InLast(p, t.LChild[n]) &&
		exitsLegal(n) {
		emit(parsetree.Null)
	}
	// Loop case, at every loop ancestor of n (not only the lowest: with
	// counters, different levels have different legality and effects).
	for s := t.PLoop[n]; s != parsetree.Null; s = nextLoopUp(t, s) {
		if !t.InFirst(q, s) || !t.InLast(p, s) {
			continue
		}
		if !exitsLegal(s) {
			continue
		}
		if t.Op[s] == parsetree.OpIter {
			if cnt := counterOf(s); t.Max[s] != parsetree.IterUnbounded && cnt >= t.Max[s] {
				continue // cannot loop past Max
			}
		}
		// For a ∗ pivot no counter changes at s itself; emit handles both
		// cases (an Iter pivot increments, everything below restarts at 1).
		emit(s)
	}
}

// nextLoopUp returns the next loop node strictly above s.
func nextLoopUp(t *parsetree.Tree, s parsetree.NodeID) parsetree.NodeID {
	if p := t.Parent[s]; p != parsetree.Null {
		return t.PLoop[p]
	}
	return parsetree.Null
}

// Stats reports counter-specific structure.
type Stats struct {
	Iterations int
	Flexible   int
	MaxBound   int32
	Unbounded  bool
}

// Stats summarizes the iteration structure.
func (c *Counted) Stats() Stats {
	t := c.Tree
	var s Stats
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if t.Op[n] != parsetree.OpIter {
			continue
		}
		s.Iterations++
		if c.flexible(n) {
			s.Flexible++
		}
		if t.Max[n] == parsetree.IterUnbounded {
			s.Unbounded = true
		} else if t.Max[n] > s.MaxBound {
			s.MaxBound = t.Max[n]
		}
	}
	return s
}

// SortedConfigs is a test helper: it renders the reachable configurations
// after reading word, for golden assertions.
func (c *Counted) SortedConfigs(word []ast.Symbol) []string {
	t := c.Tree
	cur := map[string]cfg{}
	start := cfg{pos: t.BeginPos()}
	cur[start.key()] = start
	for _, a := range word {
		next := map[string]cfg{}
		for _, conf := range cur {
			for _, q := range t.PosNode {
				if t.Sym[q] == a {
					c.step(conf, q, next)
				}
			}
		}
		cur = next
	}
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
