// Package numeric implements §3.3 of the paper: deciding determinism of
// regular expressions with XML-Schema numeric occurrence indicators e{m,n}
// in O(|e|) time — improving the O(σ|e|) of Kilpeläinen [18] — plus
// counter-based matching.
//
// Semantics and spec. Following DESIGN.md §4.4, the determinism *spec* for
// counted expressions is determinism of the canonical unrolling
// (e{m,n} = e·…·e·(e(e(…)?)?)?, e{m,∞} = e·…·e·e*), which the test suite
// evaluates with the already-validated plain linear checker. The linear
// counted checker reproduces that verdict directly on the counted parse
// tree:
//
//   - loop candidates propagate through every iteration with Max ≥ 2
//     exactly as through ∗ (a first iteration can always loop);
//   - the Witness/Next and Witness/FirstPos-through-ancestor-loop cases of
//     Algorithm 2 apply with pStar generalized to the lowest loop node;
//   - one genuinely new case appears (the paper's "flexible iterations"):
//     Witness against FirstPos through a loop at a *descendant* iteration
//     s of the colored node. Because such an s is non-nullable, it blocks
//     the pSupFirst chains that make the ∗ analysis work, and the
//     competition is live only when s can loop and exit on the same
//     counter value — i.e. when s is flexible: Min < Max, or a nullable
//     body lets empty iterations pad the count.
//
// The descendant-loop case walks one ancestor chain bounded by the parse
// tree depth, so the implementation is O(|e| + D·|colored|) with D the
// tree depth — linear for the bounded-depth content models the paper
// targets (see DESIGN.md §4.4 for the honesty note).
package numeric

import (
	"sync"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// Counted is a compiled expression with numeric occurrence indicators.
type Counted struct {
	Alpha *ast.Alphabet
	Root  *ast.Node
	Tree  *parsetree.Tree
	Fol   *follow.Index

	// chainOf[p] lists the OpIter ancestors of each position, outermost
	// first (the layout of a configuration's counter vector); nil for
	// non-position nodes. maxChain is the longest such chain.
	chainOf  [][]parsetree.NodeID
	maxChain int
	// bySym[a] lists the positions labeled a, in position order — the
	// candidate targets of one Feed step (the phantom $ included, for the
	// Accepts probe; # is never a target).
	bySym [][]parsetree.NodeID

	det *determinism.Result

	// tab is the counter-augmented transition table (table.go), built
	// lazily under tabOnce so determinism-only workloads never pay for it;
	// noTable disables it (tests force the fallback enumeration).
	tabOnce sync.Once
	tab     *transTable
	noTable bool
}

// Compile normalizes (ast.Normalize: Min ≥ 1, Max ≥ 2 for every surviving
// iteration) and preprocesses e, then runs the linear §3.3 determinism
// test.
func Compile(e *ast.Node, alpha *ast.Alphabet) (*Counted, error) {
	root := ast.Normalize(ast.DesugarPlus(ast.Normalize(e)))
	tree, err := parsetree.BuildNumeric(root, alpha)
	if err != nil {
		return nil, err
	}
	fol := follow.New(tree)
	c := &Counted{
		Alpha:   alpha,
		Root:    root,
		Tree:    tree,
		Fol:     fol,
		chainOf: make([][]parsetree.NodeID, tree.N()),
		bySym:   make([][]parsetree.NodeID, alpha.Size()),
	}
	for _, p := range tree.PosNode {
		var chain []parsetree.NodeID
		for x := tree.Parent[p]; x != parsetree.Null; x = tree.Parent[x] {
			if tree.Op[x] == parsetree.OpIter {
				chain = append(chain, x)
			}
		}
		// outermost first
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		c.chainOf[p] = chain
		if len(chain) > c.maxChain {
			c.maxChain = len(chain)
		}
		if s := tree.Sym[p]; s != ast.Begin {
			c.bySym[s] = append(c.bySym[s], p)
		}
	}
	c.det = c.check()
	return c, nil
}

// CompileString parses math-notation source and compiles it.
func CompileString(src string) (*Counted, error) {
	alpha := ast.NewAlphabet()
	e, err := ast.ParseMath(src, alpha)
	if err != nil {
		return nil, err
	}
	return Compile(e, alpha)
}

// IsDeterministic reports the linear-test verdict.
func (c *Counted) IsDeterministic() bool { return c.det.Deterministic }

// Result exposes the detailed verdict (rule and candidate positions).
func (c *Counted) Result() *determinism.Result { return c.det }

// flexible reports whether iteration s can loop and exit on a common
// counter value, i.e. Min < Max. (Iterations with nullable bodies are
// flexible too, but they are unconditionally nondeterministic — rule N1 —
// so they never reach the flexibility checks.)
func (c *Counted) flexible(s parsetree.NodeID) bool {
	t := c.Tree
	return t.Op[s] == parsetree.OpIter && t.Max[s] > t.Min[s]
}

// check runs the §3.3 determinism test.
func (c *Counted) check() *determinism.Result {
	t := c.Tree
	sks := skeleton.Build(t, c.Fol, skeleton.Options{NumericLoops: true})
	if v := sks.NonDet; v != nil {
		return &determinism.Result{Rule: v.Rule, Q1: v.Q1, Q2: v.Q2}
	}

	// Rule N1: an iteration with a nullable body is ambiguous in itself —
	// empty iterations pad the counter, so the same input reaches the same
	// position with different counter values (distinct unrolled copies).
	// After normalization every iteration has Max ≥ 2, so no further
	// condition is needed.
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if t.Op[n] == parsetree.OpIter && t.Nullable[t.LChild[n]] {
			w := t.FirstWitness(n)
			return &determinism.Result{Rule: "nullable-iter-body", Q1: w, Q2: w, Node: n}
		}
	}

	// Rule N2: nested loop levels conflict when a position in Last(s2) can
	// loop at s1 and at s2 simultaneously with diverging counters. With s2
	// the lowest loop strictly above s1, the pair conflicts iff First and
	// Last of s1 survive to s2 (pointer checks) and either s1 is a
	// flexible iteration (it can loop and be exited on one counter value)
	// or s1 is a ∗ under an iteration (whose counter diverges between the
	// two routes). Rigid iterations make the two routes counter-disjoint;
	// star-under-star is the classical deterministic nesting.
	for s1 := parsetree.NodeID(0); s1 < parsetree.NodeID(t.N()); s1++ {
		if t.PLoop[s1] != s1 {
			continue // not a loop node
		}
		p := t.Parent[s1]
		if p == parsetree.Null {
			continue
		}
		s2 := t.PLoop[p]
		if s2 == parsetree.Null {
			continue
		}
		if !t.IsAncestor(t.PSupFirst[s1], s2) || !t.IsAncestor(t.PSupLast[s1], s2) {
			continue
		}
		conflict := c.flexible(s1) ||
			(t.Op[s1] == parsetree.OpStar && t.Op[s2] == parsetree.OpIter)
		if conflict {
			w := t.FirstWitness(s1)
			return &determinism.Result{Rule: "nested-loops", Q1: w, Q2: w, Node: s1}
		}
	}
	// Rule N3 — the universal flexible-iteration conflict. At a flexible
	// iteration s, FirstPos(s,a) follows every p ∈ Last(s) by looping
	// (counter < Max) while Next(s,a) follows the same p by exiting
	// (counter ≥ Min); Min < Max makes both live at once. Algorithm 1 has
	// already aggregated exactly these two candidates at s's skeleton
	// nodes, so the rule is a linear scan. It subsumes the paper's
	// descendant-loop cases ((ii-b) and friends); the explicit variants
	// below remain for diagnosis precision.
	for i := range sks.ENode {
		s1 := sks.ENode[i]
		if c.flexible(s1) &&
			sks.First[i] != parsetree.Null && sks.Next[i] != parsetree.Null {
			return &determinism.Result{Rule: "flex-loop-exit",
				Q1: sks.First[i], Q2: sks.Next[i], Node: s1}
		}
	}

	for _, cn := range sks.ColoredNodes {
		n := cn.Node
		w := sks.Wit[cn.Sk]
		f := sks.First[cn.Sk]
		rchild := t.RChild[n]
		// Case (i-b): the witness's SupFirst node is itself a flexible
		// iteration S′ = Rchild(n). Any p ∈ Last(S′) is followed by W via
		// an S′ loop (counter < Max) and by Next(n,a) via an S′ exit
		// (counter ≥ Min); with Min < Max both are live at once. The ∗
		// version of this conflict is absorbed by case (i) because ∗ is
		// nullable; a non-nullable iteration needs the explicit rule.
		if c.flexible(rchild) {
			if nx := sks.Next[cn.Sk]; nx != parsetree.Null {
				return &determinism.Result{Rule: "W-N-flex", Q1: w, Q2: nx, Node: n, Sym: cn.Sym}
			}
			// (ii-a) with the loop at Rchild(n) itself: W via an Rchild
			// loop vs FirstPos via an enclosing loop S — live together
			// exactly when Rchild is flexible.
			f := sks.First[cn.Sk]
			s := t.PLoop[n]
			if f != parsetree.Null && s != parsetree.Null && f != w &&
				t.IsAncestor(t.PSupFirst[f], s) &&
				t.IsAncestor(t.PSupLast[n], s) {
				return &determinism.Result{Rule: "W-F-rflex", Q1: w, Q2: f, Node: n, Sym: cn.Sym}
			}
		}
		if t.Nullable[rchild] {
			// Case (i): Witness vs Next.
			if nx := sks.Next[cn.Sk]; nx != parsetree.Null {
				return &determinism.Result{Rule: "W-N", Q1: w, Q2: nx, Node: n, Sym: cn.Sym}
			}
			// Case (ii-a): Witness vs FirstPos through an ancestor loop.
			s := t.PLoop[n]
			if f != parsetree.Null && s != parsetree.Null && f != w &&
				t.IsAncestor(t.PSupFirst[f], s) &&
				t.IsAncestor(t.PSupLast[n], s) {
				return &determinism.Result{Rule: "W-F", Q1: w, Q2: f, Node: n, Sym: cn.Sym}
			}
		}
		// Case (ii-b): Witness vs FirstPos through a flexible descendant
		// loop s on the chain from F up to Lchild(n). A SupLast node
		// strictly between kills lower candidates (their Last positions
		// cannot reach Lchild(n)); the top node m survives its own
		// SupLast flag.
		if f != parsetree.Null && f != w {
			m := t.LChild[n]
			if t.IsAncestor(m, f) {
				alive := false
				for x := f; x != parsetree.Null; x = t.Parent[x] {
					if x == m {
						if c.flexible(x) {
							alive = true
						}
						break
					}
					if c.flexible(x) {
						alive = true
					}
					if t.SupLast[x] {
						alive = false
					}
				}
				if alive {
					return &determinism.Result{Rule: "W-F-flex", Q1: w, Q2: f, Node: n, Sym: cn.Sym}
				}
			}
		}
	}
	return &determinism.Result{Deterministic: true}
}

// Stats reports counter-specific structure.
type Stats struct {
	Iterations int
	Flexible   int
	MaxBound   int32
	Unbounded  bool
}

// Stats summarizes the iteration structure.
func (c *Counted) Stats() Stats {
	t := c.Tree
	var s Stats
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if t.Op[n] != parsetree.OpIter {
			continue
		}
		s.Iterations++
		if c.flexible(n) {
			s.Flexible++
		}
		if t.Max[n] == parsetree.IterUnbounded {
			s.Unbounded = true
		} else if t.Max[n] > s.MaxBound {
			s.MaxBound = t.Max[n]
		}
	}
	return s
}
