package numeric

import (
	"math/rand"
	"reflect"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

// TestTableAgreesWithFallback differentially tests the counter-augmented
// transition table against the on-the-fly enumeration: same expression,
// same words, one Counted with the table and one with it disabled — the
// reachable configuration sets (not just the verdicts) must coincide.
func TestTableAgreesWithFallback(t *testing.T) {
	r := rand.New(rand.NewSource(431))
	samples := 0
	for trial := 0; trial < 300; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{
			Symbols:   1 + r.Intn(4),
			MaxNodes:  4 + r.Intn(30),
			AllowIter: true,
			IterMax:   4,
		})
		withTab, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		without, err := Compile(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		without.noTable = true
		samples++
		for i := 0; i < 20; i++ {
			var w []ast.Symbol
			if i%2 == 0 {
				if pw, ok := words.RandomWord(r, withTab.Fol, 16, 0.3); ok {
					w = pw
				}
			}
			if w == nil {
				w = words.NoiseWord(r, withTab.Tree, r.Intn(10))
			}
			if got, want := withTab.Match(w), without.Match(w); got != want {
				t.Fatalf("table match on %s word %v: got %v, fallback says %v",
					ast.StringMath(e, alpha), w, got, want)
			}
			gc, wc := withTab.SortedConfigs(w), without.SortedConfigs(w)
			if !reflect.DeepEqual(gc, wc) {
				t.Fatalf("configs diverge on %s word %v: table %v, fallback %v",
					ast.StringMath(e, alpha), w, gc, wc)
			}
		}
		if withTab.tab == nil {
			t.Fatalf("small expression %s must build the table", ast.StringMath(e, alpha))
		}
		if without.tab != nil {
			t.Fatal("noTable must suppress the table")
		}
	}
	if samples < 200 {
		t.Fatalf("only %d samples", samples)
	}
}

// TestTableBudgetFallsBack proves the budget gate: an expression whose
// positions × alphabet exceeds the budget gets no table and silently takes
// the enumeration path.
func TestTableBudgetFallsBack(t *testing.T) {
	alpha := ast.NewAlphabet()
	// ~1100 distinct counted factors: positions ≈ sigma ≈ 1100, so
	// rows×sigma > 1<<20.
	parts := make([]*ast.Node, 0, 1100)
	for i := 0; i < 1100; i++ {
		parts = append(parts, ast.Opt(ast.Iter(
			ast.Sym(alpha.Intern(wordgen.SymbolName(i))), 2, 5)))
	}
	c, err := Compile(ast.CatAll(parts...), alpha)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Tree.NumPositions() * c.Alpha.Size(); got <= tableBudget {
		t.Fatalf("test expression too small to prove the budget gate: %d entries", got)
	}
	w := c.Alpha.LookupWord(nil, []string{
		wordgen.SymbolName(0), wordgen.SymbolName(0),
		wordgen.SymbolName(3), wordgen.SymbolName(3),
	})
	if !c.Match(w) {
		t.Fatal("word must match")
	}
	if c.tab != nil {
		t.Fatal("over-budget expression must not build a table")
	}

	// Just-under-budget control: the same shape, sized to fit, builds one.
	alpha2 := ast.NewAlphabet()
	parts = parts[:0]
	for i := 0; i < 500; i++ {
		parts = append(parts, ast.Opt(ast.Iter(
			ast.Sym(alpha2.Intern(wordgen.SymbolName(i))), 2, 5)))
	}
	c2, err := Compile(ast.CatAll(parts...), alpha2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Tree.NumPositions() * c2.Alpha.Size(); got > tableBudget {
		t.Fatalf("control expression unexpectedly over budget: %d entries", got)
	}
	w2 := c2.Alpha.LookupWord(nil, []string{wordgen.SymbolName(2), wordgen.SymbolName(2)})
	if !c2.Match(w2) {
		t.Fatal("control word must match")
	}
	if c2.tab == nil {
		t.Fatal("under-budget expression must build the table")
	}
}
