// Counter-augmented transition table: the numeric counterpart of the
// dense-table fast path (internal/match/table). A counted expression's
// transition legality depends on live counter values, so a plain
// state×symbol table cannot hold the *verdict* — but the structural half
// of every Feed step (the LCA query and the InFirst/InLast checks along
// the loop-ancestor chain of Lemma 2.2) depends only on the (position,
// symbol) pair. This file precomputes exactly that: for every position row
// and symbol, the flat list of structurally-legal candidate transitions
// (q, n, pivot). Feed then replaces per-symbol LCA queries and ancestor
// walks with one span lookup plus the counter checks of stepVia.
//
// The table is built lazily on first use (determinism-checking workloads
// never pay for it) and only while positions × alphabet stays within the
// same budget as the plain dense table, so precomputation stays linear for
// pathological sizes exactly like the plain engine ladder.
package numeric

import (
	"dregex/internal/ast"
	"dregex/internal/match/table"
	"dregex/internal/parsetree"
)

// transEntry is one structurally-legal candidate transition p→q: n is
// LCA(p, q); pivot is parsetree.Null for the concatenation case at n, or
// the loop node for the loop case. Counter legality is checked per step by
// stepVia.
type transEntry struct {
	q, n, pivot parsetree.NodeID
}

// transTable groups the candidate transitions by (position row, symbol):
// the candidates of (p, a) are entries[spans[row*sigma+a]:spans[row*sigma+a+1]]
// with row = Tree.PosIndex[p].
type transTable struct {
	sigma   int32
	spans   []int32
	entries []transEntry
}

// tableBudget caps positions × alphabet span slots, shared with the plain
// dense-table tier.
const tableBudget = table.DefaultBudget

// table returns the counter-augmented transition table, building it on
// first use, or nil when the expression exceeds the budget (the caller
// falls back to appendSteps' on-the-fly enumeration).
func (c *Counted) table() *transTable {
	c.tabOnce.Do(func() {
		if !c.noTable {
			c.tab = c.buildTable(tableBudget)
		}
	})
	return c.tab
}

// buildTable materializes the structural candidates for every (position,
// symbol) pair, or returns nil above the budget. Construction enumerates
// every position pair once — O(positions² · chain) — so like the plain
// dense table both the span count (rows × alphabet) and the pair count
// (rows²) must fit the budget: a long small-alphabet counted model would
// otherwise stall the first Feed (and, through tabOnce, every concurrent
// stream) for minutes. The entry arena is capped at the budget too, so
// memory stays bounded even under deep loop nesting.
func (c *Counted) buildTable(budget int) *transTable {
	t := c.Tree
	rows := t.NumPositions()
	sigma := t.Alpha.Size()
	if rows*sigma > budget || rows*rows > budget {
		return nil
	}
	tab := &transTable{
		sigma: int32(sigma),
		spans: make([]int32, rows*sigma+1),
	}
	for ri, p := range t.PosNode {
		if len(tab.entries) > budget {
			return nil // entry arena past the budget — fall back
		}
		for a := 0; a < sigma; a++ {
			tab.spans[ri*sigma+a] = int32(len(tab.entries))
			// bySym already lists positions per symbol in position order,
			// the phantom $ included (for the Accepts probe) and # never a
			// target — the same candidate order the appendSteps fallback
			// walks, which the differential tests rely on.
			for _, q := range c.bySym[a] {
				n := c.Fol.LCA.Query(p, q)
				if t.Op[n] == parsetree.OpCat &&
					t.InFirst(q, t.RChild[n]) && t.InLast(p, t.LChild[n]) {
					tab.entries = append(tab.entries, transEntry{q: q, n: n, pivot: parsetree.Null})
				}
				for s := t.PLoop[n]; s != parsetree.Null; s = nextLoopUp(t, s) {
					if t.InFirst(q, s) && t.InLast(p, s) {
						tab.entries = append(tab.entries, transEntry{q: q, n: n, pivot: s})
					}
				}
			}
		}
	}
	tab.spans[rows*sigma] = int32(len(tab.entries))
	return tab
}

// stepAll applies every candidate transition of (p, a) — from the table
// when available, enumerated on the fly otherwise — appending the legal
// successor configurations to out.
//
//dregex:noalloc
func (c *Counted) stepAll(p parsetree.NodeID, pc []int32, a ast.Symbol, out *cfgSet, tmp []int32) {
	if tab := c.table(); tab != nil {
		if a < 0 || a >= ast.Symbol(tab.sigma) {
			return
		}
		base := int(c.Tree.PosIndex[p])*int(tab.sigma) + int(a)
		for _, e := range tab.entries[tab.spans[base]:tab.spans[base+1]] {
			c.stepVia(p, pc, e.q, e.n, e.pivot, out, tmp)
		}
		return
	}
	if int(a) < len(c.bySym) {
		for _, q := range c.bySym[a] {
			c.appendSteps(p, pc, q, out, tmp)
		}
	}
}
