package cli

import (
	"encoding/json"
	"fmt"
	"os"
)

// DocReport is the per-document outcome the corpus validators print; the
// error element type is the front end's own ValidationError.
type DocReport[E error] struct {
	Path   string `json:"path"`
	Valid  bool   `json:"valid"`
	Errors []E    `json:"errors,omitempty"`
	Error  string `json:"error,omitempty"`
}

// PrintReports renders validation reports to stdout — an indented JSON
// array, or the text form (quiet suppresses per-document "valid" lines;
// the summary always prints) — and returns the number of invalid
// documents. This is the one report surface shared by xmlvalid and
// xsdvalid, so output format and exit semantics cannot drift apart.
func PrintReports[E error](reports []DocReport[E], jsonOut, quiet bool) (invalid int, err error) {
	for _, r := range reports {
		if !r.Valid {
			invalid++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return invalid, enc.Encode(reports)
	}
	for _, r := range reports {
		if r.Valid {
			if !quiet {
				fmt.Printf("%s: valid\n", r.Path)
			}
			continue
		}
		// A document-level error (malformed XML, say) can coexist with
		// violations found before it; report both, like JSON mode.
		if r.Error != "" {
			fmt.Printf("%s: error: %s\n", r.Path, r.Error)
		} else {
			fmt.Printf("%s: %d error(s)\n", r.Path, len(r.Errors))
		}
		for _, e := range r.Errors {
			fmt.Printf("  %s\n", e)
		}
	}
	fmt.Printf("%d document(s), %d valid, %d invalid\n",
		len(reports), len(reports)-invalid, invalid)
	return invalid, nil
}
