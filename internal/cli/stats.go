// End-of-run metrics summaries for the one-shot CLIs (-stats flags). The
// tallies render through obs.WriteSummary — the same snapshot encoder
// behind dregexd's /metrics endpoint — so the daemon and the CLIs report
// through one vocabulary: counters for totals, gauges for rates, and the
// process-wide engine-tier selection counts from the dregex package.
package cli

import (
	"io"
	"os"
	"time"

	"dregex"
	"dregex/internal/obs"
)

// RunStats is the end-of-run tally of a one-shot CLI: how much was
// processed, how long it took, and (implicitly, from the dregex package
// counters) which engine tiers the run's compiles landed on.
type RunStats struct {
	// Unit names what Count counts ("documents", "words"); it prefixes
	// the total/rate metric names. Empty selects "documents".
	Unit    string
	Count   int
	Invalid int
	// Bytes is the input volume (0 when unknown; the byte metrics are
	// then omitted).
	Bytes   int64
	Elapsed time.Duration
}

// Write renders the summary: totals, throughput rates, and the per-tier
// engine-selection counts, one line per series (zero counters dropped).
func (rs RunStats) Write(w io.Writer) error {
	unit := rs.Unit
	if unit == "" {
		unit = "documents"
	}
	secs := rs.Elapsed.Seconds()
	r := obs.NewRegistry()
	r.CounterFunc(unit+"_total", "Inputs processed.",
		func() uint64 { return uint64(rs.Count) })
	r.CounterFunc(unit+"_invalid_total", "Inputs that failed validation.",
		func() uint64 { return uint64(rs.Invalid) })
	if secs > 0 {
		r.GaugeFunc(unit+"_per_second", "Processing rate.",
			func() float64 { return float64(rs.Count) / secs })
	}
	if rs.Bytes > 0 {
		r.CounterFunc("bytes_total", "Input bytes processed.",
			func() uint64 { return uint64(rs.Bytes) })
		if secs > 0 {
			r.GaugeFunc("bytes_per_second", "Input throughput.",
				func() float64 { return float64(rs.Bytes) / secs })
		}
	}
	r.GaugeFunc("elapsed_seconds", "Wall-clock run time.",
		func() float64 { return secs })
	for _, tier := range dregex.EngineTiers() {
		r.CounterFunc("engine_selections_total",
			"Engine-tier selections by the Auto ladder during this run.",
			func() uint64 { return dregex.EngineSelectionCount(tier) },
			obs.L("tier", tier))
	}
	return r.WriteSummary(w)
}

// SumFileSizes totals the on-disk sizes of paths (unreadable files count
// 0), for the byte-throughput line of a corpus run.
func SumFileSizes(paths []string) int64 {
	var n int64
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil {
			n += fi.Size()
		}
	}
	return n
}
