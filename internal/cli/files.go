// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// CollectFiles expands command-line args into a file list: files are taken
// as-is, directories are walked recursively for names with ext
// (case-insensitive, e.g. ".xml"). One bad path never prevents the rest of
// a corpus from being processed: an unstattable arg or unreadable file is
// kept in the list so the per-file stage reports it as a per-file error,
// and an unreadable directory is skipped with a warning on stderr.
func CollectFiles(args []string, ext string) []string {
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil || !info.IsDir() {
			out = append(out, arg)
			continue
		}
		filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				if d != nil && d.IsDir() {
					fmt.Fprintf(os.Stderr, "warning: skipping %s: %v\n", path, err)
				} else {
					out = append(out, path)
				}
				return nil
			}
			if !d.IsDir() && strings.EqualFold(filepath.Ext(path), ext) {
				out = append(out, path)
			}
			return nil
		})
	}
	return out
}
