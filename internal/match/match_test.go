package match_test

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/match/colored"
	"dregex/internal/match/kore"
	"dregex/internal/match/pathdecomp"
	"dregex/internal/parsetree"
	"dregex/internal/run"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

// sims builds every deterministic transition simulator for tr.
func sims(t *testing.T, tr *parsetree.Tree, fol *follow.Index) map[string]match.TransitionSim {
	t.Helper()
	out := map[string]match.TransitionSim{
		"kore": kore.New(tr, fol),
	}
	cm, err := colored.New(tr, fol, colored.Options{})
	if err != nil {
		t.Fatalf("colored.New: %v", err)
	}
	out["colored-veb"] = cm
	cb, err := colored.New(tr, fol, colored.Options{BinarySearch: true})
	if err != nil {
		t.Fatalf("colored.New(binary): %v", err)
	}
	out["colored-bin"] = cb
	cl, err := colored.NewClimbing(tr, fol)
	if err != nil {
		t.Fatalf("colored.NewClimbing: %v", err)
	}
	out["climbing"] = cl
	pd, err := pathdecomp.New(tr, fol)
	if err != nil {
		t.Fatalf("pathdecomp.New: %v", err)
	}
	out["pathdecomp"] = pd
	return out
}

func compileDet(t *testing.T, expr string) (*parsetree.Tree, *follow.Index) {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr, follow.New(tr)
}

func TestHandPickedWords(t *testing.T) {
	cases := []struct {
		expr   string
		accept []string
		reject []string
	}{
		{
			expr:   "(ab+b(b?)a)*",
			accept: []string{"", "ab", "ba", "bba", "abbaab", "bbaab", "abab"},
			reject: []string{"a", "b", "bb", "aba", "abb", "baa", "c"},
		},
		{
			expr:   "(c?((ab*)(a?c)))*(ba)",
			accept: []string{"ba", "acba", "abbbacba", "aacacba", "cacaacba"},
			reject: []string{"", "b", "ab", "acb", "bab", "caba"},
		},
		{
			expr:   "a?b?c?",
			accept: []string{"", "a", "b", "c", "ab", "ac", "bc", "abc"},
			reject: []string{"aa", "ba", "cb", "abca"},
		},
		{
			expr:   "(a+b)*",
			accept: []string{"", "a", "b", "abba", "bbbb"},
			reject: []string{"c", "abc"},
		},
	}
	for _, c := range cases {
		tr, fol := compileDet(t, c.expr)
		for name, sim := range sims(t, tr, fol) {
			for _, w := range c.accept {
				if !match.Chars(sim, w) {
					t.Errorf("%s/%s must accept %q", c.expr, name, w)
				}
			}
			for _, w := range c.reject {
				if match.Chars(sim, w) {
					t.Errorf("%s/%s must reject %q", c.expr, name, w)
				}
			}
		}
	}
}

// TestAgainstGlushkovOracle fuzzes every matcher against NFA simulation on
// positive samples, noise words, and near-miss mutations.
func TestAgainstGlushkovOracle(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	trials := 0
	for trials < 150 {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 8, 50, trials%2 == 0)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		oracle := glushkov.Build(tr)
		ms := sims(t, tr, fol)
		trials++
		var corpus [][]ast.Symbol
		for i := 0; i < 10; i++ {
			if w, ok := words.RandomWord(r, fol, 30, 0.25); ok {
				corpus = append(corpus, w)
				corpus = append(corpus, words.Mutate(r, tr, w, 1+r.Intn(3)))
			}
			corpus = append(corpus, words.NoiseWord(r, tr, r.Intn(12)))
		}
		for _, w := range corpus {
			want := oracle.Match(w)
			for name, sim := range ms {
				if got := match.Word(sim, w); got != want {
					t.Fatalf("%s on %s word %v: got %v, oracle %v",
						name, ast.StringMath(e, alpha), w, got, want)
				}
			}
		}
	}
}

func TestKOREBound(t *testing.T) {
	alpha := ast.NewAlphabet()
	e := ast.Normalize(wordgen.KOccurrence(alpha, 6, 3))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	m := kore.New(tr, follow.New(tr))
	if m.K != 3 {
		t.Errorf("K = %d, want 3", m.K)
	}
}

func TestNondeterministicKORE(t *testing.T) {
	// The NFA variant must match nondeterministic expressions correctly.
	r := rand.New(rand.NewSource(223))
	for trial := 0; trial < 120; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 30}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		oracle := glushkov.Build(tr)
		nfa := kore.NewNFA(tr, fol)
		for i := 0; i < 20; i++ {
			var w []ast.Symbol
			if i%2 == 0 {
				if pw, ok := words.RandomWord(r, fol, 15, 0.3); ok {
					w = pw
				}
			}
			if w == nil {
				w = words.NoiseWord(r, tr, r.Intn(10))
			}
			if got, want := nfa.Match(w), oracle.Match(w); got != want {
				t.Fatalf("NFA on %s word %v: got %v, want %v",
					ast.StringMath(e, alpha), w, got, want)
			}
		}
	}
}

func TestColoredRejectsNondeterministic(t *testing.T) {
	tr, fol := compileDet(t, "(a*ba+bb)*")
	if _, err := colored.New(tr, fol, colored.Options{}); err == nil {
		t.Fatal("colored.New accepted a nondeterministic expression")
	}
	if _, err := colored.NewClimbing(tr, fol); err == nil {
		t.Fatal("NewClimbing accepted a nondeterministic expression")
	}
	if _, err := pathdecomp.New(tr, fol); err == nil {
		t.Fatal("pathdecomp.New accepted a nondeterministic expression")
	}
}

func TestStreamAPI(t *testing.T) {
	tr, fol := compileDet(t, "(ab+b(b?)a)*")
	m := kore.New(tr, fol)
	s := match.NewStream(m)
	if !s.Accepts() { // ε ∈ L
		t.Fatal("empty prefix must accept")
	}
	for _, step := range []struct {
		sym     string
		alive   bool
		accepts bool
	}{
		{"a", true, false},
		{"b", true, true},
		{"b", true, false},
		{"b", true, false},
		{"a", true, true},
		{"c", false, false},
	} {
		s.FeedName(step.sym)
		if s.Alive() != step.alive || s.Accepts() != step.accepts {
			t.Fatalf("after %q: alive=%v accepts=%v, want %v %v",
				step.sym, s.Alive(), s.Accepts(), step.alive, step.accepts)
		}
	}
	s.Reset()
	if !s.Alive() || s.Len() != 0 || !s.Accepts() {
		t.Fatal("Reset did not restore the start state")
	}
}

func TestFeedRune(t *testing.T) {
	tr, fol := compileDet(t, "(ab+b(b?)a)*")
	m := kore.New(tr, fol)
	var s match.Stream
	s.Init(m)
	for _, r := range "abba" {
		if !s.FeedRune(r) {
			t.Fatalf("FeedRune(%q) died", r)
		}
	}
	if !s.Accepts() {
		t.Fatal("abba must accept")
	}
	s.Init(m)
	if s.FeedRune('x') || s.Alive() {
		t.Fatal("rune outside the alphabet must kill the stream")
	}
	s.Init(m)
	if s.FeedRune('#') || s.FeedRune('$') {
		t.Fatal("phantom markers must reject")
	}
}

// TestFeedRuneZeroAlloc pins the rune hot path: ReaderRunes used to
// allocate a string per input rune via FeedName(string(ch)).
func TestFeedRuneZeroAlloc(t *testing.T) {
	tr, fol := compileDet(t, "(ab+b(b?)a)*")
	m := kore.New(tr, fol)
	var s match.Stream
	word := "abbaabbaab"
	allocs := testing.AllocsPerRun(1000, func() {
		s.Init(m)
		for _, r := range word {
			s.FeedRune(r)
		}
		_ = s.Accepts()
	})
	if allocs != 0 {
		t.Errorf("FeedRune path allocates %.1f per word, want 0", allocs)
	}
}

func TestReaders(t *testing.T) {
	tr, fol := compileDet(t, "(ab+b(b?)a)*")
	m := kore.New(tr, fol)
	var s match.Stream
	s.Init(m)
	ok, err := run.ReaderRunes(&s, strings.NewReader("abba\nab"))
	if err != nil || !ok {
		t.Fatalf("ReaderRunes: %v %v", ok, err)
	}
	// Token-separated input streams the same word: whitespace is skipped.
	s.Init(m)
	ok, err = run.ReaderRunes(&s, strings.NewReader("a b\tb a\nab"))
	if err != nil || !ok {
		t.Fatalf("ReaderRunes with spaces: %v %v", ok, err)
	}
	s.Init(m)
	ok, err = run.ReaderRunes(&s, strings.NewReader("abx"))
	if err != nil || ok {
		t.Fatalf("ReaderRunes reject: %v %v", ok, err)
	}

	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseDTD("title, author+, (section | appendix)*", alpha))
	e = ast.Normalize(ast.DesugarPlus(e))
	tr2, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	m2 := kore.New(tr2, follow.New(tr2))
	s.Init(m2)
	ok, err = run.ReaderTokens(&s, strings.NewReader("title author author section section appendix"))
	if err != nil || !ok {
		t.Fatalf("ReaderTokens: %v %v", ok, err)
	}
	s.Init(m2)
	ok, err = run.ReaderTokens(&s, strings.NewReader("title section"))
	if err != nil || ok {
		t.Fatalf("ReaderTokens reject: %v %v", ok, err)
	}
}

// TestExpectedNext pins the failure diagnostics: the legal continuations
// reported from a live prefix, and from the last viable prefix once dead.
func TestExpectedNext(t *testing.T) {
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseDTD("title, author+, (section | appendix)*", alpha))
	e = ast.Normalize(ast.DesugarPlus(e))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	m := kore.New(tr, follow.New(tr))
	var s match.Stream
	s.Init(m)
	if got := run.ExpectedNames(&s, nil); !reflect.DeepEqual(got, []string{"title"}) {
		t.Fatalf("expected at start: %v", got)
	}
	s.FeedName("title")
	if got := run.ExpectedNames(&s, nil); !reflect.DeepEqual(got, []string{"author"}) {
		t.Fatalf("expected after title: %v", got)
	}
	s.FeedName("author")
	want := []string{"author", "section", "appendix"}
	sortStrings(want)
	got := run.ExpectedNames(&s, nil)
	sortStrings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expected after author: %v, want %v", got, want)
	}
	// Kill the stream: expectations must report from the last viable prefix.
	if s.FeedName("title") || s.Alive() {
		t.Fatal("title after author must kill")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after kill = %d, want 2 (killing symbol not counted)", s.Len())
	}
	got = run.ExpectedNames(&s, nil)
	sortStrings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expected after death: %v, want %v", got, want)
	}
}

func sortStrings(s []string) {
	sort.Strings(s)
}

// TestWitnessTrace pins the opt-in parse-witness recording: the trace of an
// accepted word is its position sequence, and Reset/Init truncate it.
func TestWitnessTrace(t *testing.T) {
	tr, fol := compileDet(t, "(ab+b(b?)a)*")
	m := kore.New(tr, fol)
	var s match.Stream
	s.Init(m)
	if s.Witness() != nil {
		t.Fatal("witness must be nil before a trace is attached")
	}
	var trace run.Trace
	s.SetTrace(&trace)
	for _, r := range "abba" {
		s.FeedRune(r)
	}
	w := s.Witness()
	if len(w) != 4 {
		t.Fatalf("witness length %d, want 4", len(w))
	}
	for i, p := range w {
		if p == parsetree.Null {
			t.Fatalf("witness[%d] is Null", i)
		}
		if got, want := tr.Alpha.Name(tr.Sym[p]), string("abba"[i]); got != want {
			t.Fatalf("witness[%d] labeled %q, want %q", i, got, want)
		}
	}
	// A rejected word, then Init: no stale positions may leak.
	s.Init(m)
	s.SetTrace(&trace)
	s.FeedRune('a')
	s.FeedRune('x') // dies
	s.Init(m)
	if len(s.Witness()) != 0 {
		t.Fatalf("witness after Init = %v, want empty", s.Witness())
	}
	s.FeedRune('b')
	if w := s.Witness(); len(w) != 1 || tr.Alpha.Name(tr.Sym[w[0]]) != "b" {
		t.Fatalf("witness after reuse = %v", w)
	}
}
