package kore

import (
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/match"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

// The cross-engine and oracle fuzzing for this matcher lives in
// package match's test suite; here only the k-ORE-specific accounting is
// checked.

func compile(t *testing.T, e *ast.Node, alpha *ast.Alphabet) (*parsetree.Tree, *follow.Index) {
	t.Helper()
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr, follow.New(tr)
}

func TestOccurrenceBookkeeping(t *testing.T) {
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("(ab+b(b?)a)*", alpha), alpha)
	m := New(tr, fol)
	if m.K != 3 { // three b's
		t.Fatalf("K = %d, want 3", m.K)
	}
	b, _ := alpha.Lookup("b")
	a, _ := alpha.Lookup("a")
	if len(m.occ[b]) != 3 || len(m.occ[a]) != 2 {
		t.Fatalf("occurrence lists wrong: b=%d a=%d", len(m.occ[b]), len(m.occ[a]))
	}
	// Occurrence lists are in document order.
	for _, occ := range m.occ {
		for i := 1; i < len(occ); i++ {
			if occ[i-1] >= occ[i] {
				t.Fatal("occurrence list not in document order")
			}
		}
	}
}

func TestUnknownSymbol(t *testing.T) {
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("ab", alpha), alpha)
	m := New(tr, fol)
	other := alpha.Intern("zz") // interned after preprocessing
	if q := m.Next(tr.BeginPos(), other); q != parsetree.Null {
		t.Fatalf("transition on unseen symbol returned %d", q)
	}
}

func TestOneOREFastPath(t *testing.T) {
	// 1-OREs are the common real-world case (98% per the paper's related
	// work): each transition does exactly one checkIfFollow.
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.Normalize(wordgen.KOccurrence(alpha, 12, 1)), alpha)
	m := New(tr, fol)
	if m.K != 1 {
		t.Fatalf("K = %d, want 1", m.K)
	}
	w := []string{"sep0"}
	for i := 0; i < 12; i++ {
		w = append(w, wordgen.SymbolName(i))
	}
	if !match.Names(m, w) {
		t.Fatal("full block must match")
	}
	if match.Names(m, append(w, "sep0")) {
		t.Fatal("trailing separator must reject")
	}
}
