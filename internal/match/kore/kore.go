// Package kore implements Theorem 4.3 of the paper: matching against a
// deterministic k-occurrence regular expression (k-ORE) in O(|e| + k|w|)
// after O(|e|) preprocessing. A k-ORE uses each symbol at most k times, so
// a transition from position p on symbol a only needs the constant-time
// checkIfFollow test (Theorem 2.4) against the ≤ k positions labeled a.
//
// The package also provides the nondeterministic variant sketched after
// Theorem 4.3: a position-set simulation costing O(k²) per symbol, which
// matches arbitrary (possibly nondeterministic) expressions.
package kore

import (
	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
)

// Matcher is the deterministic k-ORE transition simulator.
type Matcher struct {
	t   *parsetree.Tree
	fol *follow.Index
	// occ[a] lists the positions labeled a, in document order.
	occ [][]parsetree.NodeID
	// K is the largest occurrence count (the k in k-ORE).
	K int
}

// New preprocesses t in O(|e|). The expression should be deterministic for
// Next to be meaningful (with duplicates followers, the first in document
// order wins); determinism is the caller's contract, checked by the public
// API layer.
func New(t *parsetree.Tree, fol *follow.Index) *Matcher {
	m := &Matcher{t: t, fol: fol, occ: make([][]parsetree.NodeID, t.Alpha.Size())}
	for _, p := range t.PosNode {
		s := t.Sym[p]
		m.occ[s] = append(m.occ[s], p)
		if len(m.occ[s]) > m.K {
			m.K = len(m.occ[s])
		}
	}
	return m
}

// Tree implements match.TransitionSim.
func (m *Matcher) Tree() *parsetree.Tree { return m.t }

// Start implements match.TransitionSim.
func (m *Matcher) Start() parsetree.NodeID { return m.t.BeginPos() }

// Next returns the a-labeled follower of p in O(k).
func (m *Matcher) Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID {
	if a < 0 || int(a) >= len(m.occ) {
		return parsetree.Null
	}
	for _, q := range m.occ[a] {
		if m.fol.CheckIfFollow(p, q) {
			return q
		}
	}
	return parsetree.Null
}

// Accept implements match.TransitionSim.
func (m *Matcher) Accept(p parsetree.NodeID) bool {
	return m.fol.CheckIfFollow(p, m.t.EndPos())
}

// NFA is the nondeterministic k-ORE matcher: it tracks the set of
// positions reachable on the prefix read so far (≤ k positions, since all
// share the last symbol), costing O(k²) per symbol.
type NFA struct {
	m *Matcher
}

// NewNFA wraps a Matcher's tables for set simulation.
func NewNFA(t *parsetree.Tree, fol *follow.Index) *NFA {
	return &NFA{m: New(t, fol)}
}

// K returns the occurrence bound.
func (n *NFA) K() int { return n.m.K }

// Match runs the set simulation over a word of interned symbols.
func (n *NFA) Match(word []ast.Symbol) bool {
	cur := []parsetree.NodeID{n.m.t.BeginPos()}
	var next []parsetree.NodeID
	for _, a := range word {
		next = next[:0]
		if a >= ast.FirstUser && int(a) < len(n.m.occ) {
			for _, q := range n.m.occ[a] {
				for _, p := range cur {
					if n.m.fol.CheckIfFollow(p, q) {
						next = append(next, q)
						break
					}
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur, next = next, cur
	}
	end := n.m.t.EndPos()
	for _, p := range cur {
		if n.m.fol.CheckIfFollow(p, end) {
			return true
		}
	}
	return false
}

// MatchNames is Match over symbol names.
func (n *NFA) MatchNames(names []string) bool {
	alpha := n.m.t.Alpha
	word := make([]ast.Symbol, len(names))
	for i, name := range names {
		s, ok := alpha.Lookup(name)
		if !ok || s == ast.Begin || s == ast.End {
			return false
		}
		word[i] = s
	}
	return n.Match(word)
}
