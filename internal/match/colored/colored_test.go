package colored

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/match"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

// TestExample41 replays Example 4.1 of the paper on Figure 1's e0: from p3
// reading c must reach p5 (the Witness candidate); from p5 reading a must
// reach p2 (the FirstPos candidate).
func TestExample41(t *testing.T) {
	alpha := ast.NewAlphabet()
	tr, err := parsetree.Build(ast.Normalize(
		ast.MustParseMath("(c?((ab*)(a?c)))*(ba)", alpha)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	fol := follow.New(tr)
	m, err := New(tr, fol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := alpha.Lookup("c")
	a, _ := alpha.Lookup("a")
	p := func(i int) parsetree.NodeID { return tr.PosNode[i] }
	if got := m.Next(p(3), c); got != p(5) {
		t.Errorf("Next(p3, c) = %d, want p5=%d", got, p(5))
	}
	if got := m.Next(p(5), a); got != p(2) {
		t.Errorf("Next(p5, a) = %d, want p2=%d", got, p(2))
	}
	// And the whole-word sanity: c a b b a c then b a.
	if !match.Chars(m, "cabbacba") {
		t.Error("e0 must accept cabbacba")
	}
}

// TestLargeAlphabet stresses the per-color structures: mixed content over
// 20k symbols, transitions on every symbol.
func TestLargeAlphabet(t *testing.T) {
	alpha := ast.NewAlphabet()
	const m = 20000
	tr, err := parsetree.Build(ast.Normalize(wordgen.MixedContent(alpha, m)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	fol := follow.New(tr)
	for _, binary := range []bool{false, true} {
		cm, err := New(tr, fol, Options{BinarySearch: binary})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(701))
		p := cm.Start()
		for step := 0; step < 5000; step++ {
			sym, _ := alpha.Lookup(wordgen.SymbolName(r.Intn(m)))
			q := cm.Next(p, sym)
			if q == parsetree.Null || tr.Sym[q] != sym {
				t.Fatalf("binary=%v step %d: transition failed", binary, step)
			}
			p = q
		}
		if !cm.Accept(p) {
			t.Fatalf("binary=%v: mixed content must accept any prefix", binary)
		}
	}
}

// TestAgainstClimbing checks that the O(log log) index and the O(depth)
// climb resolve to identical transitions everywhere.
func TestAgainstClimbing(t *testing.T) {
	r := rand.New(rand.NewSource(709))
	for trial := 0; trial < 80; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 8, 60, trial%2 == 0)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		cm, err := New(tr, fol, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewClimbing(tr, fol)
		if err != nil {
			t.Fatal(err)
		}
		sigma := tr.Alpha.Size()
		for i := 0; i < tr.NumPositions()-1; i++ {
			p := tr.PosNode[i]
			for s := 2; s < sigma; s++ { // user symbols
				q1 := cm.Next(p, ast.Symbol(s))
				q2 := cl.Next(p, ast.Symbol(s))
				if q1 != q2 {
					t.Fatalf("%s: Next(%d,%d): colored=%d climbing=%d",
						ast.StringMath(e, alpha), p, s, q1, q2)
				}
			}
		}
	}
}
