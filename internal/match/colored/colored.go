// Package colored implements Theorem 4.2 of the paper: matching an
// arbitrary deterministic regular expression in O(|w| log log |e|) after
// O(|e|) expected preprocessing.
//
// The machinery is exactly the linear determinism test's: by Lemma 3.3, the
// a-labeled follower of a position p — if it exists — is one of the three
// candidates Witness(n,a), FirstPos(n,a), Next(n,a) stored at the lowest
// ancestor n of p with color a. The lowest colored ancestor query costs
// O(log log |e|) (package colorancestor, vEB-backed), and the right
// candidate is selected with the O(1) checkIfFollow test (Theorem 2.4).
package colored

import (
	"errors"

	"dregex/internal/ast"
	"dregex/internal/colorancestor"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// ErrNondeterministic is returned when the expression fails the
// determinism test; Lemma 3.3 candidate resolution requires determinism.
var ErrNondeterministic = errors.New("colored: expression is not deterministic")

// Matcher is the Theorem 4.2 transition simulator.
type Matcher struct {
	t   *parsetree.Tree
	fol *follow.Index
	ca  *colorancestor.Index
	// Candidate triples per colored node, indexed by the payload stored
	// in ca: [witness, firstPos, next].
	cand [][3]parsetree.NodeID
}

// Options forwards backend selection to the colored-ancestor index.
type Options struct {
	// BinarySearch selects the O(log n) predecessor backend instead of
	// van Emde Boas (ablation experiment E5).
	BinarySearch bool
}

// New builds the matcher, running the linear determinism test on the way
// (the skeleta are shared between the test and the matcher, as in §4.1).
// It returns ErrNondeterministic for nondeterministic expressions.
func New(t *parsetree.Tree, fol *follow.Index, opt Options) (*Matcher, error) {
	sks := skeleton.Build(t, fol, skeleton.Options{})
	if res := determinism.CheckSkeletons(t, sks, false); !res.Deterministic {
		return nil, ErrNondeterministic
	}
	m := &Matcher{t: t, fol: fol}
	declared := make([]colorancestor.ColoredNode, 0, len(sks.ColoredNodes))
	for _, c := range sks.ColoredNodes {
		payload := int32(len(m.cand))
		m.cand = append(m.cand, [3]parsetree.NodeID{
			sks.Wit[c.Sk], sks.First[c.Sk], sks.Next[c.Sk],
		})
		declared = append(declared, colorancestor.ColoredNode{
			Sym: c.Sym, Node: c.Node, Payload: payload,
		})
	}
	m.ca = colorancestor.Build(t, declared, colorancestor.Options{
		BinarySearch: opt.BinarySearch,
	})
	return m, nil
}

// Tree implements match.TransitionSim.
func (m *Matcher) Tree() *parsetree.Tree { return m.t }

// Start implements match.TransitionSim.
func (m *Matcher) Start() parsetree.NodeID { return m.t.BeginPos() }

// Next returns the a-labeled follower of p in O(log log |e|).
func (m *Matcher) Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID {
	payload, ok := m.ca.Query(p, a)
	if !ok {
		return parsetree.Null
	}
	for _, q := range m.cand[payload] {
		if q != parsetree.Null && m.fol.CheckIfFollow(p, q) {
			return q
		}
	}
	return parsetree.Null
}

// Accept implements match.TransitionSim.
func (m *Matcher) Accept(p parsetree.NodeID) bool {
	return m.Next(p, ast.End) == m.t.EndPos()
}

// Climbing is the naive transition simulator the paper contrasts with in
// §4.3: it walks the ancestor chain of p looking for the lowest a-colored
// node instead of querying the colored-ancestor index, costing
// O(depth(e)) per symbol. It is the baseline of experiment E4/E5.
type Climbing struct {
	t   *parsetree.Tree
	fol *follow.Index
	// colorAt[(node, sym)] → candidate triple index
	colorAt map[int64]int32
	cand    [][3]parsetree.NodeID
}

// NewClimbing builds the baseline from the same skeleta.
func NewClimbing(t *parsetree.Tree, fol *follow.Index) (*Climbing, error) {
	sks := skeleton.Build(t, fol, skeleton.Options{})
	if res := determinism.CheckSkeletons(t, sks, false); !res.Deterministic {
		return nil, ErrNondeterministic
	}
	c := &Climbing{t: t, fol: fol, colorAt: make(map[int64]int32, len(sks.ColoredNodes))}
	for _, cn := range sks.ColoredNodes {
		idx := int32(len(c.cand))
		c.cand = append(c.cand, [3]parsetree.NodeID{
			sks.Wit[cn.Sk], sks.First[cn.Sk], sks.Next[cn.Sk],
		})
		c.colorAt[colorKey(cn.Node, cn.Sym)] = idx
	}
	return c, nil
}

func colorKey(n parsetree.NodeID, a ast.Symbol) int64 {
	return int64(n)<<32 | int64(uint32(a))
}

// Tree implements match.TransitionSim.
func (c *Climbing) Tree() *parsetree.Tree { return c.t }

// Start implements match.TransitionSim.
func (c *Climbing) Start() parsetree.NodeID { return c.t.BeginPos() }

// Next climbs ancestors to the lowest a-colored node, then resolves the
// Lemma 3.3 candidates.
func (c *Climbing) Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID {
	for x := c.t.Parent[p]; x != parsetree.Null; x = c.t.Parent[x] {
		idx, ok := c.colorAt[colorKey(x, a)]
		if !ok {
			continue
		}
		for _, q := range c.cand[idx] {
			if q != parsetree.Null && c.fol.CheckIfFollow(p, q) {
				return q
			}
		}
		return parsetree.Null // Lemma 3.3: only the lowest colored ancestor matters
	}
	return parsetree.Null
}

// Accept implements match.TransitionSim.
func (c *Climbing) Accept(p parsetree.NodeID) bool {
	return c.Next(p, ast.End) == c.t.EndPos()
}
