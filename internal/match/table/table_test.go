package table

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/match"
	"dregex/internal/match/kore"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

func compile(t *testing.T, src string) (*parsetree.Tree, *follow.Index, *ast.Alphabet) {
	t.Helper()
	alpha := ast.NewAlphabet()
	e, err := ast.ParseMath(src, alpha)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := parsetree.Build(ast.Normalize(ast.DesugarPlus(ast.Normalize(e))), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr, follow.New(tr), alpha
}

func TestDFAMatchesKnownWords(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"(ab+b(b?)a)*", []string{"", "ab", "bba", "ba", "abba", "baab"}, []string{"a", "b", "aa", "abb"}},
		{"a(b+c)*d", []string{"ad", "abd", "acbd"}, []string{"", "a", "d", "abc"}},
		{"(ab)?c", []string{"c", "abc"}, []string{"", "ab", "ac", "abcc"}},
	}
	for _, c := range cases {
		tr, fol, alpha := compile(t, c.expr)
		d, err := New(tr, fol, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", c.expr, err)
		}
		intern := func(w string) []ast.Symbol {
			out := make([]ast.Symbol, 0, len(w))
			for _, r := range w {
				s, ok := alpha.LookupRune(r)
				if !ok {
					s = ast.None
				}
				out = append(out, s)
			}
			return out
		}
		for _, w := range c.yes {
			if !d.MatchWord(intern(w)) {
				t.Errorf("%q: MatchWord(%q) = false, want true", c.expr, w)
			}
			if !match.Word(d, intern(w)) {
				t.Errorf("%q: match.Word(%q) = false, want true (TransitionSim path)", c.expr, w)
			}
		}
		for _, w := range c.no {
			if d.MatchWord(intern(w)) {
				t.Errorf("%q: MatchWord(%q) = true, want false", c.expr, w)
			}
			if match.Word(d, intern(w)) {
				t.Errorf("%q: match.Word(%q) = true, want false (TransitionSim path)", c.expr, w)
			}
		}
	}
}

// TestDFAAgreesWithKore cross-checks both the devirtualized MatchWord loop
// and the TransitionSim interface path against the k-ORE engine on random
// deterministic expressions.
func TestDFAAgreesWithKore(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		alpha := ast.NewAlphabet()
		root := wordgen.RandomDeterministicExpr(r, alpha, 6+r.Intn(10), 20+r.Intn(40), i%2 == 0)
		tr, err := parsetree.Build(ast.Normalize(root), alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		d, err := New(tr, fol, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref := kore.New(tr, fol)
		corpus := [][]ast.Symbol{{}}
		for j := 0; j < 8; j++ {
			if w, ok := words.RandomWord(r, fol, 24, 0.15); ok {
				corpus = append(corpus, w)
				corpus = append(corpus, words.Mutate(r, tr, w, 1+r.Intn(3)))
			}
			corpus = append(corpus, words.NoiseWord(r, tr, 1+r.Intn(10)))
		}
		for _, w := range corpus {
			want := match.Word(ref, w)
			if got := d.MatchWord(w); got != want {
				t.Errorf("case %d: MatchWord(%v) = %v, kore says %v", i, w, got, want)
			}
			if got := match.Word(d, w); got != want {
				t.Errorf("case %d: match.Word(%v) = %v, kore says %v", i, w, got, want)
			}
		}
	}
}

// TestDFAStream runs the generic match.Stream driver on the table engine:
// the per-word state is the single current NodeID.
func TestDFAStream(t *testing.T) {
	tr, fol, alpha := compile(t, "a(b+c)*d")
	d, err := New(tr, fol, 0)
	if err != nil {
		t.Fatal(err)
	}
	var s match.Stream
	s.Init(d)
	for _, r := range "abcd" {
		sym, ok := alpha.LookupRune(r)
		if !ok {
			t.Fatalf("rune %q not interned", r)
		}
		if !s.Feed(sym) {
			t.Fatalf("Feed(%q) reported dead", r)
		}
	}
	if !s.Accepts() {
		t.Fatal("abcd must be accepted")
	}
	s.Reset()
	if s.Accepts() {
		t.Fatal("empty prefix must not be accepted")
	}
}

func TestDFABudget(t *testing.T) {
	tr, fol, _ := compile(t, "a(b+c)*d")
	entries := tr.NumPositions() * tr.Alpha.Size()
	if _, err := New(tr, fol, entries); err != nil {
		t.Fatalf("budget == entries (%d) must build: %v", entries, err)
	}
	_, err := New(tr, fol, entries-1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("budget == entries-1 must fail with ErrBudget, got %v", err)
	}
}

func TestDFARejectsForeignSymbols(t *testing.T) {
	tr, fol, _ := compile(t, "ab")
	d, err := New(tr, fol, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]ast.Symbol{
		{ast.None},
		{ast.Begin},
		{ast.End},
		{ast.Symbol(1000)},
		{ast.FirstUser, ast.FirstUser + 1, ast.Symbol(1000)},
	} {
		if d.MatchWord(w) {
			t.Errorf("MatchWord(%v) = true, want false", w)
		}
		if match.Word(d, w) {
			t.Errorf("match.Word(%v) = true, want false", w)
		}
	}
}

func TestDFAEntries(t *testing.T) {
	tr, fol, _ := compile(t, "ab")
	d, err := New(tr, fol, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.NumPositions() * tr.Alpha.Size()
	if d.Entries() != want {
		t.Fatalf("Entries() = %d, want %d", d.Entries(), want)
	}
	if fmt.Sprint(d.Start()) != fmt.Sprint(tr.BeginPos()) {
		t.Fatalf("Start() = %v, want %v", d.Start(), tr.BeginPos())
	}
}
