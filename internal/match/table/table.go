// Package table is the flat-table DFA fast path: a dense transition table
// built directly from the follow sets of a deterministic expression.
//
// For a deterministic expression the Glushkov automaton is itself
// deterministic — its states are the positions of e (plus the phantom #)
// and the transition on symbol a from position p is the unique a-labeled
// position in Follow(p) — so no subset construction is needed. Large-scale
// studies of real XML schemas report that the overwhelming majority of
// content models are tiny 1-OREs, where an O(positions × alphabet) table
// fits in a few cache lines and a transition is a single indexed load.
// The paper's §4 engines (kore, colored-vEB, path decomposition) stay as
// the fallback for expressions whose table would exceed the size budget:
// they keep precomputation linear in |e| where this table deliberately
// spends O(positions × σ) space and O(positions²) construction time to
// make the per-symbol cost a memory access.
//
// States are position indices (0 = the phantom #); the table stores the
// follower's position index, Dead where no follower exists. Acceptance is
// a packed bitset over states (bit set iff the phantom $ follows the
// position). Per-word matching state is a single int32.
package table

import (
	"errors"
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
)

// Dead is the absent-transition sentinel stored in the table.
const Dead int32 = -1

// DefaultBudget caps positions × alphabet table entries; above it New
// refuses to build and callers fall back to the linear-precomputation
// engines. 1<<20 int32 entries is 4 MiB — far beyond any real-world
// content model (the 1-ORE models that dominate real corpora are a few
// dozen entries) while still small enough that even a pathological cache
// of thousands of table-built expressions stays modest.
const DefaultBudget = 1 << 20

// ErrBudget is returned by New when positions × alphabet exceeds the
// budget; Auto selection treats it as "use the next tier".
var ErrBudget = errors.New("table: expression exceeds the dense-table size budget")

// DFA is the dense-table transition simulator. It implements
// match.TransitionSim, so streams, readers and the generic drivers all run
// on it unchanged; MatchWord is the devirtualized hot loop.
type DFA struct {
	t *parsetree.Tree
	// sigma is the full alphabet size including the phantom # and $ — the
	// two wasted columns keep row indexing a single multiply.
	sigma int32
	// next[state*sigma + a] is the follower's position index, or Dead.
	next []int32
	// accept is a packed bitset over states: bit p set iff $ ∈ Follow(p).
	accept []uint64
	// posIndex/posNode translate at the TransitionSim boundary (NodeID ↔
	// state); the internal loops never leave state space.
	posIndex []int32
	posNode  []parsetree.NodeID
}

// New builds the table in O(positions² + positions×σ) time and
// positions×σ space, or fails with ErrBudget when either cost exceeds
// budget (budget ≤ 0 selects DefaultBudget). Both terms matter: the table
// itself is positions×σ entries, but construction probes every position
// pair, so a small-alphabet expression with many repeated symbols (tiny
// table, huge pair count) must fall back too — otherwise a ~300 KB
// "a,a,a,…" model reaching Auto through a validator or the server would
// stall for minutes where the §4 engines guarantee linear precomputation.
// The expression must be deterministic — with a doubly-matchable symbol
// the table would silently keep only the first follower in document order
// — which the public API layer enforces.
func New(t *parsetree.Tree, fol *follow.Index, budget int) (*DFA, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	states := t.NumPositions()
	sigma := t.Alpha.Size()
	if entries := states * sigma; entries > budget {
		return nil, fmt.Errorf("%w (%d positions × %d symbols = %d entries > %d)",
			ErrBudget, states, sigma, entries, budget)
	}
	if pairs := states * states; pairs > budget {
		return nil, fmt.Errorf("%w (%d² = %d construction probes > %d)",
			ErrBudget, states, pairs, budget)
	}
	d := &DFA{
		t:        t,
		sigma:    int32(sigma),
		next:     make([]int32, states*sigma),
		accept:   make([]uint64, (states+63)/64),
		posIndex: t.PosIndex,
		posNode:  t.PosNode,
	}
	for i := range d.next {
		d.next[i] = Dead
	}
	end := t.EndPos()
	for pi, p := range t.PosNode {
		row := d.next[pi*sigma : (pi+1)*sigma]
		for qi, q := range t.PosNode {
			a := t.Sym[q]
			if a < ast.FirstUser {
				continue // # is never consumed; $ is the accept test below
			}
			// Determinism means at most one a-labeled follower; keep the
			// first in document order (the same tie-break every §4 engine
			// applies), so even a caller that bypasses the determinism
			// check gets a consistent verdict across engines.
			if row[a] == Dead && fol.CheckIfFollow(p, q) {
				row[a] = int32(qi)
			}
		}
		if fol.CheckIfFollow(p, end) {
			d.accept[pi/64] |= 1 << (pi % 64)
		}
	}
	return d, nil
}

// Entries returns the table size in transitions (states × alphabet).
func (d *DFA) Entries() int { return len(d.next) }

// Tree implements match.TransitionSim.
func (d *DFA) Tree() *parsetree.Tree { return d.t }

// Start implements match.TransitionSim.
func (d *DFA) Start() parsetree.NodeID { return d.posNode[0] }

// Next implements match.TransitionSim: one indexed load (plus the NodeID ↔
// state translation the interface contract requires).
//
//dregex:noalloc
func (d *DFA) Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID {
	if a < 0 || a >= ast.Symbol(d.sigma) {
		return parsetree.Null
	}
	s := d.next[d.posIndex[p]*d.sigma+int32(a)]
	if s == Dead {
		return parsetree.Null
	}
	return d.posNode[s]
}

// Accept implements match.TransitionSim.
//
//dregex:noalloc
func (d *DFA) Accept(p parsetree.NodeID) bool {
	pi := d.posIndex[p]
	return d.accept[pi/64]&(1<<(pi%64)) != 0
}

// StartState returns the state-space start (the phantom #'s position
// index), for callers that step in raw state space via Step/AcceptState —
// the lexer's per-rule fast path, which keeps one int32 per rule instead
// of a NodeID it would translate on every symbol.
func (d *DFA) StartState() int32 { return 0 }

// Step advances one state in raw state space: one bounds check and one
// table load. Returns Dead when no follower exists (a Dead input stays
// Dead, so callers may step a dead rule harmlessly).
//
//dregex:noalloc
func (d *DFA) Step(state int32, a ast.Symbol) int32 {
	if state == Dead || a < ast.FirstUser || a >= ast.Symbol(d.sigma) {
		return Dead
	}
	return d.next[state*d.sigma+int32(a)]
}

// AcceptState reports acceptance of a raw state (false for Dead).
//
//dregex:noalloc
func (d *DFA) AcceptState(state int32) bool {
	return state != Dead && d.accept[state/64]&(1<<(state%64)) != 0
}

// StateNode translates a live raw state back to its position NodeID.
//
//dregex:noalloc
func (d *DFA) StateNode(state int32) parsetree.NodeID {
	if state == Dead {
		return parsetree.Null
	}
	return d.posNode[state]
}

// MatchWord is the devirtualized hot loop over a word of interned symbols:
// per symbol, one bounds check and one table load, no interface calls and
// no allocation. Symbols outside the user alphabet reject, exactly like
// match.Word.
//
//dregex:noalloc
func (d *DFA) MatchWord(word []ast.Symbol) bool {
	state := int32(0) // position index of the phantom #
	sigma := d.sigma
	nxt := d.next
	for _, a := range word {
		if a < ast.FirstUser || a >= ast.Symbol(sigma) {
			return false
		}
		state = nxt[state*sigma+int32(a)]
		if state == Dead {
			return false
		}
	}
	return d.accept[state/64]&(1<<(state%64)) != 0
}
