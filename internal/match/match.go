// Package match defines the transition-simulation contract shared by all
// matchers of the paper's §4 and the word/stream drivers built on it.
//
// Every matcher realizes one procedure: "given a position p and a symbol a,
// return the position labeled a that follows p, or Null" (§4, intro). With
// rule (R1) in place, matching a word w against e′ is: start at the phantom
// position #, step through w, and finally test whether the phantom $
// follows the last position (§4: "matching a word w against e′ is
// straightforward").
//
// All matchers are streamable: drivers consume input symbol by symbol in
// one pass and keep O(1) state beyond the preprocessed expression. Stream
// is the run.Runner adapter over any TransitionSim — the plain §4 engines
// and the dense table tier all stream through it; the generic drivers
// (readers, witness recording, expected-next diagnostics) live in
// internal/run and work on any Runner.
package match

import (
	"dregex/internal/ast"
	"dregex/internal/parsetree"
	"dregex/internal/run"
)

// TransitionSim is the §4 transition-simulation procedure.
type TransitionSim interface {
	// Tree returns the compiled expression the simulator runs on.
	Tree() *parsetree.Tree
	// Start returns the initial position (the phantom #).
	Start() parsetree.NodeID
	// Next returns the position labeled a that follows p, or Null.
	Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID
	// Accept reports whether a word ending at position p is in L(e),
	// i.e. whether the phantom $ follows p.
	Accept(p parsetree.NodeID) bool
}

// Word matches a word of interned symbols. Symbols outside the user
// alphabet — ast.None from a failed lookup, or the reserved markers —
// reject, so words interned against a different (or extended) alphabet are
// handled gracefully. Word performs no allocation: it is the devirtualized
// whole-word fast path; incremental and recorded runs go through Stream.
//
//dregex:noalloc
func Word(sim TransitionSim, word []ast.Symbol) bool {
	p := sim.Start()
	for _, a := range word {
		if a < ast.FirstUser {
			return false
		}
		p = sim.Next(p, a)
		if p == parsetree.Null {
			return false
		}
	}
	return sim.Accept(p)
}

// Names matches a word of symbol names; names outside the alphabet (or the
// reserved markers) reject. Allocation-free, like Word.
//
//dregex:noalloc
func Names(sim TransitionSim, names []string) bool {
	alpha := sim.Tree().Alpha
	p := sim.Start()
	for _, n := range names {
		a, ok := run.LookupName(alpha, n)
		if !ok {
			return false
		}
		p = sim.Next(p, a)
		if p == parsetree.Null {
			return false
		}
	}
	return sim.Accept(p)
}

// Chars matches a word of single-rune symbols (the paper's mathematical
// notation) without allocating per rune.
//
//dregex:noalloc
func Chars(sim TransitionSim, w string) bool {
	alpha := sim.Tree().Alpha
	p := sim.Start()
	for _, r := range w {
		a, ok := run.LookupRune(alpha, r)
		if !ok {
			return false
		}
		p = sim.Next(p, a)
		if p == parsetree.Null {
			return false
		}
	}
	return sim.Accept(p)
}

// Stream is an incremental matcher: feed symbols one at a time, query
// acceptance at any prefix. It adapts any TransitionSim to the run.Runner
// contract — the engine-independent bookkeeping (liveness, length, the
// opt-in witness trace) is the embedded run.Core; this type adds only the
// single-position state the §4 simulators maintain. The zero value is
// unusable; call NewStream or Init.
type Stream struct {
	run.Core
	sim TransitionSim
	// cur is the current position while alive, and the LAST VIABLE
	// position once dead — kept so ExpectedNext can report what could
	// have extended the run at the point of failure.
	cur parsetree.NodeID
}

// Stream implements run.Runner.
var _ run.Runner = (*Stream)(nil)

// NewStream starts a stream at the phantom # position.
func NewStream(sim TransitionSim) *Stream {
	s := &Stream{}
	s.Init(sim)
	return s
}

// Init (re)binds a stream to a simulator and rewinds it to the empty
// prefix. It lets callers embed Stream by value — one per stack frame or
// per worker — and restart matches with zero allocation. An attached
// witness trace stays attached but is truncated, so a rejected previous
// word can never leak positions into the next word's witness.
func (s *Stream) Init(sim TransitionSim) {
	s.sim = sim
	s.cur = sim.Start()
	s.Rewind()
}

// Reset rewinds the stream to the empty prefix.
func (s *Stream) Reset() {
	s.cur = s.sim.Start()
	s.Rewind()
}

// Feed consumes one symbol; it reports whether the prefix read so far is
// still a viable prefix of some word in L(e).
//
//dregex:noalloc
func (s *Stream) Feed(a ast.Symbol) bool {
	if !s.Alive() || a < ast.FirstUser {
		s.Kill()
		return false
	}
	nxt := s.sim.Next(s.cur, a)
	if nxt == parsetree.Null {
		s.Kill() // cur keeps the last viable position
		return false
	}
	s.cur = nxt
	s.Advance(nxt)
	return true
}

// FeedName consumes one symbol by name.
//
//dregex:noalloc
func (s *Stream) FeedName(name string) bool {
	a, ok := run.LookupName(s.Alphabet(), name)
	if !ok {
		s.Kill()
		return false
	}
	return s.Feed(a)
}

// FeedBytes consumes one symbol named by raw bytes (an element name
// straight out of a document tokenizer), interned via
// Alphabet.LookupBytes — no string materialization per symbol.
//
//dregex:noalloc
func (s *Stream) FeedBytes(name []byte) bool {
	a, ok := run.LookupBytes(s.Alphabet(), name)
	if !ok {
		s.Kill()
		return false
	}
	return s.Feed(a)
}

// FeedRune consumes one single-rune symbol (math notation), interned via
// Alphabet.LookupRune — no per-rune string allocation, unlike
// FeedName(string(r)).
//
//dregex:noalloc
func (s *Stream) FeedRune(r rune) bool {
	a, ok := run.LookupRune(s.Alphabet(), r)
	if !ok {
		s.Kill()
		return false
	}
	return s.Feed(a)
}

// Accepts reports whether the prefix consumed so far is in L(e).
//
//dregex:noalloc
func (s *Stream) Accepts() bool {
	return s.Alive() && s.sim.Accept(s.cur)
}

// Alphabet implements run.Runner.
func (s *Stream) Alphabet() *ast.Alphabet { return s.sim.Tree().Alpha }

// Position returns the current position (for diagnostics); Null when dead.
func (s *Stream) Position() parsetree.NodeID {
	if !s.Alive() {
		return parsetree.Null
	}
	return s.cur
}

// LastPosition returns the position of the longest viable prefix — the
// current position while alive, the position just before the killing
// symbol once dead. This is the failure point ExpectedNext reports from.
func (s *Stream) LastPosition() parsetree.NodeID { return s.cur }

// ExpectedNext implements run.Runner: the symbols with a follower from the
// last viable position, i.e. exactly the legal continuations at (or, once
// dead, just before) the failure point. O(σ) Next probes — an error-path
// diagnostic, not a hot path.
func (s *Stream) ExpectedNext(dst []ast.Symbol) []ast.Symbol {
	alpha := s.sim.Tree().Alpha
	for a := ast.FirstUser; int(a) < alpha.Size(); a++ {
		if s.sim.Next(s.cur, a) != parsetree.Null {
			dst = append(dst, a)
		}
	}
	return dst
}
