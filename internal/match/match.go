// Package match defines the transition-simulation contract shared by all
// matchers of the paper's §4 and the word/stream drivers built on it.
//
// Every matcher realizes one procedure: "given a position p and a symbol a,
// return the position labeled a that follows p, or Null" (§4, intro). With
// rule (R1) in place, matching a word w against e′ is: start at the phantom
// position #, step through w, and finally test whether the phantom $
// follows the last position (§4: "matching a word w against e′ is
// straightforward").
//
// All matchers are streamable: drivers consume input symbol by symbol in
// one pass and keep O(1) state beyond the preprocessed expression.
package match

import (
	"bufio"
	"fmt"
	"io"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
)

// TransitionSim is the §4 transition-simulation procedure.
type TransitionSim interface {
	// Tree returns the compiled expression the simulator runs on.
	Tree() *parsetree.Tree
	// Start returns the initial position (the phantom #).
	Start() parsetree.NodeID
	// Next returns the position labeled a that follows p, or Null.
	Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID
	// Accept reports whether a word ending at position p is in L(e),
	// i.e. whether the phantom $ follows p.
	Accept(p parsetree.NodeID) bool
}

// Word matches a word of interned symbols. Symbols outside the user
// alphabet — ast.None from a failed lookup, or the reserved markers —
// reject, so words interned against a different (or extended) alphabet are
// handled gracefully. Word performs no allocation.
func Word(sim TransitionSim, word []ast.Symbol) bool {
	p := sim.Start()
	for _, a := range word {
		if a < ast.FirstUser {
			return false
		}
		p = sim.Next(p, a)
		if p == parsetree.Null {
			return false
		}
	}
	return sim.Accept(p)
}

// Names matches a word of symbol names; names outside the alphabet (or the
// reserved markers) reject.
func Names(sim TransitionSim, names []string) bool {
	alpha := sim.Tree().Alpha
	p := sim.Start()
	for _, n := range names {
		a, ok := alpha.Lookup(n)
		if !ok || a == ast.Begin || a == ast.End {
			return false
		}
		p = sim.Next(p, a)
		if p == parsetree.Null {
			return false
		}
	}
	return sim.Accept(p)
}

// Chars matches a word of single-rune symbols (the paper's mathematical
// notation) without allocating per rune.
func Chars(sim TransitionSim, w string) bool {
	alpha := sim.Tree().Alpha
	p := sim.Start()
	for _, r := range w {
		a, ok := alpha.LookupRune(r)
		if !ok || a == ast.Begin || a == ast.End {
			return false
		}
		p = sim.Next(p, a)
		if p == parsetree.Null {
			return false
		}
	}
	return sim.Accept(p)
}

// Stream is an incremental matcher: feed symbols one at a time, query
// acceptance at any prefix. The zero value is unusable; call NewStream.
type Stream struct {
	sim  TransitionSim
	cur  parsetree.NodeID
	dead bool
	fed  int
}

// NewStream starts a stream at the phantom # position.
func NewStream(sim TransitionSim) *Stream {
	return &Stream{sim: sim, cur: sim.Start()}
}

// Init (re)binds a stream to a simulator and rewinds it to the empty
// prefix. It lets callers embed Stream by value — one per stack frame or
// per worker — and restart matches with zero allocation.
func (s *Stream) Init(sim TransitionSim) {
	s.sim = sim
	s.cur = sim.Start()
	s.dead = false
	s.fed = 0
}

// Feed consumes one symbol; it reports whether the prefix read so far is
// still a viable prefix of some word in L(e).
func (s *Stream) Feed(a ast.Symbol) bool {
	if s.dead || a < ast.FirstUser {
		s.dead = true
		return false
	}
	s.fed++
	s.cur = s.sim.Next(s.cur, a)
	if s.cur == parsetree.Null {
		s.dead = true
	}
	return !s.dead
}

// FeedName consumes one symbol by name.
func (s *Stream) FeedName(name string) bool {
	a, ok := s.sim.Tree().Alpha.Lookup(name)
	if !ok || a == ast.Begin || a == ast.End {
		s.dead = true
		return false
	}
	return s.Feed(a)
}

// FeedBytes consumes one symbol named by raw bytes (an element name
// straight out of a document tokenizer), interned via
// Alphabet.LookupBytes — no string materialization per symbol.
func (s *Stream) FeedBytes(name []byte) bool {
	a, ok := s.sim.Tree().Alpha.LookupBytes(name)
	if !ok || a == ast.Begin || a == ast.End {
		s.dead = true
		return false
	}
	return s.Feed(a)
}

// FeedRune consumes one single-rune symbol (math notation), interned via
// Alphabet.LookupRune — no per-rune string allocation, unlike
// FeedName(string(r)).
func (s *Stream) FeedRune(r rune) bool {
	a, ok := s.sim.Tree().Alpha.LookupRune(r)
	if !ok || a == ast.Begin || a == ast.End {
		s.dead = true
		return false
	}
	return s.Feed(a)
}

// Accepts reports whether the prefix consumed so far is in L(e).
func (s *Stream) Accepts() bool {
	return !s.dead && s.sim.Accept(s.cur)
}

// Alive reports whether some extension of the consumed prefix could still
// be accepted (false once a symbol had no follower).
func (s *Stream) Alive() bool { return !s.dead }

// Len returns the number of symbols consumed.
func (s *Stream) Len() int { return s.fed }

// Reset rewinds the stream to the empty prefix.
func (s *Stream) Reset() {
	s.cur = s.sim.Start()
	s.dead = false
	s.fed = 0
}

// Position returns the current position (for diagnostics); Null when dead.
func (s *Stream) Position() parsetree.NodeID {
	if s.dead {
		return parsetree.Null
	}
	return s.cur
}

// ReaderRunes matches the runes of r as single-character symbols, reading
// the input in one sequential pass (the §1 "streamable" claim: w is never
// stored). ASCII whitespace is skipped, so both "aba" and "a b a" (the
// token-separated form) stream the same word. Malformed input returns an
// error.
func ReaderRunes(sim TransitionSim, r io.Reader) (bool, error) {
	br := bufio.NewReader(r)
	var s Stream
	s.Init(sim)
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			return s.Accepts(), nil
		}
		if err != nil {
			return false, fmt.Errorf("match: read: %w", err)
		}
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			continue
		}
		if !s.FeedRune(ch) {
			// Drain is unnecessary: the verdict is already final.
			return false, nil
		}
	}
}

// ReaderTokens matches whitespace-separated symbol names from r in one
// sequential pass.
func ReaderTokens(sim TransitionSim, r io.Reader) (bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	sc.Split(bufio.ScanWords)
	var s Stream
	s.Init(sim)
	for sc.Scan() {
		if !s.FeedName(sc.Text()) {
			return false, sc.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return s.Accepts(), nil
}
