// Package starfree implements Theorem 4.12 of the paper: matching N words
// against a star-free deterministic regular expression in combined time
// O(|e| + |w1| + … + |wN|).
//
// Two engines are provided. Scan is the single-word simulator sketched at
// the start of §4.4: in a star-free expression q ∈ Follow(p) implies that q
// comes after p in document order, so one monotone left-to-right sweep over
// the positions suffices (total O(|e| + |w|) per word). Batch is the
// multi-word algorithm: the expression is traversed once, all words advance
// together, and the words waiting for symbol a are parked in a dynamic
// a-skeleton — a set of positions closed under LCA, maintained with the
// rightmost-path stack — from which each processed position consumes
// exactly the entries it follows (Lemma 2.2, concatenation case only).
package starfree

import (
	"errors"
	"sync"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// ErrNotStarFree is returned when the expression contains ∗ (or a loopable
// numeric iteration).
var ErrNotStarFree = errors.New("starfree: expression contains a star")

// ErrNondeterministic is returned for nondeterministic expressions.
var ErrNondeterministic = errors.New("starfree: expression is not deterministic")

// validate checks star-freeness and determinism.
func validate(t *parsetree.Tree, fol *follow.Index) error {
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if t.Op[n] == parsetree.OpStar ||
			(t.Op[n] == parsetree.OpIter && t.Max[n] >= 2) {
			return ErrNotStarFree
		}
	}
	sks := skeleton.Build(t, fol, skeleton.Options{})
	if res := determinism.CheckSkeletons(t, sks, false); !res.Deterministic {
		return ErrNondeterministic
	}
	return nil
}

// Scan is the single-word star-free transition simulator. Next(p, a) scans
// document order strictly after p; because followers only lie to the right,
// a full word costs O(|e| + |w|) even though a single step may cost O(|e|).
type Scan struct {
	t   *parsetree.Tree
	fol *follow.Index
}

// NewScan validates and wraps the expression.
func NewScan(t *parsetree.Tree, fol *follow.Index) (*Scan, error) {
	if err := validate(t, fol); err != nil {
		return nil, err
	}
	return &Scan{t: t, fol: fol}, nil
}

// Tree implements match.TransitionSim.
func (s *Scan) Tree() *parsetree.Tree { return s.t }

// Start implements match.TransitionSim.
func (s *Scan) Start() parsetree.NodeID { return s.t.BeginPos() }

// Next scans forward from p for the a-labeled follower.
func (s *Scan) Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID {
	t := s.t
	for i := int(t.PosIndex[p]) + 1; i < t.NumPositions(); i++ {
		q := t.PosNode[i]
		if t.Sym[q] == a && s.fol.CheckIfFollow(p, q) {
			return q
		}
	}
	return parsetree.Null
}

// Accept implements match.TransitionSim.
func (s *Scan) Accept(p parsetree.NodeID) bool {
	return s.fol.CheckIfFollow(p, s.t.EndPos())
}

// Batch matches many words in one traversal of the expression (§4.4). It
// is safe for concurrent use: per-call state lives in pooled scratch
// buffers, so steady-state MatchAll traffic (a cached expression matched
// per request) reuses the arena, skeleton and link slices grown by earlier
// calls instead of reallocating them — only the returned verdict slice is
// allocated per call.
type Batch struct {
	t       *parsetree.Tree
	fol     *follow.Index
	scratch sync.Pool // *batchScratch
}

// NewBatch validates and wraps the expression.
func NewBatch(t *parsetree.Tree, fol *follow.Index) (*Batch, error) {
	if err := validate(t, fol); err != nil {
		return nil, err
	}
	return &Batch{t: t, fol: fol}, nil
}

// dynamic skeleton node.
type dnode struct {
	enode    parsetree.NodeID
	par      int32
	lch, rch int32
	head     int32 // first waiting word, -1
	tail     int32
}

// dyn is one dynamic a-skeleton: node arena indices plus the rightmost
// path stack.
type dyn struct {
	stack []int32 // rightmost path, arena ids, shallow → deep
	root  int32   // arena id, -1 when empty
}

// batchScratch is the reusable per-call state of one MatchAll traversal.
type batchScratch struct {
	idx   []int32 // consumed prefix length per word
	next  []int32 // word list links, -1 end
	skels []dyn   // one dynamic skeleton per symbol
	arena []dnode
	walk  []int32
	// Per-symbol routing buckets (head/tail of a word list, -1 empty) plus
	// the list of symbols currently holding one — the allocation-free
	// replacement for a map[symbol]*bucket rebuilt per position.
	bHead, bTail []int32
	touched      []ast.Symbol
	// conv/syms back MatchAllNames: interned words are sliced out of one
	// flat symbol arena.
	conv [][]ast.Symbol
	syms []ast.Symbol
}

// getScratch returns a scratch with idx/next sized for n words and the
// per-symbol structures sized for the alphabet, reusing pooled buffers.
func (b *Batch) getScratch(n int) *batchScratch {
	sc, _ := b.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	sigma := b.t.Alpha.Size()
	if cap(sc.idx) < n {
		sc.idx = make([]int32, n)
		sc.next = make([]int32, n)
	}
	sc.idx = sc.idx[:n]
	sc.next = sc.next[:n]
	if len(sc.skels) < sigma {
		sc.skels = make([]dyn, sigma)
		sc.bHead = make([]int32, sigma)
		sc.bTail = make([]int32, sigma)
	}
	for i := range sc.skels {
		sc.skels[i].root = -1
		sc.skels[i].stack = sc.skels[i].stack[:0]
		sc.bHead[i] = -1
	}
	sc.arena = sc.arena[:0]
	sc.touched = sc.touched[:0]
	return sc
}

// MatchAll matches every word (of interned symbols) and returns one verdict
// per word. The expression is traversed once; total time is
// O(|e| + Σ|w_i|) up to the stack-scan caveat documented in DESIGN.md.
func (b *Batch) MatchAll(ws [][]ast.Symbol) []bool {
	sc := b.getScratch(len(ws))
	res := b.matchAll(ws, sc)
	b.scratch.Put(sc)
	return res
}

func (b *Batch) matchAll(ws [][]ast.Symbol, sc *batchScratch) []bool {
	t := b.t
	fol := b.fol
	res := make([]bool, len(ws))
	idx := sc.idx   // consumed prefix length
	next := sc.next // word list links, -1 end

	sigma := t.Alpha.Size()
	skels := sc.skels
	arena := sc.arena
	defer func() { sc.arena = arena }() // keep growth for the next call
	newNode := func(e parsetree.NodeID) int32 {
		arena = append(arena, dnode{enode: e, par: -1, lch: -1, rch: -1, head: -1, tail: -1})
		return int32(len(arena) - 1)
	}

	// insert parks position p with a word list in skeleton d, maintaining
	// LCA closure via the rightmost-path stack.
	insert := func(d *dyn, p parsetree.NodeID, head, tail int32) {
		nd := newNode(p)
		arena[nd].head, arena[nd].tail = head, tail
		if d.root == -1 {
			d.root = nd
			d.stack = append(d.stack[:0], nd)
			return
		}
		top := d.stack[len(d.stack)-1]
		l := fol.LCA.Query(arena[top].enode, p)
		var last int32 = -1
		for len(d.stack) > 0 {
			u := d.stack[len(d.stack)-1]
			if arena[u].enode == l || t.IsAncestor(arena[u].enode, l) {
				break
			}
			last = u
			d.stack = d.stack[:len(d.stack)-1]
		}
		attach := func(parent, child int32) {
			arena[child].par = parent
			pe := arena[parent].enode
			if lc := t.LChild[pe]; lc != parsetree.Null && t.IsAncestor(lc, arena[child].enode) {
				arena[parent].lch = child
			} else {
				arena[parent].rch = child
			}
		}
		if len(d.stack) > 0 && arena[d.stack[len(d.stack)-1]].enode == l {
			// The LCA node already exists; popped nodes stay linked below.
			attach(d.stack[len(d.stack)-1], nd)
		} else {
			ln := newNode(l)
			if last != -1 {
				// Relink the popped subtree under the fresh LCA node.
				if pp := arena[last].par; pp != -1 {
					if arena[pp].lch == last {
						arena[pp].lch = -1
					} else if arena[pp].rch == last {
						arena[pp].rch = -1
					}
				}
				attach(ln, last)
			}
			if len(d.stack) > 0 {
				attach(d.stack[len(d.stack)-1], ln)
			} else {
				d.root = ln
			}
			d.stack = append(d.stack, ln)
			attach(ln, nd)
		}
		d.stack = append(d.stack, nd)
	}

	// route sends a batch of words (linked list heads grouped per next
	// symbol) from position p onward; exhausted words are finalized. The
	// per-symbol buckets live in the scratch (bHead/bTail indexed by
	// symbol, touched listing the non-empty ones), so routing allocates
	// nothing.
	end := t.EndPos()
	flush := func(p parsetree.NodeID) {
		for _, a := range sc.touched {
			insert(&skels[a], p, sc.bHead[a], sc.bTail[a])
			sc.bHead[a] = -1
		}
		sc.touched = sc.touched[:0]
	}
	park := func(w int32, a ast.Symbol) {
		next[w] = -1
		if sc.bHead[a] == -1 {
			sc.bHead[a], sc.bTail[a] = w, w
			sc.touched = append(sc.touched, a)
		} else {
			next[sc.bTail[a]] = w
			sc.bTail[a] = w
		}
	}
	route := func(p parsetree.NodeID, head int32) {
		for w := head; w != -1; {
			nw := next[w]
			word := ws[w]
			if int(idx[w]) == len(word) {
				res[w] = fol.CheckIfFollow(p, end)
			} else {
				a := word[idx[w]]
				if a >= ast.FirstUser && int(a) < sigma {
					park(w, a)
				}
			}
			w = nw
		}
		flush(p)
	}

	// Seed: all words sit at # expecting their first symbol.
	for w := range ws {
		idx[w] = 0
		next[w] = -1
		if len(ws[w]) == 0 {
			res[w] = fol.CheckIfFollow(t.BeginPos(), end)
			continue
		}
		if a := ws[w][0]; a >= ast.FirstUser && int(a) < sigma {
			park(int32(w), a)
		}
	}
	flush(t.BeginPos())

	// One pass over the user positions in document order.
	var consumedHead, consumedTail int32
	walk := sc.walk
	defer func() { sc.walk = walk }()
	consumeSubtree := func(rootIdx int32, barrier parsetree.NodeID) {
		walk = append(walk[:0], rootIdx)
		for len(walk) > 0 {
			u := walk[len(walk)-1]
			walk = walk[:len(walk)-1]
			nu := &arena[u]
			if nu.head != -1 && t.IsAncestor(t.PSupLast[nu.enode], barrier) {
				// q ∈ Last(barrier): its words advance.
				if consumedHead == -1 {
					consumedHead, consumedTail = nu.head, nu.tail
				} else {
					next[consumedTail] = nu.head
					consumedTail = nu.tail
				}
			}
			// Entries failing the barrier are dead: no later position can
			// follow them either (see the §4.4 discard argument).
			if nu.lch != -1 {
				walk = append(walk, nu.lch)
			}
			if nu.rch != -1 {
				walk = append(walk, nu.rch)
			}
		}
	}

	for i := 1; i < t.NumPositions()-1; i++ {
		p := t.PosNode[i]
		a := t.Sym[p]
		d := &skels[a]
		if d.root == -1 {
			continue
		}
		consumedHead, consumedTail = -1, -1
		ni := t.Parent[t.PSupFirst[p]]

		top := d.stack[len(d.stack)-1]
		nLCA := fol.LCA.Query(arena[top].enode, p)
		// Locate v: the shallowest stack node inside nLCA's subtree.
		j := len(d.stack)
		for j > 0 && t.IsAncestor(nLCA, arena[d.stack[j-1]].enode) {
			j--
		}
		if j < len(d.stack) {
			v := d.stack[j]
			if t.Op[nLCA] == parsetree.OpCat &&
				t.IsAncestor(t.PSupFirst[p], t.RChild[nLCA]) {
				if arena[v].enode == nLCA {
					if lc := arena[v].lch; lc != -1 {
						consumeSubtree(lc, t.LChild[nLCA])
						arena[v].lch = -1
					}
					d.stack = d.stack[:j+1]
				} else {
					consumeSubtree(v, t.LChild[nLCA])
					if pp := arena[v].par; pp != -1 {
						if arena[pp].lch == v {
							arena[pp].lch = -1
						} else if arena[pp].rch == v {
							arena[pp].rch = -1
						}
					}
					d.stack = d.stack[:j]
					if len(d.stack) == 0 {
						d.root = -1
					}
				}
			}
		}
		// Climb the remaining spine up to ni, consuming left hangs.
		for k := min(j, len(d.stack)) - 1; k >= 0; k-- {
			u := d.stack[k]
			ue := arena[u].enode
			if !t.IsAncestor(ni, ue) {
				break
			}
			if t.Op[ue] == parsetree.OpCat &&
				t.IsAncestor(t.PSupFirst[p], t.RChild[ue]) {
				if lc := arena[u].lch; lc != -1 {
					consumeSubtree(lc, t.LChild[ue])
					arena[u].lch = -1
				}
			}
		}
		// Advance the consumed words and park them at p.
		if consumedHead != -1 {
			for w := consumedHead; w != -1; w = next[w] {
				idx[w]++
			}
			route(p, consumedHead)
		}
	}
	return res
}

// MatchAllNames is MatchAll over words given as symbol-name slices. Words
// are interned into one pooled flat symbol arena (names outside the user
// alphabet map to sentinels every routing step skips, so such words simply
// never reach acceptance), keeping the per-call allocation to the returned
// verdict slice.
func (b *Batch) MatchAllNames(ws [][]string) []bool {
	alpha := b.t.Alpha
	sc := b.getScratch(len(ws))
	conv := sc.conv[:0]
	syms := sc.syms[:0]
	for _, w := range ws {
		start := len(syms)
		// LookupWord may grow syms; earlier conv entries keep aliasing the
		// superseded backing array, which still holds their data.
		syms = alpha.LookupWord(syms, w)
		conv = append(conv, syms[start:len(syms):len(syms)])
	}
	sc.conv, sc.syms = conv, syms
	res := b.matchAll(conv, sc)
	// Drop the interned words before pooling: conv aliases per-call data.
	for i := range conv {
		conv[i] = nil
	}
	b.scratch.Put(sc)
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
