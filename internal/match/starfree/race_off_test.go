//go:build !race

package starfree

const raceEnabled = false
