package starfree

import (
	"math/rand"
	"sync"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

func compile(t *testing.T, e *ast.Node, alpha *ast.Alphabet) (*parsetree.Tree, *follow.Index) {
	t.Helper()
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr, follow.New(tr)
}

func TestValidation(t *testing.T) {
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("(a+b)*", alpha), alpha)
	if _, err := NewScan(tr, fol); err != ErrNotStarFree {
		t.Errorf("NewScan on starred expression: %v", err)
	}
	if _, err := NewBatch(tr, fol); err != ErrNotStarFree {
		t.Errorf("NewBatch on starred expression: %v", err)
	}
	alpha2 := ast.NewAlphabet()
	tr2, fol2 := compile(t, ast.MustParseMath("a?a", alpha2), alpha2)
	if _, err := NewScan(tr2, fol2); err != ErrNondeterministic {
		t.Errorf("NewScan on nondeterministic expression: %v", err)
	}
}

func TestPaperExample411(t *testing.T) {
	// Example 4.11: e = (a+ba)(c?)(d?b) against w1..w4; expression written
	// without the phantom markers (added by the compiler).
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("((a+ba)(c?))(d?b)", alpha), alpha)
	b, err := NewBatch(tr, fol)
	if err != nil {
		t.Fatal(err)
	}
	ws := [][]string{
		{"b", "c", "d", "b"},      // w1 = bcdb
		{"a", "c", "d", "b", "a"}, // w2 = acdba
		{"a", "c", "b"},           // w3 = acb
		{"b", "a", "d", "a"},      // w4 = bada
	}
	got := b.MatchAllNames(ws)
	want := []bool{false, false, true, false} // only w3 matches (paper)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("w%d: got %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestScanAndBatchAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	for trial := 0; trial < 120; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.StarFree(r, alpha, 3+r.Intn(10), 10+r.Intn(60))
		tr, fol := compile(t, e, alpha)
		oracle := glushkov.Build(tr)
		scan, err := NewScan(tr, fol)
		if err != nil {
			t.Fatalf("NewScan(%s): %v", ast.StringMath(e, alpha), err)
		}
		batch, err := NewBatch(tr, fol)
		if err != nil {
			t.Fatal(err)
		}
		var corpus [][]ast.Symbol
		for i := 0; i < 25; i++ {
			switch i % 3 {
			case 0:
				if w, ok := words.RandomWord(r, fol, 20, 0.3); ok {
					corpus = append(corpus, w)
				}
			case 1:
				corpus = append(corpus, words.NoiseWord(r, tr, r.Intn(8)))
			default:
				if w, ok := words.RandomWord(r, fol, 20, 0.3); ok {
					corpus = append(corpus, words.Mutate(r, tr, w, 1+r.Intn(2)))
				} else {
					corpus = append(corpus, nil)
				}
			}
		}
		batchGot := batch.MatchAll(corpus)
		for i, w := range corpus {
			want := oracle.Match(w)
			if got := match.Word(scan, w); got != want {
				t.Fatalf("Scan on %s word %v: got %v, want %v",
					ast.StringMath(e, alpha), w, got, want)
			}
			if batchGot[i] != want {
				t.Fatalf("Batch on %s word %v: got %v, want %v",
					ast.StringMath(e, alpha), w, batchGot[i], want)
			}
		}
	}
}

func TestBatchManyIdenticalAndEmpty(t *testing.T) {
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("a?b?c?", alpha), alpha)
	b, err := NewBatch(tr, fol)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := alpha.Lookup("a")
	c, _ := alpha.Lookup("c")
	ws := [][]ast.Symbol{
		nil,    // ε ∈ L
		{a},    // a
		{a, c}, // ac
		{c, a}, // ca — reject
		{a, a}, // aa — reject
		{a, c}, // duplicate word: independent verdicts
		{},     // ε again
	}
	got := b.MatchAll(ws)
	want := []bool{true, true, true, false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBatchScale(t *testing.T) {
	// Many words against a larger CHARE-like star-free expression.
	r := rand.New(rand.NewSource(311))
	alpha := ast.NewAlphabet()
	e := wordgen.StarFree(r, alpha, 20, 200)
	tr, fol := compile(t, e, alpha)
	oracle := glushkov.Build(tr)
	batch, err := NewBatch(tr, fol)
	if err != nil {
		t.Fatal(err)
	}
	var corpus [][]ast.Symbol
	for i := 0; i < 500; i++ {
		if w, ok := words.RandomWord(r, fol, 40, 0.2); ok && i%2 == 0 {
			corpus = append(corpus, w)
		} else {
			corpus = append(corpus, words.NoiseWord(r, tr, r.Intn(20)))
		}
	}
	got := batch.MatchAll(corpus)
	for i, w := range corpus {
		if want := oracle.Match(w); got[i] != want {
			t.Fatalf("word %d (%v): got %v, want %v", i, w, got[i], want)
		}
	}
}

// TestBatchConcurrentPooledScratch hammers one Batch from many goroutines:
// pooled scratch must never leak state between concurrent MatchAll calls
// (run under -race in CI).
func TestBatchConcurrentPooledScratch(t *testing.T) {
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("((a+ba)(c?))(d?b)", alpha), alpha)
	b, err := NewBatch(tr, fol)
	if err != nil {
		t.Fatal(err)
	}
	ws := [][]string{
		{"b", "c", "d", "b"},
		{"a", "c", "d", "b", "a"},
		{"a", "c", "b"},
		{"b", "a", "d", "a"},
		{},
		{"no-such-name"},
	}
	want := []bool{false, false, true, false, false, false}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				got := b.MatchAllNames(ws)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("word %d: got %v, want %v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestBatchAllocsSteadyState pins the pooled-scratch claim: once the
// buffers have grown, a MatchAll call allocates only the returned verdict
// slice (and MatchAllNames one flat interning arena slice header at most).
func TestBatchAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates closure allocation counts")
	}
	alpha := ast.NewAlphabet()
	tr, fol := compile(t, ast.MustParseMath("((a+ba)(c?))(d?b)", alpha), alpha)
	b, err := NewBatch(tr, fol)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := alpha.Lookup("a")
	c, _ := alpha.Lookup("c")
	d, _ := alpha.Lookup("d")
	bb, _ := alpha.Lookup("b")
	ws := [][]ast.Symbol{{a, c, bb}, {bb, c, d, bb}, {a, bb}, {}}
	names := [][]string{{"a", "c", "b"}, {"b", "c", "d", "b"}, {"a", "b"}, {}}
	b.MatchAll(ws)
	b.MatchAllNames(names) // warm the pool
	if n := testing.AllocsPerRun(200, func() { b.MatchAll(ws) }); n > 1 {
		t.Errorf("MatchAll allocates %v/op in steady state, want <= 1 (the verdict slice)", n)
	}
	if n := testing.AllocsPerRun(200, func() { b.MatchAllNames(names) }); n > 1 {
		t.Errorf("MatchAllNames allocates %v/op in steady state, want <= 1", n)
	}
}
