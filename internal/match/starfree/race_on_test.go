//go:build race

package starfree

// raceEnabled reports that the race detector is active; its
// instrumentation changes allocation counts, so strict AllocsPerRun pins
// are skipped under -race (CI also runs the tests without it via the
// benchmark compile step).
const raceEnabled = true
