// Package pathdecomp implements Theorem 4.10 of the paper: matching a word
// w against a deterministic regular expression e in O(|e| + c_e·|w|),
// where c_e is the maximal depth of alternating union and concatenation
// operators (≤ 4 in every real-world DTD the paper cites).
//
// The parse tree is decomposed into vertical paths (§4.3): a node y starts
// a path iff it is the root, a SupLast or SupFirst node, a nullable right
// child, or the right child of a union. Every position p deposits itself in
// the table h at top(p), the path top of the left sibling of pSupFirst(p);
// determinism guarantees the deposit is collision-free per label
// (Lemma 4.5). Transition simulation (FindNext, Algorithm 3) then hops
// between path tops along precomputed nexttop pointers — visiting only
// "qualifying" tops: SupFirst/SupLast nodes, the root, and tops whose path
// contains a non-nullable concatenation above the current node — and the
// potential argument of Lemma 4.9 bounds the amortized hop count by
// O(c_e) per consumed symbol.
package pathdecomp

import (
	"errors"
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/skeleton"
)

// ErrNondeterministic is returned for expressions failing the determinism
// test; the h table is only collision-free for deterministic expressions.
var ErrNondeterministic = errors.New("pathdecomp: expression is not deterministic")

// Matcher is the Theorem 4.10 transition simulator.
type Matcher struct {
	t   *parsetree.Tree
	fol *follow.Index

	topmost []bool
	pathTop []parsetree.NodeID
	nexttop []parsetree.NodeID // valid at positions and topmost nodes
	h       map[int64]parsetree.NodeID

	// CE is the alternation metric that bounds the amortized hops per
	// symbol (the refined constant from the proof of Lemma 4.9: the
	// maximal number of ancestors of a position labeled +, non-nullable,
	// whose parent is labeled ⊙, plus one).
	CE int
}

func hKey(n parsetree.NodeID, a ast.Symbol) int64 {
	return int64(n)<<32 | int64(uint32(a))
}

// New preprocesses t in O(|e|), first running the linear determinism test.
func New(t *parsetree.Tree, fol *follow.Index) (*Matcher, error) {
	sks := skeleton.Build(t, fol, skeleton.Options{})
	if res := determinism.CheckSkeletons(t, sks, false); !res.Deterministic {
		return nil, ErrNondeterministic
	}
	m := &Matcher{
		t:       t,
		fol:     fol,
		topmost: make([]bool, t.N()),
		pathTop: make([]parsetree.NodeID, t.N()),
		nexttop: make([]parsetree.NodeID, t.N()),
		h:       make(map[int64]parsetree.NodeID, t.NumPositions()),
	}
	m.computeDecomposition()
	if err := m.fillH(); err != nil {
		return nil, err
	}
	return m, nil
}

// isTopmost evaluates the §4.3 path-top conditions.
func (m *Matcher) isTopmost(y parsetree.NodeID) bool {
	t := m.t
	if y == t.Root || t.SupLast[y] || t.SupFirst[y] {
		return true
	}
	p := t.Parent[y]
	if p == parsetree.Null || t.RChild[p] != y {
		return false
	}
	return t.Nullable[y] || t.Op[p] == parsetree.OpUnion
}

// computeDecomposition fills topmost, pathTop and nexttop in one DFS.
//
// The DFS maintains the stack of path records along the current ancestor
// chain. A record tracks whether a non-nullable ⊙ node of its path is an
// ancestor of the current node (condition (3) of the nexttop definition),
// and nq indexes the innermost record whose top qualifies as a nexttop
// target; qualification only ever turns on while a record is on top of the
// stack, so nq is maintained with save/restore in O(1) per node.
func (m *Matcher) computeDecomposition() {
	t := m.t
	type rec struct {
		y        parsetree.NodeID
		hasNNCat bool
	}
	var records []rec
	nq := -1 // innermost qualifying record
	qualifies := func(r rec) bool {
		return r.y == t.Root || t.SupLast[r.y] || t.SupFirst[r.y] || r.hasNNCat
	}
	isNNCat := func(n parsetree.NodeID) bool {
		return t.Op[n] == parsetree.OpCat && !t.Nullable[n]
	}
	type frame struct {
		node     parsetree.NodeID
		exit     bool
		savedLen int
		savedNN  bool
		savedNq  int
		plusDep  int
	}
	for i := range m.nexttop {
		m.nexttop[i] = parsetree.Null
	}
	stack := []frame{{node: t.Root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.exit {
			if len(records) > f.savedLen {
				records = records[:f.savedLen]
			} else if len(records) > 0 {
				records[len(records)-1].hasNNCat = f.savedNN
			}
			nq = f.savedNq
			continue
		}
		n := f.node
		ex := frame{node: n, exit: true, savedLen: len(records), savedNq: nq}
		if len(records) > 0 {
			ex.savedNN = records[len(records)-1].hasNNCat
		}
		if m.isTopmost(n) {
			m.topmost[n] = true
			m.pathTop[n] = n
			// nexttop of a topmost node looks past its own record.
			if nq >= 0 {
				m.nexttop[n] = records[nq].y
			}
			records = append(records, rec{y: n, hasNNCat: isNNCat(n)})
			if qualifies(records[len(records)-1]) {
				nq = len(records) - 1
			}
		} else {
			m.pathTop[n] = m.pathTop[t.Parent[n]]
			if len(records) > 0 && isNNCat(n) && !records[len(records)-1].hasNNCat {
				records[len(records)-1].hasNNCat = true
				if nq < len(records)-1 {
					nq = len(records) - 1
				}
			}
			if t.IsPos(n) && nq >= 0 {
				m.nexttop[n] = records[nq].y
			}
		}
		// Track the refined c_e: non-nullable + nodes with ⊙ parents.
		dep := f.plusDep
		if p := t.Parent[n]; p != parsetree.Null &&
			t.Op[n] == parsetree.OpUnion && !t.Nullable[n] && t.Op[p] == parsetree.OpCat {
			dep++
		}
		if t.IsPos(n) && dep+1 > m.CE {
			m.CE = dep + 1
		}
		stack = append(stack, ex)
		if c := t.RChild[n]; c != parsetree.Null {
			stack = append(stack, frame{node: c, plusDep: dep})
		}
		if c := t.LChild[n]; c != parsetree.Null {
			stack = append(stack, frame{node: c, plusDep: dep})
		}
	}
}

// fillH deposits every position p (except #) at h(top(p), lab(p)).
func (m *Matcher) fillH() error {
	t := m.t
	for i := 1; i < t.NumPositions(); i++ {
		p := t.PosNode[i]
		psf := t.PSupFirst[p]
		if psf == parsetree.Null {
			continue
		}
		left := t.LChild[t.Parent[psf]]
		y := m.pathTop[left]
		key := hKey(y, t.Sym[p])
		if old, ok := m.h[key]; ok && old != p {
			// Lemma 4.5 rules this out for deterministic expressions.
			return fmt.Errorf("pathdecomp: h collision at node %d symbol %s (positions %d, %d)",
				y, t.Alpha.Name(t.Sym[p]), old, p)
		}
		m.h[key] = p
	}
	return nil
}

// Tree implements match.TransitionSim.
func (m *Matcher) Tree() *parsetree.Tree { return m.t }

// Start implements match.TransitionSim.
func (m *Matcher) Start() parsetree.NodeID { return m.t.BeginPos() }

// Next is FindNext of Algorithm 3.
func (m *Matcher) Next(p parsetree.NodeID, a ast.Symbol) parsetree.NodeID {
	t := m.t
	x := p
	target := t.PSupLast[p]
	for target != x {
		if q, ok := m.h[hKey(x, a)]; ok && m.fol.CheckIfFollow(p, q) {
			return q
		}
		x = m.nexttop[x]
		if x == parsetree.Null {
			return parsetree.Null
		}
	}
	if q, ok := m.h[hKey(x, a)]; ok && m.fol.CheckIfFollow(p, q) {
		return q
	}
	// Lines 8-14: candidates in First(parent(pSupLast(p))).
	px := t.Parent[x]
	if px == parsetree.Null {
		return parsetree.Null
	}
	y := t.PSupFirst[px]
	if y == parsetree.Null {
		return parsetree.Null
	}
	var q parsetree.NodeID = parsetree.Null
	if t.Nullable[y] {
		if nt := m.nexttop[y]; nt != parsetree.Null {
			if cand, ok := m.h[hKey(nt, a)]; ok {
				q = cand
			}
		}
	} else {
		left := t.LChild[t.Parent[y]]
		if cand, ok := m.h[hKey(left, a)]; ok {
			q = cand
		}
	}
	if q != parsetree.Null && m.fol.CheckIfFollow(p, q) {
		return q
	}
	return parsetree.Null
}

// Accept implements match.TransitionSim.
func (m *Matcher) Accept(p parsetree.NodeID) bool {
	return m.Next(p, ast.End) == m.t.EndPos()
}
