package pathdecomp

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
	"dregex/internal/words"
)

func compile(t *testing.T, expr string) (*parsetree.Tree, *follow.Index) {
	t.Helper()
	alpha := ast.NewAlphabet()
	tr, err := parsetree.Build(ast.Normalize(ast.MustParseMath(expr, alpha)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr, follow.New(tr)
}

func TestDecompositionInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 10, 60, true)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		m, err := New(tr, fol)
		if err != nil {
			t.Fatal(err)
		}
		for n := parsetree.NodeID(0); n < parsetree.NodeID(tr.N()); n++ {
			// pathTop is the nearest topmost ancestor-or-self.
			want := n
			for !m.topmost[want] {
				want = tr.Parent[want]
			}
			if m.pathTop[n] != want {
				t.Fatalf("pathTop(%d) = %d, want %d", n, m.pathTop[n], want)
			}
			// Paths are chains: a non-topmost node has at most one
			// non-topmost child.
			nonTop := 0
			for _, c := range []parsetree.NodeID{tr.LChild[n], tr.RChild[n]} {
				if c != parsetree.Null && !m.topmost[c] {
					nonTop++
				}
			}
			if nonTop > 1 {
				t.Fatalf("node %d has two path children — not a path decomposition", n)
			}
			// nexttop, where defined, is a strict topmost ancestor.
			if nt := m.nexttop[n]; nt != parsetree.Null {
				if !m.topmost[nt] || !tr.IsAncestor(nt, n) || nt == n {
					t.Fatalf("nexttop(%d) = %d invalid", n, nt)
				}
			}
		}
		// Every user position and $ has a nexttop (the root record
		// always qualifies).
		for i := 1; i < tr.NumPositions(); i++ {
			if m.nexttop[tr.PosNode[i]] == parsetree.Null {
				t.Fatalf("position %d has no nexttop", i)
			}
		}
	}
}

// naiveNexttop recomputes nexttop by definition: the lowest topmost node y
// that is a strict ancestor of n and is the root, a SupLast or SupFirst
// node, or has a non-nullable ⊙ ancestor of n on its path.
func naiveNexttop(tr *parsetree.Tree, m *Matcher, n parsetree.NodeID) parsetree.NodeID {
	for y := tr.Parent[n]; y != parsetree.Null; y = tr.Parent[y] {
		if !m.topmost[y] {
			continue
		}
		if y == tr.Root || tr.SupLast[y] || tr.SupFirst[y] {
			return y
		}
		// Condition (3): a non-nullable ⊙ node on y's path that is an
		// ancestor of n.
		for x := n; x != parsetree.Null; x = tr.Parent[x] {
			if m.pathTop[x] == y &&
				tr.Op[x] == parsetree.OpCat && !tr.Nullable[x] {
				return y
			}
			if tr.IsAncestor(x, y) {
				break
			}
		}
	}
	return parsetree.Null
}

func TestNexttopAgainstDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	for trial := 0; trial < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 8, 50, trial%2 == 0)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(tr, follow.New(tr))
		if err != nil {
			t.Fatal(err)
		}
		for n := parsetree.NodeID(0); n < parsetree.NodeID(tr.N()); n++ {
			if !tr.IsPos(n) && !m.topmost[n] {
				continue // nexttop only defined there
			}
			got := m.nexttop[n]
			want := naiveNexttop(tr, m, n)
			if got != want {
				t.Fatalf("trial %d: nexttop(%d) = %d, want %d (op=%v)",
					trial, n, got, want, tr.Op[n])
			}
		}
	}
}

func TestDeepAlternationFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(613))
	for _, depth := range []int{2, 3, 4, 5} {
		alpha := ast.NewAlphabet()
		e := wordgen.DeepAlternation(alpha, depth, 3)
		tr, err := parsetree.Build(ast.Normalize(e), alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		m, err := New(tr, fol)
		if err != nil {
			t.Fatal(err)
		}
		if m.CE < 1 {
			t.Fatalf("depth %d: CE = %d", depth, m.CE)
		}
		oracle := glushkov.Build(tr)
		for i := 0; i < 60; i++ {
			var w []ast.Symbol
			if i%2 == 0 {
				if pw, ok := words.RandomWord(r, fol, 60, 0.2); ok {
					w = pw
				}
			}
			if w == nil {
				w = words.NoiseWord(r, tr, r.Intn(30))
			}
			if got, want := match.Word(m, w), oracle.Match(w); got != want {
				t.Fatalf("depth %d word %v: got %v, want %v", depth, w, got, want)
			}
		}
	}
}

func TestCEMetric(t *testing.T) {
	cases := []struct {
		expr  string
		maxCE int // CE must be ≥1 and ≤ this loose bound
	}{
		{"abc", 1},
		{"(a+b)c", 2},
		{"((a+b)c+d)e", 3},
		{"(a+b)*", 2},
	}
	for _, c := range cases {
		tr, fol := compile(t, c.expr)
		m, err := New(tr, fol)
		if err != nil {
			t.Fatal(err)
		}
		if m.CE < 1 || m.CE > c.maxCE {
			t.Errorf("%s: CE = %d, want in [1,%d]", c.expr, m.CE, c.maxCE)
		}
	}
}

func TestHCollisionFreedom(t *testing.T) {
	// Lemma 4.5: on deterministic expressions the h table never collides;
	// New must therefore never return the collision error.
	r := rand.New(rand.NewSource(617))
	for trial := 0; trial < 150; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 9, 70, true)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(tr, follow.New(tr)); err != nil {
			t.Fatalf("Lemma 4.5 violated on %s: %v", ast.StringMath(e, alpha), err)
		}
	}
}
