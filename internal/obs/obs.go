// Package obs is the dependency-free observability core of the pipeline:
// lock-free log-bucketed latency/size histograms with quantile extraction,
// atomic counters, callback gauges, and a registry that renders everything
// as Prometheus text exposition (for a live /metrics endpoint) or as a
// compact one-shot summary (for CLI -stats reports).
//
// The package is built for instrumented hot paths: recording into a
// Counter or Histogram is a handful of uncontended atomic adds — no locks,
// no allocation, no map lookups — so instruments can sit on paths pinned
// at zero allocations per operation. All coordination happens at the
// edges: instruments are created (or re-resolved, get-or-create) under the
// registry mutex at startup or configuration time, and scrapes take
// consistent-enough snapshots by reading the atomics once per metric.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {Name: "endpoint", Value:
// "validate"}). Label order is significant for identity: the same label
// set in a different order names a different series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready; standalone use (outside a Registry) is fine.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Kind distinguishes the metric families a Registry holds.
type Kind uint8

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one labeled series within a family. Exactly one of the value
// fields is set, matching the family kind.
type metric struct {
	labels string // rendered {k="v",...}, "" for the unlabeled series
	c      *Counter
	cf     func() uint64  // counter read from an external atomic
	gf     func() float64 // callback gauge
	h      *Histogram
}

// family is one metric name: a help string, a kind, and its labeled
// series in registration order.
type family struct {
	name, help string
	kind       Kind
	// scale multiplies histogram bucket bounds and sums at exposition
	// time (e.g. Seconds = 1e-9 for histograms recorded in nanoseconds);
	// 1 for everything else.
	scale   float64
	series  []*metric
	byLabel map[string]*metric
}

// Registry is an ordered collection of metric families. Instruments are
// get-or-create: asking twice for the same (name, labels) returns the same
// instrument, which is what keeps a hot-swapped schema's counters
// continuous across re-registration. A Registry is safe for concurrent
// use; the instruments it hands out are lock-free.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Seconds is the exposition scale for histograms recorded in nanoseconds
// (time.Duration values): bucket bounds and sums render as seconds, the
// Prometheus base unit.
const Seconds = 1e-9

// family returns (creating if needed) the family for name, enforcing kind
// agreement — registering one name under two kinds is a programming error.
func (r *Registry) family(name, help string, kind Kind, scale float64) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, scale: scale,
			byLabel: make(map[string]*metric)}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	return f
}

// series returns (creating if needed) the labeled series within f.
func (f *family) seriesFor(labels []Label) (*metric, bool) {
	key := renderLabels(labels)
	if m, ok := f.byLabel[key]; ok {
		return m, false
	}
	m := &metric{labels: key}
	f.byLabel[key] = m
	f.series = append(f.series, m)
	return m, true
}

// Counter returns the counter series (name, labels), creating both the
// family and the series on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.family(name, help, KindCounter, 1).seriesFor(labels)
	if fresh {
		m.c = &Counter{}
	}
	if m.c == nil {
		panic(fmt.Sprintf("obs: counter series %s%s already registered as a CounterFunc", name, m.labels))
	}
	return m.c
}

// CounterFunc registers a counter series whose value is read from f at
// scrape time — for counters that live elsewhere (package-level atomics,
// cache internals). Re-registering replaces the callback.
func (r *Registry) CounterFunc(name, help string, f func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.family(name, help, KindCounter, 1).seriesFor(labels)
	m.cf = f
}

// GaugeFunc registers a gauge series computed by f at scrape time.
// Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.family(name, help, KindGauge, 1).seriesFor(labels)
	m.gf = f
}

// Histogram returns the histogram series (name, labels), creating it on
// first use. scale converts recorded values to the exposition unit (use
// Seconds for nanosecond durations, 1 for byte sizes and counts); it must
// agree across calls for one name.
func (r *Registry) Histogram(name, help string, scale float64, labels ...Label) *Histogram {
	if scale == 0 {
		scale = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.family(name, help, KindHistogram, scale).seriesFor(labels)
	if fresh {
		m.h = &Histogram{}
	}
	return m.h
}

// renderLabels renders a label set as its exposition form ({k="v",...}),
// which doubles as the series identity key. Values are escaped per the
// text format (backslash, quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		escapeLabelValue(&b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

// snapshotFams returns the family list in registration order with series
// slices copied, so encoders can walk them outside the lock.
func (r *Registry) snapshotFams() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		c := &family{name: f.name, help: f.help, kind: f.kind, scale: f.scale}
		c.series = append(c.series, f.series...)
		out = append(out, c)
	}
	return out
}

// sortedSeries returns f's series sorted by label string for deterministic
// exposition (registration order of dynamic series — schemas — varies).
func (f *family) sortedSeries() []*metric {
	s := append([]*metric(nil), f.series...)
	sort.Slice(s, func(i, j int) bool { return s[i].labels < s[j].labels })
	return s
}
