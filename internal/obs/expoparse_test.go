package obs

import (
	"strings"
	"testing"
)

// TestParseExpositionErrors locks the strict-parser rejections: every
// malformed exposition shape fails with a message naming the offense,
// rather than being silently skipped — the parser is the test suite's
// oracle for /metrics output, so leniency here would mask encoder bugs.
func TestParseExpositionErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"malformed comment", "# BOGUS x y\n", "malformed comment"},
		{"comment too short", "# HELP\n", "malformed comment"},
		{"illegal family name", "# TYPE 9bad counter\n", "illegal metric name"},
		{"unknown type", "# TYPE m histo\n", "unknown TYPE"},
		{"sample without family", "m_total 1\n", "under no declared family"},
		{"bucket without histogram family", "# TYPE m counter\nm_bucket{le=\"1\"} 1\n", "under no declared family"},
		{"sample without value", "# TYPE m counter\nm\n", "malformed sample"},
		{"illegal sample name", "# TYPE m counter\n1m 2\n", "illegal metric name"},
		{"unterminated label set", "# TYPE m counter\nm{a=\"1\" 2\n", "unterminated label set"},
		{"label without equals", "# TYPE m counter\nm{a} 2\n", "malformed label"},
		{"illegal label name", "# TYPE m counter\nm{9a=\"1\"} 2\n", "illegal label name"},
		{"unquoted label value", "# TYPE m counter\nm{a=1} 2\n", "unquoted label value"},
		{"duplicate label", "# TYPE m counter\nm{a=\"1\",a=\"2\"} 2\n", "duplicate label"},
		{"unterminated label value", "# TYPE m counter\nm{a=\"1} 2\n", "unterminated label"},
		{"dangling escape", "# TYPE m counter\nm{a=\"x\\} 2\n", "dangling escape"},
		{"unknown escape", "# TYPE m counter\nm{a=\"x\\t\"} 2\n", "unknown escape"},
		{"missing value after labels", "# TYPE m counter\nm{a=\"1\"} \n", "missing sample value"},
		{"bare plus-inf value", "# TYPE m counter\nm +Inf\n", "+Inf sample value"},
		{"unparseable value", "# TYPE m counter\nm notanumber\n", "invalid syntax"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseExposition(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseExposition(%q) succeeded, want error containing %q", tc.in, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseExposition(%q) error %q does not mention %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestParseExpositionErrorLine checks errors carry the 1-based line number
// of the offending line, counting blank and comment lines.
func TestParseExpositionErrorLine(t *testing.T) {
	in := "# TYPE m counter\n\nm 1\nm bad\n"
	_, err := ParseExposition(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4:") {
		t.Fatalf("want error on line 4, got %v", err)
	}
}

// TestCheckHistogramsErrors locks the consistency checks layered on a
// well-formed parse: bucket ordering, cumulative monotonicity, the
// mandatory +Inf bucket, and +Inf/_count agreement.
func TestCheckHistogramsErrors(t *testing.T) {
	const hdr = "# TYPE h histogram\n"
	cases := []struct {
		name, in, wantErr string
	}{
		{
			"out-of-order buckets",
			hdr + "h_bucket{le=\"5\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n",
			"le bounds not increasing",
		},
		{
			"duplicate le bound",
			hdr + "h_bucket{le=\"1\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n",
			"le bounds not increasing",
		},
		{
			"decreasing cumulative counts",
			hdr + "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
			"cumulative bucket counts decrease",
		},
		{
			"missing +Inf bucket",
			hdr + "h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\n",
			"without +Inf bucket",
		},
		{
			"bucket without le",
			hdr + "h_bucket{x=\"1\"} 1\n",
			"bucket without le label",
		},
		{
			"bad le bound",
			hdr + "h_bucket{le=\"wat\"} 1\n",
			"bad le",
		},
		{
			"inf bucket disagrees with count",
			hdr + "h_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 9\n",
			"!= count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := ParseExposition(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("ParseExposition: %v", err)
			}
			err = e.CheckHistograms()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckHistograms(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestCheckHistogramsLabelledSeries: monotonicity is tracked per label set,
// so interleaved series with independent counts stay legal.
func TestCheckHistogramsLabelledSeries(t *testing.T) {
	in := "# TYPE h histogram\n" +
		"h_bucket{op=\"a\",le=\"1\"} 9\nh_bucket{op=\"a\",le=\"+Inf\"} 9\n" +
		"h_bucket{op=\"b\",le=\"1\"} 2\nh_bucket{op=\"b\",le=\"+Inf\"} 4\n" +
		"h_count{op=\"a\"} 9\nh_count{op=\"b\"} 4\n"
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if err := e.CheckHistograms(); err != nil {
		t.Fatalf("CheckHistograms: %v", err)
	}
}
