// Exposition encoders: the Prometheus text format (version 0.0.4) for the
// live /metrics endpoint, and a compact human-readable summary for
// one-shot CLI -stats reports. Both render the same registry snapshot.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// quantiles are the extraction points exposed alongside every histogram.
var quantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"},
}

// WritePrometheus renders every family in Prometheus text exposition
// format: # HELP and # TYPE headers, one sample line per series.
// Histograms render as native histogram families (cumulative _bucket
// series with `le` bounds, _sum, _count; only non-empty buckets are
// emitted, plus +Inf) followed by a companion <name>_quantiles gauge
// family carrying the extracted p50/p90/p99/p999, so scrapes see tail
// latency directly without PromQL.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFams() {
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		series := f.sortedSeries()
		for _, m := range series {
			switch f.kind {
			case KindCounter:
				v := uint64(0)
				if m.cf != nil {
					v = m.cf()
				} else if m.c != nil {
					v = m.c.Value()
				}
				fmt.Fprintf(bw, "%s%s %d\n", f.name, m.labels, v)
			case KindGauge:
				v := 0.0
				if m.gf != nil {
					v = m.gf()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, m.labels, formatFloat(v))
			case KindHistogram:
				writeHistProm(bw, f, m)
			}
		}
		if f.kind == KindHistogram {
			writeHistQuantiles(bw, f, series)
		}
	}
	return bw.Flush()
}

// writeHistProm renders one histogram series as cumulative buckets.
func writeHistProm(w *bufio.Writer, f *family, m *metric) {
	s := m.h.Snapshot()
	cum := uint64(0)
	for i := range s.buckets {
		if s.buckets[i] == 0 {
			continue
		}
		cum += s.buckets[i]
		bound := float64(bucketUpper(i)) * f.scale
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			withLabel(m.labels, "le", formatFloat(bound)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(m.labels, "le", "+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, m.labels, formatFloat(float64(s.Sum)*f.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, m.labels, s.Count)
}

// writeHistQuantiles renders the companion gauge family with extracted
// quantiles for each series of a histogram family.
func writeHistQuantiles(w *bufio.Writer, f *family, series []*metric) {
	name := f.name + "_quantiles"
	fmt.Fprintf(w, "# HELP %s Extracted quantiles of %s.\n", name, f.name)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	for _, m := range series {
		s := m.h.Snapshot()
		for _, q := range quantiles {
			fmt.Fprintf(w, "%s%s %s\n", name,
				withLabel(m.labels, "quantile", q.label),
				formatFloat(s.Quantile(q.q)*f.scale))
		}
	}
}

// withLabel splices one more label into a rendered label set.
func withLabel(labels, name, value string) string {
	extra := name + `="` + value + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSummary renders a compact one-shot report: one line per series,
// histograms as count/mean/quantiles in the family's exposition unit.
// This is the encoder the CLI -stats flags share with the server's
// /metrics endpoint — same registry, two renderings.
func (r *Registry) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFams() {
		for _, m := range f.sortedSeries() {
			switch f.kind {
			case KindCounter:
				v := uint64(0)
				if m.cf != nil {
					v = m.cf()
				} else if m.c != nil {
					v = m.c.Value()
				}
				if v == 0 {
					continue // one-shot reports: drop never-hit series
				}
				fmt.Fprintf(bw, "%s%s %d\n", f.name, m.labels, v)
			case KindGauge:
				v := 0.0
				if m.gf != nil {
					v = m.gf()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, m.labels, formatFloat(v))
			case KindHistogram:
				s := m.h.Snapshot()
				if s.Count == 0 {
					continue
				}
				fmt.Fprintf(bw, "%s%s count=%d mean=%s p50=%s p90=%s p99=%s p999=%s\n",
					f.name, m.labels, s.Count,
					formatFloat(s.Mean()*f.scale),
					formatFloat(s.Quantile(0.5)*f.scale),
					formatFloat(s.Quantile(0.9)*f.scale),
					formatFloat(s.Quantile(0.99)*f.scale),
					formatFloat(s.Quantile(0.999)*f.scale))
			}
		}
	}
	return bw.Flush()
}
