package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketMapping checks the log-linear bucket layout invariants the
// whole histogram rests on: every value maps into a bucket whose bounds
// contain it, indices are monotone in the value, and the relative bucket
// width never exceeds 2^-histSubBits.
func TestBucketMapping(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 4096, 1 << 20,
		1<<20 + 1, 1 << 40, math.MaxInt64, math.MaxUint64} {
		i := bucketIdx(v)
		if i < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		up := bucketUpper(i)
		if v > up {
			t.Errorf("value %d above bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			lo := bucketUpper(i-1) + 1
			if v < lo {
				t.Errorf("value %d below bucket %d lower bound %d", v, i, lo)
			}
			if i >= histSub {
				width := float64(up-lo) + 1
				if width/float64(lo) > 1.0/histSub+1e-9 {
					t.Errorf("bucket %d relative width %f too wide", i, width/float64(lo))
				}
			}
		}
	}
	// Exhaustive containment on a dense low range.
	for v := uint64(0); v < 1<<14; v++ {
		i := bucketIdx(v)
		if v > bucketUpper(i) {
			t.Fatalf("value %d above bucket %d upper %d", v, i, bucketUpper(i))
		}
		if i > 0 && v <= bucketUpper(i-1) {
			t.Fatalf("value %d not above bucket %d upper %d", v, i-1, bucketUpper(i-1))
		}
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// extracted quantiles land within the documented ~12% bucket error.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count = %d, want 10000", s.Count)
	}
	if s.Sum != 10000*10001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5000}, {0.9, 9000}, {0.99, 9900}, {0.999, 9990}, {1, 10000}} {
		got := s.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.13 {
			t.Errorf("q%.3f = %.0f, want %.0f (+-13%%)", tc.q, got, tc.want)
		}
	}
	var empty Histogram
	es := empty.Snapshot()
	if es.Quantile(0.5) != 0 || es.Mean() != 0 {
		t.Errorf("empty histogram quantile/mean nonzero")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshotting — the recording path must be lock-free and race-clean.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const g, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(seed + int64(j)%1000)
			}
		}(int64(i))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			_ = s.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if s := h.Snapshot(); s.Count != g*per {
		t.Errorf("count = %d, want %d", s.Count, g*per)
	}
}

// TestRegistryGetOrCreate verifies instrument identity: the same (name,
// labels) resolves to the same counter/histogram — the property that keeps
// a hot-swapped schema's series continuous.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Errorf("same series resolved to distinct counters")
	}
	c := r.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Errorf("distinct labels resolved to the same counter")
	}
	h1 := r.Histogram("d_seconds", "help", Seconds, L("k", "v"))
	h2 := r.Histogram("d_seconds", "help", Seconds, L("k", "v"))
	if h1 != h2 {
		t.Errorf("same histogram series resolved to distinct histograms")
	}
}

// TestExpositionRoundTrip encodes a registry with all three kinds and
// feeds the output to the strict parser: format validity, histogram
// invariants, and value agreement.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "Requests served.", L("endpoint", "validate"))
	c.Add(7)
	r.Counter("req_total", "Requests served.", L("endpoint", "compile")).Add(3)
	r.GaugeFunc("hit_rate", "Cache hit rate.", func() float64 { return 0.5 })
	h := r.Histogram("dur_seconds", "Request duration.", Seconds, L("endpoint", "validate"))
	for i := 0; i < 100; i++ {
		h.Observe(int64(i) * 1000) // 0..99µs
	}
	r.CounterFunc("ext_total", "External counter.", func() uint64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if err := e.CheckHistograms(); err != nil {
		t.Fatalf("histogram invariants: %v\n%s", err, sb.String())
	}
	if e.Type["req_total"] != "counter" || e.Type["dur_seconds"] != "histogram" {
		t.Errorf("TYPE headers: %v", e.Type)
	}
	if v, ok := e.Get("req_total", L("endpoint", "validate")); !ok || v != 7 {
		t.Errorf("req_total{validate} = %v, %v", v, ok)
	}
	if v, ok := e.Get("ext_total"); !ok || v != 42 {
		t.Errorf("ext_total = %v, %v", v, ok)
	}
	if v, ok := e.Get("dur_seconds_count", L("endpoint", "validate")); !ok || v != 100 {
		t.Errorf("dur_seconds_count = %v, %v", v, ok)
	}
	// The companion quantile family is present and in seconds.
	if v, ok := e.Get("dur_seconds_quantiles", L("endpoint", "validate"), L("quantile", "0.99")); !ok || v <= 0 || v > 0.0002 {
		t.Errorf("p99 = %v, %v (want ~99e-6)", v, ok)
	}
}

// TestLabelEscaping round-trips a hostile label value through encoder and
// parser.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := "a\"b\\c\nd"
	r.Counter("x_total", "h", L("k", hostile)).Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%q", err, sb.String())
	}
	if v, ok := e.Get("x_total", L("k", hostile)); !ok || v != 1 {
		t.Errorf("escaped label did not round-trip: %v %v", v, ok)
	}
}

// TestWriteSummary checks the one-shot rendering the CLI -stats flags use.
func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("docs_total", "h", L("verdict", "valid")).Add(12)
	r.Counter("docs_total", "h", L("verdict", "invalid")) // zero: omitted
	h := r.Histogram("dur_seconds", "h", Seconds)
	h.Observe(int64(1000000)) // 1ms
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `docs_total{verdict="valid"} 12`) {
		t.Errorf("summary missing counter: %q", out)
	}
	if strings.Contains(out, "invalid") {
		t.Errorf("summary includes zero series: %q", out)
	}
	if !strings.Contains(out, "count=1") || !strings.Contains(out, "p50=") {
		t.Errorf("summary missing histogram line: %q", out)
	}
}
