// Lock-free log-bucketed histogram (HDR-style): fixed log-linear buckets —
// exact below 8, then 8 linear sub-buckets per power of two, so every
// bucket's width is at most 1/8 of its lower bound (quantiles are accurate
// to ~12% at any magnitude). Recording is two uncontended atomic adds;
// there is no lock anywhere, so a histogram can sit on a path pinned at
// zero allocations and be scraped concurrently from any goroutine.
package obs

import (
	"math/bits"
	"sync/atomic"
)

const (
	// histSubBits sets the sub-bucket resolution: 1<<histSubBits linear
	// buckets per octave, i.e. relative bucket width 2^-histSubBits.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the whole uint64 range: values 0..histSub-1
	// exactly, then (64-histSubBits) octaves of histSub sub-buckets.
	histBuckets = (64-histSubBits)<<histSubBits + histSub
)

// Histogram records non-negative integer observations (durations in
// nanoseconds, sizes in bytes). The zero value is ready. All methods are
// safe for concurrent use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Int64
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIdx(uint64(v))].Add(1)
	h.sum.Add(v)
}

// bucketIdx maps a value to its bucket: identity below histSub, then
// (octave, sub-bucket) with sub-bucket = the histSubBits bits below the
// top bit. The mapping is monotone.
func bucketIdx(v uint64) int {
	if v < histSub {
		return int(v)
	}
	l := uint(bits.Len64(v)) - 1 // top-bit position, >= histSubBits
	sub := (v >> (l - histSubBits)) & (histSub - 1)
	return int(l-histSubBits+1)<<histSubBits + int(sub)
}

// bucketUpper returns the largest value landing in bucket i (the
// inclusive upper bound, i.e. the Prometheus `le` bound).
func bucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	o := uint(i>>histSubBits) + histSubBits - 1 // octave: top-bit position
	width := uint64(1) << (o - histSubBits)
	lower := uint64(1)<<o + uint64(i&(histSub-1))*width
	return lower + width - 1
}

// HistSnapshot is a point-in-time copy of a histogram, for quantile
// extraction and encoding. Counts are read bucket by bucket while
// recording may continue, so totals are approximate to within the
// observations that land mid-scrape — fine for monitoring.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	buckets [histBuckets]uint64
}

// Snapshot copies the current bucket counts and sum.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded values,
// interpolating linearly within the containing bucket. It returns 0 for
// an empty histogram.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			upper := float64(bucketUpper(i))
			lower := upper
			if i >= histSub {
				lower = upper - float64(uint64(1)<<(uint(i>>histSubBits)-1)) + 1
			}
			frac := 1.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(upper-lower)
		}
		cum = next
	}
	return float64(bucketUpper(histBuckets - 1))
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Sum64 returns the histogram's running sum without a full snapshot — the
// cheap read for derived gauges like ns-per-symbol.
func (h *Histogram) Sum64() int64 { return h.sum.Load() }
