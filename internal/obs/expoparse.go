// A strict parser for the Prometheus text exposition format, used by the
// tests that verify /metrics output (format validity, bucket monotonicity,
// count/+Inf agreement) — the consumer side of expo.go's encoder.
package obs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set, and
// the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed /metrics payload.
type Exposition struct {
	// Help and Type record the # HELP / # TYPE headers by family name.
	Help, Type map[string]string
	Samples    []Sample
}

// Get returns the sample for name with exactly the given labels
// (name=value pairs, order-insensitive); ok reports whether it exists.
func (e *Exposition) Get(name string, labels ...Label) (float64, bool) {
	want := map[string]string{}
	for _, l := range labels {
		want[l.Name] = l.Value
	}
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParseExposition parses Prometheus text format strictly: legal metric and
// label names, parseable values, # TYPE values from the known set, and
// samples only under a previously declared family (suffix samples
// _bucket/_sum/_count attach to their histogram family).
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Help: map[string]string{}, Type: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
			}
			rest := ""
			if len(fields) == 4 {
				rest = fields[3]
			}
			if fields[1] == "HELP" {
				e.Help[name] = rest
			} else {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, rest)
				}
				e.Type[name] = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if familyOf(s.Name, e.Type) == "" {
			return nil, fmt.Errorf("line %d: sample %q under no declared family", lineNo, s.Name)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// familyOf resolves a sample name to its declared family ("" if none):
// itself, or — for histogram sub-series — the name minus a known suffix.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("illegal metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		name := body[:eq]
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("illegal label name %q", name)
		}
		if len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		val, rest, err := scanQuoted(body[eq+2:])
		if err != nil {
			return err
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		into[name] = val
		body = strings.TrimPrefix(rest, ",")
	}
	return nil
}

// scanQuoted consumes an escaped label value up to its closing quote.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", errors.New("dangling escape in label value")
			}
			i++
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", errors.New("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return 0, errors.New("+Inf sample value outside le label")
	case "":
		return 0, errors.New("missing sample value")
	}
	return strconv.ParseFloat(s, 64)
}

// CheckHistograms validates every histogram family in e: cumulative
// buckets must be non-decreasing in le order, and the +Inf bucket must
// equal the _count sample of the same series.
func (e *Exposition) CheckHistograms() error {
	type key struct{ name, labels string }
	// Collect buckets per series in sample order (encoder emits ascending
	// le), and counts.
	buckets := map[key][]Sample{}
	counts := map[key]float64{}
	for _, s := range e.Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			k := key{strings.TrimSuffix(s.Name, "_bucket"), labelsKeyWithout(s.Labels, "le")}
			buckets[k] = append(buckets[k], s)
		}
		if strings.HasSuffix(s.Name, "_count") {
			base := strings.TrimSuffix(s.Name, "_count")
			if e.Type[base] == "histogram" {
				counts[key{base, labelsKeyWithout(s.Labels, "")}] = s.Value
			}
		}
	}
	for k, bs := range buckets {
		prevLe := -1.0
		prev := -1.0
		sawInf := false
		for _, b := range bs {
			le := b.Labels["le"]
			if le == "" {
				return fmt.Errorf("%s: bucket without le label", k.name)
			}
			bound := 0.0
			if le == "+Inf" {
				sawInf = true
				bound = prevLe + 1 // ordering check only
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("%s: bad le %q: %v", k.name, le, err)
				}
			}
			if bound <= prevLe && prevLe >= 0 {
				return fmt.Errorf("%s: le bounds not increasing (%v after %v)", k.name, bound, prevLe)
			}
			if b.Value < prev {
				return fmt.Errorf("%s: cumulative bucket counts decrease (%v after %v)", k.name, b.Value, prev)
			}
			prevLe, prev = bound, b.Value
			if sawInf {
				if c, ok := counts[key{k.name, k.labels}]; ok && b.Value != c {
					return fmt.Errorf("%s: +Inf bucket %v != count %v", k.name, b.Value, c)
				}
			}
		}
		if !sawInf {
			return fmt.Errorf("%s: histogram series without +Inf bucket", k.name)
		}
	}
	return nil
}

// labelsKeyWithout renders a label map (minus one label) as a stable key.
func labelsKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	// insertion-order independence: small maps, simple sort
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}
