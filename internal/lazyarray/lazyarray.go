// Package lazyarray implements the constant-time-initialization associative
// array of the paper's §4.3 ("Lazy arrays", references [17, 22]): an array A
// of values, a counter C of active keys, and two cross-validating index
// arrays B and F such that key k is active iff 1 ≤ B[k] ≤ C and F[B[k]] = k.
//
// The classic trick allocates A, B and F as uninitialized memory; Go's
// allocator zero-fills, so the initial allocation is O(N) here (see
// DESIGN.md §4.2 for the substitution note). What the structure still buys —
// and what the matchers rely on — is Reset in O(1), letting one allocation
// be reused across arbitrarily many runs, exactly the workload of the
// paper's transition-simulation preprocessing.
package lazyarray

// Array is a lazy array with keys in [0, N). The zero value is unusable;
// call New.
type Array[V any] struct {
	a []V     // values
	b []int32 // b[k]: position of k in f, if active
	f []int32 // f[i]: the i-th activated key
	c int32   // number of active keys
}

// New returns a lazy array for keys 0..n-1.
func New[V any](n int) *Array[V] {
	return &Array[V]{
		a: make([]V, n),
		b: make([]int32, n),
		f: make([]int32, n),
	}
}

// Len returns the key-space size N.
func (l *Array[V]) Len() int { return len(l.a) }

// Count returns the number of active keys.
func (l *Array[V]) Count() int { return int(l.c) }

// active reports whether key k currently holds a value.
func (l *Array[V]) active(k int32) bool {
	return l.b[k] >= 1 && l.b[k] <= l.c && l.f[l.b[k]-1] == k
}

// Set assigns value v to key k in O(1).
func (l *Array[V]) Set(k int, v V) {
	kk := int32(k)
	if !l.active(kk) {
		l.f[l.c] = kk
		l.c++
		l.b[kk] = l.c
	}
	l.a[kk] = v
}

// Get returns the value at key k and whether it is set, in O(1).
func (l *Array[V]) Get(k int) (V, bool) {
	kk := int32(k)
	if l.active(kk) {
		return l.a[kk], true
	}
	var zero V
	return zero, false
}

// Delete removes key k in O(1) (swap-with-last on the active list).
func (l *Array[V]) Delete(k int) {
	kk := int32(k)
	if !l.active(kk) {
		return
	}
	pos := l.b[kk] - 1
	last := l.f[l.c-1]
	l.f[pos] = last
	l.b[last] = pos + 1
	l.c--
	var zero V
	l.a[kk] = zero
}

// Reset deactivates every key in O(1) — the operation hash maps cannot
// match (§4.3: "lazy arrays stand on their own merit because they allow a
// constant time reset operation").
func (l *Array[V]) Reset() { l.c = 0 }

// Keys appends the active keys to dst and returns it (order of activation).
func (l *Array[V]) Keys(dst []int) []int {
	for i := int32(0); i < l.c; i++ {
		dst = append(dst, int(l.f[i]))
	}
	return dst
}
