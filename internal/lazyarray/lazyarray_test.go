package lazyarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	l := New[string](8)
	if _, ok := l.Get(3); ok {
		t.Fatal("fresh array has an active key")
	}
	l.Set(3, "x")
	if v, ok := l.Get(3); !ok || v != "x" {
		t.Fatal("Set/Get broken")
	}
	l.Set(3, "y")
	if v, _ := l.Get(3); v != "y" {
		t.Fatal("overwrite broken")
	}
	if l.Count() != 1 {
		t.Fatalf("Count = %d, want 1", l.Count())
	}
	l.Reset()
	if _, ok := l.Get(3); ok || l.Count() != 0 {
		t.Fatal("Reset did not deactivate keys")
	}
	// Keys left from before Reset must not resurrect.
	l.Set(5, "z")
	if _, ok := l.Get(3); ok {
		t.Fatal("stale key resurrected after Reset")
	}
}

func TestDelete(t *testing.T) {
	l := New[int](10)
	for i := 0; i < 10; i += 2 {
		l.Set(i, i*i)
	}
	l.Delete(4)
	l.Delete(4) // double delete is a no-op
	if _, ok := l.Get(4); ok {
		t.Fatal("deleted key still active")
	}
	for _, i := range []int{0, 2, 6, 8} {
		if v, ok := l.Get(i); !ok || v != i*i {
			t.Fatalf("key %d lost after Delete", i)
		}
	}
	if l.Count() != 4 {
		t.Fatalf("Count = %d, want 4", l.Count())
	}
}

// TestAgainstMap drives random operation sequences against a map.
func TestAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(100)
		l := New[int](n)
		ref := map[int]int{}
		for op := 0; op < 1000; op++ {
			k := r.Intn(n)
			switch r.Intn(5) {
			case 0, 1, 2:
				v := r.Int()
				l.Set(k, v)
				ref[k] = v
			case 3:
				l.Delete(k)
				delete(ref, k)
			case 4:
				if r.Intn(20) == 0 {
					l.Reset()
					ref = map[int]int{}
				}
			}
			if l.Count() != len(ref) {
				t.Fatalf("Count = %d, map has %d", l.Count(), len(ref))
			}
			got, ok := l.Get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", k, got, ok, want, wok)
			}
		}
		keys := l.Keys(nil)
		if len(keys) != len(ref) {
			t.Fatalf("Keys: %d, want %d", len(keys), len(ref))
		}
		for _, k := range keys {
			if _, ok := ref[k]; !ok {
				t.Fatalf("Keys contains inactive key %d", k)
			}
		}
	}
}

func TestQuickResetIsolation(t *testing.T) {
	// Property: after Reset, no key from the previous epoch is visible,
	// regardless of the write pattern.
	f := func(writes []uint8, probe uint8) bool {
		l := New[int](256)
		for _, w := range writes {
			l.Set(int(w), 1)
		}
		l.Reset()
		_, ok := l.Get(int(probe))
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
