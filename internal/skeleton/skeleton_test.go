package skeleton

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/glushkov"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func compile(t *testing.T, expr string) (*parsetree.Tree, *follow.Index) {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr, follow.New(tr)
}

// naiveSkeletonSet computes the a-skeleton node set by the definitional
// fixpoint: class a (positions, colored nodes, iterated LCAs) plus
// pSupLast/pStar of class members.
func naiveSkeletonSet(tr *parsetree.Tree, fol *follow.Index, sym ast.Symbol) map[parsetree.NodeID]bool {
	class := map[parsetree.NodeID]bool{}
	for _, p := range tr.PosNode {
		if tr.Sym[p] != sym {
			continue
		}
		class[p] = true
		if psf := tr.PSupFirst[p]; psf != parsetree.Null {
			class[tr.Parent[psf]] = true
		}
	}
	for changed := true; changed; {
		changed = false
		var nodes []parsetree.NodeID
		for n := range class {
			nodes = append(nodes, n)
		}
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				l := fol.LCA.Query(nodes[i], nodes[j])
				if !class[l] {
					class[l] = true
					changed = true
				}
			}
		}
	}
	out := map[parsetree.NodeID]bool{}
	for n := range class {
		out[n] = true
		if psl := tr.PSupLast[n]; psl != parsetree.Null {
			out[psl] = true
		}
		if ps := tr.PStar[n]; ps != parsetree.Null {
			out[ps] = true
		}
	}
	return out
}

func TestSkeletonSetsMatchDefinition(t *testing.T) {
	exprs := []string{
		"(c?((ab*)(a?c)))*(ba)",
		"(ab+b(b?)a)*",
		"a?b?c?",
		"((ab)*(ba)*)*",
		"(a(b?c)*)+(d(e+f)?)*",
	}
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 6, 40, trial%2 == 0)
		exprs = append(exprs, ast.StringMath(e, alpha))
	}
	for _, expr := range exprs {
		tr, fol := compile(t, expr)
		sks := Build(tr, fol, Options{})
		if sks.NonDet != nil {
			continue // nondeterministic sample; sets not fully built
		}
		for sym := 0; sym < tr.Alpha.Size(); sym++ {
			want := naiveSkeletonSet(tr, fol, ast.Symbol(sym))
			lo, hi := sks.SymRange(ast.Symbol(sym))
			got := map[parsetree.NodeID]bool{}
			for i := lo; i < hi; i++ {
				got[sks.ENode[i]] = true
			}
			// The implementation may add LCA-repair nodes, so got ⊇ want;
			// the theory says they coincide — assert both directions to
			// keep the theory honest.
			for n := range want {
				if !got[n] {
					t.Fatalf("%s sym %s: node %d missing from skeleton",
						expr, tr.Alpha.Name(ast.Symbol(sym)), n)
				}
			}
			for n := range got {
				if !want[n] {
					t.Fatalf("%s sym %s: extra node %d in skeleton",
						expr, tr.Alpha.Name(ast.Symbol(sym)), n)
				}
			}
		}
	}
}

func TestSkeletonTreeStructure(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 6, 50, true)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fol := follow.New(tr)
		sks := Build(tr, fol, Options{})
		if sks.NonDet != nil {
			t.Fatalf("unexpected nondet: %v", sks.NonDet)
		}
		for i := range sks.ENode {
			idx := int32(i)
			if p := sks.Par[idx]; p != -1 {
				if !tr.IsAncestor(sks.ENode[p], sks.ENode[idx]) || sks.ENode[p] == sks.ENode[idx] {
					t.Fatal("skeleton parent is not a strict e-ancestor")
				}
				if sks.Lch[p] != idx && sks.Rch[p] != idx {
					t.Fatal("skeleton child link broken")
				}
			}
			if c := sks.Lch[idx]; c != -1 {
				l := tr.LChild[sks.ENode[idx]]
				if l == parsetree.Null || !tr.IsAncestor(l, sks.ENode[c]) {
					t.Fatal("skeleton left child not in left e-subtree")
				}
			}
			if c := sks.Rch[idx]; c != -1 {
				rch := tr.RChild[sks.ENode[idx]]
				if rch == parsetree.Null || !tr.IsAncestor(rch, sks.ENode[c]) {
					t.Fatal("skeleton right child not in right e-subtree")
				}
			}
		}
	}
}

func TestFigure1Pointers(t *testing.T) {
	// Example 4.1 of the paper, on e0 = (c?((ab*)(a?c)))*(ba):
	//   Witness(n3, c) = p5, Next(n3, c) = p1, FirstPos(n3, c) = Null,
	//   Witness(n3, a) = p4, FirstPos(n3, a) = p2.
	tr, fol := compile(t, "(c?((ab*)(a?c)))*(ba)")
	sks := Build(tr, fol, Options{})
	if sks.NonDet != nil {
		t.Fatalf("e0 reported nondeterministic: %v", sks.NonDet)
	}
	n1 := tr.UserRoot
	n2 := tr.LChild[n1]
	n3 := tr.RChild[tr.LChild[n2]]
	p := func(i int) parsetree.NodeID { return tr.PosNode[i] }

	find := func(sym string, node parsetree.NodeID) int32 {
		a, ok := tr.Alpha.Lookup(sym)
		if !ok {
			t.Fatalf("symbol %q not interned", sym)
		}
		lo, hi := sks.SymRange(a)
		for i := lo; i < hi; i++ {
			if sks.ENode[i] == node {
				return i
			}
		}
		t.Fatalf("node %d not in %s-skeleton", node, sym)
		return -1
	}
	cIdx := find("c", n3)
	if sks.Wit[cIdx] != p(5) {
		t.Errorf("Witness(n3,c) = %d, want p5=%d", sks.Wit[cIdx], p(5))
	}
	if sks.Next[cIdx] != p(1) {
		t.Errorf("Next(n3,c) = %d, want p1=%d", sks.Next[cIdx], p(1))
	}
	if sks.First[cIdx] != parsetree.Null {
		t.Errorf("FirstPos(n3,c) = %d, want Null", sks.First[cIdx])
	}
	aIdx := find("a", n3)
	if sks.Wit[aIdx] != p(4) {
		t.Errorf("Witness(n3,a) = %d, want p4=%d", sks.Wit[aIdx], p(4))
	}
	if sks.First[aIdx] != p(2) {
		t.Errorf("FirstPos(n3,a) = %d, want p2=%d", sks.First[aIdx], p(2))
	}
}

// TestNextMatchesFollowAfter validates Lemma 3.2: on deterministic
// expressions Next(n,a) equals the a-labeled portion of FollowAfter(n).
func TestNextMatchesFollowAfter(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	samples := 0
	for trial := 0; trial < 400; trial++ {
		alpha := ast.NewAlphabet()
		var e *ast.Node
		if trial%3 == 0 {
			e = wordgen.RandomDeterministicExpr(r, alpha, 5, 40, true)
		} else {
			e = ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 30}))
		}
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if glushkov.CheckBK(tr) != nil {
			continue // Lemma 3.2 exactness only promised for deterministic e
		}
		fol := follow.New(tr)
		sks := Build(tr, fol, Options{})
		if sks.NonDet != nil {
			t.Fatalf("linear test disagrees with BK on %s: %v",
				ast.StringMath(e, alpha), sks.NonDet)
		}
		b := follow.Brute(tr)
		samples++
		for sym := 0; sym < tr.Alpha.Size(); sym++ {
			lo, hi := sks.SymRange(ast.Symbol(sym))
			for i := lo; i < hi; i++ {
				n := sks.ENode[i]
				want := followAfterSym(tr, b, n, ast.Symbol(sym))
				switch {
				case len(want) == 0:
					if sks.Next[i] != parsetree.Null {
						t.Fatalf("%s: Next(%d,%s) = %d, want Null",
							ast.StringMath(e, alpha), n, alpha.Name(ast.Symbol(sym)), sks.Next[i])
					}
				case len(want) == 1:
					if sks.Next[i] != want[0] {
						t.Fatalf("%s: Next(%d,%s) = %d, want %d",
							ast.StringMath(e, alpha), n, alpha.Name(ast.Symbol(sym)), sks.Next[i], want[0])
					}
				default:
					t.Fatalf("%s: FollowAfter has two a-positions on a deterministic expression",
						ast.StringMath(e, alpha))
				}
			}
		}
	}
	if samples < 100 {
		t.Fatalf("only %d deterministic samples", samples)
	}
}

// followAfterSym computes FollowAfter(n) ∩ positions labeled sym by
// definition: q not below n such that some p ∈ Last(n) has q ∈ Follow(p).
func followAfterSym(tr *parsetree.Tree, b *follow.BruteSets, n parsetree.NodeID, sym ast.Symbol) []parsetree.NodeID {
	seen := map[parsetree.NodeID]bool{}
	var out []parsetree.NodeID
	for _, p := range b.Last[n] {
		for q := range b.Follow[p] {
			if tr.Sym[q] == sym && !tr.IsAncestor(n, q) && !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	return out
}

func TestP1Violation(t *testing.T) {
	tr, fol := compile(t, "a?a")
	sks := Build(tr, fol, Options{})
	if sks.NonDet == nil || sks.NonDet.Rule != "P1" {
		t.Fatalf("a?a: expected P1 violation, got %v", sks.NonDet)
	}
	if tr.Sym[sks.NonDet.Q1] != tr.Sym[sks.NonDet.Q2] || sks.NonDet.Q1 == sks.NonDet.Q2 {
		t.Fatal("P1 witness pair invalid")
	}
}
