// Package skeleton implements §3.1 of the paper: the candidate-pair
// reduction behind the linear-time determinism test.
//
// For every symbol a, the a-skeleton t_a is the LCA-closed set of all
// "class a" nodes — positions labeled a, colored nodes (the parent of
// pSupFirst(p) for every a-labeled position p), and their iterated LCAs —
// extended with the pSupLast and pStar nodes of its members. On this
// forest the package computes the three per-node, per-color candidate
// pointers of Lemma 3.3:
//
//	Witness(n,a)   the witness position for color a at n
//	FirstPos(n,a)  the unique a-position in First(n), if any
//	Next(n,a)      the a-positions in FollowAfter(n)   (Algorithm 1)
//
// along the way verifying conditions (P1) and (P2); a violation of either
// proves the expression nondeterministic and is reported with a witness
// pair. The total size of all skeleta and the total construction time are
// O(|e|) (Lemma 3.1, Lemma 3.2).
package skeleton

import (
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
)

// Violation is the first determinism violation found while constructing the
// skeleta: two distinct, equally-labeled positions Q1, Q2 that can be shown
// to follow a common position.
type Violation struct {
	Rule   string // "P1", "P2", "Y-overflow", "double-first"
	Q1, Q2 parsetree.NodeID
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s: positions %d and %d", v.Rule, v.Q1, v.Q2)
}

// Colored identifies a colored node: Node has color Sym with witness
// Witness(Node, Sym); Sk is its index into the flat skeleton arrays.
type Colored struct {
	Sym  ast.Symbol
	Node parsetree.NodeID
	Sk   int32
}

// Skeletons holds every a-skeleton of one expression in flat arrays. The
// skeleton nodes of symbol a occupy indices [Start[a], Start[a+1]), sorted
// by preorder of their e-node, so within a segment parents precede
// children.
type Skeletons struct {
	T   *parsetree.Tree
	Fol *follow.Index

	Start []int32            // len = alphabet size + 1
	ENode []parsetree.NodeID // e-node of each skeleton node
	Par   []int32            // skeleton parent (global index), -1 at roots
	Lch   []int32            // skeleton left child, -1 if none
	Rch   []int32            // skeleton right child, -1 if none
	Wit   []parsetree.NodeID // Witness(n,a), Null if n not colored a
	First []parsetree.NodeID // FirstPos(n,a), Null if none
	Next  []parsetree.NodeID // Next(n,a) after Algorithm 1, Null if none

	ColoredNodes []Colored

	// NonDet is the first violation found, or nil. When set, the arrays
	// above may be partially filled and must not be used for matching.
	NonDet *Violation

	opt Options
}

// Options tunes the construction.
type Options struct {
	// NumericLoops treats numeric iterations with Max ≥ 2 like ∗ nodes
	// when propagating loop candidates in Algorithm 1 (paper §3.3).
	NumericLoops bool
}

// Build constructs all skeleta for t. fol must be an index for t.
func Build(t *parsetree.Tree, fol *follow.Index, opt Options) *Skeletons {
	s := &Skeletons{T: t, Fol: fol, opt: opt}
	if v := s.checkP1(); v != nil {
		s.NonDet = v
		return s
	}
	s.construct()
	if s.NonDet != nil {
		return s
	}
	s.computeFirstPos()
	if s.NonDet != nil {
		return s
	}
	s.buildNext(opt)
	return s
}

// checkP1 verifies condition (P1): no two distinct equally-labeled
// positions share a pSupFirst pointer. One counting sort + one stamped
// scan, O(|e| + σ).
func (s *Skeletons) checkP1() *Violation {
	t := s.T
	n := t.N()
	m := t.NumPositions()
	// Counting sort positions by their pSupFirst node id.
	counts := make([]int32, n+1)
	for i := 0; i < m; i++ {
		p := t.PosNode[i]
		if psf := t.PSupFirst[p]; psf != parsetree.Null {
			counts[psf]++
		}
	}
	offs := make([]int32, n+1)
	var acc int32
	for i := 0; i <= n; i++ {
		offs[i] = acc
		acc += counts[i]
	}
	sorted := make([]parsetree.NodeID, acc)
	for i := 0; i < m; i++ {
		p := t.PosNode[i]
		if psf := t.PSupFirst[p]; psf != parsetree.Null {
			sorted[offs[psf]] = p
			offs[psf]++
		}
	}
	// Scan groups; stamp[symbol] marks the last group the symbol was seen
	// in, so a repeat within one group is a (P1) violation.
	sigma := t.Alpha.Size()
	stamp := make([]int32, sigma)
	prev := make([]parsetree.NodeID, sigma)
	for i := range stamp {
		stamp[i] = -1
	}
	group := int32(0)
	for i := 0; i < len(sorted); {
		j := i
		psf := t.PSupFirst[sorted[i]]
		for j < len(sorted) && t.PSupFirst[sorted[j]] == psf {
			j++
		}
		for k := i; k < j; k++ {
			p := sorted[k]
			sym := t.Sym[p]
			if stamp[sym] == group {
				return &Violation{Rule: "P1", Q1: prev[sym], Q2: p}
			}
			stamp[sym] = group
			prev[sym] = p
		}
		group++
		i = j
	}
	return nil
}

// entry is one (symbol, node) membership candidate for a skeleton,
// optionally carrying a color witness.
type entry struct {
	sym  ast.Symbol
	node parsetree.NodeID
	wit  parsetree.NodeID // Null unless this entry colors node with sym
}

// construct materializes all skeleta: base sets, LCA closure, the
// pSupLast/pStar extension, and the tree structure.
func (s *Skeletons) construct() {
	t := s.T
	sigma := t.Alpha.Size()

	// Base entries: every position, plus a colored entry per position of
	// e′ (and $); # has no pSupFirst and contributes no color.
	entries := make([]entry, 0, 2*t.NumPositions())
	for _, p := range t.PosNode {
		entries = append(entries, entry{t.Sym[p], p, parsetree.Null})
		if psf := t.PSupFirst[p]; psf != parsetree.Null {
			entries = append(entries, entry{t.Sym[p], t.Parent[psf], p})
		}
	}

	// 1. Sort the base sets and close them under LCA: the class-a nodes.
	perSym := s.sortEntries(entries, sigma)
	if s.NonDet != nil {
		return
	}
	perSym = s.lcaClose(perSym, sigma)
	if s.NonDet != nil {
		return
	}

	// 2. Extend with the pSupLast and pStar nodes of the class-a nodes —
	// applied once, exactly as in the paper's skeleton definition.
	var extra []entry
	for sym := 0; sym < sigma; sym++ {
		list := perSym[sym]
		for i := range list {
			node := list[i].node
			if psl := t.PSupLast[node]; psl != parsetree.Null && !containsNode(list, psl) {
				extra = append(extra, entry{ast.Symbol(sym), psl, parsetree.Null})
			}
			ps := t.PStar[node]
			if s.opt.NumericLoops {
				ps = t.PLoop[node] // iterations loop too (§3.3)
			}
			if ps != parsetree.Null && !containsNode(list, ps) {
				extra = append(extra, entry{ast.Symbol(sym), ps, parsetree.Null})
			}
		}
	}
	if len(extra) > 0 {
		for sym := range perSym {
			extra = append(extra, perSym[sym]...)
		}
		perSym = s.sortEntries(extra, sigma)
		if s.NonDet != nil {
			return
		}
		// The extension adds only ancestors of existing members, so the
		// set stays LCA-closed (DESIGN.md §1 note); lcaClose verifies and
		// repairs if needed.
		perSym = s.lcaClose(perSym, sigma)
		if s.NonDet != nil {
			return
		}
	}

	// Flatten into the arrays and build each skeleton's tree with the
	// classical rightmost-path stack over the preorder-sorted node list.
	s.Start = make([]int32, sigma+1)
	total := 0
	for sym := 0; sym < sigma; sym++ {
		s.Start[sym] = int32(total)
		total += len(perSym[sym])
	}
	s.Start[sigma] = int32(total)
	s.ENode = make([]parsetree.NodeID, total)
	s.Par = make([]int32, total)
	s.Lch = make([]int32, total)
	s.Rch = make([]int32, total)
	s.Wit = make([]parsetree.NodeID, total)
	s.First = make([]parsetree.NodeID, total)
	s.Next = make([]parsetree.NodeID, total)
	for i := range s.Par {
		s.Par[i], s.Lch[i], s.Rch[i] = -1, -1, -1
		s.Wit[i], s.First[i], s.Next[i] = parsetree.Null, parsetree.Null, parsetree.Null
	}
	for sym := 0; sym < sigma; sym++ {
		base := int(s.Start[sym])
		list := perSym[sym]
		var stack []int32
		for i := range list {
			idx := int32(base + i)
			s.ENode[idx] = list[i].node
			s.Wit[idx] = list[i].wit
			if list[i].wit != parsetree.Null {
				s.ColoredNodes = append(s.ColoredNodes, Colored{
					Sym: ast.Symbol(sym), Node: list[i].node, Sk: idx,
				})
			}
			// Pop the rightmost path down to the nearest ancestor.
			for len(stack) > 0 && !t.IsAncestor(s.ENode[stack[len(stack)-1]], list[i].node) {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				s.attach(stack[len(stack)-1], idx)
			}
			stack = append(stack, idx)
		}
	}
}

// attach links child c under skeleton parent p, on the e-side determined by
// which e-child subtree of ENode[p] contains ENode[c].
func (s *Skeletons) attach(p, c int32) {
	t := s.T
	s.Par[c] = p
	pe := s.ENode[p]
	if l := t.LChild[pe]; l != parsetree.Null && t.IsAncestor(l, s.ENode[c]) {
		if s.Lch[p] != -1 {
			panic("skeleton: left slot occupied — set not LCA-closed")
		}
		s.Lch[p] = c
		return
	}
	if s.Rch[p] != -1 {
		panic("skeleton: right slot occupied — set not LCA-closed")
	}
	s.Rch[p] = c
}

// lcaClose inserts the LCAs of preorder-consecutive members until the sets
// are LCA-closed. One insertion pass suffices for a preorder-sorted list
// (the classical virtual-tree fact); the loop re-verifies after resorting.
func (s *Skeletons) lcaClose(perSym [][]entry, sigma int) [][]entry {
	for round := 0; ; round++ {
		if round > 8 {
			panic("skeleton: LCA closure did not stabilize")
		}
		var extra []entry
		for sym := 0; sym < sigma; sym++ {
			list := perSym[sym]
			for i := 1; i < len(list); i++ {
				l := s.Fol.LCA.Query(list[i-1].node, list[i].node)
				if !containsNode(list, l) {
					extra = append(extra, entry{ast.Symbol(sym), l, parsetree.Null})
				}
			}
		}
		if len(extra) == 0 {
			return perSym
		}
		for sym := range perSym {
			extra = append(extra, perSym[sym]...)
		}
		perSym = s.sortEntries(extra, sigma)
		if s.NonDet != nil {
			return perSym
		}
	}
}

// sortEntries counting-sorts entries by node id and regroups them per
// symbol, deduplicating nodes and merging witnesses. A node acquiring two
// witnesses for one symbol would contradict (P1), which was checked first.
func (s *Skeletons) sortEntries(entries []entry, sigma int) [][]entry {
	t := s.T
	n := t.N()
	counts := make([]int32, n+1)
	for _, e := range entries {
		counts[e.node]++
	}
	var acc int32
	offs := make([]int32, n+1)
	for i := 0; i <= n; i++ {
		offs[i] = acc
		acc += counts[i]
	}
	sorted := make([]entry, len(entries))
	for _, e := range entries {
		sorted[offs[e.node]] = e
		offs[e.node]++
	}
	perSym := make([][]entry, sigma)
	for _, e := range sorted {
		list := perSym[e.sym]
		if len(list) > 0 && list[len(list)-1].node == e.node {
			last := &list[len(list)-1]
			if e.wit != parsetree.Null {
				if last.wit != parsetree.Null && last.wit != e.wit {
					s.NonDet = &Violation{Rule: "P1", Q1: last.wit, Q2: e.wit}
					return perSym
				}
				last.wit = e.wit
			}
			continue
		}
		perSym[e.sym] = append(list, e)
	}
	return perSym
}

func containsNode(list []entry, n parsetree.NodeID) bool {
	// list is sorted by node id; binary search.
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case list[mid].node == n:
			return true
		case list[mid].node < n:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// computeFirstPos fills FirstPos(n,a) bottom-up: a child's FirstPos
// survives to its skeleton parent iff its pSupFirst still dominates the
// parent (Lemma 2.3). Two surviving candidates would mean two a-positions
// in one First set, which (P1) excludes — reported defensively.
func (s *Skeletons) computeFirstPos() {
	t := s.T
	for sym := 0; sym < len(s.Start)-1; sym++ {
		for i := s.Start[sym+1] - 1; i >= s.Start[sym]; i-- {
			node := s.ENode[i]
			if t.IsPos(node) && ast.Symbol(sym) == t.Sym[node] {
				s.First[i] = node
			}
			f := s.First[i]
			if f == parsetree.Null {
				continue
			}
			p := s.Par[i]
			if p == -1 {
				continue
			}
			if t.IsAncestor(t.PSupFirst[f], s.ENode[p]) {
				if s.First[p] != parsetree.Null && s.First[p] != f {
					s.NonDet = &Violation{Rule: "double-first", Q1: s.First[p], Q2: f}
					return
				}
				s.First[p] = f
			}
		}
	}
}

// symOf returns the symbol whose skeleton contains global index i.
func (s *Skeletons) symOf(i int32) ast.Symbol {
	// Binary search over Start.
	lo, hi := 0, len(s.Start)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.Start[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return ast.Symbol(lo)
}

// buildNext is Algorithm 1 of the paper, run iteratively over every
// skeleton root. Y carries at most two candidate positions; a third
// distinct candidate, or a Next set with two elements (condition (P2)
// violated), proves nondeterminism.
func (s *Skeletons) buildNext(opt Options) {
	t := s.T
	type item struct {
		idx int32
		y   ySet
	}
	var stack []item
	for sym := 0; sym < len(s.Start)-1; sym++ {
		for i := s.Start[sym]; i < s.Start[sym+1]; i++ {
			if s.Par[i] == -1 {
				stack = append(stack, item{i, ySet{}})
			}
		}
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i := it.idx
		y := it.y
		node := s.ENode[i]
		par := s.Par[i]

		// Line 1-2, strengthened: a SupLast node anywhere on the edge
		// from the skeleton parent down to n (inclusive) cuts everything
		// arriving from above. The paper's skeleton only materializes the
		// pSupLast nodes of class-a members, so a barrier can sit between
		// two skeleton nodes without being one itself; the reflexive
		// pSupLast pointer detects it in O(1). (With the reset at n only,
		// Next could retain candidates outside FollowAfter(n), breaking
		// Lemma 3.2 at uncolored nodes — see skeleton_test.go.)
		if psl := t.PSupLast[node]; psl != parsetree.Null {
			if par == -1 || !t.IsAncestor(psl, s.ENode[par]) {
				y = ySet{}
			}
		}
		// Lines 3-6: pick up the FirstPos of a right sibling in t_a. The
		// candidate is genuine iff Last(n) survives to the left child of
		// the ⊙ ancestor and the sibling's FirstPos survives to its right
		// child — both are Lemma 2.3 pointer checks, which strengthen the
		// printed (¬SupLast(n) ∨ parent_ta(n)=parent_e(n)) test to the
		// one-step skeleton.
		if par != -1 && t.Op[s.ENode[par]] == parsetree.OpCat &&
			s.Lch[par] == i && s.Rch[par] != -1 &&
			t.IsAncestor(t.PSupLast[node], t.LChild[s.ENode[par]]) {
			if f := s.First[s.Rch[par]]; f != parsetree.Null &&
				t.IsAncestor(t.PSupFirst[f], t.RChild[s.ENode[par]]) {
				if !y.add(f) {
					s.reportYOverflow(y, f)
					return
				}
			}
		}
		// Line 7: Next(n,a) = {p ∈ Y | n not an ancestor of p}.
		var next [2]parsetree.NodeID
		cnt := 0
		for k := 0; k < y.n; k++ {
			if !t.IsAncestor(node, y.v[k]) {
				if cnt < 2 {
					next[cnt] = y.v[k]
				}
				cnt++
			}
		}
		if cnt > 1 {
			s.NonDet = &Violation{Rule: "P2", Q1: next[0], Q2: next[1]}
			return
		}
		if cnt == 1 {
			s.Next[i] = next[0]
		}
		// Lines 8-9: a loop node feeds its own FirstPos downwards.
		isLoop := t.Op[node] == parsetree.OpStar ||
			(opt.NumericLoops && t.Op[node] == parsetree.OpIter && t.Max[node] >= 2)
		if isLoop {
			if f := s.First[i]; f != parsetree.Null {
				if !y.add(f) {
					s.reportYOverflow(y, f)
					return
				}
			}
		}
		// Lines 12-17: recurse.
		if c := s.Lch[i]; c != -1 {
			stack = append(stack, item{c, y})
		}
		if c := s.Rch[i]; c != -1 {
			stack = append(stack, item{c, y})
		}
	}
}

func (s *Skeletons) reportYOverflow(y ySet, extra parsetree.NodeID) {
	// add() only fails with two distinct members already present; either
	// pair (and the rejected extra) witnesses |Y| > 2.
	_ = extra
	s.NonDet = &Violation{Rule: "Y-overflow", Q1: y.v[0], Q2: y.v[1]}
}

// ySet is the bounded candidate set Y of Algorithm 1: at most two distinct
// positions (|Y| > 2 already implies nondeterminism).
type ySet struct {
	v [2]parsetree.NodeID
	n int
}

// add inserts p, reporting false when a third distinct element appears.
func (y *ySet) add(p parsetree.NodeID) bool {
	for k := 0; k < y.n; k++ {
		if y.v[k] == p {
			return true
		}
	}
	if y.n == 2 {
		return false
	}
	y.v[y.n] = p
	y.n++
	return true
}

// SymRange returns the skeleton index range of symbol a.
func (s *Skeletons) SymRange(a ast.Symbol) (lo, hi int32) {
	return s.Start[a], s.Start[a+1]
}
