// Package rmq provides range-minimum-query structures over int32 slices:
// a Sparse table (O(n log n) preprocessing, O(1) query) and the
// Bender–Farach-Colton ±1 structure (O(n) preprocessing, O(1) query) for
// sequences whose adjacent elements differ by exactly one — the Euler-tour
// depth sequences used for lowest-common-ancestor queries (paper reference
// [1]; used by Theorem 2.4 and Lemma 3.1).
package rmq

import "math/bits"

// Sparse is a standard sparse-table RMQ. It reports the index of the
// minimum over a half-open range; ties break toward the leftmost index.
type Sparse struct {
	data []int32
	// table[k] holds, for each i, the index of the minimum of
	// data[i : i+2^k].
	table [][]int32
}

// NewSparse builds a sparse table over data. The slice is retained, not
// copied; callers must not mutate it afterwards.
func NewSparse(data []int32) *Sparse {
	n := len(data)
	s := &Sparse{data: data}
	if n == 0 {
		return s
	}
	levels := bits.Len(uint(n))
	s.table = make([][]int32, levels)
	row := make([]int32, n)
	for i := range row {
		row[i] = int32(i)
	}
	s.table[0] = row
	for k := 1; k < levels; k++ {
		width := 1 << k
		prev := s.table[k-1]
		cur := make([]int32, n-width+1)
		half := width / 2
		for i := range cur {
			a, b := prev[i], prev[i+half]
			if data[b] < data[a] {
				a = b
			}
			cur[i] = a
		}
		s.table[k] = cur
	}
	return s
}

// MinIndex returns the index of the minimum of data[i:j]. It panics if the
// range is empty or out of bounds.
func (s *Sparse) MinIndex(i, j int) int {
	if i < 0 || j > len(s.data) || i >= j {
		panic("rmq: empty or out-of-range query")
	}
	k := bits.Len(uint(j-i)) - 1
	a := s.table[k][i]
	b := s.table[k][j-(1<<k)]
	if s.data[b] < s.data[a] {
		a = b
	}
	if b < a && s.data[b] == s.data[a] {
		a = b
	}
	return int(a)
}

// PM1 answers range-minimum queries over a ±1 sequence in O(1) after O(n)
// preprocessing, via the classical block decomposition: the sequence is cut
// into blocks of length ~log(n)/2; in-block queries use tables shared by
// all blocks with the same ±1 shape, and cross-block queries use a sparse
// table over the block minima.
type PM1 struct {
	data   []int32
	block  int      // block length
	shape  []int32  // normalized shape id per block
	starts []int32  // block start offsets (redundant, = i*block, kept for clarity)
	mins   *Sparse  // sparse table over per-block minima
	minIdx []int32  // index (absolute) of each block's minimum
	inner  [][]int8 // inner[shape][l*block+r] = offset of min of positions [l,r] within block
}

// NewPM1 builds the ±1 RMQ structure. Adjacent elements of data must differ
// by exactly 1 (this is asserted); the slice is retained.
func NewPM1(data []int32) *PM1 {
	n := len(data)
	p := &PM1{data: data}
	if n == 0 {
		return p
	}
	for i := 1; i < n; i++ {
		d := data[i] - data[i-1]
		if d != 1 && d != -1 {
			panic("rmq: NewPM1 requires a ±1 sequence")
		}
	}
	b := bits.Len(uint(n)) / 2
	if b < 1 {
		b = 1
	}
	p.block = b
	numBlocks := (n + b - 1) / b
	blockMins := make([]int32, numBlocks)
	p.minIdx = make([]int32, numBlocks)
	p.shape = make([]int32, numBlocks)
	shapes := 1 << (b - 1)
	p.inner = make([][]int8, shapes)
	for bi := 0; bi < numBlocks; bi++ {
		lo := bi * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		// Shape: bit k set iff data[lo+k+1] > data[lo+k]. Short final
		// blocks are padded with ascending steps, which never win a
		// minimum against real elements of the padded suffix queries
		// because queries are clamped to the real range.
		shape := int32(0)
		for k := 0; k+1 < hi-lo; k++ {
			if data[lo+k+1] > data[lo+k] {
				shape |= 1 << k
			}
		}
		p.shape[bi] = shape
		if p.inner[shape] == nil {
			p.inner[shape] = buildInner(shape, b)
		}
		// Block minimum via the inner table on the real extent.
		off := p.inner[shape][0*b+(hi-lo-1)]
		idx := lo + int(off)
		p.minIdx[bi] = int32(idx)
		blockMins[bi] = data[idx]
	}
	p.mins = NewSparse(blockMins)
	return p
}

// buildInner precomputes, for a block shape, the offset of the minimum for
// every in-block subrange [l, r], using prefix sums of the ±1 steps.
func buildInner(shape int32, b int) []int8 {
	tbl := make([]int8, b*b)
	vals := make([]int32, b)
	for k := 1; k < b; k++ {
		if shape&(1<<(k-1)) != 0 {
			vals[k] = vals[k-1] + 1
		} else {
			vals[k] = vals[k-1] - 1
		}
	}
	for l := 0; l < b; l++ {
		best := l
		for r := l; r < b; r++ {
			if vals[r] < vals[best] {
				best = r
			}
			tbl[l*b+r] = int8(best)
		}
	}
	return tbl
}

// MinIndex returns the index of the minimum of data[i:j] (leftmost on
// ties). It panics if the range is empty or out of bounds.
func (p *PM1) MinIndex(i, j int) int {
	if i < 0 || j > len(p.data) || i >= j {
		panic("rmq: empty or out-of-range query")
	}
	j-- // work on the closed range [i, j]
	b := p.block
	bi, bj := i/b, j/b
	if bi == bj {
		off := p.inner[p.shape[bi]][(i-bi*b)*b+(j-bi*b)]
		return bi*b + int(off)
	}
	// Prefix of bi, suffix of bj, and whole blocks in between.
	offL := p.inner[p.shape[bi]][(i-bi*b)*b+(b-1)]
	lastL := bi*b + b - 1
	if lastL > len(p.data)-1 {
		// Cannot happen: bi < bj implies block bi is complete.
		lastL = len(p.data) - 1
	}
	best := bi*b + int(offL)
	offR := p.inner[p.shape[bj]][0*b+(j-bj*b)]
	cand := bj*b + int(offR)
	if p.data[cand] < p.data[best] {
		best = cand
	}
	if bj-bi > 1 {
		mid := int(p.minIdx[p.mins.MinIndex(bi+1, bj)])
		if p.data[mid] < p.data[best] {
			best = mid
		}
	}
	return best
}
