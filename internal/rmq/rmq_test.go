package rmq

import (
	"math/rand"
	"testing"
)

func naiveMin(data []int32, i, j int) int {
	best := i
	for k := i + 1; k < j; k++ {
		if data[k] < data[best] {
			best = k
		}
	}
	return best
}

func TestSparseAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.Intn(20))
		}
		s := NewSparse(data)
		for q := 0; q < 200; q++ {
			i := r.Intn(n)
			j := i + 1 + r.Intn(n-i)
			got := s.MinIndex(i, j)
			want := naiveMin(data, i, j)
			if data[got] != data[want] || got < i || got >= j {
				t.Fatalf("Sparse.MinIndex(%d,%d) = %d (val %d), want val %d",
					i, j, got, data[got], data[want])
			}
		}
	}
}

func randPM1(r *rand.Rand, n int) []int32 {
	data := make([]int32, n)
	data[0] = int32(r.Intn(5))
	for i := 1; i < n; i++ {
		if r.Intn(2) == 0 {
			data[i] = data[i-1] + 1
		} else {
			data[i] = data[i-1] - 1
		}
	}
	return data
}

func TestPM1AgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		n := 1 + r.Intn(300)
		data := randPM1(r, n)
		p := NewPM1(data)
		for q := 0; q < 300; q++ {
			i := r.Intn(n)
			j := i + 1 + r.Intn(n-i)
			got := p.MinIndex(i, j)
			want := naiveMin(data, i, j)
			if got < i || got >= j || data[got] != data[want] {
				t.Fatalf("n=%d PM1.MinIndex(%d,%d) = %d (val %d), want val %d",
					n, i, j, got, data[got], data[want])
			}
		}
	}
}

func TestPM1Exhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(40)
		data := randPM1(r, n)
		p := NewPM1(data)
		for i := 0; i < n; i++ {
			for j := i + 1; j <= n; j++ {
				got := p.MinIndex(i, j)
				want := naiveMin(data, i, j)
				if got < i || got >= j || data[got] != data[want] {
					t.Fatalf("n=%d MinIndex(%d,%d) = %d, want val %d", n, i, j, got, data[want])
				}
			}
		}
	}
}

func TestPM1RejectsNonUnitSteps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPM1 accepted a non-±1 sequence")
		}
	}()
	NewPM1([]int32{0, 2, 1})
}

func TestEmptyAndSingle(t *testing.T) {
	NewSparse(nil) // must not panic
	NewPM1(nil)
	s := NewSparse([]int32{7})
	if s.MinIndex(0, 1) != 0 {
		t.Fatal("singleton sparse query")
	}
	p := NewPM1([]int32{7})
	if p.MinIndex(0, 1) != 0 {
		t.Fatal("singleton pm1 query")
	}
}

func TestQueryPanicsOnBadRange(t *testing.T) {
	s := NewSparse([]int32{1, 2, 3})
	for _, rng := range [][2]int{{1, 1}, {-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() { recover() }()
			s.MinIndex(rng[0], rng[1])
			t.Fatalf("Sparse.MinIndex(%d,%d) did not panic", rng[0], rng[1])
		}()
	}
}
