// Package glushkov implements the classical position-automaton baseline the
// paper improves upon: First/Last/Follow sets computed by the syntax-
// directed merging construction, the Glushkov automaton [12, 2], and the
// Brüggemann-Klein determinism test [8] ("e is deterministic iff its
// Glushkov automaton is deterministic"), which runs in O(σ|e|) for
// deterministic inputs and exhibits the quadratic behaviour discussed in §1
// on expressions such as E = (a1 + … + am)*.
//
// The package doubles as the test oracle for the linear-time algorithms:
// NFA simulation provides ground-truth membership, and the subset-
// construction DFA provides language equivalence on small alphabets.
package glushkov

import (
	"dregex/internal/ast"
	"dregex/internal/parsetree"
)

// Automaton is the Glushkov (position) automaton of a compiled tree.
// States are position nodes of (#e′)$: the phantom # is the start state and
// an input is accepted iff the phantom $ is reached, which encodes the
// usual "Last + nullability" acceptance through rule (R1).
type Automaton struct {
	T *parsetree.Tree
	// Trans[p] maps a symbol to the follow positions of p with that
	// label, keyed per position node id. Inner nodes have nil maps.
	Trans []map[ast.Symbol][]parsetree.NodeID
	// Size is the total number of transitions.
	Size int
}

// Build constructs the automaton in time proportional to its size
// (worst case Θ(|e|²); Θ(σ|e|) for deterministic expressions).
func Build(t *parsetree.Tree) *Automaton {
	first, last := FirstLast(t)
	a := &Automaton{T: t, Trans: make([]map[ast.Symbol][]parsetree.NodeID, t.N())}
	add := func(p, q parsetree.NodeID) {
		m := a.Trans[p]
		if m == nil {
			m = map[ast.Symbol][]parsetree.NodeID{}
			a.Trans[p] = m
		}
		s := t.Sym[q]
		for _, old := range m[s] {
			if old == q {
				return
			}
		}
		m[s] = append(m[s], q)
		a.Size++
	}
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		switch t.Op[n] {
		case parsetree.OpCat:
			l, r := t.LChild[n], t.RChild[n]
			for _, p := range last[l] {
				for _, q := range first[r] {
					add(p, q)
				}
			}
		case parsetree.OpStar:
			c := t.LChild[n]
			for _, p := range last[c] {
				for _, q := range first[c] {
					add(p, q)
				}
			}
		case parsetree.OpIter:
			if t.Max[n] >= 2 {
				c := t.LChild[n]
				for _, p := range last[c] {
					for _, q := range first[c] {
						add(p, q)
					}
				}
			}
		}
	}
	return a
}

// FirstLast computes the First and Last position sets of every node by the
// classical merging construction. Slices are freshly allocated per node.
func FirstLast(t *parsetree.Tree) (first, last [][]parsetree.NodeID) {
	n := t.N()
	first = make([][]parsetree.NodeID, n)
	last = make([][]parsetree.NodeID, n)
	// Children have larger ids (preorder), so a reverse scan is a valid
	// bottom-up order.
	for id := parsetree.NodeID(n - 1); id >= 0; id-- {
		l, r := t.LChild[id], t.RChild[id]
		switch t.Op[id] {
		case parsetree.OpSym:
			first[id] = []parsetree.NodeID{id}
			last[id] = []parsetree.NodeID{id}
		case parsetree.OpCat:
			if t.Nullable[l] {
				first[id] = concat(first[l], first[r])
			} else {
				first[id] = first[l]
			}
			if t.Nullable[r] {
				last[id] = concat(last[r], last[l])
			} else {
				last[id] = last[r]
			}
		case parsetree.OpUnion:
			first[id] = concat(first[l], first[r])
			last[id] = concat(last[l], last[r])
		default: // Opt, Star, Iter
			first[id] = first[l]
			last[id] = last[l]
		}
	}
	return first, last
}

func concat(a, b []parsetree.NodeID) []parsetree.NodeID {
	out := make([]parsetree.NodeID, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Match simulates the automaton on a word of interned symbols (without the
// phantom markers) by position-set simulation: O(|e|·|w|) worst case.
func (a *Automaton) Match(word []ast.Symbol) bool {
	t := a.T
	cur := []parsetree.NodeID{t.BeginPos()}
	seen := make([]int32, t.N())
	for i := range seen {
		seen[i] = -1
	}
	for step, s := range word {
		var next []parsetree.NodeID
		for _, p := range cur {
			for _, q := range a.Trans[p][s] {
				if seen[q] != int32(step) {
					seen[q] = int32(step)
					next = append(next, q)
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	end := t.Sym[t.EndPos()]
	for _, p := range cur {
		for _, q := range a.Trans[p][end] {
			if q == t.EndPos() {
				return true
			}
		}
	}
	return false
}

// MatchNames interns the given symbol names against the tree's alphabet and
// matches; names absent from the alphabet (and the reserved markers # and
// $) reject immediately.
func (a *Automaton) MatchNames(names []string) bool {
	word := make([]ast.Symbol, len(names))
	for i, n := range names {
		s, ok := a.T.Alpha.Lookup(n)
		if !ok || s == ast.Begin || s == ast.End {
			return false
		}
		word[i] = s
	}
	return a.Match(word)
}
