package glushkov

import (
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
)

// Conflict is a witness of nondeterminism: two distinct equally-labeled
// positions Q1 and Q2 that both follow position P.
type Conflict struct {
	P, Q1, Q2 parsetree.NodeID
}

// Describe renders the conflict using position indices and labels.
func (c *Conflict) Describe(t *parsetree.Tree) string {
	return fmt.Sprintf("positions %s_%d and %s_%d both follow %s_%d",
		t.Label(c.Q1), t.PosIndex[c.Q1], t.Label(c.Q2), t.PosIndex[c.Q2],
		t.Label(c.P), t.PosIndex[c.P])
}

// CheckBK is the Brüggemann-Klein baseline determinism test: build the
// Glushkov transition relation and stop at the first position that gains
// two distinct successors with the same label. It returns nil iff the
// expression is deterministic. For deterministic inputs every position ends
// with at most σ successors, so the test runs in O(σ|e|) time and space —
// the bound the paper's Theorem 3.5 improves to O(|e|).
func CheckBK(t *parsetree.Tree) *Conflict {
	first, last := FirstLast(t)
	// succ[p] maps label → the unique successor seen so far.
	succ := make([]map[ast.Symbol]parsetree.NodeID, t.N())
	var conflict *Conflict
	add := func(p, q parsetree.NodeID) bool {
		m := succ[p]
		if m == nil {
			m = map[ast.Symbol]parsetree.NodeID{}
			succ[p] = m
		}
		s := t.Sym[q]
		if old, ok := m[s]; ok {
			if old != q {
				conflict = &Conflict{P: p, Q1: old, Q2: q}
				return false
			}
			return true
		}
		m[s] = q
		return true
	}
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		var l, r parsetree.NodeID
		switch t.Op[n] {
		case parsetree.OpCat:
			l, r = t.LChild[n], t.RChild[n]
		case parsetree.OpStar:
			l, r = t.LChild[n], t.LChild[n]
		case parsetree.OpIter:
			if t.Max[n] < 2 {
				continue
			}
			l, r = t.LChild[n], t.LChild[n]
		default:
			continue
		}
		for _, p := range last[l] {
			for _, q := range first[r] {
				if !add(p, q) {
					return conflict
				}
			}
		}
	}
	return nil
}

// IsDeterministic reports whether the compiled expression is deterministic
// per the Brüggemann-Klein criterion.
func IsDeterministic(t *parsetree.Tree) bool { return CheckBK(t) == nil }
