package glushkov

import (
	"sort"
	"strconv"
	"strings"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
)

// DFA is the subset-construction determinization of a Glushkov automaton.
// It exists as a matching baseline and as the language-equivalence oracle
// for tests; state count can be exponential, so callers cap construction
// via maxStates.
type DFA struct {
	// Trans[state][symbol] = next state, or -1.
	Trans  []map[ast.Symbol]int
	Accept []bool
	// Symbols is the set of symbols with outgoing edges anywhere.
	Symbols []ast.Symbol
}

// ErrTooManyStates reports that determinization exceeded the state budget.
type ErrTooManyStates struct{ Limit int }

func (e ErrTooManyStates) Error() string {
	return "glushkov: subset construction exceeded " + strconv.Itoa(e.Limit) + " states"
}

// Determinize runs the subset construction. maxStates bounds the number of
// DFA states (0 means 1<<16).
func (a *Automaton) Determinize(maxStates int) (*DFA, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	t := a.T
	end := t.EndPos()
	symSet := map[ast.Symbol]bool{}
	for _, m := range a.Trans {
		for s := range m {
			if s != ast.End {
				symSet[s] = true
			}
		}
	}
	syms := make([]ast.Symbol, 0, len(symSet))
	for s := range symSet {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	d := &DFA{Symbols: syms}
	key := func(set []parsetree.NodeID) string {
		var b strings.Builder
		for _, p := range set {
			b.WriteString(strconv.Itoa(int(p)))
			b.WriteByte(',')
		}
		return b.String()
	}
	index := map[string]int{}
	var sets [][]parsetree.NodeID
	intern := func(set []parsetree.NodeID) int {
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.Trans = append(d.Trans, map[ast.Symbol]int{})
		acc := false
		for _, p := range set {
			for _, q := range a.Trans[p][ast.End] {
				if q == end {
					acc = true
				}
			}
		}
		d.Accept = append(d.Accept, acc)
		return id
	}
	start := intern([]parsetree.NodeID{t.BeginPos()})
	if start != 0 {
		panic("glushkov: start state must be 0")
	}
	for work := 0; work < len(sets); work++ {
		if len(sets) > maxStates {
			return nil, ErrTooManyStates{maxStates}
		}
		set := sets[work]
		for _, s := range syms {
			var next []parsetree.NodeID
			seen := map[parsetree.NodeID]bool{}
			for _, p := range set {
				for _, q := range a.Trans[p][s] {
					if !seen[q] {
						seen[q] = true
						next = append(next, q)
					}
				}
			}
			if len(next) == 0 {
				continue
			}
			d.Trans[work][s] = intern(next)
		}
	}
	return d, nil
}

// Match runs the DFA on a word; out-of-alphabet symbols reject.
func (d *DFA) Match(word []ast.Symbol) bool {
	state := 0
	for _, s := range word {
		next, ok := d.Trans[state][s]
		if !ok {
			return false
		}
		state = next
	}
	return d.Accept[state]
}

// Equivalent reports whether two DFAs accept the same language, by BFS over
// the product automaton (with an implicit dead state for missing edges).
func Equivalent(a, b *DFA) bool {
	symSet := map[ast.Symbol]bool{}
	for _, s := range a.Symbols {
		symSet[s] = true
	}
	for _, s := range b.Symbols {
		symSet[s] = true
	}
	type pair struct{ x, y int } // -1 encodes the dead state
	seen := map[pair]bool{}
	queue := []pair{{0, 0}}
	seen[queue[0]] = true
	acc := func(d *DFA, s int) bool { return s >= 0 && d.Accept[s] }
	step := func(d *DFA, s int, sym ast.Symbol) int {
		if s < 0 {
			return -1
		}
		if n, ok := d.Trans[s][sym]; ok {
			return n
		}
		return -1
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if acc(a, p.x) != acc(b, p.y) {
			return false
		}
		if p.x < 0 && p.y < 0 {
			continue
		}
		for sym := range symSet {
			np := pair{step(a, p.x, sym), step(b, p.y, sym)}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}
