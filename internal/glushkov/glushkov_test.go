package glushkov

import (
	"math/rand"
	"strings"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func compile(t *testing.T, expr string) *parsetree.Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr
}

// matchChars matches a word of single-character symbols.
func matchChars(a *Automaton, w string) bool {
	names := make([]string, 0, len(w))
	for _, r := range w {
		names = append(names, string(r))
	}
	return a.MatchNames(names)
}

func TestDeterminismExamplesFromPaper(t *testing.T) {
	cases := []struct {
		expr string
		det  bool
	}{
		{"(ab+b(b?)a)*", true},          // e1, Example 2.1
		{"(a*ba+bb)*", false},           // e2, Example 2.1
		{"ab*b", false},                 // §1: "the expression ab∗b is ambiguous"
		{"(a+b)*", true},                // mixed content, distinct symbols
		{"(a+a)*", false},               // mixed content, duplicate
		{"(c(b?a?))a", false},           // §3.2 discussion
		{"(c(a?b?))a", false},           // §3.2: e′
		{"(c(b?a)*)a", false},           // §3.2: e″
		{"(c(b?a))a", true},             // §3.2: e‴ is deterministic
		{"(a(b?a))*", true},             // §3.2 combination (2) discussion
		{"(a(b?a?))*", false},           // §3.2: nondeterministic variant
		{"(c?((ab*)(a?c)))*(ba)", true}, // Figure 1
		{"a?b?c?", true},
		{"(a+b)(a+c)", true},
		{"a*a", false},
		{"(ab)*a(b+d)", false}, // counter example base: (ab)*a is ambiguous
	}
	for _, c := range cases {
		tr := compile(t, c.expr)
		conflict := CheckBK(tr)
		if got := conflict == nil; got != c.det {
			t.Errorf("CheckBK(%s): deterministic = %v, want %v (conflict %+v)",
				c.expr, got, c.det, conflict)
		}
		if conflict != nil {
			validateConflict(t, tr, conflict, c.expr)
		}
	}
}

// validateConflict checks the conflict witness against the brute-force
// follow relation.
func validateConflict(t *testing.T, tr *parsetree.Tree, c *Conflict, expr string) {
	t.Helper()
	if c.Q1 == c.Q2 {
		t.Errorf("%s: conflict with identical positions", expr)
	}
	if tr.Sym[c.Q1] != tr.Sym[c.Q2] {
		t.Errorf("%s: conflict positions carry different labels", expr)
	}
	b := follow.Brute(tr)
	if !b.Follow[c.P][c.Q1] || !b.Follow[c.P][c.Q2] {
		t.Errorf("%s: conflict positions do not both follow P: %s", expr, c.Describe(tr))
	}
}

func TestMatchHandPicked(t *testing.T) {
	a := Build(compile(t, "(ab+b(b?)a)*"))
	accept := []string{"", "ab", "ba", "bba", "abbaab", "bbaab", "abab"}
	reject := []string{"a", "b", "bb", "aba", "abb", "baa", "c"}
	for _, w := range accept {
		if !matchChars(a, w) {
			t.Errorf("(ab+b(b?)a)* must accept %q", w)
		}
	}
	for _, w := range reject {
		if matchChars(a, w) {
			t.Errorf("(ab+b(b?)a)* must reject %q", w)
		}
	}
	// Paper §3.3 example language fragment: (ab){2}a(b+d) — via unrolling.
	alpha := ast.NewAlphabet()
	e := ast.MustParseMath("(ab){2}a(b+d)", alpha)
	u, err := ast.Unroll(e, 100)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := parsetree.Build(ast.Normalize(u), alpha)
	if err != nil {
		t.Fatal(err)
	}
	a2 := Build(tr)
	if !matchChars(a2, "ababab") || !matchChars(a2, "abab"+"ad") {
		t.Error("(ab){2}a(b+d): abab·a(b|d) must be accepted")
	}
	if matchChars(a2, "aba") || matchChars(a2, "ababab"+"x") {
		t.Error("(ab){2}a(b+d): bad words accepted")
	}
}

// enumWords yields all words over syms up to length maxLen.
func enumWords(syms []string, maxLen int, f func([]string)) {
	var rec func(cur []string)
	rec = func(cur []string) {
		f(cur)
		if len(cur) == maxLen {
			return
		}
		for _, s := range syms {
			rec(append(cur, s))
		}
	}
	rec(nil)
}

func TestNFAvsDFAEnumerated(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	syms := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 25}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		a := Build(tr)
		d, err := a.Determinize(1 << 12)
		if err != nil {
			continue // oversized; skip this sample
		}
		enumWords(syms, 5, func(w []string) {
			nfa := a.MatchNames(w)
			word := make([]ast.Symbol, len(w))
			ok := true
			for i, n := range w {
				s, found := alpha.Lookup(n)
				if !found {
					ok = false
					break
				}
				word[i] = s
			}
			dfa := ok && d.Match(word)
			if nfa != dfa {
				t.Fatalf("expr %s word %s: NFA=%v DFA=%v",
					ast.StringMath(e, alpha), strings.Join(w, ""), nfa, dfa)
			}
		})
	}
}

func TestNormalizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{Symbols: 3, MaxNodes: 20})
		ne := ast.Normalize(e)
		tr1, err := parsetree.Build(ast.Normalize(e), alpha) // normalize twice: idempotent input
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := parsetree.Build(ne, alpha)
		if err != nil {
			t.Fatal(err)
		}
		d1, err1 := Build(tr1).Determinize(1 << 12)
		d2, err2 := Build(tr2).Determinize(1 << 12)
		if err1 != nil || err2 != nil {
			continue
		}
		if !Equivalent(d1, d2) {
			t.Fatalf("normalization changed language of %s", ast.StringMath(e, alpha))
		}
	}
}

func TestUnrollPreservesLanguage(t *testing.T) {
	exprs := []string{"a{2,4}", "(ab){1,3}", "(a+b){2}", "a{3,}", "(a{2})*", "(a?){1,2}b"}
	for _, expr := range exprs {
		alpha := ast.NewAlphabet()
		e := ast.MustParseMath(expr, alpha)
		u1, err := ast.Unroll(e, 1000)
		if err != nil {
			t.Fatal(err)
		}
		u2, err := ast.Unroll(ast.Normalize(e), 1000)
		if err != nil {
			t.Fatal(err)
		}
		tr1, err := parsetree.Build(ast.Normalize(u1), alpha)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := parsetree.Build(ast.Normalize(u2), alpha)
		if err != nil {
			t.Fatal(err)
		}
		d1, err1 := Build(tr1).Determinize(0)
		d2, err2 := Build(tr2).Determinize(0)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: determinize failed: %v %v", expr, err1, err2)
		}
		if !Equivalent(d1, d2) {
			t.Fatalf("%s: normalization+unroll changed the language", expr)
		}
	}
}

func TestDesugarPlusPreservesDeterminismAndLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.CHARE(r, alpha, 1+r.Intn(4), 3)
		plain := ast.Normalize(ast.DesugarPlus(e))
		tr, err := parsetree.Build(plain, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if CheckBK(tr) != nil {
			t.Fatalf("CHARE instance became nondeterministic after DesugarPlus: %s",
				ast.StringDTD(e, alpha))
		}
	}
}

func TestMixedContentFamily(t *testing.T) {
	alpha := ast.NewAlphabet()
	e := wordgen.MixedContent(alpha, 50)
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		t.Fatal(err)
	}
	if CheckBK(tr) != nil {
		t.Fatal("(a1+…+a50)* must be deterministic")
	}
	a := Build(tr)
	// Quadratic size: m² loop transitions plus the initial/star structure.
	if a.Size < 50*50 {
		t.Errorf("Glushkov size = %d, expected ≥ 2500 (the quadratic blowup of §1)", a.Size)
	}
	if !a.MatchNames([]string{"a", "z", "a", "b"}) {
		t.Error("mixed content word rejected")
	}
	if a.MatchNames([]string{"a", "nope"}) {
		t.Error("unknown symbol accepted")
	}
}

func TestDeterministicGeneratorsAreDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 80; trial++ {
		alpha := ast.NewAlphabet()
		e := wordgen.RandomDeterministicExpr(r, alpha, 8, 40, trial%2 == 0)
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if c := CheckBK(tr); c != nil {
			t.Fatalf("RandomDeterministicExpr produced nondeterministic %s: %s",
				ast.StringMath(e, alpha), c.Describe(tr))
		}
	}
	for _, gen := range []func() (*ast.Alphabet, *ast.Node){
		func() (*ast.Alphabet, *ast.Node) {
			a := ast.NewAlphabet()
			return a, wordgen.KOccurrence(a, 5, 3)
		},
		func() (*ast.Alphabet, *ast.Node) {
			a := ast.NewAlphabet()
			return a, wordgen.DeepAlternation(a, 3, 3)
		},
		func() (*ast.Alphabet, *ast.Node) {
			a := ast.NewAlphabet()
			return a, wordgen.StarFree(rand.New(rand.NewSource(31)), a, 10, 40)
		},
	} {
		alpha, e := gen()
		tr, err := parsetree.Build(ast.Normalize(e), alpha)
		if err != nil {
			t.Fatal(err)
		}
		if c := CheckBK(tr); c != nil {
			t.Fatalf("workload generator produced nondeterministic expression: %s", c.Describe(tr))
		}
	}
}
