package pool

import (
	"sync"
	"testing"
)

type scratch struct {
	buf []byte
}

func TestStatePoolReuse(t *testing.T) {
	var sp StatePool[scratch]
	s := sp.Get()
	if s == nil {
		t.Fatal("Get returned nil")
	}
	s.buf = make([]byte, 4096)
	sp.Put(s)
	//dregex:ok poolpair identity probe only; the test ends here, nothing validates on got
	if got := sp.Get(); got != s {
		t.Error("pooled state not reused")
	}
}

func TestStatePoolCapBoundsRetention(t *testing.T) {
	var sp StatePool[scratch]
	sp.SetCap(2)

	// A burst of 10 in-flight states drains back into the pool: only the
	// cap's worth stick, the rest are released to the collector.
	states := make([]*scratch, 10)
	for i := range states {
		//dregex:ok poolpair the burst is held in a slice on purpose and Put back below
		states[i] = sp.Get()
		states[i].buf = make([]byte, 1<<16) // grown, i.e. worth bounding
	}
	for _, s := range states {
		sp.Put(s)
	}
	if idle := sp.Idle(); idle != 2 {
		t.Fatalf("Idle() = %d after burst release, want cap 2", idle)
	}

	// The two retained states serve the next requests; beyond them Get
	// allocates fresh rather than blocking.
	a, b, c := sp.Get(), sp.Get(), sp.Get()
	if a == nil || b == nil || c == nil {
		t.Fatal("Get blocked or returned nil past the free list")
	}
	if len(a.buf) == 0 || len(b.buf) == 0 {
		t.Error("retained states lost their grown buffers")
	}
	if len(c.buf) != 0 {
		t.Error("third Get should be a fresh zero value")
	}
}

func TestStatePoolSetCapAfterUseIgnored(t *testing.T) {
	var sp StatePool[scratch]
	sp.Put(sp.Get()) // first use pins DefaultStateCap
	sp.SetCap(1)
	for i := 0; i < DefaultStateCap+5; i++ {
		sp.Put(new(scratch))
	}
	if idle := sp.Idle(); idle != DefaultStateCap {
		t.Fatalf("Idle() = %d, want DefaultStateCap %d (late SetCap must not rebuild)", idle, DefaultStateCap)
	}
}

func TestStatePoolConcurrent(t *testing.T) {
	var sp StatePool[scratch]
	sp.SetCap(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s := sp.Get()
				s.buf = append(s.buf[:0], byte(i))
				sp.Put(s)
			}
		}()
	}
	wg.Wait()
	if idle := sp.Idle(); idle > 4 {
		t.Fatalf("Idle() = %d, exceeds cap 4", idle)
	}
}
