// Package pool provides the tiny fixed-size worker pool shared by the
// corpus validator and the CLI tools.
package pool

import "sync"

// Run distributes jobs 0..n-1 over a pool of workers. job receives the
// worker's index (0..workers-1) alongside the job index, so callers can
// maintain per-worker reusable state (e.g. one scratch buffer per worker)
// without synchronization. With one worker (or one job) everything runs
// inline on the calling goroutine.
// RunWithStates is Run where each worker owns one reusable state value
// (scratch buffers, stream stacks, …), allocated here and handed to every
// job the worker executes. It is the corpus-validator work loop shared by
// the DTD and XSD front ends.
func RunWithStates[S any](n, workers int, job func(st *S, i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	Run(n, workers, func(w, i int) {
		job(&states[w], i)
	})
}

func Run(n, workers int, job func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				job(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
