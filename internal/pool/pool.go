// Package pool provides the tiny fixed-size worker pool shared by the
// corpus validators and the CLI tools, and the free-list of reusable
// per-request states the dregexd server rides.
package pool

import "sync"

// StatePool is a typed sync.Pool of reusable scratch states (validator
// DocStates, buffers). Where RunWithStates hands each worker of a
// fixed-size pool one state, StatePool serves open-ended request traffic:
// a handler Gets a state, validates with it, and Puts it back, so
// steady-state request handling reuses grown stacks and stream buffers
// instead of reallocating them. The zero value is ready; S must be usable
// as new(S).
type StatePool[S any] struct {
	p sync.Pool
}

// Get returns a pooled state, or a fresh zero value when the pool is empty.
func (sp *StatePool[S]) Get() *S {
	if v := sp.p.Get(); v != nil {
		return v.(*S)
	}
	return new(S)
}

// Put returns a state to the pool for reuse.
func (sp *StatePool[S]) Put(s *S) {
	sp.p.Put(s)
}

// Run distributes jobs 0..n-1 over a pool of workers. job receives the
// worker's index (0..workers-1) alongside the job index, so callers can
// maintain per-worker reusable state (e.g. one scratch buffer per worker)
// without synchronization. With one worker (or one job) everything runs
// inline on the calling goroutine.
// RunWithStates is Run where each worker owns one reusable state value
// (scratch buffers, stream stacks, …), allocated here and handed to every
// job the worker executes. It is the corpus-validator work loop shared by
// the DTD and XSD front ends.
func RunWithStates[S any](n, workers int, job func(st *S, i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	Run(n, workers, func(w, i int) {
		job(&states[w], i)
	})
}

func Run(n, workers int, job func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				job(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
