// Package pool provides the tiny fixed-size worker pool shared by the
// corpus validators and the CLI tools, and the free-list of reusable
// per-request states the dregexd server rides.
package pool

import (
	"sync"

	"dregex/internal/fault"
)

// DefaultStateCap is the free-list bound a zero-value StatePool adopts on
// first use. States are the largest per-request scratch objects the server
// holds (grown element stacks, stream buffers), so the bound is what keeps
// a burst of concurrent requests from turning into permanently retained
// memory: up to DefaultStateCap idle states are kept warm, the rest are
// dropped for the collector the moment the burst passes.
const DefaultStateCap = 32

// StatePool is a bounded free list of reusable scratch states (validator
// DocStates, buffers). Where RunWithStates hands each worker of a
// fixed-size pool one state, StatePool serves open-ended request traffic:
// a handler Gets a state, validates with it, and Puts it back, so
// steady-state request handling reuses grown stacks and stream buffers
// instead of reallocating them.
//
// Unlike sync.Pool, the free list has a hard cap (SetCap, default
// DefaultStateCap): Put beyond the cap drops the state rather than
// retaining it, so burst-sized populations of grown states cannot outlive
// the burst. Get never blocks — an empty list means a fresh allocation,
// never queueing.
//
// The zero value is ready; S must be usable as new(S).
type StatePool[S any] struct {
	once sync.Once
	capn int
	free chan *S
}

// SetCap bounds the free list at n idle states (n <= 0 selects
// DefaultStateCap). It must be called before the pool's first Get or Put;
// later calls are ignored.
func (sp *StatePool[S]) SetCap(n int) {
	sp.once.Do(func() {
		if n <= 0 {
			n = DefaultStateCap
		}
		sp.free = make(chan *S, n)
	})
}

func (sp *StatePool[S]) init() {
	sp.once.Do(func() {
		sp.free = make(chan *S, DefaultStateCap)
	})
}

// Get returns a pooled state, or a fresh zero value when the list is
// empty. The fault point pool.exhaust (chaos builds only) forces the
// empty-list path, so overload tests exercise cold allocations on demand.
func (sp *StatePool[S]) Get() *S {
	sp.init()
	if fault.Enabled && fault.Hit("pool.exhaust") {
		return new(S)
	}
	select {
	case s := <-sp.free:
		return s
	default:
		return new(S)
	}
}

// Put offers a state back for reuse; states beyond the cap are dropped.
func (sp *StatePool[S]) Put(s *S) {
	sp.init()
	select {
	case sp.free <- s:
	default:
	}
}

// Idle reports how many states are currently parked on the free list —
// the number a release-under-pressure test watches to prove the cap held.
func (sp *StatePool[S]) Idle() int {
	sp.init()
	return len(sp.free)
}

// Run distributes jobs 0..n-1 over a pool of workers. job receives the
// worker's index (0..workers-1) alongside the job index, so callers can
// maintain per-worker reusable state (e.g. one scratch buffer per worker)
// without synchronization. With one worker (or one job) everything runs
// inline on the calling goroutine.
// RunWithStates is Run where each worker owns one reusable state value
// (scratch buffers, stream stacks, …), allocated here and handed to every
// job the worker executes. It is the corpus-validator work loop shared by
// the DTD and XSD front ends.
func RunWithStates[S any](n, workers int, job func(st *S, i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	Run(n, workers, func(w, i int) {
		job(&states[w], i)
	})
}

func Run(n, workers int, job func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				job(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
