package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc checks functions annotated //dregex:noalloc — the pinned 0-alloc
// hot paths — for allocation-introducing constructs the AllocsPerRun pins
// only catch after the fact:
//
//   - make, new, &T{…}, slice and map literals
//   - map writes (growth allocates)
//   - string([]byte) / []byte(string) / string(rune) conversions, except
//     the compiler-optimized forms m[string(b)] and string(b) == "…"
//   - non-constant string concatenation
//   - calls into fmt, log, and the errors constructors
//   - implicit interface boxing of non-pointer-shaped values (arguments,
//     assignments, returns)
//   - closures, method values, go statements
//
// append is allowed: the hot paths append into pooled, amortized buffers
// by design. Reviewed error-path allocations are waived either per line
// (//dregex:ok noalloc <reason>) or by marking the error-path helper
// //dregex:coldalloc, which waives its call sites (including argument
// boxing) inside noalloc functions — the call only happens on failure.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//dregex:noalloc functions must not contain allocating constructs",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) error {
	// Collect the package's coldalloc-marked functions first: calls to
	// them (from any file of the package) are exempt subtrees.
	cold := map[*types.Func]bool{}
	funcDeclsOf(pass, func(decl *ast.FuncDecl) {
		if hasDirective(decl.Doc, dirColdalloc) {
			if fn, ok := objOf(pass.TypesInfo, decl.Name).(*types.Func); ok {
				cold[fn] = true
			}
		}
	})
	funcDeclsOf(pass, func(decl *ast.FuncDecl) {
		if hasDirective(decl.Doc, dirNoalloc) {
			checkNoallocFunc(pass, decl, cold)
		}
	})
	return nil
}

func checkNoallocFunc(pass *Pass, decl *ast.FuncDecl, cold map[*types.Func]bool) {
	info := pass.TypesInfo
	var results *types.Tuple
	if sig, ok := info.TypeOf(decl.Name).(*types.Signature); ok {
		results = sig.Results()
	}

	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && cold[fn] {
				return false // reviewed error-path allocator: skip args too
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return false // terminal; boxing the argument is moot
			}
			checkNoallocCall(pass, n, stack)
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal allocates in a //dregex:noalloc function", typeKindName(pass.TypeOf(n)))
			}
			// Value struct/array literals stay on the stack unless boxed or
			// address-taken, which their own rules catch.
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&%s{…} escapes to the heap in a //dregex:noalloc function", typeKindName(pass.TypeOf(cl)))
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in a //dregex:noalloc function")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in a //dregex:noalloc function")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypeOf(n)) && !isConstExpr(info, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in a //dregex:noalloc function")
			}
		case *ast.AssignStmt:
			checkNoallocAssign(pass, n)
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if i < len(n.Names) {
					reportBoxing(pass, val, pass.TypeOf(n.Names[i]), "assignment")
				}
			}
		case *ast.ReturnStmt:
			if results != nil {
				checkNoallocReturn(pass, n, results)
			}
		case *ast.SelectorExpr:
			// A method value (x.M referenced, not called) allocates its
			// bound-method closure.
			if fn, ok := objOf(info, n.Sel).(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
				if tv, ok := info.Types[n.X]; ok && tv.IsType() {
					return true // method expression T.M: a plain func value, no closure
				}
				if !isCallee(n, stack) {
					pass.Reportf(n.Pos(), "method value %s allocates in a //dregex:noalloc function", n.Sel.Name)
				}
			}
		}
		return true
	})
}

// checkNoallocCall flags make/new, byte/string conversions, blacklisted
// packages, and interface boxing of arguments.
func checkNoallocCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkNoallocConversion(pass, call, stack)
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in a //dregex:noalloc function", id.Name)
			}
			return
		}
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			pass.Reportf(call.Pos(), "call to %s.%s allocates in a //dregex:noalloc function (mark the helper //dregex:coldalloc if it is a reviewed error path)", fn.Pkg().Name(), fn.Name())
			return
		case "errors":
			if fn.Name() == "New" {
				pass.Reportf(call.Pos(), "errors.New allocates in a //dregex:noalloc function")
				return
			}
		}
	}

	// Interface boxing of arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, arg, param, "argument")
	}
}

// checkNoallocConversion flags string<->[]byte and string(rune), except
// the compiler-optimized map-index and comparison forms.
func checkNoallocConversion(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	to := pass.TypeOf(call.Fun)
	from := pass.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	switch {
	case isStringType(to) && isByteSlice(from):
		if optimizedStringConv(call, stack) {
			return
		}
		pass.Reportf(call.Pos(), "string([]byte) conversion copies in a //dregex:noalloc function (m[string(b)] probes and string comparisons are exempt)")
	case isByteSlice(to) && isStringType(from):
		if isConstExpr(pass.TypesInfo, call.Args[0]) {
			return // []byte("literal") of a small constant is often stack-allocated; pins catch regressions
		}
		pass.Reportf(call.Pos(), "[]byte(string) conversion copies in a //dregex:noalloc function")
	case isStringType(to) && isRuneOrInt(from) && !isConstExpr(pass.TypesInfo, call.Args[0]):
		pass.Reportf(call.Pos(), "string(rune) conversion allocates in a //dregex:noalloc function")
	}
}

// optimizedStringConv reports whether a string([]byte) conversion is in one
// of the forms the compiler keeps allocation-free: a map index key
// (m[string(b)], including comma-ok reads) or a comparison operand.
func optimizedStringConv(conv *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.IndexExpr:
			return true // m[string(b)]: types guarantee X is a map if conv is the key
		case *ast.BinaryExpr:
			switch parent.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}

// checkNoallocAssign flags map writes and interface boxing in assignments.
func checkNoallocAssign(pass *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := pass.TypeOf(ix.X).Underlying().(*types.Map); isMap {
				pass.Reportf(lhs.Pos(), "map write may allocate in a //dregex:noalloc function")
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if lt := pass.TypeOf(as.Lhs[i]); lt != nil {
			reportBoxing(pass, rhs, lt, "assignment")
		}
	}
}

func checkNoallocReturn(pass *Pass, ret *ast.ReturnStmt, results *types.Tuple) {
	if len(ret.Results) != results.Len() {
		return // bare return or single multi-value call
	}
	for i, r := range ret.Results {
		reportBoxing(pass, r, results.At(i).Type(), "return")
	}
}

// reportBoxing flags an implicit conversion of a non-pointer-shaped
// concrete value to an interface type: the boxed copy heap-allocates.
func reportBoxing(pass *Pass, val ast.Expr, target types.Type, what string) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	vt := pass.TypeOf(val)
	if vt == nil || isPointerShaped(vt) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[val]; ok && (tv.IsNil() || tv.Value != nil) {
		return // nil, or a constant the runtime may intern
	}
	pass.Reportf(val.Pos(), "interface boxing of %s in %s allocates in a //dregex:noalloc function", vt.String(), what)
}

// isPointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the data word (no allocation):
// pointers, channels, maps, funcs, unsafe.Pointer — and interfaces, which
// convert without re-boxing.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isRuneOrInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isCallee reports whether sel is the function operand of its enclosing
// call (x.M() rather than a method value x.M).
func isCallee(sel *ast.SelectorExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(parent.Fun) == sel
		default:
			return false
		}
	}
	return false
}

// typeKindName renders a short name for a literal's type in diagnostics.
func typeKindName(t types.Type) string {
	if t == nil {
		return "composite"
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
