package analysis

import "go/ast"

// walkStack is ast.Inspect with ancestry: fn sees each node along with the
// stack of its ancestors (outermost first, not including n itself).
// Returning false skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, so the post-order nil for n never
			// arrives; don't push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
