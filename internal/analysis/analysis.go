// Package analysis is drevet's static-analysis core: a dependency-free
// reimplementation of the golang.org/x/tools/go/analysis contract
// (Analyzer / Pass / Diagnostic) plus the five repo-specific analyzers
// that mechanically enforce the hot-path invariants the test suite can
// only spot-check:
//
//	spanretain  xmltok []byte spans must not outlive the next Next()
//	poolpair    pool Get must be paired with Put on every return path
//	cowreg      COW registry snapshots from atomic.Pointer.Load are read-only
//	noalloc     //dregex:noalloc functions stay free of allocating constructs
//	tracenil    run.Trace witness hooks stay behind a nil check
//
// The API mirrors x/tools so the analyzers port mechanically if the repo
// ever takes the real dependency; it exists because this module is
// dependency-free by design (like internal/obs) and the analyzers need
// nothing beyond go/ast and go/types. The cmd/drevet driver speaks the
// `go vet -vettool=` unitchecker protocol, so the suite runs under the
// build cache like any vet pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //dregex:ok
	// waivers. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: one summary line, then detail.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes one diagnostic. Findings waived by a //dregex:ok
	// comment on (or immediately above) the diagnostic's line are dropped
	// here, so analyzers never re-implement waiver handling.
	diagnostics []Diagnostic
	dirs        *directives
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.dirs.waived(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// All returns the five drevet analyzers.
func All() []*Analyzer {
	return []*Analyzer{Spanretain, Poolpair, Cowreg, Noalloc, Tracenil}
}

// Run applies a to one type-checked package and returns its surviving
// diagnostics sorted in source order.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		dirs:      scanDirectives(fset, files),
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return pass.diagnostics, nil
}

// --- shared type/package predicates ---

// pkgPathIs reports whether path is exactly suffix or ends in "/"+suffix,
// so "dregex/internal/xmltok" matches suffix "internal/xmltok" and the
// analyzer testdata's stub packages can mirror the real import layout.
func pkgPathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedIn reports whether t (after pointer unwrapping) is the named type
// pkgSuffix.name, e.g. namedIn(t, "sync", "Pool"). Generic instantiations
// (atomic.Pointer[T]) match by their origin name.
func namedIn(t types.Type, pkgSuffix, name string) bool {
	t = deref(t)
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pkgPathIs(obj.Pkg().Path(), pkgSuffix)
}

// deref unwraps one level of pointer (and named aliases to pointers).
func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// funcDeclsOf yields every function declaration (with body) in the pass.
func funcDeclsOf(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// objOf resolves an identifier to its object (nil for blank/_unresolved).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// localVar returns the *types.Var behind e when e is a plain identifier
// naming a function-local variable; nil otherwise.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := objOf(info, id).(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil // package-level var
	}
	return v
}

// calleeFunc resolves the called function/method object of call, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := objOf(info, fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := objOf(info, fun.Sel).(*types.Func)
		return f
	}
	return nil
}
