// Stub of dregex/internal/xmltok for hermetic analyzer tests: the
// span-returning surface spanretain recognizes (methods on xmltok types
// returning []byte).
package xmltok

type Kind int

type Tokenizer struct {
	data []byte
	n    int
}

func (t *Tokenizer) Next() (Kind, error)    { return 0, nil }
func (t *Tokenizer) Name() []byte           { return t.data }
func (t *Tokenizer) Text() []byte           { return t.data }
func (t *Tokenizer) AttrValue(i int) []byte { return t.data }
func (t *Tokenizer) AttrName(i int) []byte  { return t.data }
func (t *Tokenizer) AttrCount() int         { return t.n }
func (t *Tokenizer) Offset() int            { return t.n }
