// Stub of dregex/internal/pool for hermetic analyzer tests.
package pool

import "sync"

type StatePool[S any] struct {
	p sync.Pool
}

func (sp *StatePool[S]) Get() *S {
	if v := sp.p.Get(); v != nil {
		return v.(*S)
	}
	return new(S)
}

func (sp *StatePool[S]) Put(s *S) {
	sp.p.Put(s)
}
