// Stub of dregex/internal/run for hermetic analyzer tests: the Trace type
// tracenil guards, with the real package's nil-safe method shape.
package run

type NodeID int32

type Trace struct {
	Pos []NodeID
}

func (t *Trace) Reset() {
	if t != nil {
		t.Pos = t.Pos[:0]
	}
}
