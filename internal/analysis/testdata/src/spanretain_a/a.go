// Golden cases for spanretain: xmltok spans stored past the next Next().
package spanretain_a

import (
	"bytes"

	"dregex/internal/xmltok"
)

type holder struct {
	name  []byte
	names [][]byte
	s     string
}

var global []byte

func bad(t *xmltok.Tokenizer, h *holder, m map[string][]byte) {
	h.name = t.Name()                   // want "span stored into a struct field"
	m["k"] = t.AttrValue(0)             // want "span stored into a map or slice element"
	global = t.Text()                   // want "span stored into a package variable"
	h.names = append(h.names, t.Name()) // want "span stored into a struct field"
}

func badViaLocal(t *xmltok.Tokenizer, h *holder) {
	n := t.Name()
	n2 := n[1:]
	h.name = n2 // want "span stored into a struct field"
}

func good(t *xmltok.Tokenizer, h *holder, m map[string][]byte) {
	h.s = string(t.Name())                    // copy: fine
	h.name = append([]byte(nil), t.Name()...) // copy: fine
	h.name = bytes.Clone(t.AttrValue(0))      // copy: fine
	m["k"] = []byte(string(t.Text()))         // copy: fine
	n := t.Name()
	if len(n) > 0 { // transient use within the token's lifetime: fine
		h.s = string(n)
	}
	n = []byte("fresh") // reassignment retires the taint
	h.name = n
}

func waived(t *xmltok.Tokenizer, h *holder) {
	// The document buffer is pinned for this holder's whole lifetime.
	h.name = t.Name() //dregex:ok spanretain buffer outlives holder
}
