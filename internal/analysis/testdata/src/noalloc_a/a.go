// Golden cases for noalloc: allocating constructs inside //dregex:noalloc
// functions, and the coldalloc / waiver escape hatches.
package noalloc_a

import (
	"errors"
	"fmt"
)

type sym int32

type stream struct {
	cur   int32
	table []int32
	buf   []byte
}

type iface interface{ M() }

type impl struct{ x int }

func (impl) M() {}

//dregex:noalloc
func bad(s *stream, b []byte, m map[string]int, v impl) {
	_ = make([]int, 4)         // want "make allocates"
	_ = new(stream)            // want "new allocates"
	_ = &stream{}              // want `&noalloc_a.stream\{…\} escapes`
	_ = []int{1, 2}            // want "slice literal allocates"
	_ = map[string]int{}       // want "map literal allocates"
	m["k"] = 1                 // want "map write may allocate"
	_ = string(b)              // want `string\(\[\]byte\) conversion copies`
	_ = []byte(varString)      // want `\[\]byte\(string\) conversion copies`
	_ = fmt.Sprintf("x %d", 1) // want "call to fmt.Sprintf allocates"
	_ = errors.New("boom")     // want "errors.New allocates"
	var i iface = v            // want "interface boxing of noalloc_a.impl in assignment"
	_ = i
	sink(v)        // want "interface boxing of noalloc_a.impl in argument"
	f := func() {} // want "closure allocates"
	f()
	go helper() // want "go statement allocates"
	_ = v.M     // want "method value M allocates"
}

var varString = "not a constant"

//dregex:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//dregex:noalloc
func badBoxReturn(v impl) iface {
	return v // want "interface boxing of noalloc_a.impl in return"
}

//dregex:noalloc
func good(s *stream, b []byte, m map[string]int, p *impl) bool {
	// The optimized forms and non-allocating constructs stay silent.
	if m[string(b)] > 0 { // map probe: exempt
		return true
	}
	if string(b) == "lit" { // comparison: exempt
		return true
	}
	s.buf = append(s.buf, b...) // append is amortized into pooled buffers
	s.cur = s.table[0]
	var i iface = p // pointer-shaped: no boxing allocation
	_ = i
	sink(p)         // pointer-shaped argument
	_ = impl{x: 1}  // value literal, never escapes here
	_ = []byte("k") // constant conversion: exempt
	return eq(b, "x")
}

//dregex:noalloc
func goodColdCall(b []byte) error {
	if len(b) == 0 {
		return failf("empty input %d", len(b)) // coldalloc callee: allowed
	}
	return nil
}

//dregex:noalloc
func goodWaived() {
	_ = make([]int, 8) //dregex:ok noalloc one-time warmup buffer
}

// failf builds error values on failure paths only.
//
//dregex:coldalloc
func failf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func helper() {}

func sink(v iface) {}

func eq(b []byte, s string) bool { return string(b) == s }

// unannotated allocates freely: the analyzer is opt-in.
func unannotated() *stream {
	return &stream{buf: make([]byte, 0, 64)}
}
