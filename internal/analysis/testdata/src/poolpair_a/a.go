// Golden cases for poolpair: pool Gets that leak on some path.
package poolpair_a

import (
	"sync"

	"dregex/internal/pool"
)

type state struct{ buf []byte }

var sp pool.StatePool[state]
var raw = sync.Pool{New: func() any { return new(state) }}

func use(*state) bool { return true }

func leakNoPut() {
	st := sp.Get() // want "never returned with Put"
	use(st)
}

func leakEarlyReturn(cond bool) {
	st := sp.Get()
	if cond {
		return // want "return without Put"
	}
	sp.Put(st)
}

func goodLinear() {
	st := sp.Get()
	use(st)
	sp.Put(st)
}

func goodDefer(cond bool) {
	st := sp.Get()
	defer sp.Put(st)
	if cond {
		return
	}
	use(st)
}

func goodBranchPut(cond bool) {
	st := sp.Get()
	if cond {
		sp.Put(st)
		return
	}
	use(st)
	sp.Put(st)
}

func goodOwnershipReturn() *state {
	st := sp.Get()
	return st
}

func goodOwnershipAssert() *state {
	st := raw.Get().(*state)
	return st
}

func goodEscapeField(h *struct{ st *state }) {
	st := sp.Get()
	h.st = st // handed off: released by the holder later
}

func goodPutHelper() {
	st := raw.Get().(*state)
	if use(st) {
		putState(st)
		return
	}
	putState(st)
}

func putState(st *state) { raw.Put(st) }

// Get and Put both live inside one switch case; the return after the
// switch never holds the state and must stay silent.
func goodCaseScoped(kind int) bool {
	ok := false
	switch kind {
	case 0:
		st := sp.Get()
		ok = use(st)
		sp.Put(st)
	case 1:
		st := raw.Get().(*state)
		ok = use(st)
		raw.Put(st)
	}
	return ok
}

// An early return between Get and Put still leaks even though a Put
// follows in the same block.
func leakBeforeSameBlockPut(cond bool) {
	st := sp.Get()
	if cond {
		return // want "return without Put"
	}
	use(st)
	sp.Put(st)
}

func waived() {
	st := sp.Get() //dregex:ok poolpair intentionally long-lived
	use(st)
}
