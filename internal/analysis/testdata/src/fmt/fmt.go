// Stub of fmt for hermetic analyzer tests.
package fmt

func Sprintf(format string, args ...any) string { return format }
func Errorf(format string, args ...any) error   { return nil }
func Println(args ...any) (int, error)          { return 0, nil }
