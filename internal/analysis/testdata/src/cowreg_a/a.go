// Golden cases for cowreg: mutating a snapshot obtained via
// atomic.Pointer.Load instead of copy-and-swap.
package cowreg_a

import "sync/atomic"

type entry struct {
	version int
	tags    []string
}

type registry struct {
	schemas atomic.Pointer[map[string]*entry]
}

func badMapWrite(r *registry, e *entry) {
	m := *r.schemas.Load()
	m["x"] = e // want "write into a COW snapshot"
}

func badDelete(r *registry) {
	m := *r.schemas.Load()
	delete(m, "x") // want "delete from a COW snapshot map"
}

func badEntryWrite(r *registry) {
	m := *r.schemas.Load()
	e := m["x"]
	e.version++ // want "field write through a COW snapshot"
}

func badRangeWrite(r *registry) {
	for _, e := range *r.schemas.Load() {
		e.version = 0 // want "field write through a COW snapshot"
	}
}

func badDirectStore(r *registry, e *entry) {
	(*r.schemas.Load())["x"] = e // want "write into a COW snapshot"
}

func goodCopySwap(r *registry, e *entry) {
	old := *r.schemas.Load()
	next := make(map[string]*entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next["x"] = e
	r.schemas.Store(&next)
}

func goodReads(r *registry) int {
	m := *r.schemas.Load()
	n := len(m)
	for _, e := range m {
		n += e.version // value read: fine
	}
	if e := m["x"]; e != nil {
		n += len(e.tags)
	}
	return n
}

func goodFreshEntry(e *entry) {
	e2 := &entry{}
	e2.version = e.version + 1 // not a snapshot: fine
}
