// Stub of errors for hermetic analyzer tests.
package errors

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

func New(text string) error { return &errorString{text} }
