// Waiver semantics shared by every analyzer: //dregex:ok names the
// analyzers it silences, on the finding's line or the line above.
package waiver_a

import "dregex/internal/xmltok"

type holder struct{ name []byte }

func trailing(t *xmltok.Tokenizer, h *holder) {
	h.name = t.Name() //dregex:ok spanretain pinned buffer
}

func leading(t *xmltok.Tokenizer, h *holder) {
	//dregex:ok spanretain pinned buffer
	h.name = t.Name()
}

func wrongName(t *xmltok.Tokenizer, h *holder) {
	//dregex:ok poolpair wrong analyzer
	h.name = t.Name() // want "span stored into a struct field"
}
