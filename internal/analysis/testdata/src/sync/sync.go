// Stub of sync for hermetic analyzer tests: just enough Pool surface.
package sync

type Pool struct {
	New func() any
}

func (p *Pool) Get() any {
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(x any) {}
