// Stub of sync/atomic for hermetic analyzer tests: the Pointer[T] surface
// the cowreg analyzer recognizes.
package atomic

type Pointer[T any] struct {
	v *T
}

func (p *Pointer[T]) Load() *T     { return p.v }
func (p *Pointer[T]) Store(v *T)   { p.v = v }
func (p *Pointer[T]) Swap(v *T) *T { old := p.v; p.v = v; return old }
