// Stub of bytes for hermetic analyzer tests: Clone is a recognized
// span sanitizer.
package bytes

func Clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
