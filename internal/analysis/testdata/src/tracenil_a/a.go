// Golden cases for tracenil: *run.Trace field access without a nil guard.
package tracenil_a

import "dregex/internal/run"

type core struct {
	tr  *run.Trace
	fed int
}

func badUnguarded(c *core, p run.NodeID) {
	c.tr.Pos = append(c.tr.Pos, p) // want "unguarded access" "unguarded access"
}

func badWrongGuard(c *core, other *run.Trace, p run.NodeID) {
	if other != nil {
		c.tr.Pos = append(c.tr.Pos, p) // want "unguarded access" "unguarded access"
	}
}

func badElse(c *core, p run.NodeID) {
	if c.tr == nil {
		return
	} else {
		_ = p
	}
	c.tr.Pos = c.tr.Pos[:0] // guarded: the nil case returned above
}

func goodGuarded(c *core, p run.NodeID) {
	if c.tr != nil {
		c.tr.Pos = append(c.tr.Pos, p)
	}
}

func goodGuardedCompound(c *core, p run.NodeID) {
	if c.tr != nil && c.fed > 0 {
		c.tr.Pos = append(c.tr.Pos, p)
	}
}

func goodEarlyReturn(c *core) []run.NodeID {
	if c.tr == nil {
		return nil
	}
	return c.tr.Pos
}

func goodEqGuardElse(c *core, p run.NodeID) {
	if c.tr == nil {
		_ = p
	} else {
		c.tr.Pos = append(c.tr.Pos, p)
	}
}

func goodMethodCall(c *core) {
	c.tr.Reset() // methods are nil-safe by construction
}

func goodLocalNonNil() {
	tr := &run.Trace{}
	tr.Pos = append(tr.Pos, 1) // provably non-nil
}

func goodValueTrace() {
	var tr run.Trace
	tr.Pos = tr.Pos[:0] // value, not pointer: cannot be nil
}

func goodLocalGuard(c *core, p run.NodeID) {
	tr := c.tr
	if tr != nil {
		tr.Pos = append(tr.Pos, p)
	}
}
