// Directive comments: the repo-wide conventions the analyzers honor.
//
//	//dregex:noalloc            (in a func's doc) opt this function into
//	                            the noalloc check
//	//dregex:coldalloc          (in a func's doc) calls to this function
//	                            are reviewed error-path allocators; noalloc
//	                            functions may call it without a waiver
//	//dregex:ok name[,name] reason
//	                            waive the named analyzers' findings on this
//	                            line (trailing) or the next line (leading);
//	                            the reason is required prose, not parsed
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	dirNoalloc   = "//dregex:noalloc"
	dirColdalloc = "//dregex:coldalloc"
	dirOK        = "//dregex:ok"
)

// directives is the per-pass index of //dregex:ok waivers, keyed by file
// and line. Function-level directives (noalloc, coldalloc) are read off
// the declarations directly by the analyzers that care.
type directives struct {
	// waivers maps filename -> line -> analyzer names waived there.
	waivers map[string]map[int][]string
}

func scanDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{waivers: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, dirOK)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				names := strings.FieldsFunc(strings.TrimSpace(rest), func(r rune) bool {
					return r == ' ' || r == '\t'
				})
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.waivers[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					d.waivers[pos.Filename] = lines
				}
				// A comment on its own line waives the next line; a trailing
				// comment waives its own. Recording both is simpler and the
				// over-coverage (one extra line) is harmless for a waiver
				// that names its analyzer explicitly.
				split := strings.Split(names[0], ",")
				lines[pos.Line] = append(lines[pos.Line], split...)
				lines[pos.Line+1] = append(lines[pos.Line+1], split...)
			}
		}
	}
	return d
}

// waived reports whether analyzer name is waived at pos.
func (d *directives) waived(fset *token.FileSet, pos token.Pos, name string) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	for _, n := range d.waivers[p.Filename][p.Line] {
		if n == name {
			return true
		}
	}
	return false
}

// hasDirective reports whether the declaration's doc comment carries the
// given //dregex: directive.
func hasDirective(doc *ast.CommentGroup, dir string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == dir || strings.HasPrefix(c.Text, dir+" ") {
			return true
		}
	}
	return false
}
