// Package atest is the golden-diagnostic harness for the drevet
// analyzers, a hermetic analogue of x/tools' analysistest: test packages
// live under testdata/src/<importpath>/ with expectations written as
//
//	code()  // want "regexp" "second regexp"
//
// comments on the offending line. Imports resolve inside testdata/src
// only (stub sync, sync/atomic, dregex/internal/… packages mirror the
// real layout), so tests depend on no compiled stdlib and no network.
package atest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dregex/internal/analysis"
)

// TestData returns the caller's testdata directory as an absolute path.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run applies a to each package (import path under dir/src) and compares
// its diagnostics to the package's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{root: filepath.Join(dir, "src"), fset: token.NewFileSet(), pkgs: map[string]*loaded{}}
	for _, path := range pkgPaths {
		ld, err := l.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(a, l.fset, ld.files, ld.pkg, ld.info)
		if err != nil {
			t.Errorf("%s: running %s: %v", path, a.Name, err)
			continue
		}
		checkWants(t, l.fset, ld.files, diags)
	}
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
}

func (l *loader) load(path string) (*loaded, error) {
	if ld, ok := l.pkgs[path]; ok {
		if ld == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return ld, nil
	}
	l.pkgs[path] = nil // cycle guard
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			ld, err := l.load(p)
			if err != nil {
				return nil, err
			}
			return ld.pkg, nil
		}),
		Sizes: types.SizesFor("gc", "amd64"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	ld := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = ld
	return ld, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRe extracts the quoted regexps of a want comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
	raw  string
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
