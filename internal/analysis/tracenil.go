package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Tracenil enforces the witness-recording contract of internal/run: the
// opt-in run.Trace is nil for every pure-match run, so any direct field
// access through a *run.Trace value (reading or appending to .Pos inside a
// step loop) must sit behind a nil check of that same expression. Method
// calls are exempt — Trace's methods are nil-safe by construction — and so
// are pointers that are provably non-nil in the function (taken with & or
// allocated with new).
var Tracenil = &Analyzer{
	Name: "tracenil",
	Doc:  "direct *run.Trace field access must be behind a nil check",
	Run:  runTracenil,
}

func runTracenil(pass *Pass) error {
	funcDeclsOf(pass, func(decl *ast.FuncDecl) {
		// Locals assigned from &T{...}, new(T), or another non-nil local
		// are provably non-nil; accesses through them need no guard.
		nonNil := map[*types.Var]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				v := localVar(pass.TypesInfo, lhs)
				if v == nil || !isTracePtr(pass.TypeOf(lhs)) {
					continue
				}
				nonNil[v] = isDefinitelyNonNil(pass, as.Rhs[i], nonNil)
			}
			return true
		})

		walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base := ast.Unparen(sel.X)
			if !isTracePtr(pass.TypeOf(base)) {
				return true
			}
			// Method calls on a *Trace are nil-safe; only field selections
			// dereference.
			if _, isField := objOf(pass.TypesInfo, sel.Sel).(*types.Var); !isField {
				return true
			}
			if v := localVar(pass.TypesInfo, base); v != nil && nonNil[v] {
				return true
			}
			if nilGuarded(pass, base, sel.Pos(), stack) {
				return true
			}
			pass.Reportf(sel.Pos(), "unguarded access to %s.%s: a detached witness trace is nil; wrap in `if %s != nil` (or waive with //dregex:ok tracenil)",
				types.ExprString(base), sel.Sel.Name, types.ExprString(base))
			return true
		})
	})
	return nil
}

// isTracePtr reports whether t is *run.Trace (package path suffix
// internal/run, type Trace).
func isTracePtr(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		return false
	}
	return namedIn(t, "internal/run", "Trace")
}

// isDefinitelyNonNil reports whether e evaluates to a non-nil pointer:
// &x, new(T), or a local already known non-nil.
func isDefinitelyNonNil(pass *Pass, e ast.Expr, nonNil map[*types.Var]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := objOf(pass.TypesInfo, id).(*types.Builtin)
			return isBuiltin
		}
	case *ast.Ident:
		if v := localVar(pass.TypesInfo, e); v != nil {
			return nonNil[v]
		}
	}
	return false
}

// nilGuarded reports whether the access at pos to expression base (by its
// printed form) is protected by a nil check: an enclosing `if base != nil`
// (access in the then-branch) or `if base == nil` (access in the else
// branch), or an earlier statement in an enclosing block of the form
// `if base == nil { return/break/continue/panic }`.
func nilGuarded(pass *Pass, base ast.Expr, pos token.Pos, stack []ast.Node) bool {
	want := types.ExprString(base)
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if ok {
			inBody := i+1 < len(stack) && stack[i+1] == ifs.Body
			for _, conj := range conjuncts(ifs.Cond) {
				eq, expr := nilCheckOf(conj)
				if expr == want && ((!eq && inBody) || (eq && !inBody)) {
					return true
				}
			}
		}
		// Early-exit guard earlier in an enclosing block.
		blk, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, st := range blk.List {
			if st.End() >= pos {
				break
			}
			g, ok := st.(*ast.IfStmt)
			if !ok {
				continue
			}
			eq, expr := nilCheckOf(g.Cond)
			if eq && expr == want && alwaysExits(g.Body) {
				return true
			}
		}
	}
	return false
}

// conjuncts flattens an && chain into its operands (a lone condition
// yields itself), so `tr != nil && n > 0` still guards its then-branch.
func conjuncts(cond ast.Expr) []ast.Expr {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if ok && b.Op == token.LAND {
		return append(conjuncts(b.X), conjuncts(b.Y)...)
	}
	return []ast.Expr{cond}
}

// nilCheckOf decomposes `x == nil` / `x != nil` (either operand order);
// eq reports the == form, expr is the non-nil operand's printed form.
// Conditions that are not a simple nil comparison return expr == "".
func nilCheckOf(cond ast.Expr) (eq bool, expr string) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return false, ""
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(y) {
		return b.Op == token.EQL, types.ExprString(x)
	}
	if isNilIdent(x) {
		return b.Op == token.EQL, types.ExprString(y)
	}
	return false, ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// alwaysExits reports whether a block unconditionally leaves the enclosing
// flow: its last statement is return, break, continue, goto, or a panic.
func alwaysExits(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
