package analysis_test

import (
	"testing"

	"dregex/internal/analysis"
	"dregex/internal/analysis/atest"
)

func TestSpanretain(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Spanretain, "spanretain_a")
}

func TestPoolpair(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Poolpair, "poolpair_a")
}

func TestCowreg(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Cowreg, "cowreg_a")
}

func TestNoalloc(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Noalloc, "noalloc_a")
}

func TestTracenil(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Tracenil, "tracenil_a")
}

// TestWaiver locks the //dregex:ok escape hatch: it silences exactly the
// analyzers it names, on its own line or the one below.
func TestWaiver(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Spanretain, "waiver_a")
}

// TestSpanretainSkipsXmltok: the tokenizer aliasing its own buffer is the
// design, not a finding; the stub package stands in for the real one.
func TestSpanretainSkipsXmltok(t *testing.T) {
	atest.Run(t, atest.TestData(), analysis.Spanretain, "dregex/internal/xmltok")
}
