package analysis

import (
	"go/ast"
	"go/types"
)

// Spanretain enforces the aliasing contract of internal/xmltok: every
// []byte the tokenizer hands out (Name, Text, AttrValue, …) is a span of
// the tokenizer's own buffer, valid only until the next Next() call — and
// on Reset the buffer may be a different document entirely. Storing a span
// into anything that outlives the current token (a struct field, a map, a
// slice element, a package variable) without an explicit copy is a
// use-after-overwrite bug that no test enumerates. Recognized copies:
// string(span), append(dst, span...), bytes.Clone, slices.Clone.
//
// The check is a per-function taint pass: span sources are []byte-returning
// methods on xmltok types; locals assigned from spans carry the taint;
// stores of tainted values into non-local memory are flagged. The xmltok
// package itself is exempt (the tokenizer aliasing its own buffer is the
// whole point).
var Spanretain = &Analyzer{
	Name: "spanretain",
	Doc:  "xmltok token spans must not be stored past the next Next() without a copy",
	Run:  runSpanretain,
}

func runSpanretain(pass *Pass) error {
	if pkgPathIs(pass.Pkg.Path(), "internal/xmltok") {
		return nil
	}
	funcDeclsOf(pass, func(decl *ast.FuncDecl) {
		checkSpanFunc(pass, decl)
	})
	return nil
}

func checkSpanFunc(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	tainted := map[*types.Var]bool{}

	// isSpan reports whether e evaluates to (or contains) tokenizer-buffer
	// memory: a span source call, a tainted local, a reslice of either, an
	// append that keeps a span as an element, or a composite literal
	// holding one.
	var isSpan func(e ast.Expr) bool
	isSpan = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if spanSource(pass, e) {
				return true
			}
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					// append(s, span...) copies the bytes; append(ss, span)
					// keeps the alias as an element.
					if e.Ellipsis.IsValid() {
						return isSpan(e.Args[0])
					}
					for _, a := range e.Args {
						if isSpan(a) {
							return true
						}
					}
				}
			}
			return false
		case *ast.Ident:
			if v := localVar(info, e); v != nil {
				return tainted[v]
			}
		case *ast.SliceExpr:
			return isSpan(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isSpan(el) {
					return true
				}
			}
		}
		return false
	}

	// Taint locals first (two rounds: loops feed taint upward in source).
	for range 2 {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				v := localVar(info, lhs)
				if v == nil {
					continue
				}
				// Direct reassignment retires the taint; := of a span (or
				// of an expression still holding one) introduces it.
				tainted[v] = isSpan(as.Rhs[i])
			}
			return true
		})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lhs = ast.Unparen(lhs)
			if localVar(info, lhs) != nil || isBlank(lhs) {
				continue
			}
			if !isSpan(as.Rhs[i]) {
				continue
			}
			pass.Reportf(as.Pos(), "xmltok span stored into %s outlives the next Next(); copy it first (string(span), append(dst, span...), or bytes.Clone)",
				storeKind(lhs))
		}
		return true
	})
}

// spanSource reports whether call yields a tokenizer-buffer span: a method
// on a type from internal/xmltok returning []byte.
func spanSource(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := objOf(pass.TypesInfo, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || !pkgPathIs(fn.Pkg().Path(), "internal/xmltok") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isByteSlice(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// storeKind names the flagged destination for the diagnostic.
func storeKind(lhs ast.Expr) string {
	switch lhs.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "pointed-to memory"
	case *ast.Ident:
		return "a package variable"
	}
	return "longer-lived memory"
}
