package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolpair enforces the borrow discipline of pool.StatePool and sync.Pool:
// a state taken with Get must go back with Put on every return path, or
// the pool silently degrades to per-request allocation (the exact failure
// the 0/5/9-alloc pins exist to prevent) — worse, a grown scratch state is
// lost on the one path that forgot it. Within the function that calls Get,
// the analyzer accepts as "handed off": a Put-like call (Put/put*/release*/
// free*) with the state as argument, deferred or inline; returning the
// state; or storing it into longer-lived memory (field, map, slice,
// global). When the only Puts are inline, every return after the Get must
// be covered by one on its own path.
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "pool Get must be paired with Put on every return path",
	Run:  runPoolpair,
}

func runPoolpair(pass *Pass) error {
	funcDeclsOf(pass, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call := poolGetCall(pass, as.Rhs[0])
			if call == nil {
				return true
			}
			v := localVar(pass.TypesInfo, as.Lhs[0])
			if v == nil {
				pass.Reportf(as.Pos(), "pool Get result must be kept in a local until it is Put back")
				return true
			}
			checkPoolUse(pass, decl, call, v)
			return true
		})
	})
	return nil
}

// poolGetCall returns the Get() call behind e — directly, or through a
// type assertion `pool.Get().(*T)` — when the receiver is a sync.Pool or
// pool.StatePool; nil otherwise.
func poolGetCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return nil
	}
	recv := pass.TypeOf(sel.X)
	if namedIn(recv, "sync", "Pool") || namedIn(recv, "internal/pool", "StatePool") {
		return call
	}
	return nil
}

// checkPoolUse verifies that v, the state obtained at getCall, is handed
// off on every path out of decl.
func checkPoolUse(pass *Pass, decl *ast.FuncDecl, getCall *ast.CallExpr, v *types.Var) {
	info := pass.TypesInfo
	var (
		inlinePuts   []putSite // non-deferred Put-like calls with v as arg
		deferredPuts []token.Pos
		escapes      bool             // stored into longer-lived memory or returned
		getChain     []*ast.BlockStmt // blocks enclosing the Get itself
	)

	isV := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		// `return v.(*T)` and `Put(v.(*T))` still hand off v.
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		return localVar(info, e) == v
	}

	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == getCall {
				getChain = blockChain(stack)
				return true
			}
			if !putLike(info, n) || !hasArg(n, isV) {
				return true
			}
			if _, ok := enclosing[*ast.DeferStmt](stack); ok {
				deferredPuts = append(deferredPuts, n.Pos())
			} else {
				inlinePuts = append(inlinePuts, putSite{pos: n.Pos(), stack: blockChain(stack)})
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isV(r) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isV(rhs) {
					continue
				}
				// Storing v anywhere but a plain local keeps it reachable
				// for a later Put elsewhere — ownership handed off.
				if localVar(info, n.Lhs[i]) == nil {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isV(el) {
					escapes = true
				}
			}
		}
		return true
	})

	if escapes {
		return
	}
	if len(inlinePuts) == 0 && len(deferredPuts) == 0 {
		pass.Reportf(getCall.Pos(), "%s is taken from the pool but never returned with Put (and never escapes this function)", v.Name())
		return
	}

	// Deferred Puts cover every later return; inline Puts cover only the
	// returns on their own block path.
	firstDefer := token.Pos(-1)
	if len(deferredPuts) > 0 {
		firstDefer = deferredPuts[0]
	}
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= getCall.Pos() {
			return true
		}
		if firstDefer != -1 && firstDefer < ret.Pos() {
			return true
		}
		chain := blockChain(stack)
		for _, put := range inlinePuts {
			if put.pos >= ret.Pos() {
				continue
			}
			// Covered when the return's path flows through the Put's block,
			// or when the Put sits in the very block that did the Get: any
			// path reaching a later return either went through Get-then-Put
			// in straight line, or never held the state at all.
			if isPrefix(put.stack, chain) || sameChain(put.stack, getChain) {
				return true
			}
		}
		pass.Reportf(ret.Pos(), "return without Put: %s (taken from the pool at line %d) leaks on this path",
			v.Name(), pass.Fset.Position(getCall.Pos()).Line)
		return true
	})
}

type putSite struct {
	pos   token.Pos
	stack []*ast.BlockStmt
}

// putLike reports whether call's callee name reads as a pool release.
func putLike(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return lower == "put" || strings.HasPrefix(lower, "put") ||
		strings.HasPrefix(lower, "release") || strings.HasPrefix(lower, "free")
}

func hasArg(call *ast.CallExpr, pred func(ast.Expr) bool) bool {
	for _, a := range call.Args {
		if pred(a) {
			return true
		}
	}
	return false
}

// blockChain extracts the nested block statements from an ancestor stack.
func blockChain(stack []ast.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, n := range stack {
		if b, ok := n.(*ast.BlockStmt); ok {
			out = append(out, b)
		}
	}
	return out
}

// isPrefix reports whether put's block chain is an ancestor chain of (or
// equal to) the return's: a Put covers a return only when the return's
// path flows through the Put's block.
func isPrefix(put, ret []*ast.BlockStmt) bool {
	if len(put) > len(ret) {
		return false
	}
	for i, b := range put {
		if ret[i] != b {
			return false
		}
	}
	return true
}

// sameChain reports whether two block chains are identical.
func sameChain(a, b []*ast.BlockStmt) bool {
	return len(a) == len(b) && isPrefix(a, b)
}

// enclosing returns the innermost ancestor of type T from stack.
func enclosing[T ast.Node](stack []ast.Node) (T, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if n, ok := stack[i].(T); ok {
			return n, true
		}
	}
	var zero T
	return zero, false
}
