// The drevet driver: speaks the `go vet -vettool=` command-line protocol
// (the same contract x/tools' unitchecker implements), so the suite runs
// under the go build cache with per-package type information supplied by
// the build system — no go/packages, no network, no dependencies.
//
// Protocol (cmd/go → tool):
//
//	-V=full    print an identifying version line (for build caching)
//	-flags     print the tool's flags as JSON
//	foo.cfg    analyze the one compilation unit described by the JSON file
//
// Diagnostics go to stderr as "file:line:col: message"; a nonzero exit
// reports findings. As a convenience, invoking drevet with package
// patterns instead of a .cfg re-executes `go vet -vettool=<self>` so
// `drevet ./...` works directly.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// Config is the JSON compilation-unit description cmd/go hands the tool.
// Field names are fixed by the protocol; unused fields are accepted and
// ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the drevet entry point.
func Main(analyzers ...*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("drevet: ")

	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (default: all)")
	}
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (protocol)")
	version := flag.String("V", "", "print version and exit (protocol: -V=full)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drevet [packages]  (or, under the build system: go vet -vettool=$(which drevet) [packages])\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(2)
	}
	flag.Parse()

	if *version != "" {
		if *version != "full" {
			log.Fatalf("unsupported flag value: -V=%s (use -V=full)", *version)
		}
		printVersion()
		return
	}
	if *printFlags {
		printFlagsJSON()
		return
	}

	// Honor -NAME selections (forwarded by go vet).
	var selected []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if !strings.HasSuffix(args[0], ".cfg") {
		// Convenience mode: hand the package patterns to go vet, pointed
		// back at this executable.
		os.Exit(runSelf(args))
	}
	cfg, err := readConfig(args[0])
	if err != nil {
		log.Fatal(err)
	}
	diags, err := runUnit(cfg, selected)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	if cfg.VetxOnly {
		// Facts-only invocation: this suite exports none. cmd/go treats a
		// missing vetx output as "no facts".
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// printVersion hashes the executable into the version line, as the
// protocol suggests, so rebuilding drevet invalidates cached vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
}

func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func runSelf(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// runUnit type-checks the unit from its export data and applies the
// analyzers, returning rendered diagnostics in file order.
func runUnit(cfg *Config, analyzers []*Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var out []string
	for _, a := range analyzers {
		diags, err := Run(a, fset, files, pkg, info)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
		}
	}
	sort.Strings(out)
	return out, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
