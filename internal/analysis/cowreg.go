package analysis

import (
	"go/ast"
	"go/types"
)

// Cowreg enforces the copy-on-write discipline of the dregexd schema
// registry (and any future atomic.Pointer-published structure): a snapshot
// obtained through atomic.Pointer.Load — the pointer, the map behind it,
// and any entry fetched out of that map — is shared with every concurrent
// reader and must be treated read-only. Mutations must build a fresh copy
// and Store it (the copy-swap helpers). The analyzer taints values derived
// from Load() inside each function and flags assignments, deletes, and
// appends that write through a tainted value.
var Cowreg = &Analyzer{
	Name: "cowreg",
	Doc:  "values reached from atomic.Pointer.Load are copy-on-write snapshots; mutate a fresh copy instead",
	Run:  runCowreg,
}

func runCowreg(pass *Pass) error {
	funcDeclsOf(pass, func(decl *ast.FuncDecl) {
		checkCowFunc(pass, decl)
	})
	return nil
}

func checkCowFunc(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	tainted := map[*types.Var]bool{}

	// isSnapshot reports whether e reaches data published via Load():
	// the Load() call itself, a deref of it, an index/field/range step
	// through a tainted value, or a local already tainted.
	var isSnapshot func(e ast.Expr) bool
	isSnapshot = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Load" {
				return false
			}
			return namedIn(pass.TypeOf(sel.X), "sync/atomic", "Pointer")
		case *ast.StarExpr:
			return isSnapshot(e.X)
		case *ast.IndexExpr:
			return isSnapshot(e.X)
		case *ast.SelectorExpr:
			// A field read through a tainted value stays tainted only when
			// it shares memory with the snapshot (pointer, map, or slice
			// field); a copied value field is the reader's own.
			if !sharesMemory(pass.TypeOf(e)) {
				return false
			}
			if _, isField := objOf(info, e.Sel).(*types.Var); !isField {
				return false
			}
			return isSnapshot(e.X)
		case *ast.Ident:
			if v := localVar(info, e); v != nil {
				return tainted[v]
			}
		}
		return false
	}

	// Two passes so taint assigned below a use still counts (straight-line
	// source order is not execution order in loops); the set only grows.
	for range 2 {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if v := localVar(info, lhs); v != nil && isSnapshot(st.Rhs[i]) {
							tainted[v] = true
						}
					}
				}
			case *ast.RangeStmt:
				if isSnapshot(st.X) {
					if v := localVar(info, st.Value); v != nil && sharesMemory(pass.TypeOf(st.Value)) {
						tainted[v] = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkCowWrite(pass, lhs, isSnapshot)
			}
		case *ast.IncDecStmt:
			checkCowWrite(pass, st.X, isSnapshot)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "delete" && len(st.Args) == 2 {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin && isSnapshot(st.Args[0]) {
					pass.Reportf(st.Pos(), "delete from a COW snapshot map (obtained via atomic.Pointer.Load); build a copy and Store it")
				}
			}
		}
		return true
	})
}

// checkCowWrite flags an assignment target that writes through snapshot
// memory: snapshot[k] = v, snapshot.field = v, *snapshot = v.
func checkCowWrite(pass *Pass, lhs ast.Expr, isSnapshot func(ast.Expr) bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if isSnapshot(lhs.X) {
			pass.Reportf(lhs.Pos(), "write into a COW snapshot (obtained via atomic.Pointer.Load); mutate a fresh copy and Store it")
		}
	case *ast.SelectorExpr:
		if isSnapshot(lhs.X) {
			pass.Reportf(lhs.Pos(), "field write through a COW snapshot (obtained via atomic.Pointer.Load); registry entries are immutable once published")
		}
	case *ast.StarExpr:
		if isSnapshot(lhs.X) {
			pass.Reportf(lhs.Pos(), "write through a COW snapshot pointer (obtained via atomic.Pointer.Load)")
		}
	}
}

// sharesMemory reports whether a value of type t aliases the memory it was
// read from: pointers, maps, and slices do; value copies (structs, basics,
// strings) don't. Interfaces and channels are treated as sharing.
func sharesMemory(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Interface, *types.Chan:
		return true
	}
	return false
}
