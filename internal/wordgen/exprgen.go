// Package wordgen generates workloads: random regular expressions from the
// families discussed in the paper (arbitrary, deterministic, k-occurrence,
// star-free, bounded plus-depth, mixed-content, CHARE/simple), and random
// words drawn from or near the language of an expression. It supplies both
// the fuzzing corpora for the test suite and the inputs for the E1–E9
// benchmark experiments (see DESIGN.md §3).
package wordgen

import (
	"fmt"
	"math/rand"
	"strings"

	"dregex/internal/ast"
)

// ExprConfig controls RandomExpr.
type ExprConfig struct {
	Symbols   int  // number of distinct symbols to draw from (≥1)
	MaxNodes  int  // approximate node budget (≥1)
	AllowIter bool // permit numeric occurrence indicators e{i,j}
	IterMax   int  // largest finite bound to generate (default 4)
}

// SymbolName returns the generated name of the i-th symbol: a, b, …, z,
// s26, s27, … — single letters first so small alphabets render in the
// paper's math notation.
func SymbolName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("s%d", i)
}

// RandomExpr generates a random expression with roughly cfg.MaxNodes nodes.
// The result is not normalized and usually nondeterministic; use
// RandomDeterministicExpr for deterministic corpora.
func RandomExpr(r *rand.Rand, alpha *ast.Alphabet, cfg ExprConfig) *ast.Node {
	if cfg.Symbols < 1 {
		cfg.Symbols = 1
	}
	if cfg.MaxNodes < 1 {
		cfg.MaxNodes = 1
	}
	if cfg.IterMax < 2 {
		cfg.IterMax = 4
	}
	budget := cfg.MaxNodes
	var gen func(depth int) *ast.Node
	gen = func(depth int) *ast.Node {
		budget--
		if budget <= 0 || depth > 40 {
			return ast.Sym(alpha.Intern(SymbolName(r.Intn(cfg.Symbols))))
		}
		roll := r.Intn(100)
		switch {
		case roll < 30:
			return ast.Sym(alpha.Intern(SymbolName(r.Intn(cfg.Symbols))))
		case roll < 55:
			return ast.Cat(gen(depth+1), gen(depth+1))
		case roll < 75:
			return ast.Union(gen(depth+1), gen(depth+1))
		case roll < 85:
			return ast.Opt(gen(depth + 1))
		case roll < 95 || !cfg.AllowIter:
			return ast.Star(gen(depth + 1))
		default:
			min := r.Intn(3)
			max := min + 1 + r.Intn(cfg.IterMax-1)
			if r.Intn(4) == 0 {
				max = ast.Unbounded
			}
			return ast.Iter(gen(depth+1), min, max)
		}
	}
	return gen(0)
}

// RandomDeterministicExpr generates a random expression that is guaranteed
// deterministic by construction: it first builds a random 1-ORE (each
// symbol used at most once — 1-OREs are always deterministic, §1 of the
// paper) over a random subset of the alphabet. With duplication enabled a
// limited number of symbols may be repeated in positions that keep the
// expression deterministic (separated by a fresh non-nullable separator on
// a concatenation spine).
func RandomDeterministicExpr(r *rand.Rand, alpha *ast.Alphabet, symbols, maxNodes int, duplicate bool) *ast.Node {
	if symbols < 1 {
		symbols = 1
	}
	perm := r.Perm(symbols)
	next := 0
	fresh := func() *ast.Node {
		if next >= len(perm) {
			return nil
		}
		s := alpha.Intern(SymbolName(perm[next]))
		next++
		return ast.Sym(s)
	}
	budget := maxNodes
	var gen func(depth int) *ast.Node
	gen = func(depth int) *ast.Node {
		budget--
		if budget <= 0 || depth > 30 || next >= len(perm)-1 {
			return fresh()
		}
		switch r.Intn(10) {
		case 0, 1, 2:
			return fresh()
		case 3, 4:
			l, rr := gen(depth+1), gen(depth+1)
			if l == nil || rr == nil {
				return first(l, rr)
			}
			return ast.Cat(l, rr)
		case 5, 6:
			l, rr := gen(depth+1), gen(depth+1)
			if l == nil || rr == nil {
				return first(l, rr)
			}
			return ast.Union(l, rr)
		case 7:
			l := gen(depth + 1)
			if l == nil {
				return nil
			}
			return ast.Opt(l)
		default:
			l := gen(depth + 1)
			if l == nil {
				return nil
			}
			return ast.Star(l)
		}
	}
	e := gen(0)
	if e == nil {
		e = ast.Sym(alpha.Intern(SymbolName(perm[0])))
	}
	// The recursion alone is near-critical and often stops early; keep
	// appending fresh-separated chunks until the node budget is spent, so
	// requested sizes are actually reached. A fresh separator keeps the
	// concatenation deterministic (the Glushkov automata are joined
	// through a single-occurrence symbol).
	for budget > 4 && next < len(perm)-2 {
		sep := fresh()
		chunk := gen(0)
		if sep == nil || chunk == nil {
			break
		}
		e = ast.CatAll(e, sep, chunk)
	}
	if duplicate {
		e2 := RandomDeterministicExpr(r, alpha, symbols, maxNodes/2, false)
		if sep := fresh(); sep != nil {
			e = ast.CatAll(e, sep, e2)
		}
	}
	return ast.Normalize(e)
}

func first(a, b *ast.Node) *ast.Node {
	if a != nil {
		return a
	}
	return b
}

// MixedContent returns the paper's running example E = (a1 + a2 + … + am)*
// (§1: "the quadratic behavior of building the Glushkov automaton is
// experienced even for very simple expressions such as E"). The union is
// built as a balanced tree so the parse tree stays shallow.
func MixedContent(alpha *ast.Alphabet, m int) *ast.Node {
	return ast.Star(balancedUnion(alpha, 0, m))
}

func balancedUnion(alpha *ast.Alphabet, lo, hi int) *ast.Node {
	if hi-lo == 1 {
		return ast.Sym(alpha.Intern(SymbolName(lo)))
	}
	mid := (lo + hi) / 2
	return ast.Union(balancedUnion(alpha, lo, mid), balancedUnion(alpha, mid, hi))
}

// KOccurrence builds a deterministic expression in which each of m symbols
// occurs exactly k times: a concatenation of k blocks, where block i is
// (a1 b_i1? a2 b_i2? … )-style sequence over the shared symbols separated
// by per-block fresh separators, keeping Glushkov determinism. The result
// exercises the k-ORE matcher with the advertised parameter.
func KOccurrence(alpha *ast.Alphabet, m, k int) *ast.Node {
	if m < 1 || k < 1 {
		panic("wordgen.KOccurrence: m and k must be positive")
	}
	blocks := make([]*ast.Node, 0, k)
	for b := 0; b < k; b++ {
		seq := make([]*ast.Node, 0, m+1)
		// Per-block separator guarantees determinism across blocks.
		seq = append(seq, ast.Sym(alpha.Intern(fmt.Sprintf("sep%d", b))))
		for i := 0; i < m; i++ {
			seq = append(seq, ast.Opt(ast.Sym(alpha.Intern(SymbolName(i)))))
		}
		blocks = append(blocks, ast.CatAll(seq...))
	}
	return ast.CatAll(blocks...)
}

// DeepAlternation builds a deterministic expression whose +/⊙ alternation
// depth grows linearly with d (≈ 2d−1) and whose size is Θ(width^d)
// positions for width > 1 — use small widths for deep towers:
//
//	d=1:  a1 a2 … aw
//	d+1:  (E_d + f1) g1 (E_d' + f2) g2 …
//
// Fresh symbols keep it deterministic; it drives experiment E4.
func DeepAlternation(alpha *ast.Alphabet, depth, width int) *ast.Node {
	ctr := 0
	fresh := func() *ast.Node {
		s := alpha.Intern(fmt.Sprintf("x%d", ctr))
		ctr++
		return ast.Sym(s)
	}
	var build func(d int) *ast.Node
	build = func(d int) *ast.Node {
		if d <= 1 {
			parts := make([]*ast.Node, 0, width)
			for i := 0; i < width; i++ {
				parts = append(parts, fresh())
			}
			return ast.CatAll(parts...)
		}
		parts := make([]*ast.Node, 0, 2*width)
		for i := 0; i < width; i++ {
			parts = append(parts, ast.Union(build(d-1), fresh()))
			parts = append(parts, fresh())
		}
		return ast.CatAll(parts...)
	}
	return build(depth)
}

// CHARE builds a random chain regular expression (Bex et al.; §1 related
// work): a sequence of factors (a1+…+an) each optionally extended with *,
// ? or +, using each symbol at most once — hence deterministic.
func CHARE(r *rand.Rand, alpha *ast.Alphabet, factors, maxFactorWidth int) *ast.Node {
	ctr := 0
	fresh := func() *ast.Node {
		s := alpha.Intern(fmt.Sprintf("c%d", ctr))
		ctr++
		return ast.Sym(s)
	}
	seq := make([]*ast.Node, 0, factors)
	for i := 0; i < factors; i++ {
		w := 1 + r.Intn(maxFactorWidth)
		alts := make([]*ast.Node, 0, w)
		for j := 0; j < w; j++ {
			alts = append(alts, fresh())
		}
		f := ast.UnionAll(alts...)
		switch r.Intn(4) {
		case 0:
			f = ast.Star(f)
		case 1:
			f = ast.Opt(f)
		case 2:
			f = ast.Iter(f, 1, ast.Unbounded) // the DTD "+" postfix
		}
		seq = append(seq, f)
	}
	return ast.CatAll(seq...)
}

// StarFree builds a random deterministic star-free expression (experiment
// E6): a 1-ORE built from cat/union/opt only.
func StarFree(r *rand.Rand, alpha *ast.Alphabet, symbols, maxNodes int) *ast.Node {
	perm := r.Perm(symbols)
	next := 0
	fresh := func() *ast.Node {
		if next >= len(perm) {
			return nil
		}
		s := alpha.Intern(SymbolName(perm[next]))
		next++
		return ast.Sym(s)
	}
	budget := maxNodes
	var gen func(depth int) *ast.Node
	gen = func(depth int) *ast.Node {
		budget--
		if budget <= 0 || depth > 30 {
			return fresh()
		}
		switch r.Intn(8) {
		case 0, 1:
			return fresh()
		case 2, 3, 4:
			l, rr := gen(depth+1), gen(depth+1)
			if l == nil || rr == nil {
				return first(l, rr)
			}
			return ast.Cat(l, rr)
		case 5, 6:
			l, rr := gen(depth+1), gen(depth+1)
			if l == nil || rr == nil {
				return first(l, rr)
			}
			return ast.Union(l, rr)
		default:
			l := gen(depth + 1)
			if l == nil {
				return nil
			}
			return ast.Opt(l)
		}
	}
	e := gen(0)
	if e == nil {
		e = ast.Sym(alpha.Intern(SymbolName(perm[0])))
	}
	return ast.Normalize(e)
}

// OptChainDTD renders the DTD source of a star-free chain of n distinct
// optional names — (a0?, a1?, …) — with positions = sigma = n. The shape
// sizes precisely: a dense transition table for it needs exactly (n+2)²
// entries, which lets tests place expressions on either side of the
// table-budget cutoff.
func OptChainDTD(n int) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "a%d?", i)
	}
	b.WriteByte(')')
	return b.String()
}
