package ast

import (
	"strings"
	"testing"
)

func TestParseMathBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // re-rendered math form
	}{
		{"a", "a"},
		{"ab", "ab"},
		{"a b", "ab"},
		{"a+b", "a+b"},
		{"(a+b)c", "(a+b)c"},
		{"a+bc", "a+bc"},
		{"(ab+b(b?)a)*", "(ab+bb?a)*"},
		{"(a*ba+bb)*", "(a*ba+bb)*"},
		{"a?", "a?"},
		{"a??", "a??"},
		{"a{2,3}", "a{2,3}"},
		{"a{2}", "a{2}"},
		{"a{2,}", "a{2,}"},
		{"(a{2,3}+b){2}b", "(a{2,3}+b){2}b"},
	}
	for _, c := range cases {
		alpha := NewAlphabet()
		e, err := ParseMath(c.in, alpha)
		if err != nil {
			t.Fatalf("ParseMath(%q): %v", c.in, err)
		}
		if got := StringMath(e, alpha); got != c.want {
			t.Errorf("ParseMath(%q) rendered %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseMathErrors(t *testing.T) {
	bad := []string{
		"", "(", ")", "a+", "+a", "a)", "(a", "a{", "a{2", "a{3,2}", "a{0,0}",
		"#", "$", "a#", "*", "a**b(",
	}
	for _, in := range bad {
		alpha := NewAlphabet()
		if _, err := ParseMath(in, alpha); err == nil {
			t.Errorf("ParseMath(%q): expected error", in)
		}
	}
}

func TestParseDTDBasics(t *testing.T) {
	cases := []struct{ in, want string }{
		{"title", "title"},
		{"title,body", "title,body"},
		{"(title , body)", "title,body"},
		{"(a|b)*,c?", "(a|b)*,c?"},
		{"(title, author+, (section | appendix)*)", "title,author+,(section|appendix)*"},
		{"chapter{2,4}", "chapter{2,4}"},
		{"x+", "x+"},
	}
	for _, c := range cases {
		alpha := NewAlphabet()
		e, err := ParseDTD(c.in, alpha)
		if err != nil {
			t.Fatalf("ParseDTD(%q): %v", c.in, err)
		}
		if got := StringDTD(e, alpha); got != c.want {
			t.Errorf("ParseDTD(%q) rendered %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseDTDErrors(t *testing.T) {
	bad := []string{"", "a,", ",a", "a|", "(a", "a)", "a{1,0}", "#PCDATA", "a b"}
	for _, in := range bad {
		alpha := NewAlphabet()
		if _, err := ParseDTD(in, alpha); err == nil {
			t.Errorf("ParseDTD(%q): expected error", in)
		}
	}
}

func TestRoundTripMath(t *testing.T) {
	exprs := []string{
		"a", "ab", "a+b", "(a+b)*", "a?b*c", "((a+b)c?)*d",
		"(ab+b(b?)a)*", "(a*ba+bb)*", "(c?((ab*)(a?c)))*(ba)",
	}
	for _, in := range exprs {
		alpha := NewAlphabet()
		e := MustParseMath(in, alpha)
		out := StringMath(e, alpha)
		e2, err := ParseMath(out, alpha)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", out, in, err)
		}
		if !Equal(e, e2) {
			t.Errorf("round trip changed %q -> %q", in, out)
		}
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"a", false},
		{"a?", true},
		{"a*", true},
		{"ab", false},
		{"a?b", false},
		{"a?b?", true},
		{"a+b", false},
		{"a?+b", true},
		{"a{0,2}", true},
		{"a{1,2}", false},
		{"(a?){2}", true},
	}
	for _, c := range cases {
		alpha := NewAlphabet()
		e := MustParseMath(c.in, alpha)
		if got := Nullable(e); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a", "a"},
		{"(a*)*", "a*"},
		{"((a*)*)*", "a*"},
		{"(a?)?", "a?"},
		{"(a*)?", "a*"},
		{"(a?b?)?", "a?b?"},
		{"(a?)*", "a?*"}, // allowed by (R2)/(R3); kept as written
		{"a{1,1}", "a"},
		{"a{0,}", "a*"},
		{"a{0,1}", "a?"},
		{"a{0,3}", "a{1,3}?"},
		{"(a?){2,3}", "a?{1,3}"}, // nullable body: lower bound drops to 1
		{"(a*){2,}", "a*"},       // (a*){2,∞} ≡ a*
	}
	for _, c := range cases {
		alpha := NewAlphabet()
		e := Normalize(MustParseMath(c.in, alpha))
		if got := StringMath(e, alpha); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeInvariants(t *testing.T) {
	exprs := []string{
		"((a*)*)?", "((a?)?)*", "(a?b?)?c", "((a+b?)?)*", "(a{0,2})?",
		"(a{2,2}b)*", "((a*)*(b?)?)?",
	}
	for _, in := range exprs {
		alpha := NewAlphabet()
		orig := MustParseMath(in, alpha)
		e := Normalize(orig)
		Walk(e, func(n *Node) {
			switch n.Kind {
			case KStar:
				if n.L.Kind == KStar {
					t.Errorf("Normalize(%q): (R2) violated: star under star", in)
				}
			case KOpt:
				if Nullable(n.L) {
					t.Errorf("Normalize(%q): (R3) violated: nullable under ?", in)
				}
			case KIter:
				if n.Min < 1 || n.Max < 2 {
					t.Errorf("Normalize(%q): iter bounds {%d,%d} not normalized", in, n.Min, n.Max)
				}
			}
		})
		if Nullable(orig) != Nullable(e) {
			t.Errorf("Normalize(%q) changed nullability", in)
		}
	}
}

func TestDesugarPlus(t *testing.T) {
	alpha := NewAlphabet()
	e := MustParseDTD("a+", alpha)
	d := DesugarPlus(e)
	if got := StringDTD(d, alpha); got != "a,a*" {
		t.Errorf("DesugarPlus(a+) = %q, want %q", got, "a,a*")
	}
	// Nullable body degenerates to a star.
	e2 := MustParseDTD("(a?)+", alpha)
	d2 := DesugarPlus(e2)
	if got := StringDTD(d2, alpha); got != "a?*" {
		t.Errorf("DesugarPlus((a?)+) = %q, want %q", got, "a?*")
	}
}

func TestUnroll(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a{2}", "aa"},
		{"a{2,4}", "aa(a(a)?)?"},
		{"a{1,}", "aa*"},
		{"a{0,2}", "(aa?)?"}, // optional copies nest innermost-first
		{"(ab){2,3}", "ab(ab)(ab)?"},
	}
	for _, c := range cases {
		alpha := NewAlphabet()
		e := MustParseMath(c.in, alpha)
		u, err := Unroll(e, 100)
		if err != nil {
			t.Fatalf("Unroll(%q): %v", c.in, err)
		}
		// Compare up to parenthesization by re-parsing the expected form.
		want := MustParseMath(c.want, alpha)
		if !Equal(u, want) {
			t.Errorf("Unroll(%q) = %q, want %q", c.in, StringMath(u, alpha), c.want)
		}
	}
	alpha := NewAlphabet()
	e := MustParseMath("a{100}", alpha)
	if _, err := Unroll(e, 10); err != ErrUnrollTooLarge {
		t.Errorf("Unroll(a{100}, 10): got %v, want ErrUnrollTooLarge", err)
	}
}

func TestMetrics(t *testing.T) {
	alpha := NewAlphabet()
	e := MustParseMath("(ab+b(b?)a)*", alpha)
	if got := CountPositions(e); got != 5 {
		t.Errorf("CountPositions = %d, want 5", got)
	}
	if got := MaxOccurrence(e); got != 3 {
		t.Errorf("MaxOccurrence = %d, want 3", got)
	}
	if !HasStar(e) {
		t.Error("HasStar = false, want true")
	}
	if HasIter(e) {
		t.Error("HasIter = true, want false")
	}

	cases := []struct {
		in   string
		want int
	}{
		{"a", 0},
		{"ab", 1},
		{"abc", 1},
		{"a+b", 1},
		{"a+b+c", 1},
		{"(a+b)c", 2},
		{"((a+b)c+d)e", 4},
		{"((ab)(cd))((ef)(gh))", 1},
		{"(a+b)(c+d)", 2},
	}
	for _, c := range cases {
		alpha := NewAlphabet()
		e := MustParseMath(c.in, alpha)
		if got := AlternationDepth(e); got != c.want {
			t.Errorf("AlternationDepth(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAlphabet(t *testing.T) {
	a := NewAlphabet()
	x := a.Intern("x")
	y := a.Intern("y")
	if x == y {
		t.Fatal("distinct names interned to same id")
	}
	if got := a.Intern("x"); got != x {
		t.Error("re-interning returned a different id")
	}
	if a.Name(Begin) != BeginName || a.Name(End) != EndName {
		t.Error("phantom marker names wrong")
	}
	if a.UserSize() != 2 {
		t.Errorf("UserSize = %d, want 2", a.UserSize())
	}
	if got := strings.Join(a.Names(), ","); got != "x,y" {
		t.Errorf("Names = %q", got)
	}
	if _, ok := a.Lookup("z"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestCloneAndEqual(t *testing.T) {
	alpha := NewAlphabet()
	e := MustParseMath("(a+b)*c{2,3}", alpha)
	c := Clone(e)
	if !Equal(e, c) {
		t.Fatal("clone not equal to original")
	}
	c.L.Kind = KCat // mutate clone
	if Equal(e, c) {
		t.Fatal("mutated clone still equal")
	}
}

func TestAlphabetWordHelpers(t *testing.T) {
	a := NewAlphabet()
	word := a.InternWord([]string{"title", "author", "title", "x"})
	if len(word) != 4 || word[0] != word[2] || word[0] == word[1] {
		t.Fatalf("InternWord ids wrong: %v", word)
	}
	if word[0] < FirstUser {
		t.Fatalf("user symbol below FirstUser: %v", word[0])
	}
	// LookupWord resolves known names to the same ids and unknown names
	// to None, without interning them.
	size := a.Size()
	got := a.LookupWord(nil, []string{"author", "ghost", "x"})
	if got[0] != word[1] || got[1] != None || got[2] != word[3] {
		t.Fatalf("LookupWord = %v, want [%v None %v]", got, word[1], word[3])
	}
	if a.Size() != size {
		t.Fatal("LookupWord mutated the alphabet")
	}
	// LookupWord appends into the provided buffer.
	buf := make([]Symbol, 0, 8)
	buf = a.LookupWord(buf, []string{"title"})
	buf = a.LookupWord(buf, []string{"x"})
	if len(buf) != 2 || buf[0] != word[0] || buf[1] != word[3] {
		t.Fatalf("LookupWord append = %v", buf)
	}
	// LookupRune agrees with Lookup on single-rune names (ASCII fast
	// path and the map path), including the reserved markers.
	a.Intern("π")
	for _, r := range []rune{'x', 'π', '#', '$', 'q'} {
		id1, ok1 := a.LookupRune(r)
		id2, ok2 := a.Lookup(string(r))
		if ok1 != ok2 || (ok1 && id1 != id2) {
			t.Errorf("LookupRune(%q) = (%v,%v), Lookup = (%v,%v)", r, id1, ok1, id2, ok2)
		}
	}
}
