package ast

import "fmt"

// Symbol is a dense interned identifier for an alphabet symbol. The two
// phantom markers required by rule (R1) of the paper — # at the beginning
// and $ at the end of every expression — occupy the first two ids so that
// every compiled expression shares their encoding.
type Symbol int32

// Reserved symbols. Begin is the phantom symbol # and End is the phantom
// symbol $ of rule (R1); user symbols start at FirstUser.
const (
	Begin Symbol = 0
	End   Symbol = 1
	// FirstUser is the first id handed out for a user symbol.
	FirstUser Symbol = 2
)

// BeginName and EndName are the display names of the phantom markers.
const (
	BeginName = "#"
	EndName   = "$"
)

// Alphabet interns symbol names to dense Symbol ids. The zero value is not
// usable; call NewAlphabet.
type Alphabet struct {
	names []string
	ids   map[string]Symbol
}

// NewAlphabet returns an empty alphabet with the phantom markers # and $
// pre-interned.
func NewAlphabet() *Alphabet {
	a := &Alphabet{
		names: []string{BeginName, EndName},
		ids:   map[string]Symbol{BeginName: Begin, EndName: End},
	}
	return a
}

// Intern returns the id for name, allocating a fresh one on first use.
func (a *Alphabet) Intern(name string) Symbol {
	if id, ok := a.ids[name]; ok {
		return id
	}
	id := Symbol(len(a.names))
	a.names = append(a.names, name)
	a.ids[name] = id
	return id
}

// Lookup returns the id for name and whether it has been interned.
func (a *Alphabet) Lookup(name string) (Symbol, bool) {
	id, ok := a.ids[name]
	return id, ok
}

// Name returns the display name of s. It panics if s was never interned.
func (a *Alphabet) Name(s Symbol) string {
	if int(s) < 0 || int(s) >= len(a.names) {
		panic(fmt.Sprintf("ast.Alphabet.Name: unknown symbol %d", s))
	}
	return a.names[s]
}

// Size returns the number of interned symbols including # and $.
func (a *Alphabet) Size() int { return len(a.names) }

// UserSize returns σ, the number of distinct user symbols.
func (a *Alphabet) UserSize() int { return len(a.names) - 2 }

// Names returns the display names of all user symbols in id order.
func (a *Alphabet) Names() []string {
	out := make([]string, 0, a.UserSize())
	for _, n := range a.names[FirstUser:] {
		out = append(out, n)
	}
	return out
}
