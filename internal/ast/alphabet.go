package ast

import "fmt"

// Symbol is a dense interned identifier for an alphabet symbol. The two
// phantom markers required by rule (R1) of the paper — # at the beginning
// and $ at the end of every expression — occupy the first two ids so that
// every compiled expression shares their encoding.
type Symbol int32

// Reserved symbols. Begin is the phantom symbol # and End is the phantom
// symbol $ of rule (R1); user symbols start at FirstUser.
const (
	Begin Symbol = 0
	End   Symbol = 1
	// FirstUser is the first id handed out for a user symbol.
	FirstUser Symbol = 2
	// None marks a name outside the alphabet. Every matcher rejects it, so
	// words can be interned against a sealed alphabet without mutating it.
	None Symbol = -1
)

// BeginName and EndName are the display names of the phantom markers.
const (
	BeginName = "#"
	EndName   = "$"
)

// Alphabet interns symbol names to dense Symbol ids. The zero value is not
// usable; call NewAlphabet. Interning mutates the alphabet and must finish
// before it is shared; Lookup* methods are read-only and safe for
// concurrent use afterwards.
type Alphabet struct {
	names []string
	ids   map[string]Symbol
	// ascii caches single-ASCII-rune names so math-notation matching needs
	// neither a string conversion nor a map probe per symbol.
	ascii [128]Symbol
}

// NewAlphabet returns an empty alphabet with the phantom markers # and $
// pre-interned.
func NewAlphabet() *Alphabet {
	a := &Alphabet{
		names: []string{BeginName, EndName},
		ids:   map[string]Symbol{BeginName: Begin, EndName: End},
	}
	for i := range a.ascii {
		a.ascii[i] = None
	}
	a.ascii['#'] = Begin
	a.ascii['$'] = End
	return a
}

// Intern returns the id for name, allocating a fresh one on first use.
func (a *Alphabet) Intern(name string) Symbol {
	if id, ok := a.ids[name]; ok {
		return id
	}
	id := Symbol(len(a.names))
	a.names = append(a.names, name)
	a.ids[name] = id
	if len(name) == 1 && name[0] < 128 {
		a.ascii[name[0]] = id
	}
	return id
}

// InternWord interns every name of a word, in order. It is the setup-time
// counterpart of LookupWord: use it while building an alphabet, not on the
// sealed alphabet of a compiled expression.
func (a *Alphabet) InternWord(names []string) []Symbol {
	word := make([]Symbol, len(names))
	for i, n := range names {
		word[i] = a.Intern(n)
	}
	return word
}

// Lookup returns the id for name and whether it has been interned.
func (a *Alphabet) Lookup(name string) (Symbol, bool) {
	id, ok := a.ids[name]
	return id, ok
}

// LookupBytes returns the id for a name given as raw bytes (an element
// name straight out of a document tokenizer) and whether it has been
// interned. The string conversion in the map probe does not allocate.
func (a *Alphabet) LookupBytes(name []byte) (Symbol, bool) {
	id, ok := a.ids[string(name)]
	return id, ok
}

// LookupRune returns the id of a single-rune name without allocating.
func (a *Alphabet) LookupRune(r rune) (Symbol, bool) {
	if r >= 0 && r < 128 {
		id := a.ascii[r]
		return id, id != None
	}
	id, ok := a.ids[string(r)]
	return id, ok
}

// LookupWord appends the ids of a word of names to dst and returns the
// extended slice; names outside the alphabet map to None (which every
// matcher rejects). It never interns, so it is safe on shared alphabets,
// and it performs no allocation when dst has sufficient capacity.
func (a *Alphabet) LookupWord(dst []Symbol, names []string) []Symbol {
	for _, n := range names {
		id, ok := a.ids[n]
		if !ok {
			id = None
		}
		dst = append(dst, id)
	}
	return dst
}

// Name returns the display name of s. It panics if s was never interned.
func (a *Alphabet) Name(s Symbol) string {
	if int(s) < 0 || int(s) >= len(a.names) {
		panic(fmt.Sprintf("ast.Alphabet.Name: unknown symbol %d", s))
	}
	return a.names[s]
}

// Size returns the number of interned symbols including # and $.
func (a *Alphabet) Size() int { return len(a.names) }

// UserSize returns σ, the number of distinct user symbols.
func (a *Alphabet) UserSize() int { return len(a.names) - 2 }

// Names returns the display names of all user symbols in id order.
func (a *Alphabet) Names() []string {
	out := make([]string, 0, a.UserSize())
	for _, n := range a.names[FirstUser:] {
		out = append(out, n)
	}
	return out
}
