package ast

import (
	"errors"
	"fmt"
)

// Normalize enforces the paper's structural requirements (R2) and (R3) by
// language-preserving rewrites:
//
//	(R2)  ((e)*)*  never appears:      Star(Star(x)) → Star(x)
//	(R3)  (e)? only for ε ∉ L(e):      Opt(x) with Nullable(x) → x
//
// (R1), the #…$ wrapping, is applied when the expression is compiled into a
// parse tree (package parsetree), not here. Numeric iterations are left in
// place but their bodies are normalized; additionally the degenerate bounds
// e{1,1} → e, e{0,∞} → e*, and e{0,j} → (e{1,j})? are rewritten, so that
// after Normalize every remaining KIter node has Min ≥ 1 and Max ≥ 2.
//
// Normalize never mutates its argument; it returns a fresh tree (sharing no
// nodes with the input).
func Normalize(e *Node) *Node {
	switch e.Kind {
	case KSym:
		return Sym(e.Sym)
	case KCat:
		return Cat(Normalize(e.L), Normalize(e.R))
	case KUnion:
		return Union(Normalize(e.L), Normalize(e.R))
	case KOpt:
		l := Normalize(e.L)
		if Nullable(l) {
			return l // (R3)
		}
		return Opt(l)
	case KStar:
		l := Normalize(e.L)
		if l.Kind == KStar {
			return l // (R2)
		}
		return Star(l)
	case KIter:
		l := Normalize(e.L)
		min, max := e.Min, e.Max
		if Nullable(l) && min > 0 {
			// ε ∈ L(body) makes every lower bound reachable by padding
			// empty iterations: L(x{i,j}) = L(x{0,j}).
			min = 0
		}
		switch {
		case min == 1 && max == 1:
			return l
		case min == 0 && max == Unbounded:
			if l.Kind == KStar {
				return l
			}
			return Star(l)
		case min == 0 && max == 1:
			if Nullable(l) {
				return l
			}
			return Opt(l)
		case min == 0:
			inner := Iter(l, 1, max)
			if Nullable(l) {
				return inner
			}
			return Opt(inner)
		default:
			return Iter(l, min, max)
		}
	}
	panic("ast.Normalize: bad kind")
}

// DesugarPlus rewrites every remaining one-or-more iteration e{1,∞} into the
// plain-operator form e·(e)* (or e* when the body is nullable). This doubles
// the positions of the body, which is exactly the classical desugaring; the
// Glushkov follow relation — and hence determinism — of the two forms
// coincide. Other numeric iterations are left untouched (package numeric
// handles them natively). The input is not mutated.
func DesugarPlus(e *Node) *Node {
	switch e.Kind {
	case KSym:
		return Sym(e.Sym)
	case KCat:
		return Cat(DesugarPlus(e.L), DesugarPlus(e.R))
	case KUnion:
		return Union(DesugarPlus(e.L), DesugarPlus(e.R))
	case KOpt:
		return Opt(DesugarPlus(e.L))
	case KStar:
		return Star(DesugarPlus(e.L))
	case KIter:
		l := DesugarPlus(e.L)
		if e.Min == 1 && e.Max == Unbounded {
			if Nullable(l) {
				return Star(l)
			}
			return Cat(l, Star(Clone(l)))
		}
		return Iter(l, e.Min, e.Max)
	}
	panic("ast.DesugarPlus: bad kind")
}

// ErrUnrollTooLarge is returned by Unroll when the expansion would exceed
// the position budget.
var ErrUnrollTooLarge = errors.New("ast: unrolled expression exceeds position budget")

// Unroll expands every numeric iteration into plain operators using the
// canonical unrolling
//
//	x{i,j} = x·x·…·x (i copies) · ( x ( x ( … )? )? )?   (j−i optional copies)
//	x{i,∞} = x·x·…·x (i copies) · (x)*
//
// This is the language-preserving expansion used as the determinism *spec*
// for numeric occurrence indicators (see DESIGN.md §4.4). maxPositions
// bounds the size of the result; ErrUnrollTooLarge is returned when the
// expansion would exceed it.
func Unroll(e *Node, maxPositions int) (*Node, error) {
	budget := maxPositions
	var rec func(n *Node) (*Node, error)
	rec = func(n *Node) (*Node, error) {
		switch n.Kind {
		case KSym:
			budget--
			if budget < 0 {
				return nil, ErrUnrollTooLarge
			}
			return Sym(n.Sym), nil
		case KCat:
			l, err := rec(n.L)
			if err != nil {
				return nil, err
			}
			r, err := rec(n.R)
			if err != nil {
				return nil, err
			}
			return Cat(l, r), nil
		case KUnion:
			l, err := rec(n.L)
			if err != nil {
				return nil, err
			}
			r, err := rec(n.R)
			if err != nil {
				return nil, err
			}
			return Union(l, r), nil
		case KOpt:
			l, err := rec(n.L)
			if err != nil {
				return nil, err
			}
			return Opt(l), nil
		case KStar:
			l, err := rec(n.L)
			if err != nil {
				return nil, err
			}
			return Star(l), nil
		case KIter:
			var parts []*Node
			for i := 0; i < n.Min; i++ {
				c, err := rec(n.L)
				if err != nil {
					return nil, err
				}
				parts = append(parts, c)
			}
			var tail *Node
			if n.Max == Unbounded {
				c, err := rec(n.L)
				if err != nil {
					return nil, err
				}
				tail = Star(c)
			} else if extra := n.Max - n.Min; extra > 0 {
				// Innermost-first nesting of optional copies.
				for i := 0; i < extra; i++ {
					c, err := rec(n.L)
					if err != nil {
						return nil, err
					}
					if tail == nil {
						tail = optIfNeeded(c)
					} else {
						tail = optIfNeeded(Cat(c, tail))
					}
				}
			}
			if tail != nil {
				parts = append(parts, tail)
			}
			if len(parts) == 0 {
				return nil, fmt.Errorf("ast: cannot unroll %s{0,0}", n.L.Kind)
			}
			return CatAll(parts...), nil
		}
		panic("ast.Unroll: bad kind")
	}
	return rec(e)
}

// optIfNeeded wraps e in ? unless it is already nullable (keeping the
// result (R3)-clean).
func optIfNeeded(e *Node) *Node {
	if Nullable(e) {
		return e
	}
	return Opt(e)
}

// ValidatePlain returns an error if e contains operators outside the
// paper's core grammar (i.e. any remaining numeric iteration).
func ValidatePlain(e *Node) error {
	var bad *Node
	Walk(e, func(n *Node) {
		if bad == nil && n.Kind == KIter {
			bad = n
		}
	})
	if bad != nil {
		return fmt.Errorf("ast: numeric iteration {%d,%s} requires the numeric pipeline (dregex.CompileNumeric) or Unroll",
			bad.Min, boundString(bad.Max))
	}
	return nil
}

func boundString(max int) string {
	if max == Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d", max)
}
