// Package ast defines the abstract syntax of regular expressions as used in
// "Deterministic Regular Expressions in Linear Time" (Groz, Maneth, Staworko;
// PODS 2012), together with parsers for two concrete syntaxes (the paper's
// mathematical notation and XML-DTD content-model notation), the normalizer
// that enforces the paper's structural requirements (R1)–(R3), and basic
// structural metrics (size, star-freeness, plus-alternation depth).
//
// The grammar (paper §2) is
//
//	e := a (a ∈ Σ) | (e)·(e) | (e)+(e) | (e)? | (e)*
//
// extended with numeric occurrence indicators e{i..j} (paper §3.3) which are
// handled by package numeric; the core algorithms operate on the plain
// operator set.
package ast

import (
	"fmt"
	"math"
)

// Kind identifies the operator at an AST node.
type Kind uint8

// Operator kinds. KSym is a leaf (a position, once compiled); KCat is
// concatenation, KUnion is union (written + in the paper), KOpt is ?,
// KStar is the Kleene star, and KIter is a numeric occurrence indicator
// e{Min..Max} (Max = Unbounded for ∞).
const (
	KSym Kind = iota
	KCat
	KUnion
	KOpt
	KStar
	KIter
)

// Unbounded is the Max value of a KIter node representing e{i..∞}.
const Unbounded = math.MaxInt32

func (k Kind) String() string {
	switch k {
	case KSym:
		return "sym"
	case KCat:
		return "cat"
	case KUnion:
		return "union"
	case KOpt:
		return "opt"
	case KStar:
		return "star"
	case KIter:
		return "iter"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Node is a node of the expression parse tree. Leaves (Kind KSym) carry the
// interned symbol; unary nodes (KOpt, KStar, KIter) use L only; binary nodes
// (KCat, KUnion) use both L and R. KIter additionally carries Min and Max.
type Node struct {
	Kind Kind
	Sym  Symbol // valid when Kind == KSym
	Min  int    // valid when Kind == KIter
	Max  int    // valid when Kind == KIter; Unbounded means ∞
	L, R *Node
}

// Sym returns a new symbol leaf.
func Sym(s Symbol) *Node { return &Node{Kind: KSym, Sym: s} }

// Cat returns the concatenation l·r.
func Cat(l, r *Node) *Node { return &Node{Kind: KCat, L: l, R: r} }

// Union returns the union l+r.
func Union(l, r *Node) *Node { return &Node{Kind: KUnion, L: l, R: r} }

// Opt returns e?.
func Opt(e *Node) *Node { return &Node{Kind: KOpt, L: e} }

// Star returns e*.
func Star(e *Node) *Node { return &Node{Kind: KStar, L: e} }

// Iter returns the numeric occurrence indicator e{min..max}.
func Iter(e *Node, min, max int) *Node {
	return &Node{Kind: KIter, Min: min, Max: max, L: e}
}

// CatAll concatenates the given expressions left-associatively.
// It panics on an empty argument list.
func CatAll(es ...*Node) *Node {
	if len(es) == 0 {
		panic("ast.CatAll: empty")
	}
	n := es[0]
	for _, e := range es[1:] {
		n = Cat(n, e)
	}
	return n
}

// UnionAll unions the given expressions left-associatively.
// It panics on an empty argument list.
func UnionAll(es ...*Node) *Node {
	if len(es) == 0 {
		panic("ast.UnionAll: empty")
	}
	n := es[0]
	for _, e := range es[1:] {
		n = Union(n, e)
	}
	return n
}

// Nullable reports whether ε ∈ L(e).
func Nullable(e *Node) bool {
	switch e.Kind {
	case KSym:
		return false
	case KCat:
		return Nullable(e.L) && Nullable(e.R)
	case KUnion:
		return Nullable(e.L) || Nullable(e.R)
	case KOpt, KStar:
		return true
	case KIter:
		return e.Min == 0 || Nullable(e.L)
	}
	panic("ast.Nullable: bad kind")
}

// Size returns the number of nodes of e.
func Size(e *Node) int {
	if e == nil {
		return 0
	}
	n := 1 + Size(e.L)
	if e.R != nil {
		n += Size(e.R)
	}
	return n
}

// CountPositions returns |Pos(e)|, the number of symbol leaves.
func CountPositions(e *Node) int {
	if e == nil {
		return 0
	}
	if e.Kind == KSym {
		return 1
	}
	return CountPositions(e.L) + CountPositions(e.R)
}

// HasStar reports whether e contains a Kleene star (or an unbounded or
// loopable numeric iteration, which behaves like one for matching purposes).
func HasStar(e *Node) bool {
	if e == nil {
		return false
	}
	if e.Kind == KStar || (e.Kind == KIter && e.Max > 1) {
		return true
	}
	return HasStar(e.L) || HasStar(e.R)
}

// HasIter reports whether e contains a numeric occurrence indicator.
func HasIter(e *Node) bool {
	if e == nil {
		return false
	}
	if e.Kind == KIter {
		return true
	}
	return HasIter(e.L) || HasIter(e.R)
}

// MaxOccurrence returns the largest number of occurrences of any single
// symbol in e, i.e. the smallest k such that e is a k-ORE.
func MaxOccurrence(e *Node) int {
	counts := map[Symbol]int{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == KSym {
			counts[n.Sym]++
			return
		}
		walk(n.L)
		walk(n.R)
	}
	walk(e)
	k := 0
	for _, c := range counts {
		if c > k {
			k = c
		}
	}
	return k
}

// AlternationDepth returns c_e, the maximal depth of alternating union and
// concatenation operators on any root-to-leaf path of e (paper §4.3). A
// union directly below a union (or a concatenation directly below a
// concatenation) does not increase the depth; ?, * and {i..j} are
// transparent.
func AlternationDepth(e *Node) int {
	var rec func(n *Node, last Kind, d int) int
	rec = func(n *Node, last Kind, d int) int {
		if n == nil {
			return d
		}
		nd := d
		nl := last
		if n.Kind == KCat || n.Kind == KUnion {
			if n.Kind != last {
				nd++
				nl = n.Kind
			}
		}
		best := nd
		if l := rec(n.L, nl, nd); l > best {
			best = l
		}
		if r := rec(n.R, nl, nd); r > best {
			best = r
		}
		return best
	}
	return rec(e, KSym, 0)
}

// Walk calls f for every node of e in preorder.
func Walk(e *Node, f func(*Node)) {
	if e == nil {
		return
	}
	f(e)
	Walk(e.L, f)
	Walk(e.R, f)
}

// Clone returns a deep copy of e.
func Clone(e *Node) *Node {
	if e == nil {
		return nil
	}
	c := *e
	c.L = Clone(e.L)
	c.R = Clone(e.R)
	return &c
}

// Equal reports structural equality of two expressions.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Sym != b.Sym || a.Min != b.Min || a.Max != b.Max {
		return false
	}
	return Equal(a.L, b.L) && Equal(a.R, b.R)
}
