package ast

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Input  string
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("parse %q at offset %d: %s", e.Input, e.Offset, e.Msg)
}

// ParseMath parses the paper's mathematical notation, in which every
// letter or digit is a single-character symbol, juxtaposition denotes
// concatenation, + denotes union, and *, ? and {i,j} are postfix. Examples:
//
//	(ab+b(b?)a)*        (a*ba+bb)*       (a{2,3}+b){2}b
//
// Whitespace is ignored. Symbols are interned into alpha.
func ParseMath(input string, alpha *Alphabet) (*Node, error) {
	p := &parser{input: input, alpha: alpha, math: true}
	return p.parseTop()
}

// ParseDTD parses XML-DTD content-model notation: multi-character names,
// ',' for concatenation, '|' for union, postfix *, ?, + and the XML-Schema
// style {i,j}. Examples:
//
//	(title, author+, (section | appendix)*)
//	(a | b)*, c?
//
// Whitespace is ignored. Names are interned into alpha. The one-or-more
// postfix e+ is represented as the numeric iteration e{1,∞}; Normalize (or
// DesugarPlus) rewrites it for the plain-operator pipeline.
func ParseDTD(input string, alpha *Alphabet) (*Node, error) {
	p := &parser{input: input, alpha: alpha, math: false}
	return p.parseTop()
}

type parser struct {
	input string
	pos   int
	alpha *Alphabet
	math  bool
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Input: p.input, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) {
		r, w := utf8.DecodeRuneInString(p.input[p.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		p.pos += w
	}
}

func (p *parser) peek() rune {
	if p.pos >= len(p.input) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(p.input[p.pos:])
	return r
}

func (p *parser) advance() rune {
	r, w := utf8.DecodeRuneInString(p.input[p.pos:])
	p.pos += w
	return r
}

func (p *parser) parseTop() (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, p.errf("empty expression")
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, p.errf("unexpected %q", p.peek())
	}
	return e, nil
}

func (p *parser) unionRune() rune {
	if p.math {
		return '+'
	}
	return '|'
}

func (p *parser) parseUnion() (*Node, error) {
	e, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != p.unionRune() {
			return e, nil
		}
		p.advance()
		r, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		e = Union(e, r)
	}
}

func (p *parser) parseCat() (*Node, error) {
	e, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.math {
			// Juxtaposition: stop at operators and closers.
			switch p.peek() {
			case 0, ')', '+', '|':
				return e, nil
			}
		} else {
			if p.peek() != ',' {
				return e, nil
			}
			p.advance()
		}
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		e = Cat(e, r)
	}
}

func (p *parser) parsePostfix() (*Node, error) {
	e, err := p.parseBase()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.advance()
			e = Star(e)
		case '?':
			p.advance()
			e = Opt(e)
		case '+':
			if p.math {
				return e, nil // union operator, handled above
			}
			p.advance()
			e = Iter(e, 1, Unbounded)
		case '{':
			min, max, err := p.parseBounds()
			if err != nil {
				return nil, err
			}
			e = Iter(e, min, max)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseBounds() (min, max int, err error) {
	p.advance() // '{'
	p.skipSpace()
	min, err = p.parseInt()
	if err != nil {
		return 0, 0, err
	}
	max = min
	p.skipSpace()
	if p.peek() == ',' {
		p.advance()
		p.skipSpace()
		if p.peek() == '}' {
			max = Unbounded
		} else {
			max, err = p.parseInt()
			if err != nil {
				return 0, 0, err
			}
		}
	}
	p.skipSpace()
	if p.peek() != '}' {
		return 0, 0, p.errf("expected '}' in bounds")
	}
	p.advance()
	if max != Unbounded && max < min {
		return 0, 0, p.errf("bounds {%d,%d}: max < min", min, max)
	}
	if max == 0 {
		return 0, 0, p.errf("bounds {%d,%d}: max must be positive", min, max)
	}
	return min, max, nil
}

func (p *parser) parseInt() (int, error) {
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected number")
	}
	n, err := strconv.Atoi(p.input[start:p.pos])
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return n, nil
}

func (p *parser) parseBase() (*Node, error) {
	p.skipSpace()
	r := p.peek()
	switch {
	case r == 0:
		return nil, p.errf("unexpected end of expression")
	case r == '(':
		p.advance()
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.advance()
		return e, nil
	case r == '#' || r == '$':
		return nil, p.errf("symbol %q is reserved by rule (R1)", r)
	case p.math && (unicode.IsLetter(r) || unicode.IsDigit(r)):
		p.advance()
		return Sym(p.alpha.Intern(string(r))), nil
	case !p.math && isNameStart(r):
		start := p.pos
		p.advance()
		for isNameRune(p.peek()) {
			p.advance()
		}
		name := p.input[start:p.pos]
		if name == "#PCDATA" {
			return nil, p.errf("#PCDATA is only valid in mixed content (handled by package dtd)")
		}
		return Sym(p.alpha.Intern(name)), nil
	default:
		return nil, p.errf("unexpected %q", r)
	}
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == ':' || r == '#'
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '_' || r == ':' || r == '-' || r == '.'
}

// MustParseMath is ParseMath that panics on error; intended for tests and
// examples with literal expressions.
func MustParseMath(input string, alpha *Alphabet) *Node {
	e, err := ParseMath(input, alpha)
	if err != nil {
		panic(err)
	}
	return e
}

// MustParseDTD is ParseDTD that panics on error.
func MustParseDTD(input string, alpha *Alphabet) *Node {
	e, err := ParseDTD(input, alpha)
	if err != nil {
		panic(err)
	}
	return e
}
