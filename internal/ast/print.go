package ast

import (
	"strconv"
	"strings"
)

// operator binding strength for printing: union < cat < postfix.
const (
	precUnion = iota
	precCat
	precPostfix
)

// StringMath renders e in the paper's mathematical notation. Symbols whose
// names are longer than one rune are wrapped in parentheses-free DTD style
// and therefore only round-trip through StringDTD.
func StringMath(e *Node, alpha *Alphabet) string {
	var b strings.Builder
	printExpr(&b, e, alpha, true, precUnion)
	return b.String()
}

// StringDTD renders e in DTD content-model notation.
func StringDTD(e *Node, alpha *Alphabet) string {
	var b strings.Builder
	printExpr(&b, e, alpha, false, precUnion)
	return b.String()
}

func printExpr(b *strings.Builder, e *Node, alpha *Alphabet, math bool, outer int) {
	if e == nil {
		b.WriteString("<nil>")
		return
	}
	prec := nodePrec(e)
	if prec < outer {
		b.WriteByte('(')
		defer b.WriteByte(')')
	}
	switch e.Kind {
	case KSym:
		b.WriteString(alpha.Name(e.Sym))
	case KCat:
		printExpr(b, e.L, alpha, math, precCat)
		if !math {
			b.WriteByte(',')
		}
		printExpr(b, e.R, alpha, math, precCat+1)
	case KUnion:
		printExpr(b, e.L, alpha, math, precUnion)
		if math {
			b.WriteByte('+')
		} else {
			b.WriteByte('|')
		}
		printExpr(b, e.R, alpha, math, precUnion+1)
	case KOpt:
		printExpr(b, e.L, alpha, math, precPostfix)
		b.WriteByte('?')
	case KStar:
		printExpr(b, e.L, alpha, math, precPostfix)
		b.WriteByte('*')
	case KIter:
		printExpr(b, e.L, alpha, math, precPostfix)
		if !math && e.Min == 1 && e.Max == Unbounded {
			b.WriteByte('+')
			return
		}
		b.WriteByte('{')
		b.WriteString(strconv.Itoa(e.Min))
		if e.Max == Unbounded {
			b.WriteByte(',')
		} else if e.Max != e.Min {
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(e.Max))
		}
		b.WriteByte('}')
	}
}

func nodePrec(e *Node) int {
	switch e.Kind {
	case KUnion:
		return precUnion
	case KCat:
		return precCat
	default:
		return precPostfix
	}
}
