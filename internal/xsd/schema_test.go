package xsd

import (
	"strings"
	"testing"

	"dregex"
)

const librarySchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="book" type="BookType" maxOccurs="100"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="BookType">
    <xs:sequence>
      <xs:element name="title" type="xs:string"/>
      <xs:element name="author" type="xs:string" minOccurs="1" maxOccurs="5"/>
      <xs:choice minOccurs="0" maxOccurs="unbounded">
        <xs:element name="chapter" type="xs:string"/>
        <xs:element name="appendix" type="xs:string"/>
      </xs:choice>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`

func TestParseLibrary(t *testing.T) {
	s, err := Parse([]byte(librarySchema))
	if err != nil {
		t.Fatal(err)
	}
	lib := s.Roots["library"]
	if lib == nil || lib.Type == nil {
		t.Fatal("library element missing")
	}
	if lib.Type.Kind != Children {
		t.Fatalf("library kind = %v", lib.Type.Kind)
	}
	if got, want := lib.Type.Model, "(book{1,100})"; got != want {
		t.Errorf("library model = %q, want %q", got, want)
	}
	if !lib.Type.Numeric {
		t.Error("library model must be numeric ({1,100})")
	}
	if !lib.Type.Deterministic {
		t.Errorf("library model nondeterministic: %s", lib.Type.Rule)
	}

	book := s.Types["BookType"]
	if book == nil {
		t.Fatal("BookType missing")
	}
	if got, want := book.Model, "(title, author{1,5}, (chapter | appendix)*)"; got != want {
		t.Errorf("BookType model = %q, want %q", got, want)
	}
	if !book.Numeric || !book.Deterministic {
		t.Errorf("BookType numeric=%v deterministic=%v rule=%s",
			book.Numeric, book.Deterministic, book.Rule)
	}
	st := book.IterationStats()
	if st.Iterations == 0 || st.MaxBound != 5 {
		t.Errorf("BookType iteration stats = %+v", st)
	}
	if got := book.Children(); strings.Join(got, " ") != "appendix author chapter title" {
		t.Errorf("BookType children = %v", got)
	}
	// title resolves to the interned builtin text type; author shares it.
	if book.Child("title").Type != book.Child("author").Type {
		t.Error("xs:string children must share one interned type")
	}
	if book.Child("title").Type.Kind != TextContent {
		t.Error("xs:string child must be text-only")
	}
	if issues := s.Check(); len(issues) != 0 {
		t.Errorf("unexpected issues: %v", issues)
	}

	// Matching through the compiled model.
	ok := []string{"title", "author", "chapter", "chapter", "appendix"}
	if !book.MatchChildren(ok) {
		t.Errorf("MatchChildren(%v) = false", ok)
	}
	bad := [][]string{
		{"author", "title"},
		{"title"},
		{"title", "author", "author", "author", "author", "author", "author"}, // 6 > maxOccurs
		{"title", "author", "chapter", "author"},
	}
	for _, w := range bad {
		if book.MatchChildren(w) {
			t.Errorf("MatchChildren(%v) = true", w)
		}
	}
}

func TestPlainModelsAvoidCounterEngine(t *testing.T) {
	// All occurrence ranges classical: must compile through the plain
	// pipeline (CM set, NCM nil).
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
  <element name="doc">
    <complexType>
      <sequence>
        <element name="head" type="string" minOccurs="0"/>
        <element name="item" type="string" maxOccurs="unbounded"/>
        <element name="foot" type="string" minOccurs="0" maxOccurs="1"/>
      </sequence>
    </complexType>
  </element>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	typ := s.Roots["doc"].Type
	if typ.Numeric {
		t.Fatalf("classical model %s routed to the counter engine", typ.Model)
	}
	if typ.CM == nil || typ.NCM != nil {
		t.Fatal("plain model must compile to a dregex.Expr")
	}
	if got, want := typ.Model, "(head?, item+, foot?)"; got != want {
		t.Errorf("model = %q, want %q", got, want)
	}
}

func TestNamedGroupsAndRefs(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
  <group name="meta">
    <sequence>
      <element ref="title"/>
      <element name="date" type="string" minOccurs="0"/>
    </sequence>
  </group>
  <element name="title" type="string"/>
  <element name="entry">
    <complexType>
      <sequence>
        <group ref="meta" maxOccurs="3"/>
        <element name="body" type="string"/>
      </sequence>
    </complexType>
  </element>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	typ := s.Roots["entry"].Type
	if got, want := typ.Model, "((title, date?){1,3}, body)"; got != want {
		t.Errorf("model = %q, want %q", got, want)
	}
	if !typ.Numeric || !typ.Deterministic {
		t.Errorf("numeric=%v det=%v rule=%s", typ.Numeric, typ.Deterministic, typ.Rule)
	}
	// The ref must resolve to the global title declaration.
	if typ.Child("title") != s.Roots["title"] {
		t.Error("element ref did not resolve to the global declaration")
	}
}

func TestConsistentRefAndLocalDecl(t *testing.T) {
	// A ref to a global element plus a local declaration of the same name
	// and type satisfies Element Declarations Consistent — even though the
	// global's type resolves after the named type using it compiles.
	src := `<schema xmlns="x">
  <complexType name="R"><choice>
    <element ref="a"/>
    <sequence><element name="x" type="string"/><element name="a" type="T"/></sequence>
  </choice></complexType>
  <complexType name="T"><sequence><element name="y" type="string"/></sequence></complexType>
  <element name="a" type="T"/>
  <element name="root" type="R"/>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("consistent schema rejected: %v", err)
	}
	if s.Types["R"].Child("a").Type != s.Types["T"] {
		t.Error("child a must resolve to named type T")
	}

	// A named group expanded at several reference sites must resolve each
	// of its elements (inline anonymous types included) once, so repeated
	// refs stay Element-Declarations-Consistent.
	grp := `<schema xmlns="x">
  <group name="G"><sequence>
    <element name="x"><complexType><sequence><element name="y" type="string"/></sequence></complexType></element>
  </sequence></group>
  <element name="root"><complexType><sequence>
    <group ref="G"/><element name="sep" type="string"/><group ref="G"/>
  </sequence></complexType></element>
</schema>`
	if _, err := Parse([]byte(grp)); err != nil {
		t.Errorf("repeated group ref with inline type rejected: %v", err)
	}

	// The same shape with genuinely different types must still fail.
	bad := strings.Replace(src, `<element name="a" type="T"/>
  <element name="root"`, `<element name="a" type="string"/>
  <element name="root"`, 1)
	if _, err := Parse([]byte(bad)); err == nil ||
		!strings.Contains(err.Error(), "different types") {
		t.Errorf("inconsistent ref/local pair not rejected: %v", err)
	}
}

func TestAllGroup(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
  <element name="config">
    <complexType>
      <all>
        <element name="host" type="string"/>
        <element name="port" type="string"/>
        <element name="debug" type="string" minOccurs="0"/>
      </all>
    </complexType>
  </element>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	typ := s.Roots["config"].Type
	if typ.Kind != AllGroup {
		t.Fatalf("kind = %v, want all", typ.Kind)
	}
	ok := [][]string{
		{"host", "port"},
		{"port", "debug", "host"},
	}
	bad := [][]string{
		{"host"},                 // port missing
		{"host", "port", "port"}, // repeat
		{"host", "port", "x"},    // not a member
	}
	for _, w := range ok {
		if !typ.MatchChildren(w) {
			t.Errorf("all group must accept %v", w)
		}
	}
	for _, w := range bad {
		if typ.MatchChildren(w) {
			t.Errorf("all group must reject %v", w)
		}
	}

	// maxOccurs="0" on a member prohibits it (legal XSD): the member
	// vanishes from the group.
	src2 := strings.Replace(src,
		`<element name="debug" type="string" minOccurs="0"/>`,
		`<element name="debug" type="string" maxOccurs="0"/>`, 1)
	s2, err := Parse([]byte(src2))
	if err != nil {
		t.Fatalf("prohibited all member rejected: %v", err)
	}
	typ2 := s2.Roots["config"].Type
	if !typ2.MatchChildren([]string{"host", "port"}) ||
		typ2.MatchChildren([]string{"host", "port", "debug"}) {
		t.Error("prohibited all member must be removed from the group")
	}
}

func TestNondeterministicModelDiagnosis(t *testing.T) {
	// (a{1,3}, a): after one 'a' a second 'a' can continue the counter or
	// move on — a UPA violation only visible through the §3.3 test.
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
  <element name="root">
    <complexType>
      <sequence>
        <element name="a" type="string" maxOccurs="3"/>
        <element name="a" type="string"/>
      </sequence>
    </complexType>
  </element>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	typ := s.Roots["root"].Type
	if typ.Deterministic {
		t.Fatalf("model %s must violate UPA", typ.Model)
	}
	amb := typ.Explain()
	if amb == nil || amb.Rule == "" || amb.Symbol != "a" {
		t.Fatalf("diagnosis = %+v", amb)
	}
	issues := s.Check()
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "Unique Particle Attribution") {
		t.Fatalf("issues = %v", issues)
	}
	// The counter simulation still decides membership exactly.
	if !typ.MatchChildren([]string{"a", "a"}) || typ.MatchChildren([]string{"a", "a", "a", "a", "a"}) {
		t.Error("nondeterministic counter model mismatched")
	}

	// Plain nondeterminism gets the classical diagnosis with a witness
	// word, exactly like the DTD path.
	src2 := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
  <element name="r">
    <complexType>
      <sequence>
        <element name="a" type="string" minOccurs="0"/>
        <element name="a" type="string"/>
      </sequence>
    </complexType>
  </element>
</schema>`
	s2, err := Parse([]byte(src2))
	if err != nil {
		t.Fatal(err)
	}
	typ2 := s2.Roots["r"].Type
	if typ2.Deterministic {
		t.Fatalf("model %s must violate UPA", typ2.Model)
	}
	amb2 := typ2.Explain()
	if amb2 == nil || amb2.Symbol != "a" || len(amb2.Word) == 0 {
		t.Fatalf("plain diagnosis = %+v", amb2)
	}
}

func TestSchemaErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"not a schema", `<foo/>`, "must be an XML Schema"},
		{"no elements", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><complexType name="t"><sequence/></complexType></schema>`,
			"no top-level elements"},
		{"unknown type", `<schema xmlns="x"><element name="a" type="Missing"/></schema>`, "unknown type"},
		{"bad ref", `<schema xmlns="x"><element name="a"><complexType><sequence><element ref="nope"/></sequence></complexType></element></schema>`,
			"undeclared element"},
		{"wildcard", `<schema xmlns="x"><element name="a"><complexType><sequence><any/></sequence></complexType></element></schema>`,
			"not supported"},
		{"ref with type", `<schema xmlns="x"><element name="a" type="string"/><element name="r"><complexType><sequence><element ref="a" type="string"/></sequence></complexType></element></schema>`,
			"cannot carry a type"},
		{"ref with inline simpleType", `<schema xmlns="x"><element name="a" type="string"/><element name="r"><complexType><sequence><element ref="a"><simpleType/></element></sequence></complexType></element></schema>`,
			"cannot carry an inline type"},
		{"complexContent", `<schema xmlns="x"><element name="a"><complexType><complexContent/></complexType></element></schema>`,
			"not supported"},
		{"group cycle", `<schema xmlns="x">
  <group name="g"><sequence><group ref="g"/></sequence></group>
  <element name="a"><complexType><group ref="g"/></complexType></element>
</schema>`, "cycle"},
		{"dup element", `<schema xmlns="x"><element name="a" type="string"/><element name="a" type="string"/></schema>`,
			"declared twice"},
		{"inconsistent decls", `<schema xmlns="x"><element name="r"><complexType><sequence>
  <element name="a" type="string"/><element name="a"><complexType><sequence/></complexType></element>
</sequence></complexType></element></schema>`, "different types"},
		{"all nested", `<schema xmlns="x"><element name="r"><complexType><sequence><all/></sequence></complexType></element></schema>`,
			"entire content model"},
		{"all maxOccurs", `<schema xmlns="x"><element name="r"><complexType><all><element name="a" type="string" maxOccurs="2"/></all></complexType></element></schema>`,
			"minOccurs 0 or 1 and maxOccurs 1"},
		{"bad occurs", `<schema xmlns="x"><element name="r" minOccurs="3" maxOccurs="2" type="string"/></schema>`,
			"maxOccurs 2 < minOccurs 3"},
		{"contradictory prohibition", `<schema xmlns="x"><element name="r"><complexType><sequence><element name="a" type="string" minOccurs="5" maxOccurs="0"/></sequence></complexType></element></schema>`,
			"maxOccurs 0 < minOccurs 5"},
		{"all group ref occurrence", `<schema xmlns="x">
  <group name="g"><all><element name="a" type="string"/></all></group>
  <element name="r"><complexType><group ref="g" maxOccurs="unbounded"/></complexType></element>
</schema>`, "minOccurs 0 or 1 and maxOccurs 1"},
		{"bad name", "<schema xmlns=\"x\"><element name=\"r\"><complexType><sequence><element name=\"a b\" type=\"string\"/></sequence></complexType></element></schema>",
			"invalid element name"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMinOccursZeroParticles(t *testing.T) {
	// maxOccurs=0 prohibits a particle: it is removed from the model and —
	// unlike a genuinely ε branch (an empty sequence, say) — must not make
	// a required choice optional. A fully prohibited model is empty
	// content.
	src := `<schema xmlns="x">
  <element name="r">
    <complexType>
      <sequence>
        <element name="gone" type="string" maxOccurs="0"/>
        <choice>
          <element name="skip" type="string" maxOccurs="0"/>
          <element name="a" type="string"/>
          <element name="b" type="string"/>
        </choice>
      </sequence>
    </complexType>
  </element>
  <element name="opt">
    <complexType>
      <choice>
        <sequence/>
        <element name="a" type="string"/>
      </choice>
    </complexType>
  </element>
  <element name="empty">
    <complexType>
      <sequence>
        <element name="x" type="string" maxOccurs="0"/>
      </sequence>
    </complexType>
  </element>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	typ := s.Roots["r"].Type
	if got, want := typ.Model, "((a | b))"; got != want {
		t.Errorf("model = %q, want %q", got, want)
	}
	if typ.MatchChildren(nil) || !typ.MatchChildren([]string{"b"}) ||
		typ.MatchChildren([]string{"gone"}) || typ.MatchChildren([]string{"a", "b"}) {
		t.Error("required-choice model mismatched")
	}
	// An ε branch (empty sequence) does make a choice optional.
	opt := s.Roots["opt"].Type
	if got, want := opt.Model, "(a)?"; got != want {
		t.Errorf("opt model = %q, want %q", got, want)
	}
	if !opt.MatchChildren(nil) || !opt.MatchChildren([]string{"a"}) {
		t.Error("ε-branch choice must be optional")
	}
	if s.Roots["empty"].Type.Kind != EmptyContent {
		t.Errorf("fully prohibited model kind = %v, want empty", s.Roots["empty"].Type.Kind)
	}

	// An explicit minOccurs="0" alongside maxOccurs="0" is fine; a
	// prohibited ref to an xs:all group yields empty content.
	src2 := `<schema xmlns="x">
  <group name="g"><all><element name="a" type="string"/></all></group>
  <element name="r"><complexType><group ref="g" minOccurs="0" maxOccurs="0"/></complexType></element>
</schema>`
	s2, err := Parse([]byte(src2))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Roots["r"].Type.Kind != EmptyContent {
		t.Errorf("prohibited all-group ref kind = %v, want empty", s2.Roots["r"].Type.Kind)
	}
}

func TestCacheSharesXSDModels(t *testing.T) {
	cache := dregex.NewCache(64)
	src := `<schema xmlns="x"><element name="r"><complexType><sequence>
  <element name="a" type="string" maxOccurs="7"/>
</sequence></complexType></element></schema>`
	s1, err := ParseWithCache([]byte(src), cache)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseWithCache([]byte(src), cache)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Roots["r"].Type.NCM != s2.Roots["r"].Type.NCM {
		t.Error("identical XSD models must share one cached NumericExpr")
	}
	// The XSD key space is distinct from DTD: the same source text
	// compiled as DTD syntax is a separate entry.
	before := cache.Stats()
	if _, err := cache.GetNumeric(s1.Roots["r"].Type.Model, dregex.DTD); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Misses != before.Misses+1 {
		t.Error("DTD-syntax compile of the same text must be a distinct cache entry")
	}
}
