// Instance validation: corpus-scale, concurrent, zero-allocation in steady
// state on the children-matching path. The architecture mirrors the PR 2
// DTD validator: one schema's compiled models (and their lazily built
// engines) are shared by every worker — engines are immutable after
// construction — while all per-document state lives in a per-worker
// docState whose frame stack is reused from document to document. Frames
// hold their match.Stream / numeric stream state by value, and popped
// frames keep their grown buffers for the next element at that depth, so
// validating the next document costs XML decoding plus stream feeding:
// O(1) state per open element for plain models, the live configuration
// set (a singleton, for deterministic models) for counted ones.
package xsd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dregex/internal/dtd"
	"dregex/internal/match"
	"dregex/internal/numeric"
	"dregex/internal/pool"
	"dregex/internal/run"
	"dregex/internal/xmltok"
)

// ValidationError describes one violation found while validating a
// document.
type ValidationError struct {
	Path    string `json:"path"` // slash-separated element path
	Element string `json:"element"`
	Msg     string `json:"msg"`
	// Line and Col locate the violation in the document (1-based; columns
	// count runes). Zero when no position is available.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Expected lists the element names that would have been legal at the
	// failure point (content-model violations only): the run.Runner
	// ExpectedNext set of the type's streaming matcher.
	Expected []string `json:"expected,omitempty"`
}

func (e ValidationError) Error() string {
	msg := e.Msg
	if len(e.Expected) > 0 {
		msg = fmt.Sprintf("%s (expected one of: %s)", msg, strings.Join(e.Expected, ", "))
	}
	if e.Line > 0 {
		return fmt.Sprintf("%d:%d: %s: <%s>: %s", e.Line, e.Col, e.Path, e.Element, msg)
	}
	return fmt.Sprintf("%s: <%s>: %s", e.Path, e.Element, msg)
}

// Doc is one in-memory document to validate.
type Doc struct {
	Name string
	Data []byte
}

// Result is the validation outcome for one document.
type Result struct {
	Name string
	// Errors are the schema violations found; empty for a valid document.
	Errors []ValidationError
	// Err is a document-level failure (unreadable file, malformed XML).
	Err error
}

// Valid reports whether the document was read, parsed and validated with
// no violations.
func (r Result) Valid() bool { return r.Err == nil && len(r.Errors) == 0 }

// Validator validates many documents concurrently against one schema. A
// Validator is safe for concurrent use and may be reused.
type Validator struct {
	s       *Schema
	workers int
}

// NewValidator returns a pool validating against s with the given number
// of workers (≤ 0 selects GOMAXPROCS).
func NewValidator(s *Schema, workers int) *Validator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Validator{s: s, workers: workers}
}

// ValidateDocs validates in-memory documents concurrently; results[i]
// corresponds to docs[i].
func (v *Validator) ValidateDocs(docs []Doc) []Result {
	results := make([]Result, len(docs))
	v.run(len(docs), func(i int, st *docState) {
		errs, err := v.s.validateBytes(docs[i].Data, st)
		results[i] = Result{Name: docs[i].Name, Errors: errs, Err: err}
	})
	return results
}

// ValidateFiles reads and validates the named files concurrently (file
// I/O happens on the workers too); results[i] corresponds to paths[i].
// Documents stream straight from their open files — O(decoder-buffer)
// memory however large the file.
func (v *Validator) ValidateFiles(paths []string) []Result {
	results := make([]Result, len(paths))
	v.run(len(paths), func(i int, st *docState) {
		f, err := os.Open(paths[i])
		if err != nil {
			results[i] = Result{Name: paths[i], Err: err}
			return
		}
		errs, err := v.s.validate(f, st)
		f.Close()
		results[i] = Result{Name: paths[i], Errors: errs, Err: err}
	})
	return results
}

// run distributes n jobs over the worker pool, handing each worker its own
// reusable docState.
func (v *Validator) run(n int, job func(i int, st *docState)) {
	pool.RunWithStates(n, v.workers, func(st *docState, i int) {
		job(i, st)
	})
}

// frame is the per-open-element state of a validation pass. The name
// aliases the document buffer — no per-element string is materialized.
type frame struct {
	decl   *ElementDecl
	typ    *Type
	name   []byte
	stream match.Stream   // plain Children models (value: no allocation)
	ctrs   numeric.Stream // numeric Children models (buffers reused per slot)
	seen   []bool         // AllGroup member presence
	any    bool           // AllGroup: some member seen
	failed bool
}

// maxKeepBuf caps the document buffer a reused docState retains between
// documents, so one huge outlier does not pin its memory forever.
const maxKeepBuf = 1 << 20

// docState is the reusable scratch of one validation pass. A zero value is
// ready; reusing one across documents (one per Validator worker) keeps the
// element stack's capacity, every frame's grown stream buffers and the
// tokenizer's internal buffers, so steady-state validation performs no
// per-document allocation. (Unlike the DTD validator's standalone mode,
// frames reference only the shared schema, so retaining popped frames pins
// no per-document data.)
type docState struct {
	stack []frame
	tok   xmltok.Tokenizer
	// buf holds the whole document when validating from an io.Reader.
	buf []byte
	// symbols and docBytes meter the last validation for observability:
	// content-model symbols fed to streaming engines (plain or counter),
	// and tokenized document bytes.
	symbols  int
	docBytes int
	// cp is the cooperative cancellation point probed once per token; it
	// stays disarmed (one branch per token) unless SetDeadline armed it.
	cp run.Checkpoint
}

// push returns the next frame slot, reusing the slot's buffers when the
// stack has been this deep before.
func (st *docState) push() *frame {
	if len(st.stack) < cap(st.stack) {
		st.stack = st.stack[:len(st.stack)+1]
	} else {
		st.stack = append(st.stack, frame{})
	}
	f := &st.stack[len(st.stack)-1]
	f.decl, f.typ, f.name = nil, nil, nil
	f.any, f.failed = false, false
	return f
}

// Validate checks one XML document against the schema: the root must be a
// globally declared element, every element's children sequence must match
// its type's content model (evaluated with a streaming simulator — one
// pass, no buffering of child lists), xs:all members must each appear at
// most once with required ones present, and text content must be allowed
// (simple or mixed content). It returns all violations found, or nil.
func (s *Schema) Validate(r io.Reader) ([]ValidationError, error) {
	var st docState
	return s.validate(r, &st)
}

// ValidateBytes is Validate on an in-memory document, skipping the read.
func (s *Schema) ValidateBytes(doc []byte) ([]ValidationError, error) {
	var st docState
	return s.validateBytes(doc, &st)
}

// DocState is the reusable per-worker scratch of a validation pass, for
// long-running callers outside the package (the dregexd server pools these
// per schema). A zero value is ready. Popped frames keep pointers into the
// schema they validated, so pool DocStates per schema — dropping the schema
// drops its pool — rather than sharing one pool across hot-swapped schemas.
type DocState struct{ st docState }

// ValidateReusing is Validate with caller-managed scratch: reusing one
// DocState across documents keeps the element stack's capacity and every
// frame's grown stream buffers. A DocState must not be used concurrently.
func (s *Schema) ValidateReusing(r io.Reader, st *DocState) ([]ValidationError, error) {
	return s.validate(r, &st.st)
}

// ValidateBytesReusing is ValidateBytes with caller-managed scratch.
func (s *Schema) ValidateBytesReusing(doc []byte, st *DocState) ([]ValidationError, error) {
	return s.validateBytes(doc, &st.st)
}

// Symbols reports how many content-model symbols (child elements fed to
// the streaming engines) the last validation through this DocState
// consumed, for live ns-per-symbol estimates.
func (st *DocState) Symbols() int { return st.st.symbols }

// DocBytes reports the size of the last document validated through this
// DocState (the bytes the tokenizer scanned).
func (st *DocState) DocBytes() int { return st.st.docBytes }

// SetDeadline arms cooperative cancellation for subsequent validations
// through this DocState, with the same contract as the DTD validator's
// DocState.SetDeadline: abort errors satisfy errors.Is against
// run.ErrCanceled / run.ErrDeadlineExceeded, both zero arguments disarm,
// and the arming persists until the next SetDeadline.
func (st *DocState) SetDeadline(done <-chan struct{}, deadline time.Time) {
	st.st.cp.Arm(done, deadline)
}

func (s *Schema) validate(r io.Reader, st *docState) ([]ValidationError, error) {
	data, err := xmltok.ReadAll(r, st.buf)
	st.buf = data
	if err != nil {
		return nil, fmt.Errorf("xsd: read: %w", err)
	}
	errs, verr := s.validateBytes(data, st)
	if cap(st.buf) > maxKeepBuf {
		st.buf = nil
	}
	return errs, verr
}

func (s *Schema) validateBytes(data []byte, st *docState) ([]ValidationError, error) {
	tok := &st.tok
	tok.Reset(data)
	tok.SetEntities(nil)
	var errs []ValidationError
	st.stack = st.stack[:0]
	st.symbols = 0
	st.docBytes = len(data)
	sawRoot := false
	path := func() string {
		parts := make([]string, 0, len(st.stack))
		for i := range st.stack {
			parts = append(parts, string(st.stack[i].name))
		}
		return "/" + strings.Join(parts, "/")
	}
	// verr stamps a violation with the document position of offset off.
	verr := func(path string, elem []byte, off int, msg string) ValidationError {
		line, col := tok.Position(off)
		return ValidationError{Path: path, Element: string(elem), Msg: msg, Line: line, Col: col}
	}
	for {
		if err := st.cp.Check(); err != nil {
			return errs, fmt.Errorf("xsd: validation aborted: %w", err)
		}
		kind, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return errs, fmt.Errorf("xsd: malformed XML: %w", err)
		}
		switch kind {
		case xmltok.Directive:
			// Instance documents may carry a DOCTYPE whose internal subset
			// declares general entities (<!ENTITY foo "...">); wire those
			// into the tokenizer so &foo; references are resolved rather
			// than rejected as malformed XML. Predefined entities always
			// work; parameter and external entities stay out of scope.
			if !sawRoot {
				if ents := dtd.EntitiesFromDoctype(string(tok.Text())); len(ents) > 0 {
					tok.SetEntities(ents)
				}
			}
		case xmltok.StartElement:
			name := tok.Local()
			off := tok.Offset()
			var decl *ElementDecl
			if len(st.stack) == 0 {
				if sawRoot {
					// A second top-level element is not well-formed XML;
					// report it, then skip its subtree.
					errs = append(errs, verr("/"+string(name), name, off,
						"document has more than one root element"))
					for tok.Depth() > 0 {
						if _, err := tok.Next(); err != nil {
							return errs, fmt.Errorf("xsd: malformed XML: %w", err)
						}
					}
					continue
				}
				sawRoot = true
				decl = s.Roots[string(name)]
				if decl == nil {
					errs = append(errs, verr("/"+string(name), name, off,
						"root element is not declared in the schema"))
				}
			} else {
				p := &st.stack[len(st.stack)-1]
				decl = p.typ.childBytes(name)
				errs = feedChild(errs, st, p, name, off, path, verr)
			}
			f := st.push()
			//dregex:ok spanretain name is a Name() span into the stable document buffer (never scratch); the frame dies with this parse
			f.decl, f.name = decl, name
			if decl == nil {
				f.failed = true
				break
			}
			f.typ = decl.Type
			switch f.typ.Kind {
			case Children:
				if !f.typ.Deterministic {
					errs = append(errs, verr(path(), name, off,
						"content model violates Unique Particle Attribution; cannot validate"))
					f.failed = true
				} else if f.typ.Numeric {
					f.typ.nmatcher.InitStream(&f.ctrs)
				} else {
					f.typ.matcher.InitStream(&f.stream)
				}
			case AllGroup:
				n := len(f.typ.allDecl)
				if cap(f.seen) < n {
					f.seen = make([]bool, n)
				} else {
					f.seen = f.seen[:n]
					for i := range f.seen {
						f.seen[i] = false
					}
				}
			}
		case xmltok.EndElement:
			if len(st.stack) == 0 {
				continue // stray end tag past a skipped extra root
			}
			f := &st.stack[len(st.stack)-1]
			if f.typ != nil && !f.failed {
				switch f.typ.Kind {
				case Children:
					ok := false
					if f.typ.Numeric {
						ok = f.ctrs.Accepts()
					} else {
						ok = f.stream.Accepts()
					}
					if !ok {
						errs = append(errs, verr(path(), f.name, tok.Offset(),
							fmt.Sprintf("children end prematurely for content model %s", f.typ.Model)))
					}
				case AllGroup:
					if !(f.typ.allOptional && !f.any) {
						for i, min := range f.typ.allMin {
							if min > 0 && !f.seen[i] {
								errs = append(errs, verr(path(), f.name, tok.Offset(),
									fmt.Sprintf("missing required child <%s> of %s", f.typ.allDecl[i].Name, f.typ.Model)))
							}
						}
					}
				}
			}
			st.stack = st.stack[:len(st.stack)-1]
		case xmltok.Text:
			if len(st.stack) == 0 {
				continue
			}
			f := &st.stack[len(st.stack)-1]
			if f.typ == nil || f.failed || f.typ.Mixed ||
				f.typ.Kind == TextContent || f.typ.Kind == AnyContent {
				continue
			}
			if len(bytes.TrimSpace(tok.Text())) == 0 {
				continue
			}
			errs = append(errs, verr(path(), f.name, tok.Offset(),
				"text content not allowed by element-only content"))
			f.failed = true
		}
	}
	if !sawRoot {
		return errs, errors.New("xsd: document has no root element")
	}
	return errs, nil
}

// feedChild records child name in the parent frame's content model.
func feedChild(errs []ValidationError, st *docState, p *frame, name []byte, off int,
	path func() string, verr func(string, []byte, int, string) ValidationError) []ValidationError {
	if p.typ == nil || p.failed {
		return errs // parent already failed; keep descending silently
	}
	switch p.typ.Kind {
	case EmptyContent:
		errs = append(errs, verr(path(), p.name, off,
			fmt.Sprintf("child <%s> not allowed: empty content", name)))
		p.failed = true
	case TextContent:
		errs = append(errs, verr(path(), p.name, off,
			fmt.Sprintf("child <%s> not allowed: simple content", name)))
		p.failed = true
	case AllGroup:
		i, ok := p.typ.allIndex[string(name)]
		switch {
		case !ok:
			errs = append(errs, verr(path(), p.name, off,
				fmt.Sprintf("child <%s> not allowed in %s", name, p.typ.Model)))
			p.failed = true
		case p.seen[i]:
			errs = append(errs, verr(path(), p.name, off,
				fmt.Sprintf("child <%s> repeated in %s", name, p.typ.Model)))
			p.failed = true
		default:
			p.seen[i] = true
			p.any = true
		}
	case Children:
		st.symbols++
		ok := false
		if p.typ.Numeric {
			ok = p.ctrs.FeedBytes(name)
		} else {
			ok = p.stream.FeedBytes(name)
		}
		if !ok {
			ve := verr(path(), p.name, off,
				fmt.Sprintf("child <%s> violates content model %s", name, p.typ.Model))
			if p.typ.Numeric {
				ve.Expected = run.ExpectedNames(&p.ctrs, nil)
			} else {
				ve.Expected = run.ExpectedNames(&p.stream, nil)
			}
			errs = append(errs, ve)
			p.failed = true
		}
	}
	return errs
}
