// Content-model lowering: rawParticle trees become content-model source
// strings in the grammar dregex already speaks (DTD notation extended with
// {m,n}), compiled under the dedicated dregex.XSD cache key. The lowering
// is canonical — same particle structure, same string — so identical
// models across types and schemas deduplicate in the expression cache.
package xsd

import (
	"strconv"
	"strings"

	"dregex/internal/ast"
)

// lowerer lowers one type's content particle, resolving element
// declarations into t's child table and tracking whether any occurrence
// range needs the counter pipeline.
type lowerer struct {
	r *resolver
	t *Type
	// numeric is set when some occurrence range falls outside the
	// classical set ({0,1}, {1,1}, {0,∞}, {1,∞}) — those models compile
	// through CompileNumeric; everything else stays on the plain engines.
	numeric bool
}

// lowKind classifies a lowered particle. The distinction between gone and
// eps matters in choices: a prohibited branch is simply removed from the
// model (XSD 1.0 particle semantics) and must not make a required choice
// optional, while a genuinely ε-language branch does.
type lowKind int

const (
	lowExpr lowKind = iota // src holds a content-model expression
	lowEps                 // particle matches exactly ε (e.g. empty sequence)
	lowGone                // particle prohibited by maxOccurs=0 — removed
)

// lower serializes p.
func (lw *lowerer) lower(p *rawParticle) (src string, kind lowKind, err error) {
	if p.max == 0 {
		return "", lowGone, nil
	}
	switch p.kind {
	case "element":
		decl, err := lw.r.elementDecl(p, lw.t)
		if err != nil {
			return "", lowExpr, err
		}
		return lw.occurs(decl.Name, p.min, p.max), lowExpr, nil
	case "sequence":
		return lw.lowerItems(p, ", ", false)
	case "choice":
		return lw.lowerItems(p, " | ", true)
	case "group":
		body, err := lw.r.group(p.ref, p.line)
		if err != nil {
			return "", lowExpr, err
		}
		if body.kind == "all" {
			return "", lowExpr, errAt(p.line, "type %s: group %q is an xs:all group and must be the entire content model",
				lw.t.Name, p.ref)
		}
		lw.r.groupUse = append(lw.r.groupUse, p.ref)
		inner, kind, err := lw.lower(body)
		lw.r.groupUse = lw.r.groupUse[:len(lw.r.groupUse)-1]
		if err != nil || kind != lowExpr {
			return "", kind, err
		}
		return lw.occurs(inner, p.min, p.max), lowExpr, nil
	case "all":
		return "", lowExpr, errAt(p.line, "type %s: xs:all must be the entire content model", lw.t.Name)
	}
	return "", lowExpr, errAt(p.line, "type %s: unsupported particle %q", lw.t.Name, p.kind)
}

// lowerItems lowers a sequence or choice. In a choice an ε item cannot be
// written as a branch; it makes the whole group nullable instead (same
// language), so the group gains a '?'. Prohibited items vanish without a
// trace in both group kinds.
func (lw *lowerer) lowerItems(p *rawParticle, sep string, choice bool) (string, lowKind, error) {
	parts := make([]string, 0, len(p.items))
	nullable := false
	for _, item := range p.items {
		s, kind, err := lw.lower(item)
		if err != nil {
			return "", lowExpr, err
		}
		switch kind {
		case lowGone:
			continue
		case lowEps:
			if choice {
				nullable = true
			}
			continue
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		// Every item was ε or removed: a sequence of nothing is ε, as is
		// a choice with an ε branch (or occurring zero times). A required
		// choice whose branches were all prohibited admits nothing.
		if !choice || nullable || p.min == 0 {
			return "", lowEps, nil
		}
		return "", lowExpr, errAt(p.line, "type %s: choice with no usable branches", lw.t.Name)
	}
	inner := "(" + strings.Join(parts, sep) + ")"
	if nullable {
		inner += "?"
	}
	return lw.occurs(inner, p.min, p.max), lowExpr, nil
}

// occurs applies an occurrence range as a postfix operator, routing
// non-classical ranges to the counter pipeline.
func (lw *lowerer) occurs(inner string, min, max int) string {
	switch {
	case min == 1 && max == 1:
		return inner
	case min == 0 && max == 1:
		return inner + "?"
	case min == 0 && max == ast.Unbounded:
		return inner + "*"
	case min == 1 && max == ast.Unbounded:
		return inner + "+"
	case max == ast.Unbounded:
		lw.numeric = true
		return inner + "{" + strconv.Itoa(min) + ",}"
	default:
		lw.numeric = true
		return inner + "{" + strconv.Itoa(min) + "," + strconv.Itoa(max) + "}"
	}
}
