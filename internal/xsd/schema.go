// Package xsd applies the paper's algorithms to the schema language where
// deterministic expressions with counters actually live in the wild: XML
// Schema. It parses schema documents (via encoding/xml), lowers complexType
// content models — sequence, choice, all, element references, named model
// groups, minOccurs/maxOccurs including unbounded — into the dregex
// pipeline, checks each model for determinism (the Unique Particle
// Attribution constraint, decided by the paper's §3.3 linear test however
// large the bounds), and validates instance documents by streaming counter
// simulation. Validator runs that pipeline over whole corpora concurrently.
//
// Lowering picks the cheapest engine per model: a content model whose
// occurrence ranges all fall in the classical set ({0,1}, {1,1}, {0,∞},
// {1,∞}) compiles through the plain pipeline (dregex.Expr and its §4
// engines); only models with genuine counters pay for counter simulation
// (dregex.NumericExpr). Both compile through a dregex.Cache under the
// dedicated XSD syntax key, so models repeated across types, schemas and
// corpora compile once.
//
// Supported subset: top-level element, complexType, group and simpleType
// declarations; sequence/choice/all model groups; element refs and local
// element declarations; named model-group references; minOccurs/maxOccurs
// everywhere XSD 1.0 allows them; mixed content; simpleContent (treated as
// text-only). Attributes are accepted and ignored. Not supported (clean
// errors): complexContent derivation, xs:any wildcards, substitution
// groups, identity constraints beyond skipping. Elements without a type
// are xs:anyType: their content — children and text — is accepted without
// checking, like DTD's ANY.
package xsd

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dregex"
	"dregex/internal/numeric"
)

// ContentKind classifies a type's content model.
type ContentKind int

// Content kinds.
const (
	// EmptyContent allows no children (text only when mixed).
	EmptyContent ContentKind = iota
	// TextContent is simple content: character data, no children.
	TextContent
	// Children is a regular content model over element names.
	Children
	// AllGroup is xs:all — each member element at most once, any order.
	AllGroup
	// AnyContent is xs:anyType (untyped elements): children and text are
	// accepted without checking, like DTD's ANY.
	AnyContent
)

func (k ContentKind) String() string {
	switch k {
	case EmptyContent:
		return "empty"
	case TextContent:
		return "text"
	case Children:
		return "children"
	case AllGroup:
		return "all"
	case AnyContent:
		return "any"
	}
	return fmt.Sprintf("ContentKind(%d)", int(k))
}

// Type is one compiled (complex or simple) type.
type Type struct {
	// Name is the declared name for named types, a synthesized
	// "element <x>" label for inline anonymous types, and the builtin name
	// for simple types.
	Name  string
	Kind  ContentKind
	Mixed bool
	// Line is the schema-document line of the type's declaration (0 for
	// interned simple types).
	Line int

	// Children models. Model is the lowered content-model source (DTD
	// notation, {m,n} for counters); Numeric selects which of CM/NCM is
	// live. Both compile through the schema's expression cache, so types
	// sharing a model — within one schema or across schemas parsed with
	// the same cache — share one compiled expression and its engines.
	Model   string
	Numeric bool
	CM      *dregex.Expr
	NCM     *dregex.NumericExpr
	// Deterministic reports the Unique Particle Attribution verdict
	// (paper §3/§3.3); Rule names the violated condition.
	Deterministic bool
	Rule          string
	matcher       *dregex.Matcher
	nmatcher      *dregex.NumericMatcher

	// children maps child element names to their declarations (all kinds
	// with element content).
	children   map[string]*ElementDecl
	childOrder []string

	// AllGroup bookkeeping: member i is allDecl[i], required when
	// allMin[i] > 0; allOptional is minOccurs=0 on the xs:all particle.
	allIndex    map[string]int
	allMin      []int
	allDecl     []*ElementDecl
	allOptional bool
}

// ElementDecl is one element declaration (global or local).
type ElementDecl struct {
	Name string
	Type *Type
}

// Schema is a compiled schema: global element declarations plus every
// compiled type. It is immutable after Parse and safe for concurrent use.
type Schema struct {
	// Roots are the global element declarations (valid document roots).
	Roots     map[string]*ElementDecl
	RootOrder []string
	// Types are the named complexTypes.
	Types     map[string]*Type
	TypeOrder []string
	// AllTypes lists every compiled type with element content — named ones
	// first in declaration order, then inline anonymous ones — for linting
	// and reporting.
	AllTypes []*Type
}

// defaultCache backs Parse: content models repeat heavily across schema
// corpora, so even unrelated Parse calls amortize compilation. It is
// distinct from the DTD package cache only in its keys (dregex.XSD).
var defaultCache = dregex.NewCache(4096)

// Parse compiles a schema document, lowering every content model through
// the shared package-level expression cache.
func Parse(data []byte) (*Schema, error) {
	return ParseWithCache(data, defaultCache)
}

// ParseWithCache is Parse compiling content models through an explicit
// cache (one per validator pool, say, to bound memory independently).
func ParseWithCache(data []byte, cache *dregex.Cache) (*Schema, error) {
	if cache == nil {
		cache = defaultCache
	}
	rs, err := decode(data)
	if err != nil {
		return nil, err
	}
	if len(rs.elements) == 0 {
		return nil, errAt(0, "schema declares no top-level elements")
	}
	r := &resolver{
		rs:    rs,
		cache: cache,
		s: &Schema{
			Roots: map[string]*ElementDecl{},
			Types: map[string]*Type{},
		},
		text: map[string]*Type{},
	}
	// Shells first: named types and global elements may reference each
	// other cyclically (an element of type T whose model refs the element).
	for _, rt := range rs.types {
		if _, dup := r.s.Types[rt.name]; dup {
			return nil, errAt(rt.line, "complexType %q declared twice", rt.name)
		}
		t := &Type{Name: rt.name}
		r.s.Types[rt.name] = t
		r.s.TypeOrder = append(r.s.TypeOrder, rt.name)
	}
	for _, re := range rs.elements {
		if err := checkName(re.name); err != nil {
			return nil, errAt(re.line, "%v", err)
		}
		if _, dup := r.s.Roots[re.name]; dup {
			return nil, errAt(re.line, "element %q declared twice", re.name)
		}
		r.s.Roots[re.name] = &ElementDecl{Name: re.name}
		r.s.RootOrder = append(r.s.RootOrder, re.name)
	}
	// Fill named types, then resolve the global elements' types (inline
	// anonymous types compile on the way).
	for _, rt := range rs.types {
		if err := r.fillType(r.s.Types[rt.name], rt); err != nil {
			return nil, err
		}
	}
	for _, re := range rs.elements {
		t, err := r.typeFor(re)
		if err != nil {
			return nil, err
		}
		r.s.Roots[re.name].Type = t
	}
	// Element Declarations Consistent, deferred until every declaration's
	// type is resolved (a ref's global element may be typed after the
	// content model using it compiles).
	for _, p := range r.edc {
		if p.a.Type != p.b.Type {
			return nil, errAt(p.line,
				"type %s: element %q declared twice with different types", p.typeName, p.elem)
		}
	}
	r.s.AllTypes = r.allTypes
	return r.s, nil
}

// resolver carries the state of one Parse.
type resolver struct {
	rs       *rawSchema
	cache    *dregex.Cache
	s        *Schema
	allTypes []*Type
	text     map[string]*Type // interned text-only types by name
	groupUse []string         // group expansion stack (cycle detection)
	edc      []edcPending     // deferred consistency checks
	// pdecl memoizes local element declarations per raw particle, so a
	// named group expanded at several reference sites resolves each of its
	// elements to one declaration (and one inline anonymous type) — the
	// Element Declarations Consistent pointer check depends on it.
	pdecl map[*rawParticle]*ElementDecl
}

// builtinSimple is the XSD builtin simple-type vocabulary (anyType is
// separate: it admits any content, not just text).
var builtinSimple = map[string]bool{
	"string": true, "boolean": true, "decimal": true, "float": true,
	"double": true, "duration": true, "dateTime": true, "time": true,
	"date": true, "gYearMonth": true, "gYear": true, "gMonthDay": true,
	"gDay": true, "gMonth": true, "hexBinary": true, "base64Binary": true,
	"anyURI": true, "QName": true, "NOTATION": true,
	"normalizedString": true, "token": true, "language": true,
	"NMTOKEN": true, "NMTOKENS": true, "Name": true, "NCName": true,
	"ID": true, "IDREF": true, "IDREFS": true, "ENTITY": true,
	"ENTITIES": true, "integer": true, "nonPositiveInteger": true,
	"negativeInteger": true, "long": true, "int": true, "short": true,
	"byte": true, "nonNegativeInteger": true, "unsignedLong": true,
	"unsignedInt": true, "unsignedShort": true, "unsignedByte": true,
	"positiveInteger": true, "anySimpleType": true, "anyAtomicType": true,
}

// textType interns the text-only type for a simple-type name, so every
// element of the same simple type shares one *Type (keeping the Element
// Declarations Consistent check a pointer comparison).
func (r *resolver) textType(name string) *Type {
	if t, ok := r.text[name]; ok {
		return t
	}
	t := &Type{Name: name, Kind: TextContent, Deterministic: true}
	r.text[name] = t
	return t
}

// anyType resolves xs:anyType (and untyped elements): any children, any
// text, nothing checked.
func (r *resolver) anyType() *Type {
	if t, ok := r.text["anyType"]; ok {
		return t
	}
	t := &Type{Name: "anyType", Kind: AnyContent, Mixed: true, Deterministic: true}
	r.text["anyType"] = t
	return t
}

// typeFor resolves the type of an element declaration particle.
func (r *resolver) typeFor(p *rawParticle) (*Type, error) {
	switch {
	case p.inline != nil:
		label := "element " + p.name
		t := &Type{Name: label}
		if err := r.fillType(t, p.inline); err != nil {
			return nil, err
		}
		return t, nil
	case p.typ != "":
		if t, ok := r.s.Types[p.typ]; ok {
			return t, nil
		}
		if p.typ == "anyType" {
			return r.anyType(), nil
		}
		if r.rs.simpleTypes[p.typ] || builtinSimple[p.typ] {
			return r.textType(p.typ), nil
		}
		return nil, errAt(p.line, "element %q: unknown type %q", p.name, p.typ)
	case p.simple:
		return r.textType("(inline simpleType)"), nil
	default:
		return r.anyType(), nil
	}
}

// fillType compiles one complexType body into t.
func (r *resolver) fillType(t *Type, rt *rawType) error {
	t.Mixed = rt.mixed
	t.Line = rt.line
	switch {
	case rt.simpleContent:
		t.Kind = TextContent
		t.Deterministic = true
		return nil
	case rt.content == nil:
		t.Kind = EmptyContent
		t.Deterministic = true
		return nil
	}
	content := rt.content
	// A top-level group ref may name an all group; expand it before
	// deciding the content kind. The ref's occurrence applies to the
	// expansion, and xs:all only admits {0,1}/{1,1} — enforce that on the
	// ref's bounds, not just on the group definition's.
	if content.kind == "group" {
		body, err := r.group(content.ref, content.line)
		if err != nil {
			return err
		}
		if body.kind == "all" {
			if content.max == 0 {
				t.Kind = EmptyContent
				t.Deterministic = true
				return nil
			}
			if content.max != 1 || content.min > 1 {
				return errAt(content.line,
					"type %s: reference to xs:all group %q must have minOccurs 0 or 1 and maxOccurs 1",
					t.Name, content.ref)
			}
			all := *body
			if content.min == 0 {
				all.min = 0
			}
			content = &all
		}
	}
	if content.kind == "all" {
		return r.fillAll(t, content)
	}
	lw := &lowerer{r: r, t: t}
	src, kind, err := lw.lower(content)
	if err != nil {
		return err
	}
	if kind != lowExpr {
		t.Kind = EmptyContent
		t.Deterministic = true
		return nil
	}
	t.Kind = Children
	t.Model = src
	t.Numeric = lw.numeric
	return r.compileModel(t, content.line)
}

// compileModel compiles t.Model through the cache — the numeric pipeline
// when real counters appeared, the plain one otherwise — and readies the
// shared matcher for deterministic models.
func (r *resolver) compileModel(t *Type, line int) error {
	r.allTypes = append(r.allTypes, t)
	if t.Numeric {
		ne, err := r.cache.GetNumeric(t.Model, dregex.XSD)
		if err != nil {
			return errAt(line, "type %s: content model %s: %v", t.Name, t.Model, err)
		}
		t.NCM = ne
		t.Deterministic = ne.IsDeterministic()
		t.Rule = ne.Rule()
		if t.Deterministic {
			t.nmatcher = ne.Matcher()
		}
		return nil
	}
	cm, err := r.cache.Get(t.Model, dregex.XSD)
	if err != nil {
		return errAt(line, "type %s: content model %s: %v", t.Name, t.Model, err)
	}
	t.CM = cm
	t.Deterministic = cm.IsDeterministic()
	t.Rule = cm.Rule()
	if t.Deterministic {
		// Content models are shallow, so Auto resolves to the cheap
		// engines the paper recommends for them; fall back to k-ORE like
		// the DTD front end if the preferred engine cannot build.
		m, err := cm.Matcher(dregex.Auto)
		if err != nil {
			m, err = cm.Matcher(dregex.KORE)
			if err != nil {
				return errAt(line, "type %s: %v", t.Name, err)
			}
		}
		t.matcher = m
	}
	return nil
}

// fillAll compiles an xs:all content model: a set with per-member
// presence constraints rather than a regular expression (matching it as
// one would need every permutation).
func (r *resolver) fillAll(t *Type, p *rawParticle) error {
	if p.max == 0 {
		// Prohibited outright — same treatment as a maxOccurs=0 group ref
		// to an all group.
		t.Kind = EmptyContent
		t.Deterministic = true
		return nil
	}
	t.Kind = AllGroup
	t.Deterministic = true
	t.allOptional = p.min == 0
	if p.max != 1 || p.min > 1 {
		return errAt(p.line, "type %s: xs:all must have minOccurs 0 or 1 and maxOccurs 1", t.Name)
	}
	t.allIndex = map[string]int{}
	r.allTypes = append(r.allTypes, t)
	var names []string
	for _, item := range p.items {
		if item.kind != "element" {
			return errAt(item.line, "type %s: xs:all may contain only element declarations", t.Name)
		}
		if item.max == 0 {
			continue // member prohibited (maxOccurs="0") — removed
		}
		if item.max != 1 || item.min > 1 {
			return errAt(item.line, "type %s: xs:all members must have minOccurs 0 or 1 and maxOccurs 1", t.Name)
		}
		decl, err := r.elementDecl(item, t)
		if err != nil {
			return err
		}
		if _, dup := t.allIndex[decl.Name]; dup {
			return errAt(item.line, "type %s: element %q appears twice in xs:all", t.Name, decl.Name)
		}
		t.allIndex[decl.Name] = len(t.allDecl)
		t.allMin = append(t.allMin, item.min)
		t.allDecl = append(t.allDecl, decl)
		names = append(names, decl.Name)
	}
	t.Model = "all(" + strings.Join(names, ", ") + ")"
	return nil
}

// elementDecl resolves an element particle to a declaration and records it
// among t's children, enforcing Element Declarations Consistent (one name,
// one type, within a content model).
func (r *resolver) elementDecl(p *rawParticle, t *Type) (*ElementDecl, error) {
	var decl *ElementDecl
	if p.ref != "" {
		g, ok := r.s.Roots[p.ref]
		if !ok {
			return nil, errAt(p.line, "type %s: reference to undeclared element %q", t.Name, p.ref)
		}
		decl = g
	} else if memo, ok := r.pdecl[p]; ok {
		decl = memo // same particle again (repeated group expansion)
	} else {
		if err := checkName(p.name); err != nil {
			return nil, errAt(p.line, "type %s: %v", t.Name, err)
		}
		et, err := r.typeFor(p)
		if err != nil {
			return nil, err
		}
		decl = &ElementDecl{Name: p.name, Type: et}
		if r.pdecl == nil {
			r.pdecl = map[*rawParticle]*ElementDecl{}
		}
		r.pdecl[p] = decl
	}
	if t.children == nil {
		t.children = map[string]*ElementDecl{}
	}
	if prev, ok := t.children[decl.Name]; ok {
		// Global refs resolve to one shared decl; local re-declarations
		// must agree on the type (pointer identity — named and builtin
		// types are interned). A referenced global element's Type may
		// still be unresolved at this point (globals resolve after named
		// types fill), so the comparison is deferred to the end of Parse.
		if prev != decl {
			r.edc = append(r.edc, edcPending{
				typeName: t.Name, elem: decl.Name, line: p.line, a: prev, b: decl,
			})
		}
		return prev, nil
	}
	t.children[decl.Name] = decl
	t.childOrder = append(t.childOrder, decl.Name)
	return decl, nil
}

// edcPending is a deferred Element Declarations Consistent comparison
// (see elementDecl).
type edcPending struct {
	typeName string
	elem     string
	line     int
	a, b     *ElementDecl
}

// group resolves a named model group, guarding against reference cycles.
func (r *resolver) group(name string, line int) (*rawParticle, error) {
	body, ok := r.rs.groups[name]
	if !ok {
		return nil, errAt(line, "reference to undeclared group %q", name)
	}
	for _, seen := range r.groupUse {
		if seen == name {
			return nil, errAt(line, "group reference cycle through %q", name)
		}
	}
	return body, nil
}

// checkName verifies that an element name survives the round trip through
// content-model notation (schema documents can smuggle arbitrary bytes in
// name attributes; a name the model parser cannot read would corrupt the
// lowered expression).
func checkName(name string) error {
	if name == "" {
		return errors.New("empty element name")
	}
	for i, c := range name {
		if i == 0 && !nameStart(c) || i > 0 && !nameRune(c) {
			return fmt.Errorf("invalid element name %q", name)
		}
	}
	return nil
}

func nameStart(r rune) bool {
	return r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || r > 0x7f && nameLetter(r)
}

func nameRune(r rune) bool {
	return nameStart(r) || r == '-' || r == '.' || ('0' <= r && r <= '9')
}

// nameLetter is a conservative non-ASCII letter test (XML names allow
// most letters; anything the DTD-notation parser reads back is fine, but
// stay strict so lowered models never re-parse differently).
func nameLetter(r rune) bool {
	return (0xC0 <= r && r <= 0x2FF) || (0x370 <= r && r <= 0x1FFF) ||
		(0x3001 <= r && r <= 0xD7FF)
}

// Children returns the element names a type's content model can contain,
// sorted (reporting parity with dtd.Element.References).
func (t *Type) Children() []string {
	out := make([]string, len(t.childOrder))
	copy(out, t.childOrder)
	sort.Strings(out)
	return out
}

// Child returns the declaration of a child element name, or nil.
// childBytes is Child for a name straight out of the tokenizer; the map
// probe does not allocate.
func (t *Type) childBytes(name []byte) *ElementDecl {
	if t == nil || t.children == nil {
		return nil
	}
	return t.children[string(name)]
}

func (t *Type) Child(name string) *ElementDecl {
	if t == nil || t.children == nil {
		return nil
	}
	return t.children[name]
}

// Stats exposes the plain content model's structural parameters (k, c_e,
// …); the zero Stats for other kinds (see IterationStats for counters).
func (t *Type) Stats() dregex.Stats {
	if t.Kind != Children || t.Numeric {
		return dregex.Stats{}
	}
	return t.CM.Stats()
}

// IterationStats exposes the counter structure of a numeric model (the
// zero Stats for plain and non-Children models).
func (t *Type) IterationStats() numeric.Stats {
	if t.Kind != Children || !t.Numeric {
		return numeric.Stats{}
	}
	return t.NCM.IterationStats()
}

// Explain returns the counterexample diagnosis for a nondeterministic
// content model (nil when deterministic or not a Children model).
func (t *Type) Explain() *dregex.Ambiguity {
	if t.Kind != Children || t.Deterministic {
		return nil
	}
	if t.Numeric {
		return t.NCM.Explain()
	}
	return t.CM.Explain()
}

// MatchChildren matches a sequence of child element names against the
// type's content model (primarily for tests and tools; the validator
// streams instead). Nondeterministic plain models fall back to the NFA
// engine, numeric models are decided by counter simulation either way.
func (t *Type) MatchChildren(names []string) bool {
	switch t.Kind {
	case EmptyContent:
		return len(names) == 0
	case TextContent:
		return len(names) == 0
	case AnyContent:
		return true
	case AllGroup:
		seen := make([]bool, len(t.allDecl))
		for _, n := range names {
			i, ok := t.allIndex[n]
			if !ok || seen[i] {
				return false
			}
			seen[i] = true
		}
		if t.allOptional && len(names) == 0 {
			return true
		}
		for i, min := range t.allMin {
			if min > 0 && !seen[i] {
				return false
			}
		}
		return true
	}
	if t.Numeric {
		return t.NCM.MatchSymbols(names)
	}
	if t.matcher != nil {
		return t.matcher.MatchSymbols(names)
	}
	m, err := t.CM.Matcher(dregex.NFA)
	if err != nil {
		return false
	}
	return m.MatchSymbols(names)
}

// Issue is a lint finding about a schema.
type Issue struct {
	// Type names the offending type (or "element <x>" for inline types).
	Type string
	Msg  string
}

// Check lints the schema: nondeterministic content models — Unique
// Particle Attribution violations, fatal for conforming XSD processors —
// reported with the counterexample diagnosis the DTD path gets.
func (s *Schema) Check() []Issue {
	var issues []Issue
	for _, t := range s.AllTypes {
		if t.Deterministic {
			continue
		}
		msg := fmt.Sprintf("content model %s violates Unique Particle Attribution (%s)",
			t.Model, t.Rule)
		if amb := t.Explain(); amb != nil {
			if amb.Symbol != "" {
				msg += fmt.Sprintf("; symbol %q is ambiguous", amb.Symbol)
			}
			if len(amb.Word) > 0 {
				msg += fmt.Sprintf(" after reading %q", strings.Join(amb.Word, " "))
			}
		}
		issues = append(issues, Issue{Type: t.Name, Msg: msg})
	}
	return issues
}
