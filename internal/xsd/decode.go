// Raw schema-document decoding. This file turns an XML Schema document
// into a particle tree (rawSchema / rawType / rawParticle) with
// encoding/xml's token stream, preserving child order inside sequence and
// choice groups — the property struct-tag unmarshalling cannot give us.
// Interpretation (group expansion, type resolution, content-model
// lowering, compilation) happens in schema.go and lower.go.
package xsd

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dregex/internal/ast"
	"dregex/internal/dtd"
)

// rawParticle is one node of a content-model particle tree, or a top-level
// element declaration (kind "element").
type rawParticle struct {
	kind     string // "element", "sequence", "choice", "all", "group"
	name     string // element name, or group name at top level
	ref      string // element/group reference (local part)
	typ      string // element @type (local part; "" if none)
	min, max int    // occurrence range; max = ast.Unbounded for "unbounded"
	inline   *rawType
	simple   bool // element carried an inline <simpleType>
	items    []*rawParticle
	line     int // input line of the opening tag, for error positions
}

// rawType is one complexType declaration (named or inline).
type rawType struct {
	name          string
	mixed         bool
	simpleContent bool
	content       *rawParticle // nil for empty content
	line          int
}

// rawSchema is a decoded schema document before resolution.
type rawSchema struct {
	elements    []*rawParticle // top-level xs:element declarations
	types       []*rawType     // top-level named complexTypes
	groups      map[string]*rawParticle
	groupOrder  []string
	simpleTypes map[string]bool // names of top-level simpleTypes
}

// schemaError is a decode/resolution error with a source line.
type schemaError struct {
	Line int
	Msg  string
}

func (e *schemaError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("xsd: line %d: %s", e.Line, e.Msg)
	}
	return "xsd: " + e.Msg
}

func errAt(line int, format string, args ...interface{}) error {
	return &schemaError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// decoder wraps xml.Decoder with line tracking.
type decoder struct {
	d    *xml.Decoder
	data []byte
	// Incremental newline counter: InputOffset is monotonic, so each
	// line() call only scans the bytes consumed since the previous call
	// (keeping Parse linear in the document size however many particles
	// record their line).
	lastOff  int
	lastLine int
}

func (d *decoder) line() int {
	off := int(d.d.InputOffset())
	if off > len(d.data) {
		off = len(d.data)
	}
	if off < d.lastOff { // defensive; InputOffset never goes backwards
		d.lastOff, d.lastLine = 0, 0
	}
	d.lastLine += bytes.Count(d.data[d.lastOff:off], []byte("\n"))
	d.lastOff = off
	return 1 + d.lastLine
}

// decode parses a schema document into its raw particle form. A leading
// UTF-8 byte-order mark is stripped so line counting (and any byte-level
// prolog inspection) starts at the text an author sees.
func decode(data []byte) (*rawSchema, error) {
	data = dtd.StripBOMBytes(data)
	d := &decoder{d: xml.NewDecoder(bytes.NewReader(data)), data: data}
	rs := &rawSchema{groups: map[string]*rawParticle{}, simpleTypes: map[string]bool{}}
	root, err := d.nextStart()
	if err != nil {
		return nil, err
	}
	if root == nil || root.Name.Local != "schema" {
		return nil, errAt(d.line(), "document root must be an XML Schema <schema> element")
	}
	for {
		se, end, err := d.child()
		if err != nil {
			return nil, err
		}
		if end {
			return rs, nil
		}
		switch se.Name.Local {
		case "element":
			p, err := d.element(se)
			if err != nil {
				return nil, err
			}
			if p.name == "" {
				return nil, errAt(p.line, "top-level element declaration needs a name")
			}
			rs.elements = append(rs.elements, p)
		case "complexType":
			rt, err := d.complexType(se)
			if err != nil {
				return nil, err
			}
			if rt.name == "" {
				return nil, errAt(rt.line, "top-level complexType needs a name")
			}
			rs.types = append(rs.types, rt)
		case "group":
			if err := d.topGroup(se, rs); err != nil {
				return nil, err
			}
		case "simpleType":
			if n := attr(se, "name"); n != "" {
				rs.simpleTypes[n] = true
			}
			if err := d.skip(); err != nil {
				return nil, err
			}
		case "annotation", "import", "include", "redefine", "attribute",
			"attributeGroup", "notation":
			if err := d.skip(); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(d.line(), "unsupported top-level <%s>", se.Name.Local)
		}
	}
}

// nextStart returns the first StartElement token (nil at EOF).
func (d *decoder) nextStart() (*xml.StartElement, error) {
	for {
		tok, err := d.d.Token()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, errAt(d.line(), "malformed XML: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			return &se, nil
		}
	}
}

// child returns the next child StartElement of the currently open element,
// or end=true at its EndElement.
func (d *decoder) child() (xml.StartElement, bool, error) {
	for {
		tok, err := d.d.Token()
		if err != nil {
			return xml.StartElement{}, false, errAt(d.line(), "malformed XML: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return t, false, nil
		case xml.EndElement:
			return xml.StartElement{}, true, nil
		}
	}
}

// skip consumes the remainder of the currently open element.
func (d *decoder) skip() error {
	if err := d.d.Skip(); err != nil {
		return errAt(d.line(), "malformed XML: %v", err)
	}
	return nil
}

// attr returns the (namespace-ignored) attribute value, "" if absent.
func attr(se xml.StartElement, name string) string {
	for _, a := range se.Attr {
		if a.Name.Local == name && a.Name.Space == "" {
			return a.Value
		}
	}
	return ""
}

// localPart strips a qualifying prefix from a QName attribute value.
func localPart(qname string) string {
	if i := strings.LastIndexByte(qname, ':'); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

// occurs parses minOccurs/maxOccurs with their XSD defaults (1, 1).
// maxOccurs="0" prohibits the particle (returned as min=max=0); pairing
// it with an explicit positive minOccurs is contradictory and rejected
// like any other max < min (a defaulted minOccurs is forgiven — bare
// maxOccurs="0" is the common prohibition shorthand).
func (d *decoder) occurs(se xml.StartElement) (min, max int, err error) {
	min, max = 1, 1
	minExplicit := false
	if v := attr(se, "minOccurs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, errAt(d.line(), "invalid minOccurs %q", v)
		}
		min = n
		minExplicit = true
	}
	if v := attr(se, "maxOccurs"); v != "" {
		if v == "unbounded" {
			max = ast.Unbounded
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return 0, 0, errAt(d.line(), "invalid maxOccurs %q", v)
			}
			max = n
		}
	}
	if max == 0 && !minExplicit {
		return 0, 0, nil
	}
	if max != ast.Unbounded && max < min {
		return 0, 0, errAt(d.line(), "maxOccurs %d < minOccurs %d", max, min)
	}
	return min, max, nil
}

// element decodes an <element> declaration or reference (the opening tag
// has been consumed).
func (d *decoder) element(se xml.StartElement) (*rawParticle, error) {
	p := &rawParticle{kind: "element", line: d.line()}
	p.name = attr(se, "name")
	p.ref = localPart(attr(se, "ref"))
	p.typ = localPart(attr(se, "type"))
	var err error
	p.min, p.max, err = d.occurs(se)
	if err != nil {
		return nil, err
	}
	if p.name == "" && p.ref == "" {
		return nil, errAt(p.line, "element needs a name or a ref")
	}
	if p.name != "" && p.ref != "" {
		return nil, errAt(p.line, "element %q has both name and ref", p.name)
	}
	if p.ref != "" && p.typ != "" {
		return nil, errAt(p.line, "element ref %q cannot carry a type", p.ref)
	}
	for {
		ce, end, err := d.child()
		if err != nil {
			return nil, err
		}
		if end {
			return p, nil
		}
		switch ce.Name.Local {
		case "complexType":
			if p.ref != "" {
				return nil, errAt(d.line(), "element ref %q cannot carry an inline type", p.ref)
			}
			if p.inline != nil || p.typ != "" {
				return nil, errAt(d.line(), "element %q has more than one type", p.name)
			}
			rt, err := d.complexType(ce)
			if err != nil {
				return nil, err
			}
			p.inline = rt
		case "simpleType":
			if p.ref != "" {
				return nil, errAt(d.line(), "element ref %q cannot carry an inline type", p.ref)
			}
			if p.inline != nil || p.typ != "" {
				return nil, errAt(d.line(), "element %q has more than one type", p.name)
			}
			p.simple = true
			if err := d.skip(); err != nil {
				return nil, err
			}
		case "annotation", "unique", "key", "keyref":
			if err := d.skip(); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(d.line(), "unsupported <%s> inside element declaration", ce.Name.Local)
		}
	}
}

// complexType decodes a <complexType> (the opening tag has been consumed).
func (d *decoder) complexType(se xml.StartElement) (*rawType, error) {
	rt := &rawType{name: attr(se, "name"), line: d.line()}
	if v := attr(se, "mixed"); v == "true" || v == "1" {
		rt.mixed = true
	}
	for {
		ce, end, err := d.child()
		if err != nil {
			return nil, err
		}
		if end {
			return rt, nil
		}
		switch ce.Name.Local {
		case "sequence", "choice", "all":
			if rt.content != nil {
				return nil, errAt(d.line(), "complexType %s has more than one content particle", rt.name)
			}
			p, err := d.modelGroup(ce)
			if err != nil {
				return nil, err
			}
			rt.content = p
		case "group":
			if rt.content != nil {
				return nil, errAt(d.line(), "complexType %s has more than one content particle", rt.name)
			}
			p, err := d.groupRef(ce)
			if err != nil {
				return nil, err
			}
			rt.content = p
		case "simpleContent":
			rt.simpleContent = true
			if err := d.skip(); err != nil {
				return nil, err
			}
		case "complexContent":
			return nil, errAt(d.line(), "complexContent (derivation) is not supported")
		case "annotation", "attribute", "attributeGroup", "anyAttribute":
			if err := d.skip(); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(d.line(), "unsupported <%s> inside complexType", ce.Name.Local)
		}
	}
}

// modelGroup decodes <sequence>, <choice> or <all> (the opening tag has
// been consumed).
func (d *decoder) modelGroup(se xml.StartElement) (*rawParticle, error) {
	p := &rawParticle{kind: se.Name.Local, line: d.line()}
	var err error
	p.min, p.max, err = d.occurs(se)
	if err != nil {
		return nil, err
	}
	for {
		ce, end, err := d.child()
		if err != nil {
			return nil, err
		}
		if end {
			return p, nil
		}
		switch ce.Name.Local {
		case "element":
			c, err := d.element(ce)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, c)
		case "sequence", "choice", "all":
			if ce.Name.Local == "all" || p.kind == "all" {
				return nil, errAt(d.line(), "xs:all must be the entire content model")
			}
			c, err := d.modelGroup(ce)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, c)
		case "group":
			if p.kind == "all" {
				return nil, errAt(d.line(), "xs:all may contain only element declarations")
			}
			c, err := d.groupRef(ce)
			if err != nil {
				return nil, err
			}
			p.items = append(p.items, c)
		case "any":
			return nil, errAt(d.line(), "xs:any wildcards are not supported")
		case "annotation":
			if err := d.skip(); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(d.line(), "unsupported <%s> inside %s", ce.Name.Local, p.kind)
		}
	}
}

// groupRef decodes a <group ref="…"/> particle.
func (d *decoder) groupRef(se xml.StartElement) (*rawParticle, error) {
	p := &rawParticle{kind: "group", line: d.line()}
	p.ref = localPart(attr(se, "ref"))
	if p.ref == "" {
		return nil, errAt(p.line, "group reference needs a ref")
	}
	var err error
	p.min, p.max, err = d.occurs(se)
	if err != nil {
		return nil, err
	}
	if err := d.skip(); err != nil {
		return nil, err
	}
	return p, nil
}

// topGroup decodes a top-level named <group> definition into rs.groups.
func (d *decoder) topGroup(se xml.StartElement, rs *rawSchema) error {
	name := attr(se, "name")
	line := d.line()
	if name == "" {
		return errAt(line, "top-level group needs a name")
	}
	if _, dup := rs.groups[name]; dup {
		return errAt(line, "group %q defined twice", name)
	}
	var body *rawParticle
	for {
		ce, end, err := d.child()
		if err != nil {
			return err
		}
		if end {
			if body == nil {
				return errAt(line, "group %q has no content particle", name)
			}
			rs.groups[name] = body
			rs.groupOrder = append(rs.groupOrder, name)
			return nil
		}
		switch ce.Name.Local {
		case "sequence", "choice", "all":
			if body != nil {
				return errAt(d.line(), "group %q has more than one content particle", name)
			}
			p, err := d.modelGroup(ce)
			if err != nil {
				return err
			}
			body = p
		case "annotation":
			if err := d.skip(); err != nil {
				return err
			}
		default:
			return errAt(d.line(), "unsupported <%s> inside group %q", ce.Name.Local, name)
		}
	}
}
