package xsd

import (
	"fmt"
	"strings"
	"testing"

	"dregex/internal/numeric"
)

const catalogSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="catalog">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="product" type="ProductType" minOccurs="1" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="ProductType">
    <xs:sequence>
      <xs:element name="sku" type="xs:string"/>
      <xs:element name="img" type="xs:string" minOccurs="2" maxOccurs="4"/>
      <xs:element name="note" type="NoteType" minOccurs="0"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="NoteType" mixed="true">
    <xs:sequence>
      <xs:element name="em" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`

func product(imgs int, note string) string {
	var b strings.Builder
	b.WriteString("<product><sku>X</sku>")
	for i := 0; i < imgs; i++ {
		b.WriteString("<img>i</img>")
	}
	b.WriteString(note)
	b.WriteString("</product>")
	return b.String()
}

func TestValidateInstances(t *testing.T) {
	s, err := Parse([]byte(catalogSchema))
	if err != nil {
		t.Fatal(err)
	}
	good := "<catalog>" + product(2, "") + product(4, "<note>plain <em>x</em> text</note>") + "</catalog>"
	errs, err := s.Validate(strings.NewReader(good))
	if err != nil || len(errs) != 0 {
		t.Fatalf("valid document rejected: errs=%v err=%v", errs, err)
	}

	cases := []struct {
		doc  string
		want string // substring of the expected violation
	}{
		{"<catalog>" + product(1, "") + "</catalog>", "children end prematurely"}, // img below minOccurs
		{"<catalog>" + product(5, "") + "</catalog>", "violates content model"},   // img beyond maxOccurs
		{"<catalog></catalog>", "children end prematurely"},                       // no product
		{"<catalog>" + product(2, "<bogus/>") + "</catalog>", "violates content model"},
		{"<wrong/>", "root element is not declared"},
		{"<catalog>" + strings.Replace(product(2, ""), "<sku>X</sku>", "<sku>X</sku>text", 1) + "</catalog>",
			"text content not allowed"},
		{"<catalog>" + strings.Replace(product(2, ""), "<sku>X</sku>", "<sku><sub/></sku>", 1) + "</catalog>",
			"simple content"},
	}
	for _, c := range cases {
		errs, err := s.Validate(strings.NewReader(c.doc))
		if err != nil {
			t.Errorf("doc %.60q: document-level error %v", c.doc, err)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("doc %.60q: violations %v lack %q", c.doc, errs, c.want)
		}
	}

	if _, err := s.Validate(strings.NewReader("<catalog><product>")); err == nil {
		t.Error("malformed XML not reported")
	}
	// A document without any root element (empty or comments-only) is not
	// valid either.
	for _, doc := range []string{"", "<!-- nothing here -->"} {
		if _, err := s.Validate(strings.NewReader(doc)); err == nil ||
			!strings.Contains(err.Error(), "no root element") {
			t.Errorf("rootless document %q: err = %v", doc, err)
		}
	}

	// A second top-level element is not well-formed XML; encoding/xml
	// tokenizes it anyway, so the validator must flag it.
	multi := good + "<catalog>" + product(2, "") + "</catalog>"
	errs, err = s.Validate(strings.NewReader(multi))
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "more than one root") {
		t.Errorf("multiple roots: got %v, want one more-than-one-root error", errs)
	}
}

func TestValidateAllGroupInstances(t *testing.T) {
	src := `<schema xmlns="x"><element name="cfg"><complexType mixed="true"><all minOccurs="0">
  <element name="host" type="string"/>
  <element name="port" type="string" minOccurs="0"/>
</all></complexType></element></schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	check := func(doc string, wantErrs int) {
		t.Helper()
		errs, err := s.Validate(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if len(errs) != wantErrs {
			t.Errorf("%s: got %v, want %d errors", doc, errs, wantErrs)
		}
	}
	check(`<cfg><port>1</port><host>h</host></cfg>`, 0)
	check(`<cfg>ok text</cfg>`, 0) // allOptional + mixed
	check(`<cfg><port>1</port></cfg>`, 1)
	check(`<cfg><host>h</host><host>h</host></cfg>`, 1)
	check(`<cfg><nope/></cfg>`, 1)
}

// TestValidateAnyType: untyped elements (and explicit xs:anyType) accept
// any children and text unchecked, like DTD's ANY.
func TestValidateAnyType(t *testing.T) {
	src := `<schema xmlns="x">
  <element name="r"><complexType><sequence>
    <element name="blob"/>
    <element name="any2" type="anyType"/>
  </sequence></complexType></element>
</schema>`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	blob := s.Roots["r"].Type.Child("blob").Type
	if blob.Kind != AnyContent || !blob.MatchChildren([]string{"whatever"}) {
		t.Fatalf("untyped element kind = %v, want any", blob.Kind)
	}
	if any2 := s.Roots["r"].Type.Child("any2").Type; any2 != blob {
		t.Error("explicit xs:anyType must intern to the same type")
	}
	doc := `<r><blob>text <x><y/></x> more</blob><any2/></r>`
	errs, err := s.Validate(strings.NewReader(doc))
	if err != nil || len(errs) != 0 {
		t.Fatalf("anyType content rejected: errs=%v err=%v", errs, err)
	}
}

// TestValidatorConcurrent runs the worker pool over a mixed corpus (run
// with -race in CI: engines and compiled models are shared across
// workers).
func TestValidatorConcurrent(t *testing.T) {
	s, err := Parse([]byte(catalogSchema))
	if err != nil {
		t.Fatal(err)
	}
	var docs []Doc
	wantValid := 0
	for i := 0; i < 200; i++ {
		imgs := 2 + i%4 // 2..5; 5 is invalid
		valid := imgs <= 4
		if valid {
			wantValid++
		}
		docs = append(docs, Doc{
			Name: fmt.Sprintf("doc%d", i),
			Data: []byte("<catalog>" + product(imgs, "") + "</catalog>"),
		})
	}
	v := NewValidator(s, 8)
	results := v.ValidateDocs(docs)
	gotValid := 0
	for i, r := range results {
		if r.Name != docs[i].Name {
			t.Fatalf("result %d out of order: %s", i, r.Name)
		}
		if r.Valid() {
			gotValid++
		}
	}
	if gotValid != wantValid {
		t.Errorf("valid = %d, want %d", gotValid, wantValid)
	}
}

// TestChildrenPathZeroAlloc pins the acceptance criterion: in steady state
// the numeric children-matching path — stream init, one feed per child,
// acceptance check — allocates nothing per document, so corpus validation
// cost is XML decoding plus counter-simulation transitions.
func TestChildrenPathZeroAlloc(t *testing.T) {
	s, err := Parse([]byte(catalogSchema))
	if err != nil {
		t.Fatal(err)
	}
	typ := s.Types["ProductType"]
	if !typ.Numeric {
		t.Fatal("ProductType must use the counter engine")
	}
	children := []string{"sku", "img", "img", "img", "note"}
	var st numeric.Stream
	run := func() {
		typ.nmatcher.InitStream(&st)
		for _, c := range children {
			st.FeedName(c)
		}
		if !st.Accepts() {
			t.Fatal("valid children rejected")
		}
	}
	run() // warm up the stream's buffers
	if allocs := testing.AllocsPerRun(1000, run); allocs != 0 {
		t.Errorf("children-model path allocates %.2f/doc, want 0", allocs)
	}

	// Whole-document steady state: everything beyond the XML decoder
	// reuses per-worker state. The decoder itself allocates (tokens,
	// name strings), so pin a generous ceiling rather than zero — the
	// point is that allocations do not scale with the schema or grow run
	// over run.
	doc := "<catalog>" + product(3, "") + product(2, "") + "</catalog>"
	var ds docState
	if errs, err := s.validate(strings.NewReader(doc), &ds); err != nil || len(errs) != 0 {
		t.Fatalf("warm-up: errs=%v err=%v", errs, err)
	}
	r := strings.NewReader("")
	perDoc := testing.AllocsPerRun(200, func() {
		r.Reset(doc)
		if errs, err := s.validate(r, &ds); err != nil || len(errs) != 0 {
			t.Fatal("document became invalid")
		}
	})
	t.Logf("whole-document allocations (decoder included): %.1f", perDoc)
}
