package xsd

import (
	"strings"
	"testing"
)

const entitySchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="note">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="body" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// Regression: instance documents carrying a DOCTYPE whose internal subset
// declares general entities used to fail as "malformed XML" because the
// XSD validator never populated xml.Decoder.Entity.
func TestValidateInstanceWithEntities(t *testing.T) {
	s, err := Parse([]byte(entitySchema))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	doc := `<?xml version="1.0"?>
<!DOCTYPE note [ <!ENTITY who "Alice"> ]>
<note><body>&who;</body></note>`
	errs, err := s.Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(errs) != 0 {
		t.Fatalf("Validate errors: %v", errs)
	}
	// Undeclared entities are still malformed.
	bad := `<!DOCTYPE note [ <!ENTITY who "Alice"> ]><note><body>&other;</body></note>`
	if _, err := s.Validate(strings.NewReader(bad)); err == nil {
		t.Fatal("undeclared entity accepted")
	}
	// Entity-free documents with predefined entities keep working.
	plain := `<note><body>a &amp; b</body></note>`
	if errs, err := s.Validate(strings.NewReader(plain)); err != nil || len(errs) != 0 {
		t.Fatalf("predefined entities: errs=%v err=%v", errs, err)
	}
}

// A BOM-prefixed schema document parses.
func TestParseBOMSchema(t *testing.T) {
	s, err := Parse([]byte("\uFEFF" + entitySchema))
	if err != nil {
		t.Fatalf("Parse with BOM: %v", err)
	}
	if s.Roots["note"] == nil {
		t.Fatal("root element missing")
	}
	// And a BOM-prefixed instance validates.
	doc := "\uFEFF<note><body>hi</body></note>"
	if errs, err := s.Validate(strings.NewReader(doc)); err != nil || len(errs) != 0 {
		t.Fatalf("BOM instance: errs=%v err=%v", errs, err)
	}
}
