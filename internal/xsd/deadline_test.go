package xsd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dregex/internal/run"
)

// wideCatalog builds a catalog with far more than one checkpoint stride of
// tokens, so an armed deadline is guaranteed to be probed mid-stream.
func wideCatalog(products int) []byte {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < products; i++ {
		b.WriteString(product(2, ""))
	}
	b.WriteString("</catalog>")
	return []byte(b.String())
}

func TestValidateDeadline(t *testing.T) {
	s, err := Parse([]byte(catalogSchema))
	if err != nil {
		t.Fatal(err)
	}
	doc := wideCatalog(500)
	var st DocState

	if errs, err := s.ValidateBytesReusing(doc, &st); err != nil || len(errs) != 0 {
		t.Fatalf("disarmed: errs=%v err=%v", errs, err)
	}

	st.SetDeadline(nil, time.Now().Add(-time.Second))
	if _, err := s.ValidateBytesReusing(doc, &st); !errors.Is(err, run.ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want run.ErrDeadlineExceeded", err)
	}

	done := make(chan struct{})
	close(done)
	st.SetDeadline(done, time.Time{})
	if _, err := s.ValidateBytesReusing(doc, &st); !errors.Is(err, run.ErrCanceled) {
		t.Fatalf("closed done: err = %v, want run.ErrCanceled", err)
	}

	st.SetDeadline(nil, time.Time{})
	if errs, err := s.ValidateBytesReusing(doc, &st); err != nil || len(errs) != 0 {
		t.Fatalf("re-disarmed: errs=%v err=%v", errs, err)
	}
}

// TestValidateDeadlineAllocs extends the steady-state allocation pin to
// armed checkpoints: arming cancellation must not add a single allocation
// to the byte-validation path.
func TestValidateDeadlineAllocs(t *testing.T) {
	s, err := Parse([]byte(catalogSchema))
	if err != nil {
		t.Fatal(err)
	}
	doc := wideCatalog(500)
	var st DocState
	if _, err := s.ValidateBytesReusing(doc, &st); err != nil {
		t.Fatal(err)
	}
	measure := func() float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := s.ValidateBytesReusing(doc, &st); err != nil {
				t.Fatal(err)
			}
		})
	}
	disarmed := measure()
	st.SetDeadline(make(chan struct{}), time.Now().Add(time.Hour))
	armed := measure()
	if armed != disarmed {
		t.Errorf("allocs/doc: disarmed=%.2f armed=%.2f, want identical", disarmed, armed)
	}
	if disarmed != 0 {
		t.Logf("byte path allocates %.2f/doc before arming (informational)", disarmed)
	}
}
