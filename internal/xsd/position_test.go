package xsd

import (
	"strings"
	"testing"
)

// Regression: XSD violation positions must count rune columns and ignore a
// leading BOM, exactly like the DTD validator (both stamp positions from
// the shared xmltok tokenizer).
func TestPositionMultibyteBOM(t *testing.T) {
	s, err := Parse([]byte(catalogSchema))
	if err != nil {
		t.Fatal(err)
	}
	// Line 2 holds multi-byte text inside <note> ("héllo wörld…", mixed
	// content, legal) followed by an out-of-model <bogus/>; the document is
	// BOM-prefixed. The violation is reported at <bogus/>, whose column
	// counts runes on its own line.
	doc := "\uFEFF<catalog><product><sku>X</sku><img>i</img><img>i</img>\n" +
		"<note>héllo wörld <bogus/></note></product></catalog>"
	errs, err := s.Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) == 0 {
		t.Fatal("no errors for out-of-model <bogus/>")
	}
	// "<note>héllo wörld " is 18 runes (20 bytes); <bogus/> is column 19.
	if errs[0].Line != 2 || errs[0].Col != 19 {
		t.Errorf("position = %d:%d (%v), want 2:19 (runes, BOM ignored)",
			errs[0].Line, errs[0].Col, errs[0])
	}
}
