package xsd

import (
	"strings"
	"testing"
)

// FuzzXSDContentModel checks the schema front end's safety invariants on
// arbitrary input: decoding, lowering and compilation never panic, and
// every model a successful Parse produces is internally consistent — its
// lowered source compiled (by construction), its determinism verdict is
// served without panicking, matching its own child vocabulary terminates,
// and validating a small instance document never panics. Semantics are
// locked in by the directed and differential tests.
func FuzzXSDContentModel(f *testing.F) {
	seeds := []string{
		librarySchema,
		catalogSchema,
		`<schema xmlns="x"><element name="r"><complexType><sequence>
  <element name="a" type="string" minOccurs="0" maxOccurs="7"/>
  <element name="a" type="string"/>
</sequence></complexType></element></schema>`,
		`<schema xmlns="x"><element name="r"><complexType mixed="true"><all minOccurs="0">
  <element name="a" type="string"/><element name="b" type="string" minOccurs="0"/>
</all></complexType></element></schema>`,
		`<schema xmlns="x">
  <group name="g"><choice><element name="x" type="string"/><group ref="g"/></choice></group>
  <element name="r"><complexType><group ref="g" maxOccurs="4"/></complexType></element>
</schema>`,
		`<schema xmlns="x"><element name="r" type="NoSuch"/></schema>`,
		`<schema xmlns="x"><element name="r"><complexType><sequence>
  <element name="gone" type="string" maxOccurs="0"/>
</sequence></complexType></element></schema>`,
		`<schema`,
		`<schema xmlns="x"><element name="r"><complexType><sequence><any/></sequence></complexType></element></schema>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse([]byte(src))
		if err != nil {
			return
		}
		s.Check()
		for _, typ := range s.AllTypes {
			if typ.Kind == Children && typ.CM == nil && typ.NCM == nil {
				t.Fatalf("type %s: Children kind without a compiled model", typ.Name)
			}
			// Matching the type's own child vocabulary must terminate and
			// not panic, deterministic or not.
			typ.MatchChildren(typ.childOrder)
			typ.MatchChildren(nil)
		}
		for _, name := range s.RootOrder {
			doc := "<" + name + "></" + name + ">"
			if _, err := s.Validate(strings.NewReader(doc)); err != nil {
				continue // malformed synthesized doc (exotic names) is fine
			}
		}
	})
}
