package xsd

import (
	"strings"
	"testing"

	"dregex"
)

// TestDTDXSDAgreement is the cross-front-end differential test: the same
// content model, written once in DTD content-model notation and once as an
// XSD particle tree, must yield the same determinism verdict and the same
// membership verdict for every word up to a bounding length. The DTD side
// goes through dregex.CompileNumeric (counter simulation decides membership
// for deterministic and nondeterministic models alike); the XSD side goes
// through the full Parse → lower → compile pipeline, which independently
// chooses the plain or the counter engine.
func TestDTDXSDAgreement(t *testing.T) {
	cases := []struct {
		name     string
		dtdModel string
		particle string // complexType body of element r
		symbols  []string
		maxLen   int
	}{
		{
			name:     "rigid counters",
			dtdModel: "(a, b){2,3}, c?",
			particle: `<sequence>
  <sequence minOccurs="2" maxOccurs="3"><element name="a" type="string"/><element name="b" type="string"/></sequence>
  <element name="c" type="string" minOccurs="0"/>
</sequence>`,
			symbols: []string{"a", "b", "c"},
			maxLen:  8,
		},
		{
			name:     "classical operators",
			dtdModel: "(a | b)*, c",
			particle: `<sequence>
  <choice minOccurs="0" maxOccurs="unbounded"><element name="a" type="string"/><element name="b" type="string"/></choice>
  <element name="c" type="string"/>
</sequence>`,
			symbols: []string{"a", "b", "c"},
			maxLen:  6,
		},
		{
			name:     "element occurrence",
			dtdModel: "a{2,4}",
			particle: `<sequence><element name="a" type="string" minOccurs="2" maxOccurs="4"/></sequence>`,
			symbols:  []string{"a"},
			maxLen:   6,
		},
		{
			name:     "unbounded counter",
			dtdModel: "(a, b?){2,}",
			particle: `<sequence minOccurs="2" maxOccurs="unbounded"><element name="a" type="string"/><element name="b" type="string" minOccurs="0"/></sequence>`,
			symbols:  []string{"a", "b"},
			maxLen:   7,
		},
		{
			name:     "nondeterministic plain",
			dtdModel: "a?, a",
			particle: `<sequence><element name="a" type="string" minOccurs="0"/><element name="a" type="string"/></sequence>`,
			symbols:  []string{"a"},
			maxLen:   4,
		},
		{
			name:     "nondeterministic counter",
			dtdModel: "a{1,3}, a",
			particle: `<sequence><element name="a" type="string" maxOccurs="3"/><element name="a" type="string"/></sequence>`,
			symbols:  []string{"a"},
			maxLen:   6,
		},
		{
			name:     "choice of counted blocks",
			dtdModel: "((a, b){1,2} | c)+",
			particle: `<choice minOccurs="1" maxOccurs="unbounded">
  <sequence minOccurs="1" maxOccurs="2"><element name="a" type="string"/><element name="b" type="string"/></sequence>
  <element name="c" type="string"/>
</choice>`,
			symbols: []string{"a", "b", "c"},
			maxLen:  7,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref, err := dregex.CompileNumeric(c.dtdModel, dregex.DTD)
			if err != nil {
				t.Fatalf("DTD side: %v", err)
			}
			schema := `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="r"><complexType>` +
				c.particle + `</complexType></element></schema>`
			s, err := Parse([]byte(schema))
			if err != nil {
				t.Fatalf("XSD side: %v", err)
			}
			typ := s.Roots["r"].Type
			if typ.Kind != Children {
				t.Fatalf("XSD side lowered to kind %v", typ.Kind)
			}
			if got, want := typ.Deterministic, ref.IsDeterministic(); got != want {
				t.Fatalf("determinism disagrees: XSD(%s)=%v, DTD(%s)=%v (rules %q vs %q)",
					typ.Model, got, c.dtdModel, want, typ.Rule, ref.Rule())
			}
			words := enumerate(c.symbols, c.maxLen)
			agreeAccepted := 0
			for _, w := range words {
				dtdOK := ref.MatchSymbols(w)
				xsdOK := typ.MatchChildren(w)
				if dtdOK != xsdOK {
					t.Fatalf("membership disagrees on %v: DTD=%v XSD=%v (models %q vs %q)",
						w, dtdOK, xsdOK, c.dtdModel, typ.Model)
				}
				if dtdOK {
					agreeAccepted++
				}
			}
			if agreeAccepted == 0 {
				t.Fatalf("degenerate case: no accepted word up to length %d", c.maxLen)
			}
			t.Logf("%d words compared, %d accepted by both", len(words), agreeAccepted)
		})
	}
}

// enumerate returns every word over symbols with length ≤ maxLen.
func enumerate(symbols []string, maxLen int) [][]string {
	words := [][]string{nil}
	prev := [][]string{nil}
	for l := 1; l <= maxLen; l++ {
		var next [][]string
		for _, w := range prev {
			for _, s := range symbols {
				nw := append(append(make([]string, 0, len(w)+1), w...), s)
				next = append(next, nw)
			}
		}
		words = append(words, next...)
		prev = next
	}
	return words
}

// TestDTDXSDAgreementLint checks verdict parity through the two linting
// front ends as well: a DTD and an XSD declaring the same models must
// flag the same elements.
func TestDTDXSDAgreementLint(t *testing.T) {
	schema := `<schema xmlns="x">
  <element name="doc">
    <complexType><sequence>
      <element name="ok" type="OkT"/>
      <element name="bad" type="BadT"/>
    </sequence></complexType>
  </element>
  <complexType name="OkT"><sequence>
    <element name="x" type="string" maxOccurs="9"/>
  </sequence></complexType>
  <complexType name="BadT"><sequence>
    <element name="x" type="string" minOccurs="0" maxOccurs="9"/>
    <element name="x" type="string"/>
  </sequence></complexType>
</schema>`
	s, err := Parse([]byte(schema))
	if err != nil {
		t.Fatal(err)
	}
	var flagged []string
	for _, is := range s.Check() {
		flagged = append(flagged, is.Type)
	}
	if strings.Join(flagged, ",") != "BadT" {
		t.Fatalf("flagged types = %v, want [BadT]", flagged)
	}
}
