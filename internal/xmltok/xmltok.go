// Package xmltok is a purpose-built streaming XML tokenizer for the
// validation hot path. It tokenizes a document held in a []byte —
// start/end/empty element tags with attributes, character data, CDATA
// sections, comments, processing instructions and directives — without
// allocating in steady state: token names and text are subslices of the
// input (or of a reusable scratch buffer when entity references or \r
// normalization force a rewrite), so a pooled Tokenizer revalidates
// documents with zero per-document garbage.
//
// The token stream deliberately mirrors encoding/xml's Strict decoder on
// well-formed input: the same tag-nesting checks ("element <a> closed by
// </b>", "unexpected EOF" with open elements), the same text semantics
// (\r and \r\n rewritten to \n, "]]>" forbidden in plain character data,
// the five predefined entities plus a caller-supplied internal-entity
// map, decimal/hex character references capped at unicode.MaxRune with
// surrogates encoding as U+FFFD), the same character-range validation,
// and the same directive accumulation (quote-aware, <>-depth-tracked,
// embedded comments replaced by a space). Where encoding/xml consults
// the full Unicode name tables, xmltok accepts a strict superset of
// names (any byte ≥ 0x80 may appear in a name), so a document
// encoding/xml tokenizes is never rejected for its names here; the
// differential fuzz target FuzzXMLTok pins the agreement.
//
// Positions are byte-accurate: every token records the byte offset of
// its first character, and Position converts any offset to a 1-based
// line and rune column — multi-byte UTF-8 text does not skew columns,
// and a leading byte-order mark is stripped by Reset so offsets match
// the text an author sees.
package xmltok

import (
	"bytes"
	"fmt"
	"io"
	"unicode"
	"unicode/utf8"
)

// Kind identifies a token produced by Next.
type Kind uint8

// Token kinds. Text covers both character data and CDATA sections (one
// token per section, as encoding/xml emits them). A self-closing tag
// yields a StartElement with SelfClosing()==true followed by a synthetic
// EndElement.
const (
	Text Kind = iota
	StartElement
	EndElement
	Comment
	ProcInst
	Directive
)

func (k Kind) String() string {
	switch k {
	case Text:
		return "Text"
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Comment:
		return "Comment"
	case ProcInst:
		return "ProcInst"
	case Directive:
		return "Directive"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// SyntaxError is a malformed-XML error with a byte-accurate position.
type SyntaxError struct {
	Msg    string
	Line   int // 1-based line
	Col    int // 1-based rune column within the line
	Offset int // byte offset in the (BOM-stripped) input
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// bom is the UTF-8 byte-order mark; Reset strips it so positions are
// relative to the text an author sees.
var bom = []byte("\uFEFF")

// maxKeepScratch caps the scratch buffer retained across Reset, so one
// pathological document cannot pin megabytes behind a pooled Tokenizer.
const maxKeepScratch = 1 << 20

// valRef locates resolved text: a [lo,hi) range in either the input
// (zero-copy) or the scratch buffer (entity-expanded / \r-normalized).
// Ranges index rather than subslice so scratch may grow underneath.
type valRef struct {
	lo, hi  int
	scratch bool
}

// attrSpan is one attribute: name as a range in the input, value as a
// valRef, plus the name's byte offset for error positions.
type attrSpan struct {
	nameLo, nameHi int
	val            valRef
}

// span is a name range in the input (element-stack entries).
type span struct{ lo, hi int }

// Tokenizer scans one document per Reset. The zero value is ready.
// Not safe for concurrent use.
type Tokenizer struct {
	data     []byte
	pos      int
	entities map[string]string

	kind    Kind
	tokOff  int // byte offset of the token's first byte
	name    span
	content valRef
	self    bool
	attrs   []attrSpan
	nattr   int

	scratch []byte
	stack   []span
	pending bool // synthetic EndElement of a self-closing tag is due
	err     error

	// memoized forward position cursor for Position
	posOff, posLine, lineStart int
}

// Reset binds the tokenizer to a new document, stripping a leading BOM.
// The caller must keep data unmodified while tokenizing; returned names
// and text alias it.
func (t *Tokenizer) Reset(data []byte) {
	t.data = bytes.TrimPrefix(data, bom)
	t.pos = 0
	t.entities = nil
	t.kind = Text
	t.tokOff = 0
	t.name = span{}
	t.content = valRef{}
	t.self = false
	t.nattr = 0
	if cap(t.scratch) > maxKeepScratch {
		t.scratch = nil
	}
	t.scratch = t.scratch[:0]
	t.stack = t.stack[:0]
	t.pending = false
	t.err = nil
	t.posOff, t.posLine, t.lineStart = 0, 1, 0
}

// SetEntities installs the internal general entities resolvable in this
// document (on top of the five predefined ones, which cannot be
// overridden — the same precedence as encoding/xml). The map is read,
// never written, and may be shared.
func (t *Tokenizer) SetEntities(ents map[string]string) { t.entities = ents }

// Kind returns the kind of the current token.
func (t *Tokenizer) Kind() Kind { return t.kind }

// Offset returns the byte offset of the current token's first byte (the
// '<' of a tag, the first character of text).
func (t *Tokenizer) Offset() int { return t.tokOff }

// Name returns the full element name (prefix included) of a
// StartElement or EndElement, or the target of a ProcInst. Valid until
// the next call to Next.
//
//dregex:noalloc
func (t *Tokenizer) Name() []byte { return t.data[t.name.lo:t.name.hi] }

// Local returns the local part of the element name: the part after the
// colon when the name has exactly one with both sides nonempty (the
// rule encoding/xml applies), the whole name otherwise.
//
//dregex:noalloc
func (t *Tokenizer) Local() []byte { return localOf(t.Name()) }

// Text returns the current token's content: resolved character data for
// Text, raw bytes for Comment (without <!-- -->), ProcInst (after the
// target, without <? ?>) and Directive (between <! and >, embedded
// comments replaced by a space). Valid until the next call to Next.
//
//dregex:noalloc
func (t *Tokenizer) Text() []byte { return t.bytesOf(t.content) }

// SelfClosing reports whether the current StartElement came from an
// empty-element tag (<a/>); its synthetic EndElement follows.
func (t *Tokenizer) SelfClosing() bool { return t.self }

// AttrCount returns the number of attributes of the current StartElement.
func (t *Tokenizer) AttrCount() int { return t.nattr }

// AttrName returns the full name of attribute i.
//
//dregex:noalloc
func (t *Tokenizer) AttrName(i int) []byte {
	a := &t.attrs[i]
	return t.data[a.nameLo:a.nameHi]
}

// AttrLocal returns the local part of attribute i's name.
//
//dregex:noalloc
func (t *Tokenizer) AttrLocal(i int) []byte { return localOf(t.AttrName(i)) }

// AttrValue returns the resolved value of attribute i (entities
// expanded, \r normalized). Valid until the next call to Next.
//
//dregex:noalloc
func (t *Tokenizer) AttrValue(i int) []byte { return t.bytesOf(t.attrs[i].val) }

// AttrNameOffset returns the byte offset of attribute i's name, for
// error positions.
func (t *Tokenizer) AttrNameOffset(i int) int { return t.attrs[i].nameLo }

// Depth returns the number of currently open elements.
func (t *Tokenizer) Depth() int { return len(t.stack) }

//dregex:noalloc
func (t *Tokenizer) bytesOf(v valRef) []byte {
	if v.scratch {
		return t.scratch[v.lo:v.hi]
	}
	return t.data[v.lo:v.hi]
}

// localOf implements encoding/xml's prefix split: exactly one colon with
// nonempty prefix and suffix selects the suffix; anything else keeps the
// whole name.
//
//dregex:noalloc
func localOf(name []byte) []byte {
	i := bytes.IndexByte(name, ':')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	if bytes.IndexByte(name[i+1:], ':') >= 0 {
		return name
	}
	return name[i+1:]
}

// Position converts a byte offset to a 1-based line and rune column. The
// cursor is memoized forward, so calls with nondecreasing offsets (the
// common error-reporting order) never rescan the document.
func (t *Tokenizer) Position(off int) (line, col int) {
	if off > len(t.data) {
		off = len(t.data)
	}
	if off < 0 {
		off = 0
	}
	if off < t.posOff {
		t.posOff, t.posLine, t.lineStart = 0, 1, 0
	}
	for i := t.posOff; i < off; i++ {
		if t.data[i] == '\n' {
			t.posLine++
			t.lineStart = i + 1
		}
	}
	t.posOff = off
	return t.posLine, 1 + utf8.RuneCount(t.data[t.lineStart:off])
}

//dregex:coldalloc
func (t *Tokenizer) syntaxErr(off int, format string, args ...any) error {
	line, col := t.Position(off)
	err := &SyntaxError{Msg: fmt.Sprintf(format, args...), Line: line, Col: col, Offset: off}
	t.err = err
	return err
}

// nameByte marks bytes that may appear in a name: encoding/xml's ASCII
// name bytes plus every byte ≥ 0x80 (a strict superset of its Unicode
// name tables, checked there after the fact).
var nameByte [256]bool

// textOK marks ASCII bytes that pass through character data untouched:
// tab, newline, and printable ASCII except the bytes that need handling
// ('&' starts a reference, '\r' normalizes; both are excluded).
var textOK [256]bool

func init() {
	for c := 0; c < 256; c++ {
		b := byte(c)
		nameByte[c] = 'A' <= b && b <= 'Z' || 'a' <= b && b <= 'z' ||
			'0' <= b && b <= '9' || b == '_' || b == ':' || b == '.' || b == '-' ||
			b >= 0x80
		textOK[c] = b == '\t' || b == '\n' || (b >= 0x20 && b < 0x80 && b != '&')
	}
}

// isInCharacterRange is the XML 1.0 Char production (§2.2), byte-for-byte
// the check encoding/xml applies to resolved character data.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// Next advances to the next token. It returns io.EOF at a clean end of
// input; any other error is a *SyntaxError (or a sticky earlier error).
//
//dregex:noalloc
func (t *Tokenizer) Next() (Kind, error) {
	if t.err != nil {
		return 0, t.err
	}
	if t.pending {
		// The EndElement half of a self-closing tag: the name span is
		// still the start tag's, the stack still holds it.
		t.pending = false
		t.kind = EndElement
		t.self = false
		t.nattr = 0
		t.stack = t.stack[:len(t.stack)-1]
		return EndElement, nil
	}
	t.self = false
	t.nattr = 0
	t.scratch = t.scratch[:0]
	if t.pos >= len(t.data) {
		if len(t.stack) > 0 {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		t.err = io.EOF
		return 0, io.EOF
	}
	t.tokOff = t.pos
	if t.data[t.pos] != '<' {
		return t.scanText()
	}
	t.pos++
	if t.pos >= len(t.data) {
		return 0, t.syntaxErr(t.pos, "unexpected EOF")
	}
	switch t.data[t.pos] {
	case '/':
		t.pos++
		return t.scanEnd()
	case '?':
		t.pos++
		return t.scanProcInst()
	case '!':
		t.pos++
		if t.pos >= len(t.data) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		switch t.data[t.pos] {
		case '-':
			t.pos++
			if t.pos >= len(t.data) {
				return 0, t.syntaxErr(t.pos, "unexpected EOF")
			}
			if t.data[t.pos] != '-' {
				return 0, t.syntaxErr(t.pos, "invalid sequence <!- not part of <!--")
			}
			t.pos++
			return t.scanComment()
		case '[':
			t.pos++
			return t.scanCDATA()
		}
		return t.scanDirective()
	}
	return t.scanStart()
}

//dregex:noalloc
func (t *Tokenizer) skipSpace() {
	d := t.data
	for t.pos < len(d) {
		switch d[t.pos] {
		case ' ', '\t', '\n', '\r':
			t.pos++
		default:
			return
		}
	}
}

// scanName consumes a name at the current position; ok is false when the
// first byte cannot start one (position unchanged).
//
//dregex:noalloc
func (t *Tokenizer) scanName() (sp span, ok bool) {
	d := t.data
	i := t.pos
	for i < len(d) && nameByte[d[i]] {
		i++
	}
	if i == t.pos {
		return span{}, false
	}
	sp = span{t.pos, i}
	t.pos = i
	return sp, true
}

//dregex:noalloc
func (t *Tokenizer) scanText() (Kind, error) {
	d := t.data
	lo := t.pos
	hi := len(d)
	if i := bytes.IndexByte(d[lo:], '<'); i >= 0 {
		hi = lo + i
	}
	// "]]>" is an error in plain character data (allowed in CDATA and in
	// quoted attribute values). The check runs on raw bytes: a reference
	// breaking up the three bytes hides them, exactly as encoding/xml's
	// byte tracking (which resets across references) behaves.
	if i := bytes.Index(d[lo:hi], []byte("]]>")); i >= 0 {
		return 0, t.syntaxErr(lo+i, "unescaped ]]> not in CDATA section")
	}
	v, err := t.resolve(lo, hi, true)
	if err != nil {
		return 0, err
	}
	t.pos = hi
	t.kind = Text
	t.content = v
	return Text, nil
}

func (t *Tokenizer) scanCDATA() (Kind, error) {
	d := t.data
	const open = "CDATA["
	for i := 0; i < len(open); i++ {
		if t.pos >= len(d) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		if d[t.pos] != open[i] {
			return 0, t.syntaxErr(t.pos, "invalid <![ sequence")
		}
		t.pos++
	}
	lo := t.pos
	end := bytes.Index(d[lo:], []byte("]]>"))
	if end < 0 {
		return 0, t.syntaxErr(len(d), "unexpected EOF in CDATA section")
	}
	v, err := t.resolve(lo, lo+end, false)
	if err != nil {
		return 0, err
	}
	t.pos = lo + end + 3
	t.kind = Text
	t.content = v
	return Text, nil
}

func (t *Tokenizer) scanComment() (Kind, error) {
	d := t.data
	lo := t.pos
	i := bytes.Index(d[lo:], []byte("--"))
	if i < 0 {
		return 0, t.syntaxErr(len(d), "unexpected EOF")
	}
	end := lo + i
	if end+2 >= len(d) {
		return 0, t.syntaxErr(len(d), "unexpected EOF")
	}
	if d[end+2] != '>' {
		return 0, t.syntaxErr(end, `invalid sequence "--" not allowed in comments`)
	}
	t.pos = end + 3
	t.kind = Comment
	t.content = valRef{lo, end, false}
	return Comment, nil
}

func (t *Tokenizer) scanProcInst() (Kind, error) {
	d := t.data
	name, ok := t.scanName()
	if !ok {
		if t.pos >= len(d) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		return 0, t.syntaxErr(t.pos, "expected target name after <?")
	}
	t.skipSpace()
	lo := t.pos
	i := bytes.Index(d[lo:], []byte("?>"))
	if i < 0 {
		return 0, t.syntaxErr(len(d), "unexpected EOF")
	}
	end := lo + i
	t.pos = end + 2
	t.kind = ProcInst
	t.name = name
	t.content = valRef{lo, end, false}
	if string(d[name.lo:name.hi]) == "xml" {
		content := d[lo:end]
		if ver := procInstParam(content, "version"); len(ver) > 0 && string(ver) != "1.0" {
			return 0, t.syntaxErr(t.tokOff, "unsupported version %q; only version 1.0 is supported", ver)
		}
		if enc := procInstParam(content, "encoding"); len(enc) > 0 &&
			string(enc) != "utf-8" && string(enc) != "UTF-8" {
			return 0, t.syntaxErr(t.tokOff, "unsupported encoding %q; only UTF-8 is supported", enc)
		}
	}
	return ProcInst, nil
}

// procInstParam extracts a pseudo-attribute (version=…, encoding=…) from
// an xml-declaration body, with encoding/xml's exact (lenient) scan.
func procInstParam(s []byte, param string) []byte {
	pat := param + "="
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := bytes.Index(sub, []byte(pat))
		if k < 0 || len(pat)+k >= len(sub) {
			return nil
		}
		i += k + len(pat) + 1
		if c := sub[k+len(pat)]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return nil
	}
	j := bytes.IndexByte(s[i:], sep)
	if j < 0 {
		return nil
	}
	return s[i : i+j]
}

// scanDirective accumulates a <!…> directive with encoding/xml's exact
// algorithm: the first byte after "<!" is taken raw, quoted '<' and '>'
// do not nest, unquoted ones track depth, and an embedded comment is
// replaced by a single space. Content always builds in scratch (a
// directive is at most once per document on the validation path).
func (t *Tokenizer) scanDirective() (Kind, error) {
	d := t.data
	s := t.scratch
	slo := len(s)
	s = append(s, d[t.pos]) // first byte raw, uninspected
	t.pos++
	var inquote byte
	depth := 0
	var b byte
	for {
		if t.pos >= len(d) {
			t.scratch = s
			return 0, t.syntaxErr(len(d), "unexpected EOF")
		}
		b = d[t.pos]
		t.pos++
		if inquote == 0 && b == '>' && depth == 0 {
			break
		}
	handleB:
		s = append(s, b)
		switch {
		case b == inquote && inquote != 0:
			inquote = 0
		case inquote != 0:
			// quoted: no special action
		case b == '\'' || b == '"':
			inquote = b
		case b == '>':
			depth--
		case b == '<':
			// Look for <!-- beginning a comment.
			const cs = "!--"
			for i := 0; i < len(cs); i++ {
				if t.pos >= len(d) {
					t.scratch = s
					return 0, t.syntaxErr(len(d), "unexpected EOF")
				}
				b = d[t.pos]
				t.pos++
				if b != cs[i] {
					s = append(s, cs[:i]...)
					depth++
					goto handleB
				}
			}
			s = s[:len(s)-1] // drop the '<'
			j := bytes.Index(d[t.pos:], []byte("-->"))
			if j < 0 {
				t.scratch = s
				return 0, t.syntaxErr(len(d), "unexpected EOF")
			}
			t.pos += j + 3
			s = append(s, ' ')
		}
	}
	t.scratch = s
	t.kind = Directive
	t.content = valRef{slo, len(s), true}
	return Directive, nil
}

//dregex:noalloc
func (t *Tokenizer) scanStart() (Kind, error) {
	d := t.data
	name, ok := t.scanName()
	if !ok {
		return 0, t.syntaxErr(t.pos, "expected element name after <")
	}
	t.attrs = t.attrs[:0]
	empty := false
	for {
		t.skipSpace()
		if t.pos >= len(d) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		b := d[t.pos]
		if b == '/' {
			t.pos++
			if t.pos >= len(d) {
				return 0, t.syntaxErr(t.pos, "unexpected EOF")
			}
			if d[t.pos] != '>' {
				return 0, t.syntaxErr(t.pos, "expected /> in element")
			}
			t.pos++
			empty = true
			break
		}
		if b == '>' {
			t.pos++
			break
		}
		aname, ok := t.scanName()
		if !ok {
			return 0, t.syntaxErr(t.pos, "expected attribute name in element")
		}
		t.skipSpace()
		if t.pos >= len(d) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		if d[t.pos] != '=' {
			return 0, t.syntaxErr(t.pos, "attribute name without = in element")
		}
		t.pos++
		t.skipSpace()
		if t.pos >= len(d) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		q := d[t.pos]
		if q != '"' && q != '\'' {
			return 0, t.syntaxErr(t.pos, "unquoted or missing attribute value in element")
		}
		t.pos++
		vlo := t.pos
		rest := d[vlo:]
		qi := bytes.IndexByte(rest, q)
		if qi < 0 {
			return 0, t.syntaxErr(len(d), "unexpected EOF")
		}
		if lt := bytes.IndexByte(rest[:qi], '<'); lt >= 0 {
			return 0, t.syntaxErr(vlo+lt, "unescaped < inside quoted string")
		}
		v, err := t.resolve(vlo, vlo+qi, true)
		if err != nil {
			return 0, err
		}
		t.pos = vlo + qi + 1
		t.attrs = append(t.attrs, attrSpan{nameLo: aname.lo, nameHi: aname.hi, val: v})
	}
	t.kind = StartElement
	t.name = name
	t.nattr = len(t.attrs)
	t.self = empty
	t.pending = empty
	t.stack = append(t.stack, name)
	return StartElement, nil
}

//dregex:noalloc
func (t *Tokenizer) scanEnd() (Kind, error) {
	d := t.data
	name, ok := t.scanName()
	if !ok {
		if t.pos >= len(d) {
			return 0, t.syntaxErr(t.pos, "unexpected EOF")
		}
		return 0, t.syntaxErr(t.pos, "expected element name after </")
	}
	t.skipSpace()
	if t.pos >= len(d) {
		return 0, t.syntaxErr(t.pos, "unexpected EOF")
	}
	if d[t.pos] != '>' {
		return 0, t.syntaxErr(t.pos,
			"invalid characters between </%s and >", d[name.lo:name.hi])
	}
	t.pos++
	if len(t.stack) == 0 {
		return 0, t.syntaxErr(t.tokOff,
			"unexpected end element </%s>", d[name.lo:name.hi])
	}
	top := t.stack[len(t.stack)-1]
	if !bytes.Equal(d[top.lo:top.hi], d[name.lo:name.hi]) {
		return 0, t.syntaxErr(t.tokOff, "element <%s> closed by </%s>",
			d[top.lo:top.hi], d[name.lo:name.hi])
	}
	t.stack = t.stack[:len(t.stack)-1]
	t.kind = EndElement
	t.name = name
	return EndElement, nil
}

// resolve produces the character data of [lo,hi): a zero-copy input
// range when no reference or carriage return occurs, a scratch range
// otherwise. It validates every rune against the XML character range.
// entities=false (CDATA) leaves '&' literal.
//
//dregex:noalloc
func (t *Tokenizer) resolve(lo, hi int, entities bool) (valRef, error) {
	d := t.data
	for i := lo; i < hi; {
		b := d[i]
		if textOK[b] {
			i++
			continue
		}
		if b >= 0x80 {
			r, size := utf8.DecodeRune(d[i:hi])
			if r == utf8.RuneError && size == 1 {
				return valRef{}, t.syntaxErr(i, "invalid UTF-8")
			}
			if !isInCharacterRange(r) {
				return valRef{}, t.syntaxErr(i, "illegal character code %U", r)
			}
			i += size
			continue
		}
		if b == '&' {
			if !entities {
				i++
				continue
			}
			return t.resolveSlow(lo, hi, entities)
		}
		if b == '\r' {
			return t.resolveSlow(lo, hi, entities)
		}
		return valRef{}, t.syntaxErr(i, "illegal character code %U", rune(b))
	}
	return valRef{lo, hi, false}, nil
}

// resolveSlow rewrites [lo,hi) into scratch: references expanded, \r and
// \r\n rewritten to \n (reference replacement text is inserted verbatim,
// and resets the \r state, exactly as encoding/xml does). The result is
// then character-range checked as a whole, so entity replacement text is
// validated too.
func (t *Tokenizer) resolveSlow(lo, hi int, entities bool) (valRef, error) {
	d := t.data
	s := t.scratch
	slo := len(s)
	prevCR := false
	for i := lo; i < hi; {
		b := d[i]
		switch {
		case b == '&' && entities:
			var err error
			s, i, err = t.appendReference(s, i, hi)
			if err != nil {
				t.scratch = s
				return valRef{}, err
			}
			prevCR = false
		case b == '\r':
			s = append(s, '\n')
			prevCR = true
			i++
		case b == '\n' && prevCR:
			prevCR = false
			i++
		default:
			s = append(s, b)
			prevCR = false
			i++
		}
	}
	t.scratch = s
	if err := t.checkChars(s[slo:], lo); err != nil {
		return valRef{}, err
	}
	return valRef{slo, len(s), true}, nil
}

// checkChars validates resolved text (the scratch path; the zero-copy
// path validates inline). Errors position at errOff, the segment start.
func (t *Tokenizer) checkChars(b []byte, errOff int) error {
	for len(b) > 0 {
		r, size := utf8.DecodeRune(b)
		if r == utf8.RuneError && size == 1 {
			return t.syntaxErr(errOff, "invalid UTF-8")
		}
		if !isInCharacterRange(r) {
			return t.syntaxErr(errOff, "illegal character code %U", r)
		}
		b = b[size:]
	}
	return nil
}

// appendReference expands the reference starting at i ('&') within
// [i,hi), appending its replacement to s; it returns the position past
// the ';'. Character references parse in decimal or (with an 'x') hex,
// cap at unicode.MaxRune, and encode surrogates as U+FFFD — the exact
// outcome of encoding/xml's string(rune(n)). Named references try the
// five predefined entities first, then the SetEntities map.
func (t *Tokenizer) appendReference(s []byte, i, hi int) ([]byte, int, error) {
	d := t.data
	j := i + 1
	if j < hi && d[j] == '#' {
		j++
		base := uint64(10)
		if j < hi && d[j] == 'x' {
			base = 16
			j++
		}
		start := j
		var n uint64
		for j < hi {
			b := d[j]
			var v uint64
			switch {
			case '0' <= b && b <= '9':
				v = uint64(b - '0')
			case base == 16 && 'a' <= b && b <= 'f':
				v = uint64(b-'a') + 10
			case base == 16 && 'A' <= b && b <= 'F':
				v = uint64(b-'A') + 10
			default:
				goto doneDigits
			}
			n = n*base + v
			if n > unicode.MaxRune {
				n = unicode.MaxRune + 1 // saturate: invalid either way
			}
			j++
		}
	doneDigits:
		if j == start || j >= hi || d[j] != ';' || n > unicode.MaxRune {
			return s, 0, t.syntaxErr(i, "invalid character entity")
		}
		return utf8.AppendRune(s, rune(n)), j + 1, nil
	}
	start := j
	for j < hi && nameByte[d[j]] {
		j++
	}
	if j == start || j >= hi || d[j] != ';' {
		return s, 0, t.syntaxErr(i, "invalid character entity")
	}
	name := d[start:j]
	switch string(name) { // compiles to allocation-free comparisons
	case "lt":
		return append(s, '<'), j + 1, nil
	case "gt":
		return append(s, '>'), j + 1, nil
	case "amp":
		return append(s, '&'), j + 1, nil
	case "apos":
		return append(s, '\''), j + 1, nil
	case "quot":
		return append(s, '"'), j + 1, nil
	}
	if v, ok := t.entities[string(name)]; ok { // zero-alloc map probe
		return append(s, v...), j + 1, nil
	}
	return s, 0, t.syntaxErr(i, "invalid character entity &%s;", name)
}

// ReadAll drains r into buf (reusing its capacity), for validators that
// stream documents from readers into a pooled buffer. Read errors pass
// through unwrapped so callers can classify them (e.g. a body-size trip).
func ReadAll(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
