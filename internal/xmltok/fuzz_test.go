package xmltok

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"testing"
)

// fuzzEntities is the fixed internal-entity map both tokenizers resolve
// against; keys are valid XML names (encoding/xml rejects references
// whose name fails its Unicode tables, so invalid keys would never
// resolve there).
var fuzzEntities = map[string]string{
	"e":     "xyz",
	"empty": "",
	"uni":   "héllo",
	"cr":    "a\rb",
	"amps":  "&&",
}

// stdTokens tokenizes with encoding/xml (Strict, same entity map) and
// renders each token in the shared comparison form. ok is false when the
// decoder errors — those inputs are outside the agreement contract.
func stdTokens(data []byte) (toks []string, ok bool) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	dec.Entity = fuzzEntities
	for {
		t, err := dec.Token()
		if err == io.EOF {
			return toks, true
		}
		if err != nil {
			return toks, false
		}
		switch t := t.(type) {
		case xml.StartElement:
			s := "<" + t.Name.Local
			for _, a := range t.Attr {
				s += fmt.Sprintf(" %s=%q", a.Name.Local, a.Value)
			}
			toks = append(toks, s+">")
		case xml.EndElement:
			toks = append(toks, "</"+t.Name.Local+">")
		case xml.CharData:
			toks = append(toks, "T:"+string(t))
		case xml.Comment:
			toks = append(toks, "C:"+string(t))
		case xml.ProcInst:
			toks = append(toks, "PI:"+t.Target+":"+string(t.Inst))
		case xml.Directive:
			toks = append(toks, "D:"+string(t))
		}
	}
}

// ourTokens tokenizes with xmltok in the same comparison form.
func ourTokens(tok *Tokenizer, data []byte) (toks []string, err error) {
	tok.Reset(data)
	tok.SetEntities(fuzzEntities)
	for {
		k, err := tok.Next()
		if err == io.EOF {
			return toks, nil
		}
		if err != nil {
			return toks, err
		}
		switch k {
		case StartElement:
			s := "<" + string(tok.Local())
			for i := 0; i < tok.AttrCount(); i++ {
				s += fmt.Sprintf(" %s=%q", tok.AttrLocal(i), tok.AttrValue(i))
			}
			toks = append(toks, s+">")
		case EndElement:
			toks = append(toks, "</"+string(tok.Local())+">")
		case Text:
			toks = append(toks, "T:"+string(tok.Text()))
		case Comment:
			toks = append(toks, "C:"+string(tok.Text()))
		case ProcInst:
			toks = append(toks, "PI:"+string(tok.Name())+":"+string(tok.Text()))
		case Directive:
			toks = append(toks, "D:"+string(tok.Text()))
		}
	}
}

// FuzzXMLTok is the differential agreement gate: on any input that
// encoding/xml's Strict decoder tokenizes to EOF, xmltok must produce
// the same token sequence (kinds, local names, attribute local names and
// values, resolved text, comment/PI/directive bytes). When encoding/xml
// rejects the input, xmltok may accept a superset (Unicode name-table
// checks are relaxed) but must neither panic nor hang.
func FuzzXMLTok(f *testing.F) {
	seeds := []string{
		"",
		"<a/>",
		"<a x='1' y=\"2\">t</a>",
		"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a><b/>x</a>",
		"<!DOCTYPE a [<!ENTITY e \"v\"><!--c-->]><a>&e;&lt;&#65;</a>",
		"<a><![CDATA[x]]y]]></a>",
		"<p:a xmlns:p='u'><p:b/></p:a>",
		"a\r\nb<r>\rt&cr;</r>",
		"<a>&#xD800;&#x10FFFF;</a>",
		"\uFEFF<a>é</a>",
		"<a>]]></a>",
		"<a b='&amp;&e;&empty;'></a>",
		"<!doctype a <!-- -- > x--> y><a/>",
		"<a><b></b  ></a >tail",
		"<a>\x01</a>",
		"<r>&uni;<v w='&#13;&#10;'/></r>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	var tok Tokenizer
	f.Fuzz(func(t *testing.T, data []byte) {
		// Both sides see BOM-less input: xmltok strips the BOM itself,
		// encoding/xml would surface it as leading character data.
		data = bytes.TrimPrefix(data, bom)
		want, ok := stdTokens(data)
		got, err := ourTokens(&tok, data)
		if !ok {
			// encoding/xml rejected the input; xmltok just had to
			// terminate, which it did.
			return
		}
		if err != nil {
			t.Fatalf("encoding/xml accepts but xmltok rejects: %v\ninput: %q\nstd: %q", err, data, want)
		}
		if len(got) != len(want) {
			t.Fatalf("token count %d != %d\ninput: %q\nstd: %q\nours: %q", len(got), len(want), data, want, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("token %d: %q != %q\ninput: %q", i, got[i], want[i], data)
			}
		}
	})
}
