package xmltok

import (
	"io"
	"strings"
	"testing"
)

// walk collects (kind, name, text) triples until EOF or error.
func walk(t *testing.T, tok *Tokenizer) []string {
	t.Helper()
	var out []string
	for {
		k, err := tok.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v (after %v)", err, out)
		}
		switch k {
		case StartElement:
			s := "<" + string(tok.Name())
			for i := 0; i < tok.AttrCount(); i++ {
				s += " " + string(tok.AttrName(i)) + "=" + string(tok.AttrValue(i))
			}
			out = append(out, s+">")
		case EndElement:
			out = append(out, "</"+string(tok.Name())+">")
		case Text:
			out = append(out, "T:"+string(tok.Text()))
		case Comment:
			out = append(out, "C:"+string(tok.Text()))
		case ProcInst:
			out = append(out, "PI:"+string(tok.Name())+":"+string(tok.Text()))
		case Directive:
			out = append(out, "D:"+string(tok.Text()))
		}
	}
}

func tokens(t *testing.T, doc string, ents map[string]string) []string {
	t.Helper()
	var tok Tokenizer
	tok.Reset([]byte(doc))
	tok.SetEntities(ents)
	return walk(t, &tok)
}

func TestBasicDocument(t *testing.T) {
	got := tokens(t, `<?xml version="1.0"?><!DOCTYPE a><a x="1" y='2'><b/>hi<!--c--></a>`, nil)
	want := []string{
		`PI:xml:version="1.0"`,
		"D:DOCTYPE a",
		"<a x=1 y=2>",
		"<b>", "</b>",
		"T:hi",
		"C:c",
		"</a>",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestEntitiesAndCharRefs(t *testing.T) {
	ents := map[string]string{"e": "xyz", "empty": ""}
	got := tokens(t, `<a b="&lt;&e;&#65;&#x42;">&amp;&empty;&#xD800;</a>`, ents)
	want := []string{
		"<a b=<xyzAB>",
		"T:&�", // surrogate charref encodes as U+FFFD, as encoding/xml does
		"</a>",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestCRNormalization(t *testing.T) {
	got := tokens(t, "<a c=\"x\r\ny\rz\">p\r\nq\rr&#13;\n</a>", nil)
	want := []string{"<a c=x\ny\nz>", "T:p\nq\nr\r\n", "</a>"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestCDATA(t *testing.T) {
	got := tokens(t, "<a>x<![CDATA[a&lt;]]b<>]]>y</a>", nil)
	want := []string{"<a>", "T:x", "T:a&lt;]]b<>", "T:y", "</a>"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestDirectiveWithComment(t *testing.T) {
	got := tokens(t, `<!DOCTYPE a [<!ENTITY e "v"><!--note-->]><a>&e;</a>`,
		map[string]string{"e": "v"})
	want := []string{`D:DOCTYPE a [<!ENTITY e "v"> ]`, "<a>", "T:v", "</a>"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestSelfClosingDepth(t *testing.T) {
	var tok Tokenizer
	tok.Reset([]byte(`<a><b/></a>`))
	k, _ := tok.Next()
	if k != StartElement || tok.Depth() != 1 {
		t.Fatalf("a: kind %v depth %d", k, tok.Depth())
	}
	k, _ = tok.Next()
	if k != StartElement || !tok.SelfClosing() || tok.Depth() != 2 {
		t.Fatalf("b start: kind %v self %v depth %d", k, tok.SelfClosing(), tok.Depth())
	}
	k, _ = tok.Next()
	if k != EndElement || string(tok.Name()) != "b" || tok.Depth() != 1 {
		t.Fatalf("b end: kind %v name %q depth %d", k, tok.Name(), tok.Depth())
	}
}

func TestLocalNames(t *testing.T) {
	for _, tc := range []struct{ name, local string }{
		{"a", "a"}, {"p:a", "a"}, {":a", ":a"}, {"a:", "a:"}, {"xml:space", "space"},
	} {
		if got := string(localOf([]byte(tc.name))); got != tc.local {
			t.Errorf("localOf(%q) = %q, want %q", tc.name, got, tc.local)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, tc := range []struct{ doc, wantSub string }{
		{"<a>", "unexpected EOF"},
		{"<a></b>", "element <a> closed by </b>"},
		{"</a>", "unexpected end element </a>"},
		{"<a>x]]>y</a>", "unescaped ]]> not in CDATA"},
		{"<a b='<'/>", "unescaped < inside quoted string"},
		{"<a>&nosuch;</a>", "invalid character entity"},
		{"<a>&#x110000;</a>", "invalid character entity"},
		{"<a>\x01</a>", "illegal character code"},
		{"<a>\xff</a>", "invalid UTF-8"},
		{"<a b=c></a>", "unquoted or missing attribute value"},
		{"<a b></a>", "attribute name without ="},
		{"<!- x", "invalid sequence <!- not part of <!--"},
		{"<!--a--b-->", `invalid sequence "--" not allowed in comments`},
		{"<![CDAT[", "invalid <![ sequence"},
		{"<a></a  x>", "invalid characters between </a and >"},
		{"<?xml version='2.0'?><a/>", "unsupported version"},
	} {
		var tok Tokenizer
		tok.Reset([]byte(tc.doc))
		var err error
		for err == nil {
			_, err = tok.Next()
		}
		if err == io.EOF {
			t.Errorf("%q: no error, want %q", tc.doc, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q, want substring %q", tc.doc, err, tc.wantSub)
		}
	}
}

func TestPositions(t *testing.T) {
	// Multi-byte text before the error: columns count runes, not bytes.
	doc := "<a>\n ééé <b></c>\n</a>"
	var tok Tokenizer
	tok.Reset([]byte(doc))
	var err error
	for err == nil {
		_, err = tok.Next()
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error %v is not a *SyntaxError", err)
	}
	if se.Line != 2 || se.Col != 9 {
		t.Errorf("error at %d:%d, want 2:9 (runes, not bytes)", se.Line, se.Col)
	}
}

func TestPositionsBOM(t *testing.T) {
	// A BOM must not shift positions: the first visible byte is 1:1.
	doc := "\uFEFF<a></b>"
	var tok Tokenizer
	tok.Reset([]byte(doc))
	var err error
	for err == nil {
		_, err = tok.Next()
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error %v is not a *SyntaxError", err)
	}
	if se.Line != 1 || se.Col != 4 {
		t.Errorf("error at %d:%d, want 1:4 (BOM stripped)", se.Line, se.Col)
	}
	if line, col := tok.Position(0); line != 1 || col != 1 {
		t.Errorf("Position(0) = %d:%d, want 1:1", line, col)
	}
}

func TestPositionMemoBackward(t *testing.T) {
	var tok Tokenizer
	tok.Reset([]byte("a\nbc\ndef"))
	if l, c := tok.Position(7); l != 3 || c != 3 {
		t.Fatalf("Position(7) = %d:%d, want 3:3", l, c)
	}
	if l, c := tok.Position(2); l != 2 || c != 1 {
		t.Errorf("backward Position(2) = %d:%d, want 2:1", l, c)
	}
}

const allocTestDoc = `<?xml version="1.0"?><library owner="mia &amp; co">` +
	`<book id="b1"><title>A &lt;quiet&gt; place</title><author>M</author><year>2001</year></book>` +
	`<book id="b2"><title>Two</title><author>N&e;</author><year>2002</year></book>` +
	`</library>`

// TestTokenizeAllocs pins steady-state tokenization at zero allocations
// per document (after one warmup to size the internal buffers).
func TestTokenizeAllocs(t *testing.T) {
	ents := map[string]string{"e": "ö"}
	data := []byte(allocTestDoc)
	var tok Tokenizer
	run := func() {
		tok.Reset(data)
		tok.SetEntities(ents)
		for {
			k, err := tok.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if k == StartElement {
				for i := 0; i < tok.AttrCount(); i++ {
					_ = tok.AttrValue(i)
				}
			}
		}
	}
	run() // warmup: grow stack, attrs, scratch
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("steady-state tokenization allocates %v per doc, want 0", n)
	}
}

func BenchmarkXMLTok(b *testing.B) {
	data := []byte(allocTestDoc)
	ents := map[string]string{"e": "ö"}
	var tok Tokenizer
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.Reset(data)
		tok.SetEntities(ents)
		for {
			_, err := tok.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
