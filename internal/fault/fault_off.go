//go:build !faultinject

package fault

// Enabled is false in production builds: every fault site is written as
// `if fault.Enabled && fault.Hit(...)`, so the branch — and the call — is
// removed by the compiler. The guarantee chaos testing relies on is that
// an un-tagged binary contains no fault machinery at all.
const Enabled = false

// Hit never fires in production builds.
func Hit(name string) bool { return false }

// Arg returns def in production builds.
func Arg(name string, def int64) int64 { return def }
