// Package fault provides deterministic, test-only fault injection points
// for the dregexd resilience suite: slow body reads, truncated documents,
// injected compile errors, forced pool exhaustion, and injected panics.
//
// A fault point is a named site in production code:
//
//	if fault.Enabled && fault.Hit("validate.slow-read") {
//		// degraded behavior
//	}
//
// In the default build Enabled is the constant false and Hit is an empty
// function, so the compiler removes the whole branch — fault points cost
// literally nothing in production binaries. Building with the faultinject
// tag (go build -tags faultinject) compiles the real implementation, which
// reads its configuration once from the DREGEX_FAULTS environment
// variable:
//
//	DREGEX_FAULTS="validate.slow-read=every:3,delay:5ms;compile.error=every:7"
//
// Each clause names a point and its parameters: every:N fires the point on
// every Nth hit (deterministic — no randomness, so a chaos run is exactly
// reproducible), delay:D sleeps D when the point fires, and arg:N attaches
// an integer parameter the site can read with Arg. A point that is not
// configured never fires, so an instrumented binary with an empty
// DREGEX_FAULTS behaves identically to a production one.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the error a fault site reports when a point configured to
// inject failures fires (e.g. compile.error). Using one shared sentinel
// keeps injected failures recognizable in assertions and logs.
var ErrInjected = fmt.Errorf("fault: injected error")

// point is one configured fault point.
type point struct {
	name  string
	every uint64        // fire on every Nth hit (>= 1)
	delay time.Duration // sleep when firing
	arg   int64         // site-specific integer parameter
	hits  atomic.Uint64
}

// hit reports whether this call fires the point, sleeping the configured
// delay when it does. Deterministic: the point fires on hits every,
// 2*every, 3*every, … of the process lifetime.
func (p *point) hit() bool {
	n := p.hits.Add(1)
	if n%p.every != 0 {
		return false
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return true
}

// parseConfig parses a DREGEX_FAULTS value: semicolon-separated clauses,
// each "name=key:val,key:val". Unknown keys and malformed clauses are
// reported as errors — a chaos run with a typoed fault spec must fail
// loudly, not silently skip the fault.
func parseConfig(s string) (map[string]*point, error) {
	pts := make(map[string]*point)
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, params, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: malformed clause %q (want name=key:val,...)", clause)
		}
		p := &point{name: name, every: 1}
		for _, kv := range strings.Split(params, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, ":")
			if !ok {
				return nil, fmt.Errorf("fault: point %s: malformed parameter %q (want key:val)", name, kv)
			}
			switch key {
			case "every":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("fault: point %s: every:%q is not a positive integer", name, val)
				}
				p.every = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: point %s: delay:%q is not a duration", name, val)
				}
				p.delay = d
			case "arg":
				a, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: point %s: arg:%q is not an integer", name, val)
				}
				p.arg = a
			default:
				return nil, fmt.Errorf("fault: point %s: unknown parameter %q", name, key)
			}
		}
		pts[name] = p
	}
	return pts, nil
}
