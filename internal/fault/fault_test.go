package fault

import (
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	pts, err := parseConfig("validate.slow-read=every:3,delay:5ms; compile.error=every:7 ;pool.exhaust=every:2,arg:16")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("parsed %d points, want 3", len(pts))
	}
	sr := pts["validate.slow-read"]
	if sr == nil || sr.every != 3 || sr.delay != 5*time.Millisecond {
		t.Errorf("slow-read point = %+v", sr)
	}
	ce := pts["compile.error"]
	if ce == nil || ce.every != 7 || ce.delay != 0 {
		t.Errorf("compile.error point = %+v", ce)
	}
	pe := pts["pool.exhaust"]
	if pe == nil || pe.every != 2 || pe.arg != 16 {
		t.Errorf("pool.exhaust point = %+v", pe)
	}

	// Empty spec: no points, no error (the instrumented binary without
	// DREGEX_FAULTS behaves like production).
	if pts, err := parseConfig(""); err != nil || len(pts) != 0 {
		t.Errorf("empty spec: %v points, err=%v", pts, err)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, spec := range []string{
		"noequals",
		"p=every:0",
		"p=every:x",
		"p=delay:fast",
		"p=arg:1.5",
		"p=unknown:1",
		"p=every",
		"=every:1",
	} {
		if _, err := parseConfig(spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
}

func TestPointDeterminism(t *testing.T) {
	p := &point{name: "t", every: 3}
	var fired []int
	for i := 1; i <= 9; i++ {
		if p.hit() {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}

	// every:1 fires always.
	p1 := &point{name: "a", every: 1}
	for i := 0; i < 5; i++ {
		if !p1.hit() {
			t.Fatal("every:1 point skipped a hit")
		}
	}
}
