//go:build faultinject

package fault

import (
	"fmt"
	"os"
	"sync"
)

// Enabled marks a fault-instrumented build (go build -tags faultinject).
const Enabled = true

var (
	loadOnce sync.Once
	points   map[string]*point
)

// load parses DREGEX_FAULTS once. A malformed spec aborts the process:
// chaos runs must never silently proceed with half their faults missing.
func load() {
	loadOnce.Do(func() {
		spec := os.Getenv("DREGEX_FAULTS")
		pts, err := parseConfig(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		points = pts
	})
}

// Hit reports whether the named point fires at this call, sleeping its
// configured delay when it does. Unconfigured points never fire.
func Hit(name string) bool {
	load()
	p := points[name]
	if p == nil {
		return false
	}
	return p.hit()
}

// Arg returns the integer parameter configured for the named point (arg:N
// in DREGEX_FAULTS), or def when the point is absent or carries none.
func Arg(name string, def int64) int64 {
	load()
	p := points[name]
	if p == nil || p.arg == 0 {
		return def
	}
	return p.arg
}
