// Package xpath implements the paper's Theorem 3.6: a fixed Regular-XPath-
// with-data-equality query φdet that is satisfied on the parse tree of e
// (with position labels stored as data values) iff e is deterministic.
//
// The engine is a small combinator evaluator over the compiled parse tree:
// steps (child, parent, to-left, to-right, from-left), Kleene closure,
// node filters (SupFirst, SupLast, operator labels, leaf), and the data-
// equality filter [α = β], which holds at v iff some leaf reachable via α
// and some leaf reachable via β carry the same symbol. Axes are read as:
// to-left/to-right descend to the left/right child, and from-left ascends
// from a left child to its parent.
//
// φdet is the negation of the five violation queries printed in the proof
// of Theorem 3.6 — ϕP1 and ϕℓℓ′ for {ℓ,ℓ′} ⊆ {∗,⊙} — built from
//
//	P = [not child]             (a position)
//	D = (child/[not SupFirst])*/P   descends the First cone
//	U = ([not SupLast]/parent)*     climbs the Last spine
//	F = [lab()=⊙]/to-right/D        a follow target through concatenation
//
// Evaluation here is set-based and O(|φ|·|e|²) in the worst case — the
// linear-time bound of Theorem 3.6 rides on Bojańczyk–Parys [7], which
// DESIGN.md §4.3 documents as the one knowingly slower substitution. The
// point reproduced (and fuzz-tested against the linear checker) is the
// expressibility result: one fixed query decides determinism for every
// expression over every alphabet.
package xpath

import (
	"dregex/internal/ast"
	"dregex/internal/parsetree"
)

// Path is a node-set transformer over the parse tree.
type Path interface {
	eval(t *parsetree.Tree, from []bool) []bool
}

// step moves every node by one primitive axis.
type step int

const (
	child step = iota // either child
	parent
	toLeft   // to the left child
	toRight  // to the right child
	fromLeft // from a left child up to its parent
)

func (s step) eval(t *parsetree.Tree, from []bool) []bool {
	out := make([]bool, t.N())
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if !from[n] {
			continue
		}
		switch s {
		case child:
			if c := t.LChild[n]; c != parsetree.Null {
				out[c] = true
			}
			if c := t.RChild[n]; c != parsetree.Null {
				out[c] = true
			}
		case parent:
			if p := t.Parent[n]; p != parsetree.Null {
				out[p] = true
			}
		case toLeft:
			if c := t.LChild[n]; c != parsetree.Null {
				out[c] = true
			}
		case toRight:
			if c := t.RChild[n]; c != parsetree.Null {
				out[c] = true
			}
		case fromLeft:
			if p := t.Parent[n]; p != parsetree.Null && t.LChild[p] == n {
				out[p] = true
			}
		}
	}
	return out
}

// filter keeps nodes satisfying a predicate.
type filter func(t *parsetree.Tree, n parsetree.NodeID) bool

func (f filter) eval(t *parsetree.Tree, from []bool) []bool {
	out := make([]bool, t.N())
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if from[n] && f(t, n) {
			out[n] = true
		}
	}
	return out
}

// seq composes paths left to right.
type seq []Path

func (s seq) eval(t *parsetree.Tree, from []bool) []bool {
	cur := from
	for _, p := range s {
		cur = p.eval(t, cur)
	}
	return cur
}

// star is the reflexive-transitive closure of a path.
type star struct{ p Path }

func (s star) eval(t *parsetree.Tree, from []bool) []bool {
	out := append([]bool(nil), from...)
	frontier := append([]bool(nil), from...)
	for {
		next := s.p.eval(t, frontier)
		changed := false
		for i, v := range next {
			if v && !out[i] {
				out[i] = true
				frontier[i] = true
				changed = true
			} else {
				frontier[i] = false
			}
		}
		if !changed {
			return out
		}
	}
}

// union merges the results of alternatives.
type union []Path

func (u union) eval(t *parsetree.Tree, from []bool) []bool {
	out := make([]bool, t.N())
	for _, p := range u {
		r := p.eval(t, from)
		for i, v := range r {
			if v {
				out[i] = true
			}
		}
	}
	return out
}

// dataEq keeps v iff leaves reachable from {v} via a and via b share a
// symbol (the X=reg data-equality filter; position labels are the data).
type dataEq struct{ a, b Path }

func (d dataEq) eval(t *parsetree.Tree, from []bool) []bool {
	out := make([]bool, t.N())
	single := make([]bool, t.N())
	seen := make(map[ast.Symbol]bool, 8)
	for n := parsetree.NodeID(0); n < parsetree.NodeID(t.N()); n++ {
		if !from[n] {
			continue
		}
		for i := range single {
			single[i] = false
		}
		single[n] = true
		ra := d.a.eval(t, single)
		for k := range seen {
			delete(seen, k)
		}
		for i, v := range ra {
			if v && t.IsPos(parsetree.NodeID(i)) {
				seen[t.Sym[i]] = true
			}
		}
		if len(seen) == 0 {
			continue
		}
		for i := range single {
			single[i] = false
		}
		single[n] = true
		rb := d.b.eval(t, single)
		for i, v := range rb {
			if v && t.IsPos(parsetree.NodeID(i)) && seen[t.Sym[i]] {
				out[n] = true
				break
			}
		}
	}
	return out
}

// Node predicates.
func isLeaf(t *parsetree.Tree, n parsetree.NodeID) bool { return t.IsPos(n) }
func notSupFirst(t *parsetree.Tree, n parsetree.NodeID) bool {
	return !t.SupFirst[n]
}
func notSupLast(t *parsetree.Tree, n parsetree.NodeID) bool { return !t.SupLast[n] }
func supFirst(t *parsetree.Tree, n parsetree.NodeID) bool   { return t.SupFirst[n] }
func labCat(t *parsetree.Tree, n parsetree.NodeID) bool {
	return t.Op[n] == parsetree.OpCat
}
func labStar(t *parsetree.Tree, n parsetree.NodeID) bool {
	return t.Op[n] == parsetree.OpStar
}

// The fixed sub-queries of Theorem 3.6.
var (
	pP Path = filter(isLeaf)
	pD Path = seq{star{seq{step(child), filter(notSupFirst)}}, pP}
	pU Path = star{seq{filter(notSupLast), step(parent)}}
	pF Path = seq{filter(labCat), step(toRight), pD}

	phiCatCat Path = seq{
		star{step(child)}, filter(notSupLast), step(fromLeft),
		dataEq{pF, seq{pU, step(fromLeft), pF}},
	}
	phiStarStar Path = seq{
		star{step(child)}, filter(labStar),
		dataEq{pD, seq{pU, filter(supFirst), step(parent), pU, filter(labStar), pD}},
	}
	phiMixed Path = union{
		seq{
			star{step(child)}, filter(notSupLast), step(fromLeft),
			// The Last spine must be transparent from n itself upward, so
			// the second branch starts the U climb at n (the printed
			// parent/U would skip n's own SupLast check and admit pairs
			// whose common predecessor cannot reach the star).
			dataEq{seq{step(toRight), filter(supFirst), pD}, seq{pU, filter(labStar), pD}},
		},
		seq{
			star{step(child)}, filter(labStar),
			dataEq{pD, seq{pU, step(fromLeft), pF}},
		},
	}
	phiP1 Path = seq{
		star{step(child)},
		dataEq{seq{step(toLeft), filter(notSupFirst), pD}, seq{step(toRight), filter(notSupFirst), pD}},
	}
)

// Violations evaluates the four violation queries on the compiled tree of
// (#e′)$ and reports which are non-empty, in the order P1, ⊙⊙, mixed, ∗∗.
func Violations(t *parsetree.Tree) [4]bool {
	root := make([]bool, t.N())
	// Anchor at the user expression: phantom structure must not introduce
	// spurious matches; child* from the root covers every node anyway.
	root[t.Root] = true
	var out [4]bool
	for i, phi := range []Path{phiP1, phiCatCat, phiMixed, phiStarStar} {
		res := phi.eval(t, root)
		for _, v := range res {
			if v {
				out[i] = true
				break
			}
		}
	}
	return out
}

// IsDeterministic is Theorem 3.6: φdet = ¬(ϕP1 ∨ ϕ⊙⊙ ∨ ϕ⊙∗ ∨ ϕ∗⊙ ∨ ϕ∗∗).
func IsDeterministic(t *parsetree.Tree) bool {
	v := Violations(t)
	return !v[0] && !v[1] && !v[2] && !v[3]
}
