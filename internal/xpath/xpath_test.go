package xpath

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/determinism"
	"dregex/internal/follow"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func compile(t *testing.T, expr string) *parsetree.Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	tr, err := parsetree.Build(ast.Normalize(ast.MustParseMath(expr, alpha)), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPaperExamples(t *testing.T) {
	cases := []struct {
		expr string
		det  bool
	}{
		{"(ab+b(b?)a)*", true},
		{"(a*ba+bb)*", false},
		{"ab*b", false},
		{"(a+b)*", true},
		{"(a+a)*", false},
		{"(c(b?a?))a", false},
		{"(c(b?a))a", true},
		{"(a(b?a))*", true},
		{"(a(b?a?))*", false},
		{"(c?((ab*)(a?c)))*(ba)", true},
		{"a?a", false},
		{"a*a", false},
	}
	for _, c := range cases {
		tr := compile(t, c.expr)
		if got := IsDeterministic(tr); got != c.det {
			t.Errorf("φdet(%s) = %v, want %v (violations %v)",
				c.expr, got, c.det, Violations(tr))
		}
	}
}

// The Theorem 3.6 query must agree with the Theorem 3.5 linear test.
func TestAgainstLinearChecker(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	total, nondet := 0, 0
	for trial := 0; trial < 1500; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{
			Symbols:  1 + r.Intn(4),
			MaxNodes: 5 + r.Intn(40),
		}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		want := determinism.Check(tr, follow.New(tr)).Deterministic
		if got := IsDeterministic(tr); got != want {
			t.Fatalf("φdet disagrees on %s: xpath=%v linear=%v (violations %v)",
				ast.StringMath(e, alpha), got, want, Violations(tr))
		}
		total++
		if !want {
			nondet++
		}
	}
	if nondet < total/10 || nondet > total*9/10 {
		t.Fatalf("unbalanced corpus: %d/%d", nondet, total)
	}
}

func TestViolationAttribution(t *testing.T) {
	// a?a violates (P1); the first query must fire.
	if v := Violations(compile(t, "a?a")); !v[0] {
		t.Errorf("a?a: expected ϕP1, got %v", v)
	}
	// (a(b?a?))* is the §3.2 star combination.
	v := Violations(compile(t, "(a(b?a?))*"))
	if !v[1] && !v[2] && !v[3] {
		t.Errorf("(a(b?a?))*: expected a follow-combination query, got %v", v)
	}
	// Deterministic expressions fire nothing.
	if v := Violations(compile(t, "(ab+b(b?)a)*")); v != [4]bool{} {
		t.Errorf("e1: unexpected violations %v", v)
	}
}
