// Package lca answers lowest-common-ancestor queries on a parse tree in
// O(1) after O(|e|) preprocessing, via the classical reduction to ±1 range
// minimum queries over the Euler tour (Bender–Farach-Colton; reference [1]
// of the paper). This is the engine behind Theorem 2.4 (constant-time
// checkIfFollow) and Lemma 3.1 (linear-time skeleton construction).
package lca

import (
	"dregex/internal/parsetree"
	"dregex/internal/rmq"
)

// LCA is a preprocessed lowest-common-ancestor index for one tree.
type LCA struct {
	tree  *parsetree.Tree
	euler []int32 // node at each Euler-tour step
	depth []int32 // depth at each Euler-tour step (±1 sequence)
	first []int32 // first Euler-tour occurrence of each node
	rmq   *rmq.PM1
}

// New preprocesses t for O(1) LCA queries in O(|t|) time and space.
func New(t *parsetree.Tree) *LCA {
	n := t.N()
	l := &LCA{
		tree:  t,
		euler: make([]int32, 0, 2*n-1),
		depth: make([]int32, 0, 2*n-1),
		first: make([]int32, n),
	}
	for i := range l.first {
		l.first[i] = -1
	}
	// Iterative Euler tour: visit a node, descend to each child in turn,
	// and record the node again after each child's subtree.
	type frame struct {
		node  parsetree.NodeID
		stage int8 // 0: first visit; 1: returned from left; 2: from right
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{t.Root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := f.node
		step := int32(len(l.euler))
		l.euler = append(l.euler, id)
		l.depth = append(l.depth, t.Depth[id])
		if l.first[id] < 0 {
			l.first[id] = step
		}
		switch f.stage {
		case 0:
			if c := t.LChild[id]; c != parsetree.Null {
				stack = append(stack, frame{id, 1})
				stack = append(stack, frame{c, 0})
			}
		case 1:
			if c := t.RChild[id]; c != parsetree.Null {
				stack = append(stack, frame{id, 2})
				stack = append(stack, frame{c, 0})
			}
		}
	}
	l.rmq = rmq.NewPM1(l.depth)
	return l
}

// Query returns the lowest common ancestor of u and v.
func (l *LCA) Query(u, v parsetree.NodeID) parsetree.NodeID {
	if u == v {
		return u
	}
	i, j := l.first[u], l.first[v]
	if i > j {
		i, j = j, i
	}
	return l.euler[l.rmq.MinIndex(int(i), int(j)+1)]
}

// Tree returns the tree this index was built for.
func (l *LCA) Tree() *parsetree.Tree { return l.tree }
