package lca

import (
	"math/rand"
	"testing"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
	"dregex/internal/wordgen"
)

func buildTree(t *testing.T, expr string) *parsetree.Tree {
	t.Helper()
	alpha := ast.NewAlphabet()
	e := ast.Normalize(ast.MustParseMath(expr, alpha))
	tr, err := parsetree.Build(e, alpha)
	if err != nil {
		t.Fatalf("Build(%q): %v", expr, err)
	}
	return tr
}

// naiveLCA walks parent pointers.
func naiveLCA(tr *parsetree.Tree, u, v parsetree.NodeID) parsetree.NodeID {
	anc := map[parsetree.NodeID]bool{}
	for x := u; x != parsetree.Null; x = tr.Parent[x] {
		anc[x] = true
	}
	for x := v; x != parsetree.Null; x = tr.Parent[x] {
		if anc[x] {
			return x
		}
	}
	return parsetree.Null
}

func TestLCAExhaustiveSmall(t *testing.T) {
	exprs := []string{
		"a",
		"ab",
		"(c?((ab*)(a?c)))*(ba)",
		"(ab+b(b?)a)*",
		"((a+b)?c)*d?",
		"a?b?c?d?e?",
	}
	for _, expr := range exprs {
		tr := buildTree(t, expr)
		idx := New(tr)
		n := parsetree.NodeID(tr.N())
		for u := parsetree.NodeID(0); u < n; u++ {
			for v := parsetree.NodeID(0); v < n; v++ {
				got := idx.Query(u, v)
				want := naiveLCA(tr, u, v)
				if got != want {
					t.Fatalf("%s: LCA(%d,%d) = %d, want %d", expr, u, v, got, want)
				}
			}
		}
	}
}

func TestLCARandomLarge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		alpha := ast.NewAlphabet()
		e := ast.Normalize(wordgen.RandomExpr(r, alpha, wordgen.ExprConfig{
			Symbols:  6,
			MaxNodes: 400,
		}))
		tr, err := parsetree.Build(e, alpha)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		idx := New(tr)
		n := tr.N()
		for q := 0; q < 2000; q++ {
			u := parsetree.NodeID(r.Intn(n))
			v := parsetree.NodeID(r.Intn(n))
			got := idx.Query(u, v)
			want := naiveLCA(tr, u, v)
			if got != want {
				t.Fatalf("trial %d: LCA(%d,%d) = %d, want %d", trial, u, v, got, want)
			}
		}
	}
}

func TestLCAProperties(t *testing.T) {
	tr := buildTree(t, "(a(b?c)*)+(d(e+f)?)*")
	idx := New(tr)
	n := parsetree.NodeID(tr.N())
	for u := parsetree.NodeID(0); u < n; u++ {
		if idx.Query(u, u) != u {
			t.Fatalf("LCA(%d,%d) != %d", u, u, u)
		}
		if idx.Query(tr.Root, u) != tr.Root {
			t.Fatal("LCA with root must be root")
		}
		for v := parsetree.NodeID(0); v < n; v++ {
			l := idx.Query(u, v)
			if l != idx.Query(v, u) {
				t.Fatal("LCA not symmetric")
			}
			if !tr.IsAncestor(l, u) || !tr.IsAncestor(l, v) {
				t.Fatal("LCA is not a common ancestor")
			}
			// An ancestor of u that is an ancestor of v must be above l.
			if tr.IsAncestor(u, v) && l != u {
				t.Fatal("LCA of ancestor pair must be the ancestor")
			}
		}
	}
	if idx.Tree() != tr {
		t.Fatal("Tree() identity")
	}
}

func TestMixedContentScale(t *testing.T) {
	// A large balanced union under a star: exercises deep-ish trees and the
	// block boundaries of the ±1 RMQ.
	alpha := ast.NewAlphabet()
	e := wordgen.MixedContent(alpha, 3000)
	tr, err := parsetree.Build(ast.Normalize(e), alpha)
	if err != nil {
		t.Fatal(err)
	}
	idx := New(tr)
	r := rand.New(rand.NewSource(9))
	for q := 0; q < 5000; q++ {
		u := parsetree.NodeID(r.Intn(tr.N()))
		v := parsetree.NodeID(r.Intn(tr.N()))
		l := idx.Query(u, v)
		if !tr.IsAncestor(l, u) || !tr.IsAncestor(l, v) {
			t.Fatalf("LCA(%d,%d)=%d is not a common ancestor", u, v, l)
		}
		// Lowest: neither child of l on the u/v sides is a common ancestor.
		if l != u && l != v {
			lc, rc := tr.LChild[l], tr.RChild[l]
			for _, c := range []parsetree.NodeID{lc, rc} {
				if c != parsetree.Null && tr.IsAncestor(c, u) && tr.IsAncestor(c, v) {
					t.Fatalf("LCA(%d,%d)=%d not lowest", u, v, l)
				}
			}
		}
	}
}
