// Package run is the unified streaming-run core shared by every engine:
// the plain §4 transition simulators (through match.Stream), the dense
// table tier, and the §3.3 counter engine (through numeric.Stream).
//
// A "run" is one left-to-right pass over a word: initialize at the empty
// prefix, consume one symbol at a time, query viability and acceptance at
// any prefix. Before this package each engine surface re-implemented that
// plumbing — dead/fed bookkeeping, the name/bytes/rune alphabet guards,
// the reader drivers — once per stream type. Runner is the shared
// contract; Core is the shared per-run bookkeeping the concrete streams
// embed; the free functions are the drivers that work on any Runner.
//
// Because the expressions are deterministic, a run's position sequence is
// the unique parse of the word (Bille–Gørtz, "From Regular Expression
// Matching to Parsing"): Trace records it, opt-in, so the pure-match hot
// path stays untouched (a nil trace pointer is one predictable branch).
package run

import (
	"bufio"
	"fmt"
	"io"

	"dregex/internal/ast"
	"dregex/internal/parsetree"
)

// Runner is one streaming run over one compiled expression. Implemented by
// match.Stream (all plain engines plus the dense table, via TransitionSim)
// and numeric.Stream (the counter engine). A Runner is single-goroutine
// per-word state; the engine behind it is shared and immutable.
type Runner interface {
	// Reset rewinds the run to the empty prefix (buffers retained).
	Reset()
	// Feed consumes one interned symbol; it reports whether the prefix
	// read so far is still viable. Symbols outside the user alphabet kill
	// the run.
	Feed(a ast.Symbol) bool
	// FeedName / FeedBytes / FeedRune consume one symbol by name, by raw
	// bytes, or as a single rune, interning through the expression's
	// alphabet without allocating.
	FeedName(name string) bool
	FeedBytes(name []byte) bool
	FeedRune(r rune) bool
	// Accepts reports whether the prefix consumed so far is in L(e).
	Accepts() bool
	// Alive reports whether some extension could still be accepted.
	Alive() bool
	// Len returns the number of symbols consumed (the killing symbol of a
	// dead run is not counted).
	Len() int
	// SetTrace attaches (or detaches, with nil) a witness log; see Trace.
	SetTrace(tr *Trace)
	// ExpectedNext appends the interned symbols that could legally extend
	// the run — at the current prefix while alive, at the last viable
	// prefix once dead. The result is empty only when no symbol extends
	// the prefix.
	ExpectedNext(dst []ast.Symbol) []ast.Symbol
	// Alphabet returns the expression's symbol alphabet.
	Alphabet() *ast.Alphabet
}

// Trace is an opt-in witness log: the run's position sequence. Positions
// are Glushkov states — leaves of the compiled parse tree — so for a
// deterministic expression the trace of an accepted word IS its unique
// parse (materialized by parsetree.Derive). Pos[i] is the position that
// consumed symbol i. Attach with Runner.SetTrace; Reset (and the streams'
// Init) truncates an attached trace, so a reused stream can never leak
// positions from a previous — possibly rejected — word into the next
// word's witness.
type Trace struct {
	Pos []parsetree.NodeID
}

// Reset truncates the log, retaining capacity.
func (t *Trace) Reset() {
	if t != nil {
		t.Pos = t.Pos[:0]
	}
}

// Core is the engine-independent half of a run: liveness, consumed-symbol
// count, and the witness log. Concrete streams embed it and call Advance /
// Kill from their Feed; everything else (Alive, Len, SetTrace, Witness)
// is shared behavior inherited by embedding.
type Core struct {
	dead bool
	fed  int
	tr   *Trace
}

// Alive implements Runner.
func (c *Core) Alive() bool { return !c.dead }

// Len implements Runner.
func (c *Core) Len() int { return c.fed }

// SetTrace implements Runner: it attaches tr (nil detaches) and truncates
// it, so recording always starts at the current prefix boundary.
func (c *Core) SetTrace(tr *Trace) {
	c.tr = tr
	tr.Reset()
}

// Witness returns the recorded position sequence (nil when no trace is
// attached). The slice aliases the trace's log; it is valid until the next
// Feed or Reset.
func (c *Core) Witness() []parsetree.NodeID {
	if c.tr == nil {
		return nil
	}
	return c.tr.Pos
}

// Rewind resets the bookkeeping (and truncates an attached trace) for the
// embedding stream's Reset/Init.
func (c *Core) Rewind() {
	c.dead = false
	c.fed = 0
	c.tr.Reset()
}

// Advance records one consumed symbol landing on position p.
//
//dregex:noalloc
func (c *Core) Advance(p parsetree.NodeID) {
	c.fed++
	if c.tr != nil {
		c.tr.Pos = append(c.tr.Pos, p)
	}
}

// Kill marks the run dead. The embedding stream keeps its last viable
// state so ExpectedNext can report what could have come instead.
//
//dregex:noalloc
func (c *Core) Kill() { c.dead = true }

// LookupName resolves a symbol name for a Feed step; the reserved phantom
// markers # and $ are never feedable. The ok=false result is what a
// stream's FeedName forwards to Kill.
//
//dregex:noalloc
func LookupName(alpha *ast.Alphabet, name string) (ast.Symbol, bool) {
	a, ok := alpha.Lookup(name)
	if !ok || a == ast.Begin || a == ast.End {
		return ast.None, false
	}
	return a, true
}

// LookupBytes is LookupName for a name given as raw bytes (an element name
// straight out of a document tokenizer) — no string materialization.
//
//dregex:noalloc
func LookupBytes(alpha *ast.Alphabet, name []byte) (ast.Symbol, bool) {
	a, ok := alpha.LookupBytes(name)
	if !ok || a == ast.Begin || a == ast.End {
		return ast.None, false
	}
	return a, true
}

// LookupRune is LookupName for a single-rune symbol (math notation) — no
// per-rune string allocation.
//
//dregex:noalloc
func LookupRune(alpha *ast.Alphabet, r rune) (ast.Symbol, bool) {
	a, ok := alpha.LookupRune(r)
	if !ok || a == ast.Begin || a == ast.End {
		return ast.None, false
	}
	return a, true
}

// Word drives a whole interned word through r and reports acceptance.
//
//dregex:noalloc
func Word(r Runner, word []ast.Symbol) bool {
	for _, a := range word {
		if !r.Feed(a) {
			return false
		}
	}
	return r.Accepts()
}

// Names drives a word of symbol names through r.
func Names(r Runner, names []string) bool {
	for _, n := range names {
		if !r.FeedName(n) {
			return false
		}
	}
	return r.Accepts()
}

// Chars drives a math-notation word (one rune per symbol) through r
// without allocating per rune.
func Chars(r Runner, w string) bool {
	for _, ch := range w {
		if !r.FeedRune(ch) {
			return false
		}
	}
	return r.Accepts()
}

// ExpectedNames renders ExpectedNext as symbol names, appending into dst —
// the diagnostics form validators and parse errors report ("expected
// <qty>"). It allocates (names, and a small symbol scratch); it is meant
// for error paths, never per-symbol hot loops.
func ExpectedNames(r Runner, dst []string) []string {
	alpha := r.Alphabet()
	for _, a := range r.ExpectedNext(nil) {
		dst = append(dst, alpha.Name(a))
	}
	return dst
}

// ReaderRunes streams single-rune symbols from rd through r in one
// sequential pass (the §1 "streamable" claim: the word is never stored).
// ASCII whitespace is skipped, so "aba" and "a b a" stream the same word.
func ReaderRunes(r Runner, rd io.Reader) (bool, error) {
	br := bufio.NewReader(rd)
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			return r.Accepts(), nil
		}
		if err != nil {
			return false, fmt.Errorf("run: read: %w", err)
		}
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			continue
		}
		if !r.FeedRune(ch) {
			// Drain is unnecessary: the verdict is already final.
			return false, nil
		}
	}
}

// ReaderTokens streams whitespace-separated symbol names from rd through r
// in one sequential pass.
func ReaderTokens(r Runner, rd io.Reader) (bool, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		if !r.FeedName(sc.Text()) {
			return false, sc.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return r.Accepts(), nil
}
