package run

import (
	"errors"
	"testing"
	"time"
)

func TestCheckpointDisarmed(t *testing.T) {
	var cp Checkpoint
	for i := 0; i < 3*checkpointEvery; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("disarmed checkpoint returned %v", err)
		}
	}
}

func TestCheckpointCancel(t *testing.T) {
	done := make(chan struct{})
	var cp Checkpoint
	cp.Arm(done, time.Time{})
	// Before cancellation the armed checkpoint passes full strides.
	for i := 0; i < 2*checkpointEvery; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("armed-but-live checkpoint returned %v at %d", err, i)
		}
	}
	close(done)
	var got error
	for i := 0; i < checkpointEvery+1; i++ {
		if err := cp.Check(); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrCanceled) {
		t.Fatalf("after close: %v, want ErrCanceled within one stride", got)
	}
}

func TestCheckpointDeadline(t *testing.T) {
	var cp Checkpoint
	cp.Arm(nil, time.Now().Add(-time.Millisecond)) // already expired
	var got error
	for i := 0; i < checkpointEvery+1; i++ {
		if err := cp.Check(); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: %v, want ErrDeadlineExceeded within one stride", got)
	}

	// A future deadline does not fire.
	cp.Arm(nil, time.Now().Add(time.Hour))
	for i := 0; i < 2*checkpointEvery; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("future deadline fired: %v", err)
		}
	}
}

func TestCheckpointRearmResetsStride(t *testing.T) {
	var cp Checkpoint
	cp.Arm(nil, time.Now().Add(-time.Millisecond))
	// Consume most of a stride, then re-arm: the next probe is a full
	// stride away, so a run never inherits the previous run's position.
	for i := 0; i < checkpointEvery-2; i++ {
		cp.Check()
	}
	cp.Arm(nil, time.Now().Add(-time.Millisecond))
	for i := 0; i < checkpointEvery-1; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("probe before a full stride after re-arm (i=%d): %v", i, err)
		}
	}
	if err := cp.Check(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("stride boundary after re-arm: %v", err)
	}
	cp.Disarm()
	if err := cp.Check(); err != nil {
		t.Fatalf("disarmed after expiry: %v", err)
	}
}

func TestCheckpointAllocs(t *testing.T) {
	done := make(chan struct{})
	var cp Checkpoint
	cp.Arm(done, time.Now().Add(time.Hour))
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4*checkpointEvery; i++ {
			if err := cp.Check(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("armed checkpoint allocates %.2f per 4 strides, want 0", allocs)
	}
}
