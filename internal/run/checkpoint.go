// Cooperative cancellation for streaming runs. The engines' per-symbol
// guarantee is O(f) work per symbol — but a pathological document can
// carry millions of symbols, and a service that has promised a deadline
// must be able to abandon the run mid-stream. Checkpoint is the shared
// mechanism: validators call Check once per consumed token, and the check
// is a single predictable branch except every checkpointEvery-th call,
// which performs the real (still lock-free, allocation-free) probe of the
// cancellation channel and the deadline clock. Disarmed checkpoints cost
// one nil/bool test — the pinned 0-alloc validation paths are undisturbed.
package run

import (
	"errors"
	"time"
)

// Cancellation sentinels. They are returned by value (no allocation on the
// cancellation path until the caller wraps them) and are designed for
// errors.Is classification by serving layers (deadline → 503 Retry-After,
// cancel → request abandoned).
var (
	// ErrCanceled reports that the run's cancellation channel closed
	// (typically: the client went away).
	ErrCanceled = errors.New("run: canceled")
	// ErrDeadlineExceeded reports that the run's deadline passed before the
	// stream was fully consumed.
	ErrDeadlineExceeded = errors.New("run: deadline exceeded")
)

// checkpointEvery is the stride between real cancellation probes: a power
// of two so the stride test is a mask. 1024 symbols at the slowest engine
// tier (~300 ns/symbol) bounds the overshoot past a deadline to ~300 µs —
// far below any meaningful request deadline — while keeping the amortized
// per-symbol cost of an armed checkpoint below a tenth of a nanosecond.
const checkpointEvery = 1024

// Checkpoint is a reusable cancellation point for a streaming loop. The
// zero value is disarmed: Check returns nil after one branch. Arm it with
// a cancellation channel (e.g. ctx.Done()), an absolute deadline, or both;
// Disarm (or re-Arm) between runs. A Checkpoint is single-goroutine state,
// like the stream it guards.
type Checkpoint struct {
	done     <-chan struct{}
	deadline time.Time
	armed    bool
	n        uint32
}

// Arm configures the checkpoint for the next run: done non-nil enables
// cancellation probing, a non-zero deadline enables the clock check. Both
// zero values leave the checkpoint disarmed. The stride counter restarts,
// so a freshly armed run gets its full stride before the first real probe.
func (cp *Checkpoint) Arm(done <-chan struct{}, deadline time.Time) {
	cp.done = done
	cp.deadline = deadline
	cp.armed = done != nil || !deadline.IsZero()
	cp.n = 0
}

// Disarm returns the checkpoint to the zero (free) state.
func (cp *Checkpoint) Disarm() {
	cp.done = nil
	cp.deadline = time.Time{}
	cp.armed = false
}

// Check is the per-symbol cancellation probe: nil while the run may
// continue, ErrCanceled or ErrDeadlineExceeded once it must stop. Cheap
// enough for token loops: disarmed it is one branch; armed it is a counter
// increment and a mask test, with the channel/clock probe amortized over
// checkpointEvery calls.
//
//dregex:noalloc
func (cp *Checkpoint) Check() error {
	if !cp.armed {
		return nil
	}
	cp.n++
	if cp.n&(checkpointEvery-1) != 0 {
		return nil
	}
	return cp.probe()
}

// probe is the real check, factored out so Check's fast path inlines.
//
//dregex:noalloc
func (cp *Checkpoint) probe() error {
	if cp.done != nil {
		select {
		case <-cp.done:
			return ErrCanceled
		default:
		}
	}
	if !cp.deadline.IsZero() && time.Now().After(cp.deadline) {
		return ErrDeadlineExceeded
	}
	return nil
}
