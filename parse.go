package dregex

// From matching to parsing (Bille–Gørtz, "From Regular Expression Matching
// to Parsing"): a deterministic expression's positions are the states of
// its Glushkov automaton, so the position sequence of a run — recorded
// opt-in by run.Trace — is the unique parse of the word. Parse drives one
// recorded run and materializes the derivation via parsetree.Derive; on
// rejection it reports where the run died and which symbols could have
// continued it instead, the diagnostics the validators and the server
// surface as "expected ..." hints.

import (
	"errors"
	"fmt"

	"dregex/internal/ast"
	"dregex/internal/match"
	"dregex/internal/parsetree"
	"dregex/internal/run"
)

// errNeedDeterministicParse rejects parse requests on nondeterministic
// expressions: without determinism the position sequence is not unique, so
// there is no canonical parse to report.
var errNeedDeterministicParse = errors.New("dregex: parsing requires a deterministic engine")

// ParseResult is the outcome of one recorded run over one word.
type ParseResult struct {
	// Accepted reports word ∈ L(e).
	Accepted bool
	// Trace is the witness: Trace[i] is the position (Glushkov state, a
	// leaf of the compiled tree) that consumed symbol i. On rejection it
	// covers the viable prefix only. Counter-engine runs over
	// nondeterministic expressions record Null where no single position
	// consumed the symbol.
	Trace []parsetree.NodeID
	// Tree is the word's parse tree, materialized from the trace; nil on
	// rejection, and nil for counter-engine parses (the counters constrain
	// iteration structure beyond what the plain derivation rules check, so
	// the numeric pipeline reports the trace without a materialized tree).
	Tree *parsetree.ParseNode
	// FailedAt is -1 when accepted; otherwise the index of the symbol the
	// run died on, or len(word) when the word ended where the expression
	// required more.
	FailedAt int
	// Expected lists the symbols that could have extended the run at the
	// failure point (empty when accepted).
	Expected []string

	t *parsetree.Tree
}

// TreeString renders the parse tree as an s-expression — leaves as symbol
// names, inner nodes as (op child …); "" when Tree is nil.
func (r *ParseResult) TreeString() string {
	if r.Tree == nil {
		return ""
	}
	return r.Tree.Render(r.t)
}

// ParseWord matches a word of interned symbols with witness recording: the
// result carries the position trace and, on acceptance, the word's parse
// tree. Recording is opt-in per call — plain MatchWord stays the zero
// allocation hot path — and costs one append per symbol on top of the
// match. The NFA engine has no single-position runs and cannot parse.
func (m *Matcher) ParseWord(word []ast.Symbol) (*ParseResult, error) {
	if m.sim == nil {
		return nil, errNeedDeterministicParse
	}
	var s match.Stream
	s.Init(m.sim)
	return finishParse(&s, m.expr.tree, true, func(i int) bool { return s.Feed(word[i]) }, len(word))
}

// Parse is ParseWord over symbol names (see Expr.Intern for the interned
// hot path). An unknown name rejects at its index, like any other symbol
// with no follower.
func (m *Matcher) Parse(names []string) (*ParseResult, error) {
	if m.sim == nil {
		return nil, errNeedDeterministicParse
	}
	var s match.Stream
	s.Init(m.sim)
	return finishParse(&s, m.expr.tree, true, func(i int) bool { return s.FeedName(names[i]) }, len(names))
}

// ParseText is Parse over a math-notation word (one rune per symbol).
func (m *Matcher) ParseText(w string) (*ParseResult, error) {
	if m.sim == nil {
		return nil, errNeedDeterministicParse
	}
	runes := []rune(w)
	var s match.Stream
	s.Init(m.sim)
	return finishParse(&s, m.expr.tree, true, func(i int) bool { return s.FeedRune(runes[i]) }, len(runes))
}

// ParseWord records the counter engine's witness for a word of interned
// symbols. For a deterministic expression the live configuration set stays
// a singleton, so the trace is the same position sequence the plain
// engines record (the differential tests pin this); the parse tree is not
// materialized — see ParseResult.Tree.
func (m *NumericMatcher) ParseWord(word []ast.Symbol) (*ParseResult, error) {
	var s NumericStream
	s.Init(m.c)
	return finishParse(&s, m.c.Tree, false, func(i int) bool { return s.Feed(word[i]) }, len(word))
}

// Parse is NumericMatcher.ParseWord over symbol names.
func (m *NumericMatcher) Parse(names []string) (*ParseResult, error) {
	var s NumericStream
	s.Init(m.c)
	return finishParse(&s, m.c.Tree, false, func(i int) bool { return s.FeedName(names[i]) }, len(names))
}

// finishParse drives one recorded run (feed(i) consumes symbol i of n) and
// assembles the result; derive materializes the tree on acceptance.
func finishParse(r run.Runner, t *parsetree.Tree, derive bool, feed func(int) bool, n int) (*ParseResult, error) {
	var tr run.Trace
	r.SetTrace(&tr)
	res := &ParseResult{FailedAt: -1, t: t}
	for i := 0; i < n; i++ {
		if !feed(i) {
			res.FailedAt = i
			res.Trace = tr.Pos
			res.Expected = run.ExpectedNames(r, nil)
			return res, nil
		}
	}
	if !r.Accepts() {
		res.FailedAt = n
		res.Trace = tr.Pos
		res.Expected = run.ExpectedNames(r, nil)
		return res, nil
	}
	res.Accepted = true
	res.Trace = tr.Pos
	if derive {
		tree, err := parsetree.Derive(t, res.Trace)
		if err != nil {
			return nil, fmt.Errorf("dregex: witness derivation failed: %w", err)
		}
		res.Tree = tree
	}
	return res, nil
}

// ExpectedAfter reports the symbols that can legally follow the given
// viable prefix — a convenience over a one-off recorded run, used by
// tooling; validators keep their own streams and call run.ExpectedNames at
// the failure point instead.
func (m *Matcher) ExpectedAfter(prefix []ast.Symbol) ([]string, error) {
	if m.sim == nil {
		return nil, errNeedDeterministicParse
	}
	var s match.Stream
	s.Init(m.sim)
	for _, a := range prefix {
		if !s.Feed(a) {
			break
		}
	}
	return run.ExpectedNames(&s, nil), nil
}
