package dregex

import (
	"errors"
	"fmt"
	"io"

	"dregex/internal/ast"
	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/match/colored"
	"dregex/internal/match/kore"
	"dregex/internal/match/pathdecomp"
	"dregex/internal/match/starfree"
	"dregex/internal/match/table"
	"dregex/internal/run"
)

// Algorithm selects a transition-simulation engine (§4 of the paper, plus
// the dense-table fast path).
type Algorithm int

// Matching algorithms. Auto picks the dense-table DFA whenever the
// expression fits the TableBudget (real-world content models are tiny
// 1-OREs, where a table transition is one indexed load), then falls back
// per the paper's guidance: the k-ORE simulator when every symbol occurs
// at most twice, the path-decomposition simulator while the alternation
// depth stays small (it never exceeds 4 in real DTD corpora), and the
// colored-ancestor simulator otherwise.
const (
	Auto Algorithm = iota
	// Table is the flat-table DFA: the Glushkov automaton of a
	// deterministic expression materialized as a dense transition table
	// (states = positions, no subset construction), O(1) loads per symbol.
	// Available only while positions × alphabet stays within TableBudget.
	Table
	// KORE is Theorem 4.3: O(k) per symbol.
	KORE
	// Colored is Theorem 4.2: O(log log |e|) per symbol via van Emde
	// Boas lowest-colored-ancestor queries.
	Colored
	// ColoredBinary is Colored with a binary-search predecessor backend
	// (ablation baseline, O(log |e|) per symbol).
	ColoredBinary
	// PathDecomp is Theorem 4.10: amortized O(c_e) per symbol.
	PathDecomp
	// StarFreeScan is the §4.4 single-word scan; requires a star-free
	// expression, total O(|e| + |w|) per word.
	StarFreeScan
	// Climbing is the naive O(depth(e)) per-symbol baseline of §4.3.
	Climbing
	// NFA is position-set simulation on the Glushkov relation; the only
	// engine that accepts nondeterministic expressions (O(k²) per symbol).
	NFA

	// numAlgorithms sizes the per-Expr engine cache.
	numAlgorithms = int(NFA) + 1
)

// TableBudget caps the dense-table tier: Auto selects Table only while
// (positions+2) × (alphabet+2) table entries — the phantom # and $ occupy
// one state and two columns — stay within it. Above the budget the
// linear-precomputation engines of §4 take over, keeping the paper's
// O(|e|) preprocessing guarantee for pathological sizes.
const TableBudget = table.DefaultBudget

// tableEligible reports whether Auto may pick the dense-table tier. Both
// the table size (positions × alphabet) and the construction work
// (positions², every pair is probed once) must fit the budget — mirroring
// table.New exactly, so Auto never selects a tier that would then refuse
// to build.
func tableEligible(st Stats) bool {
	states := st.Positions + 2 // the phantom # and $ are states too
	return st.Deterministic &&
		states*(st.Sigma+2) <= TableBudget &&
		states*states <= TableBudget
}

// autoSelect resolves Auto from the compile-time stats: the dense-table
// fast path while it fits TableBudget, then the paper's guidance (see the
// Algorithm constants).
func autoSelect(st Stats) Algorithm {
	switch {
	case tableEligible(st):
		return Table
	case st.K <= 2:
		return KORE
	case st.AlternationDepth <= 8:
		return PathDecomp
	default:
		return Colored
	}
}

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Table:
		return "table"
	case KORE:
		return "kore"
	case Colored:
		return "colored"
	case ColoredBinary:
		return "colored-binary"
	case PathDecomp:
		return "pathdecomp"
	case StarFreeScan:
		return "starfree-scan"
	case Climbing:
		return "climbing"
	case NFA:
		return "nfa"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Matcher matches words against one compiled expression with a fixed
// algorithm. Matchers are safe for concurrent use; per-word state lives in
// Stream values.
type Matcher struct {
	expr *Expr
	algo Algorithm
	sim  match.TransitionSim
	nfa  *kore.NFA
	// tab aliases sim for the Table engine, so MatchWord can take the
	// devirtualized table loop instead of per-symbol interface calls.
	tab *table.DFA
}

// Matcher returns the engine for algo, building it on first use and
// returning the same cached *Matcher on every subsequent call (Auto
// resolves to a concrete algorithm first, so Matcher(Auto) and an explicit
// request for the same algorithm share one engine). All algorithms except
// NFA require a deterministic expression.
func (e *Expr) Matcher(algo Algorithm) (*Matcher, error) {
	if algo == Auto {
		algo = e.auto
	}
	if int(algo) < 0 || int(algo) >= numAlgorithms {
		return nil, fmt.Errorf("dregex: unknown algorithm %v", algo)
	}
	if algo != NFA && !e.det.Deterministic {
		return nil, fmt.Errorf("dregex: %w", errNondet(e))
	}
	slot := &e.engines[algo]
	slot.once.Do(func() {
		slot.m, slot.err = e.buildMatcher(algo)
	})
	return slot.m, slot.err
}

// buildMatcher constructs one engine; it runs at most once per algorithm
// per Expr, under the engine slot's sync.Once.
func (e *Expr) buildMatcher(algo Algorithm) (*Matcher, error) {
	m := &Matcher{expr: e, algo: algo}
	var err error
	switch algo {
	case Table:
		var d *table.DFA
		if d, err = table.New(e.tree, e.fol, TableBudget); err == nil {
			m.tab = d
			m.sim = d
		}
	case KORE:
		m.sim = kore.New(e.tree, e.fol)
	case Colored:
		m.sim, err = colored.New(e.tree, e.fol, colored.Options{})
	case ColoredBinary:
		m.sim, err = colored.New(e.tree, e.fol, colored.Options{BinarySearch: true})
	case PathDecomp:
		m.sim, err = pathdecomp.New(e.tree, e.fol)
	case StarFreeScan:
		m.sim, err = starfree.NewScan(e.tree, e.fol)
	case Climbing:
		m.sim, err = colored.NewClimbing(e.tree, e.fol)
	case NFA:
		m.nfa = kore.NewNFA(e.tree, e.fol)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// batchEngine returns the cached Theorem 4.12 star-free batch engine.
func (e *Expr) batchEngine() (*starfree.Batch, error) {
	e.batch.once.Do(func() {
		e.batch.b, e.batch.err = starfree.NewBatch(e.tree, e.fol)
		if e.batch.err == nil {
			batchBuilds.Add(1)
		}
	})
	return e.batch.b, e.batch.err
}

func errNondet(e *Expr) error {
	return fmt.Errorf("expression %q is not deterministic (%s)", e.source, e.det.Rule)
}

// Algorithm returns the engine actually selected (resolving Auto).
func (m *Matcher) Algorithm() Algorithm { return m.algo }

// MatchSymbols matches a word given as symbol names.
func (m *Matcher) MatchSymbols(names []string) bool {
	if m.nfa != nil {
		return m.nfa.MatchNames(names)
	}
	return match.Names(m.sim, names)
}

// MatchWord matches a word of interned symbols (see Expr.Intern). For the
// deterministic engines this is the zero-allocation hot path: no map
// lookups, no per-symbol conversions, O(1) state.
func (m *Matcher) MatchWord(word []ast.Symbol) bool {
	if m.tab != nil {
		return m.tab.MatchWord(word)
	}
	if m.nfa != nil {
		return m.nfa.Match(word)
	}
	return match.Word(m.sim, word)
}

// MatchText matches a word written in math notation: each rune is one
// symbol, interned directly (no per-rune string allocation).
func (m *Matcher) MatchText(w string) bool {
	if m.nfa != nil {
		alpha := m.expr.alpha
		word := make([]ast.Symbol, 0, len(w))
		for _, r := range w {
			s, ok := alpha.LookupRune(r)
			if !ok {
				return false
			}
			word = append(word, s)
		}
		return m.nfa.Match(word)
	}
	return match.Chars(m.sim, w)
}

// Stream starts an incremental match (one-pass, O(1) state beyond the
// preprocessed expression). The NFA engine has no single-position state and
// returns nil.
func (m *Matcher) Stream() *match.Stream {
	if m.sim == nil {
		return nil
	}
	return match.NewStream(m.sim)
}

// InitStream rewinds a caller-owned stream onto this matcher's engine, for
// allocation-free reuse (one Stream value per goroutine or stack frame,
// reset per word). It reports false for the NFA engine, which has no
// single-position stream state.
func (m *Matcher) InitStream(s *match.Stream) bool {
	if m.sim == nil {
		return false
	}
	s.Init(m.sim)
	return true
}

// errNeedDeterministicStream rejects streaming requests on expressions
// that compiled without a streaming simulator (nondeterministic ones).
var errNeedDeterministicStream = errors.New("dregex: streaming requires a deterministic engine")

// MatchReaderRunes streams single-rune symbols from r (ASCII whitespace
// skipped).
func (m *Matcher) MatchReaderRunes(r io.Reader) (bool, error) {
	if m.sim == nil {
		return false, errNeedDeterministicStream
	}
	var s match.Stream
	s.Init(m.sim)
	return run.ReaderRunes(&s, r)
}

// MatchReaderTokens streams whitespace-separated symbol names from r.
func (m *Matcher) MatchReaderTokens(r io.Reader) (bool, error) {
	if m.sim == nil {
		return false, errNeedDeterministicStream
	}
	var s match.Stream
	s.Init(m.sim)
	return run.ReaderTokens(&s, r)
}

// MatchAll matches many words at once. Under Auto, table-eligible
// expressions ride the dense-table engine word by word (a table step is
// cheaper than the batch machinery's bookkeeping, and the path allocates
// nothing beyond the result slice); star-free expressions beyond the table
// budget take the Theorem 4.12 batch algorithm (combined linear time). An
// explicitly requested Algorithm is honored and matches each word
// independently (including NFA on nondeterministic expressions, exactly
// as through Matcher). The batch engine, like the per-algorithm
// simulators, is built once and reused across calls.
func (e *Expr) MatchAll(wordsNames [][]string, algo Algorithm) ([]bool, error) {
	if algo == Auto && e.det.Deterministic && e.stats.StarFree && e.auto != Table {
		if b, err := e.batchEngine(); err == nil {
			return b.MatchAllNames(wordsNames), nil
		}
	}
	// Matcher enforces determinism for every engine except NFA, so an
	// explicit NFA request works on nondeterministic expressions here
	// just as it does through Matcher directly.
	m, err := e.Matcher(algo)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(wordsNames))
	for i, w := range wordsNames {
		out[i] = m.MatchSymbols(w)
	}
	return out, nil
}

// MatchAllWords is MatchAll over pre-interned words (see Expr.Intern).
func (e *Expr) MatchAllWords(words [][]ast.Symbol, algo Algorithm) ([]bool, error) {
	if algo == Auto && e.det.Deterministic && e.stats.StarFree && e.auto != Table {
		if b, err := e.batchEngine(); err == nil {
			return b.MatchAll(words), nil
		}
	}
	m, err := e.Matcher(algo)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(words))
	for i, w := range words {
		out[i] = m.MatchWord(w)
	}
	return out, nil
}

// Glushkov exposes the baseline position automaton (primarily for
// benchmarks and cross-validation); its construction is O(σ|e|) for
// deterministic expressions and quadratic in general — the cost the
// paper's algorithms avoid.
func (e *Expr) Glushkov() *glushkov.Automaton { return glushkov.Build(e.tree) }
