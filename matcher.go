package dregex

import (
	"fmt"
	"io"

	"dregex/internal/glushkov"
	"dregex/internal/match"
	"dregex/internal/match/colored"
	"dregex/internal/match/kore"
	"dregex/internal/match/pathdecomp"
	"dregex/internal/match/starfree"
)

// Algorithm selects a transition-simulation engine (§4 of the paper).
type Algorithm int

// Matching algorithms. Auto picks per the paper's guidance: the k-ORE
// simulator when every symbol occurs at most twice, the path-decomposition
// simulator while the alternation depth stays small (it never exceeds 4 in
// real DTD corpora), and the colored-ancestor simulator otherwise.
const (
	Auto Algorithm = iota
	// KORE is Theorem 4.3: O(k) per symbol.
	KORE
	// Colored is Theorem 4.2: O(log log |e|) per symbol via van Emde
	// Boas lowest-colored-ancestor queries.
	Colored
	// ColoredBinary is Colored with a binary-search predecessor backend
	// (ablation baseline, O(log |e|) per symbol).
	ColoredBinary
	// PathDecomp is Theorem 4.10: amortized O(c_e) per symbol.
	PathDecomp
	// StarFreeScan is the §4.4 single-word scan; requires a star-free
	// expression, total O(|e| + |w|) per word.
	StarFreeScan
	// Climbing is the naive O(depth(e)) per-symbol baseline of §4.3.
	Climbing
	// NFA is position-set simulation on the Glushkov relation; the only
	// engine that accepts nondeterministic expressions (O(k²) per symbol).
	NFA
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case KORE:
		return "kore"
	case Colored:
		return "colored"
	case ColoredBinary:
		return "colored-binary"
	case PathDecomp:
		return "pathdecomp"
	case StarFreeScan:
		return "starfree-scan"
	case Climbing:
		return "climbing"
	case NFA:
		return "nfa"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Matcher matches words against one compiled expression with a fixed
// algorithm. Matchers are safe for concurrent use; per-word state lives in
// Stream values.
type Matcher struct {
	expr *Expr
	algo Algorithm
	sim  match.TransitionSim
	nfa  *kore.NFA
}

// Matcher builds a matcher. All algorithms except NFA require a
// deterministic expression.
func (e *Expr) Matcher(algo Algorithm) (*Matcher, error) {
	m := &Matcher{expr: e, algo: algo}
	if algo == Auto {
		st := e.Stats()
		switch {
		case st.K <= 2:
			algo = KORE
		case st.AlternationDepth <= 8:
			algo = PathDecomp
		default:
			algo = Colored
		}
		m.algo = algo
	}
	if algo != NFA && !e.det.Deterministic {
		return nil, fmt.Errorf("dregex: %w", errNondet(e))
	}
	var err error
	switch algo {
	case KORE:
		m.sim = kore.New(e.tree, e.fol)
	case Colored:
		m.sim, err = colored.New(e.tree, e.fol, colored.Options{})
	case ColoredBinary:
		m.sim, err = colored.New(e.tree, e.fol, colored.Options{BinarySearch: true})
	case PathDecomp:
		m.sim, err = pathdecomp.New(e.tree, e.fol)
	case StarFreeScan:
		m.sim, err = starfree.NewScan(e.tree, e.fol)
	case Climbing:
		m.sim, err = colored.NewClimbing(e.tree, e.fol)
	case NFA:
		m.nfa = kore.NewNFA(e.tree, e.fol)
	default:
		return nil, fmt.Errorf("dregex: unknown algorithm %v", algo)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

func errNondet(e *Expr) error {
	return fmt.Errorf("expression %q is not deterministic (%s)", e.source, e.det.Rule)
}

// Algorithm returns the engine actually selected (resolving Auto).
func (m *Matcher) Algorithm() Algorithm { return m.algo }

// MatchSymbols matches a word given as symbol names.
func (m *Matcher) MatchSymbols(names []string) bool {
	if m.nfa != nil {
		return m.nfa.MatchNames(names)
	}
	return match.Names(m.sim, names)
}

// MatchText matches a word written in math notation: each rune is one
// symbol.
func (m *Matcher) MatchText(w string) bool {
	if m.nfa != nil {
		names := make([]string, 0, len(w))
		for _, r := range w {
			names = append(names, string(r))
		}
		return m.nfa.MatchNames(names)
	}
	return match.Chars(m.sim, w)
}

// Stream starts an incremental match (one-pass, O(1) state beyond the
// preprocessed expression). The NFA engine has no single-position state and
// returns nil.
func (m *Matcher) Stream() *match.Stream {
	if m.sim == nil {
		return nil
	}
	return match.NewStream(m.sim)
}

// MatchReaderRunes streams single-rune symbols from r (newlines skipped).
func (m *Matcher) MatchReaderRunes(r io.Reader) (bool, error) {
	if m.sim == nil {
		return false, fmt.Errorf("dregex: streaming requires a deterministic engine")
	}
	return match.ReaderRunes(m.sim, r)
}

// MatchReaderTokens streams whitespace-separated symbol names from r.
func (m *Matcher) MatchReaderTokens(r io.Reader) (bool, error) {
	if m.sim == nil {
		return false, fmt.Errorf("dregex: streaming requires a deterministic engine")
	}
	return match.ReaderTokens(m.sim, r)
}

// MatchAll matches many words at once. For star-free expressions it runs
// the Theorem 4.12 batch algorithm in combined linear time; otherwise each
// word is matched independently.
func (e *Expr) MatchAll(wordsNames [][]string, algo Algorithm) ([]bool, error) {
	if !e.det.Deterministic {
		return nil, errNondet(e)
	}
	st := e.Stats()
	if st.StarFree {
		b, err := starfree.NewBatch(e.tree, e.fol)
		if err == nil {
			return b.MatchAllNames(wordsNames), nil
		}
	}
	m, err := e.Matcher(algo)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(wordsNames))
	for i, w := range wordsNames {
		out[i] = m.MatchSymbols(w)
	}
	return out, nil
}

// Glushkov exposes the baseline position automaton (primarily for
// benchmarks and cross-validation); its construction is O(σ|e|) for
// deterministic expressions and quadratic in general — the cost the
// paper's algorithms avoid.
func (e *Expr) Glushkov() *glushkov.Automaton { return glushkov.Build(e.tree) }
