package dregex

import (
	"reflect"
	"strings"
	"testing"
)

func mustLexer(t *testing.T, rules ...LexRule) *Lexer {
	t.Helper()
	l, err := NewLexer(rules...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustExpr(t *testing.T, src string) *Expr {
	t.Helper()
	e, err := Compile(src, Math)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return e
}

// arithLexer is a tiny token set over Math syntax's single-rune symbols:
// numbers, identifiers made of a/b, and the letter s as an "operator".
func arithLexer(t *testing.T) *Lexer {
	t.Helper()
	return mustLexer(t,
		LexRule{Tag: "num", Expr: mustExpr(t, "(0+1+2+3+4+5+6+7+8+9)(0+1+2+3+4+5+6+7+8+9)*")},
		LexRule{Tag: "id", Expr: mustExpr(t, "(a+b)(a+b)*")},
		LexRule{Tag: "op", Expr: mustExpr(t, "s")},
	)
}

func TestLexerTokens(t *testing.T) {
	l := arithLexer(t)
	toks, err := l.Tokens("ab42sbbs7")
	if err != nil {
		t.Fatal(err)
	}
	want := []Token{
		{Tag: "id", Lexeme: "ab", Pos: 0},
		{Tag: "num", Lexeme: "42", Pos: 2},
		{Tag: "op", Lexeme: "s", Pos: 4},
		{Tag: "id", Lexeme: "bb", Pos: 5},
		{Tag: "op", Lexeme: "s", Pos: 7},
		{Tag: "num", Lexeme: "7", Pos: 8},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokens:\n got %v\nwant %v", toks, want)
	}
}

// TestLexerLongestMatch pins maximal munch with last-accept backtracking:
// a rule that reads past its last accept hoping for a longer match must
// fall back to that accept and re-lex the lookahead.
func TestLexerLongestMatch(t *testing.T) {
	l := mustLexer(t,
		// Accepts a, abca, abcabca, ...: after "a" the rule stays alive
		// through "bc" hoping for the closing a of a (bca) round.
		LexRule{Tag: "x", Expr: mustExpr(t, "a(bca)*")},
		LexRule{Tag: "b", Expr: mustExpr(t, "b")},
		LexRule{Tag: "c", Expr: mustExpr(t, "c")},
	)
	toks, err := l.Tokens("abca")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Lexeme != "abca" || toks[0].Tag != "x" {
		t.Fatalf("abca: %v", toks)
	}
	// "abc" never completes the round: backtrack two runes to "a" and
	// re-lex "bc" as separate tokens.
	toks, err = l.Tokens("abc")
	if err != nil {
		t.Fatal(err)
	}
	want := []Token{
		{Tag: "x", Lexeme: "a", Pos: 0},
		{Tag: "b", Lexeme: "b", Pos: 1},
		{Tag: "c", Lexeme: "c", Pos: 2},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("abc: %v", toks)
	}
	// "abcabcab": two full rounds are impossible (trailing ab), so the
	// longest munch is abcabca, then b.
	toks, err = l.Tokens("abcabcab")
	if err != nil {
		t.Fatal(err)
	}
	want = []Token{
		{Tag: "x", Lexeme: "abcabca", Pos: 0},
		{Tag: "b", Lexeme: "b", Pos: 7},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("abcabcab: %v", toks)
	}
}

func TestLexerFirstRuleWinsTies(t *testing.T) {
	l := mustLexer(t,
		LexRule{Tag: "first", Expr: mustExpr(t, "ab")},
		LexRule{Tag: "second", Expr: mustExpr(t, "a(b+c)")},
	)
	toks, err := l.Tokens("ab")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Tag != "first" {
		t.Fatalf("tie: %v", toks)
	}
	toks, err = l.Tokens("ac")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Tag != "second" {
		t.Fatalf("ac: %v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	l := arithLexer(t)
	if _, err := l.Tokens("ab!cd"); err == nil ||
		!strings.Contains(err.Error(), "byte 2") {
		t.Fatalf("lexical error: %v", err)
	}
	// A viable-but-unaccepted tail at EOF is an error too.
	l2 := mustLexer(t, LexRule{Tag: "x", Expr: mustExpr(t, "abc")})
	if _, err := l2.Tokens("ab"); err == nil {
		t.Fatal("incomplete final token must error")
	}

	if _, err := NewLexer(); err == nil {
		t.Fatal("empty rule set must error")
	}
	if _, err := NewLexer(LexRule{Tag: "eps", Expr: mustExpr(t, "a*")}); err == nil {
		t.Fatal("ε-accepting rule must error")
	}
	nondet, err := Compile("(a+b)*a", Math)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLexer(LexRule{Tag: "nd", Expr: nondet}); err == nil {
		t.Fatal("nondeterministic rule must error")
	}
}

// TestLexerChunkedFeeding pins that token boundaries are independent of
// how the input is chunked — byte-at-a-time (splitting multi-byte runes),
// rune-at-a-time — and that LexReader agrees.
func TestLexerChunkedFeeding(t *testing.T) {
	l := mustLexer(t,
		LexRule{Tag: "word", Expr: mustExpr(t, "(α+β)(α+β)*")},
		LexRule{Tag: "sep", Expr: mustExpr(t, "s")},
	)
	input := "αβsβsαα"
	want, err := l.Tokens(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 5 {
		t.Fatalf("reference tokens: %v", want)
	}

	// Byte-at-a-time (splits every multi-byte rune).
	var got []Token
	s := l.Stream(func(tok Token) error { got = append(got, tok); return nil })
	for i := 0; i < len(input); i++ {
		if err := s.FeedBytes([]byte{input[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("byte-at-a-time:\n got %v\nwant %v", got, want)
	}

	// Rune-at-a-time, reusing the stream.
	got = nil
	s.Reset()
	for _, r := range input {
		if err := s.FeedRune(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rune-at-a-time:\n got %v\nwant %v", got, want)
	}

	// LexReader.
	got = nil
	if err := l.LexReader(strings.NewReader(input),
		func(tok Token) error { got = append(got, tok); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LexReader:\n got %v\nwant %v", got, want)
	}
}

// TestLexerTableAndGenericAgree compares the table fast path against the
// generic §4-simulator path by rebuilding the same rule set on the KORE
// engine (NewLexer always takes the table tier when Auto built one, so the
// generic branch is swapped in directly).
func TestLexerTableAndGenericAgree(t *testing.T) {
	src := []LexRule{
		{Tag: "num", Expr: mustExpr(t, "(0+1)(0+1)*")},
		{Tag: "id", Expr: mustExpr(t, "(a+b)(a+b)*")},
	}
	auto := mustLexer(t, src...)
	gl := mustLexer(t, src...)
	for i := range gl.rules {
		if gl.rules[i].tab == nil {
			t.Fatalf("rule %d: expected the table tier under Auto", i)
		}
		m, err := gl.rules[i].e.Matcher(KORE)
		if err != nil {
			t.Fatal(err)
		}
		gl.rules[i].tab = nil
		gl.rules[i].sim = m.sim
	}
	for _, input := range []string{"ab01", "0a1b", "aa00bb11", "b0b1"} {
		a, aerr := auto.Tokens(input)
		g, gerr := gl.Tokens(input)
		if (aerr == nil) != (gerr == nil) || !reflect.DeepEqual(a, g) {
			t.Fatalf("%q: table %v (%v) vs generic %v (%v)", input, a, aerr, g, gerr)
		}
	}
}
